package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to print the rows each experiment regenerates. The zero value is
// an empty table; set Headers before adding rows.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, floats with 4 significant digits.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		case float32:
			out[i] = fmt.Sprintf("%.4g", v)
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the table body.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	w := t.widths()
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", w[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Markdown returns the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
