package scenario

import (
	"strings"
	"testing"
)

// TestNamedScenariosValidateAndRun asserts every registry entry is
// complete: it validates once scaled, runs at quick scale, and the run
// reflects its declared adversary.
func TestNamedScenariosValidateAndRun(t *testing.T) {
	if len(named) == 0 {
		t.Fatal("registry is empty")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			sc := quickScenario(e.Scenario)
			sc.Seed = 2
			if err := sc.Validate(); err != nil {
				t.Fatalf("named scenario does not validate: %v", err)
			}
			res, err := sc.Run()
			if err != nil {
				t.Fatalf("named scenario does not run: %v", err)
			}
			if res.N != 64 {
				t.Fatalf("ran with n=%d, want 64", res.N)
			}
			if sc.Adversary.IsNull() && res.AdversarySpent != 0 {
				t.Errorf("benign scenario spent adversary energy: %d", res.AdversarySpent)
			}
			if !sc.Adversary.IsNull() && res.StrategyName == "null" {
				t.Errorf("adversarial scenario ran with the null strategy")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	sc, ok := Lookup("full-jam")
	if !ok {
		t.Fatal("full-jam missing from registry")
	}
	if sc.Name != "full-jam" || sc.Adversary.Kind != "full" {
		t.Errorf("Lookup returned %+v", sc)
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("bogus name resolved")
	}
	// Lookup must hand out copies: mutating one must not poison the
	// registry.
	sc.N = 1 << 20
	again, _ := Lookup("full-jam")
	if again.N != 0 {
		t.Error("Lookup leaked a mutable reference into the registry")
	}
	// Deep copies: composite Parts must not share a backing array with
	// the registry entry.
	comp, _ := Lookup("blocker+spoofer")
	comp.Adversary.Parts[1].P = 0.99
	fresh, _ := Lookup("blocker+spoofer")
	if fresh.Adversary.Parts[1].P != 0.3 {
		t.Errorf("mutating a looked-up composite corrupted the registry: P=%v", fresh.Adversary.Parts[1].P)
	}
	All()[0].Scenario.Adversary.Kind = "mutated"
	if name0, _ := Lookup(Names()[0]); name0.Adversary.Kind == "mutated" {
		t.Error("mutating All() output corrupted the registry")
	}
}

func TestNamesMatchRegistryOrder(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names() has %d entries, registry %d", len(names), len(All()))
	}
	for i, e := range All() {
		if names[i] != e.Name {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], e.Name)
		}
	}
}

func TestWriteListMentionsEverything(t *testing.T) {
	var sb strings.Builder
	WriteList(&sb)
	out := sb.String()
	for _, e := range All() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("listing missing scenario %q", e.Name)
		}
	}
	for _, k := range Kinds() {
		if !strings.Contains(out, k.Name) {
			t.Errorf("listing missing kind %q", k.Name)
		}
	}
}

// TestPaperAttackScenariosCoverStrategies sanity-checks that the
// registry spans every strategy family the adversary package ships.
func TestPaperAttackScenariosCoverStrategies(t *testing.T) {
	covered := map[string]bool{}
	var walk func(AdversarySpec)
	walk = func(s AdversarySpec) {
		covered[s.WithDefaults().Kind] = true
		for _, p := range s.Parts {
			walk(p)
		}
	}
	for _, e := range All() {
		walk(e.Scenario.Adversary)
	}
	for _, k := range Kinds() {
		if k.Name == "composite" {
			continue // covered implicitly by the composite entries
		}
		if !covered[k.Name] {
			t.Errorf("no named scenario exercises adversary kind %q", k.Name)
		}
	}
}
