// Command rccoordd is the sweep coordinator: it distributes one
// scenario sweep across an elastic pool of rcserved workers
// (internal/dist, DESIGN.md §13, §15) and writes the merged NDJSON —
// byte-identical to a single-machine `rcexp -scenario ... -trials N`
// run — to stdout.
//
// Usage:
//
//	rccoordd -workers http://a:8344,http://b:8344 \
//	         -scenario full-jam -trials 100000 > runs.jsonl
//	rccoordd -workers ... -scenario spec.json -shard-size 500 \
//	         -out runs.jsonl
//	rccoordd -addr :8350 -scenario full-jam -trials 100000 \
//	         -journal sweep.frontier -out runs.jsonl
//	rccoordd -version
//
// The sweep spec flags (-scenario, -topology, -n, -trials, -seed)
// mirror rcexp's sweep mode exactly, because the contract is that both
// produce the same bytes. -addr serves /metrics, /healthz, and the
// worker-registration endpoint while the sweep runs (":0" picks a free
// port; the resolved address is printed to stderr):
//
//	POST /v1/workers {"url": "http://c:8344"}   join the pool mid-sweep
//	GET  /v1/workers                            pool membership snapshot
//
// -workers seeds the pool; with -addr it may be omitted entirely and
// workers register themselves. Workers are probed for readiness
// (-probe-interval) and declared dead after -liveness without a
// successful probe — their shards rebalance onto the live pool
// immediately. With -journal (requires -out), the merge frontier is
// journaled as the sweep progresses: rerunning the same command after a
// crash — SIGKILL included — resumes from the last merged shard and
// still produces byte-identical output.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rcbcast/internal/dist"
	"rcbcast/internal/scenario"
	"rcbcast/internal/topology"
	"rcbcast/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rccoordd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rccoordd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers   = fs.String("workers", "", "comma-separated worker base URLs seeding the pool (optional with -addr: workers can register)")
		scn       = fs.String("scenario", "", "named scenario or JSON scenario file (required)")
		topo      = fs.String("topology", "", "override the scenario's topology (KIND[:KNOB=V,...])")
		n         = fs.Int("n", 0, "network size override (0 = scenario default)")
		trials    = fs.Int("trials", 0, "sweep trial count (required)")
		baseSeed  = fs.Uint64("seed", 1, "base seed")
		shardSize = fs.Int("shard-size", 0, "trials per shard (0 = auto: about four shards per worker slot)")
		window    = fs.Int("window", 0, "merge reorder window in shards (0 = auto)")
		perWorker = fs.Int("per-worker", dist.DefaultPerWorker, "in-flight shards per worker")
		attempts  = fs.Int("attempts", dist.DefaultMaxAttempts, "run attempts per shard before the sweep fails")
		stall     = fs.Duration("stall", dist.DefaultStallTimeout, "abandon a shard attempt whose result stream is silent this long")
		backoff   = fs.Duration("backoff", dist.DefaultBackoff, "first retry delay for a failing worker (doubles per consecutive failure, jittered)")
		probeIvl  = fs.Duration("probe-interval", dist.DefaultProbeInterval, "worker readiness probe interval")
		liveness  = fs.Duration("liveness", dist.DefaultLivenessDeadline, "declare a worker dead after this long without a successful probe")
		journal   = fs.String("journal", "", "frontier journal path: resume an interrupted sweep from its last merged shard (requires -out)")
		outPath   = fs.String("out", "", "write merged NDJSON here instead of stdout")
		addr      = fs.String("addr", "", "serve /metrics, /healthz, and /v1/workers on this address while the sweep runs (empty = no server)")
		showVer   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String())
		return nil
	}
	if *workers == "" && *addr == "" {
		return errors.New("-workers or -addr is required (an empty pool needs the registration endpoint to ever make progress)")
	}
	if *scn == "" {
		return errors.New("-scenario is required")
	}
	if *trials <= 0 {
		return errors.New("-trials must be positive")
	}
	if *journal != "" && *outPath == "" {
		return errors.New("-journal requires -out (resume needs a re-readable, truncatable output file)")
	}

	sc, err := loadScenario(*scn)
	if err != nil {
		return err
	}
	if *topo != "" {
		spec, terr := topology.ParseSpec(*topo)
		if terr != nil {
			return terr
		}
		sc.ApplyTopology(spec)
	}
	if *n > 0 {
		sc.N = *n
	} else if sc.N == 0 {
		sc.N = 512
	}

	var seed []string
	if *workers != "" {
		seed = strings.Split(*workers, ",")
	}
	logger := log.New(stderr, "", log.LstdFlags)
	c, err := dist.New(dist.Config{
		Workers:          seed,
		ShardSize:        *shardSize,
		WindowShards:     *window,
		PerWorker:        *perWorker,
		MaxAttempts:      *attempts,
		StallTimeout:     *stall,
		Backoff:          *backoff,
		ProbeInterval:    *probeIvl,
		LivenessDeadline: *liveness,
		Journal:          *journal,
		Logf:             logger.Printf,
	})
	if err != nil {
		return err
	}

	if *addr != "" {
		ln, lerr := net.Listen("tcp", *addr)
		if lerr != nil {
			return lerr
		}
		defer ln.Close()
		// The resolved address line is the handshake scripts parse; keep
		// its shape stable (stderr: stdout carries the merged NDJSON).
		fmt.Fprintf(stderr, "rccoordd: metrics on %s\n", ln.Addr())
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, c.Metrics())
		})
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": version.String()})
		})
		mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]any{"workers": c.Members()})
		})
		mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
			var req struct {
				URL string `json:"url"`
			}
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.URL == "" {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body must be {"url": "http://worker:port"}`})
				return
			}
			joined, jerr := c.Join(req.URL)
			if jerr != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": jerr.Error()})
				return
			}
			status := "already a member"
			if joined {
				status = "joined"
			}
			writeJSON(w, http.StatusOK, map[string]any{"status": status, "workers": c.Members()})
		})
		go http.Serve(ln, mux)
	}

	out := stdout
	if *outPath != "" {
		// With a journal the output must survive restarts: open
		// read-write without truncating, so a resumed run can re-read and
		// keep its already-merged prefix. Without one, a fresh truncating
		// create matches the old behavior.
		mode := os.O_RDWR | os.O_CREATE
		if *journal == "" {
			mode |= os.O_TRUNC
		}
		f, ferr := os.OpenFile(*outPath, mode, 0o644)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}

	start := time.Now()
	sum, err := c.Run(ctx, sc, *trials, *baseSeed, out)
	if err != nil {
		return err
	}
	logger.Printf("rccoordd: %s in %v", sum, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// loadScenario resolves a registry name or a JSON scenario file,
// mirroring rcexp.
func loadScenario(arg string) (scenario.Scenario, error) {
	if sc, ok := scenario.Lookup(arg); ok {
		return sc, nil
	}
	if strings.HasSuffix(arg, ".json") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return scenario.Scenario{}, err
		}
		return scenario.Decode(data)
	}
	return scenario.Scenario{}, fmt.Errorf(
		"unknown scenario %q: not a registry name (rcexp -list-scenarios) and not a .json file", arg)
}
