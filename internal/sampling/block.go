package sampling

import (
	"math"

	"rcbcast/internal/rng"
)

// blockDraws is the prefetch depth of a BlockSchedule refill: enough to
// keep the eight-draw assembly kernel fed with four full blocks on dense
// schedules without drawing absurdly past the phase end on sparse ones
// (the adaptive refill still draws as little as 2 there, and measured
// stream over-draw stays within a few percent of the scalar engine's).
// Depth 32 halves the refill-bookkeeping rate of dense listen walks
// against depth 16 at the cost of at most one extra wasted kernel block
// per walk, a trade the steady-state benchmarks favor.
const blockDraws = 32

// BlockSchedule enumerates exactly the slot sequence of a SlotSchedule
// over the same stream, probability, and length — but draws its
// geometric skips in prefetched blocks (rng.Stream.GeometricBlockLnQ),
// which the batched engine kernel uses to overlap the log/divide tail
// of consecutive draws. The visible slots are bit-identical to the
// scalar schedule's (pinned by the differential test); the *stream* is
// left further advanced, which is safe wherever the stream is re-keyed
// before its next use — the engine Reseeds every schedule stream per
// phase, so leftover state is never observed. Do not substitute a
// BlockSchedule where a later consumer continues drawing from the same
// stream.
type BlockSchedule struct {
	st        *rng.Stream
	p         float64
	lnQ       float64
	length    int
	pos       int // origin of the next geometric draw
	buf       [blockDraws]int32
	gs        [blockDraws]int
	head, n   int
	exhausted bool
	everySlot bool
}

// Reset re-initializes the schedule in place over [0, length) with
// per-slot probability p drawn from st, mirroring SlotSchedule.Reset.
// Unlike the scalar schedule it draws nothing until the first Next.
func (s *BlockSchedule) Reset(st *rng.Stream, p float64, length int) {
	s.st, s.p, s.length = st, p, length
	s.lnQ = 0
	s.pos = 0
	s.head, s.n = 0, 0
	s.everySlot = p >= 1
	s.exhausted = p <= 0 || length <= 0
	if !s.exhausted && !s.everySlot {
		s.lnQ = math.Log1p(-p)
	}
}

// Next returns the next action slot, or (0, false) when the phase is
// exhausted — the identical sequence SlotSchedule.Next yields. The
// buffered fast path is small enough to inline into the engine's walk
// loops; everything else lives in nextSlow.
func (s *BlockSchedule) Next() (slot int, ok bool) {
	h := s.head
	if h >= s.n {
		return s.nextSlow()
	}
	s.head = h + 1
	return int(s.buf[h]), true
}

// Take returns every already-drawn action slot not yet consumed,
// advancing past all of them, refilling once when the buffer is empty;
// it returns nil when the phase is exhausted. Consuming via Take yields
// exactly the Next sequence, one block at a time, letting dense walk
// loops range over a slice instead of paying a call per event. The
// returned slice aliases the schedule's buffer: it is valid until the
// next Take, Next, or Reset.
func (s *BlockSchedule) Take() []int32 {
	if s.head >= s.n {
		if s.exhausted {
			return nil
		}
		if s.everySlot {
			// Materialize the every-slot run in buffer-sized chunks so
			// Take has one shape; p >= 1 schedules are rare and cheap.
			n := 0
			for ; n < blockDraws && s.pos < s.length; n++ {
				s.buf[n] = int32(s.pos)
				s.pos++
			}
			s.exhausted = s.pos >= s.length
			s.head, s.n = 0, n
		} else {
			s.refill()
		}
		if s.head >= s.n {
			return nil
		}
	}
	b := s.buf[s.head:s.n]
	s.head = s.n
	return b
}

func (s *BlockSchedule) nextSlow() (slot int, ok bool) {
	if s.exhausted {
		return 0, false
	}
	if s.everySlot {
		slot = s.pos
		s.pos++
		if s.pos >= s.length {
			s.exhausted = true
		}
		return slot, true
	}
	s.refill()
	if s.head >= s.n {
		return 0, false
	}
	slot = int(s.buf[s.head])
	s.head++
	return slot, true
}

// refill prefetches a block of geometric skips and converts them to
// action slots, stopping at the first draw that falls past the phase
// end (the scalar schedule's termination rule). The draw count adapts
// to the expected remaining actions so sparse schedules do not burn
// four-lane blocks to learn they are done.
func (s *BlockSchedule) refill() {
	want := int(s.p*float64(s.length-s.pos)) + 1
	if want > blockDraws {
		want = blockDraws
	} else if want < 2 {
		want = 2
	}
	s.st.GeometricBlockLnQ(s.lnQ, s.gs[:want])
	s.head, s.n = 0, 0
	pos := s.pos
	for _, g := range s.gs[:want] {
		if g >= s.length-pos { // also covers the MaxInt "never" sentinel
			s.exhausted = true
			break
		}
		slot := pos + g
		s.buf[s.n] = int32(slot)
		s.n++
		pos = slot + 1
		if pos >= s.length {
			// Exhausted at the phase boundary, exactly as the scalar
			// schedule (which stops without drawing there).
			s.exhausted = true
			break
		}
	}
	s.pos = pos
}
