package dist

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rcbcast/internal/dist/chaos"
)

// fastProbes is the in-process test timing: probes every 10ms, a 60ms
// liveness deadline, and millisecond backoff, so churn resolves in tens
// of milliseconds instead of seconds.
func fastProbes(cfg Config) Config {
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.LivenessDeadline = 60 * time.Millisecond
	cfg.Backoff = 5 * time.Millisecond
	cfg.BackoffCap = 20 * time.Millisecond
	return cfg
}

// TestJoinMidSweepRebalances starts a sweep on one worker and registers
// a second once some trials have merged: the joiner must claim shards
// (rebalance), and the merged bytes stay identical to the
// single-machine run.
func TestJoinMidSweepRebalances(t *testing.T) {
	sc := testScenario("dist-join")
	const trials, baseSeed = 600, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	first := startWorker(t)
	second := startWorker(t)

	c, err := New(fastProbes(Config{
		Workers:   []string{first.URL},
		ShardSize: 25,
		Logf:      t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), sc, trials, baseSeed, &got)
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = chaos.Drive(ctx, func() int64 { return c.Metrics().MergedTrials }, time.Millisecond,
		chaos.Event{Name: "join second worker", AtMerged: 50, Do: func() error {
			joined, jerr := c.Join(second.URL)
			if jerr == nil && !joined {
				t.Error("Join reported no pool change for a fresh worker")
			}
			return jerr
		}},
	)
	if err != nil {
		t.Fatalf("chaos script: %v", err)
	}

	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged output differs after mid-sweep join (%d vs %d bytes)", got.Len(), len(want))
	}
	m := c.Metrics()
	if m.Joins < 1 {
		t.Fatalf("metrics record %d joins, want ≥1", m.Joins)
	}
	if m.PerWorkerInFlight[second.URL] == 0 && m.Members[second.URL] != StateReady {
		t.Fatalf("joined worker missing from membership: %+v", m.Members)
	}
}

// TestProbeDeathRebalancesInFlight kills a worker (chaos proxy down:
// every request, probes included, fails) mid-sweep. The probe loop must
// declare it dead within the liveness deadline, requeue its in-flight
// shards without burning attempts, and the survivor finishes the sweep
// byte-identically.
func TestProbeDeathRebalancesInFlight(t *testing.T) {
	sc := testScenario("dist-probe-death")
	const trials, baseSeed = 600, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	victim := startWorker(t)
	proxy := chaos.NewProxy(victim.URL)
	front := httptest.NewServer(proxy)
	defer front.Close()
	survivor := startWorker(t)

	cfg := fastProbes(Config{
		Workers:     []string{front.URL, survivor.URL},
		ShardSize:   25,
		MaxAttempts: 2, // death must NOT charge attempts, so 2 suffices
		Logf:        t.Logf,
	})
	// The stall watchdog must outlast the probe path so death detection
	// is what rebalances the shard, not the stream stall.
	cfg.StallTimeout = 30 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), sc, trials, baseSeed, &got)
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = chaos.Drive(ctx, func() int64 { return c.Metrics().MergedTrials }, time.Millisecond,
		chaos.Event{Name: "kill victim", AtMerged: 50, Do: func() error {
			proxy.SetDown(true)
			return nil
		}},
	)
	if err != nil {
		t.Fatalf("chaos script: %v", err)
	}

	if err := <-done; err != nil {
		t.Fatalf("Run after worker death: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged output differs after probe-detected death (%d vs %d bytes)", got.Len(), len(want))
	}
	m := c.Metrics()
	if m.Leaves < 1 {
		t.Fatalf("metrics record %d leaves, want ≥1", m.Leaves)
	}
	if m.Members[front.URL] != StateDead {
		t.Fatalf("dead worker state = %q, want %q", m.Members[front.URL], StateDead)
	}
}

// TestDrainingWorkerClaimsNothingNew flips a worker to not-ready
// mid-sweep and back: while draining it must claim no new shards (its
// slots park on waitReady), and the sweep still finishes exactly.
func TestDrainingWorkerClaimsNothingNew(t *testing.T) {
	sc := testScenario("dist-drain")
	const trials, baseSeed = 400, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	backend := startWorker(t)
	proxy := chaos.NewProxy(backend.URL)
	front := httptest.NewServer(proxy)
	defer front.Close()
	helper := startWorker(t)

	c, err := New(fastProbes(Config{
		Workers:   []string{front.URL, helper.URL},
		ShardSize: 20,
		Logf:      t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), sc, trials, baseSeed, &got)
		done <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	drainObserved := make(chan struct{})
	err = chaos.Drive(ctx, func() int64 { return c.Metrics().MergedTrials }, time.Millisecond,
		chaos.Event{Name: "drain worker", AtMerged: 40, Do: func() error {
			proxy.SetNotReady(true)
			go func() {
				// Wait until the prober actually observes draining, then
				// recover the worker so the sweep can use it again.
				for c.Metrics().Members[front.URL] != StateDraining {
					time.Sleep(time.Millisecond)
				}
				close(drainObserved)
				time.Sleep(20 * time.Millisecond)
				proxy.SetNotReady(false)
			}()
			return nil
		}},
	)
	if err != nil {
		t.Fatalf("chaos script: %v", err)
	}

	select {
	case <-drainObserved:
	case <-time.After(30 * time.Second):
		t.Fatal("prober never observed the draining state")
	}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged output differs after drain/recover (%d vs %d bytes)", got.Len(), len(want))
	}
	// The worker must have recovered to ready (drain is reversible,
	// unlike death).
	if s := c.Metrics().Members[front.URL]; s != StateReady {
		t.Fatalf("recovered worker state = %q, want %q", s, StateReady)
	}
}

// TestCoordinatorCrashResume simulates the coordinator SIGKILL in
// process: run half the sweep with a journal, abandon it (cancel =
// crash; the journal and output file stay behind), append a torn
// partial line to both files, then run a brand-new Coordinator over the
// same journal + output. The resumed run must replay nothing merged,
// truncate the torn tails, and produce byte-identical output and an
// identical summary.
func TestCoordinatorCrashResume(t *testing.T) {
	sc := testScenario("dist-coord-crash")
	const trials, baseSeed = 300, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	worker := startWorker(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.frontier")
	outPath := filepath.Join(dir, "merged.jsonl")

	newCoord := func() *Coordinator {
		c, err := New(fastProbes(Config{
			Workers:   []string{worker.URL},
			ShardSize: 10,
			Journal:   journal,
			Logf:      t.Logf,
		}))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	openOut := func() *os.File {
		f, err := os.OpenFile(outPath, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// First run: cancel mid-sweep once ≥100 trials merged — the
	// in-process stand-in for SIGKILL (state is only what the journal
	// and output file hold).
	c1 := newCoord()
	out1 := openOut()
	ctx1, cancel1 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c1.Run(ctx1, sc, trials, baseSeed, out1)
		done <- err
	}()
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer dcancel()
	if err := chaos.Drive(dctx, func() int64 { return c1.Metrics().MergedTrials }, time.Millisecond,
		chaos.Event{Name: "crash coordinator", AtMerged: 100, Do: func() error {
			cancel1()
			return nil
		}},
	); err != nil {
		t.Fatalf("chaos script: %v", err)
	}
	if err := <-done; err == nil {
		t.Fatal("crashed run returned nil error")
	}
	out1.Close()

	// A real SIGKILL can tear the final line of either file; fake both.
	for _, p := range []string{journal, outPath} {
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"torn`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	// Second run: fresh Coordinator, same journal + output.
	c2 := newCoord()
	out2 := openOut()
	sum, err := c2.Run(context.Background(), sc, trials, baseSeed, out2)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	out2.Close()

	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from single-machine run (%d vs %d bytes)", len(got), len(want))
	}
	if sum.Trials != trials {
		t.Fatalf("resumed summary folded %d trials, want %d", sum.Trials, trials)
	}
	m := c2.Metrics()
	if m.ResumedShards < 1 {
		t.Fatalf("resumed run restored %d shards from the journal, want ≥1", m.ResumedShards)
	}

	// The summary must equal an uninterrupted distributed run's, too
	// (per-shard refold reproduces the fold tree exactly).
	c3, err := New(Config{Workers: []string{worker.URL}, ShardSize: 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var unbroken bytes.Buffer
	sum3, err := c3.Run(context.Background(), sc, trials, baseSeed, &unbroken)
	if err != nil {
		t.Fatal(err)
	}
	if sum.String() != sum3.String() {
		t.Fatalf("resumed summary %q != uninterrupted summary %q", sum, sum3)
	}
}

// TestJitterDeterministicAndBounded pins the backoff jitter: same seed
// → same sequence, different slots → different sequences, and every
// factor lands in [0.5, 1.0).
func TestJitterDeterministicAndBounded(t *testing.T) {
	const d = time.Second
	a := newJitter(42, "http://w1", 0)
	b := newJitter(42, "http://w1", 0)
	other := newJitter(42, "http://w1", 1)
	diverged := false
	for i := 0; i < 1000; i++ {
		da, db, do := a.scale(d), b.scale(d), other.scale(d)
		if da != db {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, da, db)
		}
		if da < d/2 || da >= d {
			t.Fatalf("jittered delay %v outside [%v, %v)", da, d/2, d)
		}
		if da != do {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different slots produced identical jitter sequences")
	}
}
