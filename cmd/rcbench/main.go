// Command rcbench drives the repository's paired benchmark protocol and
// appends the result to the dated record files (BENCH_ENGINE.json,
// BENCH_STREAM.json).
//
// The protocol exists because the reference hosts are shared single-vCPU
// machines whose absolute timings swing with host steal: one low-count
// run cannot resolve small deltas, and numbers taken minutes apart are
// not comparable. rcbench therefore runs N independent passes (default
// 5), each a single `go test -bench` invocation at -benchtime 20x in
// which the batch and scalar benchmarks execute back to back, and
// records per-variant medians across passes. Batch-vs-scalar speedups
// are computed per pass — pairing batch and scalar from the same
// invocation so host-speed drift cancels — and the per-pass ratios are
// medianed, never ratios of medians.
//
// Usage:
//
//	rcbench [-mode engine|stream] [-passes 5] [-benchtime 20x]
//	        [-width 8] [-note ...] [-out FILE] [-dry-run]
//
// Run it from the repository root; it shells out to the go tool.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"encoding/json"
)

// metrics is one benchmark line's measurements.
type metrics struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	hasMem      bool
}

// envInfo is the header block `go test -bench` prints before results.
type envInfo struct {
	GOOS, GOARCH, CPU string
}

// varRecord is the per-variant median block of an appended record.
type varRecord struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// record is one dated entry of a BENCH_*.json file.
type record struct {
	Bench          string               `json:"bench"`
	Date           string               `json:"date"`
	Goos           string               `json:"goos"`
	Goarch         string               `json:"goarch"`
	CPU            string               `json:"cpu"`
	Command        string               `json:"command"`
	Passes         int                  `json:"passes"`
	BatchWidth     int                  `json:"batch_width,omitempty"`
	Variants       map[string]varRecord `json:"variants"`
	PerTrialRatios map[string]float64   `json:"per_trial_ratios,omitempty"`
	Note           string               `json:"note,omitempty"`
}

// mode bundles what one record file's protocol runs.
type mode struct {
	bench string   // benchmark regexp
	pkg   string   // package path handed to go test
	out   string   // default record file
	env   []string // extra environment (e.g. GOMAXPROCS=1)
}

var modes = map[string]mode{
	"engine": {
		bench: "BenchmarkSteadyState(Batch)?$",
		pkg:   "./internal/engine/",
		out:   "BENCH_ENGINE.json",
	},
	"stream": {
		bench: "BenchmarkStreamTrials$",
		pkg:   ".",
		out:   "BENCH_STREAM.json",
		env:   []string{"GOMAXPROCS=1"},
	},
}

func main() {
	var (
		modeName  = flag.String("mode", "engine", "which protocol to run: engine or stream")
		passes    = flag.Int("passes", 5, "independent go test invocations to median over")
		benchtime = flag.String("benchtime", "20x", "-benchtime handed to go test")
		width     = flag.Int("width", 8, "batch width for per-trial ratio computation (engine mode)")
		note      = flag.String("note", "", "free-form note stored on the record")
		outFlag   = flag.String("out", "", "record file to append to (default per mode)")
		dryRun    = flag.Bool("dry-run", false, "print the record instead of appending it")
	)
	flag.Parse()

	m, ok := modes[*modeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "rcbench: unknown mode %q (want engine or stream)\n", *modeName)
		os.Exit(2)
	}
	out := m.out
	if *outFlag != "" {
		out = *outFlag
	}

	var (
		allPasses []map[string]metrics
		env       envInfo
	)
	for i := 0; i < *passes; i++ {
		fmt.Fprintf(os.Stderr, "rcbench: pass %d/%d (%s)\n", i+1, *passes, m.bench)
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", m.bench, "-benchmem", "-benchtime", *benchtime,
			"-count", "1", m.pkg)
		cmd.Env = append(os.Environ(), m.env...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcbench: go test: %v\n%s", err, outBytes)
			os.Exit(1)
		}
		results, e, err := parsePass(bytes.NewReader(outBytes))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcbench: %v\n", err)
			os.Exit(1)
		}
		env = e
		allPasses = append(allPasses, results)
	}

	commandStr := fmt.Sprintf("%sgo test -run ^$ -bench '%s' -benchmem -benchtime %s -count 1 %s (x%d, medians of per-pass results)",
		envPrefix(m.env), m.bench, *benchtime, m.pkg, *passes)
	rec, err := buildRecord(m.bench, commandStr, *note,
		time.Now().Format("2006-01-02"), env, allPasses, *width)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcbench: %v\n", err)
		os.Exit(1)
	}

	if *dryRun {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintf(os.Stderr, "rcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := appendRecord(out, rec); err != nil {
		fmt.Fprintf(os.Stderr, "rcbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "rcbench: appended record to %s\n", out)
}

func envPrefix(env []string) string {
	if len(env) == 0 {
		return ""
	}
	return strings.Join(env, " ") + " "
}

// parsePass reads one `go test -bench` transcript: the goos/goarch/cpu
// header and every Benchmark result line. Variant names drop the
// "Benchmark" prefix and the -N GOMAXPROCS suffix.
func parsePass(r io.Reader) (map[string]metrics, envInfo, error) {
	results := make(map[string]metrics)
	var env envInfo
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			env.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			env.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			env.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if name, m, ok := parseBenchLine(line); ok {
				results[name] = m
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, env, err
	}
	if len(results) == 0 {
		return nil, env, fmt.Errorf("no benchmark result lines in go test output")
	}
	return results, env, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkSteadyState/gilbert-4   50   19548071 ns/op   5782 B/op   9 allocs/op
//
// returning the trimmed variant name ("SteadyState/gilbert") and its
// metrics. Lines that are not benchmark results report ok=false.
func parseBenchLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metrics{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", metrics{}, false // iteration count must be an integer
	}
	var m metrics
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp, seenNs = val, true
		case "B/op":
			m.BytesPerOp, m.hasMem = val, true
		case "allocs/op":
			m.AllocsPerOp, m.hasMem = val, true
		}
	}
	if !seenNs {
		return "", metrics{}, false
	}
	return name, m, true
}

// median returns the middle value (mean of the two middles for even
// counts). It panics on an empty slice; callers validate.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// buildRecord medians each variant across passes and, for every
// SteadyState/<topo> with a SteadyStateBatch/<topo> partner, computes
// the per-trial speedup — scalar ns over batch ns divided by width —
// per pass first, then medians the ratios, so each ratio compares
// numbers from the same go test invocation.
func buildRecord(bench, command, note, date string, env envInfo, passes []map[string]metrics, width int) (record, error) {
	if len(passes) == 0 {
		return record{}, fmt.Errorf("no passes collected")
	}
	rec := record{
		Bench:    bench,
		Date:     date,
		Goos:     env.GOOS,
		Goarch:   env.GOARCH,
		CPU:      env.CPU,
		Command:  command,
		Passes:   len(passes),
		Variants: make(map[string]varRecord),
		Note:     note,
	}
	perVariant := make(map[string][]metrics)
	for _, p := range passes {
		for name, m := range p {
			perVariant[name] = append(perVariant[name], m)
		}
	}
	for name, ms := range perVariant {
		if len(ms) != len(passes) {
			return record{}, fmt.Errorf("variant %s present in %d of %d passes", name, len(ms), len(passes))
		}
		var ns, bs, as []float64
		hasMem := false
		for _, m := range ms {
			ns = append(ns, m.NsPerOp)
			bs = append(bs, m.BytesPerOp)
			as = append(as, m.AllocsPerOp)
			hasMem = hasMem || m.hasMem
		}
		v := varRecord{NsPerOp: median(ns)}
		if hasMem {
			v.BytesPerOp = median(bs)
			v.AllocsPerOp = median(as)
		}
		rec.Variants[name] = v
	}

	ratios := make(map[string][]float64)
	for _, p := range passes {
		for name, scalar := range p {
			topo, ok := strings.CutPrefix(name, "SteadyState/")
			if !ok {
				continue
			}
			batch, ok := p["SteadyStateBatch/"+topo]
			if !ok || batch.NsPerOp == 0 {
				continue
			}
			ratios[topo] = append(ratios[topo], scalar.NsPerOp/(batch.NsPerOp/float64(width)))
		}
	}
	if len(ratios) > 0 {
		rec.BatchWidth = width
		rec.PerTrialRatios = make(map[string]float64)
		for topo, rs := range ratios {
			rec.PerTrialRatios[topo] = math3(median(rs))
		}
	}
	return rec, nil
}

// math3 rounds to three decimals — ratio precision beyond that is
// noise on the reference hosts.
func math3(x float64) float64 {
	return float64(int64(x*1000+0.5)) / 1000
}

// appendRecord appends rec to the JSON array in path, preserving the
// existing entries' formatting byte for byte (the files are partly
// hand-annotated). A missing or empty file becomes a one-entry array.
func appendRecord(path string, rec record) error {
	entry, err := json.MarshalIndent(rec, "  ", "  ")
	if err != nil {
		return err
	}
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	trimmed := bytes.TrimRight(existing, " \t\r\n")
	var out []byte
	switch {
	case len(trimmed) == 0:
		out = append([]byte("[\n  "), entry...)
		out = append(out, []byte("\n]\n")...)
	case trimmed[len(trimmed)-1] == ']':
		body := bytes.TrimRight(trimmed[:len(trimmed)-1], " \t\r\n")
		sep := ",\n  "
		if bytes.HasSuffix(body, []byte("[")) { // empty array
			sep = "\n  "
		}
		out = append(append([]byte{}, body...), []byte(sep)...)
		out = append(out, entry...)
		out = append(out, []byte("\n]\n")...)
	default:
		return fmt.Errorf("%s: does not end with a JSON array", path)
	}
	return os.WriteFile(path, out, 0o644)
}
