package sink

import (
	"fmt"
	"io"

	"rcbcast/internal/engine"
)

// Progress reports sweep advancement: one line every Every delivered
// trials, plus a final line at Flush. Reporting is count-based, never
// time-based, so the lines are deterministic; they are meant for a side
// channel (stderr) while the stream's primary sinks write the data.
type Progress struct {
	w            io.Writer
	total, every int
	done         int
	lastLine     int
}

// NewProgress returns a progress sink writing to w. total is the
// expected trial count (0 omits percentages); every <= 0 reports every
// trial.
func NewProgress(w io.Writer, total, every int) *Progress {
	if every <= 0 {
		every = 1
	}
	return &Progress{w: w, total: total, every: every}
}

// Trial implements sim.Sink.
func (p *Progress) Trial(int, *engine.Result) error {
	p.done++
	if p.done%p.every == 0 {
		return p.line()
	}
	return nil
}

// Flush implements sim.Sink: a final line covers the tail (or reports
// an empty sweep), so interrupted streams still show how far they got.
func (p *Progress) Flush() error {
	if p.lastLine == p.done && p.done != 0 {
		return nil
	}
	return p.line()
}

func (p *Progress) line() error {
	p.lastLine = p.done
	if p.total > 0 {
		_, err := fmt.Fprintf(p.w, "progress: %d/%d trials (%.1f%%)\n",
			p.done, p.total, 100*float64(p.done)/float64(p.total))
		return err
	}
	_, err := fmt.Fprintf(p.w, "progress: %d trials\n", p.done)
	return err
}
