package bitset

import (
	"testing"

	"rcbcast/internal/rng"
)

// reference is the naive model every word-level operation is checked
// against.
type reference map[int]bool

func (r reference) count() int {
	n := 0
	for _, v := range r {
		if v {
			n++
		}
	}
	return n
}

func TestSetBasics(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Count() != 0 || s.Any() {
		t.Fatalf("fresh set: len=%d count=%d any=%v", s.Len(), s.Count(), s.Any())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 8 || !s.Any() {
		t.Fatalf("count=%d any=%v", s.Count(), s.Any())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 7 {
		t.Fatalf("clear(64): get=%v count=%d", s.Get(64), s.Count())
	}
	// Out-of-range accesses are inert.
	s.Set(-1)
	s.Set(130)
	s.Clear(-1)
	s.Clear(130)
	if s.Get(-1) || s.Get(130) || s.Count() != 7 {
		t.Fatalf("out-of-range access perturbed the set")
	}
}

func TestSetRangeMatchesLoop(t *testing.T) {
	st := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + st.Intn(300)
		from := st.Intn(n+20) - 10
		to := st.Intn(n+20) - 10
		a, b := New(n), New(n)
		// Pre-populate identically so SetRange must OR, not overwrite.
		for i := 0; i < n; i += 7 {
			a.Set(i)
			b.Set(i)
		}
		a.SetRange(from, to)
		for i := from; i < to; i++ {
			b.Set(i)
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != b.Get(i) {
				t.Fatalf("n=%d SetRange(%d,%d): bit %d differs", n, from, to, i)
			}
		}
		if a.Count() != b.Count() {
			t.Fatalf("n=%d SetRange(%d,%d): count %d vs %d", n, from, to, a.Count(), b.Count())
		}
	}
}

func TestOrAndAgainstReference(t *testing.T) {
	st := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		n := 1 + st.Intn(260)
		a, b := New(n), New(n)
		ra, rb := reference{}, reference{}
		for i := 0; i < n; i++ {
			if st.Bernoulli(0.4) {
				a.Set(i)
				ra[i] = true
			}
			if st.Bernoulli(0.4) {
				b.Set(i)
				rb[i] = true
			}
		}
		or := New(n)
		or.Or(a)
		or.Or(b)
		and := New(n)
		and.Or(a)
		and.And(b)
		for i := 0; i < n; i++ {
			if want := ra[i] || rb[i]; or.Get(i) != want {
				t.Fatalf("n=%d or bit %d: got %v want %v", n, i, or.Get(i), want)
			}
			if want := ra[i] && rb[i]; and.Get(i) != want {
				t.Fatalf("n=%d and bit %d: got %v want %v", n, i, and.Get(i), want)
			}
		}
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or over mismatched lengths must panic")
		}
	}()
	New(64).Or(New(65))
}

func TestResetClearsResizeKeeps(t *testing.T) {
	s := New(128)
	s.Set(5)
	s.Reset(128)
	if s.Get(5) || s.Count() != 0 {
		t.Fatal("Reset must clear")
	}
	// Resize relies on the dirty-clearing discipline: a set bit that was
	// cleared stays cleared through shrink/grow cycles within capacity.
	s.Set(100)
	s.Clear(100)
	s.Resize(32)
	s.Resize(128)
	if s.Any() {
		t.Fatal("Resize exposed stale bits despite the cleared invariant")
	}
	// Growing past capacity yields zero words.
	s.Resize(4096)
	if s.Len() != 4096 || s.Any() {
		t.Fatalf("grown set: len=%d any=%v", s.Len(), s.Any())
	}
}

func TestWordsInvariant(t *testing.T) {
	s := New(70)
	s.SetRange(0, 70)
	if got := s.Count(); got != 70 {
		t.Fatalf("full range count = %d", got)
	}
	w := s.Words()
	if len(w) != 2 {
		t.Fatalf("70 bits needs 2 words, got %d", len(w))
	}
	if w[1]>>6 != 0 {
		t.Fatalf("bits beyond Len leaked into the last word: %#x", w[1])
	}
}
