package topology

// Grid is a rectangular lattice: node i occupies cell (i mod W, i / W)
// and hears every node within Chebyshev distance Reach of its cell.
// Alice transmits from the origin corner — the lattice analogue of the
// multihop pipeline's seed cluster — so a broadcast crosses the grid as
// a wave of informed rings.
type Grid struct {
	n, w, h, reach int
}

// NewGrid returns the lattice over n nodes with the given width and
// Chebyshev reach. width <= 0 selects the squarest layout
// (ceil(sqrt(n))); reach <= 0 selects 1 (the 8-neighbor Moore
// neighborhood).
func NewGrid(n, width, reach int) Grid {
	if width <= 0 {
		width = isqrtCeil(n)
	}
	if reach <= 0 {
		reach = 1
	}
	h := (n + width - 1) / width
	return Grid{n: n, w: width, h: h, reach: reach}
}

// isqrtCeil returns ceil(sqrt(n)) for n >= 0 without float rounding
// hazards.
func isqrtCeil(n int) int {
	if n <= 1 {
		return n
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func (g Grid) Name() string { return "grid" }
func (g Grid) N() int       { return g.n }

// Width and Reach report the resolved layout (useful for tests and
// reporting).
func (g Grid) Width() int { return g.w }
func (g Grid) Reach() int { return g.reach }

// Complete reports whether the reach covers the whole lattice, in which
// case the grid degenerates to the clique and the engine may use the
// global-channel fast path.
func (g Grid) Complete() bool {
	return g.reach >= g.w-1 && g.reach >= g.h-1
}

func (g Grid) cell(i int) (x, y int) { return i % g.w, i / g.w }

func cheb(x0, y0, x1, y1 int) int {
	dx, dy := x0-x1, y0-y1
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

func (g Grid) AliceHears(node int) bool {
	x, y := g.cell(node)
	return cheb(0, 0, x, y) <= g.reach
}

func (g Grid) Adjacent(src, listener int) bool {
	if src == listener {
		return false
	}
	sx, sy := g.cell(src)
	lx, ly := g.cell(listener)
	return cheb(sx, sy, lx, ly) <= g.reach
}

// appendHeard implements the CSR fast fill: the Chebyshev window in
// row-major order yields ids ascending.
func (g Grid) appendHeard(dst []int32, listener int) []int32 {
	x, y := g.cell(listener)
	for dy := -g.reach; dy <= g.reach; dy++ {
		ny := y + dy
		if ny < 0 || ny >= g.h {
			continue
		}
		for dx := -g.reach; dx <= g.reach; dx++ {
			nx := x + dx
			if nx < 0 || nx >= g.w {
				continue
			}
			id := ny*g.w + nx
			if id != listener && id < g.n {
				dst = append(dst, int32(id))
			}
		}
	}
	return dst
}

func (g Grid) Degree(node int) int {
	x, y := g.cell(node)
	deg := 0
	for dy := -g.reach; dy <= g.reach; dy++ {
		ny := y + dy
		if ny < 0 || ny >= g.h {
			continue
		}
		for dx := -g.reach; dx <= g.reach; dx++ {
			nx := x + dx
			if nx < 0 || nx >= g.w {
				continue
			}
			id := ny*g.w + nx
			if id != node && id < g.n {
				deg++
			}
		}
	}
	return deg
}
