package experiment

import (
	"fmt"
	"math"

	"rcbcast/internal/engine"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/stats"
	"rcbcast/internal/topology"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Gilbert random-geometric topology: radius vs jamming",
		Claim: "on a Gilbert graph the unmodified single-hop protocol delivers exactly Alice's k-hop reachable set — delivery tracks the geometric ceiling through the percolation-style rise of the radius, and jamming degrades delivery inside the ceiling but can never extend past it",
		Run:   runE13,
	})
}

// runE13 sweeps the Gilbert connection radius r against a jamming arm.
// Per trial, the same seed that drives the engine rebuilds the trial's
// graph, so the measured delivery can be compared with the
// graph-theoretic ceiling ReachableWithin(topo, k) — the k-hop ball of
// Alice (DESIGN.md §9: nodes informed in the final propagation step
// never relay, so the wave stops at k hops).
func runE13(cfg Config) (*Report, error) {
	rep := newReport("E13", "Gilbert random-geometric topology: radius vs jamming",
		"delivery = Alice's k-hop ball of the random geometric graph; jamming cannot extend it")
	n := cfg.n(512, 128)
	seeds := cfg.seeds(3, 2)
	const k = 2
	radii := []float64{0.1, 0.15, 0.2, 0.3, 0.4}
	if cfg.Quick {
		radii = []float64{0.15, 0.25, 0.4}
	}
	arms := []struct {
		name   string
		adv    scenario.AdversarySpec
		budget scenario.BudgetSpec
	}{
		{"benign", scenario.AdversarySpec{Kind: "null"}, scenario.BudgetSpec{}},
		{"random-jam", scenario.AdversarySpec{Kind: "random", P: 0.5}, scenario.BudgetSpec{ModelC: 1, ModelF: 1}},
	}

	// One flat spec list: trial index i belongs to group i/seeds, the
	// groups walk (radius, arm) in row order. The per-trial reachable
	// fraction is precomputed from the same (spec, seed) pair the
	// engine will use, so ceiling and delivery describe one graph.
	type group struct {
		informed, reachable, ratio, spent stats.Acc
	}
	groups := make([]group, len(radii)*len(arms))
	var specs []sim.TrialSpec
	var reachFrac []float64
	for ri, r := range radii {
		for ai, arm := range arms {
			sc := scenario.Scenario{
				N: n, K: k,
				Topology:  topology.Spec{Kind: "gilbert", Radius: r},
				Adversary: arm.adv,
				Budget:    arm.budget,
				Overrides: scenario.Overrides{ExtraRounds: scenario.SparseTopologyExtraRounds},
			}
			point := 13_000 + 10*ri + ai
			for s := 0; s < seeds; s++ {
				seed := cfg.seedAt(point, s)
				ts, err := sc.TrialSpec(seed)
				if err != nil {
					return nil, err
				}
				topo, err := ts.Topology.Build(n, seed)
				if err != nil {
					return nil, err
				}
				specs = append(specs, ts)
				reachFrac = append(reachFrac, float64(topology.ReachableWithin(topo, k))/float64(n))
			}
		}
	}
	err := sim.Stream(cfg.ctx(), cfg.Procs, specs, sink.Func(func(i int, res *engine.Result) error {
		g := &groups[i/seeds]
		frac := res.InformedFrac()
		g.informed.Add(frac)
		g.reachable.Add(reachFrac[i])
		if reachFrac[i] > 0 {
			g.ratio.Add(frac / reachFrac[i])
		}
		g.spent.Add(float64(res.AdversarySpent))
		return nil
	}))
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable(
		fmt.Sprintf("E13: Gilbert radius sweep (n=%d, k=%d, Alice at the center, %d seeds/point)", n, k, seeds),
		"radius", "k-hop reachable frac", "benign informed", "benign informed/reachable",
		"jammed informed", "jammed informed/reachable", "jam T spent")
	for ri, r := range radii {
		benign, jam := &groups[ri*len(arms)], &groups[ri*len(arms)+1]
		tbl.AddRowf(r, benign.reachable.Mean(), benign.informed.Mean(), benign.ratio.Mean(),
			jam.informed.Mean(), jam.ratio.Mean(), jam.spent.Mean())
		key := func(name string) string { return fmt.Sprintf("%s_r%g", name, r) }
		rep.Values[key("reachable_frac")] = benign.reachable.Mean()
		rep.Values[key("informed_benign")] = benign.informed.Mean()
		rep.Values[key("ratio_benign")] = benign.ratio.Mean()
		rep.Values[key("informed_jam")] = jam.informed.Mean()
		rep.Values[key("ratio_jam")] = jam.ratio.Mean()
	}
	rep.Tables = append(rep.Tables, tbl)

	first, last := radii[0], radii[len(radii)-1]
	minRatio, maxRatio := 1.0, 0.0
	for _, r := range radii {
		ratio := rep.Values[fmt.Sprintf("ratio_benign_r%g", r)]
		minRatio, maxRatio = math.Min(minRatio, ratio), math.Max(maxRatio, ratio)
	}
	rep.addFinding("delivery tracks the geometric ceiling: benign informed/reachable stays within %.2f–%.2f across the sweep while delivery itself rises from %.3f of n (r=%g) to %.3f (r=%g)",
		minRatio, maxRatio,
		rep.Values[fmt.Sprintf("informed_benign_r%g", first)], first,
		rep.Values[fmt.Sprintf("informed_benign_r%g", last)], last)
	rep.addFinding("the rise with r is the percolation-style transition of the k-hop ball: 2r must span the square (r ≳ 0.35 at k=2) for near-full delivery")
	// Quote the degradation where the ceiling leaves room to see it:
	// at the top radius both arms saturate near 1.
	mid := radii[len(radii)-2]
	rep.addFinding("jamming degrades delivery inside the ceiling (informed/reachable %.2f vs %.2f benign at r=%g) but never extends it — the n-uniform threat model carries over to spatial channels",
		rep.Values[fmt.Sprintf("ratio_jam_r%g", mid)],
		rep.Values[fmt.Sprintf("ratio_benign_r%g", mid)], mid)
	return rep, nil
}
