package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rcbcast/internal/dist/chaos"
	"rcbcast/internal/service"
)

// TestMain doubles as the e2e children: with DIST_E2E_WORKER set, the
// test binary *is* a worker service process; with DIST_E2E_COORD set it
// is a journaling coordinator — both behind real listeners, killable
// with a real SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("DIST_E2E_WORKER") == "1" {
		runWorkerChild()
		return
	}
	if os.Getenv("DIST_E2E_COORD") == "1" {
		runCoordChild()
		return
	}
	os.Exit(m.Run())
}

func runWorkerChild() {
	mgr, err := service.NewManager(service.Config{Dir: os.Getenv("DIST_E2E_DIR"), Procs: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker: listening on %s\n", ln.Addr())
	if err := http.Serve(ln, service.NewServer(mgr)); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}

// runCoordChild is the coordinator process of the crash-resume e2e: a
// journaling Coordinator over the COORD_* env sweep, with /metrics and
// the registration endpoint on a real listener. It is the in-test
// stand-in for cmd/rccoordd, close enough that SIGKILLing it exercises
// the same journal discipline.
func runCoordChild() {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "coord:", err)
		os.Exit(1)
	}
	trials, err := strconv.Atoi(os.Getenv("COORD_TRIALS"))
	if err != nil {
		die(err)
	}
	shard, err := strconv.Atoi(os.Getenv("COORD_SHARD"))
	if err != nil {
		die(err)
	}
	c, err := New(Config{
		Workers:          strings.Split(os.Getenv("COORD_WORKERS"), ","),
		ShardSize:        shard,
		MaxAttempts:      20,
		StallTimeout:     10 * time.Second,
		Backoff:          50 * time.Millisecond,
		BackoffCap:       500 * time.Millisecond,
		ProbeInterval:    50 * time.Millisecond,
		LivenessDeadline: 2 * time.Second,
		Journal:          os.Getenv("COORD_JOURNAL"),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		die(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(c.Metrics())
	})
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			URL string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := c.Join(req.URL); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "joined"})
	})
	go http.Serve(ln, mux)
	fmt.Printf("coord: listening on %s\n", ln.Addr())

	out, err := os.OpenFile(os.Getenv("COORD_OUT"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		die(err)
	}
	sum, err := c.Run(context.Background(), testScenario("dist-e2e-coord"), trials, 1, out)
	if err != nil {
		die(err)
	}
	if err := out.Close(); err != nil {
		die(err)
	}
	fmt.Printf("coord: done %s\n", sum)
}

// workerProc is one child worker process.
type workerProc struct {
	cmd  *exec.Cmd
	base string
}

func startWorkerProc(t *testing.T, dir string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DIST_E2E_WORKER=1", "DIST_E2E_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no startup line from worker (err=%v)", sc.Err())
	}
	addr, ok := strings.CutPrefix(sc.Text(), "worker: listening on ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected startup line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout)
	return &workerProc{cmd: cmd, base: "http://" + addr}
}

// TestWorkerSIGKILLReassignment is the distributed half of the
// durability contract: SIGKILL a real worker process mid-sweep and the
// coordinator reassigns its shards to the survivor, skips every
// replayed line, and still produces merged NDJSON byte-identical to a
// single-machine run.
func TestWorkerSIGKILLReassignment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes and runs a multi-second sweep")
	}
	sc := testScenario("dist-e2e")
	const trials, baseSeed = 2000, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	victim := startWorkerProc(t, t.TempDir())
	survivor := startWorkerProc(t, t.TempDir())
	defer func() {
		survivor.cmd.Process.Kill()
		survivor.cmd.Wait()
	}()

	c, err := New(Config{
		Workers:      []string{victim.base, survivor.base},
		ShardSize:    150,
		MaxAttempts:  20,
		StallTimeout: 10 * time.Second,
		Backoff:      100 * time.Millisecond,
		BackoffCap:   500 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	type result struct {
		sum *Summary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := c.Run(context.Background(), sc, trials, baseSeed, &got)
		done <- result{sum, err}
	}()

	// Kill the first worker once real progress has merged but the sweep
	// is nowhere near finished.
	deadline := time.Now().Add(60 * time.Second)
	for {
		m := c.Metrics()
		if m.MergedTrials >= 200 {
			break
		}
		select {
		case r := <-done:
			t.Fatalf("sweep finished before the kill window (err=%v); raise trials", r.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached the kill window (metrics %+v)", m)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed worker %s at %d merged trials", victim.base, c.Metrics().MergedTrials)

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("Run after worker kill: %v", r.err)
		}
		if r.sum.Trials != trials {
			t.Fatalf("summary folded %d trials, want %d", r.sum.Trials, trials)
		}
	case <-time.After(180 * time.Second):
		t.Fatal("sweep did not complete after the worker kill")
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged output differs from single-machine run after SIGKILL (%d vs %d bytes)",
			got.Len(), len(want))
	}
	if c.Metrics().Retries < 1 {
		t.Fatal("expected at least one retry after killing a worker")
	}
}

// coordProc is one child coordinator process.
type coordProc struct {
	cmd    *exec.Cmd
	base   string // http://host:port of its metrics/registration server
	stderr *lockedBuffer
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func startCoordProc(t *testing.T, workers []string, journal, out string, trials, shard int) *coordProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"DIST_E2E_COORD=1",
		"COORD_WORKERS="+strings.Join(workers, ","),
		"COORD_JOURNAL="+journal,
		"COORD_OUT="+out,
		"COORD_TRIALS="+strconv.Itoa(trials),
		"COORD_SHARD="+strconv.Itoa(shard),
	)
	errBuf := &lockedBuffer{}
	cmd.Stderr = io.MultiWriter(os.Stderr, errBuf)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no startup line from coordinator (err=%v)\nstderr:\n%s", sc.Err(), errBuf.String())
	}
	addr, ok := strings.CutPrefix(sc.Text(), "coord: listening on ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected coordinator startup line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout)
	return &coordProc{cmd: cmd, base: "http://" + addr, stderr: errBuf}
}

// TestCoordinatorSIGKILLResumeAndJoin is the crash-resume contract with
// real processes: SIGKILL the journaling coordinator mid-sweep, restart
// it over the same journal and output file, register a third worker
// mid-sweep through the live registration endpoint, and the final
// merged bytes still match the single-machine run exactly.
func TestCoordinatorSIGKILLResumeAndJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes and runs a multi-second sweep")
	}
	sc := testScenario("dist-e2e-coord")
	const trials, baseSeed = 3000, uint64(1)
	const shardSize = 50
	want := referenceNDJSON(t, sc, trials, baseSeed)

	w1 := startWorkerProc(t, t.TempDir())
	w2 := startWorkerProc(t, t.TempDir())
	w3 := startWorkerProc(t, t.TempDir())
	for _, w := range []*workerProc{w1, w2, w3} {
		w := w
		defer func() {
			w.cmd.Process.Kill()
			w.cmd.Wait()
		}()
	}

	dir := t.TempDir()
	journal := dir + "/sweep.frontier"
	outPath := dir + "/merged.jsonl"
	pool := []string{w1.base, w2.base}

	// First coordinator: SIGKILL it once ≥300 trials have merged.
	c1 := startCoordProc(t, pool, journal, outPath, trials, shardSize)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	err := chaos.Drive(ctx, chaos.HTTPMerged(nil, c1.base+"/metrics"), 2*time.Millisecond,
		chaos.Event{Name: "SIGKILL coordinator", AtMerged: 300, Do: func() error {
			return c1.cmd.Process.Kill()
		}},
	)
	if err != nil {
		t.Fatalf("chaos script: %v\ncoordinator stderr:\n%s", err, c1.stderr.String())
	}
	c1.cmd.Wait()
	t.Logf("killed coordinator %s", c1.base)

	// Second coordinator over the same journal + output; register the
	// third worker once it has resumed and merged further progress.
	c2 := startCoordProc(t, pool, journal, outPath, trials, shardSize)
	done := make(chan error, 1)
	go func() { done <- c2.cmd.Wait() }()
	jctx, jcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer jcancel()
	err = chaos.Drive(jctx, chaos.HTTPMerged(nil, c2.base+"/metrics"), 2*time.Millisecond,
		chaos.Event{Name: "join third worker", AtMerged: 400, Do: func() error {
			resp, perr := http.Post(c2.base+"/v1/workers", "application/json",
				strings.NewReader(`{"url":"`+w3.base+`"}`))
			if perr != nil {
				return perr
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("registration status %d", resp.StatusCode)
			}
			return nil
		}},
	)
	if err != nil {
		// The restarted sweep may legitimately finish before 400 merged
		// trials only if resume failed — surface the stderr either way.
		select {
		case werr := <-done:
			t.Fatalf("restarted coordinator exited early (err=%v):\n%s", werr, c2.stderr.String())
		default:
			t.Fatalf("chaos script: %v\n%s", err, c2.stderr.String())
		}
	}

	select {
	case werr := <-done:
		if werr != nil {
			t.Fatalf("restarted coordinator failed: %v\n%s", werr, c2.stderr.String())
		}
	case <-time.After(180 * time.Second):
		c2.cmd.Process.Kill()
		t.Fatalf("restarted coordinator never finished\n%s", c2.stderr.String())
	}

	if !strings.Contains(c2.stderr.String(), "resuming from frontier journal") {
		t.Fatalf("restarted coordinator did not resume from the journal:\n%s", c2.stderr.String())
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged output differs from single-machine run after coordinator SIGKILL + restart + join (%d vs %d bytes)",
			len(got), len(want))
	}
}
