package dist

import "testing"

// TestPlanTilesSweep pins the planner invariant everything else rests
// on: for any trial count and shard size, the shards tile [0, trials)
// exactly, in order, with no gaps, overlaps, or empties.
func TestPlanTilesSweep(t *testing.T) {
	for _, trials := range []int{1, 2, 5, 7, 37, 100, 1000} {
		for _, size := range []int{1, 2, 3, 5, 7, 37, 100, 2000} {
			plan := Plan(trials, size)
			next := 0
			for i, sh := range plan {
				if sh.Lo != next {
					t.Fatalf("Plan(%d, %d) shard %d starts at %d, want %d", trials, size, i, sh.Lo, next)
				}
				if sh.Len() <= 0 || sh.Len() > size {
					t.Fatalf("Plan(%d, %d) shard %d has %d trials, want 1..%d", trials, size, i, sh.Len(), size)
				}
				if err := sh.Validate(trials); err != nil {
					t.Fatalf("Plan(%d, %d) shard %d invalid: %v", trials, size, i, err)
				}
				next = sh.Hi
			}
			if next != trials {
				t.Fatalf("Plan(%d, %d) covers [0,%d), want [0,%d)", trials, size, next, trials)
			}
			want := (trials + size - 1) / size
			if len(plan) != want {
				t.Fatalf("Plan(%d, %d) has %d shards, want %d", trials, size, len(plan), want)
			}
		}
	}
	if p := Plan(0, 5); p != nil {
		t.Fatalf("Plan(0, 5) = %v, want nil", p)
	}
	if p := Plan(5, 0); p != nil {
		t.Fatalf("Plan(5, 0) = %v, want nil", p)
	}
}

// TestConfigDefaults pins the shard-size heuristic and the window
// default against drift.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{Workers: []string{"http://a", "http://b"}}.withDefaults(1000, 2)
	if cfg.PerWorker != 1 {
		t.Fatalf("PerWorker = %d, want 1", cfg.PerWorker)
	}
	if cfg.ShardSize != 125 { // ceil(1000 / (4·2·1))
		t.Fatalf("ShardSize = %d, want 125", cfg.ShardSize)
	}
	if cfg.WindowShards != 8 {
		t.Fatalf("WindowShards = %d, want 8", cfg.WindowShards)
	}
	// Tiny sweeps still get at least one trial per shard.
	if got := (Config{Workers: []string{"http://a"}}.withDefaults(2, 1)).ShardSize; got != 1 {
		t.Fatalf("ShardSize for 2 trials = %d, want 1", got)
	}
	// An (initially) empty elastic pool plans as one worker slot instead
	// of dividing by zero.
	if got := (Config{}.withDefaults(1000, 0)).ShardSize; got != 250 {
		t.Fatalf("ShardSize for an empty pool = %d, want 250", got)
	}
}

func TestNormalizeWorker(t *testing.T) {
	if _, err := normalizeWorker("ftp://x"); err == nil {
		t.Fatal("ftp scheme accepted")
	}
	if _, err := normalizeWorker("http://"); err == nil {
		t.Fatal("hostless url accepted")
	}
	got, err := normalizeWorker("http://10.0.0.7:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if got != "http://10.0.0.7:8080" {
		t.Fatalf("normalized to %q", got)
	}
	// An empty initial pool is legal now (elastic membership): workers
	// Join later. A malformed seed URL still fails construction.
	if _, err := New(Config{}); err != nil {
		t.Fatalf("New with no workers: %v", err)
	}
	if _, err := New(Config{Workers: []string{"ftp://x"}}); err == nil {
		t.Fatal("New with a bad worker URL accepted")
	}
}
