// Command parallelsweep demonstrates the deterministic parallel trial
// runner: a batch of full-jam runs dispatched across workers, with
// byte-identical aggregates whatever the worker count.
package main

import (
	"fmt"

	"rcbcast"
)

func main() {
	const trials = 16
	specs := make([]rcbcast.TrialSpec, trials)
	for i := range specs {
		specs[i] = rcbcast.TrialSpec{
			Params:   rcbcast.PracticalParams(512, 2),
			Seed:     rcbcast.TrialSeed(1, i),
			Strategy: func() rcbcast.Strategy { return rcbcast.FullJam{} },
			Pool:     func() *rcbcast.Pool { return rcbcast.NewPool(1 << 12) },
		}
	}
	for _, procs := range []int{1, 8} {
		results, err := rcbcast.RunTrials(procs, specs)
		if err != nil {
			panic(err)
		}
		var informed, alice, carol int64
		for _, res := range results {
			informed += int64(res.Informed)
			alice += res.Alice.Cost
			carol += res.AdversarySpent
		}
		fmt.Printf("procs=%-2d  %d trials: informed %d nodes total, alice paid %d, carol paid %d\n",
			procs, trials, informed, alice, carol)
	}
	fmt.Println("aggregates above must match line for line — that is the determinism guarantee")
}
