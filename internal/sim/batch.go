package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"rcbcast/internal/engine"
)

// batchGroup is one contiguous run of trial indices executed as a unit:
// either a batch-kernel call of up to the stream's width, or — when
// per-spec Configure hooks diverge the execution-shaping options — a
// scalar fallback over the same indices.
type batchGroup struct{ start, end int }

// batchGroups partitions specs into contiguous runs of at most width
// trials sharing the execution-shaping spec fields (Params, Topology).
// A sweep's specs differ only in seeds, so its groups are simply
// ceil(n/width) full-width slices; heterogeneous spec lists (stacked
// sweep points) split at every point boundary, never batching across
// one.
func batchGroups(specs []TrialSpec, width int) []batchGroup {
	groups := make([]batchGroup, 0, len(specs)/width+1)
	for start := 0; start < len(specs); {
		end := start + 1
		for end < len(specs) && end-start < width &&
			specs[end].Params == specs[start].Params &&
			specs[end].Topology == specs[start].Topology {
			end++
		}
		groups = append(groups, batchGroup{start: start, end: end})
		start = end
	}
	return groups
}

// batchScratches recycles the batch kernel's working state — lane
// scratches, reception bitsets, block schedules, and the cross-trial
// topology cache — across the groups a worker executes, exactly as
// scratches does for scalar trials.
var batchScratches = sync.Pool{New: func() any { return engine.NewBatchScratch() }}

// batchOut carries one finished group from a worker: the per-trial
// results for the delivered prefix and, when the group stopped early,
// the error already attributed to its position in the sweep. Group
// execution never fails the StreamMap unit directly — the error rides
// in the value so the collector can deliver the group's completed
// prefix (scalar fallback) before surfacing it in order.
type batchOut struct {
	rs  []*engine.Result
	err error
}

// runBatchGroup executes one group on a worker goroutine. The happy
// path is a single batch-kernel call; when a Configure hook makes the
// lanes' options unbatchable (diverging MaxPhaseSlots, say), the group
// falls back to per-trial scalar runs — the kernel's byte-identity
// oracle — so StreamBatch accepts every spec list Stream does.
func runBatchGroup(ctx context.Context, specs []TrialSpec, base int) batchOut {
	opts := make([]engine.Options, len(specs))
	batchable := true
	for i := range specs {
		opts[i] = specs[i].options()
		if opts[i].Params != opts[0].Params ||
			opts[i].Topology != opts[0].Topology ||
			opts[i].MaxPhaseSlots != opts[0].MaxPhaseSlots {
			batchable = false
		}
	}
	if !batchable {
		rs := make([]*engine.Result, 0, len(opts))
		for i := range opts {
			if opts[i].Scratch == nil {
				sc := scratches.Get().(*engine.Scratch)
				defer scratches.Put(sc)
				opts[i].Scratch = sc
			}
			r, err := engine.RunContext(ctx, opts[i])
			if err != nil {
				return batchOut{rs: rs, err: fmt.Errorf("trial %d: %w", base+i, err)}
			}
			rs = append(rs, r)
		}
		return batchOut{rs: rs}
	}
	bs := batchScratches.Get().(*engine.BatchScratch)
	rs, err := engine.RunBatchContext(ctx, opts, bs)
	batchScratches.Put(bs)
	if err != nil {
		// A batch stops as a unit: no lane's partial state is
		// observable, so the error names the whole trial range.
		return batchOut{err: fmt.Errorf("trials %d-%d: %w", base, base+len(opts)-1, err)}
	}
	return batchOut{rs: rs}
}

// StreamBatch is Stream executing trials through the batched lockstep
// kernel: contiguous specs sharing a sweep point (equal Params and
// Topology) are grouped into batches of up to width lanes and run with
// engine.RunBatch, whose per-lane results are byte-identical to the
// scalar engine's. Sink delivery is unchanged — every trial exactly
// once, in trial-index order, from a single goroutine — so a sweep's
// sink output is byte-for-byte the Stream output at every width and
// procs value. width <= 1 is exactly Stream.
//
// Early stops surface as *PartialError with Delivered counting trials,
// as with Stream; because a failed batch group contributes no results,
// a mid-sweep failure may deliver up to width-1 fewer trials than the
// scalar stream would have before stopping at the same cause.
func StreamBatch(ctx context.Context, procs, width int, specs []TrialSpec, sinks ...Sink) error {
	if width <= 1 {
		return Stream(ctx, procs, specs, sinks...)
	}
	groups := batchGroups(specs, width)
	delivered := 0
	streamErr := StreamMap(ctx, procs, len(groups), func(ctx context.Context, g int) (batchOut, error) {
		gr := groups[g]
		return runBatchGroup(ctx, specs[gr.start:gr.end], gr.start), nil
	}, func(g int, out batchOut) error {
		base := groups[g].start
		for j, r := range out.rs {
			for _, s := range sinks {
				if err := s.Trial(base+j, r); err != nil {
					return err
				}
			}
			delivered++
		}
		return out.err
	})
	// StreamMap counts delivered *groups*; re-shape its PartialError to
	// the per-trial contract. delivered is written only by the deliver
	// callback, which StreamMap runs on this goroutine.
	var pe *PartialError
	if errors.As(streamErr, &pe) {
		streamErr = &PartialError{Delivered: delivered, Err: pe.Err}
	}
	for _, s := range sinks {
		if err := s.Flush(); err != nil && streamErr == nil {
			streamErr = fmt.Errorf("sim: flush: %w", err)
		}
	}
	return streamErr
}
