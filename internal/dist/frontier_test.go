package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFrontierJournalRoundTrip pins the journal's basic lifecycle:
// record shard boundaries, reopen, and recover exactly them.
func TestFrontierJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frontier")
	fj, err := openFrontier(path, "abcd", 100, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fj.merged != 0 || fj.bytes != 0 {
		t.Fatalf("fresh journal at %d/%d", fj.merged, fj.bytes)
	}
	for i, b := range []int64{120, 260, 390} {
		if err := fj.record(i, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := fj.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := openFrontier(path, "abcd", 100, 7, 999) // caller's shard size is overridden
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.merged != 3 || re.bytes != 390 {
		t.Fatalf("reopened journal at %d/%d, want 3/390", re.merged, re.bytes)
	}
	if re.shardSize != 10 {
		t.Fatalf("reopened shard size %d, want the header's 10", re.shardSize)
	}
}

// TestFrontierJournalTornTail: a partial final line (the SIGKILL
// signature) is truncated away, and recording continues cleanly from
// the surviving prefix.
func TestFrontierJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frontier")
	fj, err := openFrontier(path, "abcd", 100, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	fj.record(0, 120)
	fj.record(1, 260)
	fj.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"shard":2,"by`)
	f.Close()

	re, err := openFrontier(path, "abcd", 100, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if re.merged != 2 || re.bytes != 260 {
		t.Fatalf("after torn tail: %d/%d, want 2/260", re.merged, re.bytes)
	}
	if err := re.record(2, 400); err != nil {
		t.Fatal(err)
	}
	re.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"by`+"\n") || strings.Count(string(data), "\n") != 4 {
		t.Fatalf("journal after recovery:\n%s", data)
	}
}

// TestFrontierJournalRejectsDifferentSweep: a journal written by one
// sweep must refuse a resume under different parameters instead of
// silently merging mismatched outputs.
func TestFrontierJournalRejectsDifferentSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frontier")
	fj, err := openFrontier(path, "abcd", 100, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	fj.Close()

	for _, tc := range []struct {
		fp     string
		trials int
		seed   uint64
	}{
		{"beef", 100, 7}, // different scenario
		{"abcd", 200, 7}, // different trial count
		{"abcd", 100, 8}, // different seed
	} {
		if _, err := openFrontier(path, tc.fp, tc.trials, tc.seed, 10); err == nil ||
			!strings.Contains(err.Error(), "different sweep") {
			t.Fatalf("openFrontier(%+v) = %v, want different-sweep rejection", tc, err)
		}
	}

	// Garbage where the header should be is an error, not a silent
	// restart over a file we don't understand.
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openFrontier(bad, "abcd", 100, 7, 10); err == nil ||
		!strings.Contains(err.Error(), "unreadable header") {
		t.Fatalf("openFrontier on garbage = %v, want unreadable-header error", err)
	}
}

// TestFrontierJournalNonMonotonicTail: shard lines that skip an index
// or regress in bytes mark the corruption point — everything after is
// dropped.
func TestFrontierJournalNonMonotonicTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frontier")
	fj, err := openFrontier(path, "abcd", 100, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	fj.record(0, 120)
	fj.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 5 out of order: must not extend the frontier past 1.
	f.WriteString(`{"shard":5,"bytes":900}` + "\n")
	f.Close()

	re, err := openFrontier(path, "abcd", 100, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.merged != 1 || re.bytes != 120 {
		t.Fatalf("after out-of-order tail: %d/%d, want 1/120", re.merged, re.bytes)
	}
}
