package experiment

import (
	"fmt"
	"sort"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/rng"
	"rcbcast/internal/sim"
	"rcbcast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Delivery completeness across adversaries",
		Claim: "Theorem 1: at least (1-ε)n correct nodes receive m w.h.p. under every in-model adversary",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Reactive jamming and the decoy defence",
		Claim: "§4.1: a reactive Carol silences the bare protocol cheaply, but decoy traffic forces her to pay for a constant fraction of all slots (f < 1/24)",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E9",
		Title: "n-uniform stranding limit",
		Claim: "§2.3: an n-uniform Carol can strand a small ε-fraction, but stranding beyond the quiet-test threshold keeps the network (and her) running",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Approximate system-size parameters",
		Claim: "§4.2: constant-factor approximations of ln n and n preserve delivery at a constant-factor cost increase",
		Run:   runE10,
	})
}

// deliveryScenario is one row of E3.
type deliveryScenario struct {
	name     string
	strategy func(params *core.Params, n int) adversary.Strategy
	pool     func(n int) *energy.Pool
}

func e3Scenarios() []deliveryScenario {
	paperPool := func(n int) *energy.Pool {
		return energy.DefaultBudgets(1, 2).AdversaryPool(n, 1.0)
	}
	return []deliveryScenario{
		{name: "benign", strategy: func(*core.Params, int) adversary.Strategy { return adversary.Null{} }},
		{name: "full-jam", strategy: func(*core.Params, int) adversary.Strategy { return adversary.FullJam{} }, pool: paperPool},
		{name: "random-jam", strategy: func(*core.Params, int) adversary.Strategy { return adversary.RandomJam{P: 0.5} }, pool: paperPool},
		{name: "bursty", strategy: func(*core.Params, int) adversary.Strategy { return adversary.Bursty{Burst: 32, Gap: 32} }, pool: paperPool},
		{name: "inform-blocker", strategy: func(p *core.Params, _ int) adversary.Strategy {
			return adversary.PhaseBlocker{BlockInform: true, Params: p}
		}, pool: paperPool},
		{name: "inform+prop-blocker", strategy: func(p *core.Params, _ int) adversary.Strategy {
			return adversary.PhaseBlocker{BlockInform: true, BlockPropagate: true, Params: p}
		}, pool: paperPool},
		{name: "request-blocker", strategy: func(p *core.Params, _ int) adversary.Strategy {
			return adversary.PhaseBlocker{BlockRequest: true, Params: p}
		}, pool: paperPool},
		{name: "partition-5%", strategy: func(_ *core.Params, n int) adversary.Strategy {
			limit := n / 20
			return &adversary.PartitionBlocker{Stranded: func(node int) bool { return node < limit }}
		}},
		{name: "nack-spoofer", strategy: func(*core.Params, int) adversary.Strategy {
			return &adversary.NackSpoofer{Rate: 0.5}
		}, pool: paperPool},
		{name: "data-spoofer", strategy: func(*core.Params, int) adversary.Strategy {
			return adversary.DataSpoofer{Rate: 0.25}
		}, pool: paperPool},
		{name: "sweep", strategy: func(*core.Params, int) adversary.Strategy {
			return &adversary.SweepJammer{Fraction: 0.5}
		}, pool: paperPool},
		{name: "greedy-adaptive", strategy: func(*core.Params, int) adversary.Strategy {
			return &adversary.GreedyAdaptive{}
		}, pool: paperPool},
		{name: "blocker+spoofer", strategy: func(p *core.Params, _ int) adversary.Strategy {
			return adversary.Composite{Parts: []adversary.Strategy{
				adversary.PhaseBlocker{BlockInform: true, BlockPropagate: true, Params: p},
				&adversary.NackSpoofer{Rate: 0.3},
			}}
		}, pool: paperPool},
	}
}

// deliverySpec builds the trial spec for trial s of scenario `point`.
// The strategy factory closes over the spec's own Params copy so pointer
// strategies (PhaseBlocker) read protocol constants matching the run.
func deliverySpec(cfg Config, sc deliveryScenario, n, k, point, s int) sim.TrialSpec {
	params := core.PracticalParams(n, k)
	params.MaxRound = params.StartRound + 6 // bound hopeless runs
	spec := sim.TrialSpec{Params: params, Seed: cfg.seedAt(point, s)}
	spec.Strategy = func() adversary.Strategy {
		p := params
		return sc.strategy(&p, n)
	}
	if sc.pool != nil {
		spec.Pool = func() *energy.Pool { return sc.pool(n) }
	}
	return spec
}

func runE3(cfg Config) (*Report, error) {
	rep := newReport("E3", "Delivery completeness across adversaries",
		"informed fraction ≥ 1-ε for every in-model adversary")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	scenarios := e3Scenarios()
	specs := make([]sim.TrialSpec, 0, len(scenarios)*seeds)
	for i, sc := range scenarios {
		for s := 0; s < seeds; s++ {
			specs = append(specs, deliverySpec(cfg, sc, n, 2, i, s))
		}
	}
	results, err := sim.RunTrials(cfg.Procs, specs)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E3: informed fraction by adversary (n=%d, k=2, paper-scale pools)", n),
		"adversary", "informed frac", "stranded frac", "completed", "T spent")
	for i, sc := range scenarios {
		var fracs, strandeds, completeds, spents stats.Acc
		for s := 0; s < seeds; s++ {
			res := results[i*seeds+s]
			fracs.Add(res.InformedFrac())
			strandeds.Add(float64(res.Stranded) / float64(n))
			completeds.Add(b2f(res.Completed))
			spents.Add(float64(res.AdversarySpent))
		}
		tbl.AddRowf(sc.name, fracs.Mean(), strandeds.Mean(), completeds.Mean(), spents.Mean())
		key := sc.name
		rep.Values["informed_"+key] = fracs.Mean()
		rep.Values["completed_"+key] = completeds.Mean()
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("every in-model adversary leaves ≥ (1-ε)n nodes informed")
	rep.addFinding("reactive jamming is treated separately in E7 — its damage is economic, not delivery-absolute")
	return rep, nil
}

func runE7(cfg Config) (*Report, error) {
	rep := newReport("E7", "Reactive jamming and the decoy defence",
		"undefended, a reactive Carol matches the nodes' spend ~1:1 (resource competitiveness destroyed); decoys restore the ~T^{1/3} trade by forcing her to jam a constant fraction of all slots")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	tbl := stats.NewTable(
		fmt.Sprintf("E7: reactive jammer economics (n=%d, f=1/25 budgeted pools)", n),
		"defence", "marginal node-vs-Carol exp", "budgeted: informed", "budgeted: rounds", "budgeted: delay slots", "budgeted: T")
	bm := energy.DefaultBudgets(8, 2)
	f := 1.0 / 25
	mkParams := func(decoy bool) core.Params {
		params := core.PracticalParams(n, 2)
		if decoy {
			params.Decoy = true
			params.DecoyProb = 0.75 / float64(n)
			params.ListenBoost = 4
		}
		return params
	}
	// One flat spec list per defence mode: seeds unlimited-pool probe
	// trials (for the marginal fit) followed by seeds budgeted trials.
	// Both variants run through a single worker-pool dispatch.
	var specs []sim.TrialSpec
	for ri, decoy := range []bool{false, true} {
		for s := 0; s < seeds; s++ {
			params := mkParams(decoy)
			params.MaxRound = params.StartRound + 4
			specs = append(specs, sim.TrialSpec{
				Params:   params,
				Seed:     cfg.seedAt(7000+ri, s),
				Strategy: func() adversary.Strategy { return adversary.ReactiveJammer{} },
				Configure: func(o *engine.Options) {
					o.AllowReactive = true
					o.RecordPhases = true
				},
			})
		}
		for s := 0; s < seeds; s++ {
			params := mkParams(decoy)
			params.MaxRound = params.StartRound + 8
			specs = append(specs, sim.TrialSpec{
				Params:    params,
				Seed:      cfg.seedAt(7500+ri, s),
				Strategy:  func() adversary.Strategy { return adversary.ReactiveJammer{} },
				Pool:      func() *energy.Pool { return bm.AdversaryPool(n, f) },
				Configure: func(o *engine.Options) { o.AllowReactive = true },
			})
		}
	}
	results, err := sim.RunTrials(cfg.Procs, specs)
	if err != nil {
		return nil, err
	}
	for ri, decoy := range []bool{false, true} {
		suffix := "undefended"
		if decoy {
			suffix = "decoy"
		}
		base := ri * 2 * seeds

		// (a) Marginal exponent with an unlimited pool: fit per-round node
		// cost against per-round Carol spend over the jammed rounds.
		var xs, ys []float64
		for s := 0; s < seeds; s++ {
			res := results[base+s]
			perRoundCarol := map[int]float64{}
			perRoundNode := map[int]float64{}
			for _, ph := range res.Phases {
				perRoundCarol[ph.Phase.Round] += float64(ph.JammedSlots + ph.InjectedFrames)
				perRoundNode[ph.Phase.Round] += float64(ph.NodeListens+
					int64(ph.NodeDataSends+ph.NodeNacks+ph.NodeDecoys)) / float64(n)
			}
			// Walk rounds in order: FitPowerLaw's sums are float-order
			// sensitive, and map range order would leak into the rendered
			// exponent, breaking byte-reproducibility.
			rounds := make([]int, 0, len(perRoundCarol))
			for round := range perRoundCarol {
				rounds = append(rounds, round)
			}
			sort.Ints(rounds)
			for _, round := range rounds {
				if carol := perRoundCarol[round]; carol > 0 {
					xs = append(xs, carol)
					ys = append(ys, perRoundNode[round])
				}
			}
		}
		fit := stats.FitPowerLaw(xs, ys)

		// (b) Budgeted outcome: with the Lemma-19 pool (f < 1/24) decoys
		// drain Carol rounds earlier, cutting the delay exponentially.
		var fracs, rounds, slots, spents stats.Acc
		for s := 0; s < seeds; s++ {
			res := results[base+seeds+s]
			fracs.Add(res.InformedFrac())
			rounds.Add(float64(res.Rounds))
			slots.Add(float64(res.SlotsSimulated))
			spents.Add(float64(res.AdversarySpent))
		}
		tbl.AddRowf(suffix, fit.Exponent, fracs.Mean(), rounds.Mean(),
			slots.Mean(), spents.Mean())
		rep.Values["exponent_"+suffix] = fit.Exponent
		rep.Values["informed_"+suffix] = fracs.Mean()
		rep.Values["rounds_"+suffix] = rounds.Mean()
		rep.Values["delay_slots_"+suffix] = slots.Mean()
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("undefended: node cost ~ Carol spend^%.2f — she stalls the network at spend parity",
		rep.Values["exponent_undefended"])
	rep.addFinding("with decoys: node cost ~ Carol spend^%.2f — the Theorem-1 trade is restored",
		rep.Values["exponent_decoy"])
	rep.addFinding("same budgeted pool: decoys cut the achievable delay from %.3g to %.3g slots",
		rep.Values["delay_slots_undefended"], rep.Values["delay_slots_decoy"])
	return rep, nil
}

func runE9(cfg Config) (*Report, error) {
	rep := newReport("E9", "n-uniform stranding limit",
		"stranding succeeds only up to the quiet-test fraction; larger sets keep nacking and the network never falsely terminates")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	fracs := []float64{0.02, 0.05, 0.10, 0.30}
	params0 := core.PracticalParams(n, 2)
	tbl := stats.NewTable(
		fmt.Sprintf("E9: partition attack outcomes (n=%d, quiet fraction θ=%.3g)", n, 2*params0.Epsilon),
		"stranded requested", "informed frac", "stranded frac", "still active frac", "completed")
	specs := make([]sim.TrialSpec, 0, len(fracs)*seeds)
	for fi, want := range fracs {
		limit := int(want * float64(n))
		for s := 0; s < seeds; s++ {
			params := core.PracticalParams(n, 2)
			params.MaxRound = params.StartRound + 4
			specs = append(specs, sim.TrialSpec{
				Params: params,
				Seed:   cfg.seedAt(9000+fi, s),
				Strategy: func() adversary.Strategy {
					return &adversary.PartitionBlocker{
						Stranded: func(node int) bool { return node < limit },
					}
				},
			})
		}
	}
	results, err := sim.RunTrials(cfg.Procs, specs)
	if err != nil {
		return nil, err
	}
	for fi, want := range fracs {
		var informs, strandeds, actives, completeds stats.Acc
		for s := 0; s < seeds; s++ {
			res := results[fi*seeds+s]
			informs.Add(res.InformedFrac())
			strandeds.Add(float64(res.Stranded) / float64(n))
			actives.Add(float64(res.ActiveAtEnd) / float64(n))
			completeds.Add(b2f(res.Completed))
		}
		tbl.AddRowf(want, informs.Mean(), strandeds.Mean(),
			actives.Mean(), completeds.Mean())
		rep.Values[fmt.Sprintf("stranded_at_%.2f", want)] = strandeds.Mean()
		rep.Values[fmt.Sprintf("completed_at_%.2f", want)] = completeds.Mean()
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("small partitions terminate uninformed (the ε loss); oversized ones leave the network active, so the attack fails closed")
	return rep, nil
}

func runE10(cfg Config) (*Report, error) {
	rep := newReport("E10", "Approximate system-size parameters",
		"running with 2x-off estimates of ln n and n changes costs by a constant factor only")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	type variant struct {
		name  string
		tweak func(*core.Params, *engine.Options)
	}
	variants := []variant{
		{"exact", func(*core.Params, *engine.Options) {}},
		{"global ln 2x, n 2x", func(p *core.Params, _ *engine.Options) {
			p.LnOverride = 2 * p.LnN()
			p.NOverride = 2 * float64(p.N)
		}},
		{"global ln 0.5x, n 0.5x", func(p *core.Params, _ *engine.Options) {
			p.LnOverride = 0.5 * p.LnN()
			p.NOverride = 0.5 * float64(p.N)
		}},
		{"per-node ±2x", func(_ *core.Params, o *engine.Options) {
			o.Perturb = func(node int) (float64, float64) {
				// Deterministic per-node scale in [0.5, 2].
				u := rng.New(12345, uint64(node)).Float64()
				scale := 0.5 * (1 + 3*u)
				return scale, 1 / scale
			}
		}},
		{"poly overestimate ν=n² (g-sweep)", func(p *core.Params, _ *engine.Options) {
			p.PolyEstimate = float64(p.N) * float64(p.N)
		}},
	}
	specs := make([]sim.TrialSpec, 0, len(variants)*seeds)
	for vi, v := range variants {
		for s := 0; s < seeds; s++ {
			specs = append(specs, sim.TrialSpec{
				Params: core.PracticalParams(n, 2),
				Seed:   cfg.seedAt(10_000+vi, s),
				Configure: func(o *engine.Options) {
					v.tweak(&o.Params, o)
				},
			})
		}
	}
	results, err := sim.RunTrials(cfg.Procs, specs)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E10: §4.2 approximation modes (n=%d, k=2)", n),
		"mode", "informed frac", "completed", "node median cost", "cost vs exact")
	baselineCost := 0.0
	for vi, v := range variants {
		var fracs, completeds, medians stats.Acc
		for s := 0; s < seeds; s++ {
			res := results[vi*seeds+s]
			fracs.Add(res.InformedFrac())
			completeds.Add(b2f(res.Completed))
			medians.Add(float64(res.NodeCost.Median))
		}
		med := medians.Mean()
		if vi == 0 {
			baselineCost = med
		}
		ratio := med / baselineCost
		tbl.AddRowf(v.name, fracs.Mean(), completeds.Mean(), med, ratio)
		rep.Values[fmt.Sprintf("informed_v%d", vi)] = fracs.Mean()
		rep.Values[fmt.Sprintf("cost_ratio_v%d", vi)] = ratio
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("all approximation modes deliver; cost moves by small constant factors")
	return rep, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
