// Command parallelsweep demonstrates the streaming run session: a batch
// of full-jam runs dispatched across workers, results delivered to
// composable sinks — a CSV writer, count-based progress, and an ad-hoc
// aggregator — in deterministic trial order, with byte-identical
// aggregates whatever the worker count and only O(procs) results live.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"rcbcast"
)

func main() {
	const trials = 16
	// One declarative scenario fans out into per-trial specs; the
	// spec factories mint fresh adversary state per trial, so the batch
	// is safe on any worker count.
	sc := rcbcast.Scenario{
		N: 512, K: 2,
		Adversary: rcbcast.AdversarySpec{Kind: "full"},
		Budget:    rcbcast.BudgetSpec{Pool: 1 << 12},
	}
	specs := make([]rcbcast.TrialSpec, trials)
	for i := range specs {
		spec, err := sc.TrialSpec(rcbcast.TrialSeed(1, i))
		if err != nil {
			panic(err)
		}
		specs[i] = spec
	}
	for _, procs := range []int{1, 8} {
		// Three sinks share one streaming pass: the aggregator folds the
		// summary, the CSV writer captures per-trial records, and the
		// progress sink reports on stderr (stdout stays byte-identical).
		var informed, alice, carol int64
		var csvBuf bytes.Buffer
		err := rcbcast.Stream(context.Background(), procs, specs,
			rcbcast.FuncSink(func(_ int, res *rcbcast.Result) error {
				informed += int64(res.Informed)
				alice += res.Alice.Cost
				carol += res.AdversarySpent
				return nil
			}),
			rcbcast.NewCSVSink(&csvBuf),
			rcbcast.NewProgressSink(os.Stderr, trials, trials/2),
		)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(os.Stderr, "procs=%d: CSV sink captured %d bytes\n", procs, csvBuf.Len())
		fmt.Printf("procs=%-2d  %d trials: informed %d nodes total, alice paid %d, carol paid %d\n",
			procs, trials, informed, alice, carol)
	}
	fmt.Println("aggregates above must match line for line — that is the determinism guarantee")
}
