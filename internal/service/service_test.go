package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rcbcast/internal/scenario"
	"rcbcast/internal/sim/sink"
)

// testScenario is the quick sweep every service test runs: small
// network, bounded rounds, a budgeted full jammer — trials finish in
// microseconds. name distinguishes job ids (it feeds the sweep
// fingerprint without touching execution).
func testScenario(name string) scenario.Scenario {
	return scenario.Scenario{
		Name:      name,
		N:         64,
		Adversary: scenario.AdversarySpec{Kind: "full"},
		Budget:    scenario.BudgetSpec{Pool: 1024},
		Overrides: scenario.Overrides{ExtraRounds: 6},
	}
}

// referenceNDJSON runs the sweep uninterrupted through the plain
// scenario streaming path — the bytes every service path must
// reproduce exactly.
func referenceNDJSON(t *testing.T, sc scenario.Scenario, trials int, base uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sc.Stream(context.Background(), 2, base, 0, trials, sink.NewNDJSON(&buf)); err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	return buf.Bytes()
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Procs == 0 {
		cfg.Procs = 2
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Logf = t.Logf
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitStatus polls a job until cond accepts its status.
func waitStatus(t *testing.T, j *Job, what string, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := j.Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s; job %s is %s (%d/%d, err=%q)",
				what, st.ID, st.State, st.Done, st.Trials, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func stateIs(s State) func(Status) bool {
	return func(st Status) bool { return st.State == s }
}

// submitBody builds the POST /v1/jobs body for a scenario.
func submitBody(t *testing.T, sc scenario.Scenario, trials int) []byte {
	t.Helper()
	raw, err := scenario.Encode(sc)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SubmitRequest{Scenario: raw, Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postJob submits over HTTP and decodes the Status reply.
func postJob(t *testing.T, ts *httptest.Server, client string, body []byte) (int, Status) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestSubmitRunsToDoneByteIdentical(t *testing.T) {
	m := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	sc := testScenario("byte-identity")
	const trials = 40
	code, st := postJob(t, ts, "alice", submitBody(t, sc, trials))
	if code != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", code)
	}
	if st.ID == "" || st.Version == "" {
		t.Fatalf("submit reply missing id or version: %+v", st)
	}

	j, ok := m.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not in manager", st.ID)
	}
	final := waitStatus(t, j, "done", stateIs(StateDone))
	if final.Done != trials {
		t.Fatalf("done = %d, want %d", final.Done, trials)
	}

	code, got := getBody(t, ts, "/v1/jobs/"+st.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: got %d", code)
	}
	want := referenceNDJSON(t, sc, trials, 1)
	if !bytes.Equal(got, want) {
		t.Fatalf("service results differ from the plain sweep:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if lines := bytes.Count(got, []byte("\n")); lines != trials {
		t.Fatalf("results hold %d lines, want %d", lines, trials)
	}
}

func TestSubmitIsIdempotent(t *testing.T) {
	m := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	body := submitBody(t, testScenario("idempotent"), 10)
	code1, st1 := postJob(t, ts, "alice", body)
	code2, st2 := postJob(t, ts, "alice", body)
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit: got %d, want 202", code1)
	}
	if code2 != http.StatusOK {
		t.Fatalf("duplicate submit: got %d, want 200", code2)
	}
	if st1.ID != st2.ID {
		t.Fatalf("duplicate submit minted a new job: %s vs %s", st1.ID, st2.ID)
	}

	j, _ := m.Get(st1.ID)
	waitStatus(t, j, "done", stateIs(StateDone))
	if code, st := postJob(t, ts, "bob", body); code != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit after done: got %d/%s, want 200/done", code, st.State)
	}
	if n := m.Metrics().Submitted; n != 1 {
		t.Fatalf("submitted counter = %d, want 1", n)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want string // substring of the 400 error body
	}{
		{"invalid request json", `{`, "request body"},
		{"unknown request field", `{"scenario": {"n": 64}, "trails": 5}`, "trails"},
		{"missing scenario", `{"trials": 5}`, `"scenario" is required`},
		{"scenario wrong field type", `{"scenario": {"n": "big"}, "trials": 5}`, `field "n"`},
		{"scenario nested wrong type", `{"scenario": {"n": 64, "adversary": {"kind": "full", "p": "high"}}, "trials": 5}`, `field "adversary.p"`},
		{"scenario unknown field", `{"scenario": {"n": 64, "adverse": {}}, "trials": 5}`, "unknown field"},
		{"scenario invalid", `{"scenario": {"n": -3}, "trials": 5}`, "n"},
		{"zero trials", `{"scenario": {"n": 64}}`, "trials must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("got %d (%s), want 400", resp.StatusCode, data)
			}
			var errBody struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &errBody); err != nil {
				t.Fatalf("400 body is not {\"error\": ...} JSON: %s", data)
			}
			if !strings.Contains(errBody.Error, tc.want) {
				t.Fatalf("error %q does not name the problem %q", errBody.Error, tc.want)
			}
		})
	}
	if code, _ := getBody(t, ts, "/v1/jobs/jdeadbeefdeadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown job status: got %d, want 404", code)
	}
}

func TestHealthMetricsAndList(t *testing.T) {
	m := newTestManager(t, Config{Procs: 2})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	code, health := getBody(t, ts, "/healthz")
	if code != http.StatusOK || !bytes.Contains(health, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, health)
	}

	_, st := postJob(t, ts, "alice", submitBody(t, testScenario("metrics"), 8))
	j, _ := m.Get(st.ID)
	waitStatus(t, j, "done", stateIs(StateDone))

	code, data := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var met Metrics
	if err := json.Unmarshal(data, &met); err != nil {
		t.Fatal(err)
	}
	if met.Jobs[StateDone] != 1 || met.Submitted != 1 || met.Procs != 2 {
		t.Fatalf("metrics snapshot off: %+v", met)
	}
	if met.LiveResultBound != 8 { // sim.Window(2) = 4·2
		t.Fatalf("live-result bound = %d, want 8", met.LiveResultBound)
	}

	code, data = getBody(t, ts, "/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list = %+v, want the one job", list.Jobs)
	}
}

func TestCancelRunningThenResubmitResumes(t *testing.T) {
	const trials = 60
	sc := testScenario("cancel-resume")
	gate := newTrialGate(4) // trials 4.. block until released
	defer setWrapSpecs(gate.wrap)()

	m := newTestManager(t, Config{})
	j, accepted, err := m.Submit("alice", sc, trials, 1)
	if err != nil || !accepted {
		t.Fatalf("submit: accepted=%v err=%v", accepted, err)
	}
	// Wait until the free prefix is delivered and a trial is parked at
	// the gate: the job is genuinely mid-run.
	waitStatus(t, j, "prefix", func(st Status) bool { return st.Done >= 1 })
	gate.waitParked(t)

	if err := m.Cancel(j.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	gate.release()
	st := waitStatus(t, j, "canceled", stateIs(StateCanceled))
	if st.Done >= trials {
		t.Fatalf("cancel landed after the sweep finished (done=%d); gate did not hold", st.Done)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatalf("cancel is not idempotent on a canceled job: %v", err)
	}

	// Resubmit: same spec, same id — resumes from the journal and the
	// final bytes match an uninterrupted run exactly.
	j2, accepted, err := m.Submit("alice", sc, trials, 1)
	if err != nil || !accepted {
		t.Fatalf("resubmit: accepted=%v err=%v", accepted, err)
	}
	if j2 != j {
		t.Fatalf("resubmit minted a distinct job")
	}
	final := waitStatus(t, j2, "done", stateIs(StateDone))
	if final.Done != trials {
		t.Fatalf("resumed job done = %d, want %d", final.Done, trials)
	}
	got := readResults(t, j2)
	if want := referenceNDJSON(t, sc, trials, 1); !bytes.Equal(got, want) {
		t.Fatalf("resumed results differ from an uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	if err := m.Cancel(j2.ID); err == nil {
		t.Fatal("canceling a done job should be an error")
	}
}

func TestResultsStreamFollowsLiveAppends(t *testing.T) {
	const trials = 30
	sc := testScenario("live-follow")
	gate := newTrialGate(6)
	defer setWrapSpecs(gate.wrap)()

	m := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	_, st := postJob(t, ts, "alice", submitBody(t, sc, trials))
	j, _ := m.Get(st.ID)
	waitStatus(t, j, "prefix", func(s Status) bool { return s.Done >= 1 })

	// Attach mid-job: the subscriber must receive the journaled prefix
	// while the job is still gated, then the rest after release.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := newLineReader(resp.Body)
	first := br.readLines(t, 1) // arrives while trials 6.. are parked
	gate.release()
	rest := br.readAll(t)
	got := append(first, rest...)

	waitStatus(t, j, "done", stateIs(StateDone))
	if want := referenceNDJSON(t, sc, trials, 1); !bytes.Equal(got, want) {
		t.Fatalf("live-followed stream differs from the canonical bytes (%d vs %d)", len(got), len(want))
	}
}

// readResults drains a job's results file directly.
func readResults(t *testing.T, j *Job) []byte {
	t.Helper()
	data, err := os.ReadFile(j.resultsPath())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// lineReader incrementally consumes an HTTP NDJSON stream.
type lineReader struct{ r io.Reader }

func newLineReader(r io.Reader) *lineReader { return &lineReader{r} }

// readLines reads until n newline bytes have arrived.
func (lr *lineReader) readLines(t *testing.T, n int) []byte {
	t.Helper()
	var out []byte
	buf := make([]byte, 1)
	seen := 0
	for seen < n {
		k, err := lr.r.Read(buf)
		if k > 0 {
			out = append(out, buf[0])
			if buf[0] == '\n' {
				seen++
			}
		}
		if err != nil {
			t.Fatalf("stream ended after %d/%d lines: %v", seen, n, err)
		}
	}
	return out
}

func (lr *lineReader) readAll(t *testing.T) []byte {
	t.Helper()
	data, err := io.ReadAll(lr.r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
