package scenario

import (
	"reflect"
	"strings"
	"testing"

	"rcbcast/internal/topology"
)

// TestTopologyJSONGoldens pins the exact JSON encoding of a scenario
// per topology kind — the round-trip golden the CLIs' -dump-scenario
// path relies on (clique is the zero value and must stay invisible, so
// every pre-topology scenario file keeps its bytes).
func TestTopologyJSONGoldens(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"clique-implicit",
			Scenario{N: 64, Adversary: AdversarySpec{Kind: "full"}},
			"{\n  \"n\": 64,\n  \"adversary\": {\n    \"kind\": \"full\"\n  }\n}\n"},
		{"clique-explicit",
			Scenario{N: 64, Topology: topology.Spec{Kind: "clique"}},
			"{\n  \"n\": 64,\n  \"topology\": {\n    \"kind\": \"clique\"\n  }\n}\n"},
		{"grid",
			Scenario{N: 64, Topology: topology.Spec{Kind: "grid", Width: 8, Reach: 2}},
			"{\n  \"n\": 64,\n  \"topology\": {\n    \"kind\": \"grid\",\n    \"width\": 8,\n    \"reach\": 2\n  }\n}\n"},
		{"gilbert",
			Scenario{N: 64, Topology: topology.Spec{Kind: "gilbert", Radius: 0.25},
				Adversary: AdversarySpec{Kind: "random", P: 0.5}},
			"{\n  \"n\": 64,\n  \"topology\": {\n    \"kind\": \"gilbert\",\n    \"radius\": 0.25\n  },\n  \"adversary\": {\n    \"kind\": \"random\",\n    \"p\": 0.5\n  }\n}\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data, err := Encode(c.sc)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != c.want {
				t.Fatalf("encoding drifted:\n--- got\n%s--- want\n%s", data, c.want)
			}
			back, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, c.sc) {
				t.Fatalf("round trip lost information: %+v", back)
			}
		})
	}
}

// TestTopologyFlagRoundTrip covers the compact syntax per kind, as the
// CLIs parse it into scenarios.
func TestTopologyFlagRoundTrip(t *testing.T) {
	for _, arg := range []string{"clique", "grid", "grid:w=16,reach=2", "gilbert:r=0.2"} {
		spec, err := topology.ParseSpec(arg)
		if err != nil {
			t.Fatalf("%q: %v", arg, err)
		}
		sc := Scenario{N: 64, Topology: spec, Overrides: Overrides{ExtraRounds: 2}}
		if err := sc.Validate(); err != nil {
			t.Fatalf("%q does not validate in a scenario: %v", arg, err)
		}
		if spec.String() == "" {
			t.Fatalf("%q renders empty", arg)
		}
		again, err := topology.ParseSpec(spec.String())
		if err != nil || again != spec {
			t.Fatalf("flag round trip %q -> %q -> %+v (%v)", arg, spec.String(), again, err)
		}
	}
}

// TestTopologyThreadsThroughBuildAndTrialSpec: the spec a scenario
// declares must reach engine.Options on both conversion paths.
func TestTopologyThreadsThroughBuildAndTrialSpec(t *testing.T) {
	sc := Scenario{N: 64, Seed: 3,
		Topology:  topology.Spec{Kind: "gilbert", Radius: 0.3},
		Overrides: Overrides{ExtraRounds: 2}}
	opts, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Topology != sc.Topology {
		t.Fatalf("Build dropped the topology: %+v", opts.Topology)
	}
	ts, err := sc.TrialSpec(99)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Topology != sc.Topology {
		t.Fatalf("TrialSpec dropped the topology: %+v", ts.Topology)
	}
	// And the scenario actually runs on the sparse path: with r=0.3 and
	// Alice at the center, some of the 64 nodes are out of 2-hop reach.
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed == 0 || res.Informed == 64 {
		t.Fatalf("gilbert run looks like a clique run: informed %d/64", res.Informed)
	}
}

func TestTopologyValidationSurfacesInScenario(t *testing.T) {
	for _, sc := range []Scenario{
		{N: 64, Topology: topology.Spec{Kind: "torus"}},
		{N: 64, Topology: topology.Spec{Kind: "gilbert"}},
		{N: 64, Topology: topology.Spec{Kind: "grid", Radius: 0.2}},
	} {
		if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "topology") {
			t.Fatalf("scenario %+v: want topology validation error, got %v", sc.Topology, err)
		}
	}
}

// TestTopologyRegistryEntriesRunSparse: the registry's topology
// scenarios must really exercise the sparse kernel.
func TestTopologyRegistryEntriesRunSparse(t *testing.T) {
	for _, name := range []string{"grid-wave", "gilbert-jam"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s missing from registry", name)
		}
		if sc.Topology.IsClique() {
			t.Fatalf("%s is not a sparse topology scenario", name)
		}
		sc.N, sc.Seed = 100, 4
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Informed == 0 {
			t.Fatalf("%s informed nobody", name)
		}
		if res.Informed == 100 {
			t.Fatalf("%s informed everyone — not distinguishable from the clique", name)
		}
	}
}
