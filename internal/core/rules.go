package core

import "math"

// This file captures the protocol's state-transition rules as pure
// functions so that both engines (and the tests) share one authoritative
// encoding of "who sends when, and who terminates when" (§2, §3).

// InformMark records *when* a node became informed within a round:
// MarkInformPhase if during the inform phase, otherwise the propagation
// step number h in [1, k-1]. Uninformed nodes carry no mark.
type InformMark int

// MarkInformPhase marks nodes informed during the inform phase.
const MarkInformPhase InformMark = 0

// SendStep returns the propagation step (1-based) in which a node with the
// given mark relays m, or 0 if it never relays. A node informed in the
// inform phase sends in step 1 (it is S_{i,1}); a node informed during
// step h sends in step h+1 (it is S_{i,h+1}); a node informed during the
// final step k-1 has no later step and never sends.
func (p *Params) SendStep(mark InformMark) int {
	step := int(mark) + 1
	if step > p.K-1 {
		return 0
	}
	return step
}

// TerminationStep returns the propagation step at whose end a node with
// the given mark terminates: the step it sends in, or — for nodes informed
// in the final step — the final step itself (equivalently, the end of the
// propagation phase, which is what Figure 1's "terminates at the end of
// the phase" means for k = 2).
func (p *Params) TerminationStep(mark InformMark) int {
	step := int(mark) + 1
	if step > p.K-1 {
		return p.K - 1
	}
	return step
}

// BlockedFraction returns the fraction of a phase's slots the adversary
// must jam for the phase to count as blocked in the analysis: 1/2 for
// inform and propagation phases (and steps), and 1-e^{-4ε′} for the
// request phase (§2.2 — "any constant fraction will work; we choose this
// threshold to simplify the analysis").
func (p *Params) BlockedFraction(kind PhaseKind) float64 {
	if kind == PhaseRequest {
		return 1 - math.Exp(-4*p.Epsilon)
	}
	return 0.5
}

// BlockCost returns the number of jammed slots that renders the given
// phase blocked — the minimum spend for Carol to stop that phase from
// making progress. Adversary strategies use this to decide affordability.
func (p *Params) BlockCost(ph Phase) int64 {
	return int64(math.Ceil(p.BlockedFraction(ph.Kind) * float64(ph.Length)))
}

// Schedule iterates the full protocol schedule round by round. A
// Schedule must be initialized with NewSchedule or Reset before use. A
// Schedule value Reset across runs reuses its round buffer, so
// steady-state iteration costs no allocation beyond the buffer's
// high-water mark.
type Schedule struct {
	params *Params
	round  int
	queue  []Phase
	pos    int
}

// NewSchedule returns an iterator positioned at StartRound.
func NewSchedule(params *Params) *Schedule {
	s := &Schedule{}
	s.Reset(params)
	return s
}

// Reset re-points the iterator at params' StartRound, keeping the round
// buffer's capacity.
func (s *Schedule) Reset(params *Params) {
	s.params = params
	s.round = params.StartRound
	s.queue = s.queue[:0]
	s.pos = 0
}

// Next returns the next phase in execution order and true, or a zero Phase
// and false after MaxRound's request phase.
func (s *Schedule) Next() (Phase, bool) {
	if s.pos >= len(s.queue) {
		if s.round > s.params.LastRound() {
			return Phase{}, false
		}
		s.queue = s.params.AppendRound(s.queue[:0], s.round)
		s.pos = 0
		s.round++
	}
	ph := s.queue[s.pos]
	s.pos++
	return ph, true
}

// ExpectedAliceCostPerRound returns Alice's expected send+listen cost in
// round i — O(2^{i/k}·ln^k n) — used by tests to validate load-balancing
// and by DESIGN.md's budget discussion.
func (p *Params) ExpectedAliceCostPerRound(i int) float64 {
	var cost float64
	for _, ph := range p.Round(i) {
		cost += float64(ph.Length) * (ph.AliceSendP + ph.AliceListenP)
	}
	return cost
}

// ExpectedNodeCostPerRound returns an always-active uninformed node's
// expected cost in round i — O(2^{i/k}) up to constants. Actual nodes pay
// less because they stop listening once informed.
func (p *Params) ExpectedNodeCostPerRound(i int) float64 {
	var cost float64
	for _, ph := range p.Round(i) {
		cost += float64(ph.Length) * (ph.NodeListenP + ph.NodeSendP + ph.DecoyP)
	}
	return cost
}
