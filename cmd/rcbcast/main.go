// Command rcbcast runs a single ε-BROADCAST simulation and prints the
// outcome: delivery, latency, per-device costs, and the adversary's spend.
//
// Usage:
//
//	rcbcast [flags]
//
//	-n 1024          correct nodes
//	-k 2             protocol parameter k >= 2
//	-seed 1          RNG seed
//	-adversary full  null | full | random | bursty | blocker | partition |
//	                 spoofer | reactive
//	-pool 16384      adversary energy pool (0 = unlimited)
//	-decoy           enable the §4.1 decoy defence
//	-engine fast     fast | actors
//	-phases          print the per-phase trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcbcast:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcbcast", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 1024, "number of correct nodes")
		k       = fs.Int("k", 2, "protocol parameter k >= 2")
		seed    = fs.Uint64("seed", 1, "RNG seed")
		adv     = fs.String("adversary", "full", "null|full|random|bursty|blocker|partition|spoofer|reactive")
		pool    = fs.Int64("pool", 1<<14, "adversary energy pool (0 = unlimited)")
		jamP    = fs.Float64("jam-p", 0.5, "per-slot probability for -adversary random")
		strand  = fs.Float64("strand", 0.05, "stranded fraction for -adversary partition")
		decoy   = fs.Bool("decoy", false, "enable the §4.1 decoy defence")
		eng     = fs.String("engine", "fast", "fast|actors")
		phases  = fs.Bool("phases", false, "print the per-phase trace")
		traceTo = fs.String("trace", "", "write an event trace: 'text' or 'json' to stdout, or a .ndjson file path")
		paper   = fs.Bool("paper", false, "use PaperParams instead of PracticalParams")
		budgets = fs.Bool("budgets", false, "enforce the paper's device budgets (C=8)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var params core.Params
	if *paper {
		params = core.PaperParams(*n, *k)
	} else {
		params = core.PracticalParams(*n, *k)
	}
	if *decoy {
		params.Decoy = true
		params.DecoyProb = 0.75 / float64(*n)
		params.ListenBoost = 4
	}

	opts := engine.Options{
		Params:       params,
		Seed:         *seed,
		RecordPhases: *phases,
	}
	switch {
	case *traceTo == "":
	case *traceTo == "text":
		opts.Tracer = trace.NewText(out)
	case *traceTo == "json":
		opts.Tracer = trace.NewJSON(out)
	default:
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.Tracer = trace.NewJSON(f)
	}
	if *pool > 0 {
		opts.Pool = energy.NewPool(*pool)
	}
	if *budgets {
		bm := energy.DefaultBudgets(8, *k)
		opts.NodeBudget = bm.Node(*n)
		opts.AliceBudget = bm.Alice(*n)
	}

	switch *adv {
	case "null":
		opts.Strategy = adversary.Null{}
	case "full":
		opts.Strategy = adversary.FullJam{}
	case "random":
		opts.Strategy = adversary.RandomJam{P: *jamP}
	case "bursty":
		opts.Strategy = adversary.Bursty{Burst: 32, Gap: 32}
	case "blocker":
		opts.Strategy = adversary.PhaseBlocker{
			BlockInform: true, BlockPropagate: true, Params: &params,
		}
	case "partition":
		limit := int(*strand * float64(*n))
		opts.Strategy = &adversary.PartitionBlocker{
			Stranded: func(node int) bool { return node < limit },
		}
	case "spoofer":
		opts.Strategy = &adversary.NackSpoofer{Rate: 0.5}
	case "reactive":
		opts.Strategy = adversary.ReactiveJammer{}
		opts.AllowReactive = true
		params.MaxRound = params.StartRound + 6
		opts.Params = params
	default:
		return fmt.Errorf("unknown adversary %q", *adv)
	}

	var res *engine.Result
	var err error
	switch *eng {
	case "fast":
		res, err = engine.Run(opts)
	case "actors":
		res, err = engine.RunActors(opts)
	default:
		return fmt.Errorf("unknown engine %q", *eng)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "protocol:   ε-BROADCAST k=%d n=%d (%s, start round %d)\n",
		params.K, params.N, params.Variant, params.StartRound)
	fmt.Fprintf(out, "adversary:  %s (spent T=%d: %d jams, %d spoofs)\n",
		res.StrategyName, res.AdversarySpent, res.AdversaryJams, res.AdversaryInjections)
	fmt.Fprintf(out, "delivery:   %d/%d informed (%.1f%%), %d stranded, %d dead, %d still active\n",
		res.Informed, res.N, 100*res.InformedFrac(), res.Stranded, res.Dead, res.ActiveAtEnd)
	fmt.Fprintf(out, "latency:    %d slots over %d rounds (completed=%t)\n",
		res.SlotsSimulated, res.Rounds, res.Completed)
	fmt.Fprintf(out, "alice:      cost %d (%d sends, %d listens), terminated=%t round=%d\n",
		res.Alice.Cost, res.Alice.Sends, res.Alice.Listens, res.Alice.Terminated, res.Alice.Round)
	fmt.Fprintf(out, "node cost:  min %d / median %d / mean %.1f / max %d\n",
		res.NodeCost.Min, res.NodeCost.Median, res.NodeCost.Mean, res.NodeCost.Max)
	if res.AdversarySpent > 0 && res.NodeCost.Median > 0 {
		fmt.Fprintf(out, "competitive: Carol paid %.1fx the median node (paper: node ~ T^{1/%d})\n",
			float64(res.AdversarySpent)/float64(res.NodeCost.Median), params.K+1)
	}
	if *phases {
		fmt.Fprintln(out, "\nper-phase trace:")
		for _, ph := range res.Phases {
			fmt.Fprintf(out, "  %-28s aliceSends=%-5d relays=%-6d nacks=%-6d decoys=%-6d jams=%-7d informed=%-5d active=%d\n",
				ph.Phase.String(), ph.AliceSends, ph.NodeDataSends, ph.NodeNacks,
				ph.NodeDecoys, ph.JammedSlots, ph.InformedAfter, ph.ActiveAfter)
		}
	}
	return nil
}
