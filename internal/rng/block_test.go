package rng

import (
	"math"
	"testing"
)

// TestLogPortableMatchesMathLog pins the portable fdlibm kernel to
// math.Log bit for bit over the draw domain — the identity the whole
// block-draw design rests on. If this test fails on some platform, the
// init self-check must have routed block draws to math.Log already;
// assert that coupling too.
func TestLogPortableMatchesMathLog(t *testing.T) {
	sm := uint64(42)
	mismatches := 0
	for i := 0; i < 2_000_000; i++ {
		u := float64(splitMix64(&sm)>>11) * 0x1p-53
		if u == 0 {
			u = 0x1p-53
		}
		if got, want := logPortable(u), math.Log(u); got != want {
			mismatches++
			if useLogPortable {
				t.Fatalf("logPortable(%x) = %x, math.Log = %x, but useLogPortable is true",
					u, got, want)
			}
		}
	}
	if mismatches > 0 {
		t.Logf("portable log kernel differs from math.Log on this platform (%d/2M); block draws fall back", mismatches)
	}
	for _, u := range []float64{0x1p-53, 0x1p-52, 0.25, 0.5, math.Sqrt2 / 2, math.Nextafter(math.Sqrt2/2, 0), 0.75, 0.9999999999999999} {
		if got, want := logPortable(u), math.Log(u); got != want && useLogPortable {
			t.Fatalf("logPortable(%v) = %x, math.Log = %x", u, got, want)
		}
	}
}

// TestLog4PortableMatchesScalar pins the interleaved four-lane kernel
// to its scalar form lane for lane.
func TestLog4PortableMatchesScalar(t *testing.T) {
	sm := uint64(7)
	for i := 0; i < 100_000; i++ {
		var u [4]float64
		for j := range u {
			u[j] = float64(splitMix64(&sm)>>11) * 0x1p-53
			if u[j] == 0 {
				u[j] = 0x1p-53
			}
		}
		l0, l1, l2, l3 := log4Portable(u[0], u[1], u[2], u[3])
		for j, got := range []float64{l0, l1, l2, l3} {
			if want := logPortable(u[j]); got != want {
				t.Fatalf("lane %d: log4Portable(%x) = %x, logPortable = %x", j, u[j], got, want)
			}
		}
	}
}

// TestGeometricBlockMatchesScalar asserts the block draw is the scalar
// draw sequence: same values element for element, same stream state
// afterwards, across probabilities from near-0 to near-1 and block
// lengths that exercise both the four-lane body and the remainder tail.
func TestGeometricBlockMatchesScalar(t *testing.T) {
	ps := []float64{1e-9, 1e-4, 0.01, 0.1, 0.3, 0.5, 0.9, 0.999999}
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 16, 33}
	for _, p := range ps {
		lnQ := math.Log1p(-p)
		for _, size := range sizes {
			a := New(99, uint64(size))
			b := New(99, uint64(size))
			block := make([]int, size)
			a.GeometricBlockLnQ(lnQ, block)
			for i := 0; i < size; i++ {
				want := b.GeometricLnQ(lnQ)
				if block[i] != want {
					t.Fatalf("p=%v size=%d draw %d: block %d, scalar %d", p, size, i, block[i], want)
				}
			}
			if a.s != b.s {
				t.Fatalf("p=%v size=%d: stream states diverged after block draw", p, size)
			}
		}
	}
}

// TestGeometricBlockNeverSentinel exercises the MaxInt "never" sentinel
// through the block path: a p so small that ln(u)/lnQ overflows the
// int64 guard must come back as MaxInt from both paths.
func TestGeometricBlockNeverSentinel(t *testing.T) {
	lnQ := math.Log1p(-5e-324) // smallest positive p: lnQ is -5e-324ish, ratios explode
	a, b := New(3), New(3)
	block := make([]int, 8)
	a.GeometricBlockLnQ(lnQ, block)
	for i, got := range block {
		if want := b.GeometricLnQ(lnQ); got != want {
			t.Fatalf("draw %d: block %d, scalar %d", i, got, want)
		}
		if got != math.MaxInt {
			t.Fatalf("draw %d: expected the MaxInt sentinel, got %d", i, got)
		}
	}
}

// TestSetGeoBlock8Differential pins the in-process kernel switch: with
// the assembly kernel force-disabled, block draws must still match the
// scalar sequence bit for bit (the pure-Go fallback path), and the
// switch must restore cleanly. On hosts without the kernel both states
// are the Go path and the test degenerates to a plain differential.
func TestSetGeoBlock8Differential(t *testing.T) {
	was := SetGeoBlock8(false)
	defer SetGeoBlock8(was)
	if GeoBlock8Enabled() {
		t.Fatal("kernel reported enabled while force-disabled")
	}
	for _, p := range []float64{0.9, 0.3, 0.01, 1e-9} {
		lnQ := math.Log1p(-p)
		blk := New(99)
		ref := New(99)
		var buf [24]int
		blk.GeometricBlockLnQ(lnQ, buf[:])
		for i, got := range buf {
			if want := ref.GeometricLnQ(lnQ); got != want {
				t.Fatalf("p=%v draw %d: fallback block %d, scalar %d", p, i, got, want)
			}
		}
	}
	if SetGeoBlock8(was) != false {
		t.Fatal("restore returned the wrong previous state")
	}
	if GeoBlock8Enabled() != was {
		t.Fatal("switch did not restore the detected state")
	}
}

func BenchmarkGeometricScalar(b *testing.B) {
	st := New(1)
	lnQ := math.Log1p(-0.05)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += st.GeometricLnQ(lnQ)
	}
	_ = sink
}

func BenchmarkGeometricBlock8(b *testing.B) {
	st := New(1)
	lnQ := math.Log1p(-0.05)
	var buf [8]int
	sink := 0
	for i := 0; i < b.N; i += 8 {
		st.GeometricBlockLnQ(lnQ, buf[:])
		sink += buf[0]
	}
	_ = sink
}
