package dist

import (
	"fmt"

	"rcbcast/internal/sim/sink"
	"rcbcast/internal/stats"
)

// Summary aggregates a sweep's per-trial records into per-metric
// stats.Acc folds. Shard summaries are folded trial by trial (in trial
// order, by the worker client) and merged into the sweep summary in
// shard order by the merge loop — a fixed fold tree, so the summary is
// deterministic for any worker count and completion interleaving.
type Summary struct {
	Trials         int64     `json:"trials"`
	CompletedRate  float64   `json:"completed_rate"`
	Informed       stats.Acc `json:"-"`
	Stranded       stats.Acc `json:"-"`
	Dead           stats.Acc `json:"-"`
	Rounds         stats.Acc `json:"-"`
	Slots          stats.Acc `json:"-"`
	AliceCost      stats.Acc `json:"-"`
	NodeMaxCost    stats.Acc `json:"-"`
	AdversarySpent stats.Acc `json:"-"`

	completed int64
}

// add folds one trial record.
func (s *Summary) add(rec *sink.Record) {
	s.Trials++
	if rec.Completed {
		s.completed++
	}
	s.Informed.Add(float64(rec.Informed))
	s.Stranded.Add(float64(rec.Stranded))
	s.Dead.Add(float64(rec.Dead))
	s.Rounds.Add(float64(rec.Rounds))
	s.Slots.Add(float64(rec.Slots))
	s.AliceCost.Add(float64(rec.AliceCost))
	s.NodeMaxCost.Add(float64(rec.NodeMaxCost))
	s.AdversarySpent.Add(float64(rec.AdversarySpent))
	s.CompletedRate = float64(s.completed) / float64(s.Trials)
}

// merge folds another (shard) summary in.
func (s *Summary) merge(o *Summary) {
	s.Trials += o.Trials
	s.completed += o.completed
	if s.Trials > 0 {
		s.CompletedRate = float64(s.completed) / float64(s.Trials)
	}
	s.Informed.Merge(o.Informed)
	s.Stranded.Merge(o.Stranded)
	s.Dead.Merge(o.Dead)
	s.Rounds.Merge(o.Rounds)
	s.Slots.Merge(o.Slots)
	s.AliceCost.Merge(o.AliceCost)
	s.NodeMaxCost.Merge(o.NodeMaxCost)
	s.AdversarySpent.Merge(o.AdversarySpent)
}

// String renders the headline aggregates, rcexp-summary style.
func (s *Summary) String() string {
	return fmt.Sprintf(
		"trials=%d completed=%.3f informed=%.1f±%.1f rounds=%.1f±%.1f alice_cost=%.1f±%.1f adversary_spent=%.1f±%.1f",
		s.Trials, s.CompletedRate,
		s.Informed.Mean(), s.Informed.Std(),
		s.Rounds.Mean(), s.Rounds.Std(),
		s.AliceCost.Mean(), s.AliceCost.Std(),
		s.AdversarySpent.Mean(), s.AdversarySpent.Std(),
	)
}
