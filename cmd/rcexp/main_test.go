package main

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func TestRcexpList(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E12"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRcexpSingleQuick(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "E9", "-quick", "-n", "128", "-seeds", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E9") || !strings.Contains(buf.String(), "wall time") {
		t.Fatalf("report incomplete:\n%s", buf.String())
	}
}

func TestRcexpMarkdown(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "E9", "-quick", "-n", "128", "-seeds", "1", "-markdown"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### E9") || !strings.Contains(buf.String(), "|---|") {
		t.Fatalf("markdown output wrong:\n%s", buf.String())
	}
}

// TestRcexpProcsDeterministic asserts the CLI contract stated in the doc
// comment: modulo wall-time lines, output is byte-identical for every
// -procs value.
func TestRcexpProcsDeterministic(t *testing.T) {
	render := func(procs string) string {
		var buf strings.Builder
		args := []string{"-id", "E3", "-quick", "-n", "128", "-procs", procs}
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		var kept []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "wall time") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	if p1, p8 := render("1"), render("8"); p1 != p8 {
		t.Fatalf("-procs 1 and -procs 8 diverged:\n--- procs=1\n%s\n--- procs=8\n%s", p1, p8)
	}
}

func TestRcexpUnknownID(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "E99"}, &buf); err == nil {
		t.Fatal("unknown id must error")
	}
}

// TestRcexpSweepJSONL runs the raw streaming sweep mode end to end: one
// NDJSON record per trial, in trial order, byte-identical across -procs.
func TestRcexpSweepJSONL(t *testing.T) {
	render := func(procs string) string {
		var buf strings.Builder
		args := []string{"-scenario", "full-jam", "-n", "64", "-trials", "6", "-procs", procs}
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := render("1")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 NDJSON lines, got %d:\n%s", len(lines), out)
	}
	for i, line := range lines {
		var rec struct {
			Trial    int    `json:"trial"`
			N        int    `json:"n"`
			Strategy string `json:"strategy"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec.Trial != i || rec.N != 64 || rec.Strategy != "full-jam" {
			t.Fatalf("line %d: %+v", i, rec)
		}
	}
	if out8 := render("8"); out8 != out {
		t.Fatalf("sweep output diverges across -procs:\n%s\n---\n%s", out, out8)
	}
}

func TestRcexpSweepCSV(t *testing.T) {
	var buf strings.Builder
	args := []string{"-scenario", "full-jam", "-n", "64", "-trials", "3", "-out", "csv"}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "trial,n,informed") {
		t.Fatalf("csv output wrong:\n%s", buf.String())
	}
}

func TestRcexpSweepErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-scenario", "no-such-scenario", "-trials", "2"}, &buf); err == nil {
		t.Fatal("unknown scenario must error")
	}
	if err := run(context.Background(), []string{"-scenario", "full-jam", "-n", "64"}, &buf); err == nil {
		t.Fatal("missing -trials must error")
	}
	if err := run(context.Background(), []string{"-scenario", "full-jam", "-n", "64", "-trials", "2", "-out", "xml"}, &buf); err == nil {
		t.Fatal("unknown -out must error")
	}
}

// TestRcexpSweepCheckpointResume drives the CLI path of the resume
// contract: a canceled sweep journals its prefix, and rerunning the
// same command completes the remaining trials.
func TestRcexpSweepCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	args := func() []string {
		return []string{"-scenario", "full-jam", "-n", "64", "-trials", "8", "-checkpoint", ckpt}
	}

	// Uninterrupted reference.
	var want strings.Builder
	refCkpt := filepath.Join(t.TempDir(), "ref.ckpt")
	refArgs := []string{"-scenario", "full-jam", "-n", "64", "-trials", "8", "-checkpoint", refCkpt}
	if err := run(context.Background(), refArgs, &want); err != nil {
		t.Fatal(err)
	}

	// Canceled first attempt: the pre-canceled context stops the sweep
	// before any trial is delivered, but exercises the full error path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var first strings.Builder
	err := run(ctx, args(), &first)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("canceled sweep: %v", err)
	}

	// Resume run completes and the journal now covers every trial.
	var second strings.Builder
	if err := run(context.Background(), args(), &second); err != nil {
		t.Fatal(err)
	}
	if first.String()+second.String() != want.String() {
		t.Fatalf("resumed output differs from uninterrupted run:\n%q\n+\n%q\nwant\n%q",
			first.String(), second.String(), want.String())
	}
}

func TestRcexpExperimentCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf strings.Builder
	err := run(ctx, []string{"-id", "E3", "-quick", "-n", "128"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("canceled experiment: %v", err)
	}
}

func TestRcexpListTopologies(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-list-topologies"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clique", "grid", "gilbert"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("topology listing missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRcexpSweepTopology runs one raw sweep per topology kind and
// checks the -procs byte-identity contract holds on the sparse path.
func TestRcexpSweepTopology(t *testing.T) {
	for _, spec := range []string{"grid:reach=2", "gilbert:r=0.3"} {
		render := func(procs string) string {
			var buf strings.Builder
			args := []string{"-scenario", "benign", "-topology", spec,
				"-n", "64", "-trials", "4", "-procs", procs}
			if err := run(context.Background(), args, &buf); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		}
		out := render("1")
		if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 4 {
			t.Fatalf("%s: want 4 NDJSON lines, got %d", spec, len(lines))
		}
		if render("8") != out {
			t.Fatalf("%s: sweep output diverges across -procs", spec)
		}
	}
}

func TestRcexpTopologyErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-topology", "grid"}, &buf); err == nil {
		t.Fatal("-topology without -scenario must error")
	}
	if err := run(context.Background(), []string{"-scenario", "benign", "-topology", "torus", "-trials", "2"}, &buf); err == nil {
		t.Fatal("unknown topology must error")
	}
}

// TestRcexpE13Quick smokes the topology experiment end to end.
func TestRcexpE13Quick(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "E13", "-quick", "-seeds", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E13") || !strings.Contains(buf.String(), "reachable") {
		t.Fatalf("E13 report incomplete:\n%s", buf.String())
	}
}

// TestRcexpShardOracle is the poor-man's-cluster contract: the -shard
// i/N outputs, concatenated in order, are byte-identical to the full
// run — including through a checkpointed shard — and carry sweep-global
// trial numbers.
func TestRcexpShardOracle(t *testing.T) {
	sweep := func(extra ...string) string {
		var buf strings.Builder
		args := append([]string{"-scenario", "full-jam", "-n", "64", "-trials", "7"}, extra...)
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	full := sweep()
	var parts strings.Builder
	for i := 0; i < 3; i++ {
		parts.WriteString(sweep("-shard", fmt.Sprintf("%d/3", i)))
	}
	if parts.String() != full {
		t.Fatalf("concatenated shards differ from the full run:\n%s\n---\n%s", parts.String(), full)
	}

	// A middle shard's first line carries its sweep-global trial number.
	mid := sweep("-shard", "1/3")
	var rec struct {
		Trial int `json:"trial"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(mid, "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Trial != 2 { // shard 1/3 of 7 trials = [2, 4)
		t.Fatalf("shard 1/3 starts at trial %d, want 2", rec.Trial)
	}

	// Checkpointed shard: same bytes, and the journal is range-stamped —
	// a different shard of the same sweep must refuse to resume it.
	ckpt := filepath.Join(t.TempDir(), "shard.ckpt")
	if got := sweep("-shard", "1/3", "-checkpoint", ckpt); got != mid {
		t.Fatalf("checkpointed shard output differs:\n%s\n---\n%s", got, mid)
	}
	var buf strings.Builder
	err := run(context.Background(),
		[]string{"-scenario", "full-jam", "-n", "64", "-trials", "7", "-shard", "2/3", "-checkpoint", ckpt}, &buf)
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("foreign shard resumed another shard's journal: %v", err)
	}
}

func TestRcexpShardErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-shard", "0/2"}, &buf); err == nil {
		t.Fatal("-shard without -scenario must error")
	}
	for _, bad := range []string{"x", "3/2", "-1/2", "0/0", "9/8"} {
		args := []string{"-scenario", "full-jam", "-n", "64", "-trials", "4", "-shard", bad}
		if err := run(context.Background(), args, &buf); err == nil {
			t.Fatalf("-shard %q accepted", bad)
		}
	}
}
