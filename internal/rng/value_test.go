package rng

import (
	"math"
	"testing"
)

// TestReseedMatchesNew is the value-stream equivalence guarantee: a
// Stream re-keyed in place draws exactly the sequence a freshly
// allocated stream with the same key would. The engine's zero-alloc
// steady state rests on this.
func TestReseedMatchesNew(t *testing.T) {
	paths := [][]uint64{nil, {}, {0}, {1}, {1, 2, 3}, {16, 4, 0, 1}, {math.MaxUint64}}
	var st Stream
	for _, path := range paths {
		for seed := uint64(0); seed < 5; seed++ {
			fresh := New(seed, path...)
			// Dirty the value stream first so Reseed must overwrite
			// every piece of prior state.
			st.Uint64()
			st.Reseed(seed, path...)
			for i := 0; i < 256; i++ {
				if got, want := st.Uint64(), fresh.Uint64(); got != want {
					t.Fatalf("seed %d path %v draw %d: Reseed diverged from New", seed, path, i)
				}
			}
		}
	}
}

func TestDeriveIntoMatchesDerive(t *testing.T) {
	parent := New(99, 7)
	var dst Stream
	for _, path := range [][]uint64{{0}, {1, 2}, {42, 0, 42}} {
		fresh := parent.Derive(path...)
		parent.DeriveInto(&dst, path...)
		for i := 0; i < 256; i++ {
			if got, want := dst.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("path %v draw %d: DeriveInto diverged from Derive", path, i)
			}
		}
	}
	// Deriving must not perturb the parent: two parents with identical
	// histories stay aligned whichever API derived from them.
	a, b := New(5), New(5)
	a.Derive(1)
	b.DeriveInto(&dst, 1)
	if a.Uint64() != b.Uint64() {
		t.Fatal("DeriveInto consumed parent randomness")
	}
}

func TestGeometricLnQMatchesGeometric(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-4, 0.01, 0.3, 0.5, 0.9, 0.999999} {
		a, b := New(7, 1), New(7, 1)
		lnQ := math.Log1p(-p)
		for i := 0; i < 4096; i++ {
			if got, want := b.GeometricLnQ(lnQ), a.Geometric(p); got != want {
				t.Fatalf("p=%v draw %d: GeometricLnQ=%d, Geometric=%d", p, i, got, want)
			}
		}
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	a, b := New(3, 9), New(3, 9)
	buf := make([]int, 17)
	for round := 0; round < 50; round++ {
		want := a.Perm(len(buf))
		b.PermInto(buf)
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("round %d index %d: PermInto diverged from Perm", round, i)
			}
		}
	}
}

// TestValueAPIsDoNotAllocate pins the point of the value-stream API:
// re-keying and drawing are heap-free, so per-phase streams can live on
// walker stacks or in run structs.
func TestValueAPIsDoNotAllocate(t *testing.T) {
	var st, dst Stream
	parent := New(1)
	sink := 0
	if n := testing.AllocsPerRun(100, func() {
		st.Reseed(12, 16, 3, 1, 2)
		parent.DeriveInto(&dst, 4, 5)
		sink += st.GeometricLnQ(-0.5) + dst.Intn(10)
	}); n != 0 {
		t.Fatalf("value-stream APIs allocated %.1f objects/op, want 0", n)
	}
	_ = sink
}
