package sink

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
	"rcbcast/internal/topology"
)

func openCheckpoint(t *testing.T, path string) *Checkpoint {
	t.Helper()
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cp.Close() })
	return cp
}

func TestCheckpointJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	specs := jamSpecs(64, 4)

	cp := openCheckpoint(t, path)
	var first bytes.Buffer
	if err := StreamCheckpointed(context.Background(), 2, specs, cp, NewNDJSON(&first)); err != nil {
		t.Fatal(err)
	}
	if cp.Done() != 4 {
		t.Fatalf("journal has %d trials, want 4", cp.Done())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the journal is complete, so nothing re-runs and the
	// replayed output is byte-identical.
	cp2 := openCheckpoint(t, path)
	if cp2.Done() != 4 {
		t.Fatalf("reopened journal has %d trials, want 4", cp2.Done())
	}
	var replayed bytes.Buffer
	if err := StreamCheckpointed(context.Background(), 2, specs, cp2, NewNDJSON(&replayed)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayed.Bytes(), first.Bytes()) {
		t.Fatalf("replayed output differs:\n%s\nvs\n%s", replayed.String(), first.String())
	}
}

func TestCheckpointTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	specs := jamSpecs(64, 3)
	cp := openCheckpoint(t, path)
	if err := StreamCheckpointed(context.Background(), 1, specs, cp); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate an interrupted write: a torn, newline-less trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":3,"result":{"N":64,`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cp2 := openCheckpoint(t, path)
	if cp2.Done() != 3 {
		t.Fatalf("torn journal recovered %d trials, want 3", cp2.Done())
	}
	// And the file itself was truncated back to the valid prefix, so a
	// resumed run appends cleanly after trial 2.
	var out bytes.Buffer
	if err := StreamCheckpointed(context.Background(), 1, jamSpecs(64, 5), cp2, NewNDJSON(&out)); err != nil {
		t.Fatal(err)
	}
	if cp2.Done() != 5 {
		t.Fatalf("resumed journal has %d trials, want 5", cp2.Done())
	}
}

func TestCheckpointLongerThanSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp := openCheckpoint(t, path)
	if err := StreamCheckpointed(context.Background(), 1, jamSpecs(64, 4), cp); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	cp2 := openCheckpoint(t, path)
	err := StreamCheckpointed(context.Background(), 1, jamSpecs(64, 2), cp2)
	if err == nil {
		t.Fatal("a journal longer than the sweep must be rejected")
	}
}

// TestCheckpointCancelResumeByteIdentical is the resume contract end to
// end — the determinism satellite: a sweep canceled mid-run, reopened,
// and resumed produces NDJSON byte-identical to an uninterrupted run.
func TestCheckpointCancelResumeByteIdentical(t *testing.T) {
	const trials = 24
	specs := func() []sim.TrialSpec { return jamSpecs(64, trials) }

	// Reference: uninterrupted.
	var want bytes.Buffer
	if err := sim.Stream(context.Background(), 4, specs(), NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp := openCheckpoint(t, path)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var first bytes.Buffer
	err := StreamCheckpointed(ctx, 4, specs(), cp,
		NewNDJSON(&first),
		Func(func(i int, _ *engine.Result) error {
			if i == 7 {
				cancel()
			}
			return nil
		}))
	var pe *sim.PartialError
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep: want *sim.PartialError wrapping Canceled, got %v", err)
	}
	if cp.Done() <= 7 || cp.Done() >= trials {
		t.Fatalf("journal has %d trials, want a strict mid-sweep prefix past 7", cp.Done())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with the same specs: journaled trials replay, the rest run.
	cp2 := openCheckpoint(t, path)
	var full bytes.Buffer
	if err := StreamCheckpointed(context.Background(), 4, specs(), cp2, NewNDJSON(&full)); err != nil {
		t.Fatal(err)
	}
	if cp2.Done() != trials {
		t.Fatalf("resumed journal has %d trials, want %d", cp2.Done(), trials)
	}
	if !bytes.Equal(full.Bytes(), want.Bytes()) {
		t.Fatalf("resumed NDJSON differs from uninterrupted run:\n%s\nvs\n%s",
			full.String(), want.String())
	}
	// The interrupted attempt's partial output is exactly the prefix of
	// the reference — nothing was emitted out of order or duplicated.
	if !bytes.HasPrefix(want.Bytes(), first.Bytes()) {
		t.Fatalf("interrupted output is not a prefix of the reference:\n%s", first.String())
	}
}

// TestCheckpointMidJournalCorruptionDropsSuffix: a corrupted interior
// line breaks the contiguous-prefix invariant, so everything from the
// corruption on is truncated away and re-run — the resumed output must
// still be byte-identical to an uninterrupted sweep.
func TestCheckpointMidJournalCorruptionDropsSuffix(t *testing.T) {
	specs := jamSpecs(64, 4)
	var want bytes.Buffer
	if err := sim.Stream(context.Background(), 1, jamSpecs(64, 4), NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp := openCheckpoint(t, path)
	if err := StreamCheckpointed(context.Background(), 1, specs, cp); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	// Corrupt the journal line of trial 1 (line 2: after the header) in
	// place, keeping the line count intact.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 5 {
		t.Fatalf("journal has %d lines, want header + 4 trials", len(lines))
	}
	lines[2] = append(bytes.Repeat([]byte("x"), len(lines[2])-1), '\n')
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	cp2 := openCheckpoint(t, path)
	if cp2.Done() != 1 {
		t.Fatalf("corrupted journal recovered %d trials, want 1 (the prefix before the damage)", cp2.Done())
	}
	var out bytes.Buffer
	if err := StreamCheckpointed(context.Background(), 1, jamSpecs(64, 4), cp2, NewNDJSON(&out)); err != nil {
		t.Fatal(err)
	}
	if cp2.Done() != 4 {
		t.Fatalf("resumed journal has %d trials, want 4", cp2.Done())
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Fatalf("resume after mid-journal corruption differs from uninterrupted run:\n%s\nvs\n%s",
			out.String(), want.String())
	}
}

// TestCheckpointOutOfOrderTrialsTruncated: journal lines must be the
// consecutive trials 0..done-1; a gap (here 0 then 2) ends the valid
// prefix even though every line parses.
func TestCheckpointOutOfOrderTrialsTruncated(t *testing.T) {
	specs := jamSpecs(64, 3)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp := openCheckpoint(t, path)
	if err := StreamCheckpointed(context.Background(), 1, specs, cp); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	// header, trial0, trial2 (trial1 removed): the gap invalidates the
	// suffix, not just the missing line.
	doctored := bytes.Join([][]byte{lines[0], lines[1], lines[3]}, nil)
	if err := os.WriteFile(path, doctored, 0o644); err != nil {
		t.Fatal(err)
	}

	cp2 := openCheckpoint(t, path)
	defer cp2.Close()
	if cp2.Done() != 1 {
		t.Fatalf("gapped journal recovered %d trials, want 1", cp2.Done())
	}
}

// TestCheckpointCorruptHeaderRestartsJournal: an unreadable header
// invalidates the whole journal (there is no way to check what sweep it
// belongs to), so the resume re-runs from scratch — and still produces
// byte-identical output.
func TestCheckpointCorruptHeaderRestartsJournal(t *testing.T) {
	specs := jamSpecs(64, 3)
	var want bytes.Buffer
	if err := sim.Stream(context.Background(), 1, jamSpecs(64, 3), NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp := openCheckpoint(t, path)
	if err := StreamCheckpointed(context.Background(), 1, specs, cp); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, []byte(`#smash`)) // the header line no longer parses
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cp2 := openCheckpoint(t, path)
	if cp2.Done() != 0 {
		t.Fatalf("journal with a corrupt header recovered %d trials, want 0", cp2.Done())
	}
	var out bytes.Buffer
	if err := StreamCheckpointed(context.Background(), 1, jamSpecs(64, 3), cp2, NewNDJSON(&out)); err != nil {
		t.Fatal(err)
	}
	if cp2.Done() != 3 {
		t.Fatalf("restarted journal has %d trials, want 3", cp2.Done())
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Fatalf("restart after header corruption differs from uninterrupted run:\n%s\nvs\n%s",
			out.String(), want.String())
	}
}

// TestCheckpointSpecMismatchRejected: resuming with different specs —
// another n, seed base, or trial count — must fail fast instead of
// splicing two sweeps into one output file.
func TestCheckpointSpecMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp := openCheckpoint(t, path)
	if err := StreamCheckpointed(context.Background(), 1, jamSpecs(64, 3), cp); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	for name, specs := range map[string][]sim.TrialSpec{
		"different n":    jamSpecs(128, 3),
		"different seed": func() []sim.TrialSpec { s := jamSpecs(64, 3); s[0].Seed++; return s }(),
		"different topology": func() []sim.TrialSpec {
			s := jamSpecs(64, 3)
			for i := range s {
				s[i].Topology = topology.Spec{Kind: "gilbert", Radius: 0.3}
			}
			return s
		}(),
	} {
		cp2 := openCheckpoint(t, path)
		err := StreamCheckpointed(context.Background(), 1, specs, cp2)
		if err == nil || !strings.Contains(err.Error(), "different sweep") {
			t.Fatalf("%s: want fingerprint rejection, got %v", name, err)
		}
	}

	// Identical specs still resume.
	cp3 := openCheckpoint(t, path)
	if err := StreamCheckpointed(context.Background(), 1, jamSpecs(64, 3), cp3); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointShardGlobalIndices: a shard session delivers sweep-
// global trial numbers, so its NDJSON is the byte-exact slice of the
// full run's.
func TestCheckpointShardGlobalIndices(t *testing.T) {
	const trials = 10
	whole := jamSpecs(64, trials)

	var want bytes.Buffer
	if err := sim.Stream(context.Background(), 2, whole, NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}
	wantLines := bytes.SplitAfter(want.Bytes(), []byte("\n"))

	for _, r := range []struct{ lo, hi int }{{0, 4}, {3, 7}, {9, 10}, {0, 10}} {
		path := filepath.Join(t.TempDir(), "shard.ckpt")
		cp := openCheckpoint(t, path)
		var got bytes.Buffer
		if err := StreamCheckpointedShard(context.Background(), 2, 1, r.lo, whole[r.lo:r.hi], cp, NewNDJSON(&got)); err != nil {
			t.Fatalf("shard [%d,%d): %v", r.lo, r.hi, err)
		}
		want := bytes.Join(wantLines[r.lo:r.hi], nil)
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("shard [%d,%d) output is not the slice of the full run:\n%s\nvs\n%s",
				r.lo, r.hi, got.String(), string(want))
		}
	}
	if err := StreamCheckpointedShard(context.Background(), 1, 1, -1, whole[:1], openCheckpoint(t, filepath.Join(t.TempDir(), "x.ckpt"))); err == nil {
		t.Fatal("negative lo accepted")
	}
}

// TestCheckpointShardInterruptResume: a shard sweep interrupted
// mid-run resumes from its journal with output byte-identical to the
// uninterrupted shard — global indices included.
func TestCheckpointShardInterruptResume(t *testing.T) {
	const trials, lo, hi = 40, 8, 32
	whole := jamSpecs(64, trials)
	shard := whole[lo:hi]

	var want bytes.Buffer
	if err := StreamCheckpointedShard(context.Background(), 4, 1, lo, shard,
		openCheckpoint(t, filepath.Join(t.TempDir(), "ref.ckpt")), NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "shard.ckpt")
	cp := openCheckpoint(t, path)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var first bytes.Buffer
	err := StreamCheckpointedShard(ctx, 4, 1, lo, shard, cp,
		NewNDJSON(&first),
		Func(func(i int, _ *engine.Result) error {
			if i == lo+7 { // delivery arrives in sweep coordinates
				cancel()
			}
			return nil
		}))
	var pe *sim.PartialError
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled shard: want *sim.PartialError wrapping Canceled, got %v", err)
	}
	if cp.Done() <= 7 || cp.Done() >= hi-lo {
		t.Fatalf("journal has %d trials, want a strict mid-shard prefix past 7", cp.Done())
	}
	cp.Close()

	cp2 := openCheckpoint(t, path)
	var full bytes.Buffer
	if err := StreamCheckpointedShard(context.Background(), 4, 1, lo, shard, cp2, NewNDJSON(&full)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), want.Bytes()) {
		t.Fatalf("resumed shard NDJSON differs from uninterrupted shard:\n%s\nvs\n%s",
			full.String(), want.String())
	}
	if !bytes.HasPrefix(want.Bytes(), first.Bytes()) {
		t.Fatalf("interrupted shard output is not a prefix of the reference:\n%s", first.String())
	}
}

// TestCheckpointShardRangeMismatchRejected: the range-stamped header
// separates shard journals from each other and from whole-sweep
// journals — resuming any of them with the wrong range fails fast.
func TestCheckpointShardRangeMismatchRejected(t *testing.T) {
	const trials = 12
	whole := jamSpecs(64, trials)

	// Write a shard journal for [0, 6).
	path := filepath.Join(t.TempDir(), "shard.ckpt")
	cp := openCheckpoint(t, path)
	if err := StreamCheckpointedShard(context.Background(), 1, 1, 0, whole[0:6], cp); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	// Same lo, longer hi: the fingerprint matches (same leading spec),
	// only the recorded range catches it.
	err := StreamCheckpointedShard(context.Background(), 1, 1, 0, whole[0:9], openCheckpoint(t, path))
	if err == nil || !strings.Contains(err.Error(), "shard [0,6)") {
		t.Fatalf("same-lo different-hi resume: want range rejection, got %v", err)
	}
	// A whole-sweep run must not splice a shard journal either (again a
	// fingerprint collision: trial 0 leads both).
	err = StreamCheckpointedBatch(context.Background(), 1, 1, whole, openCheckpoint(t, path))
	if err == nil || !strings.Contains(err.Error(), "shard [0,6)") {
		t.Fatalf("whole-sweep resume of a shard journal: want range rejection, got %v", err)
	}

	// And the converse: a shard run must not splice a whole-sweep journal.
	wholePath := filepath.Join(t.TempDir(), "whole.ckpt")
	cpw := openCheckpoint(t, wholePath)
	if err := StreamCheckpointedBatch(context.Background(), 1, 1, whole[:6], cpw); err != nil {
		t.Fatal(err)
	}
	cpw.Close()
	err = StreamCheckpointedShard(context.Background(), 1, 1, 0, whole[0:6], openCheckpoint(t, wholePath))
	if err == nil || !strings.Contains(err.Error(), "whole sweep") {
		t.Fatalf("shard resume of a whole-sweep journal: want range rejection, got %v", err)
	}

	// The matching range still resumes cleanly.
	if err := StreamCheckpointedShard(context.Background(), 1, 1, 0, whole[0:6], openCheckpoint(t, path)); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointShardTornTailTruncated: torn-tail recovery under a
// range-stamped shard journal — the coordinator-crash building block.
// A shard journal with a newline-less partial final line (the SIGKILL
// signature) must recover exactly its valid prefix, keep its [lo, hi)
// header intact, and resume to output byte-identical to an
// uninterrupted shard run.
func TestCheckpointShardTornTailTruncated(t *testing.T) {
	const trials, lo, hi = 20, 8, 14
	whole := jamSpecs(64, trials)
	shard := whole[lo:hi]

	var want bytes.Buffer
	if err := StreamCheckpointedShard(context.Background(), 1, 1, lo, shard,
		openCheckpoint(t, filepath.Join(t.TempDir(), "ref.ckpt")), NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}

	// Journal a strict prefix of the shard: cancel after a few
	// deliveries, leaving [lo, lo+k) recorded.
	path := filepath.Join(t.TempDir(), "shard.ckpt")
	cp := openCheckpoint(t, path)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := StreamCheckpointedShard(ctx, 1, 1, lo, shard, cp,
		Func(func(i int, _ *engine.Result) error {
			if i == lo+2 {
				cancel()
			}
			return nil
		}))
	var pe *sim.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("canceled shard: want *sim.PartialError, got %v", err)
	}
	prefix := cp.Done()
	if prefix == 0 || prefix >= hi-lo {
		t.Fatalf("journal has %d trials, want a strict nonempty prefix", prefix)
	}
	cp.Close()

	// Tear the final line: a partial record with a sweep-global trial
	// index, no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":` + "11" + `,"result":{"N":64,`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cp2 := openCheckpoint(t, path)
	if cp2.Done() != prefix {
		t.Fatalf("torn shard journal recovered %d trials, want %d", cp2.Done(), prefix)
	}
	// The range header survived the truncation: a mismatched range is
	// still rejected…
	if err := StreamCheckpointedShard(context.Background(), 1, 1, lo, whole[lo:hi+2], cp2); err == nil ||
		!strings.Contains(err.Error(), "shard [8,14)") {
		t.Fatalf("torn journal lost its range stamp: %v", err)
	}
	cp2.Close()

	// …and the matching range resumes to byte-identical output.
	cp3 := openCheckpoint(t, path)
	var got bytes.Buffer
	if err := StreamCheckpointedShard(context.Background(), 1, 1, lo, shard, cp3, NewNDJSON(&got)); err != nil {
		t.Fatal(err)
	}
	if cp3.Done() != hi-lo {
		t.Fatalf("resumed journal has %d trials, want %d", cp3.Done(), hi-lo)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed shard output differs from uninterrupted run:\n%s\nvs\n%s",
			got.String(), want.String())
	}
}
