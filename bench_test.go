package rcbcast_test

// The benchmark harness regenerates every experiment table from DESIGN.md
// §4: run `go test -bench=. -benchmem` and each benchmark executes its
// experiment at full scale, reporting the headline measured quantity
// (usually a fitted exponent) as a custom benchmark metric so the
// paper-vs-measured comparison appears directly in benchmark output.
//
// BenchmarkE1CostScalingK2 .. BenchmarkE13Topology correspond to
// experiments E1..E13; EXPERIMENTS.md records one full run.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/experiment"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/stats"
)

// benchConfig scales experiments for benchmarking: full sweeps, one seed
// per point per iteration (b.N handles repetition). Procs=0 lets each
// experiment's trial runner use every core; reported values are
// byte-identical to a sequential run.
func benchConfig() experiment.Config {
	return experiment.Config{Seeds: 1, BaseSeed: 7}
}

// runExperiment executes one experiment per benchmark iteration and
// reports the selected Values as benchmark metrics.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiment.Report
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.BaseSeed += uint64(i)
		rep, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkE1CostScalingK2(b *testing.B) {
	runExperiment(b, "E1", "node_exponent", "alice_exponent", "predicted_exponent")
}

func BenchmarkE2CostScalingK(b *testing.B) {
	runExperiment(b, "E2", "node_exponent_k2", "node_exponent_k3", "node_exponent_k4")
}

func BenchmarkE3Delivery(b *testing.B) {
	runExperiment(b, "E3", "informed_benign", "informed_full-jam", "informed_partition-5%")
}

func BenchmarkE4Latency(b *testing.B) {
	runExperiment(b, "E4", "latency_exponent", "predicted_exponent")
}

func BenchmarkE5LoadBalance(b *testing.B) {
	runExperiment(b, "E5", "max_ratio", "polylog_bound")
}

func BenchmarkE6Baselines(b *testing.B) {
	runExperiment(b, "E6",
		"naive_node_exponent", "ksy_alice_exponent", "ksy_node_exponent",
		"ours_alice_exponent", "ours_node_exponent")
}

func BenchmarkE7Reactive(b *testing.B) {
	runExperiment(b, "E7", "exponent_undefended", "exponent_decoy")
}

func BenchmarkE8Spoofing(b *testing.B) {
	runExperiment(b, "E8", "alice_exponent", "predicted_exponent")
}

func BenchmarkE9NUniform(b *testing.B) {
	runExperiment(b, "E9", "stranded_at_0.05", "completed_at_0.30")
}

func BenchmarkE10Approx(b *testing.B) {
	runExperiment(b, "E10", "cost_ratio_v1", "cost_ratio_v3")
}

func BenchmarkE12MultiHop(b *testing.B) {
	runExperiment(b, "E12", "latency_per_hop_ratio", "concentrated_delay_ratio")
}

func BenchmarkE13Topology(b *testing.B) {
	runExperiment(b, "E13", "ratio_benign_r0.4", "ratio_jam_r0.4", "reachable_frac_r0.1")
}

// BenchmarkE11Engines compares the two engines head-to-head on identical
// workloads (the equivalence itself is asserted by the test suite).
func BenchmarkE11Engines(b *testing.B) {
	mk := func(seed uint64) engine.Options {
		return engine.Options{
			Params:   core.PracticalParams(1024, 2),
			Seed:     seed,
			Strategy: adversary.FullJam{},
			Pool:     energy.NewPool(1 << 14),
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.Run(mk(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("actors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.RunActors(mk(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProtocolThroughput measures raw simulation speed through the
// parallel trial runner: trials and slots per second across network
// sizes and worker counts, for sizing larger studies. Each iteration is
// one batch of trialsPerBatch independent full-jam runs dispatched via
// sim.RunTrials.
func BenchmarkProtocolThroughput(b *testing.B) {
	const trialsPerBatch = 8
	procsVariants := []int{1, runtime.GOMAXPROCS(0)}
	if procsVariants[1] == 1 {
		procsVariants = procsVariants[:1]
	}
	for _, n := range []int{256, 1024, 4096} {
		for _, procs := range procsVariants {
			b.Run(benchName(n, procs), func(b *testing.B) {
				var slots, trials int64
				for i := 0; i < b.N; i++ {
					specs := make([]sim.TrialSpec, trialsPerBatch)
					for t := range specs {
						specs[t] = sim.TrialSpec{
							Params:   core.PracticalParams(n, 2),
							Seed:     sim.TrialSeed(uint64(i), t),
							Strategy: func() adversary.Strategy { return adversary.FullJam{} },
							Pool:     func() *energy.Pool { return energy.NewPool(1 << 13) },
						}
					}
					results, err := sim.RunTrials(procs, specs)
					if err != nil {
						b.Fatal(err)
					}
					for _, res := range results {
						slots += res.SlotsSimulated
					}
					trials += trialsPerBatch
				}
				b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
				b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
			})
		}
	}
}

func benchName(n, procs int) string {
	return fmt.Sprintf("n=%d/procs=%d", n, procs)
}

// BenchmarkStreamTrials measures the streaming session against the
// collect-everything wrapper on the same batch, with -benchmem
// reporting allocs/op and a live_results metric — the O(trials) vs
// O(procs) memory claim as numbers, not assertions. Total allocations
// are dominated by the engine runs and match between variants; the win
// is peak *live* results: collect retains the whole batch, the stream
// variant folds each result into a stats.Acc and drops it, so its peak
// equals the reorder window. The first BENCH_STREAM.json entry records
// one run of this benchmark.
func BenchmarkStreamTrials(b *testing.B) {
	const trialsPerBatch = 64
	// started/released track live results: a result is live from its
	// trial's start (strategy factory — the earliest per-trial hook)
	// until the caller is done with it.
	var started, released, maxLive atomic.Int64
	sampleLive := func() {
		live := started.Add(1) - released.Load()
		for {
			old := maxLive.Load()
			if live <= old || maxLive.CompareAndSwap(old, live) {
				return
			}
		}
	}
	mkSpecs := func(iter int) []sim.TrialSpec {
		specs := make([]sim.TrialSpec, trialsPerBatch)
		for t := range specs {
			specs[t] = sim.TrialSpec{
				Params: core.PracticalParams(256, 2),
				Seed:   sim.TrialSeed(uint64(iter), t),
				Strategy: func() adversary.Strategy {
					sampleLive()
					return adversary.FullJam{}
				},
				Pool: func() *energy.Pool { return energy.NewPool(1 << 12) },
			}
		}
		return specs
	}
	reset := func() { started.Store(0); released.Store(0); maxLive.Store(0) }
	b.Run("collect", func(b *testing.B) {
		b.ReportAllocs()
		reset()
		for i := 0; i < b.N; i++ {
			results, err := sim.RunTrials(0, mkSpecs(i))
			if err != nil {
				b.Fatal(err)
			}
			var informed stats.Acc
			for _, res := range results {
				informed.Add(res.InformedFrac())
				released.Add(1)
			}
			if informed.N() != trialsPerBatch {
				b.Fatal("missing results")
			}
		}
		b.ReportMetric(float64(maxLive.Load()), "live_results")
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		reset()
		for i := 0; i < b.N; i++ {
			fold := sink.NewFold(trialsPerBatch,
				func(r *engine.Result) float64 { return r.InformedFrac() })
			drop := sink.Func(func(int, *engine.Result) error { released.Add(1); return nil })
			if err := sim.Stream(context.Background(), 0, mkSpecs(i), fold, drop); err != nil {
				b.Fatal(err)
			}
			acc := fold.Acc(0, 0)
			if acc.N() != trialsPerBatch {
				b.Fatal("missing results")
			}
		}
		b.ReportMetric(float64(maxLive.Load()), "live_results")
	})
	// The batch variants run the identical sweep through the batched
	// lockstep kernel (sim.StreamBatch); per-trial results and sink
	// deliveries are byte-identical to the stream variant, so ns/op is a
	// direct same-work comparison. live_results grows to O(width·procs):
	// a batch group's results exist together by construction.
	for _, width := range []int{8, 16} {
		b.Run(fmt.Sprintf("batch%d", width), func(b *testing.B) {
			b.ReportAllocs()
			reset()
			for i := 0; i < b.N; i++ {
				fold := sink.NewFold(trialsPerBatch,
					func(r *engine.Result) float64 { return r.InformedFrac() })
				drop := sink.Func(func(int, *engine.Result) error { released.Add(1); return nil })
				if err := sim.StreamBatch(context.Background(), 0, width, mkSpecs(i), fold, drop); err != nil {
					b.Fatal(err)
				}
				acc := fold.Acc(0, 0)
				if acc.N() != trialsPerBatch {
					b.Fatal("missing results")
				}
			}
			b.ReportMetric(float64(maxLive.Load()), "live_results")
		})
	}
}
