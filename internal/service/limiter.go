package service

import "sync"

// limiter enforces the per-client in-flight cap: a client's queued plus
// running jobs never exceed cap. Slots are acquired at submit (and at
// restart for resumed jobs) and released when a job reaches a terminal
// state — done, failed, or canceled.
type limiter struct {
	mu       sync.Mutex
	cap      int
	inflight map[string]int
}

func newLimiter(cap int) *limiter {
	return &limiter{cap: cap, inflight: make(map[string]int)}
}

// acquire takes a slot for client, reporting false at the cap.
func (l *limiter) acquire(client string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight[client] >= l.cap {
		return false
	}
	l.inflight[client]++
	return true
}

// force takes a slot regardless of the cap — restart-time re-admission
// of jobs the client already held before the process died. The cap
// still binds new submissions.
func (l *limiter) force(client string) {
	l.mu.Lock()
	l.inflight[client]++
	l.mu.Unlock()
}

// release returns a slot.
func (l *limiter) release(client string) {
	l.mu.Lock()
	if n := l.inflight[client]; n <= 1 {
		delete(l.inflight, client)
	} else {
		l.inflight[client] = n - 1
	}
	l.mu.Unlock()
}

// snapshot copies the per-client counts for the metrics endpoint.
func (l *limiter) snapshot() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.inflight))
	for c, n := range l.inflight {
		out[c] = n
	}
	return out
}
