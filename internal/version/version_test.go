package version

import (
	"runtime"
	"strings"
	"testing"
)

func TestStringShape(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "rcbcast ") {
		t.Fatalf("version %q does not start with the module name", s)
	}
	if !strings.HasSuffix(s, runtime.Version()) {
		t.Fatalf("version %q does not end with the toolchain version %q", s, runtime.Version())
	}
	if fields := strings.Fields(s); len(fields) != 3 {
		t.Fatalf("version %q is not three fields (name, build, go version)", s)
	}
}
