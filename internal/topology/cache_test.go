package topology

import (
	"math"
	"sync"
	"testing"
)

// topoEqual compares two topologies structurally: same kind, size,
// Alice audibility, degrees, and full adjacency relation.
func topoEqual(t *testing.T, a, b Topology) {
	t.Helper()
	if a.Name() != b.Name() || a.N() != b.N() || a.Complete() != b.Complete() {
		t.Fatalf("topology headers differ: (%s,%d,%v) vs (%s,%d,%v)",
			a.Name(), a.N(), a.Complete(), b.Name(), b.N(), b.Complete())
	}
	n := a.N()
	for v := 0; v < n; v++ {
		if a.AliceHears(v) != b.AliceHears(v) {
			t.Fatalf("AliceHears(%d) differs", v)
		}
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("Degree(%d) differs: %d vs %d", v, a.Degree(v), b.Degree(v))
		}
		for u := 0; u < n; u++ {
			if a.Adjacent(u, v) != b.Adjacent(u, v) {
				t.Fatalf("Adjacent(%d,%d) differs", u, v)
			}
		}
	}
	ga, aok := a.(*Gilbert)
	gb, bok := b.(*Gilbert)
	if aok && bok {
		for i := 0; i < n; i++ {
			ax, ay := ga.Position(i)
			bx, by := gb.Position(i)
			if ax != bx || ay != by {
				t.Fatalf("Position(%d) differs: (%v,%v) vs (%v,%v)", i, ax, ay, bx, by)
			}
		}
	}
}

func csrEqual(t *testing.T, a, b *CSR) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("CSR presence differs: %v vs %v", a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if len(a.Off) != len(b.Off) || len(a.Nbr) != len(b.Nbr) || len(a.Alice) != len(b.Alice) {
		t.Fatalf("CSR shapes differ")
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			t.Fatalf("CSR Off[%d] differs: %d vs %d", i, a.Off[i], b.Off[i])
		}
	}
	for i := range a.Nbr {
		if a.Nbr[i] != b.Nbr[i] {
			t.Fatalf("CSR Nbr[%d] differs: %d vs %d", i, a.Nbr[i], b.Nbr[i])
		}
	}
	for i := range a.Alice {
		if a.Alice[i] != b.Alice[i] {
			t.Fatalf("CSR Alice[%d] differs: %v vs %v", i, a.Alice[i], b.Alice[i])
		}
	}
}

// TestCacheTrialInvariantKinds pins the cache's central amortization:
// clique and grid fold the seed out of the key, so a sweep of distinct
// trial seeds costs exactly one build each.
func TestCacheTrialInvariantKinds(t *testing.T) {
	c := NewCache(4)
	for _, spec := range []Spec{{}, {Kind: "clique"}, {Kind: "grid", Width: 8, Reach: 2}} {
		if !spec.TrialInvariant() {
			t.Fatalf("%v must be trial-invariant", spec)
		}
	}
	if (Spec{Kind: "gilbert", Radius: 0.2}).TrialInvariant() {
		t.Fatal("gilbert must not be trial-invariant")
	}
	spec := Spec{Kind: "grid", Width: 8, Reach: 2}
	first, firstCSR, err := c.Get(spec, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(2); seed < 40; seed++ {
		topo, csr, err := c.Get(spec, 64, seed)
		if err != nil {
			t.Fatal(err)
		}
		if topo != first || csr != firstCSR {
			t.Fatalf("seed %d: grid lookup did not return the cached entry", seed)
		}
	}
	hits, misses := c.Stats()
	if hits != 38 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (38, 1)", hits, misses)
	}
	// Fresh build is structurally identical to the cached graph.
	fresh, err := spec.Build(64, 999)
	if err != nil {
		t.Fatal(err)
	}
	topoEqual(t, first, fresh)
	csrEqual(t, firstCSR, BuildCSR(fresh, nil))
}

// TestCacheGilbertKeyedBySeed: gilbert entries are seed-specific —
// repeats of a seed hit, distinct seeds miss and give distinct graphs.
func TestCacheGilbertKeyedBySeed(t *testing.T) {
	spec := Spec{Kind: "gilbert", Radius: 0.25}
	c := NewCache(8)
	a1, csr1, err := c.Get(spec, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	b1, _, err := c.Get(spec, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	a2, csr2, err := c.Get(spec, 96, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || csr1 != csr2 {
		t.Fatal("same gilbert seed must hit the cached entry")
	}
	if a1 == b1 {
		t.Fatal("distinct gilbert seeds must not share an entry")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d, %d), want (1, 2)", hits, misses)
	}
	// Cached graphs and CSRs are byte-identical to fresh builds.
	for _, seed := range []uint64{7, 8} {
		cached, csr, err := c.Get(spec, 96, seed)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := spec.Build(96, seed)
		if err != nil {
			t.Fatal(err)
		}
		topoEqual(t, cached, fresh)
		csrEqual(t, csr, BuildCSR(fresh, nil))
	}
}

// TestCacheEvictionLRU: a full cache evicts the least recently used
// entry, and the survivors' graphs stay valid and correct.
func TestCacheEvictionLRU(t *testing.T) {
	spec := Spec{Kind: "gilbert", Radius: 0.3}
	c := NewCache(2)
	if _, _, err := c.Get(spec, 48, 1); err != nil { // miss: {1}
		t.Fatal(err)
	}
	if _, _, err := c.Get(spec, 48, 2); err != nil { // miss: {1,2}
		t.Fatal(err)
	}
	if _, _, err := c.Get(spec, 48, 1); err != nil { // hit: 1 most recent
		t.Fatal(err)
	}
	if _, _, err := c.Get(spec, 48, 3); err != nil { // miss: evicts 2 -> {1,3}
		t.Fatal(err)
	}
	if _, _, err := c.Get(spec, 48, 1); err != nil { // hit
		t.Fatal(err)
	}
	if _, _, err := c.Get(spec, 48, 2); err != nil { // miss: 2 was evicted
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 2 || misses != 4 {
		t.Fatalf("stats = (%d, %d), want (2, 4)", hits, misses)
	}
	// A rebuilt-after-eviction entry (its Scratch was recycled from the
	// victim) must equal a fresh build.
	live, _, err := c.Get(spec, 48, 2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := spec.Build(48, 2)
	if err != nil {
		t.Fatal(err)
	}
	topoEqual(t, live, fresh)
	if c.Capacity() != 2 {
		t.Fatalf("capacity changed: %d", c.Capacity())
	}
	c.EnsureCapacity(5)
	if c.Capacity() != 5 {
		t.Fatalf("EnsureCapacity(5) left capacity %d", c.Capacity())
	}
	c.EnsureCapacity(1)
	if c.Capacity() != 5 {
		t.Fatal("EnsureCapacity must never lower capacity")
	}
}

// TestCacheBuildError: an invalid spec reports its error and leaves the
// cache consistent (the victim entry is not served as a stale hit).
func TestCacheBuildError(t *testing.T) {
	c := NewCache(1)
	good := Spec{Kind: "gilbert", Radius: 0.3}
	if _, _, err := c.Get(good, 32, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(Spec{Kind: "grid", Radius: 1}, 32, 1); err == nil {
		t.Fatal("expected a validation error")
	}
	topo, _, err := c.Get(good, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := good.Build(32, 1)
	topoEqual(t, topo, fresh)
}

// TestCacheConcurrentWorkers drives sync.Pool-ed per-worker caches from
// many goroutines under -race, the way sim workers hold them: each
// worker owns its cache while it runs a trial, returns it, and every
// lookup must agree with a fresh build.
func TestCacheConcurrentWorkers(t *testing.T) {
	pool := sync.Pool{New: func() any { return NewCache(4) }}
	specs := []Spec{
		{},
		{Kind: "grid", Width: 6, Reach: 1},
		{Kind: "gilbert", Radius: 0.35},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for trial := 0; trial < 24; trial++ {
				c := pool.Get().(*Cache)
				spec := specs[(w+trial)%len(specs)]
				seed := uint64(trial % 5)
				topo, csr, err := c.Get(spec, 40, seed)
				if err != nil {
					errs <- err
					pool.Put(c)
					return
				}
				fresh, err := spec.Build(40, seed)
				if err != nil {
					errs <- err
					pool.Put(c)
					return
				}
				// Inline structural spot-check (topoEqual would t.Fatal off
				// the test goroutine): degrees and Alice audibility.
				for v := 0; v < 40; v++ {
					if topo.Degree(v) != fresh.Degree(v) || topo.AliceHears(v) != fresh.AliceHears(v) {
						errs <- errMismatch{}
						pool.Put(c)
						return
					}
				}
				if !topo.Complete() && csr == nil {
					errs <- errMismatch{}
					pool.Put(c)
					return
				}
				pool.Put(c)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "cached topology disagrees with fresh build" }

// TestGilbertEdgeCountOracle checks the builder against the
// Reitzner–Schulte–Thäle first moment for the Gilbert graph on the unit
// square: two uniform points are within distance r with probability
//
//	p(r) = πr² − (8/3)r³ + ½r⁴            (r ≤ 1)
//
// so E[edges] = C(n,2)·p(r) and E[degree] = (n−1)·p(r). The empirical
// mean over a deterministic seed sweep must sit within a few standard
// errors of the analytic value — on both the fresh-build path and the
// cache path, which must also agree with each other seed for seed.
func TestGilbertEdgeCountOracle(t *testing.T) {
	const (
		n     = 256
		r     = 0.2
		seeds = 300
	)
	spec := Spec{Kind: "gilbert", Radius: r}
	p := math.Pi*r*r - (8.0/3.0)*r*r*r + 0.5*r*r*r*r
	expected := float64(n*(n-1)/2) * p

	edgeCount := func(topo Topology) float64 {
		total := 0
		for v := 0; v < n; v++ {
			total += topo.Degree(v)
		}
		return float64(total) / 2
	}

	cache := NewCache(2)
	var sum, sumSq float64
	for seed := uint64(0); seed < seeds; seed++ {
		fresh, err := spec.Build(n, seed)
		if err != nil {
			t.Fatal(err)
		}
		cached, _, err := cache.Get(spec, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		fe, ce := edgeCount(fresh), edgeCount(cached)
		if fe != ce {
			t.Fatalf("seed %d: fresh %v edges, cached %v", seed, fe, ce)
		}
		sum += fe
		sumSq += fe * fe
	}
	mean := sum / seeds
	variance := sumSq/seeds - mean*mean
	se := math.Sqrt(variance / seeds)
	if diff := math.Abs(mean - expected); diff > 5*se {
		t.Fatalf("empirical mean edge count %.2f vs analytic %.2f (|diff|=%.2f > 5·SE=%.2f)",
			mean, expected, diff, 5*se)
	}
	if meanDeg, expDeg := 2*mean/n, float64(n-1)*p; math.Abs(meanDeg-expDeg) > 5*(2*se/n) {
		t.Fatalf("empirical mean degree %.4f vs analytic %.4f", meanDeg, expDeg)
	}
	t.Logf("edges: empirical %.2f, analytic %.2f, SE %.2f (n=%d, r=%g, %d seeds)",
		mean, expected, se, n, r, seeds)
}
