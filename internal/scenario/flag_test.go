package scenario

import (
	"reflect"
	"testing"

	"rcbcast/internal/core"
)

// TestParseAdversaryGolden pins the flag syntax: input → spec (with
// defaults applied) → canonical String.
func TestParseAdversaryGolden(t *testing.T) {
	cases := []struct {
		in   string
		spec AdversarySpec
		out  string
	}{
		{"null", AdversarySpec{Kind: "null"}, "null"},
		{"full", AdversarySpec{Kind: "full"}, "full"},
		{"random", AdversarySpec{Kind: "random", P: 0.5}, "random"},
		{"random:p=0.3", AdversarySpec{Kind: "random", P: 0.3}, "random:p=0.3"},
		// An explicit zero knob survives parsing AND rendering (it is a
		// valid no-op jammer, distinct from the 0.5 default).
		{"random:p=0", AdversarySpec{Kind: "random"}, "random:p=0"},
		{"bursty", AdversarySpec{Kind: "bursty", Burst: 32, Gap: 32}, "bursty"},
		{"bursty:burst=8,gap=56", AdversarySpec{Kind: "bursty", Burst: 8, Gap: 56}, "bursty:burst=8,gap=56"},
		{"bursty:burst=8", AdversarySpec{Kind: "bursty", Burst: 8, Gap: 32}, "bursty:burst=8"},
		{"bursty:burst=8,gap=0", AdversarySpec{Kind: "bursty", Burst: 8}, "bursty:burst=8,gap=0"},
		{"blocker", AdversarySpec{Kind: "blocker", Inform: true, Propagate: true}, "blocker:inform,prop"},
		{"blocker:req,frac=0.55", AdversarySpec{Kind: "blocker", Request: true, Fraction: 0.55}, "blocker:req,frac=0.55"},
		{"partition", AdversarySpec{Kind: "partition", Strand: 0.05}, "partition"},
		{"partition:strand=0.1,rounds=4", AdversarySpec{Kind: "partition", Strand: 0.1, Rounds: 4}, "partition:strand=0.1,rounds=4"},
		{"spoofer", AdversarySpec{Kind: "spoofer", P: 0.5}, "spoofer"},
		{"data-spoofer", AdversarySpec{Kind: "data-spoofer", P: 0.25}, "data-spoofer"},
		{"sweep:frac=0.75", AdversarySpec{Kind: "sweep", Fraction: 0.75}, "sweep:frac=0.75"},
		{"greedy", AdversarySpec{Kind: "greedy"}, "greedy"},
		{"greedy:perround=512", AdversarySpec{Kind: "greedy", PerRound: 512}, "greedy:perround=512"},
		{"reactive", AdversarySpec{Kind: "reactive"}, "reactive"},
		{"blocker:inform,prop+spoofer:p=0.3", AdversarySpec{Kind: "composite", Parts: []AdversarySpec{
			{Kind: "blocker", Inform: true, Propagate: true},
			{Kind: "spoofer", P: 0.3},
		}}, "blocker:inform,prop+spoofer:p=0.3"},
	}
	for _, c := range cases {
		spec, err := ParseAdversary(c.in)
		if err != nil {
			t.Errorf("ParseAdversary(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(spec, c.spec) {
			t.Errorf("ParseAdversary(%q) = %+v, want %+v", c.in, spec, c.spec)
		}
		if got := spec.String(); got != c.out {
			t.Errorf("ParseAdversary(%q).String() = %q, want %q", c.in, got, c.out)
		}
		// The canonical form must reparse to the same spec.
		again, err := ParseAdversary(spec.String())
		if err != nil {
			t.Errorf("reparse %q: %v", spec.String(), err)
		} else if !reflect.DeepEqual(again, spec) {
			t.Errorf("round trip of %q drifted: %+v vs %+v", c.in, again, spec)
		}
	}
}

func TestParseAdversaryErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"warp",
		"full:p=0.9", // full reads no knobs; a typo'd kind must not silently drop them
		"random:p=zebra",
		"random:zebra=1",
		"random:p=1.5",
		"partition:strand=2",
		"partition:strand=0", // stranding nobody is a misconfiguration, not a default
		"bursty:burst=-1",
		"spoofer:p=0",                       // NackSpoofer substitutes 0.5 for rate 0 — reject, don't surprise
		"sweep:frac=0",                      // SweepJammer substitutes 0.5 for fraction 0 — reject
		"reactive+full",                     // Composite has no RSSI path; the reactive part would be inert
		"full+random:p=0.3+blocker:inform+", // trailing empty part
	} {
		if _, err := ParseAdversary(in); err == nil {
			t.Errorf("ParseAdversary(%q) = nil error, want failure", in)
		}
	}
}

// TestParseAdversaryStrategyNames asserts each parsed kind builds the
// strategy family it names.
func TestParseAdversaryStrategyNames(t *testing.T) {
	params := mustParams(t, Scenario{N: 64})
	cases := map[string]string{
		"null":               "null",
		"full":               "full-jam",
		"random":             "random-jam(p=0.5)",
		"bursty":             "bursty(32/32)",
		"blocker":            "phase-blocker(inform=true,prop=true,req=false)",
		"partition":          "partition-blocker",
		"spoofer":            "nack-spoofer",
		"data-spoofer":       "data-spoofer",
		"sweep":              "sweep(0.5)",
		"greedy":             "greedy-adaptive",
		"reactive":           "reactive-jammer",
		"full+spoofer:p=0.4": "composite(full-jam+nack-spoofer)",
	}
	for in, want := range cases {
		spec, err := ParseAdversary(in)
		if err != nil {
			t.Fatalf("ParseAdversary(%q): %v", in, err)
		}
		st, err := spec.New(params)
		if err != nil {
			t.Fatalf("New(%q): %v", in, err)
		}
		if st.Name() != want {
			t.Errorf("%q built %q, want %q", in, st.Name(), want)
		}
	}
}

func mustParams(t *testing.T, sc Scenario) core.Params {
	t.Helper()
	params, err := sc.Params()
	if err != nil {
		t.Fatal(err)
	}
	return params
}
