package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/version"
)

// Submission outcomes the server maps to HTTP statuses.
var (
	// ErrClientBusy: the client is at its per-client in-flight cap (429).
	ErrClientBusy = errors.New("service: client has too many jobs in flight")
	// ErrQueueFull: the shared FIFO is at capacity (429).
	ErrQueueFull = errors.New("service: job queue is full")
)

// testWrapSpecs, when set by a test in this package, wraps every job's
// trial specs before execution — the hook the concurrency-limits test
// uses to observe the live-result bound from inside the worker pool.
// Always nil in production.
var testWrapSpecs func(*Job, []sim.TrialSpec) []sim.TrialSpec

// testExtraSinks, when set by a test, appends sinks to every job's
// streaming session — paired with testWrapSpecs it measures the
// started-but-undelivered trial count against the live-result bound.
// Always nil in production.
var testExtraSinks func(*Job) []sim.Sink

// Manager owns the job lifecycle: a bounded FIFO queue feeding a fixed
// set of runner goroutines, each executing one job at a time on the
// shared engine pool (Config.Procs workers via sim/sink's checkpointed
// streaming). All durability flows through the per-job checkpoint
// journal; the manager itself keeps no state a restart cannot rebuild
// from the store directory.
type Manager struct {
	cfg     Config
	version string
	// Logf receives operational log lines; initialized from Config.Logf
	// (tests reassign it to t.Logf after construction).
	Logf func(format string, args ...any)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	queue   chan *Job
	limiter *limiter

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string

	submitted atomic.Int64
	rejected  atomic.Int64
	streams   atomic.Int64
	draining  atomic.Bool
}

// NewManager opens (or creates) the store directory, re-admits every
// resumable job found there — anything recorded as queued or running
// when the previous process died — and starts the runner pool.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("service: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create store: %w", err)
	}
	m := &Manager{
		cfg:     cfg,
		version: version.String(),
		Logf:    cfg.Logf,
		jobs:    make(map[string]*Job),
		limiter: newLimiter(cfg.PerClient),
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())

	recs, err := loadRecords(cfg.Dir, func(err error) { m.logf("%v", err) })
	if err != nil {
		return nil, err
	}
	var resume []*Job
	for _, rec := range recs {
		j, err := m.jobFromRecord(rec)
		if err != nil {
			m.logf("service: skip job %s: %v", rec.ID, err)
			continue
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		if !j.state.terminal() {
			// queued or (pre-kill) running: runs again from its journal.
			j.state = StateQueued
			resume = append(resume, j)
		}
	}
	// The queue must admit every resumable job even when there are more
	// than QueueDepth of them — refusing to resume work the service
	// already accepted is worse than a one-time oversized queue.
	capacity := cfg.QueueDepth
	if len(resume) > capacity {
		capacity = len(resume)
	}
	m.queue = make(chan *Job, capacity)
	for _, j := range resume {
		m.limiter.force(j.Client)
		m.queue <- j
		if err := saveJob(j); err != nil {
			m.logf("%v", err)
		}
		m.logf("service: resuming job %s (%d/%d trials journaled)", j.ID, j.done.Load(), j.shardLen())
	}

	m.wg.Add(cfg.Runners)
	for i := 0; i < cfg.Runners; i++ {
		go m.runner()
	}
	return m, nil
}

// jobFromRecord rebuilds a Job from its persisted form.
func (m *Manager) jobFromRecord(rec jobRecord) (*Job, error) {
	var sc scenario.Scenario
	if err := json.Unmarshal(rec.Scenario, &sc); err != nil {
		return nil, fmt.Errorf("decode scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	j := &Job{
		ID:       rec.ID,
		Client:   rec.Client,
		Scenario: sc,
		Trials:   rec.Trials,
		BaseSeed: rec.BaseSeed,
		Shard:    rec.Shard,
		Version:  rec.Version,
		dir:      m.jobDir(rec.ID),
		state:    rec.State,
		errMsg:   rec.Error,
		partials: rec.PartialErrors,
		canceled: rec.Canceled,
	}
	j.done.Store(int64(rec.Done))
	j.feed = newFeed(j.resultsPath(), rec.State.terminal())
	return j, nil
}

func (m *Manager) jobDir(id string) string { return m.cfg.Dir + string(os.PathSeparator) + id }

func (m *Manager) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}

// Submit accepts a sweep: validate, dedupe on the sweep key, enforce the
// per-client cap and the queue bound, persist, enqueue. accepted
// reports whether this call scheduled work (a fresh job or the
// resumption of a failed/canceled one); a dedupe hit on a live or
// completed job returns accepted = false.
func (m *Manager) Submit(client string, sc scenario.Scenario, trials int, baseSeed uint64) (j *Job, accepted bool, err error) {
	return m.SubmitShard(client, sc, trials, baseSeed, scenario.Shard{})
}

// SubmitShard is Submit restricted to one contiguous shard [sh.Lo,
// sh.Hi) of the sweep — the worker half of the distributed split.
// trials remains the whole sweep's trial count (it anchors the shard's
// sweep-global seeds and indices); the zero shard means the whole
// sweep, making this a strict generalization of Submit. Each shard is
// its own job with its own journal, keyed by scenario + trials + seed +
// range.
func (m *Manager) SubmitShard(client string, sc scenario.Scenario, trials int, baseSeed uint64, sh scenario.Shard) (j *Job, accepted bool, err error) {
	if trials <= 0 {
		return nil, false, fmt.Errorf("service: trials must be positive (got %d)", trials)
	}
	if err := sc.Validate(); err != nil {
		return nil, false, err
	}
	if err := sh.Validate(trials); err != nil {
		return nil, false, err
	}
	id, err := jobID(sc, trials, baseSeed, sh)
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.jobs[id]; ok {
		return m.resubmitLocked(existing, client)
	}

	if !m.limiter.acquire(client) {
		m.rejected.Add(1)
		return nil, false, ErrClientBusy
	}
	j = &Job{
		ID:       id,
		Client:   client,
		Scenario: sc,
		Trials:   trials,
		BaseSeed: baseSeed,
		Shard:    sh,
		Version:  m.version,
		dir:      m.jobDir(id),
		state:    StateQueued,
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		m.limiter.release(client)
		return nil, false, fmt.Errorf("service: create job dir: %w", err)
	}
	j.feed = newFeed(j.resultsPath(), false)
	select {
	case m.queue <- j:
	default:
		m.limiter.release(client)
		m.rejected.Add(1)
		return nil, false, ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.submitted.Add(1)
	if err := saveJob(j); err != nil {
		m.logf("%v", err)
	}
	if sh.IsZero() {
		m.logf("service: job %s queued by %s (%d trials)", id, client, trials)
	} else {
		m.logf("service: job %s queued by %s (shard %s of %d trials)", id, client, sh, trials)
	}
	return j, true, nil
}

// resubmitLocked handles a submit that hits an existing job id: live and
// done jobs are returned as-is (idempotent submit — the caller
// reattaches); failed and canceled jobs are re-admitted and resume from
// their journal.
func (m *Manager) resubmitLocked(j *Job, client string) (*Job, bool, error) {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state == StateQueued || state == StateRunning || state == StateDone {
		return j, false, nil
	}
	if !m.limiter.acquire(client) {
		m.rejected.Add(1)
		return nil, false, ErrClientBusy
	}
	j.mu.Lock()
	j.Client = client // the limiter slot now belongs to the resubmitter
	j.state = StateQueued
	j.canceled = false
	j.errMsg = ""
	j.mu.Unlock()
	select {
	case m.queue <- j:
	default:
		m.limiter.release(client)
		m.rejected.Add(1)
		j.mu.Lock()
		j.state = state
		j.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	j.feed.reopen()
	m.submitted.Add(1)
	if err := saveJob(j); err != nil {
		m.logf("%v", err)
	}
	m.logf("service: job %s re-queued by %s (resume from %d trials)", j.ID, client, j.done.Load())
	return j, true, nil
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests a job stop. A running job is interrupted at the next
// engine phase boundary (its delivered prefix stays journaled, so a
// resubmit resumes it); a queued job is canceled in place. Canceling a
// done job is an error; canceling an already-canceled one is not.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("service: unknown job %s", id)
	}
	j.mu.Lock()
	switch j.state {
	case StateDone:
		j.mu.Unlock()
		return fmt.Errorf("service: job %s already completed", id)
	case StateCanceled:
		j.mu.Unlock()
		return nil
	case StateFailed:
		j.mu.Unlock()
		return fmt.Errorf("service: job %s already failed", id)
	}
	j.canceled = true
	cancelRun := j.cancelRun
	queued := j.state == StateQueued && cancelRun == nil
	if queued {
		j.state = StateCanceled
	}
	j.mu.Unlock()

	switch {
	case cancelRun != nil:
		cancelRun() // the runner finishes the transition
	case queued:
		j.feed.setTerminal()
		m.limiter.release(j.Client)
		if err := saveJob(j); err != nil {
			m.logf("%v", err)
		}
	}
	m.logf("service: job %s cancel requested", id)
	return nil
}

// runner is one job-execution loop: claim the oldest queued job, run it
// to its next stop (completion, cancellation, failure, shutdown),
// repeat.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			if m.claim(j) {
				m.runJob(j)
			}
		}
	}
}

// claim moves a dequeued job to running, unless it was canceled while
// waiting (Cancel already finished that transition — just drop it).
func (m *Manager) claim(j *Job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled || j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// runJob executes one job attempt through the checkpointed streaming
// session and classifies the outcome. Every path leaves the journal a
// valid contiguous prefix of the sweep, which is the whole durability
// story: the next attempt — in this process or the next — replays it
// and continues.
func (m *Manager) runJob(j *Job) {
	runCtx, cancelRun := context.WithCancel(m.ctx)
	defer cancelRun()
	j.mu.Lock()
	j.cancelRun = cancelRun
	j.mu.Unlock()
	if err := saveJob(j); err != nil {
		m.logf("%v", err)
	}

	err := m.runSweep(runCtx, j)

	var pe *sim.PartialError
	isPartial := errors.As(err, &pe)
	j.mu.Lock()
	j.cancelRun = nil
	if isPartial {
		j.partials++
	}
	switch {
	case err == nil:
		j.state = StateDone
	case j.canceled:
		j.state = StateCanceled
	case isPartial && m.ctx.Err() != nil:
		// Graceful shutdown: the job drained to its checkpoint; the
		// next process start re-admits it.
		j.state = StateQueued
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	j.mu.Unlock()

	j.feed.closeRun(state.terminal())
	if state.terminal() {
		m.limiter.release(j.Client)
	}
	if err := saveJob(j); err != nil {
		m.logf("%v", err)
	}
	switch state {
	case StateDone:
		m.logf("service: job %s done (%d trials)", j.ID, j.done.Load())
	case StateFailed:
		m.logf("service: job %s failed: %v", j.ID, err)
	case StateCanceled:
		m.logf("service: job %s canceled after %d trials", j.ID, j.done.Load())
	case StateQueued:
		m.logf("service: job %s drained to checkpoint at %d trials (shutdown)", j.ID, j.done.Load())
	}
}

// runSweep is the one place a job touches the execution stack: open the
// journal, point the NDJSON sink at the live feed, and hand the sweep
// (or its shard) to sink's checkpointed streaming — replay, fingerprint
// check, scalar or batched execution, and per-trial journaling all come
// from there. Shard jobs use the range-stamped journal entry point, so
// their NDJSON carries sweep-global trial indices while the journal
// stays shard-local.
func (m *Manager) runSweep(ctx context.Context, j *Job) error {
	specs, err := j.Scenario.ShardSpecs(j.BaseSeed, 0, j.Trials, j.Shard)
	if err != nil {
		return err
	}
	if testWrapSpecs != nil {
		specs = testWrapSpecs(j, specs)
	}
	cp, err := sink.OpenCheckpoint(j.journalPath())
	if err != nil {
		return err
	}
	defer cp.Close()
	j.done.Store(int64(cp.Done()))
	j.execBase.Store(int64(cp.Done()))
	j.execStart.Store(0)
	if err := j.feed.openForRun(); err != nil {
		return err
	}
	lo, _ := j.shardRange()
	sinks := []sim.Sink{sink.NewNDJSON(j.feed), meterSink{j: j, lo: lo}}
	if testExtraSinks != nil {
		sinks = append(sinks, testExtraSinks(j)...)
	}
	if j.Shard.IsZero() {
		return sink.StreamCheckpointedBatch(ctx, m.cfg.Procs, j.Scenario.Batch, specs, cp, sinks...)
	}
	return sink.StreamCheckpointedShard(ctx, m.cfg.Procs, j.Scenario.Batch, lo, specs, cp, sinks...)
}

// BeginDrain flips the service to not-ready: GET /readyz answers 503
// from here on, so probing coordinators stop routing new shards while
// in-flight work finishes. Draining is one-way — a server that started
// shutting down never re-advertises readiness.
func (m *Manager) BeginDrain() {
	if !m.draining.Swap(true) {
		m.logf("service: draining — readiness withdrawn")
	}
}

// Ready reports whether the service accepts new work (false once
// draining began).
func (m *Manager) Ready() bool { return !m.draining.Load() }

// Close drains the service: withdraw readiness, cancel every running
// job (each stops at its next engine phase boundary with its journal
// intact and its state re-queued for the next start) and wait for the
// runners, bounded by ctx. A deadline overrun is reported, not fatal —
// the journals are consistent at every instant anyway.
func (m *Manager) Close(ctx context.Context) error {
	m.BeginDrain()
	m.cancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain deadline exceeded: %w", ctx.Err())
	}
}

// StreamStart / StreamEnd track active result subscribers for metrics.
func (m *Manager) StreamStart() { m.streams.Add(1) }
func (m *Manager) StreamEnd()   { m.streams.Add(-1) }

// Metrics is the hand-rolled counter snapshot behind GET /metrics.
type Metrics struct {
	Version         string         `json:"version"`
	Ready           bool           `json:"ready"`
	QueueLen        int            `json:"queue_len"`
	QueueCap        int            `json:"queue_cap"`
	Jobs            map[State]int  `json:"jobs"`
	Submitted       int64          `json:"submitted"`
	Rejected        int64          `json:"rejected"`
	ActiveStreams   int64          `json:"active_streams"`
	Procs           int            `json:"procs"`
	Runners         int            `json:"runners"`
	LiveResultBound int            `json:"live_result_bound_per_job"`
	PoolUtilization float64        `json:"pool_utilization"`
	ClientsInFlight map[string]int `json:"clients_in_flight,omitempty"`
}

// Metrics snapshots the service counters: queue depth, per-state job
// counts, live streams, and the engine-pool numbers — including the
// streaming session's live-result bound (≤ sim.Window(procs) results
// in flight per running job, DESIGN.md §8).
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	perState := make(map[State]int, 5)
	running := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		perState[j.state]++
		if j.state == StateRunning {
			running++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	return Metrics{
		Version:         m.version,
		Ready:           m.Ready(),
		QueueLen:        len(m.queue),
		QueueCap:        cap(m.queue),
		Jobs:            perState,
		Submitted:       m.submitted.Load(),
		Rejected:        m.rejected.Load(),
		ActiveStreams:   m.streams.Load(),
		Procs:           sim.Procs(m.cfg.Procs),
		Runners:         m.cfg.Runners,
		LiveResultBound: sim.Window(m.cfg.Procs),
		PoolUtilization: float64(running) / float64(m.cfg.Runners),
		ClientsInFlight: m.limiter.snapshot(),
	}
}

// Version reports the build stamp jobs are recorded with.
func (m *Manager) Version() string { return m.version }
