// Jamduel: sweep the jammer's energy budget and watch the paper's
// resource-competitive trade emerge — Carol's spend T grows by 4x per
// step, but each correct device's cost grows only ~T^{1/3} (Theorem 1).
// The naive and KSY'11 baselines run against the same jam for contrast.
//
//	go run ./examples/jamduel
package main

import (
	"fmt"
	"log"
	"math"

	"rcbcast"
)

func main() {
	const n = 1024
	fmt.Println("ε-BROADCAST vs full jammer, n =", n)
	fmt.Printf("%10s  %12s  %12s  %12s  %12s  %10s\n",
		"T (Carol)", "ours: node", "ours: alice", "naive: node", "KSY: alice", "T^(1/3)")

	for pool := int64(1 << 10); pool <= 1<<16; pool *= 4 {
		res, err := rcbcast.Scenario{
			N: n, K: 2, Seed: 42,
			Adversary: rcbcast.AdversarySpec{Kind: "full"},
			Budget:    rcbcast.BudgetSpec{Pool: pool},
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		t := res.AdversarySpent

		naive := rcbcast.RunNaive(t, 1<<30)
		ksy := rcbcast.RunKSY(42, t, 1<<30, rcbcast.KSYParams{})

		fmt.Printf("%10d  %12d  %12d  %12d  %12d  %10.0f\n",
			t, res.NodeCost.Median, res.Alice.Cost,
			naive.NodeCost, ksy.AliceCost, math.Pow(float64(t), 1.0/3))
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - naive listeners pay ~T (they match Carol 1:1 — she wins)")
	fmt.Println("  - KSY's Alice pays ~T^0.62 but its listeners still pay ~T")
	fmt.Println("  - ours is load balanced: everyone pays ~T^(1/3) (+ a fixed base)")
	fmt.Println("  so delaying m forces Carol to deplete her energy polynomially")
	fmt.Println("  faster than anyone else — making the evildoer pay.")
}
