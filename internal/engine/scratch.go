package engine

import (
	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/topology"
)

// Scratch recycles a run's working buffers — the per-slot channel
// state, the per-phase transmission records, the per-node states with
// their committed-send slices, the device meters, the adversary history
// and RSSI bitmap, the round schedule, and the topology construction /
// CSR adjacency arrays — across executions. Tight trial loops
// (internal/sim's workers, benchmarks) hand one Scratch to consecutive
// runs via Options.Scratch; together with the in-place stream/schedule
// API (rng.Stream.Reseed, sampling.SlotSchedule.Reset) this drives the
// steady-state allocation rate to the handful of Result-sized objects a
// run must hand out (pinned by TestSteadyStateAllocs).
//
// A Scratch carries no results between runs — every buffer is reset at
// adoption — so results are byte-identical with and without one (pinned
// by the engine reuse test). It must never be shared by concurrently
// executing runs.
type Scratch struct {
	counts, soloKind []uint8
	dirty            []int32
	txs              []txRec
	nodes            []nodeState
	aliceMeter       *energy.Meter
	outcomes         []adversary.PhaseOutcome
	activity         adversary.Bitmap
	sched            core.Schedule
	topo             *topology.Scratch // created on first sparse run
}

// NewScratch returns an empty scratch; buffers grow to the sizes the
// runs it serves need.
func NewScratch() *Scratch { return &Scratch{} }

// adoptScratch moves the scratch's buffers (if any) into the run,
// resetting their contents. Node entries keep their meter and the
// capacity of their committed-send slices; everything else starts
// zeroed exactly as a fresh allocation would.
func (r *run) adoptScratch(n int) {
	sc := r.opts.Scratch
	if sc == nil {
		r.nodes = make([]nodeState, n)
		return
	}
	r.counts = sc.counts[:0]
	r.soloKind = sc.soloKind[:0]
	r.dirty = sc.dirty[:0]
	r.txs = sc.txs[:0]
	r.hist.Outcomes = sc.outcomes[:0]
	r.activity = sc.activity
	r.sched = sc.sched
	if cap(sc.nodes) >= n {
		r.nodes = sc.nodes[:n]
		for i := range r.nodes {
			node := &r.nodes[i]
			*node = nodeState{
				meter:     node.meter,
				sendSlots: node.sendSlots[:0],
				sendKinds: node.sendKinds[:0],
			}
		}
	} else {
		r.nodes = make([]nodeState, n)
	}
	r.alice.meter = sc.aliceMeter
}

// releaseScratch hands the run's (possibly grown) buffers back to the
// scratch for the next run. Result-bound memory (NodeCosts, recorded
// Phases) is never recycled: it escapes to the caller.
func (r *run) releaseScratch() {
	sc := r.opts.Scratch
	if sc == nil {
		return
	}
	sc.counts, sc.soloKind = r.counts, r.soloKind
	sc.dirty, sc.txs = r.dirty, r.txs
	sc.nodes = r.nodes
	sc.aliceMeter = r.alice.meter
	sc.outcomes = r.hist.Outcomes
	sc.activity = r.activity
	sc.sched = r.sched
}
