package rng

import (
	"math"
	"os"
)

// This file gates the assembly draw kernel (geoblock_amd64.s): eight
// complete geometric draws per call — the xoshiro steps, the 53-bit
// uniform conversion, the fdlibm log evaluated four lanes wide on AVX2
// vectors, the division by lnQ, and the truncation with the "never"
// sentinel. Lane arithmetic in AVX2 is the same IEEE-754 operation the
// scalar instruction performs, and the kernel is written mul/add
// separate (no FMA contraction), so each lane reproduces logPortable's
// roundings exactly. That claim is not taken on faith: useGeoBlock8
// requires a start-up differential against the scalar draw across seeds
// and skip distributions, including the sentinel regime, and the block
// draw falls back to the four-lane Go kernel wherever it fails.

// geoBlock8Asm draws the next 8 geometric skips of the stream state s
// with the given lnQ, bit-identical to 8 scalar GeometricLnQ calls: it
// advances s exactly 8 xoshiro steps and fills dst with the 8 draws.
// invLnQ must be 1/lnQ (hoisted so the kernel's quotient fast path
// multiplies instead of dividing). Only valid when useGeoBlock8 is
// true.
//
//go:noescape
func geoBlock8Asm(s *[4]uint64, dst *[8]int, lnQ, invLnQ float64)

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// geoBlock8Supported is true when the CPU and OS support AVX2 and the
// assembly kernel reproduces the scalar draw bit-for-bit.
var geoBlock8Supported = detectGeoBlock8()

// useGeoBlock8 routes GeometricBlockLnQ through the assembly kernel. It
// starts from the hardware detection, minus the environment kill
// switch: RCBCAST_NO_GEOBLOCK8 (any non-empty value) forces the
// pure-Go four-lane path even where AVX2 works, so CI can exercise the
// fallback's byte-identity on AVX2 hosts instead of only on machines
// that happen to lack the kernel. The fallback is bit-identical by
// construction, so the switch is always safe.
var useGeoBlock8 = os.Getenv("RCBCAST_NO_GEOBLOCK8") == "" && geoBlock8Supported

// GeoBlock8Enabled reports whether block draws currently route through
// the assembly kernel.
func GeoBlock8Enabled() bool { return useGeoBlock8 }

// SetGeoBlock8 enables or disables the assembly kernel in-process,
// returning the previous state. Enabling is clamped to hardware
// support. Draws are bit-identical either way — the switch exists so
// differential tests can cover the pure-Go path on one host — but it is
// not synchronized: flip it only while no other goroutine draws.
func SetGeoBlock8(enabled bool) (prev bool) {
	prev = useGeoBlock8
	useGeoBlock8 = enabled && geoBlock8Supported
	return prev
}

func detectGeoBlock8() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state OS-enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	if ebx7&avx2Bit == 0 {
		return false
	}
	return geoBlock8SelfCheck()
}

// geoBlock8SelfCheck runs the assembly kernel against the scalar draw
// over a spread of stream states and skip distributions — dense and
// sparse schedules, and lnQ values small enough to drive quotients into
// the MaxInt sentinel — requiring bit-identical draws and final stream
// state everywhere.
func geoBlock8SelfCheck() bool {
	ps := []float64{0.999999, 0.9, 0.5, 0.2, 0.01, 1e-6, 1e-12, 1e-18, 1e-300}
	sm := uint64(0xc0ffee5eed5a11ad)
	for trial := 0; trial < 512; trial++ {
		state := [4]uint64{splitMix64(&sm), splitMix64(&sm), splitMix64(&sm), splitMix64(&sm)}
		for _, p := range ps {
			lnQ := math.Log1p(-p)
			var ref Stream
			ref.s = state
			ref.init = true
			asmState := state
			var got [8]int
			geoBlock8Asm(&asmState, &got, lnQ, 1/lnQ)
			for d := 0; d < 8; d++ {
				if got[d] != ref.GeometricLnQ(lnQ) {
					return false
				}
			}
			if asmState != ref.s {
				return false
			}
			state = asmState
		}
	}
	return true
}
