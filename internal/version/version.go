// Package version is the one place the build identifies itself: every
// CLI (rcbcast, rcexp, rcserved) reports the same -version string, and
// the sweep service stamps it into job records so a result file can be
// traced back to the build that produced it.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// String renders the build identity: module path version (the VCS
// revision when the binary was built from a checkout) plus the Go
// toolchain version. The format is stable enough to grep —
// "rcbcast VERSION GOVERSION" — but meant for humans and job records,
// not machine parsing.
func String() string {
	return fmt.Sprintf("rcbcast %s %s", build(), runtime.Version())
}

// build resolves the module version, preferring an embedded VCS
// revision: `go build` from a release module reports its semver, a
// checkout build reports (devel)+REVISION, and binaries without build
// info (some test harnesses) report devel.
func build() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	v := bi.Main.Version
	if v == "" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		v += "+" + rev
	}
	return v
}
