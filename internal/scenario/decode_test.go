package scenario

import (
	"strings"
	"testing"
)

// TestDecodeErrorsNameFieldPaths pins the decode-failure messages the
// sweep service returns as 400 bodies: every type error names the field
// path from the document root and the offending JSON value kind, every
// unknown field keeps its name, and syntax errors keep their offset.
func TestDecodeErrorsNameFieldPaths(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // substrings the message must contain
	}{
		{
			name: "top-level type error",
			in:   `{"n": "big"}`,
			want: []string{`field "n"`, "JSON string", "int"},
		},
		{
			name: "adversary knob type error",
			in:   `{"n": 64, "adversary": {"kind": "random", "p": "half"}}`,
			want: []string{`field "adversary.p"`, "JSON string", "float64"},
		},
		{
			name: "topology knob type error",
			in:   `{"n": 64, "topology": {"kind": "gilbert", "radius": true}}`,
			want: []string{`field "topology.radius"`, "JSON bool", "float64"},
		},
		{
			name: "budget knob type error",
			in:   `{"n": 64, "budget": {"pool": "lots"}}`,
			want: []string{`field "budget.pool"`, "JSON string", "int64"},
		},
		{
			name: "overrides knob type error",
			in:   `{"n": 64, "overrides": {"extra_rounds": 3.5}}`,
			want: []string{`field "overrides.extra_rounds"`, "JSON number 3.5", "int"},
		},
		{
			name: "composite part type error",
			in:   `{"n": 64, "adversary": {"kind": "composite", "parts": [{"kind": 7}]}}`,
			want: []string{`field "adversary.parts.kind"`, "JSON number", "string"},
		},
		{
			name: "adversary is not an object",
			in:   `{"n": 64, "adversary": "full"}`,
			want: []string{`field "adversary"`, "JSON string"},
		},
		{
			name: "unknown top-level field",
			in:   `{"n": 64, "adverzary": {"kind": "full"}}`,
			want: []string{`unknown field "adverzary"`, "-dump-scenario"},
		},
		{
			name: "unknown nested field",
			in:   `{"n": 64, "adversary": {"kindd": "full"}}`,
			want: []string{`unknown field "kindd"`},
		},
		{
			name: "document is not an object",
			in:   `[1, 2]`,
			want: []string{"a scenario is a JSON object", "JSON array"},
		},
		{
			name: "syntax error keeps its offset",
			in:   `{"n": 64,}`,
			want: []string{"invalid JSON at byte"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.in))
			if err == nil {
				t.Fatalf("Decode(%s) succeeded, want an error", tc.in)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("Decode(%s) error %q does not mention %q", tc.in, err, w)
				}
			}
		})
	}
}

// TestDecodeValidPassesThrough guards against the error rewriting
// breaking the happy path.
func TestDecodeValidPassesThrough(t *testing.T) {
	s, err := Decode([]byte(`{"n": 64, "adversary": {"kind": "random", "p": 0.25}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 64 || s.Adversary.Kind != "random" || s.Adversary.P != 0.25 {
		t.Fatalf("decoded scenario %+v lost fields", s)
	}
}
