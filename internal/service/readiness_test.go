package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestReadinessSplitFromLiveness pins the liveness/readiness split: a
// draining server still answers /healthz 200 (the process is alive and
// streams are flushing) but /readyz flips to 503 so membership probes
// stop routing new shards to it.
func TestReadinessSplitFromLiveness(t *testing.T) {
	m := newTestManager(t, Config{Procs: 2})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	code, body := getBody(t, ts, "/readyz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ready"`)) {
		t.Fatalf("fresh /readyz: %d %s", code, body)
	}
	if !m.Ready() {
		t.Fatal("fresh manager reports not ready")
	}

	m.BeginDrain()

	code, body = getBody(t, ts, "/readyz")
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(`"draining"`)) {
		t.Fatalf("draining /readyz: %d %s", code, body)
	}
	code, body = getBody(t, ts, "/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("draining /healthz: %d %s (liveness must survive a drain)", code, body)
	}

	// BeginDrain is idempotent and one-way, and surfaces in /metrics.
	m.BeginDrain()
	if m.Ready() {
		t.Fatal("drained manager reports ready")
	}
	code, data := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var met Metrics
	if err := json.Unmarshal(data, &met); err != nil {
		t.Fatal(err)
	}
	if met.Ready {
		t.Fatalf("draining metrics still advertise ready: %+v", met)
	}
}
