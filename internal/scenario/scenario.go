package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
	"rcbcast/internal/topology"
)

// BudgetSpec declares the energy side of a scenario: Carol's pool and,
// optionally, the paper's per-device budgets. The zero value means an
// unlimited adversary and uncapped devices.
type BudgetSpec struct {
	// Pool is a fixed adversary energy pool in slots (0 = none).
	// Mutually exclusive with ModelC.
	Pool int64 `json:"pool,omitempty"`
	// ModelC > 0 selects the paper's pooled budget instead:
	// energy.DefaultBudgets(ModelC, k).AdversaryPool(n, ModelF) —
	// Carol's individual budget plus ModelF·n Byzantine devices' (§1.1,
	// Lemma 11).
	ModelC float64 `json:"model_c,omitempty"`
	// ModelF is the Byzantine device fraction f for the model pool,
	// in [0, 1].
	ModelF float64 `json:"model_f,omitempty"`
	// DeviceC > 0 enforces the paper's per-device budgets on the correct
	// side: node C·n^{1/k}, Alice C·n^{1/k}·ln^k n.
	DeviceC float64 `json:"device_c,omitempty"`
}

// Validate reports the first violated constraint, or nil.
func (b BudgetSpec) Validate() error {
	switch {
	case b.Pool < 0:
		return fmt.Errorf("scenario: budget pool must be >= 0 (got %d)", b.Pool)
	case b.Pool > 0 && b.ModelC > 0:
		return fmt.Errorf("scenario: budget pool and model_c are mutually exclusive")
	case b.ModelC < 0 || b.DeviceC < 0:
		return fmt.Errorf("scenario: budget constants must be >= 0")
	case b.ModelF > 0 && b.ModelC == 0:
		return fmt.Errorf("scenario: model_f needs model_c > 0")
	case b.ModelF < 0 || b.ModelF > 1:
		// f is the *fraction* of devices that are Byzantine; a raw
		// count here (e.g. 25 instead of 1/25) would silently grant
		// Carol a pool hundreds of times the intended threat model.
		return fmt.Errorf("scenario: model_f is a fraction in [0, 1] (got %v)", b.ModelF)
	}
	return nil
}

// NewPool mints a fresh adversary pool for one run, or nil when the
// spec leaves Carol unlimited. Pools carry per-run mutable state, so
// parallel trials must call this once per trial.
func (b BudgetSpec) NewPool(n, k int) *energy.Pool {
	switch {
	case b.ModelC > 0:
		return energy.DefaultBudgets(b.ModelC, k).AdversaryPool(n, b.ModelF)
	case b.Pool > 0:
		return energy.NewPool(b.Pool)
	default:
		return nil
	}
}

// limited reports whether the spec creates a pool at all.
func (b BudgetSpec) limited() bool { return b.Pool > 0 || b.ModelC > 0 }

// Overrides are optional protocol-parameter adjustments applied on top
// of the Paper/Practical base (all zero = untouched). They cover every
// field the CLIs, experiments and examples historically poked by hand.
type Overrides struct {
	// Epsilon replaces ε′ (the quiet-test scale).
	Epsilon float64 `json:"epsilon,omitempty"`
	// C replaces the protocol constant c.
	C float64 `json:"c,omitempty"`
	// StartRound replaces the first round index.
	StartRound int `json:"start_round,omitempty"`
	// MaxRound sets an absolute round cap. Mutually exclusive with
	// ExtraRounds.
	MaxRound int `json:"max_round,omitempty"`
	// ExtraRounds caps the run at StartRound + ExtraRounds — the idiom
	// every experiment uses to bound hopeless runs.
	ExtraRounds int `json:"extra_rounds,omitempty"`
	// DecoyProb / ListenBoost override the §4.1 decoy constants that
	// Params.EnableDecoy sets.
	DecoyProb   float64 `json:"decoy_prob,omitempty"`
	ListenBoost float64 `json:"listen_boost,omitempty"`
	// LnScale sets LnOverride = LnScale·ln n and NScale sets
	// NOverride = NScale·n — the §4.2 approximate-parameter mode.
	LnScale float64 `json:"ln_scale,omitempty"`
	NScale  float64 `json:"n_scale,omitempty"`
	// PolyEstimate sets the §4.2 polynomial overestimate ν directly.
	PolyEstimate float64 `json:"poly_estimate,omitempty"`
	// QuietFrac replaces the fraction-mode termination threshold.
	QuietFrac float64 `json:"quiet_frac,omitempty"`
}

// Scenario is a complete, serializable run description: protocol
// instance, adversary, budgets and engine. It is the one value every
// entry point (CLI flags, JSON files, experiments, examples, the
// façade) converts into engine.Options or sim.TrialSpec.
type Scenario struct {
	// Name labels the scenario in listings and reports (optional).
	Name string `json:"name,omitempty"`

	// N is the number of correct nodes (required to run).
	N int `json:"n,omitempty"`
	// K is the protocol parameter k (0 selects 2).
	K int `json:"k,omitempty"`
	// Paper selects core.PaperParams instead of core.PracticalParams.
	Paper bool `json:"paper,omitempty"`
	// Decoy enables the §4.1 decoy defence (Params.EnableDecoy).
	Decoy bool `json:"decoy,omitempty"`
	// Quiet overrides the termination test: "", "absolute", "fraction".
	Quiet string `json:"quiet,omitempty"`
	// Topology selects the neighborhood graph reception is resolved
	// against: clique (the default — the paper's single-hop channel),
	// grid, or gilbert (internal/topology). Compact flag syntax:
	// "grid:w=32,reach=2", "gilbert:r=0.2".
	Topology topology.Spec `json:"topology,omitzero"`
	// Overrides adjust individual protocol parameters.
	Overrides Overrides `json:"overrides,omitzero"`

	// Adversary describes Carol (zero value = none).
	Adversary AdversarySpec `json:"adversary,omitzero"`
	// Budget declares her pool and the optional device budgets.
	Budget BudgetSpec `json:"budget,omitzero"`
	// Reactive grants the adversary its within-slot RSSI view even if
	// the kind does not imply it (reactive kinds are granted
	// automatically).
	Reactive bool `json:"reactive,omitempty"`

	// Seed drives every random decision of the run.
	Seed uint64 `json:"seed,omitempty"`
	// Engine selects the executor: "", "fast", "actors".
	Engine string `json:"engine,omitempty"`
	// Batch sets the sweep batch width: values > 1 route Stream through
	// the batched lockstep kernel (sim.StreamBatch), executing that many
	// same-point trials per engine call. Results and sink output are
	// byte-identical at every width; 0 and 1 select the scalar stream.
	Batch int `json:"batch,omitempty"`
	// RecordPhases retains per-phase outcomes in the Result.
	RecordPhases bool `json:"record_phases,omitempty"`
}

// Validate reports the first violated constraint, or nil. The resolved
// protocol parameters are validated too, so a Scenario that passes
// Validate will Build.
func (s Scenario) Validate() error {
	_, _, err := s.resolve()
	return err
}

// resolve validates the scenario and returns its resolved protocol
// instance and adversary spec — the one checking/derivation pass
// shared by Validate, Build and TrialSpec. The adversary spec is taken
// exactly as stated: parse-time defaults belong to ParseAdversary, so
// an explicitly zero knob here is either valid as written or a
// validation error, never a silent substitution.
func (s Scenario) resolve() (core.Params, AdversarySpec, error) {
	fail := func(err error) (core.Params, AdversarySpec, error) {
		return core.Params{}, AdversarySpec{}, err
	}
	spec := s.Adversary
	if err := spec.Validate(); err != nil {
		return fail(err)
	}
	if err := s.Budget.Validate(); err != nil {
		return fail(err)
	}
	if err := s.Topology.Validate(); err != nil {
		return fail(err)
	}
	switch s.Engine {
	case "", "fast", "actors":
	default:
		return fail(fmt.Errorf("scenario: unknown engine %q (have fast, actors)", s.Engine))
	}
	switch s.Quiet {
	case "", "absolute", "fraction":
	default:
		return fail(fmt.Errorf("scenario: unknown quiet mode %q (have absolute, fraction)", s.Quiet))
	}
	if s.Overrides.MaxRound != 0 && s.Overrides.ExtraRounds != 0 {
		return fail(fmt.Errorf("scenario: max_round and extra_rounds are mutually exclusive"))
	}
	if s.Batch < 0 {
		return fail(fmt.Errorf("scenario: batch width must be >= 0 (got %d)", s.Batch))
	}
	params, err := s.Params()
	if err != nil {
		return fail(err)
	}
	if err := params.Validate(); err != nil {
		return fail(fmt.Errorf("scenario: %w", err))
	}
	return params, spec, nil
}

// Params resolves the scenario's protocol instance: base parameters,
// then the decoy defence, then the quiet mode, then field overrides —
// every parameter effect lands here, strictly before any
// engine.Options assembly (Build), so no option can observe a
// half-adjusted instance.
func (s Scenario) Params() (core.Params, error) {
	if s.N == 0 {
		return core.Params{}, fmt.Errorf("scenario: n is required")
	}
	k := s.K
	if k == 0 {
		k = 2
	}
	var p core.Params
	if s.Paper {
		p = core.PaperParams(s.N, k)
	} else {
		p = core.PracticalParams(s.N, k)
	}
	if s.Decoy {
		p.EnableDecoy()
	}
	switch s.Quiet {
	case "absolute":
		p.Quiet = core.QuietAbsolute
	case "fraction":
		p.Quiet = core.QuietFraction
	}
	o := s.Overrides
	if o.Epsilon > 0 {
		p.Epsilon = o.Epsilon
	}
	if o.C > 0 {
		p.C = o.C
	}
	if o.StartRound > 0 {
		p.StartRound = o.StartRound
	}
	if o.MaxRound > 0 {
		p.MaxRound = o.MaxRound
	}
	if o.ExtraRounds > 0 {
		p.MaxRound = p.StartRound + o.ExtraRounds
	}
	if o.DecoyProb > 0 {
		p.DecoyProb = o.DecoyProb
	}
	if o.ListenBoost > 0 {
		p.ListenBoost = o.ListenBoost
	}
	if o.LnScale > 0 {
		p.LnOverride = o.LnScale * p.LnN()
	}
	if o.NScale > 0 {
		p.NOverride = o.NScale * float64(p.N)
	}
	if o.PolyEstimate > 0 {
		p.PolyEstimate = o.PolyEstimate
	}
	if o.QuietFrac > 0 {
		p.QuietFrac = o.QuietFrac
	}
	return p, nil
}

// allowReactive reports whether the run grants the within-slot RSSI
// view.
func (s Scenario) allowReactive() bool { return s.Reactive || s.Adversary.Reactive() }

// SparseTopologyExtraRounds is the default round bound ApplyTopology
// installs for sparse graphs; the registry's topology entries use the
// same value.
const SparseTopologyExtraRounds = 3

// ApplyTopology sets the scenario's topology and, for sparse graphs
// with no explicit round bound, caps the run at
// StartRound+SparseTopologyExtraRounds: nodes beyond Alice's k-hop
// reach hear their neighbors' NACKs forever and never pass the quiet
// test, so an unbounded sparse run only grinds to the natural round
// limit (DESIGN.md §9). This is the one place both CLIs route
// -topology through.
func (s *Scenario) ApplyTopology(spec topology.Spec) {
	s.Topology = spec
	if !spec.IsClique() && s.Overrides.MaxRound == 0 && s.Overrides.ExtraRounds == 0 {
		s.Overrides.ExtraRounds = SparseTopologyExtraRounds
	}
}

// Build converts the scenario into engine.Options. Parameters are
// fully resolved (Params) before the options are assembled, and a
// fresh strategy and pool are minted, so the returned options are safe
// to run exactly once (pools and several strategies are stateful; call
// Build again for another run, or use TrialSpec for parallel sweeps).
func (s Scenario) Build() (engine.Options, error) {
	params, spec, err := s.resolve()
	if err != nil {
		return engine.Options{}, err
	}
	opts := engine.Options{
		Params:        params,
		Topology:      s.Topology,
		Seed:          s.Seed,
		AllowReactive: s.allowReactive(),
		RecordPhases:  s.RecordPhases,
	}
	if !spec.IsNull() {
		opts.Strategy = spec.MustNew(params)
	}
	if pool := s.Budget.NewPool(params.N, params.K); pool != nil {
		opts.Pool = pool
	}
	if s.Budget.DeviceC > 0 {
		bm := energy.DefaultBudgets(s.Budget.DeviceC, params.K)
		opts.NodeBudget = bm.Node(params.N)
		opts.AliceBudget = bm.Alice(params.N)
	}
	return opts, nil
}

// Run builds and executes the scenario on its selected engine.
func (s Scenario) Run() (*engine.Result, error) {
	return s.RunContext(context.Background())
}

// RunContext builds and executes the scenario on its selected engine,
// checking ctx at every phase boundary; cancellation returns the
// engine's typed *engine.PartialRunError.
func (s Scenario) RunContext(ctx context.Context) (*engine.Result, error) {
	opts, err := s.Build()
	if err != nil {
		return nil, err
	}
	return ExecuteContext(ctx, s.Engine, opts)
}

// Execute runs assembled options on the named engine ("" and "fast"
// select the sequential event-driven engine, "actors" the goroutine
// engine). Both produce bit-for-bit identical results.
func Execute(engineName string, opts engine.Options) (*engine.Result, error) {
	return ExecuteContext(context.Background(), engineName, opts)
}

// ExecuteContext is Execute with phase-boundary cancellation.
func ExecuteContext(ctx context.Context, engineName string, opts engine.Options) (*engine.Result, error) {
	switch engineName {
	case "", "fast":
		return engine.RunContext(ctx, opts)
	case "actors":
		return engine.RunActorsContext(ctx, opts)
	default:
		return nil, fmt.Errorf("scenario: unknown engine %q (have fast, actors)", engineName)
	}
}

// Stream runs `trials` Monte-Carlo trials of the scenario — seeded
// sim.SweepSeed(base, point, t) exactly like TrialSpecs — through the
// streaming run session: results are delivered to the sinks in trial
// order with bounded buffering, so the sweep holds O(procs) live
// results however large trials gets. Batch > 1 executes the trials
// through the batched lockstep kernel in groups of that width, with
// byte-identical sink output. Cancellation of ctx surfaces as a
// *sim.PartialError whose Delivered prefix has reached every sink.
func (s Scenario) Stream(ctx context.Context, procs int, base uint64, point, trials int, sinks ...sim.Sink) error {
	specs, err := s.TrialSpecs(base, point, trials)
	if err != nil {
		return err
	}
	if s.Batch > 1 {
		return sim.StreamBatch(ctx, procs, s.Batch, specs, sinks...)
	}
	return sim.Stream(ctx, procs, specs, sinks...)
}

// TrialSpec converts the scenario into one sim.TrialSpec for the
// parallel trial runner, with the given fully derived seed (see
// sim.TrialSeed / sim.SweepSeed). The spec's factories mint a fresh
// strategy and pool per trial, so specs from one scenario are safe to
// run concurrently.
func (s Scenario) TrialSpec(seed uint64) (sim.TrialSpec, error) {
	params, spec, err := s.resolve()
	if err != nil {
		return sim.TrialSpec{}, err
	}
	ts := sim.TrialSpec{Params: params, Topology: s.Topology, Seed: seed}
	if !spec.IsNull() {
		ts.Strategy = func() adversary.Strategy { return spec.MustNew(params) }
	}
	if budget := s.Budget; budget.limited() {
		ts.Pool = func() *energy.Pool { return budget.NewPool(params.N, params.K) }
	}
	reactive, record, deviceC := s.allowReactive(), s.RecordPhases, s.Budget.DeviceC
	if reactive || record || deviceC > 0 {
		n, k := params.N, params.K
		ts.Configure = func(o *engine.Options) {
			if reactive {
				o.AllowReactive = true
			}
			if record {
				o.RecordPhases = true
			}
			if deviceC > 0 {
				bm := energy.DefaultBudgets(deviceC, k)
				o.NodeBudget = bm.Node(n)
				o.AliceBudget = bm.Alice(n)
			}
		}
	}
	return ts, nil
}

// TrialSpecs returns `trials` specs for a Monte-Carlo sweep point,
// seeded with sim.SweepSeed(base, point, t) for t = 0..trials-1. The
// scenario is resolved once; the specs differ only in their seeds (the
// shared factories mint fresh per-trial state regardless). Contiguous
// sub-ranges of the same sweep come from ShardSpecs.
func (s Scenario) TrialSpecs(base uint64, point, trials int) ([]sim.TrialSpec, error) {
	return s.ShardSpecs(base, point, trials, Shard{})
}

// Decode parses a JSON scenario, rejecting unknown fields so typos in
// hand-written files surface as errors instead of silently benign runs.
// Errors name the offending field path and value kind (see decodeErr) —
// they double as the sweep service's 400 bodies, so "cannot unmarshal
// string into Go value" without a path is not good enough.
func Decode(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, decodeErr(err)
	}
	return s, nil
}

// decodeErr rewrites encoding/json's decode failures into messages that
// name what the author has to fix: the field path from the document
// root (type errors carry it as UnmarshalTypeError.Field), the JSON
// value kind found there, and the Go type it must decode into. Unknown
// fields keep the offending name; syntax errors keep the byte offset.
func decodeErr(err error) error {
	var te *json.UnmarshalTypeError
	if errors.As(err, &te) {
		if te.Field == "" {
			return fmt.Errorf("scenario: decode: a scenario is a JSON object, not JSON %s", te.Value)
		}
		return fmt.Errorf("scenario: decode: field %q: cannot use JSON %s as %s",
			te.Field, te.Value, te.Type)
	}
	var se *json.SyntaxError
	if errors.As(err, &se) {
		return fmt.Errorf("scenario: decode: invalid JSON at byte %d: %w", se.Offset, err)
	}
	// DisallowUnknownFields reports a bare `json: unknown field "x"`;
	// keep the quoted name and say how to list the valid ones.
	if rest, ok := strings.CutPrefix(err.Error(), "json: unknown field "); ok {
		return fmt.Errorf("scenario: decode: unknown field %s (rcbcast -dump-scenario prints every valid field)", rest)
	}
	return fmt.Errorf("scenario: decode: %w", err)
}

// Encode renders the scenario as indented JSON. Encoding is
// deterministic: encode→Decode→Encode is byte-stable (pinned by test).
func Encode(s Scenario) ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
