// Package experiment defines the reproduction experiments E1–E13 from
// DESIGN.md §4. The paper (PODC 2012 theory) has no empirical tables; each
// experiment here regenerates one of its *quantitative claims* — Theorem 1
// cost exponents, the (1-ε) delivery guarantee, Corollary 1 latency, load
// balancing, the §1.2 baseline comparisons, the §4.1 reactive defence, the
// §2.2 spoofing bound, the §2.3 n-uniform stranding limit, and the §4.2
// approximate-parameter mode — as a measured table plus machine-readable
// values (fitted exponents, fractions) that the test suite asserts on.
//
// The same runners back the cmd/rcexp CLI, the benchmarks in bench_test.go,
// and the EXPERIMENTS.md record.
package experiment

import (
	"context"
	"fmt"
	"sort"

	"rcbcast/internal/sim"
	"rcbcast/internal/stats"
)

// Config scales an experiment run.
type Config struct {
	// N is the network size (0 selects the experiment's default).
	N int
	// Seeds is the number of independent runs averaged per point
	// (0 selects the default).
	Seeds int
	// BaseSeed offsets all run seeds for independent repetitions.
	BaseSeed uint64
	// Quick shrinks sweeps for the test suite; benchmarks and the CLI
	// use the full ranges.
	Quick bool
	// Procs is the trial runner's worker count (0 selects GOMAXPROCS).
	// Reports are byte-identical for every value — see internal/sim.
	Procs int
	// Context, when non-nil, cancels the experiment's sweeps at the
	// next engine phase boundary (the CLI wires Ctrl-C here). The
	// cancellation surfaces as a *sim.PartialError.
	Context context.Context
}

// ctx resolves the sweep context (nil selects context.Background).
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

func (c Config) n(def, quickDef int) int {
	if c.N > 0 {
		return c.N
	}
	if c.Quick {
		return quickDef
	}
	return def
}

func (c Config) seeds(def, quickDef int) int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return quickDef
	}
	return def
}

// seed derives the engine seed for trial index i of a one-dimensional
// sweep. The SplitMix64 mix (sim.TrialSeed) makes trial-seed sets from
// different BaseSeeds disjoint in practice; the previous affine scheme
// BaseSeed*1_000_003+i collided across adjacent bases once a sweep used
// ≥ 1_000_003 indices.
func (c Config) seed(i int) uint64 { return sim.TrialSeed(c.BaseSeed, i) }

// seedAt derives the engine seed for trial s of sweep point `point`.
// The point is mixed as its own SplitMix64 dimension, so no stride can
// make two points share trial seeds however large Config.Seeds gets.
// Point ids only need to be unique within one experiment.
func (c Config) seedAt(point, s int) uint64 { return sim.SweepSeed(c.BaseSeed, point, s) }

// Report is an experiment's output.
type Report struct {
	ID, Title, Claim string
	// Tables are the regenerated rows (usually one table).
	Tables []*stats.Table
	// Findings are human-readable one-liners (fitted exponents etc.).
	Findings []string
	// Values are machine-readable results keyed by name; the test suite
	// asserts the reproduction's "shape" against them.
	Values map[string]float64
}

func newReport(id, title, claim string) *Report {
	return &Report{ID: id, Title: title, Claim: claim, Values: map[string]float64{}}
}

func (r *Report) addFinding(format string, args ...any) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// Render returns the full plain-text report.
func (r *Report) Render() string {
	out := fmt.Sprintf("%s — %s\nClaim: %s\n\n", r.ID, r.Title, r.Claim)
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	for _, f := range r.Findings {
		out += "finding: " + f + "\n"
	}
	return out
}

// Experiment couples metadata with its runner.
type Experiment struct {
	ID, Title, Claim string
	Run              func(cfg Config) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// E1..E9 sort before E10, E11: compare by numeric suffix.
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
