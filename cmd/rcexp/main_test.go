package main

import (
	"strings"
	"testing"
)

func TestRcexpList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E12"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRcexpSingleQuick(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-id", "E9", "-quick", "-n", "128", "-seeds", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E9") || !strings.Contains(buf.String(), "wall time") {
		t.Fatalf("report incomplete:\n%s", buf.String())
	}
}

func TestRcexpMarkdown(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-id", "E9", "-quick", "-n", "128", "-seeds", "1", "-markdown"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### E9") || !strings.Contains(buf.String(), "|---|") {
		t.Fatalf("markdown output wrong:\n%s", buf.String())
	}
}

// TestRcexpProcsDeterministic asserts the CLI contract stated in the doc
// comment: modulo wall-time lines, output is byte-identical for every
// -procs value.
func TestRcexpProcsDeterministic(t *testing.T) {
	render := func(procs string) string {
		var buf strings.Builder
		args := []string{"-id", "E3", "-quick", "-n", "128", "-procs", procs}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		var kept []string
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "wall time") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	if p1, p8 := render("1"), render("8"); p1 != p8 {
		t.Fatalf("-procs 1 and -procs 8 diverged:\n--- procs=1\n%s\n--- procs=8\n%s", p1, p8)
	}
}

func TestRcexpUnknownID(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-id", "E99"}, &buf); err == nil {
		t.Fatal("unknown id must error")
	}
}
