package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
)

// TestConcurrencyLimits drives the service with 9 distinct clients — 8
// of them concurrently — against a gated runner pool and pins the two
// admission bounds: the per-client in-flight cap and the shared queue
// bound, with everything beyond them rejected 429.
func TestConcurrencyLimits(t *testing.T) {
	gate := newTrialGate(0) // every trial parks: jobs stay running/queued
	defer setWrapSpecs(gate.wrap)()
	defer gate.release()

	const (
		runners    = 2
		queueDepth = 4
		perClient  = 2
		trials     = 6
	)
	m := newTestManager(t, Config{Runners: runners, QueueDepth: queueDepth, PerClient: perClient})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	// Serial phase: one client walks into its own cap.
	submit := func(client, name string) (int, Status) {
		return postJob(t, ts, client, submitBody(t, testScenario(name), trials))
	}
	if code, _ := submit("c0", "c0-job0"); code != http.StatusAccepted {
		t.Fatalf("c0 first submit: %d, want 202", code)
	}
	if code, _ := submit("c0", "c0-job1"); code != http.StatusAccepted {
		t.Fatalf("c0 second submit: %d, want 202", code)
	}
	code, body := postRaw(t, ts, "c0", submitBody(t, testScenario("c0-job2"), trials))
	if code != http.StatusTooManyRequests {
		t.Fatalf("c0 over-cap submit: %d, want 429", code)
	}
	if !jsonErrorContains(t, body, "too many jobs in flight") {
		t.Fatalf("over-cap body %s does not name the per-client cap", body)
	}

	// Wait until both runners hold a job, so the queue is empty and the
	// concurrent phase sees a deterministic admission capacity.
	waitMetrics(t, m, "both runners busy", func(met Metrics) bool {
		return met.Jobs[StateRunning] == runners && met.QueueLen == 0
	})

	// Concurrent phase: 8 more clients, one job each, racing for the 4
	// queue slots (no runner frees up — every running trial is parked).
	var (
		wg       sync.WaitGroup
		accepted atomic.Int64
		rejected atomic.Int64
	)
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := fmt.Sprintf("c%d", i)
			code, body := postRaw(t, ts, client, submitBody(t, testScenario(client+"-job"), trials))
			switch code {
			case http.StatusAccepted:
				accepted.Add(1)
			case http.StatusTooManyRequests:
				if jsonErrorContains(t, body, "queue is full") {
					rejected.Add(1)
				} else {
					t.Errorf("%s rejection body %s does not name the queue", client, body)
				}
			default:
				t.Errorf("%s: unexpected status %d: %s", client, code, body)
			}
		}(i)
	}
	wg.Wait()
	if accepted.Load() != queueDepth || rejected.Load() != 8-queueDepth {
		t.Fatalf("concurrent phase admitted %d / rejected %d, want %d / %d",
			accepted.Load(), rejected.Load(), queueDepth, 8-queueDepth)
	}
	met := m.Metrics()
	if met.Rejected < int64(1+8-queueDepth) {
		t.Fatalf("rejected counter = %d, want >= %d", met.Rejected, 1+8-queueDepth)
	}
	for client, n := range met.ClientsInFlight {
		if n > perClient {
			t.Fatalf("client %s holds %d slots, cap is %d", client, n, perClient)
		}
	}

	// Unblock everything and let the admitted jobs drain to done.
	gate.release()
	waitMetrics(t, m, "admitted jobs drained", func(met Metrics) bool {
		return met.Jobs[StateDone] == int(2+accepted.Load()) && met.Jobs[StateRunning] == 0
	})
}

// TestLiveResultBoundHolds measures, from inside the worker pool, the
// maximum number of started-but-undelivered trials a running job holds
// and checks it never exceeds the streaming session's published bound
// sim.Window(procs) = 4·procs.
func TestLiveResultBoundHolds(t *testing.T) {
	const procs = 2
	const trials = 64

	var inflight, peak atomic.Int64
	wrap := func(_ *Job, specs []sim.TrialSpec) []sim.TrialSpec {
		out := append([]sim.TrialSpec(nil), specs...)
		for i := range out {
			inner := out[i].Configure
			out[i].Configure = func(o *engine.Options) {
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				if inner != nil {
					inner(o)
				}
			}
		}
		return out
	}
	sinks := func(j *Job) []sim.Sink {
		base := int(j.execBase.Load())
		return []sim.Sink{sinkFunc(func(i int) {
			if i >= base {
				inflight.Add(-1)
			}
		})}
	}
	defer setWrapSpecs(wrap)()
	defer setExtraSinks(sinks)()

	m := newTestManager(t, Config{Procs: procs})
	j, _, err := m.Submit("alice", testScenario("live-bound"), trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, "done", stateIs(StateDone))

	bound := sim.Window(procs)
	if got := int(peak.Load()); got == 0 || got > bound {
		t.Fatalf("peak live results = %d, want within (0, %d]", got, bound)
	}
	if m.Metrics().LiveResultBound != bound {
		t.Fatalf("metrics live-result bound = %d, want %d", m.Metrics().LiveResultBound, bound)
	}
}

// sinkFunc adapts a delivery callback to sim.Sink.
type sinkFunc func(i int)

func (f sinkFunc) Trial(i int, _ *engine.Result) error { f(i); return nil }
func (f sinkFunc) Flush() error                        { return nil }

// postRaw submits and returns the raw body (for asserting error JSON).
func postRaw(t *testing.T, ts *httptest.Server, client string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", client)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func jsonErrorContains(t *testing.T, body []byte, want string) bool {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not JSON: %s", body)
	}
	return strings.Contains(e.Error, want)
}

func waitMetrics(t *testing.T, m *Manager, what string, cond func(Metrics) bool) {
	t.Helper()
	waitFor(t, what, func() bool { return cond(m.Metrics()) })
}
