package adversary

import (
	"fmt"

	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/msg"
	"rcbcast/internal/rng"
)

// DataSpoofer injects forged copies of "m" during inform and propagation
// phases. The frames fail Alice's authentication (§1.1: her messages can
// be authenticated), so correct nodes discard them — but each injection
// still occupies the channel, colliding with genuine transmissions. This
// strategy exercises the partially-authenticated Byzantine model: spoofing
// Alice is detectable, yet it still costs bandwidth.
type DataSpoofer struct {
	// Rate is the per-slot injection probability (default 0.25).
	Rate float64
}

// Name implements Strategy.
func (s DataSpoofer) Name() string { return "data-spoofer" }

// PlanPhase implements Strategy.
func (s DataSpoofer) PlanPhase(ph core.Phase, _ *History, pool *energy.Pool, st *rng.Stream) *Plan {
	if ph.Kind == core.PhaseRequest {
		return nil
	}
	rate := s.Rate
	if rate <= 0 {
		rate = 0.25
	}
	budget := affordableJams(pool, int64(ph.Length))
	if budget <= 0 {
		return nil
	}
	p := NewPlan(ph.Length)
	var planned int64
	slot := 0
	for planned < budget {
		g := st.Geometric(rate)
		if g >= ph.Length-slot {
			break
		}
		slot += g
		p.Inject(slot, msg.SpoofData(-2000-int(planned), []byte("forged m")))
		planned++
		slot++
		if slot >= ph.Length {
			break
		}
	}
	if planned == 0 {
		p.Release()
		return nil
	}
	return p
}

// SweepJammer rotates a jamming window across each phase: it jams a
// contiguous Fraction of the phase, advancing the window's position each
// round. Models scanning-style interference hardware.
type SweepJammer struct {
	// Fraction of each phase jammed (default 0.5).
	Fraction float64
	offset   float64
}

// Name implements Strategy.
func (s *SweepJammer) Name() string { return fmt.Sprintf("sweep(%.2g)", s.fraction()) }

func (s *SweepJammer) fraction() float64 {
	if s.Fraction <= 0 || s.Fraction > 1 {
		return 0.5
	}
	return s.Fraction
}

// PlanPhase implements Strategy.
func (s *SweepJammer) PlanPhase(ph core.Phase, _ *History, pool *energy.Pool, _ *rng.Stream) *Plan {
	frac := s.fraction()
	want := int64(frac * float64(ph.Length))
	want = affordableJams(pool, want)
	if want <= 0 {
		return nil
	}
	p := NewPlan(ph.Length)
	start := int(s.offset * float64(ph.Length))
	for j := int64(0); j < want; j++ {
		p.Jam((start + int(j)) % ph.Length)
	}
	// Advance the window by a golden-ratio step so positions cycle
	// without ever aligning to phase boundaries.
	s.offset += 0.6180339887498949
	for s.offset >= 1 {
		s.offset--
	}
	return p
}

// GreedyAdaptive is a history-driven Carol: each round she reallocates her
// per-round allowance to the phase kind that, per the public history, is
// making the most progress against her — inform phases while few nodes
// are informed, propagation once a seed set exists, request phases once
// delivery looks complete (to stall termination). She demonstrates that
// the protocol's guarantees do not depend on the adversary following a
// fixed script.
type GreedyAdaptive struct {
	// PerRound is her jam allowance per round (default: the phase
	// length, i.e. she can fully block one phase per round).
	PerRound int64
	spentIn  map[int]int64
}

// Name implements Strategy.
func (s *GreedyAdaptive) Name() string { return "greedy-adaptive" }

// PlanPhase implements Strategy.
func (s *GreedyAdaptive) PlanPhase(ph core.Phase, hist *History, pool *energy.Pool, _ *rng.Stream) *Plan {
	if s.spentIn == nil {
		s.spentIn = make(map[int]int64)
	}
	allowance := s.PerRound
	if allowance <= 0 {
		allowance = int64(ph.Length)
	}
	remaining := allowance - s.spentIn[ph.Round]
	if remaining <= 0 {
		return nil
	}

	// Decide whether this phase is the round's best target.
	informed, active := 0, hist.N
	if last, ok := hist.Last(); ok {
		informed, active = last.InformedAfter, last.ActiveAfter
	}
	target := core.PhaseInform
	switch {
	case informed == 0:
		target = core.PhaseInform
	case informed < hist.N && informed > 0:
		target = core.PhasePropagate
	case active > 0:
		target = core.PhaseRequest
	}
	if ph.Kind != target {
		return nil
	}

	want := affordableJams(pool, minI64(remaining, int64(ph.Length)))
	if want <= 0 {
		return nil
	}
	s.spentIn[ph.Round] += want
	p := NewPlan(ph.Length)
	p.JamRange(0, int(want))
	return p
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Composite runs several strategies at once, unioning their jam sets and
// concatenating injections — e.g. a phase blocker plus a NACK spoofer.
// Budget advice is shared: each sub-strategy sees the same pool, and the
// engine's charging truncates the combined plan if they collectively
// overdraw.
type Composite struct {
	Parts []Strategy
}

// Name implements Strategy.
func (s Composite) Name() string {
	name := "composite("
	for i, p := range s.Parts {
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	return name + ")"
}

// PlanPhase implements Strategy.
func (s Composite) PlanPhase(ph core.Phase, hist *History, pool *energy.Pool, st *rng.Stream) *Plan {
	var merged *Plan
	// One derived stream value re-keyed per part: each sub-strategy
	// still sees the sequence st.Derive(i) would produce, without a
	// fresh heap stream per part per phase.
	var derived rng.Stream
	for i, part := range s.Parts {
		st.DeriveInto(&derived, uint64(i))
		sub := part.PlanPhase(ph, hist, pool, &derived)
		if sub == nil {
			continue
		}
		if merged == nil {
			merged = NewPlan(ph.Length)
		}
		for slot := 0; slot < ph.Length; slot++ {
			if sub.Jammed(slot) {
				merged.Jam(slot)
			}
		}
		for _, inj := range sub.Injections() {
			merged.Inject(inj.Slot, inj.Frame)
		}
		if sub.disrupt != nil {
			// Last targeting predicate wins; composites of multiple
			// n-uniform targeters should express the union themselves.
			merged.SetDisrupt(sub.disrupt)
		}
		sub.Release()
	}
	return merged
}

// Compile-time interface checks.
var (
	_ Strategy = DataSpoofer{}
	_ Strategy = (*SweepJammer)(nil)
	_ Strategy = (*GreedyAdaptive)(nil)
	_ Strategy = Composite{}
)
