package dist

import "rcbcast/internal/scenario"

// Plan cuts a sweep of `trials` trials into contiguous shards of `size`
// trials each (the last shard takes the remainder). The shards tile
// [0, trials) exactly, in order, so concatenating their outputs in plan
// order reproduces the whole sweep.
func Plan(trials, size int) []scenario.Shard {
	if trials <= 0 || size <= 0 {
		return nil
	}
	shards := make([]scenario.Shard, 0, (trials+size-1)/size)
	for lo := 0; lo < trials; lo += size {
		hi := lo + size
		if hi > trials {
			hi = trials
		}
		shards = append(shards, scenario.Shard{Lo: lo, Hi: hi})
	}
	return shards
}
