package core

import (
	"errors"
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	valid := PracticalParams(1000, 2)
	if err := valid.Validate(); err != nil {
		t.Fatalf("PracticalParams must validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Params)
		want   error
	}{
		{"small N", func(p *Params) { p.N = 1 }, ErrBadN},
		{"small K", func(p *Params) { p.K = 1 }, ErrBadK},
		{"zero epsilon", func(p *Params) { p.Epsilon = 0 }, ErrBadEpsilon},
		{"epsilon one", func(p *Params) { p.Epsilon = 1 }, ErrBadEpsilon},
		{"zero C", func(p *Params) { p.C = 0 }, ErrBadC},
		{"variant mismatch", func(p *Params) { p.Variant = VariantK2Exact; p.K = 3 }, ErrBadVariant},
		{"zero start", func(p *Params) { p.StartRound = 0 }, ErrBadRounds},
		{"max before start", func(p *Params) { p.StartRound = 5; p.MaxRound = 4 }, ErrBadRounds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := PracticalParams(1000, 2)
			tc.mutate(&p)
			if err := p.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestPaperParamsDefaults(t *testing.T) {
	p2 := PaperParams(1000, 2)
	if p2.Variant != VariantK2Exact {
		t.Fatal("k=2 paper params must use Figure 1")
	}
	p3 := PaperParams(1000, 3)
	if p3.Variant != VariantGeneralK {
		t.Fatal("k=3 paper params must use Figure 2")
	}
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p3.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPracticalParamsStartRoundPastClamp(t *testing.T) {
	p := PracticalParams(4096, 2)
	ph := p.informPhase(p.StartRound)
	if ph.NodeListenP >= 1 {
		t.Fatalf("start round %d still clamped: listen prob %v", p.StartRound, ph.NodeListenP)
	}
}

func TestPhaseLength(t *testing.T) {
	cases := []struct {
		k, i, want int
	}{
		{2, 2, 8},  // 2^{1.5*2} = 2^3
		{2, 4, 64}, // 2^6
		{3, 3, 16}, // 2^{(4/3)*3} = 2^4
		{4, 4, 32}, // 2^{(5/4)*4} = 2^5
		{2, 1, 3},  // ceil(2^1.5) = ceil(2.83)
	}
	for _, tc := range cases {
		p := PaperParams(1000, tc.k)
		if got := p.PhaseLength(tc.i); got != tc.want {
			t.Errorf("k=%d i=%d: PhaseLength = %d, want %d", tc.k, tc.i, got, tc.want)
		}
	}
}

func TestRoundComposition(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		p := PaperParams(1000, k)
		phases := p.Round(6)
		if len(phases) != k+1 {
			t.Fatalf("k=%d: round has %d phases, want %d", k, len(phases), k+1)
		}
		if phases[0].Kind != PhaseInform {
			t.Fatalf("k=%d: first phase = %v", k, phases[0].Kind)
		}
		for h := 1; h <= k-1; h++ {
			ph := phases[h]
			if ph.Kind != PhasePropagate || ph.Step != h {
				t.Fatalf("k=%d: phase %d = %v step %d", k, h, ph.Kind, ph.Step)
			}
		}
		last := phases[len(phases)-1]
		if last.Kind != PhaseRequest {
			t.Fatalf("k=%d: last phase = %v", k, last.Kind)
		}
		for _, ph := range phases {
			if ph.Round != 6 {
				t.Fatalf("phase carries wrong round %d", ph.Round)
			}
			if ph.Length != p.PhaseLength(6) {
				t.Fatalf("phase length %d, want %d", ph.Length, p.PhaseLength(6))
			}
		}
	}
}

func TestProbabilitiesClamped(t *testing.T) {
	p := PaperParams(100, 2) // small n, round 1: raw formulas exceed 1
	for i := 1; i <= p.LastRound(); i++ {
		for _, ph := range p.Round(i) {
			for name, v := range map[string]float64{
				"AliceSendP":   ph.AliceSendP,
				"AliceListenP": ph.AliceListenP,
				"NodeListenP":  ph.NodeListenP,
				"NodeSendP":    ph.NodeSendP,
				"DecoyP":       ph.DecoyP,
			} {
				if v < 0 || v > 1 {
					t.Fatalf("round %d %v: %s = %v out of [0,1]", i, ph.Kind, name, v)
				}
			}
		}
	}
}

func TestVariantDifferAtK2(t *testing.T) {
	fig1 := PaperParams(10000, 2)
	fig2 := fig1
	fig2.Variant = VariantGeneralK
	i := 10
	p1 := fig1.informPhase(i)
	p2 := fig2.informPhase(i)
	// Figure 1: 2 ln n / 2^i; Figure 2: 2c ln^2 n / 2^i — differ by ln n.
	ratio := p2.AliceSendP / p1.AliceSendP
	if math.Abs(ratio-fig1.LnN()) > 1e-9 {
		t.Fatalf("Fig2/Fig1 Alice send ratio = %v, want ln n = %v", ratio, fig1.LnN())
	}
	// Node inform listening is identical across variants.
	if p1.NodeListenP != p2.NodeListenP {
		t.Fatal("inform listen probability must not depend on variant")
	}
}

func TestInformProbFormulas(t *testing.T) {
	p := PaperParams(1<<16, 2) // n = 65536, ln n ≈ 11.09
	i := 12
	ph := p.informPhase(i)
	wantAlice := 2 * math.Log(65536) / 4096
	if math.Abs(ph.AliceSendP-wantAlice) > 1e-12 {
		t.Fatalf("Alice send p = %v, want %v", ph.AliceSendP, wantAlice)
	}
	wantListen := 2 / (p.Epsilon * 4096)
	if math.Abs(ph.NodeListenP-wantListen) > 1e-12 {
		t.Fatalf("node listen p = %v, want %v", ph.NodeListenP, wantListen)
	}
}

func TestRequestPhaseFormulas(t *testing.T) {
	p := PaperParams(1<<16, 2)
	i := 12
	ph := p.requestPhase(i)
	if ph.NoisyThreshold != p.NoisyThreshold() {
		t.Fatal("request phase must carry the noisy threshold")
	}
	wantNack := 1 / float64(p.N)
	if math.Abs(ph.NodeSendP-wantNack) > 1e-15 {
		t.Fatalf("nack p = %v, want 1/n = %v", ph.NodeSendP, wantNack)
	}
	// Alice's expected listens per request phase ≈ c ln n / (1-e^{-4ε'}).
	expListens := ph.AliceListenP * float64(ph.Length)
	want := p.C * p.LnN() / (1 - math.Exp(-4*p.Epsilon))
	if math.Abs(expListens-want)/want > 0.01 {
		t.Fatalf("Alice expected request listens = %v, want %v", expListens, want)
	}
}

func TestProbabilitiesDecreaseWithRound(t *testing.T) {
	p := PracticalParams(1<<14, 2)
	prev := p.informPhase(p.StartRound)
	for i := p.StartRound + 1; i <= p.LastRound(); i++ {
		cur := p.informPhase(i)
		if cur.AliceSendP > prev.AliceSendP || cur.NodeListenP > prev.NodeListenP {
			t.Fatalf("round %d probabilities must not increase", i)
		}
		prev = cur
	}
}

func TestSendAndTerminationSteps(t *testing.T) {
	cases := []struct {
		k            int
		mark         InformMark
		wantSend     int
		wantTermStep int
	}{
		{2, MarkInformPhase, 1, 1}, // informed by Alice → sends step 1, dies end of step 1
		{2, 1, 0, 1},               // informed during step 1 (k=2's only step) → never sends
		{3, MarkInformPhase, 1, 1},
		{3, 1, 2, 2}, // S_{i,2}: sends in step 2
		{3, 2, 0, 2}, // informed in final step → terminates end of phase
		{4, 2, 3, 3},
		{4, 3, 0, 3},
	}
	for _, tc := range cases {
		p := PaperParams(1000, tc.k)
		if got := p.SendStep(tc.mark); got != tc.wantSend {
			t.Errorf("k=%d mark=%d: SendStep = %d, want %d", tc.k, tc.mark, got, tc.wantSend)
		}
		if got := p.TerminationStep(tc.mark); got != tc.wantTermStep {
			t.Errorf("k=%d mark=%d: TerminationStep = %d, want %d", tc.k, tc.mark, got, tc.wantTermStep)
		}
	}
}

func TestBlockedFractionAndCost(t *testing.T) {
	p := PaperParams(1000, 2)
	if got := p.BlockedFraction(PhaseInform); got != 0.5 {
		t.Fatalf("inform blocked fraction = %v", got)
	}
	if got := p.BlockedFraction(PhasePropagate); got != 0.5 {
		t.Fatalf("propagate blocked fraction = %v", got)
	}
	want := 1 - math.Exp(-4*p.Epsilon)
	if got := p.BlockedFraction(PhaseRequest); math.Abs(got-want) > 1e-12 {
		t.Fatalf("request blocked fraction = %v, want %v", got, want)
	}
	ph := p.Round(8)[0]
	cost := p.BlockCost(ph)
	if cost != int64(math.Ceil(0.5*float64(ph.Length))) {
		t.Fatalf("BlockCost = %d for length %d", cost, ph.Length)
	}
}

func TestScheduleIterator(t *testing.T) {
	p := PaperParams(64, 2)
	p.StartRound = 2
	p.MaxRound = 4
	s := NewSchedule(&p)
	var got []Phase
	for {
		ph, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, ph)
	}
	wantCount := (4 - 2 + 1) * (p.K + 1)
	if len(got) != wantCount {
		t.Fatalf("iterator yielded %d phases, want %d", len(got), wantCount)
	}
	if got[0].Round != 2 || got[len(got)-1].Round != 4 {
		t.Fatalf("rounds span %d..%d, want 2..4", got[0].Round, got[len(got)-1].Round)
	}
	if got[len(got)-1].Kind != PhaseRequest {
		t.Fatal("last phase must be a request phase")
	}
}

func TestExpectedCostScaling(t *testing.T) {
	// A node's expected per-round cost grows like 2^{i/k} once
	// probabilities are below the clamp; the per-round growth ratio must
	// approach 2^{1/k}. This holds in the paper's regime i <= lg n (past
	// lg n the NACK-send term 2^{(1+1/k)i}/n stops being dominated).
	for _, k := range []int{2, 3} {
		p := PracticalParams(1<<16, k)
		i := 12 // mid-range: below lg n = 16, above the clamp region
		ratio := p.ExpectedNodeCostPerRound(i+1) / p.ExpectedNodeCostPerRound(i)
		want := math.Pow(2, 1/float64(k))
		if math.Abs(ratio-want)/want > 0.2 {
			t.Errorf("k=%d: node cost ratio %v, want ~%v", k, ratio, want)
		}
	}
}

func TestLoadBalanceWithinPolylog(t *testing.T) {
	// Alice's and a node's expected per-round costs must agree up to
	// polylog(n) factors (the protocol's load-balancing goal).
	p := PracticalParams(1<<16, 2)
	i := p.LastRound()
	alice := p.ExpectedAliceCostPerRound(i)
	node := p.ExpectedNodeCostPerRound(i)
	logPoly := math.Pow(math.Log(float64(p.N)), 3)
	if alice > node*logPoly || node > alice*logPoly {
		t.Fatalf("costs not polylog-balanced: alice=%v node=%v", alice, node)
	}
}

func TestDecoyFields(t *testing.T) {
	p := PracticalParams(4096, 2)
	p.Decoy = true
	ph := p.informPhase(10)
	wantDecoy := 3 / (4 * p.Epsilon * float64(p.N))
	if math.Abs(ph.DecoyP-wantDecoy) > 1e-12 {
		t.Fatalf("decoy p = %v, want %v", ph.DecoyP, wantDecoy)
	}
	// Listening must be boosted relative to non-decoy mode.
	plain := PracticalParams(4096, 2)
	if ph.NodeListenP <= plain.informPhase(10).NodeListenP {
		t.Fatal("decoy mode must boost listening probability")
	}
	// No decoys in the request phase.
	if p.requestPhase(10).DecoyP != 0 {
		t.Fatal("request phase must not carry decoy traffic")
	}
}

func TestDecoyOverrides(t *testing.T) {
	p := PracticalParams(4096, 2)
	p.Decoy = true
	p.DecoyProb = 0.25
	p.ListenBoost = 2
	ph := p.informPhase(9)
	if ph.DecoyP != 0.25 {
		t.Fatalf("DecoyProb override ignored: %v", ph.DecoyP)
	}
	plain := PracticalParams(4096, 2)
	if math.Abs(ph.NodeListenP-2*plain.informPhase(9).NodeListenP) > 1e-12 {
		t.Fatal("ListenBoost override ignored")
	}
}

func TestApproximationOverrides(t *testing.T) {
	exact := PracticalParams(4096, 2)
	approx := exact
	approx.LnOverride = 2 * exact.LnN()
	approx.NOverride = 2 * float64(exact.N)
	if approx.LnN() != 2*exact.LnN() {
		t.Fatal("LnOverride not honored")
	}
	if approx.EffectiveN() != 2*float64(exact.N) {
		t.Fatal("NOverride not honored")
	}
	i := 10
	phE, phA := exact.informPhase(i), approx.informPhase(i)
	if phA.AliceSendP <= phE.AliceSendP {
		t.Fatal("larger ln estimate must raise Alice's send probability")
	}
	reqE, reqA := exact.requestPhase(i), approx.requestPhase(i)
	if reqA.NodeSendP >= reqE.NodeSendP {
		t.Fatal("larger n estimate must lower nack probability")
	}
}

func TestNoisyThreshold(t *testing.T) {
	p := PaperParams(1<<16, 2)
	want := int(math.Ceil(5 * 1 * math.Log(1<<16)))
	if got := p.NoisyThreshold(); got != want {
		t.Fatalf("NoisyThreshold = %d, want %d", got, want)
	}
}

func TestTotalSlots(t *testing.T) {
	p := PaperParams(64, 2)
	p.StartRound = 1
	want := int64(0)
	for i := 1; i <= 3; i++ {
		want += int64(p.RoundLength(i))
	}
	if got := p.TotalSlots(3); got != want {
		t.Fatalf("TotalSlots(3) = %d, want %d", got, want)
	}
}

func TestLatencyIsNPowerOnePlusInverseK(t *testing.T) {
	// Total slots through round lg n must be O(n^{1+1/k}) — Corollary 1's
	// optimal latency. Check the ratio stays bounded across n.
	for _, k := range []int{2, 3} {
		prev := 0.0
		for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
			p := PaperParams(n, k)
			last := int(math.Ceil(math.Log2(float64(n))))
			slots := float64(p.TotalSlots(last))
			bound := math.Pow(float64(n), 1+1/float64(k))
			ratio := slots / bound
			if prev != 0 && (ratio > prev*2 || ratio < prev/2) {
				t.Errorf("k=%d n=%d: latency/bound ratio %v drifted from %v", k, n, ratio, prev)
			}
			prev = ratio
		}
	}
}

func TestStringers(t *testing.T) {
	if PhaseInform.String() != "inform" || PhaseRequest.String() != "request" {
		t.Fatal("phase kind names wrong")
	}
	if PhaseKind(9).String() != "PhaseKind(9)" {
		t.Fatal("unknown phase kind formatting")
	}
	if VariantGeneralK.String() != "general-k" || VariantK2Exact.String() != "k2-exact" {
		t.Fatal("variant names wrong")
	}
	if Variant(7).String() != "Variant(7)" {
		t.Fatal("unknown variant formatting")
	}
	p := PaperParams(64, 3)
	phases := p.Round(3)
	if phases[1].String() == "" || phases[0].String() == "" {
		t.Fatal("phase String must be nonempty")
	}
}

func TestQuietTestAbsolute(t *testing.T) {
	p := PaperParams(1<<16, 2)
	thr := p.NoisyThreshold()
	if !p.ShouldTerminateQuiet(1000, thr) {
		t.Fatal("at-threshold noise must terminate (paper: 'at most 5c ln n')")
	}
	if p.ShouldTerminateQuiet(1000, thr+1) {
		t.Fatal("above-threshold noise must not terminate")
	}
	// The absolute test ignores listen counts entirely.
	if !p.ShouldTerminateQuiet(0, 0) {
		t.Fatal("absolute test with zero noise must terminate")
	}
}

func TestQuietTestFraction(t *testing.T) {
	p := PracticalParams(1<<16, 2)
	gate := p.quietMinListens()
	// Below the listen gate: never terminate.
	if p.ShouldTerminateQuiet(gate-1, 0) {
		t.Fatal("below the listen gate the fraction test must not fire")
	}
	// Quiet channel: terminate.
	if !p.ShouldTerminateQuiet(1000, 0) {
		t.Fatal("a silent request phase must terminate")
	}
	// Exactly at the fraction: terminate (<=).
	noisyAt := int(p.quietFrac() * 1000)
	if !p.ShouldTerminateQuiet(1000, noisyAt) {
		t.Fatal("at-fraction noise must terminate")
	}
	// A mostly-noisy channel (many uninformed nodes nacking): stay.
	if p.ShouldTerminateQuiet(1000, 500) {
		t.Fatal("half-noisy channel must keep the device active")
	}
}

func TestQuietFracDefaults(t *testing.T) {
	p := PracticalParams(4096, 2)
	if got, want := p.quietFrac(), 2*p.Epsilon; got != want {
		t.Fatalf("default QuietFrac = %v, want 2ε' = %v", got, want)
	}
	p.QuietFrac = 0.07
	if p.quietFrac() != 0.07 {
		t.Fatal("QuietFrac override ignored")
	}
	p.QuietMinListens = 99
	if p.quietMinListens() != 99 {
		t.Fatal("QuietMinListens override ignored")
	}
}

func TestQuietModeString(t *testing.T) {
	if QuietAbsolute.String() != "absolute" || QuietFraction.String() != "fraction" {
		t.Fatal("quiet mode names wrong")
	}
	if QuietMode(9).String() != "QuietMode(9)" {
		t.Fatal("unknown quiet mode formatting")
	}
}

func TestLnNFloor(t *testing.T) {
	p := PaperParams(2, 2)
	if p.LnN() < 1 {
		t.Fatalf("LnN must be at least 1, got %v", p.LnN())
	}
}

func TestCanTerminate(t *testing.T) {
	// Absolute mode: the §2.3 guard defaults to ceil(3·lg ln n).
	paper := PaperParams(512, 2)
	want := int(math.Ceil(3 * math.Log2(math.Log(512))))
	for i := 1; i < want; i++ {
		if paper.CanTerminate(i) {
			t.Fatalf("absolute mode must not terminate in round %d < %d", i, want)
		}
	}
	if !paper.CanTerminate(want) {
		t.Fatalf("absolute mode must allow termination from round %d", want)
	}
	// Fraction mode: gated by listens, not rounds.
	practical := PracticalParams(512, 2)
	if !practical.CanTerminate(1) {
		t.Fatal("fraction mode has no round guard by default")
	}
	// Explicit override wins in both modes.
	practical.MinTerminationRound = 9
	if practical.CanTerminate(8) || !practical.CanTerminate(9) {
		t.Fatal("MinTerminationRound override ignored")
	}
}
