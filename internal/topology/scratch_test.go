package topology

import (
	"testing"
)

// TestBuildIntoByteIdentical: graphs built into a reused scratch —
// including across different sizes and kinds — match fresh builds
// exactly.
func TestBuildIntoByteIdentical(t *testing.T) {
	specs := []struct {
		spec Spec
		n    int
		seed uint64
	}{
		{Spec{Kind: "gilbert", Radius: 0.25}, 128, 1},
		{Spec{Kind: "gilbert", Radius: 0.4}, 64, 2},  // shrink
		{Spec{Kind: "gilbert", Radius: 0.1}, 200, 3}, // regrow
		{Spec{Kind: "grid", Reach: 2}, 100, 4},
		{Spec{Kind: "gilbert", Radius: 0.3}, 128, 5},
	}
	sc := NewScratch()
	for round := 0; round < 2; round++ {
		for _, tc := range specs {
			fresh, err := tc.spec.Build(tc.n, tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := tc.spec.BuildInto(tc.n, tc.seed, sc)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < tc.n; v++ {
				if fresh.AliceHears(v) != reused.AliceHears(v) {
					t.Fatalf("%s n=%d seed=%d: AliceHears(%d) diverged", tc.spec, tc.n, tc.seed, v)
				}
				if fresh.Degree(v) != reused.Degree(v) {
					t.Fatalf("%s n=%d seed=%d: Degree(%d) diverged", tc.spec, tc.n, tc.seed, v)
				}
				for u := 0; u < tc.n; u++ {
					if fresh.Adjacent(u, v) != reused.Adjacent(u, v) {
						t.Fatalf("%s n=%d seed=%d: Adjacent(%d,%d) diverged", tc.spec, tc.n, tc.seed, u, v)
					}
				}
			}
		}
	}
}

// TestCSRMatchesTopology: the flattened adjacency view answers exactly
// as the interface it was built from, for every kind (grid and gilbert
// exercise the fast fills, the explicit clique the generic probe).
func TestCSRMatchesTopology(t *testing.T) {
	sc := NewScratch()
	for _, tc := range []struct {
		name string
		spec Spec
		n    int
	}{
		{"grid", Spec{Kind: "grid", Reach: 2}, 90},
		{"gilbert", Spec{Kind: "gilbert", Radius: 0.3}, 128},
		{"clique", Spec{}, 40},
	} {
		topo, err := tc.spec.Build(tc.n, 7)
		if err != nil {
			t.Fatal(err)
		}
		csr := BuildCSR(topo, sc)
		for v := 0; v < tc.n; v++ {
			if csr.AliceHears(v) != topo.AliceHears(v) {
				t.Fatalf("%s: AliceHears(%d) diverged", tc.name, v)
			}
			deg := int(csr.Off[v+1] - csr.Off[v])
			if deg != topo.Degree(v) {
				t.Fatalf("%s: row %d has %d neighbors, Degree says %d", tc.name, v, deg, topo.Degree(v))
			}
			for u := 0; u < tc.n; u++ {
				if csr.Adjacent(u, v) != topo.Adjacent(u, v) {
					t.Fatalf("%s: Adjacent(%d,%d) diverged", tc.name, u, v)
				}
			}
		}
		// Rows must be ascending for the binary search.
		for i := int32(1); i < int32(len(csr.Nbr)); i++ {
			for v := 0; v < tc.n; v++ {
				if csr.Off[v] < i && i < csr.Off[v+1] && csr.Nbr[i-1] >= csr.Nbr[i] {
					t.Fatalf("%s: row %d not ascending at %d", tc.name, v, i)
				}
			}
		}
	}
}

// TestBuildIntoSteadyStateAllocs: rebuilding the same-shape Gilbert
// graph into a warmed scratch performs only the single boxing
// allocation of the *Gilbert value itself.
func TestBuildIntoSteadyStateAllocs(t *testing.T) {
	spec := Spec{Kind: "gilbert", Radius: 0.25}
	sc := NewScratch()
	if _, err := spec.BuildInto(256, 0, sc); err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	if n := testing.AllocsPerRun(50, func() {
		seed++
		topo, err := spec.BuildInto(256, seed, sc)
		if err != nil {
			t.Fatal(err)
		}
		BuildCSR(topo, sc)
	}); n > 2 {
		t.Fatalf("steady-state BuildInto+CSR allocated %.1f objects/op, want ≤ 2", n)
	}
}

// TestCSRSymmetric pins the symmetry assumption CSR.Row documents:
// for every current topology kind, u hears v exactly when v hears u
// (and Alice audibility is mutual by construction). The batched
// engine's reception index reads Row(src) as "the listeners that hear
// src", which is only the neighborhood row under this symmetry; a kind
// that breaks it must not ship without a reverse-row view.
func TestCSRSymmetric(t *testing.T) {
	sc := NewScratch()
	for _, tc := range []struct {
		name string
		spec Spec
		n    int
	}{
		{"clique", Spec{}, 48},
		{"grid", Spec{Kind: "grid", Reach: 2}, 90},
		{"grid-reach1", Spec{Kind: "grid", Reach: 1}, 64},
		{"gilbert", Spec{Kind: "gilbert", Radius: 0.3}, 128},
		{"gilbert-sparse", Spec{Kind: "gilbert", Radius: 0.12}, 160},
	} {
		topo, err := tc.spec.Build(tc.n, 11)
		if err != nil {
			t.Fatal(err)
		}
		csr := BuildCSR(topo, sc)
		for v := 0; v < tc.n; v++ {
			for u := 0; u < tc.n; u++ {
				if csr.Adjacent(u, v) != csr.Adjacent(v, u) {
					t.Fatalf("%s: edge (%d,%d) not symmetric", tc.name, u, v)
				}
			}
		}
	}
}
