// Package chaos is a deterministic fault-injection harness for the
// distributed sweep stack (internal/dist, DESIGN.md §15).
//
// Real infrastructure faults — a worker SIGKILLed mid-stream, a flaky
// network cutting a result feed, a draining pod, a coordinator crash —
// arrive at wall-clock times, which makes tests either racy or slow.
// This package replaces wall-clock triggers with *progress* triggers:
// a Script fires each fault when the sweep's merged-trial counter
// crosses a threshold, so the same scenario and the same script inject
// the same fault at the same logical point every run, whatever the
// host's speed.
//
// Two pieces compose:
//
//   - Proxy fronts one worker service and injects transport faults on
//     command: cut a result stream after N lines (the flaky-network
//     case), refuse readiness (a draining pod), or go fully down (the
//     SIGKILL case — every request, probes included, fails).
//   - Drive polls a merged-trial counter and runs a Script of Events
//     in threshold order — kill this worker at 300 merged trials, join
//     another at 500, crash the coordinator at 700.
//
// The in-process dist tests use both against httptest workers; the
// child-process e2e and the CI smoke use Drive against a live
// coordinator's /metrics endpoint with real SIGKILLs as the events.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Proxy is a deterministic flaky reverse proxy for one worker backend.
// The zero fault set is a transparent streaming proxy; faults are armed
// by the test script and examined by the worker's client exactly as a
// real network fault would be.
type Proxy struct {
	backend string
	client  *http.Client

	mu       sync.Mutex
	down     bool
	notReady bool
	results  int         // result-stream attaches seen so far
	cuts     map[int]int // attach ordinal → lines to pass before cutting
}

// NewProxy fronts the worker at backend (base URL, no trailing slash).
func NewProxy(backend string) *Proxy {
	return &Proxy{
		backend: strings.TrimRight(backend, "/"),
		client:  &http.Client{},
		cuts:    make(map[int]int),
	}
}

// CutResults arms a mid-stream cut: the attach-th result stream (0 is
// the first attach the proxy ever sees) is dropped after lines complete
// lines — the flaky-network signature the coordinator must recover
// from by reattaching and skipping the replayed prefix.
func (p *Proxy) CutResults(attach, lines int) {
	p.mu.Lock()
	p.cuts[attach] = lines
	p.mu.Unlock()
}

// SetDown simulates worker death: while down, every request — submits,
// streams, and probes alike — fails, and any in-flight proxied stream
// is severed by its next write. Turning the proxy back up models the
// worker process being replaced.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// SetNotReady simulates a draining worker: GET /readyz answers 503
// while everything else keeps working, so a prober stops routing new
// shards without abandoning in-flight ones.
func (p *Proxy) SetNotReady(notReady bool) {
	p.mu.Lock()
	p.notReady = notReady
	p.mu.Unlock()
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	down, notReady := p.down, p.notReady
	cut, cutArmed := 0, false
	if strings.HasSuffix(r.URL.Path, "/results") {
		if n, ok := p.cuts[p.results]; ok {
			cut, cutArmed = n, true
		}
		p.results++
	}
	p.mu.Unlock()

	if down {
		// A dead worker's TCP peer vanishes; the closest HTTP-level
		// stand-in is an immediate 502 with no backend contact.
		http.Error(w, `{"error":"chaos: worker is down"}`, http.StatusBadGateway)
		return
	}
	if notReady && r.Method == http.MethodGet && r.URL.Path == "/readyz" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"status":"draining","chaos":"injected"}`)
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.backend+r.URL.Path, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, v := range resp.Header {
		w.Header()[k] = v
	}
	w.WriteHeader(resp.StatusCode)
	if cutArmed {
		p.copyLines(w, resp.Body, cut)
		return // connection closes mid-stream: the armed cut fires
	}
	p.copyStream(w, resp.Body)
}

// copyLines relays at most lines complete NDJSON lines, then returns —
// severing the stream exactly at a line boundary so the cut is
// deterministic in lines delivered, not bytes.
func (p *Proxy) copyLines(w http.ResponseWriter, body io.Reader, lines int) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 1)
	for lines > 0 {
		if _, err := body.Read(buf); err != nil {
			return
		}
		if _, err := w.Write(buf); err != nil {
			return
		}
		if buf[0] == '\n' {
			lines--
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// copyStream is the transparent path: relay and flush until EOF, or
// sever immediately if the proxy goes down mid-stream.
func (p *Proxy) copyStream(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			p.mu.Lock()
			down := p.down
			p.mu.Unlock()
			if down {
				return // sever the in-flight stream: the worker "died"
			}
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// Event is one scripted fault: when the observed merged-trial count
// reaches AtMerged, Do runs. Events fire in slice order, so thresholds
// should be non-decreasing.
type Event struct {
	Name     string
	AtMerged int64
	Do       func() error
}

// Drive executes a script against a live sweep: poll merged() at the
// given interval and fire each event once its threshold is crossed.
// Progress thresholds — not wall-clock delays — are what make a chaos
// run deterministic in *what state the sweep was in* when each fault
// hit. Drive returns the first event error, or ctx's error if the
// sweep ends (or hangs) before the script completes.
func Drive(ctx context.Context, merged func() int64, poll time.Duration, events ...Event) error {
	if poll <= 0 {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for _, ev := range events {
		for merged() < ev.AtMerged {
			select {
			case <-t.C:
			case <-ctx.Done():
				return fmt.Errorf("chaos: sweep ended before event %q (merged %d < %d): %w",
					ev.Name, merged(), ev.AtMerged, ctx.Err())
			}
		}
		if err := ev.Do(); err != nil {
			return fmt.Errorf("chaos: event %q: %w", ev.Name, err)
		}
	}
	return nil
}

// HTTPMerged adapts a coordinator /metrics endpoint into a Drive
// counter: it fetches metricsURL and reads merged_trials, returning 0
// on any error (the coordinator may not be listening yet — the script
// just keeps polling).
func HTTPMerged(client *http.Client, metricsURL string) func() int64 {
	if client == nil {
		client = http.DefaultClient
	}
	return func() int64 {
		resp, err := client.Get(metricsURL)
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		var m struct {
			MergedTrials int64 `json:"merged_trials"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m) != nil {
			return 0
		}
		return m.MergedTrials
	}
}
