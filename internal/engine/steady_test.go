package engine

import (
	"fmt"
	"runtime"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/topology"
)

// steadyTrials returns a closure running the steady-state workload —
// the BENCH_ENGINE.json configuration (n=256, k=2, full-jam, 4096
// pool) — with everything a long sweep would hoist out of its trial
// loop (params, pool, scratch) hoisted, so the per-trial allocation
// count is the engine's own.
func steadyTrials(spec topology.Spec, fail func(error)) func() {
	params := core.PracticalParams(256, 2)
	if !spec.IsClique() {
		params.MaxRound = params.StartRound + 2
	}
	pool := energy.NewPool(1 << 12)
	scratch := NewScratch()
	seed := uint64(0)
	return func() {
		pool.Reset(1 << 12)
		res, err := Run(Options{
			Params:   params,
			Seed:     seed,
			Topology: spec,
			Strategy: adversary.FullJam{},
			Pool:     pool,
			Scratch:  scratch,
		})
		seed++
		if err != nil {
			fail(err)
		}
		if res.N != 256 {
			fail(errBadResult)
		}
	}
}

var errBadResult = fmt.Errorf("engine: bad steady-state result")

var steadyKinds = []struct {
	name string
	spec topology.Spec
}{
	{"clique", topology.Spec{}},
	{"grid", topology.Spec{Kind: "grid", Reach: 2}},
	{"gilbert", topology.Spec{Kind: "gilbert", Radius: 0.25}},
}

// TestSteadyStateAllocs pins the allocation ceiling of a warmed-up
// scratch run: the tentpole guarantee that the engine's steady state
// allocates nothing beyond the Result it hands out (plus the harness's
// own Options/pool). A regression in any layer — rng streams, slot
// schedules, plans, topology buffers, the schedule iterator — fails
// this gate in CI.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts; CI gates this test in a separate non-race step")
	}
	// Ceiling anatomy (clique): run struct + escaped Options + Result +
	// NodeCosts + cost-sort copy ≈ 5; sparse kinds add the boxed
	// topology value (and gilbert the *Gilbert). The margin on top
	// absorbs occasional committed-send high-water growth on unseen
	// seeds and plan-pool misses after an ill-timed GC — not a per-phase
	// allocation, which would blow past any of these numbers by orders
	// of magnitude.
	// The bytes ceilings gate total heap bytes per warmed trial (measured
	// 5.4-5.8 KiB/op), sized with the same kind of margin. They guard
	// against size regressions the object count cannot see — fewer but
	// much larger allocations. Note the headline BenchmarkEngineRun
	// bytes/op is NOT gated here and not comparable: it varies the seed
	// per iteration with a cold scratch, so it amortizes one-time buffer
	// growth (~540 KiB for gilbert) over the iteration count and moves
	// whenever -benchtime or the scratch's buffer set changes (see the
	// 2026-08-08 BENCH_ENGINE.json methodology note).
	for _, tc := range []struct {
		name         string
		spec         topology.Spec
		ceiling      float64
		bytesCeiling float64
	}{
		{"clique", topology.Spec{}, 16, 32 << 10},
		{"grid", topology.Spec{Kind: "grid", Reach: 2}, 24, 48 << 10},
		{"gilbert", topology.Spec{Kind: "gilbert", Radius: 0.25}, 24, 48 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			trial := steadyTrials(tc.spec, func(err error) { t.Fatal(err) })
			for i := 0; i < 8; i++ { // warm the scratch's high-water marks
				trial()
			}
			if got := testing.AllocsPerRun(10, trial); got > tc.ceiling {
				t.Fatalf("steady-state %s run allocates %.1f objects/op, ceiling %v",
					tc.name, got, tc.ceiling)
			}
			const runs = 10
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < runs; i++ {
				trial()
			}
			runtime.ReadMemStats(&after)
			if got := float64(after.TotalAlloc-before.TotalAlloc) / runs; got > tc.bytesCeiling {
				t.Fatalf("steady-state %s run allocates %.0f bytes/op, ceiling %v",
					tc.name, got, tc.bytesCeiling)
			}
		})
	}
}

// BenchmarkSteadyState measures the post-warmup regime the allocation
// test gates: one scratch per kind, warmed before the timer, so ns/op
// and allocs/op reflect a long sweep's steady state rather than
// first-trial buffer growth. BENCH_ENGINE.json records one run next to
// the cold-start BenchmarkEngineRun numbers.
func BenchmarkSteadyState(b *testing.B) {
	for _, tc := range steadyKinds {
		b.Run(tc.name, func(b *testing.B) {
			trial := steadyTrials(tc.spec, func(err error) { b.Fatal(err) })
			for i := 0; i < 8; i++ {
				trial()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial()
			}
		})
	}
}
