// Package sampling provides distribution samplers and the event-driven
// slot scheduler used by the simulation engines.
//
// The central abstraction is the SlotSchedule: a device that, in each of s
// slots, performs an action independently with probability p is simulated
// not by s coin flips but by geometric skips between action slots. The
// expected work is s*p draws instead of s, which is what makes whole-network
// sweeps (n up to tens of thousands, phases of millions of slots) feasible
// on a laptop. Both engines consume the same schedule stream, which keeps
// them bit-for-bit equivalent.
package sampling

import (
	"math"

	"rcbcast/internal/rng"
)

// SlotSchedule enumerates, in increasing order, the slots within a phase of
// a given length in which a Bernoulli(p)-per-slot actor acts. It is an
// iterator; call Next until it returns false. A schedule must be
// initialized with NewSlotSchedule or Reset before use (the zero value
// has no stream to draw from).
type SlotSchedule struct {
	st        *rng.Stream
	p         float64
	lnQ       float64 // Log1p(-p), hoisted out of the draw loop (0 < p < 1)
	length    int
	next      int
	done      bool
	everySlot bool // p >= 1: act in every slot, no draws
}

// NewSlotSchedule returns a schedule over [0, length) with per-slot action
// probability p drawn from st. The schedule consumes st lazily; interleaving
// draws from st elsewhere corrupts the schedule, so callers should dedicate
// a derived stream to each schedule.
func NewSlotSchedule(st *rng.Stream, p float64, length int) *SlotSchedule {
	s := &SlotSchedule{}
	s.Reset(st, p, length)
	return s
}

// Reset re-initializes the schedule in place over [0, length) with
// probability p drawn from st, exactly as NewSlotSchedule would. A
// SlotSchedule value on a walker's stack (or in a run struct) is thereby
// reusable across phases without heap allocation; ln(1-p) is computed
// once here rather than on every skip draw, which engine profiles showed
// to be ~11% of a whole protocol run.
func (s *SlotSchedule) Reset(st *rng.Stream, p float64, length int) {
	s.st, s.p, s.length = st, p, length
	s.lnQ = 0
	s.next, s.done = 0, false
	s.everySlot = p >= 1
	switch {
	case p <= 0 || length <= 0:
		s.done = true
	case s.everySlot:
		// next stays 0: every slot acts.
	default:
		s.lnQ = math.Log1p(-p)
		g := st.GeometricLnQ(s.lnQ)
		if g >= length { // also covers the MaxInt "never" sentinel
			s.done = true
		} else {
			s.next = g
		}
	}
}

// Next returns the next action slot, or (0, false) when the phase is
// exhausted. The geometric skip to the following slot is drawn inline —
// one call into the rng per action rather than a chain through a
// separate advance step.
func (s *SlotSchedule) Next() (slot int, ok bool) {
	if s.done {
		return 0, false
	}
	slot = s.next
	from := slot + 1
	if from >= s.length {
		// Exhausted at the phase boundary: no draw, exactly as the
		// historical iterator — the stream state left behind stays
		// identical across versions.
		s.done = true
		return slot, true
	}
	if s.everySlot {
		s.next = from
		return slot, true
	}
	g := s.st.GeometricLnQ(s.lnQ)
	if g >= s.length-from { // also covers the MaxInt "never" sentinel
		s.done = true
	} else {
		s.next = from + g
	}
	return slot, true
}

// Peek reports the next action slot without consuming it.
func (s *SlotSchedule) Peek() (slot int, ok bool) {
	if s.done {
		return 0, false
	}
	return s.next, true
}

// Collect drains the schedule into a slice. Intended for tests and small
// phases; large phases should iterate.
func (s *SlotSchedule) Collect() []int {
	var out []int
	for {
		slot, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, slot)
	}
}

// Binomial samples the number of successes in n Bernoulli(p) trials.
//
// For small expected counts it counts geometric skips (O(np) expected time);
// for large np it uses a normal approximation with continuity correction,
// clamped to [0, n]. The simulator uses Binomial only for aggregate
// accounting where per-slot identity does not matter (e.g. how many
// Byzantine decoys landed in a phase), so the approximation in the large-np
// regime is acceptable and documented.
func Binomial(st *rng.Stream, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 64 || float64(n)*(1-p) < 64 {
		// Exact: count successes via geometric gaps between them.
		count := 0
		idx := 0
		for {
			g := st.Geometric(p)
			if g >= n-idx {
				return count
			}
			idx += g + 1
			count++
			if idx >= n {
				return count
			}
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := math.Round(mean + sd*st.NormFloat64())
	if v < 0 {
		v = 0
	}
	if v > float64(n) {
		v = float64(n)
	}
	return int(v)
}

// Poisson samples from Poisson(lambda) using Knuth's method for small
// lambda and a normal approximation for large lambda. Used by synthetic
// workload generators.
func Poisson(st *rng.Stream, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 64 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= st.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Round(lambda + math.Sqrt(lambda)*st.NormFloat64())
	if v < 0 {
		v = 0
	}
	return int(v)
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n), in random order. It panics if k > n or either is negative.
// Floyd's algorithm gives O(k) draws.
func SampleWithoutReplacement(st *rng.Stream, n, k int) []int {
	return AppendSampleWithoutReplacement(nil, st, n, k)
}

// AppendSampleWithoutReplacement appends k distinct integers drawn
// uniformly from [0, n), in random order, to dst — the caller-buffer
// variant of SampleWithoutReplacement, drawing the identical sequence
// from st. Membership during Floyd's algorithm is resolved by scanning
// the appended region (O(k²) worst case, allocation-free); the draw
// sequence and output are independent of that choice, so results match
// the historical map-based implementation bit for bit.
func AppendSampleWithoutReplacement(dst []int, st *rng.Stream, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("sampling: invalid SampleWithoutReplacement arguments")
	}
	base := len(dst)
	for j := n - k; j < n; j++ {
		t := st.Intn(j + 1)
		for _, prev := range dst[base:] {
			if prev == t {
				t = j
				break
			}
		}
		dst = append(dst, t)
	}
	// Shuffle so the output order carries no information about insertion.
	out := dst[base:]
	for i := len(out) - 1; i > 0; i-- {
		j := st.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return dst
}
