package dist

// Metrics is the coordinator's hand-rolled counter snapshot — the
// /metrics body cmd/rccoordd serves, in the same style as the worker
// service's.
type Metrics struct {
	// Workers counts live (non-dead) pool members; Members maps each
	// known worker's base URL to its membership state (ready, draining,
	// dead). Joins and Leaves count pool transitions over the
	// coordinator's lifetime.
	Workers     int               `json:"workers"`
	Members     map[string]string `json:"members"`
	Joins       int64             `json:"joins"`
	Leaves      int64             `json:"leaves"`
	TotalShards int               `json:"total_shards"`
	// Shards counts shards per lifecycle phase: pending (waiting for a
	// first attempt), assigned (an attempt in flight), done (all lines
	// buffered or merged), retrying (requeued after ≥1 failed attempt).
	Shards            map[string]int `json:"shards"`
	PerWorkerInFlight map[string]int `json:"per_worker_in_flight"`
	Retries           int64          `json:"retries"`
	MergedTrials      int64          `json:"merged_trials"`
	TotalTrials       int64          `json:"total_trials"`
	// ResumedShards counts shards restored from the frontier journal at
	// startup rather than recomputed — nonzero only after a crash-resume.
	ResumedShards int64 `json:"resumed_shards"`
	// MergeFrontierShard is the next shard index the merge loop will
	// emit; WindowBufferedLines is the reorder window's occupancy —
	// result lines buffered ahead of the frontier, bounded by
	// WindowShards·ShardSize.
	MergeFrontierShard  int `json:"merge_frontier_shard"`
	WindowShards        int `json:"merge_window_shards"`
	WindowBufferedLines int `json:"merge_window_buffered_lines"`
}

// Metrics snapshots the run. Safe from any goroutine, including before
// Run starts (all-zero shard counts) and after it returns.
func (c *Coordinator) Metrics() Metrics {
	m := Metrics{
		Members:           map[string]string{},
		Shards:            map[string]int{},
		PerWorkerInFlight: map[string]int{},
		Retries:           c.retries.Load(),
		MergedTrials:      c.merged.Load(),
		TotalTrials:       c.totalTrials.Load(),
		Joins:             c.joins.Load(),
		Leaves:            c.leaves.Load(),
		ResumedShards:     c.resumed.Load(),
	}
	c.mu.Lock()
	for base, mem := range c.members {
		s := mem.getState()
		m.Members[base] = s
		if s != StateDead {
			m.Workers++
		}
	}
	run := c.run
	for w, n := range c.inflight {
		m.PerWorkerInFlight[w] = n
	}
	c.mu.Unlock()
	if run == nil {
		return m
	}
	m.TotalShards = len(run.shards)
	frontier, _, _ := run.sched.snapshot()
	m.MergeFrontierShard = frontier
	m.WindowShards = run.sched.window
	for i, st := range run.shards {
		st.mu.Lock()
		phase, attempts := st.phase, st.attempts
		st.mu.Unlock()
		if phase == phasePending && attempts > 0 {
			m.Shards["retrying"]++
		} else {
			m.Shards[phase]++
		}
		if i >= frontier {
			m.WindowBufferedLines += len(st.lines)
		}
	}
	return m
}
