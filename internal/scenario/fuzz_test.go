package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseAdversary asserts the flag-syntax decoder never panics and
// that every accepted input round-trips: String() reparses to the
// identical spec.
func FuzzParseAdversary(f *testing.F) {
	for _, seed := range []string{
		"null", "full", "random:p=0.3", "bursty:burst=8,gap=56",
		"blocker:inform,prop,frac=0.55", "partition:strand=0.1,rounds=4",
		"spoofer:p=0.5", "data-spoofer", "sweep:frac=0.75",
		"greedy:perround=512", "reactive",
		"blocker:inform,prop+spoofer:p=0.3", "full+random:p=0.1+reactive",
		"random:p=1e-3", "random:p=0.0625", "blocker:req=true,frac=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseAdversary(in)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseAdversary(%q) accepted a spec that fails Validate: %v", in, err)
		}
		out := spec.String()
		again, err := ParseAdversary(out)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", out, in, err)
		}
		if !reflect.DeepEqual(again, spec) {
			t.Fatalf("round trip drifted for %q:\n  first:  %+v\n  second: %+v", in, spec, again)
		}
	})
}

// FuzzAdversarySpecJSON asserts JSON decoding of adversary specs never
// panics and that accepted specs re-encode byte-stably and build.
func FuzzAdversarySpecJSON(f *testing.F) {
	for _, seed := range []string{
		`{"kind":"full"}`,
		`{"kind":"random","p":0.3}`,
		`{"kind":"partition","strand":0.05,"rounds":4}`,
		`{"kind":"composite","parts":[{"kind":"full"},{"kind":"spoofer","p":0.3}]}`,
		`{"kind":"blocker","inform":true,"propagate":true,"fraction":0.55}`,
	} {
		f.Add([]byte(seed))
	}
	params := Scenario{N: 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec AdversarySpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		spec = spec.WithDefaults()
		if err := spec.Validate(); err != nil {
			return
		}
		first, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var decoded AdversarySpec
		if err := json.Unmarshal(first, &decoded); err != nil {
			t.Fatalf("marshal output does not unmarshal: %v", err)
		}
		second, err := json.Marshal(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(second) {
			t.Fatalf("JSON round trip not byte-stable:\n%s\n%s", first, second)
		}
		p, err := params.Params()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := spec.New(p); err != nil {
			t.Fatalf("valid spec does not build: %v", err)
		}
	})
}
