package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rcbcast/internal/engine"
)

// A Sink consumes a streaming sweep's results. The session delivers
// every trial exactly once, in trial-index order, from a single
// goroutine — whatever the worker count — so implementations need not
// be concurrency-safe and may fold floating-point aggregates without
// losing bit-for-bit reproducibility. Flush is invoked once when the
// stream ends, *including* when it stops early (cancellation, a failing
// trial, a failing sink), so buffered sinks — journals, NDJSON/CSV
// writers — always persist the delivered prefix.
type Sink interface {
	// Trial consumes trial i's result. Returning an error stops the
	// stream; the error comes back wrapped in a *PartialError.
	Trial(i int, r *engine.Result) error
	// Flush finalizes the sink: write trailers, flush buffers.
	Flush() error
}

// PartialError reports a streaming sweep that stopped before every
// trial was delivered — context cancellation, a failing trial, or a
// sink error. Trials [0, Delivered) reached every sink (and any
// checkpoint journal) in order, so a canceled sweep can resume from
// Delivered. errors.Is sees context.Canceled / DeadlineExceeded through
// Unwrap when the stop came from the context.
type PartialError struct {
	// Delivered counts the trials delivered in order to every sink.
	Delivered int
	// Err is the underlying cause.
	Err error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("sim: stream stopped after %d trials: %v", e.Delivered, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }

// reorderPerProc sizes the streaming reorder window: a worker may run
// ahead of in-order delivery by at most reorderPerProc·procs trials, so
// at most that many results are live (running or awaiting delivery) at
// once. The slack over 1·procs keeps workers busy when trial durations
// vary (a budget sweep's expensive tail would otherwise stall the pool
// on the cheap trials ahead of it) while preserving the O(procs) memory
// bound the streaming API exists for.
const reorderPerProc = 4

// streamWindow returns the reorder window for a resolved worker count.
func streamWindow(procs int) int { return reorderPerProc * procs }

// Window reports the streaming session's live-result bound for a worker
// count (<= 0 selects GOMAXPROCS, exactly as Stream does): at most
// Window(procs) trials of one sweep are running or awaiting in-order
// delivery at any moment. The sweep service surfaces the bound in its
// metrics and the limits tests assert against it; it is a property of
// the session, not a tunable. (Sweeps shorter than the worker count use
// an even smaller window, so this is an upper bound.)
func Window(procs int) int { return streamWindow(Procs(procs)) }

// streamItem carries one finished trial from a worker to the collector.
type streamItem[T any] struct {
	i   int
	v   T
	err error
}

// StreamMap is the deterministic streaming substrate under Stream,
// generic over the per-trial result type (multi-hop pipelines and
// baseline protocols stream through it directly). It runs
// fn(ctx, 0..n-1) on a pool of procs workers and calls deliver(i, v)
// in strict index order from the calling goroutine. Unlike Map it
// never materializes the result slice: at most streamWindow(procs)
// results are live at once, because a worker may only claim a new
// trial after enough older trials have been delivered.
//
// fn must be a pure function of its index. The first in-order failure
// wins deterministically: trials are delivered up to the lowest failing
// index and the stream stops there with a *PartialError, whatever the
// execution schedule. Cancellation of ctx stops workers at the next
// engine phase boundary and surfaces as a *PartialError wrapping the
// context's error.
func StreamMap[T any](ctx context.Context, procs, n int, fn func(ctx context.Context, i int) (T, error), deliver func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	procs = Procs(procs)
	if procs > n {
		procs = n
	}
	if procs == 1 {
		// Inline fast path: same delivery order and error rule by
		// construction.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return &PartialError{Delivered: i, Err: err}
			}
			v, err := fn(ctx, i)
			if err != nil {
				return &PartialError{Delivered: i, Err: fmt.Errorf("trial %d: %w", i, err)}
			}
			if err := deliver(i, v); err != nil {
				return &PartialError{Delivered: i, Err: err}
			}
		}
		return nil
	}

	ctxw, cancel := context.WithCancel(ctx)
	defer cancel()
	window := streamWindow(procs)
	// Results never block the workers: in-flight items are capped at
	// the window, which is exactly the channel's capacity.
	results := make(chan streamItem[T], window)
	// tickets is the window semaphore. A worker takes a ticket before
	// claiming a trial; the collector returns it only after the trial
	// is *delivered*, so claimed-but-undelivered trials ≤ window. The
	// gap trial (lowest undelivered index) was claimed before any
	// in-flight higher index and its worker already holds a ticket, so
	// delivery always makes progress — no deadlock.
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(procs)
	for w := 0; w < procs; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctxw.Done():
					return
				case <-tickets:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(ctxw, i)
				results <- streamItem[T]{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The collector: reorder out-of-schedule completions and deliver
	// the longest consecutive run. After a stop it keeps draining so
	// every worker has exited before StreamMap returns.
	pending := make(map[int]streamItem[T], window)
	delivered := 0
	var stopErr error
	for it := range results {
		if stopErr != nil {
			continue
		}
		pending[it.i] = it
		for {
			nxt, ok := pending[delivered]
			if !ok {
				break
			}
			delete(pending, delivered)
			if nxt.err != nil {
				stopErr = fmt.Errorf("trial %d: %w", delivered, nxt.err)
				cancel()
				break
			}
			if err := deliver(delivered, nxt.v); err != nil {
				stopErr = err
				cancel()
				break
			}
			delivered++
			tickets <- struct{}{}
		}
	}
	if stopErr != nil {
		return &PartialError{Delivered: delivered, Err: stopErr}
	}
	if delivered < n {
		// Workers stopped before claiming every trial: the parent
		// context fired and no in-order trial carried its error.
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		return &PartialError{Delivered: delivered, Err: err}
	}
	return nil
}

// scratches recycles engine working buffers across the trials a worker
// executes: sync.Pool's per-P caching makes a Get/Put pair around each
// trial an effectively per-worker scratch, cutting the steady-state
// allocation rate of long sweeps. Results are byte-identical with and
// without reuse (the engine's scratch test pins that), so determinism
// is untouched.
var scratches = sync.Pool{New: func() any { return engine.NewScratch() }}

// Stream is the streaming run session: it executes every spec on a pool
// of procs workers (procs <= 0 selects GOMAXPROCS) and delivers results
// to the sinks in trial order with bounded buffering — a million-trial
// sweep holds O(procs) live engine.Results instead of O(trials).
// Delivery is single-goroutine and index-ordered, so sink output is
// byte-identical for every procs value; ctx cancellation stops workers
// at the next engine phase boundary and returns a *PartialError whose
// Delivered prefix has reached every sink. Flush runs on every sink
// even when the stream stops early.
func Stream(ctx context.Context, procs int, specs []TrialSpec, sinks ...Sink) error {
	streamErr := StreamMap(ctx, procs, len(specs), func(ctx context.Context, i int) (*engine.Result, error) {
		opts := specs[i].options()
		if opts.Scratch == nil {
			sc := scratches.Get().(*engine.Scratch)
			defer scratches.Put(sc)
			opts.Scratch = sc
		}
		return engine.RunContext(ctx, opts)
	}, func(i int, r *engine.Result) error {
		for _, s := range sinks {
			if err := s.Trial(i, r); err != nil {
				return err
			}
		}
		return nil
	})
	for _, s := range sinks {
		if err := s.Flush(); err != nil && streamErr == nil {
			streamErr = fmt.Errorf("sim: flush: %w", err)
		}
	}
	return streamErr
}

// collect is the Sink behind the RunTrials compatibility wrapper.
type collect []*engine.Result

func (c collect) Trial(i int, r *engine.Result) error { c[i] = r; return nil }
func (c collect) Flush() error                        { return nil }
