// Quorum: the paper's §1 motivation for almost-everywhere broadcast.
// Protocols like Paxos only need m to reach a *majority quorum*.
// ε-BROADCAST guarantees (1-ε)n delivery even against an n-uniform Carol
// who hand-picks which nodes to starve — so as long as she can only
// strand an ε-fraction, every majority quorum still intersects the
// informed set and consensus can proceed.
//
// This example mounts the strongest stranding attack in the model (the
// §2.3 partition blocker) at several sizes and checks quorum viability.
//
//	go run ./examples/quorum
package main

import (
	"fmt"
	"log"

	"rcbcast"
)

func main() {
	const n = 1024
	fmt.Printf("n-uniform stranding attacks vs majority quorums, n = %d\n\n", n)
	fmt.Printf("%18s  %10s  %10s  %12s  %s\n",
		"attack", "informed", "stranded", "terminated?", "majority quorum viable?")

	for _, strandFrac := range []float64{0.0, 0.05, 0.10, 0.30} {
		sc := rcbcast.Scenario{
			N: n, K: 2, Seed: 3,
			Overrides: rcbcast.ScenarioOverrides{ExtraRounds: 4},
		}
		if strandFrac > 0 {
			sc.Adversary = rcbcast.AdversarySpec{Kind: "partition", Strand: strandFrac}
		}
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}

		quorum := "YES"
		if res.Informed <= n/2 {
			quorum = "NO"
		}
		label := fmt.Sprintf("strand %.0f%%", 100*strandFrac)
		if strandFrac == 0 {
			label = "none"
		}
		fmt.Printf("%18s  %10d  %10d  %12t  %s\n",
			label, res.Informed, res.Stranded, res.Completed, quorum)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - small partitions succeed for Carol, but only up to the quiet-test")
	fmt.Println("    fraction ε: the lost nodes are a minority, quorums survive")
	fmt.Println("  - oversized partitions fail closed: the stranded nodes keep NACKing,")
	fmt.Println("    nobody falsely terminates, and Carol must keep paying forever")
	fmt.Println("  - either way, a majority of nodes receives m: Paxos can run")
}
