package adversary

import (
	"testing"

	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/msg"
	"rcbcast/internal/rng"
)

func phaseFor(t *testing.T, kind core.PhaseKind) (core.Phase, *core.Params) {
	t.Helper()
	p := core.PracticalParams(1024, 2)
	for _, ph := range p.Round(8) {
		if ph.Kind == kind {
			return ph, &p
		}
	}
	t.Fatalf("no %v phase", kind)
	return core.Phase{}, nil
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: len=%d count=%d", b.Len(), b.Count())
	}
	for _, s := range []int{0, 63, 64, 129} {
		b.Set(s)
		if !b.Get(s) {
			t.Fatalf("slot %d not set", s)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 3 {
		t.Fatal("clear failed")
	}
	// Out of range is a no-op, not a panic.
	b.Set(-1)
	b.Set(130)
	if b.Count() != 3 {
		t.Fatal("out-of-range Set must be ignored")
	}
	if b.Get(-1) || b.Get(999) {
		t.Fatal("out-of-range Get must be false")
	}
}

func TestPlanJamAndDisrupt(t *testing.T) {
	p := NewPlan(100)
	p.JamRange(10, 20)
	if p.JamCount() != 10 {
		t.Fatalf("JamCount = %d, want 10", p.JamCount())
	}
	if !p.Jammed(10) || p.Jammed(20) {
		t.Fatal("JamRange boundaries wrong")
	}
	// Default targeting disrupts everyone.
	if !p.Disrupts(10, 7) {
		t.Fatal("nil disrupt must target all listeners")
	}
	p.SetDisrupt(func(_, l int) bool { return l == 3 })
	if !p.Disrupts(10, 3) || p.Disrupts(10, 4) {
		t.Fatal("custom disrupt predicate not honored")
	}
	p.Unjam(10)
	if p.Jammed(10) || p.JamCount() != 9 {
		t.Fatal("Unjam failed")
	}
}

func TestPlanJamRangeClamps(t *testing.T) {
	p := NewPlan(10)
	p.JamRange(-5, 100)
	if p.JamCount() != 10 {
		t.Fatalf("clamped JamRange count = %d, want 10", p.JamCount())
	}
}

func TestPlanInjectionsSortedAndBounded(t *testing.T) {
	p := NewPlan(50)
	p.Inject(30, msg.SpoofNack(-1))
	p.Inject(10, msg.SpoofNack(-2))
	p.Inject(99, msg.SpoofNack(-3)) // out of range: dropped
	p.Inject(-1, msg.SpoofNack(-4)) // dropped
	inj := p.Injections()
	if len(inj) != 2 {
		t.Fatalf("injections = %d, want 2", len(inj))
	}
	if inj[0].Slot != 10 || inj[1].Slot != 30 {
		t.Fatalf("injections not sorted: %+v", inj)
	}
}

func TestTruncateJams(t *testing.T) {
	p := NewPlan(200)
	p.JamRange(0, 150)
	kept := p.TruncateJamsAfter(40)
	if kept != 40 || p.JamCount() != 40 {
		t.Fatalf("kept=%d count=%d, want 40", kept, p.JamCount())
	}
	// The first 40 slots in order survive.
	for s := 0; s < 40; s++ {
		if !p.Jammed(s) {
			t.Fatalf("slot %d should stay jammed", s)
		}
	}
	if p.Jammed(40) {
		t.Fatal("slot 40 should be cleared")
	}
	// Truncating to zero clears everything.
	p.TruncateJamsAfter(0)
	if p.JamCount() != 0 {
		t.Fatal("TruncateJamsAfter(0) must clear all")
	}
}

func TestTruncateJamsSparse(t *testing.T) {
	p := NewPlan(1000)
	slots := []int{5, 100, 101, 500, 777, 999}
	for _, s := range slots {
		p.Jam(s)
	}
	p.TruncateJamsAfter(3)
	want := map[int]bool{5: true, 100: true, 101: true}
	for _, s := range slots {
		if p.Jammed(s) != want[s] {
			t.Fatalf("slot %d jammed=%t, want %t", s, p.Jammed(s), want[s])
		}
	}
}

func TestTruncateInjections(t *testing.T) {
	p := NewPlan(100)
	for _, s := range []int{50, 10, 30, 70} {
		p.Inject(s, msg.SpoofNack(-1))
	}
	n := p.TruncateInjectionsAfter(2)
	if n != 2 {
		t.Fatalf("kept %d injections, want 2", n)
	}
	inj := p.Injections()
	if inj[0].Slot != 10 || inj[1].Slot != 30 {
		t.Fatalf("wrong injections kept: %+v", inj)
	}
}

func TestNullStrategy(t *testing.T) {
	ph, _ := phaseFor(t, core.PhaseInform)
	if plan := (Null{}).PlanPhase(ph, &History{}, energy.NewPool(100), rng.New(1)); plan != nil {
		t.Fatal("null adversary must plan nothing")
	}
}

func TestFullJamRespectsBudgetAdvice(t *testing.T) {
	ph, _ := phaseFor(t, core.PhaseInform)
	pool := energy.NewPool(int64(ph.Length) / 2)
	plan := FullJam{}.PlanPhase(ph, &History{}, pool, rng.New(1))
	if plan == nil {
		t.Fatal("full jam with budget must plan")
	}
	if got := int64(plan.JamCount()); got != pool.Remaining() {
		t.Fatalf("planned %d jams, want %d", got, pool.Remaining())
	}
	empty := energy.NewPool(0)
	if plan := (FullJam{}).PlanPhase(ph, &History{}, empty, rng.New(1)); plan != nil {
		t.Fatal("exhausted pool must produce no plan")
	}
}

func TestFullJamUnlimitedWithNilPool(t *testing.T) {
	ph, _ := phaseFor(t, core.PhaseInform)
	plan := FullJam{}.PlanPhase(ph, &History{}, nil, rng.New(1))
	if plan == nil || plan.JamCount() != ph.Length {
		t.Fatal("nil pool means unlimited: jam everything")
	}
}

func TestRandomJamRate(t *testing.T) {
	ph, _ := phaseFor(t, core.PhaseInform)
	plan := RandomJam{P: 0.25}.PlanPhase(ph, &History{}, nil, rng.New(7))
	if plan == nil {
		t.Fatal("random jam must plan")
	}
	got := float64(plan.JamCount()) / float64(ph.Length)
	if got < 0.15 || got > 0.35 {
		t.Fatalf("random jam rate = %v, want ~0.25", got)
	}
	if plan := (RandomJam{P: 0}).PlanPhase(ph, &History{}, nil, rng.New(7)); plan != nil {
		t.Fatal("P=0 must plan nothing")
	}
}

func TestBurstyPattern(t *testing.T) {
	ph, _ := phaseFor(t, core.PhaseInform)
	plan := Bursty{Burst: 8, Gap: 8}.PlanPhase(ph, &History{}, nil, rng.New(3))
	if plan == nil {
		t.Fatal("bursty must plan")
	}
	got := float64(plan.JamCount()) / float64(ph.Length)
	if got < 0.4 || got > 0.6 {
		t.Fatalf("bursty duty cycle = %v, want ~0.5", got)
	}
}

func TestPhaseBlockerBlocksTargetedKindsOnly(t *testing.T) {
	inform, params := phaseFor(t, core.PhaseInform)
	request, _ := phaseFor(t, core.PhaseRequest)
	s := PhaseBlocker{BlockInform: true, Params: params}
	plan := s.PlanPhase(inform, &History{}, nil, rng.New(1))
	if plan == nil {
		t.Fatal("must block the inform phase")
	}
	minJams := int64(0.5 * float64(inform.Length))
	if int64(plan.JamCount()) <= minJams {
		t.Fatalf("jams %d do not exceed the blocking threshold %d", plan.JamCount(), minJams)
	}
	if plan := s.PlanPhase(request, &History{}, nil, rng.New(1)); plan != nil {
		t.Fatal("must not touch non-targeted phases")
	}
}

func TestPhaseBlockerStopsWhenUnaffordable(t *testing.T) {
	inform, params := phaseFor(t, core.PhaseInform)
	s := PhaseBlocker{BlockInform: true, Params: params}
	// Pool can afford only a third of the phase: a partial block is
	// worthless, so she must not spend at all.
	pool := energy.NewPool(int64(inform.Length) / 3)
	if plan := s.PlanPhase(inform, &History{}, pool, rng.New(1)); plan != nil {
		t.Fatal("blocker must stop cleanly when it cannot afford a full block")
	}
}

func TestPartitionBlockerSparesNonStranded(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	stranded := func(node int) bool { return node < 10 }
	s := &PartitionBlocker{Stranded: stranded}
	plan := s.PlanPhase(inform, &History{}, nil, rng.New(1))
	if plan == nil {
		t.Fatal("partition blocker must plan")
	}
	if plan.JamCount() != inform.Length {
		t.Fatal("partition blocker jams the whole phase")
	}
	if !plan.Disrupts(0, 5) {
		t.Fatal("stranded node must be disrupted")
	}
	if plan.Disrupts(0, 500) {
		t.Fatal("non-stranded node must be spared (n-uniform targeting)")
	}
	// Request phases are left alone so the quiet test can fire.
	request, _ := phaseFor(t, core.PhaseRequest)
	if p := s.PlanPhase(request, &History{}, nil, rng.New(1)); p != nil {
		t.Fatal("partition blocker must not jam request phases")
	}
}

func TestPartitionBlockerNeedsFullPhase(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	s := &PartitionBlocker{Stranded: func(int) bool { return true }}
	pool := energy.NewPool(int64(inform.Length) - 1)
	if plan := s.PlanPhase(inform, &History{}, pool, rng.New(1)); plan != nil {
		t.Fatal("partial partition leaks m; must not spend")
	}
}

func TestNackSpooferInjectsOnlyInRequest(t *testing.T) {
	request, _ := phaseFor(t, core.PhaseRequest)
	inform, _ := phaseFor(t, core.PhaseInform)
	s := &NackSpoofer{Rate: 0.5}
	if plan := s.PlanPhase(inform, &History{}, nil, rng.New(1)); plan != nil {
		t.Fatal("spoofer must only act in request phases")
	}
	plan := s.PlanPhase(request, &History{}, nil, rng.New(1))
	if plan == nil {
		t.Fatal("spoofer must plan in request phase")
	}
	inj := plan.Injections()
	rate := float64(len(inj)) / float64(request.Length)
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("spoof rate = %v, want ~0.5", rate)
	}
	for _, in := range inj {
		if in.Frame.Kind != msg.KindNack {
			t.Fatalf("spoofed frame kind = %v, want nack", in.Frame.Kind)
		}
	}
	if plan.JamCount() != 0 {
		t.Fatal("spoofer jams nothing")
	}
}

func TestNackSpooferBudget(t *testing.T) {
	request, _ := phaseFor(t, core.PhaseRequest)
	s := &NackSpoofer{Rate: 1}
	pool := energy.NewPool(7)
	plan := s.PlanPhase(request, &History{}, pool, rng.New(1))
	if plan == nil || len(plan.Injections()) != 7 {
		t.Fatalf("spoofer must stay within budget advice")
	}
}

func TestReactiveJammerHitsExactlyActiveSlots(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	activity := NewBitmap(inform.Length)
	for _, s := range []int{3, 17, 99} {
		activity.Set(s)
	}
	plan := ReactiveJammer{}.PlanReactive(inform, activity, &History{}, nil, rng.New(1))
	if plan == nil || plan.JamCount() != 3 {
		t.Fatalf("reactive jammer must jam the 3 active slots")
	}
	for _, s := range []int{3, 17, 99} {
		if !plan.Jammed(s) {
			t.Fatalf("active slot %d not jammed", s)
		}
	}
	if plan.Jammed(4) {
		t.Fatal("inactive slot jammed")
	}
}

func TestReactiveJammerBudgetTruncatesInSlotOrder(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	activity := NewBitmap(inform.Length)
	for s := 0; s < 10; s++ {
		activity.Set(s * 5)
	}
	pool := energy.NewPool(4)
	plan := ReactiveJammer{}.PlanReactive(inform, activity, &History{}, pool, rng.New(1))
	if plan == nil || plan.JamCount() != 4 {
		t.Fatalf("want 4 jams, got %v", plan)
	}
	for s := 0; s < 4; s++ {
		if !plan.Jammed(s * 5) {
			t.Fatalf("earliest active slots must be jammed first")
		}
	}
}

func TestHistoryLast(t *testing.T) {
	h := &History{}
	if _, ok := h.Last(); ok {
		t.Fatal("empty history has no last outcome")
	}
	h.Outcomes = append(h.Outcomes, PhaseOutcome{AliceSends: 3})
	if last, ok := h.Last(); !ok || last.AliceSends != 3 {
		t.Fatal("Last must return the most recent outcome")
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{
		Null{}, FullJam{}, RandomJam{P: 0.5}, Bursty{Burst: 1, Gap: 1},
		PhaseBlocker{}, &PartitionBlocker{}, &NackSpoofer{}, ReactiveJammer{},
	} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
