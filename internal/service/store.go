package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rcbcast/internal/scenario"
)

// jobRecord is the on-disk job description (job.json): enough to rebuild
// the Job after a restart — spec, scheduling state, and bookkeeping.
// Written atomically (temp + rename) at submit and at every state
// transition, so a SIGKILL leaves at worst a stale-but-consistent
// record; a record claiming "running" simply resumes as queued.
type jobRecord struct {
	ID            string          `json:"id"`
	Client        string          `json:"client,omitempty"`
	Scenario      json.RawMessage `json:"scenario"`
	Trials        int             `json:"trials"`
	BaseSeed      uint64          `json:"base_seed"`
	Shard         scenario.Shard  `json:"shard,omitzero"`
	State         State           `json:"state"`
	Done          int             `json:"done,omitempty"`
	PartialErrors int             `json:"partial_errors,omitempty"`
	Canceled      bool            `json:"canceled,omitempty"`
	Error         string          `json:"error,omitempty"`
	Version       string          `json:"version"`
}

// saveJob persists the job record atomically into its directory.
func saveJob(j *Job) error {
	rec := j.record()
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode job record: %w", err)
	}
	data = append(data, '\n')
	tmp := j.recordPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: write job record: %w", err)
	}
	if err := os.Rename(tmp, j.recordPath()); err != nil {
		return fmt.Errorf("service: publish job record: %w", err)
	}
	return nil
}

// loadRecords scans the store root for job records, in stable (id) order
// so restart scheduling is deterministic. Directories without a
// readable record are skipped with the error reported to the caller's
// log hook rather than failing the whole store: one corrupt record must
// not take the service down.
func loadRecords(dir string, warn func(error)) ([]jobRecord, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: read store: %w", err)
	}
	var recs []jobRecord
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name(), "job.json")
		data, err := os.ReadFile(path)
		if err != nil {
			if !os.IsNotExist(err) && warn != nil {
				warn(fmt.Errorf("service: skip %s: %w", path, err))
			}
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			if warn != nil {
				warn(fmt.Errorf("service: skip %s: %w", path, err))
			}
			continue
		}
		if rec.ID != e.Name() {
			if warn != nil {
				warn(fmt.Errorf("service: skip %s: record id %q does not match its directory", path, rec.ID))
			}
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	return recs, nil
}
