package sink

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
)

// jamSpecs builds a deterministic full-jam sweep for sink tests.
func jamSpecs(n, trials int) []sim.TrialSpec {
	specs := make([]sim.TrialSpec, trials)
	for i := range specs {
		specs[i] = sim.TrialSpec{
			Params:   core.PracticalParams(n, 2),
			Seed:     sim.TrialSeed(1, i),
			Strategy: func() adversary.Strategy { return adversary.FullJam{} },
			Pool:     func() *energy.Pool { return energy.NewPool(1 << 10) },
		}
	}
	return specs
}

func mustStream(t *testing.T, procs int, specs []sim.TrialSpec, sinks ...sim.Sink) {
	t.Helper()
	if err := sim.Stream(context.Background(), procs, specs, sinks...); err != nil {
		t.Fatal(err)
	}
}

func TestFoldRoutesPoints(t *testing.T) {
	fold := NewFold(2,
		func(r *engine.Result) float64 { return float64(r.Informed) },
		func(r *engine.Result) float64 { return float64(r.AdversarySpent) },
	)
	specs := jamSpecs(64, 6) // 3 points x 2 trials
	mustStream(t, 4, specs, fold)
	if fold.Points() != 3 {
		t.Fatalf("points = %d, want 3", fold.Points())
	}
	// Cross-check against a direct collected fold.
	results, err := sim.RunTrials(1, specs)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		want := (float64(results[2*p].Informed) + float64(results[2*p+1].Informed)) / 2
		if got := fold.Mean(p, 0); got != want {
			t.Fatalf("point %d col 0: %v, want %v", p, got, want)
		}
		acc := fold.Acc(p, 1)
		if acc.N() != 2 {
			t.Fatalf("point %d col 1: %d samples", p, acc.N())
		}
	}
	if got := fold.Mean(99, 0); got != 0 {
		t.Fatalf("out-of-range point must read as zero, got %v", got)
	}
}

func TestNDJSONRecords(t *testing.T) {
	var buf bytes.Buffer
	specs := jamSpecs(64, 3)
	mustStream(t, 2, specs, NewNDJSON(&buf))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Trial != i || rec.N != 64 || rec.Strategy != "full-jam" || rec.AdversarySpent == 0 {
			t.Fatalf("line %d: %+v", i, rec)
		}
	}
}

// failAfterWriter fails once `allow` bytes have been written.
type failAfterWriter struct {
	allow   int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.allow {
		return 0, errors.New("writer torn")
	}
	w.written += len(p)
	return len(p), nil
}

func TestNDJSONWriteErrorStopsStream(t *testing.T) {
	w := &failAfterWriter{allow: 10}
	err := sim.Stream(context.Background(), 2, jamSpecs(64, 4), NewNDJSON(w))
	var pe *sim.PartialError
	if !errors.As(err, &pe) || !strings.Contains(err.Error(), "writer torn") {
		t.Fatalf("want PartialError wrapping the write failure, got %v", err)
	}
}

func TestCSVRecords(t *testing.T) {
	var buf bytes.Buffer
	mustStream(t, 2, jamSpecs(64, 3), NewCSV(&buf))
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want header + 3 rows, got %d", len(rows))
	}
	if rows[0][0] != "trial" || rows[1][0] != "0" || rows[3][0] != "2" {
		t.Fatalf("rows: %v", rows)
	}
	if len(rows[0]) != len(rows[1]) {
		t.Fatal("header and row widths differ")
	}
}

func TestProgressDeterministic(t *testing.T) {
	var buf bytes.Buffer
	mustStream(t, 4, jamSpecs(64, 5), NewProgress(&buf, 5, 2))
	want := "progress: 2/5 trials (40.0%)\n" +
		"progress: 4/5 trials (80.0%)\n" +
		"progress: 5/5 trials (100.0%)\n"
	if buf.String() != want {
		t.Fatalf("progress output:\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestProgressEmptySweep(t *testing.T) {
	var buf bytes.Buffer
	mustStream(t, 1, nil, NewProgress(&buf, 0, 10))
	if got := buf.String(); got != "progress: 0 trials\n" {
		t.Fatalf("empty-sweep progress %q", got)
	}
}

func TestTopKRetains(t *testing.T) {
	specs := jamSpecs(64, 8)
	top := NewTopK(3, func(r *engine.Result) float64 { return float64(r.Alice.Cost) })
	mustStream(t, 4, specs, top)
	got := top.Results()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	// Verify against the full collected sweep.
	results, err := sim.RunTrials(1, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("results not sorted: %v", got)
		}
	}
	worstKept := got[len(got)-1].Score
	outside := 0
	for _, r := range results {
		if float64(r.Alice.Cost) > worstKept {
			outside++
		}
	}
	if outside > 2 { // at most K-1 results may strictly beat the min kept
		t.Fatalf("%d results beat the retained minimum %v", outside, worstKept)
	}
	for _, s := range got {
		if s.Result == nil || float64(s.Result.Alice.Cost) != s.Score {
			t.Fatalf("scored entry inconsistent: %+v", s)
		}
	}
}

func TestTopKProcsEquivalence(t *testing.T) {
	specs := jamSpecs(64, 10)
	render := func(procs int) []Scored {
		top := NewTopK(4, func(r *engine.Result) float64 { return float64(r.SlotsSimulated) })
		mustStream(t, procs, specs, top)
		return top.Results()
	}
	a, b := render(1), render(8)
	if len(a) != len(b) {
		t.Fatal("retained sets differ in size")
	}
	for i := range a {
		if a[i].Trial != b[i].Trial || a[i].Score != b[i].Score {
			t.Fatalf("retained sets diverge across procs: %v vs %v", a, b)
		}
	}
}
