package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAdversary decodes the compact flag syntax for adversary specs:
//
//	KIND[:KEY=VALUE[,KEY=VALUE...]] ["+" SPEC ...]
//
// Examples:
//
//	full
//	random:p=0.3
//	blocker:inform,prop,frac=0.55
//	partition:strand=0.1,rounds=4
//	blocker:inform,prop+spoofer:p=0.3     (composite)
//
// Boolean knobs may be given bare ("inform") or explicitly
// ("inform=true"). Kind defaults are applied (WithDefaults), matching
// the historical CLI behaviour of bare kind names. The inverse is
// AdversarySpec.String.
func ParseAdversary(s string) (AdversarySpec, error) {
	parts := strings.Split(s, "+")
	if len(parts) == 1 {
		return parseOne(parts[0])
	}
	spec := AdversarySpec{Kind: "composite", Parts: make([]AdversarySpec, len(parts))}
	for i, part := range parts {
		sub, err := parseOne(part)
		if err != nil {
			return AdversarySpec{}, err
		}
		if sub.Kind == "composite" {
			return AdversarySpec{}, fmt.Errorf("scenario: composite parts cannot nest in flag syntax (%q)", s)
		}
		spec.Parts[i] = sub
	}
	return spec, spec.Validate()
}

func parseOne(s string) (AdversarySpec, error) {
	kind, knobs, hasKnobs := strings.Cut(strings.TrimSpace(s), ":")
	if kind == "" {
		return AdversarySpec{}, fmt.Errorf("scenario: empty adversary spec (use %q for no adversary)", "null")
	}
	spec := AdversarySpec{Kind: kind}
	if _, err := spec.kind(); err != nil {
		return AdversarySpec{}, err
	}
	seen := map[string]bool{}
	if hasKnobs {
		for _, kv := range strings.Split(knobs, ",") {
			key, val, hasVal := strings.Cut(kv, "=")
			if !hasVal {
				val = "true"
			}
			key = strings.TrimSpace(key)
			if err := spec.setKnob(key, strings.TrimSpace(val)); err != nil {
				return AdversarySpec{}, err
			}
			seen[key] = true
		}
	}
	// Defaults fill only knobs the string did not set: an explicit
	// zero (p=0, gap=0) stays zero.
	spec = spec.withDefaults(func(key string) bool { return seen[key] })
	return spec, spec.Validate()
}

// setKnob assigns one flag-syntax key. The keys are deliberately short;
// the JSON field names are the long forms.
func (s *AdversarySpec) setKnob(key, val string) error {
	switch key {
	case "p":
		return parseF(key, val, &s.P)
	case "burst":
		return parseI(key, val, &s.Burst)
	case "gap":
		return parseI(key, val, &s.Gap)
	case "inform":
		return parseB(key, val, &s.Inform)
	case "prop":
		return parseB(key, val, &s.Propagate)
	case "req":
		return parseB(key, val, &s.Request)
	case "frac":
		return parseF(key, val, &s.Fraction)
	case "strand":
		return parseF(key, val, &s.Strand)
	case "rounds":
		return parseI(key, val, &s.Rounds)
	case "perround":
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return knobErr(key, val)
		}
		s.PerRound = v
		return nil
	default:
		return fmt.Errorf("scenario: unknown adversary knob %q (have p, burst, gap, inform, prop, req, frac, strand, rounds, perround)", key)
	}
}

func parseF(key, val string, dst *float64) error {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return knobErr(key, val)
	}
	*dst = v
	return nil
}

func parseI(key, val string, dst *int) error {
	v, err := strconv.Atoi(val)
	if err != nil {
		return knobErr(key, val)
	}
	*dst = v
	return nil
}

func parseB(key, val string, dst *bool) error {
	v, err := strconv.ParseBool(val)
	if err != nil {
		return knobErr(key, val)
	}
	*dst = v
	return nil
}

func knobErr(key, val string) error {
	return fmt.Errorf("scenario: bad value %q for adversary knob %q", val, key)
}

// String renders the spec in the compact flag syntax. The output
// reparses (via ParseAdversary) to an identical spec once defaults are
// applied; the round-trip tests pin that.
func (s AdversarySpec) String() string {
	if s.Kind == "composite" || (s.Kind == "" && len(s.Parts) > 0) {
		parts := make([]string, len(s.Parts))
		for i, p := range s.Parts {
			parts[i] = p.String()
		}
		return strings.Join(parts, "+")
	}
	kind := s.Kind
	if kind == "" {
		kind = "null"
	}
	// Numeric knobs are emitted when they differ from the kind's
	// parse-time default (not from zero): a default value may be
	// omitted, while an explicit zero (e.g. random p=0) must be
	// rendered so the output reparses to the identical spec.
	bare := AdversarySpec{Kind: kind}.WithDefaults()
	var knobs []string
	add := func(key, val string) { knobs = append(knobs, key+"="+val) }
	if s.P != bare.P {
		add("p", fmtF(s.P))
	}
	if s.Burst != bare.Burst {
		add("burst", strconv.Itoa(s.Burst))
	}
	if s.Gap != bare.Gap {
		add("gap", strconv.Itoa(s.Gap))
	}
	if s.Inform {
		knobs = append(knobs, "inform")
	}
	if s.Propagate {
		knobs = append(knobs, "prop")
	}
	if s.Request {
		knobs = append(knobs, "req")
	}
	if s.Fraction != bare.Fraction {
		add("frac", fmtF(s.Fraction))
	}
	if s.Strand != bare.Strand {
		add("strand", fmtF(s.Strand))
	}
	if s.Rounds != 0 {
		add("rounds", strconv.Itoa(s.Rounds))
	}
	if s.PerRound != 0 {
		add("perround", strconv.FormatInt(s.PerRound, 10))
	}
	if len(knobs) == 0 {
		return kind
	}
	return kind + ":" + strings.Join(knobs, ",")
}

// fmtF renders a float with the shortest representation that parses
// back to the identical value.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
