package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rcbcast/internal/core"
	"rcbcast/internal/engine"
	"rcbcast/internal/topology"
)

// TestStreamBatchMatchesStream is the wiring-level identity contract:
// for every batch width and worker count, StreamBatch's delivery
// sequence — indices and result fingerprints — is byte-for-byte the
// scalar Stream's. (Per-lane engine identity is pinned in
// internal/engine; this test pins the grouping and re-delivery above
// it.)
func TestStreamBatchMatchesStream(t *testing.T) {
	specs := jamSpecs(128, 19) // deliberately not a multiple of any width
	want := &recordingSink{}
	if err := Stream(context.Background(), 1, specs, want); err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{1, 2, 3, 8, 32} {
		for _, procs := range []int{1, 4} {
			got := &recordingSink{}
			if err := StreamBatch(context.Background(), procs, width, specs, got); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.order, want.order) || !reflect.DeepEqual(got.spent, want.spent) {
				t.Fatalf("width=%d procs=%d: delivery sequence diverges from scalar stream", width, procs)
			}
			if got.flushes != 1 {
				t.Fatalf("width=%d procs=%d: Flush ran %d times, want once", width, procs, got.flushes)
			}
		}
	}
}

// TestStreamBatchGroupsSplitAtPointBoundaries pins the grouping rule: a
// heterogeneous spec list (stacked sweep points) never batches across a
// Params or Topology change, and the full sweep still matches the
// scalar stream.
func TestStreamBatchGroupsSplitAtPointBoundaries(t *testing.T) {
	topos := []topology.Spec{
		{},
		{Kind: "grid", Reach: 2},
		{Kind: "gilbert", Radius: 0.25},
	}
	var specs []TrialSpec
	for point, n := range []int{96, 128} {
		for _, spec := range topos {
			s := jamSpecs(n, 5) // 5 trials per point: smaller than the width
			for i := range s {
				s[i].Topology = spec
				s[i].Seed = SweepSeed(7, point, i)
				if !spec.IsClique() {
					// Bound sparse runs the way the scenario layer does:
					// out-of-reach nodes never pass the quiet test.
					s[i].Params.MaxRound = s[i].Params.StartRound + 3
				}
			}
			specs = append(specs, s...)
		}
	}
	groups := batchGroups(specs, 8)
	for _, g := range groups {
		for i := g.start + 1; i < g.end; i++ {
			if specs[i].Params != specs[g.start].Params || specs[i].Topology != specs[g.start].Topology {
				t.Fatalf("group [%d,%d) spans a sweep-point boundary", g.start, g.end)
			}
		}
	}
	want := &recordingSink{}
	if err := Stream(context.Background(), 1, specs, want); err != nil {
		t.Fatal(err)
	}
	got := &recordingSink{}
	if err := StreamBatch(context.Background(), 2, 8, specs, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.order, want.order) || !reflect.DeepEqual(got.spent, want.spent) {
		t.Fatal("stacked-point sweep diverges from scalar stream")
	}
}

// TestStreamBatchScalarFallback drives the unbatchable path: Configure
// hooks that diverge MaxPhaseSlots across a group force the per-trial
// scalar fallback, which must deliver the same results as Stream.
func TestStreamBatchScalarFallback(t *testing.T) {
	specs := jamSpecs(96, 6)
	for i := range specs {
		caps := 1<<20 + i // distinct per lane: unbatchable
		specs[i].Configure = func(o *engine.Options) { o.MaxPhaseSlots = caps }
	}
	want := &recordingSink{}
	if err := Stream(context.Background(), 1, specs, want); err != nil {
		t.Fatal(err)
	}
	got := &recordingSink{}
	if err := StreamBatch(context.Background(), 1, 4, specs, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.spent, want.spent) {
		t.Fatal("scalar fallback diverges from scalar stream")
	}
}

// TestStreamBatchPartialDeliveredCountsTrials pins the re-shaped
// PartialError contract: Delivered counts trials (not batch groups),
// and the failing sink stops the stream with the delivered prefix
// flushed.
func TestStreamBatchPartialDeliveredCountsTrials(t *testing.T) {
	specs := jamSpecs(96, 16)
	failAt := 9 // mid-group for width 4
	sink := &batchFailSink{failAt: failAt}
	err := StreamBatch(context.Background(), 2, 4, specs, sink)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if pe.Delivered != failAt {
		t.Fatalf("Delivered = %d, want %d (trials, not groups)", pe.Delivered, failAt)
	}
	if sink.flushes != 1 {
		t.Fatalf("Flush ran %d times on early stop, want once", sink.flushes)
	}
}

// TestStreamBatchValidationError pins early-stop shape when a group's
// options are invalid: a *PartialError naming the failing trial range,
// with the preceding groups delivered.
func TestStreamBatchValidationError(t *testing.T) {
	specs := jamSpecs(96, 8)
	bad := TrialSpec{Params: core.Params{N: -1}, Seed: 1}
	specs = append(specs, bad)
	rec := &recordingSink{}
	err := StreamBatch(context.Background(), 1, 4, specs, rec)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if pe.Delivered != 8 {
		t.Fatalf("Delivered = %d, want 8", pe.Delivered)
	}
}

// TestStreamBatchCancellation pins context cancellation: a canceled
// sweep surfaces context.Canceled through the *PartialError with a
// trial-counted Delivered prefix already at the sinks.
func TestStreamBatchCancellation(t *testing.T) {
	specs := jamSpecs(96, 24)
	ctx, cancel := context.WithCancel(context.Background())
	stopAfter := 8
	rec := &recordingSink{}
	cancelSink := sinkFunc(func(i int, r *engine.Result) error {
		if i == stopAfter-1 {
			cancel()
		}
		return nil
	})
	// procs=1 runs the inline StreamMap path, which checks ctx before
	// every group — the cancel is guaranteed to be observed mid-sweep.
	err := StreamBatch(ctx, 1, 4, specs, rec, cancelSink)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the partial error, got %v", pe.Err)
	}
	if pe.Delivered != len(rec.order) {
		t.Fatalf("Delivered = %d but %d trials reached the sink", pe.Delivered, len(rec.order))
	}
	for i, got := range rec.order {
		if got != i {
			t.Fatalf("delivered prefix out of order: %v", rec.order)
		}
	}
}

// batchFailSink accepts trials until failAt, then errors, counting
// flushes (failingSink in stream_test.go does not).
type batchFailSink struct {
	failAt  int
	flushes int
}

func (f *batchFailSink) Trial(i int, r *engine.Result) error {
	if i == f.failAt {
		return fmt.Errorf("sink full at trial %d", i)
	}
	return nil
}

func (f *batchFailSink) Flush() error { f.flushes++; return nil }

// sinkFunc adapts a function to the Sink interface (no-op Flush).
type sinkFunc func(i int, r *engine.Result) error

func (f sinkFunc) Trial(i int, r *engine.Result) error { return f(i, r) }
func (f sinkFunc) Flush() error                        { return nil }
