package sink

import (
	"bufio"
	"io"
	"strconv"
	"unicode"
	"unicode/utf8"

	"rcbcast/internal/engine"
)

// Record is the flat per-trial summary the NDJSON and CSV sinks emit:
// the scalar outcome of one engine execution, without the O(n) NodeCosts
// vector, so a million-trial output file stays proportional to the
// trial count, not to trials·nodes.
type Record struct {
	Trial          int    `json:"trial"`
	N              int    `json:"n"`
	Informed       int    `json:"informed"`
	Stranded       int    `json:"stranded"`
	Dead           int    `json:"dead"`
	Completed      bool   `json:"completed"`
	Rounds         int    `json:"rounds"`
	Slots          int64  `json:"slots"`
	AliceCost      int64  `json:"alice_cost"`
	NodeMedianCost int64  `json:"node_median_cost"`
	NodeMaxCost    int64  `json:"node_max_cost"`
	AdversarySpent int64  `json:"adversary_spent"`
	Strategy       string `json:"strategy"`
}

// NewRecord summarizes trial i's result.
func NewRecord(i int, r *engine.Result) Record {
	return Record{
		Trial:          i,
		N:              r.N,
		Informed:       r.Informed,
		Stranded:       r.Stranded,
		Dead:           r.Dead,
		Completed:      r.Completed,
		Rounds:         r.Rounds,
		Slots:          r.SlotsSimulated,
		AliceCost:      r.Alice.Cost,
		NodeMedianCost: r.NodeCost.Median,
		NodeMaxCost:    r.NodeCost.Max,
		AdversarySpent: r.AdversarySpent,
		Strategy:       r.StrategyName,
	}
}

// csvHeader lists the CSV columns, matching Record's field order.
var csvHeader = []string{
	"trial", "n", "informed", "stranded", "dead", "completed", "rounds",
	"slots", "alice_cost", "node_median_cost", "node_max_cost",
	"adversary_spent", "strategy",
}

// appendJSON renders the record as one JSON line into buf, byte for
// byte what encoding/json's Encoder emits for Record (field order, no
// spaces, HTML-safe string escaping, trailing newline) — without the
// reflection walk and per-trial buffer allocations.
func (rec *Record) appendJSON(buf []byte) []byte {
	buf = append(buf, `{"trial":`...)
	buf = strconv.AppendInt(buf, int64(rec.Trial), 10)
	buf = append(buf, `,"n":`...)
	buf = strconv.AppendInt(buf, int64(rec.N), 10)
	buf = append(buf, `,"informed":`...)
	buf = strconv.AppendInt(buf, int64(rec.Informed), 10)
	buf = append(buf, `,"stranded":`...)
	buf = strconv.AppendInt(buf, int64(rec.Stranded), 10)
	buf = append(buf, `,"dead":`...)
	buf = strconv.AppendInt(buf, int64(rec.Dead), 10)
	buf = append(buf, `,"completed":`...)
	buf = strconv.AppendBool(buf, rec.Completed)
	buf = append(buf, `,"rounds":`...)
	buf = strconv.AppendInt(buf, int64(rec.Rounds), 10)
	buf = append(buf, `,"slots":`...)
	buf = strconv.AppendInt(buf, rec.Slots, 10)
	buf = append(buf, `,"alice_cost":`...)
	buf = strconv.AppendInt(buf, rec.AliceCost, 10)
	buf = append(buf, `,"node_median_cost":`...)
	buf = strconv.AppendInt(buf, rec.NodeMedianCost, 10)
	buf = append(buf, `,"node_max_cost":`...)
	buf = strconv.AppendInt(buf, rec.NodeMaxCost, 10)
	buf = append(buf, `,"adversary_spent":`...)
	buf = strconv.AppendInt(buf, rec.AdversarySpent, 10)
	buf = append(buf, `,"strategy":`...)
	buf = appendJSONString(buf, rec.Strategy)
	buf = append(buf, '}', '\n')
	return buf
}

const hexDigits = "0123456789abcdef"

// appendJSONString escapes s exactly as encoding/json does with HTML
// escaping on (the Encoder default): quotes, backslashes, control
// characters, plus <, >, & and U+2028/U+2029. Strategy names are plain
// ASCII in practice, so the fast path is a straight copy.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch c {
			case '"', '\\':
				buf = append(buf, '\\', c)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// NDJSON writes one JSON line (a Record) per trial, encoding into a
// reused per-sink buffer — one Write per line, exactly the write
// pattern (and output bytes) of the json.Encoder it replaces, so the
// first write error still stops the stream at the same trial: Trial
// keeps returning it, and Flush surfaces it for streams that never
// deliver another trial.
type NDJSON struct {
	w   io.Writer
	buf []byte
	err error
}

// NewNDJSON returns an NDJSON sink writing to w.
func NewNDJSON(w io.Writer) *NDJSON { return &NDJSON{w: w} }

// Trial implements sim.Sink.
func (s *NDJSON) Trial(i int, r *engine.Result) error {
	if s.err != nil {
		return s.err
	}
	rec := NewRecord(i, r)
	s.buf = rec.appendJSON(s.buf[:0])
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
	return s.err
}

// Flush implements sim.Sink.
func (s *NDJSON) Flush() error { return s.err }

// CSV writes a header plus one row (a Record) per trial. A stream with
// zero trials produces an empty file. Rows are rendered into a reused
// scratch buffer and buffered through a bufio.Writer, mirroring the
// encoding/csv writer it replaces (including its quoting rules and its
// error timing: write errors surface when the buffer flushes).
type CSV struct {
	w      *bufio.Writer
	buf    []byte
	header bool
}

// NewCSV returns a CSV sink writing to w.
func NewCSV(w io.Writer) *CSV { return &CSV{w: bufio.NewWriter(w)} }

// Trial implements sim.Sink.
func (s *CSV) Trial(i int, r *engine.Result) error {
	if !s.header {
		s.header = true
		s.buf = s.buf[:0]
		for j, col := range csvHeader {
			if j > 0 {
				s.buf = append(s.buf, ',')
			}
			s.buf = append(s.buf, col...)
		}
		s.buf = append(s.buf, '\n')
		if _, err := s.w.Write(s.buf); err != nil {
			return err
		}
	}
	rec := NewRecord(i, r)
	b := s.buf[:0]
	b = strconv.AppendInt(b, int64(rec.Trial), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.N), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Informed), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Stranded), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Dead), 10)
	b = append(b, ',')
	b = strconv.AppendBool(b, rec.Completed)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(rec.Rounds), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, rec.Slots, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, rec.AliceCost, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, rec.NodeMedianCost, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, rec.NodeMaxCost, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, rec.AdversarySpent, 10)
	b = append(b, ',')
	b = appendCSVField(b, rec.Strategy)
	b = append(b, '\n')
	s.buf = b
	_, err := s.w.Write(s.buf)
	return err
}

// appendCSVField appends the strategy name with encoding/csv's quoting
// rules (comma-separated, LF-terminated writer): quote when the field
// contains a comma, quote, CR or LF, begins with a space, or is the
// literal `\.`; inner quotes double.
func appendCSVField(buf []byte, field string) []byte {
	if !csvFieldNeedsQuotes(field) {
		return append(buf, field...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(field); i++ {
		if field[i] == '"' {
			buf = append(buf, '"', '"')
		} else {
			buf = append(buf, field[i])
		}
	}
	return append(buf, '"')
}

func csvFieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		return true
	}
	for i := 0; i < len(field); i++ {
		switch field[i] {
		case ',', '"', '\r', '\n':
			return true
		}
	}
	r, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r)
}

// Flush implements sim.Sink.
func (s *CSV) Flush() error {
	return s.w.Flush()
}
