package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
)

// recordingSink captures the delivery sequence: indices in arrival
// order plus a result fingerprint per trial.
type recordingSink struct {
	order   []int
	spent   []int64
	flushes int
}

func (r *recordingSink) Trial(i int, res *engine.Result) error {
	r.order = append(r.order, i)
	r.spent = append(r.spent, res.AdversarySpent)
	return nil
}

func (r *recordingSink) Flush() error { r.flushes++; return nil }

// TestStreamDeliversInOrder pins the session's core contract: every
// trial delivered exactly once, in index order, then one Flush.
func TestStreamDeliversInOrder(t *testing.T) {
	specs := jamSpecs(128, 12)
	rec := &recordingSink{}
	if err := Stream(context.Background(), 4, specs, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.order) != len(specs) {
		t.Fatalf("delivered %d of %d trials", len(rec.order), len(specs))
	}
	for i, got := range rec.order {
		if got != i {
			t.Fatalf("delivery order %v not the trial order", rec.order)
		}
	}
	if rec.flushes != 1 {
		t.Fatalf("Flush ran %d times, want once", rec.flushes)
	}
}

// TestStreamSinkOrderProcsEquivalence is the streaming determinism
// contract one layer up from RunTrials: the full delivery sequence —
// indices and results — is identical for every worker count.
func TestStreamSinkOrderProcsEquivalence(t *testing.T) {
	specs := jamSpecs(128, 16)
	want := &recordingSink{}
	if err := Stream(context.Background(), 1, specs, want); err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{0, 2, 8, 16} {
		got := &recordingSink{}
		if err := Stream(context.Background(), procs, specs, got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.order, want.order) || !reflect.DeepEqual(got.spent, want.spent) {
			t.Fatalf("procs=%d: delivery sequence diverges from sequential", procs)
		}
	}
}

// TestStreamMatchesEngineRun pins the session to the engine: streamed
// results equal a direct engine.Run of the same options.
func TestStreamMatchesEngineRun(t *testing.T) {
	specs := jamSpecs(128, 3)
	var got []*engine.Result
	err := Stream(context.Background(), 2, specs, collect(func() []*engine.Result {
		got = make([]*engine.Result, len(specs))
		return got
	}()))
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := engine.Run(engine.Options{
			Params:   spec.Params,
			Seed:     spec.Seed,
			Strategy: adversary.FullJam{},
			Pool:     energy.NewPool(1 << 10),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("trial %d diverges from direct engine.Run", i)
		}
	}
}

// TestStreamBoundedLiveResults asserts the memory bound the streaming
// API exists for: across a sweep several thousand times larger than the
// window, the number of live results — started but not yet delivered to
// the counting sink — never exceeds streamWindow(procs) = O(procs).
func TestStreamBoundedLiveResults(t *testing.T) {
	const procs = 4
	trials := 100_000
	if testing.Short() {
		trials = 5_000
	}
	var started, delivered, maxLive atomic.Int64
	specs := make([]TrialSpec, trials)
	for i := range specs {
		specs[i] = TrialSpec{
			Params: core.PracticalParams(16, 2),
			Seed:   TrialSeed(1, i),
			// The strategy factory runs once at each trial's start — the
			// earliest hook a spec offers — so started-delivered counts
			// results that are live (running or awaiting delivery).
			Strategy: func() adversary.Strategy {
				live := started.Add(1) - delivered.Load()
				for {
					old := maxLive.Load()
					if live <= old || maxLive.CompareAndSwap(old, live) {
						break
					}
				}
				return adversary.Null{}
			},
		}
	}
	count := 0
	err := Stream(context.Background(), procs, specs, countingSink{n: &count, delivered: &delivered})
	if err != nil {
		t.Fatal(err)
	}
	if count != trials {
		t.Fatalf("delivered %d of %d trials", count, trials)
	}
	if peak, window := maxLive.Load(), int64(streamWindow(procs)); peak > window {
		t.Fatalf("peak live results %d exceeds the O(procs) window %d", peak, window)
	} else {
		t.Logf("peak live results %d over %d trials (window %d)", peak, trials, window)
	}
}

// countingSink counts deliveries for the bounded-live assertion.
type countingSink struct {
	n         *int
	delivered *atomic.Int64
}

func (c countingSink) Trial(int, *engine.Result) error {
	*c.n++
	c.delivered.Add(1)
	return nil
}

func (countingSink) Flush() error { return nil }

// TestStreamCancellationTyped cancels mid-sweep and asserts the typed
// partial error: *PartialError wrapping context.Canceled, a delivered
// prefix, and Flush still invoked on every sink.
func TestStreamCancellationTyped(t *testing.T) {
	for _, procs := range []int{1, 4} {
		specs := jamSpecs(128, 64)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		rec := &recordingSink{}
		stopAt := 5
		err := Stream(ctx, procs, specs, FuncCancelSink(func(i int) {
			if i == stopAt {
				cancel()
			}
		}), rec)
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("procs=%d: want *PartialError, got %v", procs, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("procs=%d: error must unwrap to context.Canceled: %v", procs, err)
		}
		if pe.Delivered <= stopAt || pe.Delivered >= len(specs) {
			t.Fatalf("procs=%d: delivered %d, want a strict mid-sweep prefix past trial %d",
				procs, pe.Delivered, stopAt)
		}
		if len(rec.order) != pe.Delivered {
			t.Fatalf("procs=%d: sink saw %d trials, PartialError says %d", procs, len(rec.order), pe.Delivered)
		}
		if rec.flushes != 1 {
			t.Fatalf("procs=%d: Flush must run on early stop (ran %d times)", procs, rec.flushes)
		}
	}
}

// FuncCancelSink calls fn with each delivered index (no-op Flush).
type FuncCancelSink func(i int)

func (f FuncCancelSink) Trial(i int, _ *engine.Result) error { f(i); return nil }
func (FuncCancelSink) Flush() error                          { return nil }

// TestStreamTrialErrorDeterministic mirrors Map's error rule: the
// lowest failing trial index wins, whatever the schedule, and earlier
// trials are still delivered.
func TestStreamTrialErrorDeterministic(t *testing.T) {
	mkSpecs := func() []TrialSpec {
		specs := jamSpecs(64, 10)
		specs[3].Params.N = -1 // invalid: fails engine validation
		specs[7].Params.N = -1
		return specs
	}
	for _, procs := range []int{1, 8} {
		rec := &recordingSink{}
		err := Stream(context.Background(), procs, mkSpecs(), rec)
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("procs=%d: want *PartialError, got %v", procs, err)
		}
		if pe.Delivered != 3 || !strings.Contains(err.Error(), "trial 3") {
			t.Fatalf("procs=%d: want deterministic stop at trial 3, got delivered=%d err=%v",
				procs, pe.Delivered, err)
		}
		if !reflect.DeepEqual(rec.order, []int{0, 1, 2}) {
			t.Fatalf("procs=%d: delivered prefix %v, want [0 1 2]", procs, rec.order)
		}
	}
}

// TestStreamSinkErrorStops: a failing sink stops the stream with its
// error and the delivered count.
func TestStreamSinkErrorStops(t *testing.T) {
	specs := jamSpecs(64, 8)
	sinkErr := errors.New("sink full")
	err := Stream(context.Background(), 4, specs, failingSink{at: 2, err: sinkErr})
	var pe *PartialError
	if !errors.As(err, &pe) || !errors.Is(err, sinkErr) || pe.Delivered != 2 {
		t.Fatalf("want *PartialError{Delivered: 2} wrapping the sink error, got %v", err)
	}
}

type failingSink struct {
	at  int
	err error
}

func (f failingSink) Trial(i int, _ *engine.Result) error {
	if i == f.at {
		return f.err
	}
	return nil
}

func (failingSink) Flush() error { return nil }

// TestStreamMapGeneric exercises the generic substrate with a
// non-engine payload and verifies in-order delivery.
func TestStreamMapGeneric(t *testing.T) {
	var got []int
	err := StreamMap(context.Background(), 8, 100,
		func(_ context.Context, i int) (int, error) { return i * i, nil },
		func(i, v int) error {
			if v != i*i {
				t.Fatalf("trial %d delivered %d", i, v)
			}
			got = append(got, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order %v", got)
		}
	}
	if len(got) != 100 {
		t.Fatalf("delivered %d of 100", len(got))
	}
}

// TestStreamEmpty: a zero-trial stream still flushes its sinks.
func TestStreamEmpty(t *testing.T) {
	rec := &recordingSink{}
	if err := Stream(context.Background(), 4, nil, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.order) != 0 || rec.flushes != 1 {
		t.Fatalf("empty stream: %+v", rec)
	}
}

// TestRunTrialsErrorCompatibility pins the wrapper's historical error
// shape: "sim: trial i: ..." with the lowest failing index.
func TestRunTrialsErrorCompatibility(t *testing.T) {
	specs := jamSpecs(64, 6)
	specs[2].Params.N = -1
	_, err := RunTrials(4, specs)
	if err == nil || !strings.HasPrefix(err.Error(), "sim: trial 2: ") {
		t.Fatalf("compatibility error shape broken: %v", err)
	}
}
