package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 1, 2, 3)
	b := New(42, 1, 2, 3)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestPathSensitivity(t *testing.T) {
	cases := []struct {
		name string
		a, b *Stream
	}{
		{"different seed", New(1), New(2)},
		{"different path", New(1, 7), New(1, 8)},
		{"path order", New(1, 2, 3), New(1, 3, 2)},
		{"path length", New(1, 2), New(1, 2, 0)},
		{"zero vs none", New(1, 0), New(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			same := 0
			for i := 0; i < 64; i++ {
				if tc.a.Uint64() == tc.b.Uint64() {
					same++
				}
			}
			if same > 2 {
				t.Fatalf("streams should differ, but %d/64 draws matched", same)
			}
		})
	}
}

func TestMixOrderSensitive(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix must be order-sensitive")
	}
	if Mix() == 0 {
		t.Fatal("Mix() of empty path must be a usable nonzero key")
	}
	if Mix(0) == Mix(0, 0) {
		t.Fatal("Mix must distinguish path lengths even with zero parts")
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(99)
	before := parent.Derive(5)
	// Consuming parent draws must not affect later derivations.
	for i := 0; i < 10; i++ {
		parent.Uint64()
	}
	after := parent.Derive(5)
	for i := 0; i < 100; i++ {
		if before.Uint64() != after.Uint64() {
			t.Fatal("Derive must not depend on parent draw position")
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var st Stream
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[st.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-value stream produced %d/100 distinct values", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	st := New(7)
	for i := 0; i < 100000; i++ {
		f := st.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	st := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += st.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliClamps(t *testing.T) {
	st := New(3)
	for i := 0; i < 100; i++ {
		if st.Bernoulli(0) {
			t.Fatal("Bernoulli(0) must be false")
		}
		if st.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) must be false")
		}
		if !st.Bernoulli(1) {
			t.Fatal("Bernoulli(1) must be true")
		}
		if !st.Bernoulli(2) {
			t.Fatal("Bernoulli(2) must be true")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		st := New(5, uint64(p*1000))
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if st.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		// 5 sigma tolerance.
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("Bernoulli(%v) frequency = %v, want within %v", p, got, tol)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	st := New(13)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := st.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	st := New(17)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[st.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d occurred %d times, want ~%v", n, v, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	st := New(19)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := st.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	st := New(23)
	if g := st.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	if g := st.Geometric(1.5); g != 0 {
		t.Fatalf("Geometric(1.5) = %d, want 0", g)
	}
	if g := st.Geometric(0); g != math.MaxInt {
		t.Fatalf("Geometric(0) = %d, want MaxInt", g)
	}
	if g := st.Geometric(-1); g != math.MaxInt {
		t.Fatalf("Geometric(-1) = %d, want MaxInt", g)
	}
}

func TestGeometricMean(t *testing.T) {
	// E[Geometric(p)] = (1-p)/p.
	for _, p := range []float64{0.5, 0.1, 0.01} {
		st := New(29, uint64(1/p))
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(st.Geometric(p))
		}
		mean := sum / n
		want := (1 - p) / p
		sd := math.Sqrt(1-p) / p // std dev of Geometric(p)
		if math.Abs(mean-want) > 5*sd/math.Sqrt(n) {
			t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
		}
	}
}

func TestGeometricMatchesBernoulliProcess(t *testing.T) {
	// The number of failures before the first success must follow the same
	// law as counting Bernoulli trials. Kolmogorov-Smirnov style check on
	// the empirical CDF at a few points.
	const p = 0.2
	st := New(31)
	const n = 50000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[st.Geometric(p)]++
	}
	for _, k := range []int{0, 1, 2, 5} {
		want := math.Pow(1-p, float64(k)) * p
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/n) {
			t.Errorf("P[G=%d] = %v, want ~%v", k, got, want)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	st := New(37)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := st.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	st := New(41)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := st.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestSeedRoundTrip(t *testing.T) {
	st := New(42, 7, 9)
	clone := New(st.Seed())
	for i := 0; i < 100; i++ {
		if st.Uint64() != clone.Uint64() {
			t.Fatal("stream recreated from Seed() must replay identically")
		}
	}
}

func TestMixPropertyDistinctness(t *testing.T) {
	// Property: distinct short paths essentially never collide.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix(a) != Mix(b) && Mix(1, a) != Mix(1, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Each of the 64 bit positions should be set about half the time.
	st := New(43)
	const n = 64000
	var ones [64]int
	for i := 0; i < n; i++ {
		v := st.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if math.Abs(float64(c)-n/2) > 5*math.Sqrt(n)/2 {
			t.Errorf("bit %d set %d/%d times", b, c, n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	st := New(1)
	for i := 0; i < b.N; i++ {
		_ = st.Uint64()
	}
}

func BenchmarkGeometric(b *testing.B) {
	st := New(1)
	for i := 0; i < b.N; i++ {
		_ = st.Geometric(0.01)
	}
}
