// AVX2 draw kernel: eight geometric skips per call, bit-identical to
// eight scalar GeometricLnQ draws. The xoshiro steps run on the integer
// ports while the eight log tails are evaluated four lanes wide on the
// vector ports. Every vector op is the plain IEEE-754 operation of its
// scalar counterpart and the multiply/add sequence mirrors logPortable
// exactly (no FMA), so lane results carry the identical roundings.
//
// The only departure from the scalar operation sequence is the final
// quotient: the kernel computes qm = l * (1/lnQ) instead of l / lnQ to
// stay off the divider (whose throughput bounds the whole call), which
// is NOT the same rounding. It is used only when provably safe: the
// relative error of qm versus the scalar quotient q is < 1e-15, so when
// qm sits further than (1e-13·qm + 1e-13) from every integer, both lie
// in the same unit interval and share a floor. Lanes too close to an
// integer — probability ~1e-13 — and lanes near the MaxInt sentinel
// band are recomputed with the scalar's exact division in the fixup
// tail. geoBlock8SelfCheck in geoblock_amd64.go verifies the whole
// contract bit-for-bit at start-up before this kernel is ever used.

#include "textflag.h"

DATA kMantMask<>+0(SB)/8, $0x000FFFFFFFFFFFFF
GLOBL kMantMask<>(SB), RODATA|NOPTR, $8
DATA kSqrtMant<>+0(SB)/8, $0x0006A09E667F3BCD
GLOBL kSqrtMant<>(SB), RODATA|NOPTR, $8
// 0x3FE doubles as the rebuilt-exponent base and the Frexp bias 1022.
DATA kExp3FE<>+0(SB)/8, $0x00000000000003FE
GLOBL kExp3FE<>(SB), RODATA|NOPTR, $8
DATA kOne<>+0(SB)/8, $0x3FF0000000000000
GLOBL kOne<>(SB), RODATA|NOPTR, $8
DATA kTwo<>+0(SB)/8, $0x4000000000000000
GLOBL kTwo<>(SB), RODATA|NOPTR, $8
DATA kHalf<>+0(SB)/8, $0x3FE0000000000000
GLOBL kHalf<>(SB), RODATA|NOPTR, $8
DATA kInv53<>+0(SB)/8, $0x3CA0000000000000
GLOBL kInv53<>(SB), RODATA|NOPTR, $8
DATA kLn2Hi<>+0(SB)/8, $0x3FE62E42FEE00000
GLOBL kLn2Hi<>(SB), RODATA|NOPTR, $8
DATA kLn2Lo<>+0(SB)/8, $0x3DEA39EF35793C76
GLOBL kLn2Lo<>(SB), RODATA|NOPTR, $8
DATA kL1<>+0(SB)/8, $0x3FE5555555555593
GLOBL kL1<>(SB), RODATA|NOPTR, $8
DATA kL2<>+0(SB)/8, $0x3FD999999997FA04
GLOBL kL2<>(SB), RODATA|NOPTR, $8
DATA kL3<>+0(SB)/8, $0x3FD2492494229359
GLOBL kL3<>(SB), RODATA|NOPTR, $8
DATA kL4<>+0(SB)/8, $0x3FCC71C51D8E78AF
GLOBL kL4<>(SB), RODATA|NOPTR, $8
DATA kL5<>+0(SB)/8, $0x3FC7466496CB03DE
GLOBL kL5<>(SB), RODATA|NOPTR, $8
DATA kL6<>+0(SB)/8, $0x3FC39A09D078C69F
GLOBL kL6<>(SB), RODATA|NOPTR, $8
DATA kL7<>+0(SB)/8, $0x3FC2F112DF3E5244
GLOBL kL7<>(SB), RODATA|NOPTR, $8
// float64(math.MaxInt64/2) == 2^62, the "never fires" sentinel bound.
DATA kThresh<>+0(SB)/8, $0x43D0000000000000
GLOBL kThresh<>(SB), RODATA|NOPTR, $8
// 2^62·(1 - 4.5e-13): quotients above this may straddle the sentinel
// bound once the multiply's rounding error is accounted for; resolved
// by exact division in the fixup tail.
DATA kThreshLo<>+0(SB)/8, $0x43CFFFFFFFFFF000
GLOBL kThreshLo<>(SB), RODATA|NOPTR, $8
DATA kAbsMask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL kAbsMask<>(SB), RODATA|NOPTR, $8
// 1e-13: ~100× the worst-case relative error between l·(1/lnQ) and the
// scalar l/lnQ, used as the near-integer uncertainty margin.
DATA kMargin<>+0(SB)/8, $0x3D3C25C268497682
GLOBL kMargin<>(SB), RODATA|NOPTR, $8

// One xoshiro256** step, storing the 53-bit output to a frame slot.
// Mirrors Stream.u53: raw uses the pre-update s1; the state update
// order is s2^=s0, s3^=s1, s1^=s2, s0^=s3, s2^=t, s3=rotl(s3,45).
#define XOSHIRO_STEP(slot) \
	MOVQ R9, AX;         \
	LEAQ (AX)(AX*4), AX; \
	ROLQ $7, AX;         \
	LEAQ (AX)(AX*8), AX; \
	SHRQ $11, AX;        \
	MOVQ AX, slot;       \
	MOVQ R9, DX;         \
	SHLQ $17, DX;        \
	XORQ R8, R10;        \
	XORQ R9, R11;        \
	XORQ R10, R9;        \
	XORQ R11, R8;        \
	XORQ DX, R10;        \
	ROLQ $45, R11

// Scale four integer draws to uniforms in a ymm: u = raw * 2^-53, with
// exact-zero lanes nudged to 2^-53 (a bitwise OR, since +0 | x == x).
// Uses Y1, Y2, Y3.
#define UNIFORMS(reg) \
	VBROADCASTSD kInv53<>(SB), Y2; \
	VMULPD Y2, reg, reg;           \
	VXORPD Y3, Y3, Y3;             \
	VCMPPD $0, Y3, reg, Y1;        \
	VANDPD Y2, Y1, Y1;             \
	VORPD Y1, reg, reg

// Four geometric draws: Y0 holds the uniforms, Y13 the broadcast
// 1/lnQ. Saves the raw logs to the frame slot lslot (for the exact
// fixup), produces quotient estimates qm in Y11 and the fixup lane
// mask (near-integer or sentinel-band) in AX. Clobbers Y1-Y12.
//
// The log is logPortable line for line: reduce() as integer ops on the
// double bits (branch-free √2/2 adjustment), then the fdlibm
// polynomial with the same association and operation order.
#define GEO4(lslot) \
	VPBROADCASTQ kMantMask<>(SB), Y2; \
	VPAND Y0, Y2, Y1;                 \
	VPBROADCASTQ kSqrtMant<>(SB), Y2; \
	VPSUBQ Y2, Y1, Y3;                \
	VPSRLQ $63, Y3, Y3;               \
	VPBROADCASTQ kExp3FE<>(SB), Y2;   \
	VPADDQ Y2, Y3, Y4;                \
	VPSLLQ $52, Y4, Y4;               \
	VPOR Y1, Y4, Y4;                  \
	VBROADCASTSD kOne<>(SB), Y2;      \
	VSUBPD Y2, Y4, Y4;                \
	VPSRLQ $52, Y0, Y5;               \
	VPBROADCASTQ kExp3FE<>(SB), Y2;   \
	VPADDQ Y2, Y3, Y6;                \
	VPSUBQ Y6, Y5, Y5;                \
	VPSHUFD $0x88, Y5, Y5;            \
	VPERMQ $0x08, Y5, Y5;             \
	VCVTDQ2PD X5, Y5;                 \
	VBROADCASTSD kTwo<>(SB), Y2;      \
	VADDPD Y2, Y4, Y6;                \
	VDIVPD Y6, Y4, Y6;                \
	VMULPD Y6, Y6, Y7;                \
	VMULPD Y7, Y7, Y8;                \
	VBROADCASTSD kL7<>(SB), Y2;       \
	VMULPD Y8, Y2, Y9;                \
	VBROADCASTSD kL5<>(SB), Y2;       \
	VADDPD Y2, Y9, Y9;                \
	VMULPD Y8, Y9, Y9;                \
	VBROADCASTSD kL3<>(SB), Y2;       \
	VADDPD Y2, Y9, Y9;                \
	VMULPD Y8, Y9, Y9;                \
	VBROADCASTSD kL1<>(SB), Y2;       \
	VADDPD Y2, Y9, Y9;                \
	VMULPD Y7, Y9, Y9;                \
	VBROADCASTSD kL6<>(SB), Y2;       \
	VMULPD Y8, Y2, Y10;               \
	VBROADCASTSD kL4<>(SB), Y2;       \
	VADDPD Y2, Y10, Y10;              \
	VMULPD Y8, Y10, Y10;              \
	VBROADCASTSD kL2<>(SB), Y2;       \
	VADDPD Y2, Y10, Y10;              \
	VMULPD Y8, Y10, Y10;              \
	VADDPD Y10, Y9, Y9;               \
	VBROADCASTSD kHalf<>(SB), Y2;     \
	VMULPD Y4, Y2, Y10;               \
	VMULPD Y4, Y10, Y10;              \
	VADDPD Y9, Y10, Y11;              \
	VMULPD Y11, Y6, Y11;              \
	VBROADCASTSD kLn2Lo<>(SB), Y2;    \
	VMULPD Y5, Y2, Y12;               \
	VADDPD Y12, Y11, Y11;             \
	VSUBPD Y11, Y10, Y11;             \
	VSUBPD Y4, Y11, Y11;              \
	VBROADCASTSD kLn2Hi<>(SB), Y2;    \
	VMULPD Y5, Y2, Y12;               \
	VSUBPD Y11, Y12, Y11;             \
	VMOVUPD Y11, lslot;               \
	VMULPD Y13, Y11, Y11;             \
	VROUNDPD $0, Y11, Y3;             \
	VSUBPD Y3, Y11, Y3;               \
	VBROADCASTSD kAbsMask<>(SB), Y2;  \
	VANDPD Y2, Y3, Y3;                \
	VBROADCASTSD kMargin<>(SB), Y2;   \
	VMULPD Y11, Y2, Y4;               \
	VADDPD Y2, Y4, Y4;                \
	VCMPPD $0x12, Y4, Y3, Y5;         \
	VBROADCASTSD kThreshLo<>(SB), Y2; \
	VCMPPD $0x15, Y2, Y11, Y6;        \
	VORPD Y6, Y5, Y5;                 \
	VMOVMSKPD Y5, AX

// func geoBlock8Asm(s *[4]uint64, dst *[8]int, lnQ, invLnQ float64)
TEXT ·geoBlock8Asm(SB), NOSPLIT, $128-32
	MOVQ s+0(FP), SI
	MOVQ 0(SI), R8
	MOVQ 8(SI), R9
	MOVQ 16(SI), R10
	MOVQ 24(SI), R11

	XOSHIRO_STEP(us-128(SP))
	XOSHIRO_STEP(us-120(SP))
	XOSHIRO_STEP(us-112(SP))
	XOSHIRO_STEP(us-104(SP))
	XOSHIRO_STEP(us-96(SP))
	XOSHIRO_STEP(us-88(SP))
	XOSHIRO_STEP(us-80(SP))
	XOSHIRO_STEP(us-72(SP))

	MOVQ R8, 0(SI)
	MOVQ R9, 8(SI)
	MOVQ R10, 16(SI)
	MOVQ R11, 24(SI)

	// 53-bit draws -> whole-number doubles (exact; raw>>11 < 2^53).
	// SSE before any VEX instruction, so no transition stalls.
	XORPS X0, X0
	CVTSQ2SD us-128(SP), X0
	XORPS X1, X1
	CVTSQ2SD us-120(SP), X1
	UNPCKLPD X1, X0
	XORPS X2, X2
	CVTSQ2SD us-112(SP), X2
	XORPS X3, X3
	CVTSQ2SD us-104(SP), X3
	UNPCKLPD X3, X2
	XORPS X4, X4
	CVTSQ2SD us-96(SP), X4
	XORPS X5, X5
	CVTSQ2SD us-88(SP), X5
	UNPCKLPD X5, X4
	XORPS X6, X6
	CVTSQ2SD us-80(SP), X6
	XORPS X7, X7
	CVTSQ2SD us-72(SP), X7
	UNPCKLPD X7, X6

	VINSERTF128 $1, X2, Y0, Y0  // lanes 0-3
	VINSERTF128 $1, X6, Y4, Y14 // lanes 4-7
	VBROADCASTSD invLnQ+24(FP), Y13

	UNIFORMS(Y0)
	UNIFORMS(Y14)

	GEO4(ls-64(SP))
	VMOVUPD Y11, us-128(SP)
	MOVQ AX, R13

	VMOVAPD Y14, Y0
	GEO4(ls-32(SP))
	VMOVUPD Y11, us-96(SP)
	SHLQ $4, AX
	ORQ  AX, R13

	VZEROUPPER

	// Truncate toward zero: the quotient estimates are non-negative, so
	// this is the scalar path's Floor wherever the estimate is certain;
	// flagged lanes are recomputed exactly below.
	MOVQ dst+8(FP), DI
	CVTTSD2SQ us-128(SP), CX
	MOVQ CX, 0(DI)
	CVTTSD2SQ us-120(SP), CX
	MOVQ CX, 8(DI)
	CVTTSD2SQ us-112(SP), CX
	MOVQ CX, 16(DI)
	CVTTSD2SQ us-104(SP), CX
	MOVQ CX, 24(DI)
	CVTTSD2SQ us-96(SP), CX
	MOVQ CX, 32(DI)
	CVTTSD2SQ us-88(SP), CX
	MOVQ CX, 40(DI)
	CVTTSD2SQ us-80(SP), CX
	MOVQ CX, 48(DI)
	CVTTSD2SQ us-72(SP), CX
	MOVQ CX, 56(DI)

	TESTQ R13, R13
	JZ    done
	MOVSD lnQ+16(FP), X1
	MOVSD kThresh<>(SB), X2
	MOVQ  $0x7FFFFFFFFFFFFFFF, BX

	// Exact scalar path for flagged lanes: q = l/lnQ with the scalar
	// draw's own division, sentinel compare, and truncation.
fix:
	BSFQ  R13, CX
	MOVSD ls-64(SP)(CX*8), X0
	DIVSD X1, X0
	UCOMISD X2, X0
	JP  fixsentinel
	JCC fixsentinel
	CVTTSD2SQ X0, DX
	MOVQ DX, (DI)(CX*8)
	JMP  fixnext

fixsentinel:
	MOVQ BX, (DI)(CX*8)

fixnext:
	LEAQ -1(R13), AX
	ANDQ AX, R13
	JNZ  fix

done:
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
