// Package topology defines the neighborhood graph the engine resolves
// reception against — the generalization step from the paper's single
// shared channel to spatial network models.
//
// The paper analyzes a single-hop network: every device hears every
// other device, so the channel is one global medium (a clique). The
// natural generalization — resolve each listener's perception against
// its own neighborhood — subsumes that model and opens two more the
// related work studies: a lattice (the multi-hop grid extension) and
// Gilbert's random geometric graph (n points in the unit square,
// connected within radius r; see Reitzner et al., "Limit theory for the
// Gilbert graph", and Franceschetti et al. on Gilbert continuum
// percolation).
//
// A Topology is a fixed, immutable graph over Alice and the n correct
// nodes. Reception semantics on a topology (engine, DESIGN.md §9):
//
//   - a listener hears a frame iff exactly one *audible* transmitter
//     used the slot and the slot is not jammed; two or more audible
//     transmitters collide into noise; transmitters outside the
//     listener's neighborhood do not collide with it (spatial reuse);
//   - jamming and adversarial injections are global: Carol may position
//     her Byzantine devices anywhere, so the worst case is that every
//     listener is in range of one — the n-uniform threat model carries
//     over unchanged;
//   - the clique resolves through the engine's original global
//     counts/soloKind arrays, byte-identical to the pre-topology
//     engine (pinned by the engine equivalence tests).
//
// Construction is deterministic: a Gilbert graph is drawn from the rng
// stream keyed (seed, StreamActor), so a trial's topology is a pure
// function of its engine seed and results stay reproducible across
// worker counts. StreamActor = 3 is reserved for topology construction
// in the engine's actor-ID key space (Alice = 1, adversary = 2, nodes
// = 16+; DESIGN.md §5.1, §9).
package topology

// StreamActor is the reserved rng actor ID for topology construction.
// Engine streams are keyed (seed, actor, ...); actor 3 belongs to the
// topology layer so graph randomness never collides with protocol
// randomness drawn from the same seed.
const StreamActor uint64 = 3

// Topology is an immutable neighborhood graph over Alice and n correct
// nodes. Implementations must be safe for concurrent readers: both
// engines resolve listens for many nodes in parallel against one
// instance.
type Topology interface {
	// Name returns the topology kind ("clique", "grid", "gilbert").
	Name() string
	// N returns the number of correct nodes.
	N() int
	// Complete reports that every device hears every other device — the
	// engine's licence to use the global-channel fast path.
	Complete() bool
	// AliceHears reports whether Alice and the node are in range of each
	// other (audibility is symmetric: it is used both for the node
	// hearing Alice's inform-phase frames and for Alice hearing the
	// node's request-phase NACKs).
	AliceHears(node int) bool
	// Adjacent reports whether listener hears transmissions from the
	// src node. Irreflexive: Adjacent(v, v) is false.
	Adjacent(src, listener int) bool
	// Degree returns the number of correct nodes adjacent to the node
	// (excluding Alice).
	Degree(node int) int
}

// Clique is the paper's single-hop model: one shared channel, every
// device in range of every other. It is the engine's default and fast
// path.
type Clique struct{ n int }

// NewClique returns the complete topology over n nodes.
func NewClique(n int) Clique { return Clique{n: n} }

func (c Clique) Name() string             { return "clique" }
func (c Clique) N() int                   { return c.n }
func (c Clique) Complete() bool           { return true }
func (c Clique) AliceHears(int) bool      { return true }
func (c Clique) Adjacent(src, l int) bool { return src != l }
func (c Clique) Degree(int) int           { return c.n - 1 }

// ReachableWithin returns the number of nodes within `hops` edge-hops
// of Alice (an Alice→node edge is one hop), or all of Alice's connected
// component when hops < 0. This is the graph-theoretic delivery ceiling:
// the unmodified ε-BROADCAST protocol informs at most the ≤k-hop
// neighborhood of Alice on a sparse topology (nodes informed in the
// final propagation step never relay; DESIGN.md §9), and the multihop
// pipeline exists to push past it.
func ReachableWithin(t Topology, hops int) int {
	n := t.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	var frontier []int
	for v := 0; v < n; v++ {
		if t.AliceHears(v) {
			dist[v] = 1
			frontier = append(frontier, v)
		}
	}
	reached := len(frontier)
	for d := 2; len(frontier) > 0 && (hops < 0 || d <= hops); d++ {
		var next []int
		for _, u := range frontier {
			for v := 0; v < n; v++ {
				if dist[v] < 0 && t.Adjacent(u, v) {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		reached += len(next)
		frontier = next
	}
	return reached
}
