package sink

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"rcbcast/internal/engine"
)

// Record is the flat per-trial summary the NDJSON and CSV sinks emit:
// the scalar outcome of one engine execution, without the O(n) NodeCosts
// vector, so a million-trial output file stays proportional to the
// trial count, not to trials·nodes.
type Record struct {
	Trial          int    `json:"trial"`
	N              int    `json:"n"`
	Informed       int    `json:"informed"`
	Stranded       int    `json:"stranded"`
	Dead           int    `json:"dead"`
	Completed      bool   `json:"completed"`
	Rounds         int    `json:"rounds"`
	Slots          int64  `json:"slots"`
	AliceCost      int64  `json:"alice_cost"`
	NodeMedianCost int64  `json:"node_median_cost"`
	NodeMaxCost    int64  `json:"node_max_cost"`
	AdversarySpent int64  `json:"adversary_spent"`
	Strategy       string `json:"strategy"`
}

// NewRecord summarizes trial i's result.
func NewRecord(i int, r *engine.Result) Record {
	return Record{
		Trial:          i,
		N:              r.N,
		Informed:       r.Informed,
		Stranded:       r.Stranded,
		Dead:           r.Dead,
		Completed:      r.Completed,
		Rounds:         r.Rounds,
		Slots:          r.SlotsSimulated,
		AliceCost:      r.Alice.Cost,
		NodeMedianCost: r.NodeCost.Median,
		NodeMaxCost:    r.NodeCost.Max,
		AdversarySpent: r.AdversarySpent,
		Strategy:       r.StrategyName,
	}
}

// csvHeader lists the CSV columns, matching Record's field order.
var csvHeader = []string{
	"trial", "n", "informed", "stranded", "dead", "completed", "rounds",
	"slots", "alice_cost", "node_median_cost", "node_max_cost",
	"adversary_spent", "strategy",
}

// row renders the record as CSV fields in csvHeader order.
func (rec Record) row() []string {
	return []string{
		strconv.Itoa(rec.Trial),
		strconv.Itoa(rec.N),
		strconv.Itoa(rec.Informed),
		strconv.Itoa(rec.Stranded),
		strconv.Itoa(rec.Dead),
		strconv.FormatBool(rec.Completed),
		strconv.Itoa(rec.Rounds),
		strconv.FormatInt(rec.Slots, 10),
		strconv.FormatInt(rec.AliceCost, 10),
		strconv.FormatInt(rec.NodeMedianCost, 10),
		strconv.FormatInt(rec.NodeMaxCost, 10),
		strconv.FormatInt(rec.AdversarySpent, 10),
		rec.Strategy,
	}
}

// NDJSON writes one JSON line (a Record) per trial. The first write
// error stops the stream: Trial keeps returning it, and Flush surfaces
// it for streams that never deliver another trial.
type NDJSON struct {
	enc *json.Encoder
	err error
}

// NewNDJSON returns an NDJSON sink writing to w.
func NewNDJSON(w io.Writer) *NDJSON { return &NDJSON{enc: json.NewEncoder(w)} }

// Trial implements sim.Sink.
func (s *NDJSON) Trial(i int, r *engine.Result) error {
	if s.err != nil {
		return s.err
	}
	if err := s.enc.Encode(NewRecord(i, r)); err != nil {
		s.err = err
	}
	return s.err
}

// Flush implements sim.Sink.
func (s *NDJSON) Flush() error { return s.err }

// CSV writes a header plus one row (a Record) per trial. A stream with
// zero trials produces an empty file.
type CSV struct {
	w      *csv.Writer
	header bool
}

// NewCSV returns a CSV sink writing to w.
func NewCSV(w io.Writer) *CSV { return &CSV{w: csv.NewWriter(w)} }

// Trial implements sim.Sink.
func (s *CSV) Trial(i int, r *engine.Result) error {
	if !s.header {
		s.header = true
		if err := s.w.Write(csvHeader); err != nil {
			return err
		}
	}
	return s.w.Write(NewRecord(i, r).row())
}

// Flush implements sim.Sink.
func (s *CSV) Flush() error {
	s.w.Flush()
	return s.w.Error()
}
