package rng

import (
	"math"
	"testing"
)

// TestGeoBlock8Asm is the self-check as a visible test: on machines
// with the AVX2 kernel, eight-draw blocks must match eight scalar draws
// bit-for-bit — values and final stream state — across seeds and skip
// distributions from dense schedules to the MaxInt sentinel regime.
func TestGeoBlock8Asm(t *testing.T) {
	if !useGeoBlock8 {
		t.Skip("assembly draw kernel unavailable on this machine; Go block path in use")
	}
	if !geoBlock8SelfCheck() {
		t.Fatal("assembly draw kernel diverges from the scalar draw")
	}
	// Direct spot check with sentinel-heavy lnQ so a regression in the
	// fixup path fails loudly here, not just inside the bool above.
	lnQ := math.Log1p(-1e-300)
	var ref Stream
	ref.Reseed(42)
	st := New(42)
	st.ensure()
	ref.ensure()
	var got [8]int
	geoBlock8Asm(&st.s, &got, lnQ, 1/lnQ)
	for d := 0; d < 8; d++ {
		if want := ref.GeometricLnQ(lnQ); got[d] != want {
			t.Fatalf("draw %d: asm %d, scalar %d", d, got[d], want)
		}
		if got[d] != math.MaxInt {
			t.Fatalf("draw %d: want MaxInt sentinel with p=1e-300, got %d", d, got[d])
		}
	}
}

// TestGeoBlock8AsmExactIntegerQuotient drives the kernel's near-integer
// fixup path deliberately: lnQ is derived from the first draw's own log
// so that q = log(u0)/lnQ is exactly integral, which the multiply fast
// path must flag and resolve with the scalar's division.
func TestGeoBlock8AsmExactIntegerQuotient(t *testing.T) {
	if !useGeoBlock8 {
		t.Skip("assembly draw kernel unavailable on this machine; Go block path in use")
	}
	for _, k := range []float64{1, 2, 3, 7, 1000} {
		var probe Stream
		probe.Reseed(1234)
		probe.ensure()
		u0 := probe.u53()
		lnQ := math.Log(u0) / k // q for draw 0 == k exactly (up to the division's rounding)
		var ref Stream
		ref.Reseed(1234)
		ref.ensure()
		st := New(1234)
		st.ensure()
		var got [8]int
		geoBlock8Asm(&st.s, &got, lnQ, 1/lnQ)
		for d := 0; d < 8; d++ {
			if want := ref.GeometricLnQ(lnQ); got[d] != want {
				t.Fatalf("k=%v draw %d: asm %d, scalar %d", k, d, got[d], want)
			}
		}
	}
}
