package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestProxyCutResults: the armed attach is severed after exactly N
// complete lines; unarmed attaches stream through untouched.
func TestProxyCutResults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 5; i++ {
			io.WriteString(w, `{"n":`+string(rune('0'+i))+"}\n")
		}
	}))
	defer backend.Close()
	p := NewProxy(backend.URL)
	p.CutResults(0, 2)
	front := httptest.NewServer(p)
	defer front.Close()

	read := func() (int, error) {
		resp, err := http.Get(front.URL + "/v1/jobs/x/results")
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return strings.Count(string(data), "\n"), err
	}
	if n, _ := read(); n != 2 {
		t.Fatalf("first attach relayed %d lines, want the cut at 2", n)
	}
	if n, err := read(); n != 5 || err != nil {
		t.Fatalf("second attach relayed %d lines (err %v), want all 5", n, err)
	}
}

// TestProxyDownAndNotReady: down fails everything; not-ready fails only
// the readiness probe.
func TestProxyDownAndNotReady(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"status":"ok"}`)
	}))
	defer backend.Close()
	p := NewProxy(backend.URL)
	front := httptest.NewServer(p)
	defer front.Close()

	get := func(path string) int {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("healthy /readyz = %d", c)
	}
	p.SetNotReady(true)
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", c)
	}
	if c := get("/metrics"); c != http.StatusOK {
		t.Fatalf("draining /metrics = %d, want 200 (only readiness fails)", c)
	}
	p.SetNotReady(false)
	p.SetDown(true)
	if c := get("/readyz"); c != http.StatusBadGateway {
		t.Fatalf("down /readyz = %d, want 502", c)
	}
	if c := get("/metrics"); c != http.StatusBadGateway {
		t.Fatalf("down /metrics = %d, want 502", c)
	}
}

// TestDriveFiresInThresholdOrder: events fire exactly once each, in
// order, as the counter crosses their thresholds.
func TestDriveFiresInThresholdOrder(t *testing.T) {
	var merged atomic.Int64
	var fired []string
	go func() {
		for i := 0; i < 100; i++ {
			merged.Add(10)
			time.Sleep(time.Millisecond)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := Drive(ctx, merged.Load, time.Millisecond,
		Event{Name: "a", AtMerged: 50, Do: func() error { fired = append(fired, "a"); return nil }},
		Event{Name: "b", AtMerged: 200, Do: func() error { fired = append(fired, "b"); return nil }},
	)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(fired, ",") != "a,b" {
		t.Fatalf("events fired as %v, want [a b]", fired)
	}
}

// TestDriveReportsEventError and the sweep-ended-too-early path.
func TestDriveReportsEventError(t *testing.T) {
	boom := errors.New("boom")
	err := Drive(context.Background(), func() int64 { return 100 }, time.Millisecond,
		Event{Name: "x", AtMerged: 1, Do: func() error { return boom }})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), `"x"`) {
		t.Fatalf("Drive error = %v, want wrapped event error naming x", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Drive(ctx, func() int64 { return 0 }, time.Millisecond,
		Event{Name: "never", AtMerged: 10, Do: func() error { return nil }})
	if err == nil || !strings.Contains(err.Error(), "before event") {
		t.Fatalf("Drive on dead ctx = %v, want before-event error", err)
	}
}
