package service

import (
	"sync"
	"testing"
	"time"

	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
)

// setWrapSpecs installs a testWrapSpecs hook and returns its teardown.
// Hook-using tests must not run in parallel.
func setWrapSpecs(hook func(*Job, []sim.TrialSpec) []sim.TrialSpec) func() {
	testWrapSpecs = hook
	return func() { testWrapSpecs = nil }
}

// setExtraSinks installs a testExtraSinks hook and returns its teardown.
func setExtraSinks(hook func(*Job) []sim.Sink) func() {
	testExtraSinks = hook
	return func() { testExtraSinks = nil }
}

// trialGate holds a job mid-run deterministically: trials with sweep
// index >= free park inside their Configure hook (on the engine worker,
// before the trial executes) until release. Tests use it to pin
// "genuinely running" states — cancellation, live streaming, queue
// occupancy — without timing guesses.
type trialGate struct {
	free        int
	released    chan struct{}
	parked      chan struct{}
	parkOnce    sync.Once
	releaseOnce sync.Once
}

func newTrialGate(free int) *trialGate {
	return &trialGate{free: free, released: make(chan struct{}), parked: make(chan struct{})}
}

// wrap is a testWrapSpecs hook.
func (g *trialGate) wrap(_ *Job, specs []sim.TrialSpec) []sim.TrialSpec {
	out := append([]sim.TrialSpec(nil), specs...)
	for i := range out {
		if i < g.free {
			continue
		}
		inner := out[i].Configure
		out[i].Configure = func(o *engine.Options) {
			g.parkOnce.Do(func() { close(g.parked) })
			<-g.released
			if inner != nil {
				inner(o)
			}
		}
	}
	return out
}

// release lets every parked (and future) trial proceed.
func (g *trialGate) release() {
	g.releaseOnce.Do(func() { close(g.released) })
}

// waitParked blocks until some trial reached the gate.
func (g *trialGate) waitParked(t *testing.T) {
	t.Helper()
	select {
	case <-g.parked:
	case <-time.After(20 * time.Second):
		t.Fatal("no trial reached the gate")
	}
}
