package sink

import (
	"container/heap"
	"sort"

	"rcbcast/internal/engine"
)

// Scored couples a retained result with its trial index and score.
type Scored struct {
	Trial  int
	Score  float64
	Result *engine.Result
}

// TopK retains the K highest-scoring trials of a sweep in O(K) space —
// the "show me the worst runs" sink: score by adversary spend, slots
// simulated, stranded count, and a million-trial sweep keeps only its K
// extremes live. Ties keep the earlier trial; with in-order delivery
// the retained set is deterministic for every worker count.
type TopK struct {
	k     int
	score func(*engine.Result) float64
	h     scoredHeap
}

// NewTopK returns a TopK sink retaining the k highest scores.
func NewTopK(k int, score func(*engine.Result) float64) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, score: score}
}

// Trial implements sim.Sink.
func (t *TopK) Trial(i int, r *engine.Result) error {
	s := Scored{Trial: i, Score: t.score(r), Result: r}
	if t.h.Len() < t.k {
		heap.Push(&t.h, s)
		return nil
	}
	if s.Score > t.h[0].Score {
		t.h[0] = s
		heap.Fix(&t.h, 0)
	}
	return nil
}

// Flush implements sim.Sink.
func (*TopK) Flush() error { return nil }

// Results returns the retained trials, highest score first (ties by
// lower trial index).
func (t *TopK) Results() []Scored {
	out := append([]Scored(nil), t.h...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Trial < out[j].Trial
	})
	return out
}

// scoredHeap is a min-heap on score; on equal scores the later trial is
// "smaller" so it is evicted first and the earliest trials survive.
type scoredHeap []Scored

func (h scoredHeap) Len() int { return len(h) }
func (h scoredHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Trial > h[j].Trial
}
func (h scoredHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x any)   { *h = append(*h, x.(Scored)) }
func (h *scoredHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
