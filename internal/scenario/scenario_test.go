package scenario

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
)

// quickScenario bounds a scenario to test scale.
func quickScenario(sc Scenario) Scenario {
	sc.N = 64
	if sc.Overrides.ExtraRounds == 0 && sc.Overrides.MaxRound == 0 {
		sc.Overrides.ExtraRounds = 6
	}
	return sc
}

func TestScenarioJSONRoundTripByteStable(t *testing.T) {
	cases := []Scenario{
		{N: 128, K: 2, Seed: 7, Adversary: AdversarySpec{Kind: "full"}, Budget: BudgetSpec{Pool: 4096}},
		{N: 64, Decoy: true, Reactive: true, Adversary: AdversarySpec{Kind: "reactive"},
			Budget: BudgetSpec{ModelC: 8, ModelF: 1.0 / 25}, Overrides: Overrides{ExtraRounds: 8}},
		{N: 256, K: 3, Paper: true, Quiet: "fraction", Engine: "actors", RecordPhases: true,
			Adversary: AdversarySpec{Kind: "composite", Parts: []AdversarySpec{
				{Kind: "blocker", Inform: true, Propagate: true},
				{Kind: "spoofer", P: 0.3},
			}}},
	}
	for _, e := range All() {
		cases = append(cases, e.Scenario)
	}
	for _, sc := range cases {
		first, err := Encode(sc)
		if err != nil {
			t.Fatalf("encode %q: %v", sc.Name, err)
		}
		decoded, err := Decode(first)
		if err != nil {
			t.Fatalf("decode %q: %v\n%s", sc.Name, err, first)
		}
		second, err := Encode(decoded)
		if err != nil {
			t.Fatalf("re-encode %q: %v", sc.Name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("encode→decode→encode not byte-stable for %q:\n--- first\n%s\n--- second\n%s",
				sc.Name, first, second)
		}
		if !reflect.DeepEqual(sc, decoded) {
			t.Errorf("decode(%q) lost information:\n  in:  %+v\n  out: %+v", sc.Name, sc, decoded)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode([]byte(`{"n": 64, "adversarry": {"kind": "full"}}`)); err == nil {
		t.Fatal("typo'd field must be rejected")
	}
}

// TestBuildAppliesParamsBeforeOptions is the regression test for the
// cmd/rcbcast bug where -adversary reactive mutated params.MaxRound
// *after* opts.Params had been assigned: the scenario layer must
// resolve every parameter effect before options assembly, so the
// engine sees the bounded round count and the reactive grant together.
func TestBuildAppliesParamsBeforeOptions(t *testing.T) {
	sc := Scenario{
		N:         64,
		Adversary: AdversarySpec{Kind: "reactive"},
		Overrides: Overrides{ExtraRounds: 6},
	}
	opts, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.AllowReactive {
		t.Error("reactive kind must imply AllowReactive")
	}
	if want := opts.Params.StartRound + 6; opts.Params.MaxRound != want {
		t.Errorf("opts.Params.MaxRound = %d, want StartRound+6 = %d (param effects must precede options assembly)",
			opts.Params.MaxRound, want)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > opts.Params.MaxRound {
		t.Errorf("run ignored the round bound: ran to round %d, cap %d", res.Rounds, opts.Params.MaxRound)
	}
}

// TestBuildMatchesHandRolledOptions pins the conversion layer against
// hand-assembled engine.Options: identical results, bit for bit.
func TestBuildMatchesHandRolledOptions(t *testing.T) {
	sc := Scenario{
		N: 96, K: 2, Seed: 11, Decoy: true,
		Adversary: AdversarySpec{Kind: "random", P: 0.4},
		Budget:    BudgetSpec{Pool: 2048, DeviceC: 8},
	}
	got, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	params := core.PracticalParams(96, 2)
	params.EnableDecoy()
	bm := energy.DefaultBudgets(8, 2)
	want, err := engine.Run(engine.Options{
		Params:      params,
		Seed:        11,
		Strategy:    adversary.RandomJam{P: 0.4},
		Pool:        energy.NewPool(2048),
		NodeBudget:  bm.Node(96),
		AliceBudget: bm.Alice(96),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scenario run diverged from hand-rolled options:\n got %+v\nwant %+v", got, want)
	}
}

// TestTrialSpecMatchesBuild asserts the two conversion paths agree:
// running a scenario's TrialSpec through the parallel runner equals
// running its Build output directly.
func TestTrialSpecMatchesBuild(t *testing.T) {
	for _, name := range []string{"full-jam", "nack-spoofer", "reactive-decoy", "budgeted-full"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing named scenario %q", name)
		}
		sc = quickScenario(sc)
		sc.Seed = 5
		direct, err := sc.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ts, err := sc.TrialSpec(5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		viaSim, err := sim.RunTrials(1, []sim.TrialSpec{ts})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(direct, viaSim[0]) {
			t.Errorf("%s: TrialSpec and Build runs diverged", name)
		}
	}
}

func TestTrialSpecsSeeding(t *testing.T) {
	sc := quickScenario(Scenario{Adversary: AdversarySpec{Kind: "full"}, Budget: BudgetSpec{Pool: 1024}})
	specs, err := sc.TrialSpecs(9, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("want 4 specs, got %d", len(specs))
	}
	for i, ts := range specs {
		if want := sim.SweepSeed(9, 3, i); ts.Seed != want {
			t.Errorf("spec %d seed = %d, want %d", i, ts.Seed, want)
		}
	}
}

func TestEnginesAgreeOnScenario(t *testing.T) {
	sc := quickScenario(Scenario{Seed: 3, Adversary: AdversarySpec{Kind: "bursty", Burst: 32, Gap: 32}, Budget: BudgetSpec{Pool: 1024}})
	fast, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sc.Engine = "actors"
	actors, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, actors) {
		t.Error("fast and actors engines diverged on the same scenario")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]Scenario{
		"missing n":         {Adversary: AdversarySpec{Kind: "full"}},
		"unknown kind":      {N: 64, Adversary: AdversarySpec{Kind: "warp"}},
		"bad p":             {N: 64, Adversary: AdversarySpec{Kind: "random", P: 1.5}},
		"bad strand":        {N: 64, Adversary: AdversarySpec{Kind: "partition", Strand: 1.5}},
		"bursty no knobs":   {N: 64, Adversary: AdversarySpec{Kind: "bursty"}}, // data specs are explicit; no silent defaults
		"zero-rate spoofer": {N: 64, Adversary: AdversarySpec{Kind: "spoofer"}},
		"empty composite":   {N: 64, Adversary: AdversarySpec{Kind: "composite"}},
		"reactive in composite": {N: 64, Adversary: AdversarySpec{Kind: "composite", Parts: []AdversarySpec{
			{Kind: "reactive"}, {Kind: "full"},
		}}},
		"parts on non-comp":      {N: 64, Adversary: AdversarySpec{Kind: "full", Parts: []AdversarySpec{{Kind: "null"}}}},
		"pool and model":         {N: 64, Budget: BudgetSpec{Pool: 10, ModelC: 1}},
		"negative pool":          {N: 64, Budget: BudgetSpec{Pool: -1}},
		"model_f alone":          {N: 64, Budget: BudgetSpec{ModelF: 0.5}},
		"model_f not a fraction": {N: 64, Budget: BudgetSpec{ModelC: 8, ModelF: 25}}, // 25 ≠ 1/25
		"knob on wrong kind":     {N: 64, Adversary: AdversarySpec{Kind: "full", P: 0.9}},
		"strand on bursty":       {N: 64, Adversary: AdversarySpec{Kind: "bursty", Burst: 8, Gap: 8, Strand: 0.5}},
		"knob on composite":      {N: 64, Adversary: AdversarySpec{Kind: "composite", P: 0.5, Parts: []AdversarySpec{{Kind: "full"}}}},
		"bad engine":             {N: 64, Engine: "warp"},
		"bad quiet":              {N: 64, Quiet: "sometimes"},
		"max and extra":          {N: 64, Overrides: Overrides{MaxRound: 9, ExtraRounds: 2}},
		"bad k":                  {N: 64, K: 1},
		"negative batch":         {N: 64, Batch: -4},
	}
	for name, sc := range cases {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
		}
	}
}

func TestParamsOverrides(t *testing.T) {
	sc := Scenario{
		N: 100, K: 2, Decoy: true, Quiet: "absolute",
		Overrides: Overrides{
			Epsilon: 0.25, C: 2, StartRound: 3, MaxRound: 9,
			DecoyProb: 0.01, ListenBoost: 2,
			LnScale: 2, NScale: 0.5, PolyEstimate: 10000, QuietFrac: 0.125,
		},
	}
	p, err := sc.Params()
	if err != nil {
		t.Fatal(err)
	}
	base := core.PracticalParams(100, 2)
	if p.Epsilon != 0.25 || p.C != 2 || p.StartRound != 3 || p.MaxRound != 9 {
		t.Errorf("scalar overrides not applied: %+v", p)
	}
	if p.Quiet != core.QuietAbsolute {
		t.Errorf("quiet override not applied: %v", p.Quiet)
	}
	if !p.Decoy || p.DecoyProb != 0.01 || p.ListenBoost != 2 {
		t.Errorf("decoy overrides not applied: %+v", p)
	}
	if want := 2 * base.LnN(); p.LnOverride != want {
		t.Errorf("LnOverride = %v, want %v", p.LnOverride, want)
	}
	if p.NOverride != 50 || p.PolyEstimate != 10000 || p.QuietFrac != 0.125 {
		t.Errorf("§4.2 overrides not applied: %+v", p)
	}
}

func TestEnableDecoyConstants(t *testing.T) {
	p := core.PracticalParams(128, 2)
	p.EnableDecoy()
	if !p.Decoy || p.DecoyProb != 0.75/128 || p.ListenBoost != 4 {
		t.Errorf("EnableDecoy constants drifted: %+v", p)
	}
}

// TestScenarioStream drives the streaming façade: trials delivered in
// order with the TrialSpecs seed derivation, identical across procs.
func TestScenarioStream(t *testing.T) {
	sc := Scenario{
		N: 64, K: 2,
		Adversary: AdversarySpec{Kind: "full"},
		Budget:    BudgetSpec{Pool: 1 << 10},
	}
	render := func(procs int) []int64 {
		var spents []int64
		err := sc.Stream(context.Background(), procs, 1, 0, 6,
			sinkFunc(func(i int, r *engine.Result) error {
				if i != len(spents) {
					t.Fatalf("delivery out of order: got %d at position %d", i, len(spents))
				}
				spents = append(spents, r.AdversarySpent)
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		return spents
	}
	seq := render(1)
	if len(seq) != 6 {
		t.Fatalf("delivered %d trials, want 6", len(seq))
	}
	if !reflect.DeepEqual(render(8), seq) {
		t.Fatal("Scenario.Stream diverges across procs")
	}
	// Seeds must match TrialSpecs: trial t of point 0 under base 1.
	specs, err := sc.TrialSpecs(1, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Run(mustBuildWithSeed(t, sc, specs[3].Seed))
	if err != nil {
		t.Fatal(err)
	}
	if want.AdversarySpent != seq[3] {
		t.Fatal("Scenario.Stream seeds diverge from TrialSpecs")
	}
}

// TestScenarioStreamBatch pins the batch field's routing: a scenario
// with Batch > 1 streams through the batched lockstep kernel with sink
// output identical to the scalar stream's.
func TestScenarioStreamBatch(t *testing.T) {
	sc := Scenario{
		N: 64, K: 2,
		Adversary: AdversarySpec{Kind: "full"},
		Budget:    BudgetSpec{Pool: 1 << 10},
	}
	render := func(sc Scenario) []int64 {
		var spents []int64
		err := sc.Stream(context.Background(), 1, 1, 0, 10,
			sinkFunc(func(i int, r *engine.Result) error {
				if i != len(spents) {
					t.Fatalf("delivery out of order: got %d at position %d", i, len(spents))
				}
				spents = append(spents, r.AdversarySpent)
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		return spents
	}
	scalar := render(sc)
	for _, width := range []int{2, 4, 8} {
		sc.Batch = width
		if !reflect.DeepEqual(render(sc), scalar) {
			t.Fatalf("batch=%d stream diverges from the scalar stream", width)
		}
	}
}

// sinkFunc is a local sim.Sink adapter (the sink package would import-cycle).
type sinkFunc func(i int, r *engine.Result) error

func (f sinkFunc) Trial(i int, r *engine.Result) error { return f(i, r) }
func (sinkFunc) Flush() error                          { return nil }

func mustBuildWithSeed(t *testing.T, sc Scenario, seed uint64) engine.Options {
	t.Helper()
	sc.Seed = seed
	opts, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	return opts
}

// TestScenarioRunContext: background context matches Run; canceled
// context yields the engine's typed partial error on both engines.
func TestScenarioRunContext(t *testing.T) {
	sc := Scenario{
		N: 64, K: 2, Seed: 5,
		Adversary: AdversarySpec{Kind: "full"},
		Budget:    BudgetSpec{Pool: 1 << 10},
	}
	want, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunContext diverges from Run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []string{"", "actors"} {
		sc.Engine = eng
		res, err := sc.RunContext(ctx)
		var pe *engine.PartialRunError
		if res != nil || !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %q: want typed partial error, got res=%v err=%v", eng, res, err)
		}
	}
}
