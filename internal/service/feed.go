package service

import (
	"fmt"
	"os"
	"sync"
)

// feed is one job's live result stream: the out.ndjson file plus an
// in-memory watch point so subscribers follow appends without polling
// the filesystem. The file is the single source of truth — a late
// subscriber reads it from byte 0 and gets exactly what an early
// subscriber saw, because the sweep layer's determinism makes the
// file's content a pure function of the job spec (a resume rewrites the
// identical prefix before appending new trials).
//
// Appends come from the job runner's single delivery goroutine;
// subscribers and status queries read concurrently through snapshot.
type feed struct {
	path string

	mu       sync.Mutex
	f        *os.File      // open only while the job runs
	size     int64         // bytes visible to subscribers
	watch    chan struct{} // closed and replaced on every append/reset
	terminal bool          // no further appends will come
}

// newFeed wires a feed to its backing file. Existing bytes (a completed
// or interrupted job from a previous process) are immediately visible;
// terminal is set by the caller from the job's loaded state.
func newFeed(path string, terminal bool) *feed {
	size := int64(0)
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	return &feed{path: path, size: size, watch: make(chan struct{}), terminal: terminal}
}

// openForRun truncates the file and resets the visible size for a job
// (re)start: the run's checkpoint replay rewrites the journaled prefix
// byte-identically, so subscribers that already read past the reset
// simply wait for the size to catch back up — the bytes they hold are
// the bytes being rewritten.
func (fd *feed) openForRun() error {
	f, err := os.OpenFile(fd.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: open results: %w", err)
	}
	fd.mu.Lock()
	fd.f = f
	fd.size = 0
	fd.terminal = false
	fd.notifyLocked()
	fd.mu.Unlock()
	return nil
}

// Write implements io.Writer for the NDJSON sink: append, publish the
// new size, wake subscribers. One call per trial line.
func (fd *feed) Write(p []byte) (int, error) {
	fd.mu.Lock()
	f := fd.f
	fd.mu.Unlock()
	if f == nil {
		return 0, fmt.Errorf("service: results feed is not open")
	}
	n, err := f.Write(p)
	if n > 0 {
		fd.mu.Lock()
		fd.size += int64(n)
		fd.notifyLocked()
		fd.mu.Unlock()
	}
	return n, err
}

// closeRun closes the backing file after a run attempt. terminal marks
// whether the job reached a final state (done/failed/canceled) or will
// resume (shutdown requeue) — subscribers end on terminal, keep waiting
// otherwise.
func (fd *feed) closeRun(terminal bool) {
	fd.mu.Lock()
	if fd.f != nil {
		fd.f.Close()
		fd.f = nil
	}
	fd.terminal = terminal
	fd.notifyLocked()
	fd.mu.Unlock()
}

// setTerminal publishes a terminal transition that happens outside a
// run (canceling a queued job).
func (fd *feed) setTerminal() {
	fd.mu.Lock()
	fd.terminal = true
	fd.notifyLocked()
	fd.mu.Unlock()
}

// reopen marks a terminal feed live again (a failed/canceled job being
// resubmitted): subscribers attached before the run starts wait instead
// of ending early.
func (fd *feed) reopen() {
	fd.mu.Lock()
	fd.terminal = false
	fd.notifyLocked()
	fd.mu.Unlock()
}

// notifyLocked wakes every waiting subscriber. Callers hold fd.mu.
func (fd *feed) notifyLocked() {
	close(fd.watch)
	fd.watch = make(chan struct{})
}

// snapshot returns the visible byte count, a channel closed at the next
// change, and whether the stream is complete. A subscriber streams
// [offset, size), then either returns (terminal and caught up) or waits
// on watch.
func (fd *feed) snapshot() (size int64, watch <-chan struct{}, terminal bool) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.size, fd.watch, fd.terminal
}
