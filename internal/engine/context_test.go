package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/trace"
)

func ctxOpts(seed uint64) Options {
	return Options{
		Params:   core.PracticalParams(128, 2),
		Seed:     seed,
		Strategy: adversary.FullJam{},
		Pool:     energy.NewPool(1 << 12),
	}
}

// TestRunContextMatchesRun: with a live context the run is bit-for-bit
// the plain Run — the cancellation hooks must not perturb anything.
func TestRunContextMatchesRun(t *testing.T) {
	want, err := Run(ctxOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), ctxOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunContext diverges from Run")
	}
	act, err := RunActorsContext(context.Background(), ctxOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(act, want) {
		t.Fatal("RunActorsContext diverges from Run")
	}
}

// TestRunContextPreCanceled: a canceled context stops the run before
// the first phase with the typed partial-run error.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func(context.Context, Options) (*Result, error){
		"sequential": RunContext,
		"actors":     RunActorsContext,
	} {
		res, err := run(ctx, ctxOpts(5))
		if res != nil {
			t.Fatalf("%s: partial run must not return a Result", name)
		}
		var pe *PartialRunError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: want *PartialRunError, got %v", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: must unwrap to context.Canceled: %v", name, err)
		}
		if pe.Slots != 0 {
			t.Fatalf("%s: pre-canceled run simulated %d slots", name, pe.Slots)
		}
	}
}

// cancelAfterPhases cancels its context once n phases have started —
// a deterministic mid-run cancellation hook.
type cancelAfterPhases struct {
	trace.Nop
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfterPhases) PhaseStart(core.Phase) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

// TestRunContextMidRunCancel cancels during execution and checks the
// partial error reports real progress.
func TestRunContextMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := ctxOpts(7)
	tr := &cancelAfterPhases{n: 4, cancel: cancel}
	opts.Tracer = tr
	res, err := RunContext(ctx, opts)
	if res != nil {
		t.Fatal("canceled run must not return a Result")
	}
	var pe *PartialRunError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialRunError, got %v", err)
	}
	if pe.Slots == 0 {
		t.Fatal("mid-run cancellation must report simulated slots")
	}
	if tr.seen != 4 {
		t.Fatalf("run continued %d phases past the cancellation", tr.seen-4)
	}
}
