// Command rcbcast runs a single ε-BROADCAST simulation and prints the
// outcome: delivery, latency, per-device costs, and the adversary's spend.
//
// Runs are described by declarative scenarios (internal/scenario): pick a
// named one, load a JSON file, or assemble one from flags.
//
// Usage:
//
//	rcbcast [flags]
//
//	-scenario full-jam      run a named scenario (see -list-scenarios)
//	-scenario file.json     ... or a scenario from a JSON file
//	-list-scenarios         list named scenarios and adversary kinds
//	-dump-scenario          print the resolved scenario as JSON and exit
//
//	-n 1024                 correct nodes
//	-k 2                    protocol parameter k >= 2
//	-seed 1                 RNG seed
//	-adversary full         adversary spec: KIND[:KNOB=V,...], composed
//	                        with + (e.g. random:p=0.3, blocker:inform,prop,
//	                        blocker:inform+spoofer:p=0.3)
//	-topology clique        topology spec: clique | grid[:w=,reach=] |
//	                        gilbert:r= (see -list-topologies)
//	-list-topologies        list topology kinds and their knobs
//	-pool 16384             adversary energy pool (0 = unlimited)
//	-decoy                  enable the §4.1 decoy defence
//	-engine fast            fast | actors
//	-phases                 print the per-phase trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rcbcast/internal/engine"
	"rcbcast/internal/scenario"
	"rcbcast/internal/topology"
	"rcbcast/internal/trace"
	"rcbcast/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcbcast:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcbcast", flag.ContinueOnError)
	var (
		scn     = fs.String("scenario", "", "named scenario or JSON scenario file (flags override its fields)")
		list    = fs.Bool("list-scenarios", false, "list named scenarios and adversary kinds")
		dump    = fs.Bool("dump-scenario", false, "print the resolved scenario as JSON and exit")
		n       = fs.Int("n", 1024, "number of correct nodes")
		k       = fs.Int("k", 2, "protocol parameter k >= 2")
		seed    = fs.Uint64("seed", 1, "RNG seed")
		adv     = fs.String("adversary", "full", "adversary spec KIND[:KNOB=V,...], composed with +")
		topo    = fs.String("topology", "", "topology spec KIND[:KNOB=V,...] (default clique; see -list-topologies)")
		listTop = fs.Bool("list-topologies", false, "list topology kinds and their knobs")
		pool    = fs.Int64("pool", 1<<14, "adversary energy pool (0 = unlimited)")
		jamP    = fs.Float64("jam-p", 0.5, "per-slot probability for -adversary random")
		strand  = fs.Float64("strand", 0.05, "stranded fraction for -adversary partition")
		decoy   = fs.Bool("decoy", false, "enable the §4.1 decoy defence")
		eng     = fs.String("engine", "fast", "fast|actors")
		batch   = fs.Int("batch", 0, "sweep batch width stamped into the scenario (used by rcexp sweeps; a single run here is unaffected)")
		phases  = fs.Bool("phases", false, "print the per-phase trace")
		traceTo = fs.String("trace", "", "write an event trace: 'text' or 'json' to stdout, or a .ndjson file path")
		paper   = fs.Bool("paper", false, "use PaperParams instead of PracticalParams")
		budgets = fs.Bool("budgets", false, "enforce the paper's device budgets (C=8)")
		showVer = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(out, version.String())
		return nil
	}
	if *list {
		scenario.WriteList(out)
		return nil
	}
	if *listTop {
		topology.WriteList(out)
		return nil
	}

	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var sc scenario.Scenario
	if *scn != "" {
		loaded, err := loadScenario(*scn)
		if err != nil {
			return err
		}
		sc = loaded
	}

	// Flags fill scenario fields they own, but when a scenario file or
	// name was given, only explicitly-set flags override it.
	override := func(name string, apply func()) {
		if *scn == "" || set[name] {
			apply()
		}
	}
	if sc.N == 0 || set["n"] {
		sc.N = *n
	}
	if sc.K == 0 || set["k"] {
		sc.K = *k
	}
	if sc.Seed == 0 || set["seed"] {
		sc.Seed = *seed
	}
	if *scn == "" || set["adversary"] {
		spec, err := scenario.ParseAdversary(*adv)
		if err != nil {
			return err
		}
		sc.Adversary = spec
		if spec.Reactive() && sc.Overrides.MaxRound == 0 && sc.Overrides.ExtraRounds == 0 {
			// An unlimited reactive jammer stalls the protocol forever;
			// bound the run the way the reactive experiments do.
			sc.Overrides.ExtraRounds = 6
		}
	}
	if *topo != "" || set["topology"] {
		spec, err := topology.ParseSpec(*topo)
		if err != nil {
			return err
		}
		// ApplyTopology also bounds sparse runs (ExtraRounds default).
		sc.ApplyTopology(spec)
	}
	// The legacy knob flags target their kind wherever it appears —
	// top-level, inside a composite, or in a loaded scenario — and
	// error when the kind is absent rather than silently running with
	// defaults.
	if set["jam-p"] {
		if !applyKnob(&sc.Adversary, "random", func(a *scenario.AdversarySpec) { a.P = *jamP }) {
			return fmt.Errorf("-jam-p set but the adversary %q has no random part", sc.Adversary)
		}
	}
	if set["strand"] {
		if !applyKnob(&sc.Adversary, "partition", func(a *scenario.AdversarySpec) { a.Strand = *strand }) {
			return fmt.Errorf("-strand set but the adversary %q has no partition part", sc.Adversary)
		}
	}
	override("pool", func() { sc.Budget.Pool = *pool; sc.Budget.ModelC, sc.Budget.ModelF = 0, 0 })
	override("decoy", func() { sc.Decoy = *decoy })
	override("engine", func() { sc.Engine = *eng })
	override("batch", func() { sc.Batch = *batch })
	override("phases", func() { sc.RecordPhases = *phases })
	override("paper", func() { sc.Paper = *paper })
	override("budgets", func() {
		if *budgets {
			sc.Budget.DeviceC = 8
		} else {
			sc.Budget.DeviceC = 0 // explicit -budgets=false disables a scenario's device budgets
		}
	})
	if sc.Engine == "fast" {
		sc.Engine = "" // canonical form; Execute treats them identically
	}

	if *dump {
		data, err := scenario.Encode(sc)
		if err != nil {
			return err
		}
		_, err = out.Write(data)
		return err
	}

	opts, err := sc.Build()
	if err != nil {
		return err
	}
	switch {
	case *traceTo == "":
	case *traceTo == "text":
		opts.Tracer = trace.NewText(out)
	case *traceTo == "json":
		opts.Tracer = trace.NewJSON(out)
	default:
		f, err := os.Create(*traceTo)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.Tracer = trace.NewJSON(f)
	}

	res, err := scenario.Execute(sc.Engine, opts)
	if err != nil {
		return err
	}
	report(out, sc, opts, res)
	return nil
}

// applyKnob applies f to every part of the spec with the given kind
// (the spec itself or any composite part) and reports whether any
// matched.
func applyKnob(spec *scenario.AdversarySpec, kind string, f func(*scenario.AdversarySpec)) bool {
	applied := false
	if spec.Kind == kind {
		f(spec)
		applied = true
	}
	for i := range spec.Parts {
		if applyKnob(&spec.Parts[i], kind, f) {
			applied = true
		}
	}
	return applied
}

// loadScenario resolves -scenario: a registry name, or a JSON file path.
func loadScenario(arg string) (scenario.Scenario, error) {
	if sc, ok := scenario.Lookup(arg); ok {
		return sc, nil
	}
	if strings.HasSuffix(arg, ".json") || fileExists(arg) {
		data, err := os.ReadFile(arg)
		if err != nil {
			return scenario.Scenario{}, err
		}
		return scenario.Decode(data)
	}
	return scenario.Scenario{}, fmt.Errorf(
		"unknown scenario %q: not a registry name (-list-scenarios) and not a readable .json file", arg)
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}

func report(out io.Writer, sc scenario.Scenario, opts engine.Options, res *engine.Result) {
	params := opts.Params
	if sc.Name != "" {
		fmt.Fprintf(out, "scenario:   %s\n", sc.Name)
	}
	fmt.Fprintf(out, "protocol:   ε-BROADCAST k=%d n=%d (%s, start round %d)\n",
		params.K, params.N, params.Variant, params.StartRound)
	if !sc.Topology.IsClique() {
		topo, err := sc.Topology.Build(params.N, sc.Seed)
		reachable := "?"
		if err == nil {
			reachable = fmt.Sprintf("%d", topology.ReachableWithin(topo, params.K))
		}
		fmt.Fprintf(out, "topology:   %s (k-hop reachable ceiling %s/%d)\n",
			sc.Topology, reachable, params.N)
	}
	fmt.Fprintf(out, "adversary:  %s (spent T=%d: %d jams, %d spoofs)\n",
		res.StrategyName, res.AdversarySpent, res.AdversaryJams, res.AdversaryInjections)
	fmt.Fprintf(out, "delivery:   %d/%d informed (%.1f%%), %d stranded, %d dead, %d still active\n",
		res.Informed, res.N, 100*res.InformedFrac(), res.Stranded, res.Dead, res.ActiveAtEnd)
	fmt.Fprintf(out, "latency:    %d slots over %d rounds (completed=%t)\n",
		res.SlotsSimulated, res.Rounds, res.Completed)
	fmt.Fprintf(out, "alice:      cost %d (%d sends, %d listens), terminated=%t round=%d\n",
		res.Alice.Cost, res.Alice.Sends, res.Alice.Listens, res.Alice.Terminated, res.Alice.Round)
	fmt.Fprintf(out, "node cost:  min %d / median %d / mean %.1f / max %d\n",
		res.NodeCost.Min, res.NodeCost.Median, res.NodeCost.Mean, res.NodeCost.Max)
	if res.AdversarySpent > 0 && res.NodeCost.Median > 0 {
		fmt.Fprintf(out, "competitive: Carol paid %.1fx the median node (paper: node ~ T^{1/%d})\n",
			float64(res.AdversarySpent)/float64(res.NodeCost.Median), params.K+1)
	}
	if sc.RecordPhases {
		fmt.Fprintln(out, "\nper-phase trace:")
		for _, ph := range res.Phases {
			fmt.Fprintf(out, "  %-28s aliceSends=%-5d relays=%-6d nacks=%-6d decoys=%-6d jams=%-7d informed=%-5d active=%d\n",
				ph.Phase.String(), ph.AliceSends, ph.NodeDataSends, ph.NodeNacks,
				ph.NodeDecoys, ph.JammedSlots, ph.InformedAfter, ph.ActiveAfter)
		}
	}
}
