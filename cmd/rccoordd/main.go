// Command rccoordd is the sweep coordinator: it distributes one
// scenario sweep across a pool of rcserved workers (internal/dist,
// DESIGN.md §13) and writes the merged NDJSON — byte-identical to a
// single-machine `rcexp -scenario ... -trials N` run — to stdout.
//
// Usage:
//
//	rccoordd -workers http://a:8344,http://b:8344 \
//	         -scenario full-jam -trials 100000 > runs.jsonl
//	rccoordd -workers ... -scenario spec.json -shard-size 500 \
//	         -out runs.jsonl
//	rccoordd -version
//
// The sweep spec flags (-scenario, -topology, -n, -trials, -seed)
// mirror rcexp's sweep mode exactly, because the contract is that both
// produce the same bytes. -addr serves /metrics and /healthz while the
// sweep runs (":0" picks a free port; the resolved address is printed
// to stderr). Worker failure is handled by retry with backoff and shard
// reassignment; the sweep fails only if one shard fails -attempts
// times, or a worker rejects the submission outright.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rcbcast/internal/dist"
	"rcbcast/internal/scenario"
	"rcbcast/internal/topology"
	"rcbcast/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rccoordd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rccoordd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers   = fs.String("workers", "", "comma-separated worker base URLs (required)")
		scn       = fs.String("scenario", "", "named scenario or JSON scenario file (required)")
		topo      = fs.String("topology", "", "override the scenario's topology (KIND[:KNOB=V,...])")
		n         = fs.Int("n", 0, "network size override (0 = scenario default)")
		trials    = fs.Int("trials", 0, "sweep trial count (required)")
		baseSeed  = fs.Uint64("seed", 1, "base seed")
		shardSize = fs.Int("shard-size", 0, "trials per shard (0 = auto: about four shards per worker slot)")
		window    = fs.Int("window", 0, "merge reorder window in shards (0 = auto)")
		perWorker = fs.Int("per-worker", dist.DefaultPerWorker, "in-flight shards per worker")
		attempts  = fs.Int("attempts", dist.DefaultMaxAttempts, "run attempts per shard before the sweep fails")
		stall     = fs.Duration("stall", dist.DefaultStallTimeout, "abandon a shard attempt whose result stream is silent this long")
		backoff   = fs.Duration("backoff", dist.DefaultBackoff, "first retry delay for a failing worker (doubles per consecutive failure)")
		outPath   = fs.String("out", "", "write merged NDJSON here instead of stdout")
		addr      = fs.String("addr", "", "serve /metrics and /healthz on this address while the sweep runs (empty = no server)")
		showVer   = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String())
		return nil
	}
	if *workers == "" {
		return errors.New("-workers is required")
	}
	if *scn == "" {
		return errors.New("-scenario is required")
	}
	if *trials <= 0 {
		return errors.New("-trials must be positive")
	}

	sc, err := loadScenario(*scn)
	if err != nil {
		return err
	}
	if *topo != "" {
		spec, terr := topology.ParseSpec(*topo)
		if terr != nil {
			return terr
		}
		sc.ApplyTopology(spec)
	}
	if *n > 0 {
		sc.N = *n
	} else if sc.N == 0 {
		sc.N = 512
	}

	logger := log.New(stderr, "", log.LstdFlags)
	c, err := dist.New(dist.Config{
		Workers:      strings.Split(*workers, ","),
		ShardSize:    *shardSize,
		WindowShards: *window,
		PerWorker:    *perWorker,
		MaxAttempts:  *attempts,
		StallTimeout: *stall,
		Backoff:      *backoff,
		Logf:         logger.Printf,
	})
	if err != nil {
		return err
	}

	if *addr != "" {
		ln, lerr := net.Listen("tcp", *addr)
		if lerr != nil {
			return lerr
		}
		defer ln.Close()
		// The resolved address line is the handshake scripts parse; keep
		// its shape stable (stderr: stdout carries the merged NDJSON).
		fmt.Fprintf(stderr, "rccoordd: metrics on %s\n", ln.Addr())
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, c.Metrics())
		})
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, map[string]string{"status": "ok", "version": version.String()})
		})
		go http.Serve(ln, mux)
	}

	out := stdout
	if *outPath != "" {
		f, ferr := os.Create(*outPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}

	start := time.Now()
	sum, err := c.Run(ctx, sc, *trials, *baseSeed, out)
	if err != nil {
		return err
	}
	logger.Printf("rccoordd: %s in %v", sum, time.Since(start).Round(time.Millisecond))
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// loadScenario resolves a registry name or a JSON scenario file,
// mirroring rcexp.
func loadScenario(arg string) (scenario.Scenario, error) {
	if sc, ok := scenario.Lookup(arg); ok {
		return sc, nil
	}
	if strings.HasSuffix(arg, ".json") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return scenario.Scenario{}, err
		}
		return scenario.Decode(data)
	}
	return scenario.Scenario{}, fmt.Errorf(
		"unknown scenario %q: not a registry name (rcexp -list-scenarios) and not a .json file", arg)
}
