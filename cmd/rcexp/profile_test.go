package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRcexpSweepProfiles: the -cpuprofile/-memprofile path writes
// non-empty pprof files without disturbing the sweep output.
func TestRcexpSweepProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var buf strings.Builder
	args := []string{"-scenario", "full-jam", "-n", "64", "-trials", "4",
		"-cpuprofile", cpu, "-memprofile", mem}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 4 {
		t.Fatalf("want 4 NDJSON lines alongside profiling, got %d", got)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRcexpProfileNeedsSweepMode: profiling flags outside sweep mode
// are a usage error, not a silent no-op.
func TestRcexpProfileNeedsSweepMode(t *testing.T) {
	var buf strings.Builder
	err := run(context.Background(), []string{"-cpuprofile", "x.prof", "-list"}, &buf)
	if err != nil {
		t.Fatal("listing flags take precedence and must still work")
	}
	err = run(context.Background(), []string{"-cpuprofile", filepath.Join(t.TempDir(), "x.prof")}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Fatalf("want sweep-mode usage error, got %v", err)
	}
}
