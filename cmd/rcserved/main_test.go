package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"rcbcast/internal/scenario"
	"rcbcast/internal/sim/sink"
)

// TestMain doubles as the e2e child: with RCSERVED_E2E_CHILD set, the
// test binary *is* rcserved — the real run() on real flags, killable
// with a real SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("RCSERVED_E2E_CHILD") == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("RCSERVED_E2E_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "rcserved: bad e2e args:", err)
			os.Exit(1)
		}
		if err := run(ctx, args, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rcserved:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "rcbcast ") || !strings.Contains(out, "go1.") {
		t.Fatalf("version output %q lacks the module and go stamps", out)
	}
}

func TestDirRequired(t *testing.T) {
	err := run(context.Background(), nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-dir is required") {
		t.Fatalf("run without -dir: %v", err)
	}
}

// e2eScenario is the sweep the durability test runs: ~1ms/trial at
// -procs 1, so thousands of trials give the kill a wide mid-job window.
const e2eScenario = `{"n": 64, "adversary": {"kind": "full"}, "budget": {"pool": 1024}, "overrides": {"extra_rounds": 6}}`

const e2eTrials = 2500

// server is one child rcserved process.
type server struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startServer launches the test binary in child mode and parses the
// resolved listen address from its startup line.
func startServer(t *testing.T, dir string) *server {
	t.Helper()
	args, err := json.Marshal([]string{"-addr", "127.0.0.1:0", "-dir", dir, "-procs", "1", "-drain", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "RCSERVED_E2E_CHILD=1", "RCSERVED_E2E_ARGS="+string(args))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no startup line from rcserved (err=%v)", sc.Err())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "rcserved: listening on ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected startup line %q", line)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return &server{cmd: cmd, base: "http://" + addr}
}

// jobStatus fetches one job's status fields.
func (s *server) jobStatus(t *testing.T, id string) (state string, done int, version string) {
	t.Helper()
	resp, err := http.Get(s.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		State   string `json:"state"`
		Done    int    `json:"done"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return st.State, st.Done, st.Version
}

// TestSIGKILLDurability is the contract the service exists for: SIGKILL
// the server mid-job, restart it on the same store, and the job resumes
// on its own to results byte-identical to an uninterrupted run.
func TestSIGKILLDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes and runs a multi-second sweep")
	}
	dir := t.TempDir()

	s1 := startServer(t, dir)
	body := fmt.Sprintf(`{"scenario": %s, "trials": %d}`, e2eScenario, e2eTrials)
	resp, err := http.Post(s1.base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("submit: %d, id %q", resp.StatusCode, submitted.ID)
	}

	// Kill — with SIGKILL, no drain, no warning — once the job is far
	// enough in to have journaled real work but nowhere near done.
	deadline := time.Now().Add(60 * time.Second)
	for {
		state, done, _ := s1.jobStatus(t, submitted.ID)
		if state == "done" {
			t.Fatalf("job finished before the kill window; raise e2eTrials")
		}
		if done >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the kill window (state %s, done %d)", state, done)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	s1.cmd.Wait()

	// Restart on the same store: the job must resume without any client
	// action and run to completion.
	s2 := startServer(t, dir)
	defer func() {
		s2.cmd.Process.Signal(syscall.SIGTERM)
		s2.cmd.Wait()
	}()
	deadline = time.Now().Add(120 * time.Second)
	for {
		state, done, version := s2.jobStatus(t, submitted.ID)
		if state == "done" {
			if done != e2eTrials {
				t.Fatalf("resumed job done = %d, want %d", done, e2eTrials)
			}
			if version == "" {
				t.Fatal("job record lost its version stamp")
			}
			break
		}
		if state == "failed" || state == "canceled" {
			t.Fatalf("resumed job ended %s", state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck at %s/%d", state, done)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err = http.Get(s2.base + "/v1/jobs/" + submitted.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the identical sweep, uninterrupted, straight through
	// the scenario streaming layer (the same path rcexp uses).
	spec, err := scenario.Decode([]byte(e2eScenario))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := spec.Stream(context.Background(), 0, 1, 0, e2eTrials, sink.NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("post-SIGKILL results differ from an uninterrupted run (%d vs %d bytes)",
			len(got), want.Len())
	}
}
