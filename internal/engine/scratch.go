package engine

import "rcbcast/internal/energy"

// Scratch recycles a run's working buffers — the per-slot channel
// state, the per-phase transmission records, the per-node states with
// their committed-send slices, and the device meters — across
// executions. Tight trial loops (internal/sim's workers, benchmarks)
// hand one Scratch to consecutive runs via Options.Scratch and cut the
// per-trial allocation rate to the few result-sized objects a run must
// hand out.
//
// A Scratch carries no results between runs — every buffer is reset at
// adoption — so results are byte-identical with and without one (pinned
// by the engine reuse test). It must never be shared by concurrently
// executing runs.
type Scratch struct {
	counts, soloKind []uint8
	dirty            []int32
	txs              []txRec
	nodes            []nodeState
	aliceMeter       *energy.Meter
}

// NewScratch returns an empty scratch; buffers grow to the sizes the
// runs it serves need.
func NewScratch() *Scratch { return &Scratch{} }

// adoptScratch moves the scratch's buffers (if any) into the run,
// resetting their contents. Node entries keep their meter and the
// capacity of their committed-send slices; everything else starts
// zeroed exactly as a fresh allocation would.
func (r *run) adoptScratch(n int) {
	sc := r.opts.Scratch
	if sc == nil {
		r.nodes = make([]nodeState, n)
		return
	}
	r.counts = sc.counts[:0]
	r.soloKind = sc.soloKind[:0]
	r.dirty = sc.dirty[:0]
	r.txs = sc.txs[:0]
	if cap(sc.nodes) >= n {
		r.nodes = sc.nodes[:n]
		for i := range r.nodes {
			node := &r.nodes[i]
			*node = nodeState{
				meter:     node.meter,
				sendSlots: node.sendSlots[:0],
				sendKinds: node.sendKinds[:0],
			}
		}
	} else {
		r.nodes = make([]nodeState, n)
	}
	r.alice.meter = sc.aliceMeter
}

// releaseScratch hands the run's (possibly grown) buffers back to the
// scratch for the next run.
func (r *run) releaseScratch() {
	sc := r.opts.Scratch
	if sc == nil {
		return
	}
	sc.counts, sc.soloKind = r.counts, r.soloKind
	sc.dirty, sc.txs = r.dirty, r.txs
	sc.nodes = r.nodes
	sc.aliceMeter = r.alice.meter
}
