// Command rcexp runs the reproduction experiments E1–E11 (DESIGN.md §4)
// and prints their tables and findings. It is the tool that regenerates
// EXPERIMENTS.md.
//
// Usage:
//
//	rcexp                 run every experiment at full scale
//	rcexp -id E1          run one experiment
//	rcexp -quick          small sweeps (the test-suite scale)
//	rcexp -procs 8        trial-runner workers (0 = GOMAXPROCS); output
//	                      is byte-identical for every value, modulo the
//	                      "wall time" lines
//	rcexp -markdown       emit GitHub-flavored markdown tables
//	rcexp -list           list experiments with their claims
//	rcexp -list-scenarios list the named scenarios and adversary kinds
//	                      the experiments are built from (internal/scenario)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rcbcast/internal/experiment"
	"rcbcast/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcexp", flag.ContinueOnError)
	var (
		id       = fs.String("id", "", "run a single experiment (e.g. E1)")
		quick    = fs.Bool("quick", false, "small sweeps")
		markdown = fs.Bool("markdown", false, "emit markdown tables")
		list     = fs.Bool("list", false, "list experiments")
		listScn  = fs.Bool("list-scenarios", false, "list named scenarios and adversary kinds")
		seeds    = fs.Int("seeds", 0, "seeds per sweep point (0 = default)")
		n        = fs.Int("n", 0, "network size override (0 = default)")
		baseSeed = fs.Uint64("seed", 1, "base seed")
		procs    = fs.Int("procs", 0, "parallel trial workers (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listScn {
		scenario.WriteList(out)
		return nil
	}
	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	cfg := experiment.Config{
		Quick:    *quick,
		Seeds:    *seeds,
		N:        *n,
		BaseSeed: *baseSeed,
		Procs:    *procs,
	}

	var exps []experiment.Experiment
	if *id != "" {
		e, ok := experiment.ByID(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *id)
		}
		exps = []experiment.Experiment{e}
	} else {
		exps = experiment.All()
	}

	for _, e := range exps {
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *markdown {
			fmt.Fprintf(out, "### %s — %s\n\n*Claim:* %s\n\n", rep.ID, rep.Title, rep.Claim)
			for _, t := range rep.Tables {
				fmt.Fprintln(out, t.Markdown())
			}
			for _, f := range rep.Findings {
				fmt.Fprintf(out, "- %s\n", f)
			}
			fmt.Fprintf(out, "- wall time: %v\n\n", time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Fprintln(out, rep.Render())
			fmt.Fprintf(out, "wall time: %v\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
