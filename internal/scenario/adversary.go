// Package scenario makes a complete run description — protocol choice,
// adversary, budgets, engine — a first-class serializable value.
//
// The paper's contribution is a protocol evaluated *against a space of
// adversaries* (full, bursty, phase-blocking, partition, spoofing,
// reactive — §§2–4). Before this package existed, every entry point
// wired up that space independently: a flag switch in cmd/rcbcast, ad
// hoc per-trial factories in internal/experiment, hand-built structs in
// the examples. A Scenario is instead plain data: it round-trips
// through JSON and a compact flag syntax ("random:p=0.3"), builds
// engine.Options or sim.TrialSpec deterministically, and runs on either
// engine. A registry of named scenarios ships every attack the paper
// analyzes plus composite ones; both CLIs list it.
//
// The layering is strict: scenario sits above core, adversary, energy,
// engine and sim, and below the CLIs, the experiments, the examples and
// the rcbcast façade. Identical Scenario values produce bit-for-bit
// identical Results (the engines' determinism guarantee lifts to the
// declarative layer).
package scenario

import (
	"errors"
	"fmt"
	"strings"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
)

// AdversarySpec is a plain-data description of Carol: a Kind naming a
// registered strategy family plus the numeric knobs that family reads.
// Unused knobs must be zero. The zero value (or Kind "null") means no
// adversary.
//
// The spec replaces the stateful-strategy factory closures that
// sim.TrialSpec forces every caller to hand-roll: because the spec is
// pure data, New can mint a fresh strategy instance per trial, so
// per-run mutable state (NackSpoofer, SweepJammer, ...) never leaks
// across concurrently executing trials.
type AdversarySpec struct {
	// Kind selects the strategy family; Kinds() lists the registry.
	Kind string `json:"kind,omitempty"`

	// P is a per-slot probability: jam probability for "random", spoof
	// rate for "spoofer" and "data-spoofer".
	P float64 `json:"p,omitempty"`
	// Burst and Gap shape the "bursty" jammer.
	Burst int `json:"burst,omitempty"`
	Gap   int `json:"gap,omitempty"`
	// Inform, Propagate and Request select the "blocker" targets.
	Inform    bool `json:"inform,omitempty"`
	Propagate bool `json:"propagate,omitempty"`
	Request   bool `json:"request,omitempty"`
	// Fraction is the jammed fraction for "blocker" and "sweep"
	// (0 selects the strategy's default).
	Fraction float64 `json:"fraction,omitempty"`
	// Strand is the stranded node fraction for "partition".
	Strand float64 `json:"strand,omitempty"`
	// Rounds bounds the attack where the strategy supports it:
	// StopAfterRounds for "partition", MaxRounds for "spoofer".
	Rounds int `json:"rounds,omitempty"`
	// PerRound is the "greedy" jammer's per-round allowance (0 selects
	// one full phase length).
	PerRound int64 `json:"per_round,omitempty"`
	// Parts are the sub-specs of a "composite" adversary.
	Parts []AdversarySpec `json:"parts,omitempty"`
}

// Kind metadata: how a registered strategy family validates and builds.
type kindInfo struct {
	name    string
	summary string
	// knobs documents the flag-syntax keys the kind reads.
	knobs string
	// reactive marks kinds that want the engine's within-slot RSSI view.
	reactive bool
	// defaults fills the knobs the CLI historically defaulted. seen
	// reports whether the flag syntax set a knob key explicitly — an
	// explicit value (zero included) is never overwritten.
	defaults func(s *AdversarySpec, seen func(string) bool)
	validate func(AdversarySpec) error
	// build mints a fresh strategy instance. params is the resolved
	// protocol instance of the run (pointer strategies copy it).
	build func(AdversarySpec, core.Params) adversary.Strategy
}

// KindInfo describes one registered adversary kind for listings.
type KindInfo struct {
	// Name is the Kind value.
	Name string
	// Summary is a one-line description.
	Summary string
	// Knobs names the flag-syntax keys the kind reads ("" if none).
	Knobs string
}

// kinds is the ordered registry. Order is presentation order for
// listings; lookup goes through kindByName.
var kinds = []kindInfo{
	{
		name:    "null",
		summary: "no adversary",
		build:   func(AdversarySpec, core.Params) adversary.Strategy { return adversary.Null{} },
	},
	{
		name:    "full",
		summary: "jam every slot until the pool drains (Theorem 1 baseline)",
		build:   func(AdversarySpec, core.Params) adversary.Strategy { return adversary.FullJam{} },
	},
	{
		name:    "random",
		summary: "jam each slot independently with probability p",
		knobs:   "p",
		defaults: func(s *AdversarySpec, seen func(string) bool) {
			if !seen("p") {
				setF(&s.P, 0.5)
			}
		},
		// p = 0 is a valid no-op jammer (an explicit zero must not be
		// silently replaced, and the strategy jams nothing at 0).
		validate: func(s AdversarySpec) error { return probRange("p", s.P, false) },
		build: func(s AdversarySpec, _ core.Params) adversary.Strategy {
			return adversary.RandomJam{P: s.P}
		},
	},
	{
		name:    "bursty",
		summary: "alternate `burst` jammed slots with `gap` silent ones (§1.2)",
		knobs:   "burst, gap",
		defaults: func(s *AdversarySpec, seen func(string) bool) {
			if !seen("burst") && s.Burst == 0 {
				s.Burst = 32
			}
			if !seen("gap") && s.Gap == 0 {
				s.Gap = 32
			}
		},
		validate: func(s AdversarySpec) error {
			if s.Burst <= 0 || s.Gap < 0 {
				return fmt.Errorf("bursty needs burst > 0 and gap >= 0 (got %d/%d)", s.Burst, s.Gap)
			}
			return nil
		},
		build: func(s AdversarySpec, _ core.Params) adversary.Strategy {
			return adversary.Bursty{Burst: s.Burst, Gap: s.Gap}
		},
	},
	{
		name:    "blocker",
		summary: "jam whole targeted phases while affordable (Lemma 10)",
		knobs:   "inform, prop, req, frac",
		defaults: func(s *AdversarySpec, seen func(string) bool) {
			if seen("inform") || seen("prop") || seen("req") {
				return
			}
			if !s.Inform && !s.Propagate && !s.Request {
				s.Inform, s.Propagate = true, true
			}
		},
		validate: func(s AdversarySpec) error {
			if !s.Inform && !s.Propagate && !s.Request {
				return errors.New("blocker needs at least one of inform/prop/req")
			}
			return probRange("frac", s.Fraction, false)
		},
		build: func(s AdversarySpec, params core.Params) adversary.Strategy {
			p := params
			return adversary.PhaseBlocker{
				BlockInform:    s.Inform,
				BlockPropagate: s.Propagate,
				BlockRequest:   s.Request,
				Fraction:       s.Fraction,
				Params:         &p,
			}
		},
	},
	{
		name:    "partition",
		summary: "strand a chosen node fraction while informing the rest (§2.3)",
		knobs:   "strand, rounds",
		defaults: func(s *AdversarySpec, seen func(string) bool) {
			if !seen("strand") {
				setF(&s.Strand, 0.05)
			}
		},
		validate: func(s AdversarySpec) error {
			if s.Strand <= 0 || s.Strand >= 1 {
				return fmt.Errorf("partition needs strand in (0,1) (got %v)", s.Strand)
			}
			return nonNegRounds(s.Rounds)
		},
		build: func(s AdversarySpec, params core.Params) adversary.Strategy {
			limit := int(s.Strand * float64(params.N))
			return &adversary.PartitionBlocker{
				Stranded:        func(node int) bool { return node < limit },
				StopAfterRounds: s.Rounds,
			}
		},
	},
	{
		name:    "spoofer",
		summary: "forge NACKs in request phases to stall termination (§2.2)",
		knobs:   "p, rounds",
		defaults: func(s *AdversarySpec, seen func(string) bool) {
			if !seen("p") {
				setF(&s.P, 0.5)
			}
		},
		// p = 0 is rejected rather than allowed as a no-op: the
		// strategy itself substitutes its 0.5 default for a zero rate,
		// so accepting 0 would silently run a different attack.
		validate: func(s AdversarySpec) error {
			if err := probRange("p", s.P, true); err != nil {
				return err
			}
			return nonNegRounds(s.Rounds)
		},
		build: func(s AdversarySpec, _ core.Params) adversary.Strategy {
			return &adversary.NackSpoofer{Rate: s.P, MaxRounds: s.Rounds}
		},
	},
	{
		name:    "data-spoofer",
		summary: "inject forged copies of m that fail authentication but occupy slots",
		knobs:   "p",
		defaults: func(s *AdversarySpec, seen func(string) bool) {
			if !seen("p") {
				setF(&s.P, 0.25)
			}
		},
		// Strict like "spoofer": DataSpoofer turns rate 0 into 0.25.
		validate: func(s AdversarySpec) error { return probRange("p", s.P, true) },
		build: func(s AdversarySpec, _ core.Params) adversary.Strategy {
			return adversary.DataSpoofer{Rate: s.P}
		},
	},
	{
		name:    "sweep",
		summary: "rotate a contiguous jamming window of the given fraction across phases",
		knobs:   "frac",
		defaults: func(s *AdversarySpec, seen func(string) bool) {
			if !seen("frac") {
				setF(&s.Fraction, 0.5)
			}
		},
		// Strict: SweepJammer turns fraction 0 into 0.5.
		validate: func(s AdversarySpec) error { return probRange("frac", s.Fraction, true) },
		build: func(s AdversarySpec, _ core.Params) adversary.Strategy {
			return &adversary.SweepJammer{Fraction: s.Fraction}
		},
	},
	{
		name:    "greedy",
		summary: "reallocate a per-round allowance to the phase making the most progress",
		knobs:   "perround",
		validate: func(s AdversarySpec) error {
			if s.PerRound < 0 {
				return fmt.Errorf("greedy needs perround >= 0 (got %d)", s.PerRound)
			}
			return nil
		},
		build: func(s AdversarySpec, _ core.Params) adversary.Strategy {
			return &adversary.GreedyAdaptive{PerRound: s.PerRound}
		},
	},
	{
		name:     "reactive",
		summary:  "sense within-slot RSSI and jam exactly the used slots (§4.1)",
		reactive: true,
		build:    func(AdversarySpec, core.Params) adversary.Strategy { return adversary.ReactiveJammer{} },
	},
	{
		name:    "composite",
		summary: "run several strategies at once, unioning their plans",
		knobs:   "parts (flag syntax: join sub-specs with +)",
		validate: func(s AdversarySpec) error {
			if len(s.Parts) == 0 {
				return errors.New("composite needs at least one part")
			}
			for i, part := range s.Parts {
				// Composite implements no PlanReactive, so a reactive
				// part would silently degrade to a no-op; reject it
				// rather than run a weaker attack than requested.
				if part.Reactive() {
					return fmt.Errorf("part %d: reactive strategies cannot compose (the composite has no within-slot RSSI path)", i)
				}
				if err := part.Validate(); err != nil {
					return fmt.Errorf("part %d: %w", i, err)
				}
			}
			return nil
		},
		build: func(s AdversarySpec, params core.Params) adversary.Strategy {
			parts := make([]adversary.Strategy, len(s.Parts))
			for i, part := range s.Parts {
				parts[i] = part.MustNew(params)
			}
			return adversary.Composite{Parts: parts}
		},
	},
}

// kindByName is populated in init (a var initializer would form an
// initialization cycle through the composite kind's recursive
// validate).
var kindByName map[string]*kindInfo

func init() {
	kindByName = make(map[string]*kindInfo, len(kinds))
	for i := range kinds {
		kindByName[kinds[i].name] = &kinds[i]
	}
}

func setF(v *float64, def float64) {
	if *v == 0 {
		*v = def
	}
}

func probRange(name string, v float64, strict bool) error {
	if v < 0 || v > 1 || (strict && v == 0) {
		lo := "["
		if strict {
			lo = "("
		}
		return fmt.Errorf("%s must be in %s0,1] (got %v)", name, lo, v)
	}
	return nil
}

func nonNegRounds(r int) error {
	if r < 0 {
		return fmt.Errorf("rounds must be >= 0 (got %d)", r)
	}
	return nil
}

// knobChecks names every numeric/bool knob and reports whether a spec
// sets it (zero counts as unset). Validate uses it to reject knobs a
// kind does not read — a typo'd kind must not silently run a different
// attack than the knobs describe.
var knobChecks = []struct {
	name string
	set  func(AdversarySpec) bool
}{
	{"p", func(s AdversarySpec) bool { return s.P != 0 }},
	{"burst", func(s AdversarySpec) bool { return s.Burst != 0 }},
	{"gap", func(s AdversarySpec) bool { return s.Gap != 0 }},
	{"inform", func(s AdversarySpec) bool { return s.Inform }},
	{"prop", func(s AdversarySpec) bool { return s.Propagate }},
	{"req", func(s AdversarySpec) bool { return s.Request }},
	{"frac", func(s AdversarySpec) bool { return s.Fraction != 0 }},
	{"strand", func(s AdversarySpec) bool { return s.Strand != 0 }},
	{"rounds", func(s AdversarySpec) bool { return s.Rounds != 0 }},
	{"perround", func(s AdversarySpec) bool { return s.PerRound != 0 }},
}

// extraneousKnob returns the first set knob the kind does not read, or
// "". The composite kind reads no scalar knobs (only Parts).
func (s AdversarySpec) extraneousKnob(k *kindInfo) string {
	allowed := map[string]bool{}
	if k.name != "composite" {
		for _, key := range strings.Split(k.knobs, ",") {
			if key = strings.TrimSpace(key); key != "" {
				allowed[key] = true
			}
		}
	}
	for _, knob := range knobChecks {
		if knob.set(s) && !allowed[knob.name] {
			return knob.name
		}
	}
	return ""
}

// Kinds lists the registered adversary kinds in presentation order.
func Kinds() []KindInfo {
	out := make([]KindInfo, len(kinds))
	for i, k := range kinds {
		out[i] = KindInfo{Name: k.name, Summary: k.summary, Knobs: k.knobs}
	}
	return out
}

// kind resolves the spec's registry entry ("" aliases "null").
func (s AdversarySpec) kind() (*kindInfo, error) {
	name := s.Kind
	if name == "" {
		name = "null"
	}
	k, ok := kindByName[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown adversary kind %q", name)
	}
	return k, nil
}

// IsNull reports whether the spec describes the absent adversary.
func (s AdversarySpec) IsNull() bool { return s.Kind == "" || s.Kind == "null" }

// Reactive reports whether the spec wants the engine's within-slot RSSI
// view (the §4.1 threat model). Composite parts do not propagate: the
// Composite strategy exposes no reactive interface.
func (s AdversarySpec) Reactive() bool {
	k, err := s.kind()
	return err == nil && k.reactive
}

// clone returns a deep copy: Parts get their own backing array, so
// mutating the clone never reaches the original.
func (s AdversarySpec) clone() AdversarySpec {
	out := s
	if len(s.Parts) > 0 {
		out.Parts = make([]AdversarySpec, len(s.Parts))
		for i, p := range s.Parts {
			out.Parts[i] = p.clone()
		}
	}
	return out
}

// WithDefaults returns a copy with the kind's historical CLI defaults
// filled into zero knobs (random p=0.5, bursty 32/32, blocker
// inform+prop, ...), recursing into composite parts. ParseAdversary
// applies it (respecting knobs the flag string set explicitly, zero
// values included); specs assembled as data — JSON files, Go literals —
// state their knobs explicitly and fail validation otherwise, so an
// explicit zero is never silently replaced at build time.
func (s AdversarySpec) WithDefaults() AdversarySpec {
	return s.withDefaults(func(string) bool { return false })
}

func (s AdversarySpec) withDefaults(seen func(string) bool) AdversarySpec {
	out := s
	if len(s.Parts) > 0 {
		out.Parts = append([]AdversarySpec(nil), s.Parts...)
		for i := range out.Parts {
			out.Parts[i] = out.Parts[i].WithDefaults()
		}
	}
	k, err := s.kind()
	if err != nil || k.defaults == nil {
		return out
	}
	k.defaults(&out, seen)
	return out
}

// Validate reports the first violated knob constraint, or nil.
func (s AdversarySpec) Validate() error {
	k, err := s.kind()
	if err != nil {
		return err
	}
	if k.name != "composite" && len(s.Parts) > 0 {
		return fmt.Errorf("scenario: kind %q does not take parts", k.name)
	}
	if bad := s.extraneousKnob(k); bad != "" {
		reads := "no knobs"
		if k.name == "composite" {
			reads = "only parts"
		} else if k.knobs != "" {
			reads = k.knobs
		}
		return fmt.Errorf("scenario: adversary %q does not read knob %q (it reads %s)", k.name, bad, reads)
	}
	if k.validate == nil {
		return nil
	}
	if err := k.validate(s); err != nil {
		return fmt.Errorf("scenario: adversary %q: %w", k.name, err)
	}
	return nil
}

// New validates the spec and mints a fresh strategy instance for one
// run of the given protocol instance. Call once per trial: several
// strategies carry per-run mutable state.
func (s AdversarySpec) New(params core.Params) (adversary.Strategy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	k, err := s.kind()
	if err != nil {
		return nil, err
	}
	return k.build(s, params), nil
}

// MustNew is New for specs already validated; it panics on error.
func (s AdversarySpec) MustNew(params core.Params) adversary.Strategy {
	st, err := s.New(params)
	if err != nil {
		panic(err)
	}
	return st
}
