// Package multihop extends ε-BROADCAST to multi-hop networks — the open
// question the paper poses in §5 ("whether these resource-competitive
// results have an analogue in multi-hop WSNs").
//
// Construction: a path of H single-hop clusters, each with n correct
// nodes on its own channel (spatial reuse keeps adjacent clusters from
// interfering, as in cell-based MAC schemes). Cluster 0 is seeded by
// Alice. When cluster h reaches its (1-ε) delivery, one of its informed
// boundary nodes becomes the sender for cluster h+1 — this preserves the
// authentication story, because m carries Alice's tag and therefore any
// relay of it verifies (msg.Relay). The relay sender runs Alice's side of
// the protocol and so inherits her Õ(T^{1/(k+1)}) cost bound against a
// jammer spending T in that cluster.
//
// The resource-competitive consequences measured by experiment E12:
//
//   - latency is additive in hops (benign clusters cost O(first-round)
//     each) and Carol concentrating her whole budget on one cluster buys
//     the same delay she would in a single-hop network — no multi-hop
//     amplification;
//   - per-node cost is independent of H (each node participates in one
//     cluster only);
//   - stranding compounds multiplicatively: each hop can lose an
//     ε-fraction, so the end-to-end guarantee is (1-ε)^H, matching the
//     intuition that almost-everywhere guarantees weaken along paths.
package multihop

import (
	"errors"
	"fmt"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/rng"
)

// Options configures a multi-hop execution.
type Options struct {
	// Params configures each cluster's protocol instance (Params.N nodes
	// per cluster). Required; must Validate.
	Params core.Params
	// Hops is the number of clusters in the path (>= 1).
	Hops int
	// Seed drives all randomness; each cluster derives an independent
	// stream.
	Seed uint64
	// StrategyFor selects Carol's strategy per cluster (nil hop values
	// or a nil function mean no adversary in that cluster).
	StrategyFor func(hop int) adversary.Strategy
	// Pool is Carol's energy purse shared across every cluster: she may
	// concentrate it anywhere. nil means unlimited.
	Pool *energy.Pool
	// AllowReactive grants reactive strategies their RSSI view.
	AllowReactive bool
	// MinRelayFrac is the informed fraction a cluster must reach before
	// the pipeline advances (default 1/2: a majority of the cluster can
	// forward m). The pipeline stalls if a cluster falls short.
	MinRelayFrac float64
}

func (o *Options) minRelayFrac() float64 {
	if o.MinRelayFrac > 0 {
		return o.MinRelayFrac
	}
	return 0.5
}

// HopResult summarizes one cluster's broadcast.
type HopResult struct {
	Hop            int
	Informed       int
	InformedFrac   float64
	Slots          int64
	Rounds         int
	SenderCost     int64 // Alice in hop 0; the relay node afterwards
	MaxNodeCost    int64
	MedianNodeCost int64
	AdversarySpent int64
	Completed      bool
}

// Result is the end-to-end outcome.
type Result struct {
	Hops []HopResult
	// Reached reports whether the final cluster met the relay threshold.
	Reached bool
	// StalledAt is the first cluster that failed (-1 if none).
	StalledAt int
	// TotalSlots is the end-to-end latency (clusters run sequentially).
	TotalSlots int64
	// MaxNodeCost is the maximum single-device spend across all clusters
	// including relay senders.
	MaxNodeCost int64
	// AdversarySpent is Carol's total spend across all clusters.
	AdversarySpent int64
	// EndToEndFrac multiplies the per-hop informed fractions — the
	// (1-ε)^H guarantee.
	EndToEndFrac float64
}

// ErrBadHops is returned for a non-positive hop count.
var ErrBadHops = errors.New("multihop: Hops must be >= 1")

// Run executes the cluster pipeline.
func Run(opts Options) (*Result, error) {
	if opts.Hops < 1 {
		return nil, ErrBadHops
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, fmt.Errorf("multihop: %w", err)
	}
	res := &Result{StalledAt: -1, EndToEndFrac: 1}
	for hop := 0; hop < opts.Hops; hop++ {
		var strat adversary.Strategy
		if opts.StrategyFor != nil {
			strat = opts.StrategyFor(hop)
		}
		// Derive an independent seed per cluster so channels do not
		// share randomness.
		seed := rng.Mix(opts.Seed, uint64(hop)+1)
		hopRes, err := engine.Run(engine.Options{
			Params:        opts.Params,
			Seed:          seed,
			Strategy:      strat,
			Pool:          opts.Pool,
			AllowReactive: opts.AllowReactive,
		})
		if err != nil {
			return nil, fmt.Errorf("multihop: hop %d: %w", hop, err)
		}
		hr := HopResult{
			Hop:            hop,
			Informed:       hopRes.Informed,
			InformedFrac:   hopRes.InformedFrac(),
			Slots:          hopRes.SlotsSimulated,
			Rounds:         hopRes.Rounds,
			SenderCost:     hopRes.Alice.Cost,
			MaxNodeCost:    hopRes.NodeCost.Max,
			MedianNodeCost: hopRes.NodeCost.Median,
			AdversarySpent: hopRes.AdversarySpent,
			Completed:      hopRes.Completed,
		}
		res.Hops = append(res.Hops, hr)
		res.TotalSlots += hr.Slots
		res.AdversarySpent += hr.AdversarySpent
		res.EndToEndFrac *= hr.InformedFrac
		if hr.MaxNodeCost > res.MaxNodeCost {
			res.MaxNodeCost = hr.MaxNodeCost
		}
		// The relay sender of the next hop is a node of this cluster;
		// its sender-side cost counts against the node cost bound.
		if hr.SenderCost > res.MaxNodeCost && hop > 0 {
			res.MaxNodeCost = hr.SenderCost
		}
		if hr.InformedFrac < opts.minRelayFrac() {
			res.StalledAt = hop
			return res, nil
		}
	}
	res.Reached = true
	return res, nil
}
