package sampling

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rcbcast/internal/rng"
)

func TestSlotScheduleBounds(t *testing.T) {
	st := rng.New(1)
	s := NewSlotSchedule(st, 0.3, 100)
	prev := -1
	for {
		slot, ok := s.Next()
		if !ok {
			break
		}
		if slot <= prev {
			t.Fatalf("slots not strictly increasing: %d after %d", slot, prev)
		}
		if slot < 0 || slot >= 100 {
			t.Fatalf("slot %d out of range [0,100)", slot)
		}
		prev = slot
	}
}

func TestSlotScheduleDegenerate(t *testing.T) {
	t.Run("p=0", func(t *testing.T) {
		s := NewSlotSchedule(rng.New(1), 0, 100)
		if _, ok := s.Next(); ok {
			t.Fatal("p=0 schedule must be empty")
		}
	})
	t.Run("p=1", func(t *testing.T) {
		s := NewSlotSchedule(rng.New(1), 1, 5)
		got := s.Collect()
		want := []int{0, 1, 2, 3, 4}
		if len(got) != len(want) {
			t.Fatalf("p=1 schedule = %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=1 schedule = %v, want %v", got, want)
			}
		}
	})
	t.Run("length=0", func(t *testing.T) {
		s := NewSlotSchedule(rng.New(1), 0.5, 0)
		if _, ok := s.Next(); ok {
			t.Fatal("empty phase must yield no slots")
		}
	})
	t.Run("negative length", func(t *testing.T) {
		s := NewSlotSchedule(rng.New(1), 0.5, -3)
		if _, ok := s.Next(); ok {
			t.Fatal("negative-length phase must yield no slots")
		}
	})
}

func TestSlotScheduleMatchesPerSlotBernoulli(t *testing.T) {
	// The schedule must produce the same *distribution* as per-slot coin
	// flips: per-slot inclusion frequency approximately p, independent
	// across slots.
	const p, length, trials = 0.1, 200, 5000
	counts := make([]int, length)
	for trial := 0; trial < trials; trial++ {
		s := NewSlotSchedule(rng.New(7, uint64(trial)), p, length)
		for {
			slot, ok := s.Next()
			if !ok {
				break
			}
			counts[slot]++
		}
	}
	for slot, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-p) > 5*math.Sqrt(p*(1-p)/trials) {
			t.Errorf("slot %d inclusion freq = %v, want ~%v", slot, got, p)
		}
	}
}

func TestSlotSchedulePeek(t *testing.T) {
	s := NewSlotSchedule(rng.New(3), 0.5, 50)
	for {
		peeked, ok1 := s.Peek()
		got, ok2 := s.Next()
		if ok1 != ok2 || (ok1 && peeked != got) {
			t.Fatalf("Peek (%d,%v) disagrees with Next (%d,%v)", peeked, ok1, got, ok2)
		}
		if !ok2 {
			return
		}
	}
}

func TestSlotScheduleDeterministic(t *testing.T) {
	a := NewSlotSchedule(rng.New(9, 1), 0.2, 1000).Collect()
	b := NewSlotSchedule(rng.New(9, 1), 0.2, 1000).Collect()
	if len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	st := rng.New(11)
	if got := Binomial(st, 0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := Binomial(st, 10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := Binomial(st, 10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
	if got := Binomial(st, -5, 0.5); got != 0 {
		t.Fatalf("Binomial(-5, .5) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.05},  // exact path
		{50, 0.5},    // exact path
		{10000, 0.3}, // normal approx path
		{100000, 0.01},
	}
	for _, tc := range cases {
		st := rng.New(13, uint64(tc.n))
		const trials = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			v := float64(Binomial(st, tc.n, tc.p))
			if v < 0 || v > float64(tc.n) {
				t.Fatalf("Binomial(%d,%v) = %v out of range", tc.n, tc.p, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		wantMean := float64(tc.n) * tc.p
		wantSD := math.Sqrt(wantMean * (1 - tc.p))
		if math.Abs(mean-wantMean) > 5*wantSD/math.Sqrt(trials) {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", tc.n, tc.p, mean, wantMean)
		}
		variance := sumSq/trials - mean*mean
		if math.Abs(variance-wantSD*wantSD) > 0.2*wantSD*wantSD {
			t.Errorf("Binomial(%d,%v) variance = %v, want ~%v", tc.n, tc.p, variance, wantSD*wantSD)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 100} {
		st := rng.New(17, uint64(lambda*10))
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := float64(Poisson(st, lambda))
			if v < 0 {
				t.Fatalf("Poisson negative")
			}
			sum += v
		}
		mean := sum / trials
		if math.Abs(mean-lambda) > 5*math.Sqrt(lambda/trials) {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if Poisson(rng.New(1), 0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
	if Poisson(rng.New(1), -3) != 0 {
		t.Error("Poisson(-3) must be 0")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	st := rng.New(19)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 10}, {100, 7}} {
		got := SampleWithoutReplacement(st, tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("n=%d k=%d: got %d samples", tc.n, tc.k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("n=%d k=%d: invalid sample set %v", tc.n, tc.k, got)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Every element should be included with probability k/n.
	const n, k, trials = 20, 5, 40000
	st := rng.New(23)
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range SampleWithoutReplacement(st, n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d included %d times, want ~%v", v, c, want)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n must panic")
		}
	}()
	SampleWithoutReplacement(rng.New(1), 3, 4)
}

func TestScheduleCountMatchesBinomialLaw(t *testing.T) {
	// Property: the *number* of action slots in a schedule is Binomial(s,p).
	// Compare empirical mean against s*p across random (s, p).
	f := func(seed uint64, sRaw uint16, pRaw uint8) bool {
		s := int(sRaw%500) + 1
		p := (float64(pRaw%100) + 1) / 200 // (0, 0.5]
		const trials = 300
		total := 0
		for i := 0; i < trials; i++ {
			sched := NewSlotSchedule(rng.New(seed, uint64(i)), p, s)
			for {
				if _, ok := sched.Next(); !ok {
					break
				}
				total++
			}
		}
		mean := float64(total) / trials
		want := float64(s) * p
		sd := math.Sqrt(float64(s) * p * (1 - p))
		return math.Abs(mean-want) <= 6*sd/math.Sqrt(trials)+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSlotsSorted(t *testing.T) {
	slots := NewSlotSchedule(rng.New(29), 0.05, 10000).Collect()
	if !sort.IntsAreSorted(slots) {
		t.Fatal("schedule slots must be sorted")
	}
}

func BenchmarkScheduleSparse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSlotSchedule(rng.New(uint64(i)), 0.001, 100000)
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	st := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = Binomial(st, 1_000_000, 0.01)
	}
}
