package topology

import (
	"math"
	"testing"
)

func TestCliqueIsComplete(t *testing.T) {
	c := NewClique(8)
	if !c.Complete() || c.N() != 8 || c.Degree(3) != 7 {
		t.Fatalf("clique basics: %+v", c)
	}
	for v := 0; v < 8; v++ {
		if !c.AliceHears(v) {
			t.Fatalf("alice must hear node %d", v)
		}
		for u := 0; u < 8; u++ {
			if got, want := c.Adjacent(u, v), u != v; got != want {
				t.Fatalf("Adjacent(%d,%d) = %v", u, v, got)
			}
		}
	}
	if got := ReachableWithin(c, 1); got != 8 {
		t.Fatalf("clique reachable within 1 hop = %d, want 8", got)
	}
}

func TestGridLayoutAndAdjacency(t *testing.T) {
	g := NewGrid(12, 4, 1) // 4x3
	if g.Width() != 4 || g.Reach() != 1 || g.Complete() {
		t.Fatalf("grid layout: %+v", g)
	}
	// Node 5 is cell (1,1): its Moore neighborhood is the full 3x3 block.
	if g.Degree(5) != 8 {
		t.Fatalf("interior degree = %d, want 8", g.Degree(5))
	}
	// Corner node 0 has 3 neighbors.
	if g.Degree(0) != 3 {
		t.Fatalf("corner degree = %d, want 3", g.Degree(0))
	}
	if !g.Adjacent(0, 5) || g.Adjacent(0, 2) || g.Adjacent(7, 7) {
		t.Fatal("adjacency wrong")
	}
	// Alice sits at the origin corner: she reaches cells (0,0),(1,0),(0,1),(1,1).
	wantAlice := map[int]bool{0: true, 1: true, 4: true, 5: true}
	for v := 0; v < 12; v++ {
		if g.AliceHears(v) != wantAlice[v] {
			t.Fatalf("AliceHears(%d) = %v", v, g.AliceHears(v))
		}
	}
	// The wave crosses one Chebyshev ring per hop: the far corner (3,2)
	// is ring 3 from Alice's audible block... within 3 hops everything.
	if got := ReachableWithin(g, -1); got != 12 {
		t.Fatalf("grid component = %d, want 12", got)
	}
	if got := ReachableWithin(g, 1); got != 4 {
		t.Fatalf("grid 1-hop = %d, want 4", got)
	}
}

func TestGridDefaultsSquare(t *testing.T) {
	g := NewGrid(100, 0, 0)
	if g.Width() != 10 || g.Reach() != 1 {
		t.Fatalf("defaults: %+v", g)
	}
	if !NewGrid(9, 3, 2).Complete() {
		t.Fatal("reach covering the lattice must report Complete")
	}
}

func TestGilbertDeterministicAndSymmetric(t *testing.T) {
	a := NewGilbert(200, 0.15, 42)
	b := NewGilbert(200, 0.15, 42)
	other := NewGilbert(200, 0.15, 43)
	differs := false
	for i := 0; i < 200; i++ {
		ax, ay := a.Position(i)
		bx, by := b.Position(i)
		if ax != bx || ay != by {
			t.Fatal("same seed must draw identical points")
		}
		ox, oy := other.Position(i)
		if ax != ox || ay != oy {
			differs = true
		}
		if a.Degree(i) != b.Degree(i) {
			t.Fatal("same seed must build identical graphs")
		}
	}
	if !differs {
		t.Fatal("different seeds must draw different points")
	}
	for i := 0; i < 200; i++ {
		for j := 0; j < 200; j++ {
			if a.Adjacent(i, j) != a.Adjacent(j, i) {
				t.Fatalf("adjacency must be symmetric (%d,%d)", i, j)
			}
			if i == j && a.Adjacent(i, j) {
				t.Fatal("adjacency must be irreflexive")
			}
		}
	}
}

func TestGilbertAdjacencyMatchesDistance(t *testing.T) {
	g := NewGilbert(150, 0.2, 7)
	for i := 0; i < 150; i++ {
		deg := 0
		xi, yi := g.Position(i)
		for j := 0; j < 150; j++ {
			if i == j {
				continue
			}
			xj, yj := g.Position(j)
			within := math.Hypot(xi-xj, yi-yj) <= 0.2
			if g.Adjacent(j, i) != within {
				t.Fatalf("Adjacent(%d,%d) = %v, distance says %v", j, i, g.Adjacent(j, i), within)
			}
			if within {
				deg++
			}
		}
		if g.Degree(i) != deg {
			t.Fatalf("Degree(%d) = %d, want %d", i, g.Degree(i), deg)
		}
		ax := g.AliceHears(i)
		if ax != (math.Hypot(xi-0.5, yi-0.5) <= 0.2) {
			t.Fatalf("AliceHears(%d) = %v", i, ax)
		}
	}
}

func TestGilbertFullRadiusIsEffectivelyComplete(t *testing.T) {
	// radius sqrt(2) spans the unit square's diagonal: every pair
	// connects, though Complete() stays structural (false) so the
	// engine exercises the sparse resolution path on it — the
	// engine-level equivalence test relies on exactly this.
	g := NewGilbert(64, math.Sqrt2, 3)
	if g.Complete() {
		t.Fatal("gilbert must not claim the fast path")
	}
	for i := 0; i < 64; i++ {
		if g.Degree(i) != 63 || !g.AliceHears(i) {
			t.Fatalf("node %d not fully connected", i)
		}
	}
}

func TestReachableWithinGrowsByHops(t *testing.T) {
	g := NewGilbert(300, 0.12, 11)
	prev := 0
	for hops := 1; hops <= 6; hops++ {
		got := ReachableWithin(g, hops)
		if got < prev {
			t.Fatalf("reachable must be monotone in hops: %d then %d", prev, got)
		}
		prev = got
	}
	if comp := ReachableWithin(g, -1); comp < prev {
		t.Fatalf("component %d smaller than 6-hop %d", comp, prev)
	}
}
