package dist

// Metrics is the coordinator's hand-rolled counter snapshot — the
// /metrics body cmd/rccoordd serves, in the same style as the worker
// service's.
type Metrics struct {
	Workers     int `json:"workers"`
	TotalShards int `json:"total_shards"`
	// Shards counts shards per lifecycle phase: pending (waiting for a
	// first attempt), assigned (an attempt in flight), done (all lines
	// buffered or merged), retrying (requeued after ≥1 failed attempt).
	Shards            map[string]int `json:"shards"`
	PerWorkerInFlight map[string]int `json:"per_worker_in_flight"`
	Retries           int64          `json:"retries"`
	MergedTrials      int64          `json:"merged_trials"`
	TotalTrials       int64          `json:"total_trials"`
	// MergeFrontierShard is the next shard index the merge loop will
	// emit; WindowBufferedLines is the reorder window's occupancy —
	// result lines buffered ahead of the frontier, bounded by
	// WindowShards·ShardSize.
	MergeFrontierShard  int `json:"merge_frontier_shard"`
	WindowShards        int `json:"merge_window_shards"`
	WindowBufferedLines int `json:"merge_window_buffered_lines"`
}

// Metrics snapshots the run. Safe from any goroutine, including before
// Run starts (all-zero) and after it returns.
func (c *Coordinator) Metrics() Metrics {
	m := Metrics{
		Workers:           len(c.workers),
		Shards:            map[string]int{},
		PerWorkerInFlight: map[string]int{},
		Retries:           c.retries.Load(),
		MergedTrials:      c.merged.Load(),
		TotalTrials:       c.totalTrials.Load(),
	}
	c.mu.Lock()
	shards := c.shards
	sch := c.sched
	for w, n := range c.inflight {
		m.PerWorkerInFlight[w] = n
	}
	c.mu.Unlock()
	if shards == nil {
		return m
	}
	m.TotalShards = len(shards)
	frontier, _, _ := sch.snapshot()
	m.MergeFrontierShard = frontier
	m.WindowShards = sch.window
	for i, st := range shards {
		st.mu.Lock()
		phase, attempts := st.phase, st.attempts
		st.mu.Unlock()
		if phase == phasePending && attempts > 0 {
			m.Shards["retrying"]++
		} else {
			m.Shards[phase]++
		}
		if i >= frontier {
			m.WindowBufferedLines += len(st.lines)
		}
	}
	return m
}
