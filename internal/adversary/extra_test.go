package adversary

import (
	"strings"
	"testing"

	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/msg"
	"rcbcast/internal/rng"
)

func TestDataSpooferInjectsForgedData(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	request, _ := phaseFor(t, core.PhaseRequest)
	s := DataSpoofer{Rate: 0.25}
	if plan := s.PlanPhase(request, &History{}, nil, rng.New(1)); plan != nil {
		t.Fatal("data spoofer must skip request phases")
	}
	plan := s.PlanPhase(inform, &History{}, nil, rng.New(1))
	if plan == nil {
		t.Fatal("data spoofer must plan in inform phases")
	}
	auth := msg.NewAuthenticator(99)
	for _, inj := range plan.Injections() {
		if inj.Frame.Kind != msg.KindSpoof {
			t.Fatalf("injected kind = %v", inj.Frame.Kind)
		}
		if auth.Verify(inj.Frame) {
			t.Fatal("forged m must never verify")
		}
	}
	rate := float64(len(plan.Injections())) / float64(inform.Length)
	if rate < 0.15 || rate > 0.35 {
		t.Fatalf("injection rate = %v, want ~0.25", rate)
	}
}

func TestDataSpooferBudget(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	pool := energy.NewPool(5)
	plan := DataSpoofer{Rate: 1}.PlanPhase(inform, &History{}, pool, rng.New(1))
	if plan == nil || len(plan.Injections()) != 5 {
		t.Fatal("data spoofer must respect budget advice")
	}
}

func TestSweepJammerWindowMovesAcrossRounds(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	s := &SweepJammer{Fraction: 0.25}
	first := s.PlanPhase(inform, &History{}, nil, rng.New(1))
	second := s.PlanPhase(inform, &History{}, nil, rng.New(1))
	if first == nil || second == nil {
		t.Fatal("sweep jammer must plan")
	}
	wantJams := int64(0.25 * float64(inform.Length))
	if int64(first.JamCount()) != wantJams {
		t.Fatalf("jam count = %d, want %d", first.JamCount(), wantJams)
	}
	// The window must have moved: the two jam sets differ somewhere.
	same := true
	for slot := 0; slot < inform.Length; slot++ {
		if first.Jammed(slot) != second.Jammed(slot) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sweep window must advance between phases")
	}
}

func TestSweepJammerDefaultsAndBudget(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	s := &SweepJammer{}
	plan := s.PlanPhase(inform, &History{}, energy.NewPool(10), rng.New(1))
	if plan == nil || plan.JamCount() != 10 {
		t.Fatalf("budgeted sweep plan = %v", plan)
	}
	if s.Name() == "" {
		t.Fatal("name must be nonempty")
	}
}

func TestGreedyAdaptiveTargetsPhaseByProgress(t *testing.T) {
	inform, params := phaseFor(t, core.PhaseInform)
	prop := core.Phase{}
	request := core.Phase{}
	for _, ph := range params.Round(8) {
		switch ph.Kind {
		case core.PhasePropagate:
			prop = ph
		case core.PhaseRequest:
			request = ph
		}
	}
	// No history → nothing informed → she hits the inform phase.
	s := &GreedyAdaptive{}
	if plan := s.PlanPhase(inform, &History{N: 100}, nil, rng.New(1)); plan == nil {
		t.Fatal("with nothing informed she must block the inform phase")
	}
	// Partially informed → she hits propagation.
	s = &GreedyAdaptive{}
	hist := &History{N: 100, Outcomes: []PhaseOutcome{{InformedAfter: 40, ActiveAfter: 100}}}
	if plan := s.PlanPhase(inform, hist, nil, rng.New(1)); plan != nil {
		t.Fatal("partially informed: inform phase is no longer her target")
	}
	if plan := s.PlanPhase(prop, hist, nil, rng.New(1)); plan == nil {
		t.Fatal("partially informed: she must block propagation")
	}
	// Fully informed but active → she stalls the request phase.
	s = &GreedyAdaptive{}
	hist = &History{N: 100, Outcomes: []PhaseOutcome{{InformedAfter: 100, ActiveAfter: 60}}}
	if plan := s.PlanPhase(request, hist, nil, rng.New(1)); plan == nil {
		t.Fatal("fully informed: she must stall the request phase")
	}
}

func TestGreedyAdaptivePerRoundAllowance(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	s := &GreedyAdaptive{PerRound: 10}
	plan := s.PlanPhase(inform, &History{N: 100}, nil, rng.New(1))
	if plan == nil || plan.JamCount() != 10 {
		t.Fatalf("allowance ignored: %v", plan)
	}
	// Same round again: allowance exhausted.
	if plan := s.PlanPhase(inform, &History{N: 100}, nil, rng.New(1)); plan != nil {
		t.Fatal("per-round allowance must be enforced")
	}
}

func TestCompositeUnionsPlans(t *testing.T) {
	request, params := phaseFor(t, core.PhaseRequest)
	comp := Composite{Parts: []Strategy{
		PhaseBlocker{BlockRequest: true, Fraction: 0.3, Params: params},
		&NackSpoofer{Rate: 0.2},
	}}
	if !strings.Contains(comp.Name(), "phase-blocker") || !strings.Contains(comp.Name(), "nack-spoofer") {
		t.Fatalf("composite name = %q", comp.Name())
	}
	plan := comp.PlanPhase(request, &History{}, nil, rng.New(1))
	if plan == nil {
		t.Fatal("composite must plan")
	}
	if plan.JamCount() == 0 {
		t.Fatal("composite must carry the blocker's jams")
	}
	if len(plan.Injections()) == 0 {
		t.Fatal("composite must carry the spoofer's injections")
	}
}

func TestCompositeEmpty(t *testing.T) {
	inform, _ := phaseFor(t, core.PhaseInform)
	comp := Composite{Parts: []Strategy{Null{}, Null{}}}
	if plan := comp.PlanPhase(inform, &History{}, nil, rng.New(1)); plan != nil {
		t.Fatal("all-null composite must plan nothing")
	}
}
