package bitset

import (
	"testing"

	"rcbcast/internal/rng"
)

// reference is the naive model every word-level operation is checked
// against.
type reference map[int]bool

func (r reference) count() int {
	n := 0
	for _, v := range r {
		if v {
			n++
		}
	}
	return n
}

func TestSetBasics(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Count() != 0 || s.Any() {
		t.Fatalf("fresh set: len=%d count=%d any=%v", s.Len(), s.Count(), s.Any())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 8 || !s.Any() {
		t.Fatalf("count=%d any=%v", s.Count(), s.Any())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 7 {
		t.Fatalf("clear(64): get=%v count=%d", s.Get(64), s.Count())
	}
	// Out-of-range accesses are inert.
	s.Set(-1)
	s.Set(130)
	s.Clear(-1)
	s.Clear(130)
	if s.Get(-1) || s.Get(130) || s.Count() != 7 {
		t.Fatalf("out-of-range access perturbed the set")
	}
}

func TestSetRangeMatchesLoop(t *testing.T) {
	st := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + st.Intn(300)
		from := st.Intn(n+20) - 10
		to := st.Intn(n+20) - 10
		a, b := New(n), New(n)
		// Pre-populate identically so SetRange must OR, not overwrite.
		for i := 0; i < n; i += 7 {
			a.Set(i)
			b.Set(i)
		}
		a.SetRange(from, to)
		for i := from; i < to; i++ {
			b.Set(i)
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != b.Get(i) {
				t.Fatalf("n=%d SetRange(%d,%d): bit %d differs", n, from, to, i)
			}
		}
		if a.Count() != b.Count() {
			t.Fatalf("n=%d SetRange(%d,%d): count %d vs %d", n, from, to, a.Count(), b.Count())
		}
	}
}

func TestOrAndAgainstReference(t *testing.T) {
	st := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		n := 1 + st.Intn(260)
		a, b := New(n), New(n)
		ra, rb := reference{}, reference{}
		for i := 0; i < n; i++ {
			if st.Bernoulli(0.4) {
				a.Set(i)
				ra[i] = true
			}
			if st.Bernoulli(0.4) {
				b.Set(i)
				rb[i] = true
			}
		}
		or := New(n)
		or.Or(a)
		or.Or(b)
		and := New(n)
		and.Or(a)
		and.And(b)
		for i := 0; i < n; i++ {
			if want := ra[i] || rb[i]; or.Get(i) != want {
				t.Fatalf("n=%d or bit %d: got %v want %v", n, i, or.Get(i), want)
			}
			if want := ra[i] && rb[i]; and.Get(i) != want {
				t.Fatalf("n=%d and bit %d: got %v want %v", n, i, and.Get(i), want)
			}
		}
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or over mismatched lengths must panic")
		}
	}()
	New(64).Or(New(65))
}

func TestResetClearsResizeKeeps(t *testing.T) {
	s := New(128)
	s.Set(5)
	s.Reset(128)
	if s.Get(5) || s.Count() != 0 {
		t.Fatal("Reset must clear")
	}
	// Resize relies on the dirty-clearing discipline: a set bit that was
	// cleared stays cleared through shrink/grow cycles within capacity.
	s.Set(100)
	s.Clear(100)
	s.Resize(32)
	s.Resize(128)
	if s.Any() {
		t.Fatal("Resize exposed stale bits despite the cleared invariant")
	}
	// Growing past capacity yields zero words.
	s.Resize(4096)
	if s.Len() != 4096 || s.Any() {
		t.Fatalf("grown set: len=%d any=%v", s.Len(), s.Any())
	}
}

func TestAndNotAgainstReference(t *testing.T) {
	st := rng.New(13)
	for trial := 0; trial < 100; trial++ {
		n := 1 + st.Intn(260)
		a, b := New(n), New(n)
		ra, rb := reference{}, reference{}
		for i := 0; i < n; i++ {
			if st.Bernoulli(0.5) {
				a.Set(i)
				ra[i] = true
			}
			if st.Bernoulli(0.5) {
				b.Set(i)
				rb[i] = true
			}
		}
		a.AndNot(b)
		for i := 0; i < n; i++ {
			if want := ra[i] && !rb[i]; a.Get(i) != want {
				t.Fatalf("n=%d andnot bit %d: got %v want %v", n, i, a.Get(i), want)
			}
		}
	}
}

// TestAndNotTailWord pins the tail-word discipline: clearing against a
// full mask must not disturb the zero bits beyond Len in the last word.
func TestAndNotTailWord(t *testing.T) {
	a, b := New(70), New(70)
	a.SetRange(0, 70)
	b.SetRange(64, 70)
	a.AndNot(b)
	if got := a.Count(); got != 64 {
		t.Fatalf("count after tail AndNot = %d, want 64", got)
	}
	if w := a.Words(); w[1] != 0 {
		t.Fatalf("tail word not fully cleared: %#x", w[1])
	}
	// And the invariant holds when the subtrahend's tail word is full of
	// in-range ones.
	a.SetRange(0, 70)
	a.AndNot(a)
	if a.Any() {
		t.Fatal("self-AndNot left bits set")
	}
}

func TestAndNotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AndNot over mismatched lengths must panic")
		}
	}()
	New(64).AndNot(New(65))
}

// TestNextSetAgainstReference is the differential for the set-bit
// iterator: for random sets, walking NextSet must visit exactly the
// bits a naive per-bit loop visits, in order.
func TestNextSetAgainstReference(t *testing.T) {
	st := rng.New(17)
	for trial := 0; trial < 100; trial++ {
		n := 1 + st.Intn(400)
		s := New(n)
		var want []int
		for i := 0; i < n; i++ {
			if st.Bernoulli(0.1) {
				s.Set(i)
				want = append(want, i)
			}
		}
		var got []int
		for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: iterated %d bits, want %d", n, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("n=%d: bit %d of walk = %d, want %d", n, j, got[j], want[j])
			}
		}
	}
}

// TestNextSetEdges covers the cross-word hops and boundary arguments
// the differential is unlikely to isolate: a lone bit several zero
// words away, negative and past-the-end starts, and zero-length sets.
func TestNextSetEdges(t *testing.T) {
	s := New(300)
	s.Set(0)
	s.Set(257) // word 4, after three interior zero words
	if got := s.NextSet(-5); got != 0 {
		t.Fatalf("NextSet(-5) = %d, want 0", got)
	}
	if got := s.NextSet(1); got != 257 {
		t.Fatalf("NextSet(1) = %d, want 257 (cross-word hop)", got)
	}
	if got := s.NextSet(257); got != 257 {
		t.Fatalf("NextSet(257) = %d, want 257 (inclusive start)", got)
	}
	if got := s.NextSet(258); got != -1 {
		t.Fatalf("NextSet(258) = %d, want -1", got)
	}
	if got := s.NextSet(300); got != -1 {
		t.Fatalf("NextSet(Len) = %d, want -1", got)
	}
	empty := New(0)
	if got := empty.NextSet(0); got != -1 {
		t.Fatalf("zero-length NextSet = %d, want -1", got)
	}
	empty.AndNot(New(0)) // zero-length word ops are inert, not a panic
	if empty.Count() != 0 || empty.Any() {
		t.Fatal("zero-length set perturbed by AndNot")
	}
}

func TestWordsInvariant(t *testing.T) {
	s := New(70)
	s.SetRange(0, 70)
	if got := s.Count(); got != 70 {
		t.Fatalf("full range count = %d", got)
	}
	w := s.Words()
	if len(w) != 2 {
		t.Fatalf("70 bits needs 2 words, got %d", len(w))
	}
	if w[1]>>6 != 0 {
		t.Fatalf("bits beyond Len leaked into the last word: %#x", w[1])
	}
}
