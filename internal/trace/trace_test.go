package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
)

func samplePhase() core.Phase {
	p := core.PracticalParams(64, 2)
	return p.Round(6)[0]
}

func driveTracer(t Tracer) {
	ph := samplePhase()
	t.PhaseStart(ph)
	t.NodeInformed(3, ph)
	t.NodeInformed(4, ph)
	t.NodeTerminated(3, true, ph)
	t.NodeTerminated(9, false, ph)
	t.PhaseEnd(adversary.PhaseOutcome{Phase: ph, AliceSends: 7, JammedSlots: 11, InformedAfter: 2, ActiveAfter: 62})
	t.AliceTerminated(6)
	t.Done()
}

func TestTextTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewText(&buf)
	driveTracer(tr)
	out := buf.String()
	for _, want := range []string{
		"r6/inform", "alice=7", "jam=11", "+informed=2", "+done=1", "+stranded=1",
		"alice terminated in round 6", "run complete",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text trace missing %q:\n%s", want, out)
		}
	}
}

func TestJSONTracerWellFormed(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	driveTracer(tr)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("expected 8 NDJSON events, got %d", len(lines))
	}
	events := []string{}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", l, err)
		}
		events = append(events, m["event"].(string))
	}
	want := []string{"phase_start", "node_informed", "node_informed",
		"node_terminated", "node_terminated", "phase_end", "alice_terminated"}
	_ = want
	if events[0] != "phase_start" || events[len(events)-1] != "done" {
		t.Fatalf("event order wrong: %v", events)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &Counter{}, &Counter{}
	driveTracer(Multi{a, b})
	for _, c := range []*Counter{a, b} {
		if c.Phases != 1 || c.Informed != 2 || c.Terminated != 1 || c.Stranded != 1 {
			t.Fatalf("counter: %+v", c)
		}
		if c.AliceRound != 6 || !c.DoneCalled {
			t.Fatalf("counter: %+v", c)
		}
	}
}

func TestNopIsSilent(t *testing.T) {
	driveTracer(Nop{}) // must not panic
}

// failAfterWriter fails every write once `allow` bytes have gone
// through — a disk-full / closed-pipe stand-in.
type failAfterWriter struct {
	allow   int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.allow {
		return 0, errors.New("writer torn")
	}
	w.written += len(p)
	return len(p), nil
}

// TestJSONWriterErrorSurfaced pins the satellite fix: JSON used to
// discard encoder errors (`_ = enc.Encode(e)`), silently truncating
// trace files. The first failure must now be recorded, later events
// must not resurrect the stream, and Err must surface it after Done.
func TestJSONWriterErrorSurfaced(t *testing.T) {
	w := &failAfterWriter{allow: 40} // roughly one event line
	tr := NewJSON(w)
	driveTracer(tr)
	if tr.Err() == nil {
		t.Fatal("Err() must report the write failure")
	}
	if got := tr.Err().Error(); !strings.Contains(got, "writer torn") {
		t.Fatalf("Err() = %q, want the writer's error", got)
	}
	written := w.written
	tr.Done() // further events are no-ops on a torn stream
	if w.written != written {
		t.Fatal("events after the first failure must not write")
	}
}

func TestJSONErrNilOnSuccess(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	driveTracer(tr)
	if tr.Err() != nil {
		t.Fatalf("Err() = %v on a healthy writer", tr.Err())
	}
}
