package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"rcbcast/internal/scenario"
	"rcbcast/internal/sim/sink"
)

// clientIDHeader identifies the coordinator to the workers' per-client
// limiter: every shard submission shares one slot pool per worker.
const clientIDHeader = "rccoord"

// permanentError marks a failure no retry can fix (the worker rejected
// the submission as invalid) — the sweep fails immediately instead of
// burning attempts.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// workerClient runs shards on one worker service over its HTTP API.
type workerClient struct {
	base     string // normalized base URL, no trailing slash
	http     *http.Client
	scenario json.RawMessage // canonical scenario encoding, shared across shards
	trials   int
	baseSeed uint64
	stall    time.Duration
	jit      *jitterSource // per-slot deterministic backoff jitter
}

// jitterSource decorrelates retry backoff across worker slots. When a
// shared dependency fails, every slot's attempt fails in the same
// instant; pure exponential backoff then resubmits them in lockstep,
// hammering whatever just recovered. Scaling each delay by a per-slot
// pseudo-random factor in [0.5, 1.0) breaks the convoy. The source is
// a seeded xorshift64 — deterministic per (JitterSeed, worker, slot) so
// tests can pin exact delays — and needs no locking: each slot owns its
// own source.
type jitterSource struct{ state uint64 }

// newJitter derives a slot's jitter stream from the configured seed,
// the worker's base URL, and the slot ordinal, so no two slots (even on
// one worker) share a sequence.
func newJitter(seed uint64, base string, slot int) *jitterSource {
	h := fnv.New64a()
	io.WriteString(h, base)
	st := h.Sum64() ^ (seed + uint64(slot)*0x9e3779b97f4a7c15)
	if st == 0 {
		st = 1 // xorshift64 has a fixed point at zero
	}
	return &jitterSource{state: st}
}

// scale returns d scaled by the next jitter factor in [0.5, 1.0).
func (j *jitterSource) scale(d time.Duration) time.Duration {
	j.state ^= j.state << 13
	j.state ^= j.state >> 7
	j.state ^= j.state << 17
	f := 0.5 + float64(j.state>>11)/float64(1<<54) // 53 random bits → [0.5, 1.0)
	return time.Duration(float64(d) * f)
}

// submitBody mirrors service.SubmitRequest.
type submitBody struct {
	Scenario json.RawMessage `json:"scenario"`
	Trials   int             `json:"trials"`
	BaseSeed uint64          `json:"base_seed"`
	Shard    scenario.Shard  `json:"shard"`
}

// runShard executes one shard attempt end to end: submit (idempotent —
// a repeat lands on the same worker-side job and journal), then follow
// the result stream until every one of the shard's lines is buffered.
// The caller owns st exclusively for the duration of the call.
func (w *workerClient) runShard(ctx context.Context, st *shardState) error {
	id, err := w.submit(ctx, st.shard)
	if err != nil {
		return err
	}
	return w.follow(ctx, id, st)
}

// submit posts the shard job and returns its id. 4xx responses are
// permanent (the request itself is bad); everything else — connection
// errors, 429, 5xx — is retryable.
func (w *workerClient) submit(ctx context.Context, sh scenario.Shard) (string, error) {
	body, err := json.Marshal(submitBody{
		Scenario: w.scenario,
		Trials:   w.trials,
		BaseSeed: w.baseSeed,
		Shard:    sh,
	})
	if err != nil {
		return "", &permanentError{fmt.Errorf("dist: encode submission: %w", err)}
	}
	reqCtx, cancel := context.WithTimeout(ctx, w.stall)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, w.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", &permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientIDHeader)
	resp, err := w.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("dist: submit to %s: %w", w.base, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
	case resp.StatusCode == http.StatusTooManyRequests:
		return "", fmt.Errorf("dist: %s is busy: %s", w.base, snippet(data))
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return "", &permanentError{fmt.Errorf("dist: %s rejected shard %s: %s", w.base, sh, snippet(data))}
	default:
		return "", fmt.Errorf("dist: submit to %s: status %d: %s", w.base, resp.StatusCode, snippet(data))
	}
	var status struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &status); err != nil || status.ID == "" {
		return "", fmt.Errorf("dist: submit to %s: malformed response: %s", w.base, snippet(data))
	}
	return status.ID, nil
}

// follow streams the job's NDJSON results into the shard's line buffer.
// The worker replays the stream from byte zero on every attach, so a
// retry skips the st.sent lines already buffered by earlier attempts —
// determinism makes the replayed prefix identical, which is what lets a
// reassigned shard resume mid-stream without re-delivering a trial.
// Each accepted line is sanity-checked (its trial index must be the
// next sweep-global index) and folded into the shard's summary before
// buffering. A watchdog abandons the attempt if the stream goes silent
// for the stall timeout — the SIGKILLed-worker signature, since a dead
// TCP peer otherwise blocks the read indefinitely.
func (w *workerClient) follow(ctx context.Context, id string, st *shardState) error {
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	wd := time.AfterFunc(w.stall, cancel)
	defer wd.Stop()

	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, w.base+"/v1/jobs/"+id+"/results", nil)
	if err != nil {
		return &permanentError{err}
	}
	req.Header.Set("X-Client-ID", clientIDHeader)
	resp, err := w.http.Do(req)
	if err != nil {
		return fmt.Errorf("dist: attach to %s job %s: %w", w.base, id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: attach to %s job %s: status %d: %s", w.base, id, resp.StatusCode, snippet(data))
	}

	skip := st.sent // lines earlier attempts already buffered
	want := st.shard.Len()
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 && line[len(line)-1] == '\n' {
			wd.Reset(w.stall)
			switch {
			case skip > 0:
				skip--
			case st.sent >= want:
				return fmt.Errorf("dist: %s job %s emitted more than %d lines for shard %s", w.base, id, want, st.shard)
			default:
				if err := st.accept(line); err != nil {
					return fmt.Errorf("dist: %s job %s: %w", w.base, id, err)
				}
				if st.sent == want {
					close(st.lines)
					return nil
				}
			}
		}
		if err != nil {
			switch {
			case ctx.Err() != nil:
				return ctx.Err() // the whole run is stopping
			case reqCtx.Err() != nil:
				// Only the watchdog cancels reqCtx once ctx is ruled out.
				return fmt.Errorf("dist: %s job %s: stream stalled for %v at %d/%d lines", w.base, id, w.stall, st.sent, want)
			case errors.Is(err, io.EOF):
				return fmt.Errorf("dist: %s job %s: stream ended at %d/%d lines", w.base, id, st.sent, want)
			default:
				return fmt.Errorf("dist: %s job %s: read stream: %w", w.base, id, err)
			}
		}
	}
}

// snippet compacts an HTTP error body for a log-friendly message.
func snippet(data []byte) string {
	s := string(bytes.TrimSpace(data))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	if s == "" {
		return "(empty body)"
	}
	return s
}

// accept validates, folds, and buffers one result line. The line's
// trial index must be the shard's next sweep-global index — anything
// else means the worker's journal or feed is corrupt.
func (st *shardState) accept(line []byte) error {
	var rec sink.Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("malformed result line: %w", err)
	}
	if wantTrial := st.shard.Lo + st.sent; rec.Trial != wantTrial {
		return fmt.Errorf("result line has trial %d, want %d (shard %s)", rec.Trial, wantTrial, st.shard)
	}
	st.sum.add(&rec)
	st.lines <- line // never blocks: cap == shard.Len()
	st.sent++
	return nil
}
