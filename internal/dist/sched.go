package dist

import (
	"context"
	"sort"
	"sync"
)

// sched is the coordinator's shard scheduler: a priority queue of
// pending shard indices gated by the merge window. claim hands out the
// lowest pending index, but only while it lies within WindowShards of
// the merge frontier — the shard-granularity version of sim.Stream's
// ticket semaphore. The gate bounds buffered out-of-order results and
// guarantees the frontier shard (the one the merger is waiting on) is
// always claimable, which is what makes the merge loop deadlock-free:
// an unmerged shard is, at every instant, either buffered, running on
// some worker, or at the head of the pending queue inside the window.
type sched struct {
	mu       sync.Mutex
	pending  []int // sorted ascending; lowest claimed first
	frontier int   // shards [0, frontier) are fully merged
	done     int   // shards completed (lines all buffered)
	total    int
	window   int
	watch    chan struct{} // closed and replaced on every state change
}

// newSched plans shards [0, total); start > 0 marks a restored prefix
// (shards a previous coordinator process already merged, per the
// frontier journal) as done-and-merged, so only [start, total) is ever
// claimable.
func newSched(total, window, start int) *sched {
	s := &sched{
		pending:  make([]int, 0, total-start),
		frontier: start,
		done:     start,
		total:    total,
		window:   window,
		watch:    make(chan struct{}),
	}
	for i := start; i < total; i++ {
		s.pending = append(s.pending, i)
	}
	return s
}

// notifyLocked wakes every claim waiter; callers hold s.mu.
func (s *sched) notifyLocked() {
	close(s.watch)
	s.watch = make(chan struct{})
}

// claim blocks until a shard index inside the merge window is pending
// and returns it, or returns ok=false when every shard has completed,
// or ctx's error when canceled. An in-flight shard owned by another
// worker keeps claim waiting: it will either complete (markDone) or
// requeue, and both notify.
func (s *sched) claim(ctx context.Context) (idx int, ok bool, err error) {
	for {
		s.mu.Lock()
		if s.done == s.total {
			s.mu.Unlock()
			return 0, false, nil
		}
		if len(s.pending) > 0 && s.pending[0] < s.frontier+s.window {
			idx = s.pending[0]
			s.pending = s.pending[1:]
			s.mu.Unlock()
			return idx, true, nil
		}
		watch := s.watch
		s.mu.Unlock()
		select {
		case <-watch:
		case <-ctx.Done():
			return 0, false, ctx.Err()
		}
	}
}

// requeue returns a failed shard to the pending queue so any worker can
// reclaim it.
func (s *sched) requeue(idx int) {
	s.mu.Lock()
	at := sort.SearchInts(s.pending, idx)
	s.pending = append(s.pending, 0)
	copy(s.pending[at+1:], s.pending[at:])
	s.pending[at] = idx
	s.notifyLocked()
	s.mu.Unlock()
}

// markDone records that a shard's results are fully buffered, waking
// claimers so they can observe completion.
func (s *sched) markDone() {
	s.mu.Lock()
	s.done++
	s.notifyLocked()
	s.mu.Unlock()
}

// advance moves the merge frontier past one merged shard, widening the
// claim window.
func (s *sched) advance() {
	s.mu.Lock()
	s.frontier++
	s.notifyLocked()
	s.mu.Unlock()
}

// snapshot reports (frontier, done, pending count) for metrics.
func (s *sched) snapshot() (frontier, done, pending int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frontier, s.done, len(s.pending)
}
