// Package rcbcast is a faithful, executable reproduction of
//
//	Gilbert & Young, "Making Evildoers Pay: Resource-Competitive
//	Broadcast in Sensor Networks", PODC 2012 (arXiv:1202.4576).
//
// It implements the ε-BROADCAST protocol (the paper's Figures 1 and 2),
// the time-slotted single-hop channel model with an n-uniform Byzantine
// jamming adversary, the §4.1 decoy defence against reactive jammers, the
// §4.2 approximate-parameter mode, the baselines the paper compares
// against, and a harness that regenerates every quantitative claim of
// Theorem 1 as a measured experiment (see DESIGN.md and EXPERIMENTS.md).
//
// # Quickstart
//
// A run is described by a declarative, JSON-serializable Scenario:
//
//	res, err := rcbcast.Scenario{
//		N: 1024, K: 2, Seed: 1,
//		Adversary: rcbcast.AdversarySpec{Kind: "full"}, // Carol jams everything...
//		Budget:    rcbcast.BudgetSpec{Pool: 1 << 14},   // ...until her pool drains
//	}.Run()
//	if err != nil { ... }
//	fmt.Printf("informed %d/%d, alice paid %d, median node paid %d, Carol paid %d\n",
//		res.Informed, res.N, res.Alice.Cost, res.NodeCost.Median, res.AdversarySpent)
//
// Named scenarios ship every attack the paper analyzes:
//
//	sc, _ := rcbcast.LookupScenario("reactive-decoy")
//	sc.N = 1024
//	res, err := sc.Run()
//
// Monte-Carlo sweeps stream through a bounded-memory, cancellable run
// session: results reach composable sinks in deterministic trial order
// while only O(procs) results are ever live:
//
//	acc := rcbcast.NewFoldSink(1, func(r *rcbcast.Result) float64 { return r.InformedFrac() })
//	err := sc.Stream(ctx, 0 /* procs */, 1 /* base seed */, 0 /* point */, 1_000_000,
//		acc, rcbcast.NewProgressSink(os.Stderr, 1_000_000, 50_000))
//
// Cancel ctx and Stream returns a typed *PartialError; add a
// Checkpoint (StreamCheckpointed) and the sweep resumes byte-identically.
//
// The lower-level Options API remains for callers wiring custom
// strategies or tracers.
//
// The package is a façade over the implementation packages under
// internal/; everything a downstream user needs is re-exported here.
package rcbcast

import (
	"context"
	"io"

	"rcbcast/internal/adversary"
	"rcbcast/internal/baseline"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/multihop"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/topology"
	"rcbcast/internal/trace"
)

// Protocol configuration (internal/core).
type (
	// Params fully determines an ε-BROADCAST instance; construct with
	// PaperParams or PracticalParams and adjust fields as needed.
	Params = core.Params
	// Variant selects Figure 1 (k=2 exact) or Figure 2 (general k)
	// probability constants.
	Variant = core.Variant
	// QuietMode selects the request-phase termination test.
	QuietMode = core.QuietMode
	// Phase is one resolved phase descriptor of the round schedule.
	Phase = core.Phase
)

// Re-exported protocol constants.
const (
	VariantGeneralK = core.VariantGeneralK
	VariantK2Exact  = core.VariantK2Exact
	QuietAbsolute   = core.QuietAbsolute
	QuietFraction   = core.QuietFraction
)

// PaperParams returns the protocol exactly as analyzed in the paper.
func PaperParams(n, k int) Params { return core.PaperParams(n, k) }

// PracticalParams returns the same functional forms tuned for
// laptop-scale simulations (the experiment defaults).
func PracticalParams(n, k int) Params { return core.PracticalParams(n, k) }

// Execution (internal/engine).
type (
	// Options configures one protocol execution.
	Options = engine.Options
	// Result reports a finished execution.
	Result = engine.Result
	// AliceStats aggregates Alice's costs and exit status.
	AliceStats = engine.AliceStats
	// CostSummary summarizes the per-node cost distribution.
	CostSummary = engine.CostSummary
)

// Run executes the protocol on the fast sequential engine.
func Run(opts Options) (*Result, error) { return engine.Run(opts) }

// RunActors executes the protocol with one goroutine per node. Results
// are bit-for-bit identical to Run for identical Options.
func RunActors(opts Options) (*Result, error) { return engine.RunActors(opts) }

// RunContext executes the protocol on the fast sequential engine with
// phase-boundary cancellation: once ctx is done the run stops and
// returns a typed *PartialRunError.
func RunContext(ctx context.Context, opts Options) (*Result, error) {
	return engine.RunContext(ctx, opts)
}

// RunActorsContext is RunContext on the goroutine-per-node engine.
func RunActorsContext(ctx context.Context, opts Options) (*Result, error) {
	return engine.RunActorsContext(ctx, opts)
}

// PartialRunError is the typed error a canceled engine run returns; it
// carries the rounds and slots completed and unwraps to the context's
// error.
type PartialRunError = engine.PartialRunError

// Parallel sweeps (internal/sim).

// TrialSpec describes one engine execution for the parallel trial
// runner: protocol params, a derived seed, and factories for per-trial
// adversary state.
type TrialSpec = sim.TrialSpec

// RunTrials executes every spec across a pool of procs workers
// (procs <= 0 selects GOMAXPROCS) and returns results indexed like
// specs. Output is byte-identical for every procs value. It is a
// compatibility wrapper over Stream that collects all O(trials)
// results; large sweeps should Stream into sinks instead.
func RunTrials(procs int, specs []TrialSpec) ([]*Result, error) {
	return sim.RunTrials(procs, specs)
}

// Streaming run sessions (internal/sim + internal/sim/sink): the
// bounded-memory, cancellable execution path. Stream delivers results
// to composable sinks in trial order — byte-identical output for every
// worker count — while holding only O(procs) live results.
type (
	// Sink consumes per-trial results in deterministic trial order;
	// implement it or compose the built-ins below.
	Sink = sim.Sink
	// PartialError is the typed error of a stream stopped early
	// (cancellation, failing trial, failing sink); trials
	// [0, Delivered) reached every sink.
	PartialError = sim.PartialError
	// FuncSink adapts a function to Sink for ad-hoc aggregation.
	FuncSink = sink.Func
	// FoldSink folds trials into per-sweep-point streaming
	// accumulators (stats.Acc columns).
	FoldSink = sink.Fold
	// NDJSONSink writes one TrialRecord JSON line per trial.
	NDJSONSink = sink.NDJSON
	// CSVSink writes a header plus one TrialRecord row per trial.
	CSVSink = sink.CSV
	// ProgressSink reports count-based sweep progress to a side
	// channel.
	ProgressSink = sink.Progress
	// TopKSink retains the K highest-scoring trials in O(K) space.
	TopKSink = sink.TopK
	// ScoredResult is one trial retained by a TopKSink.
	ScoredResult = sink.Scored
	// Checkpoint journals delivered trials so interrupted sweeps
	// resume byte-identically.
	Checkpoint = sink.Checkpoint
	// TrialRecord is the flat per-trial summary the writers emit.
	TrialRecord = sink.Record
)

// Stream executes every spec on procs workers and delivers results to
// the sinks in trial order with bounded buffering. Cancellation of ctx
// stops workers at the next engine phase boundary and returns a
// *PartialError.
func Stream(ctx context.Context, procs int, specs []TrialSpec, sinks ...Sink) error {
	return sim.Stream(ctx, procs, specs, sinks...)
}

// NewNDJSONSink returns a sink writing one JSON line per trial to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return sink.NewNDJSON(w) }

// NewCSVSink returns a sink writing a CSV header plus one row per trial.
func NewCSVSink(w io.Writer) *CSVSink { return sink.NewCSV(w) }

// NewProgressSink returns a sink reporting progress to w every `every`
// trials (count-based, deterministic).
func NewProgressSink(w io.Writer, total, every int) *ProgressSink {
	return sink.NewProgress(w, total, every)
}

// NewTopKSink returns a sink retaining the k highest-scoring trials.
func NewTopKSink(k int, score func(*Result) float64) *TopKSink {
	return sink.NewTopK(k, score)
}

// NewFoldSink returns a sink folding trialsPerPoint consecutive trials
// per sweep point, one streaming accumulator per column extractor.
func NewFoldSink(trialsPerPoint int, cols ...func(*Result) float64) *FoldSink {
	return sink.NewFold(trialsPerPoint, cols...)
}

// OpenCheckpoint opens (or creates) a completed-trial journal.
func OpenCheckpoint(path string) (*Checkpoint, error) { return sink.OpenCheckpoint(path) }

// StreamCheckpointed is Stream with a resumable journal: trials already
// in cp replay to the sinks instead of re-running, so an interrupted
// sweep resumed with the same specs produces byte-identical output.
func StreamCheckpointed(ctx context.Context, procs int, specs []TrialSpec, cp *Checkpoint, sinks ...Sink) error {
	return sink.StreamCheckpointed(ctx, procs, specs, cp, sinks...)
}

// TrialSeed derives the engine seed for one trial of a sweep by mixing
// (base, trial) through SplitMix64; trial-seed sets from different bases
// are disjoint in practice.
func TrialSeed(base uint64, trial int) uint64 { return sim.TrialSeed(base, trial) }

// SweepSeed derives the engine seed for trial `trial` of sweep point
// `point` — use it instead of packing both into one TrialSeed index.
func SweepSeed(base uint64, point, trial int) uint64 { return sim.SweepSeed(base, point, trial) }

// Declarative scenarios (internal/scenario).
type (
	// Scenario is a complete, serializable run description: protocol
	// choice, adversary, budgets, engine. It round-trips through JSON,
	// builds Options or TrialSpecs, and runs on either engine.
	Scenario = scenario.Scenario
	// AdversarySpec is the plain-data description of Carol: a Kind from
	// the registry plus numeric knobs. New mints fresh strategy
	// instances, replacing hand-rolled factory closures.
	AdversarySpec = scenario.AdversarySpec
	// BudgetSpec declares Carol's pool (fixed or the paper's model) and
	// the optional per-device budgets.
	BudgetSpec = scenario.BudgetSpec
	// ScenarioOverrides are optional protocol-parameter adjustments.
	ScenarioOverrides = scenario.Overrides
	// NamedScenario couples a registry name with its scenario.
	NamedScenario = scenario.Named
	// AdversaryKind describes one registered adversary kind.
	AdversaryKind = scenario.KindInfo
)

// ParseAdversary decodes the compact adversary flag syntax, e.g.
// "random:p=0.3" or "blocker:inform,prop+spoofer:p=0.3".
func ParseAdversary(s string) (AdversarySpec, error) { return scenario.ParseAdversary(s) }

// LookupScenario returns a copy of a named scenario from the registry;
// set N (and usually K and Seed) before running it.
func LookupScenario(name string) (Scenario, bool) { return scenario.Lookup(name) }

// Scenarios returns the named-scenario registry in order.
func Scenarios() []NamedScenario { return scenario.All() }

// ScenarioNames returns the registry names in order.
func ScenarioNames() []string { return scenario.Names() }

// AdversaryKinds lists the registered adversary kinds.
func AdversaryKinds() []AdversaryKind { return scenario.Kinds() }

// DecodeScenario parses a JSON scenario (unknown fields rejected).
func DecodeScenario(data []byte) (Scenario, error) { return scenario.Decode(data) }

// EncodeScenario renders a scenario as indented JSON; encode→decode→
// encode is byte-stable.
func EncodeScenario(s Scenario) ([]byte, error) { return scenario.Encode(s) }

// Topologies (internal/topology): the neighborhood graph reception is
// resolved against — clique (the paper's single-hop channel, the
// default), grid, or Gilbert random-geometric. Set Scenario.Topology /
// Options.Topology; the zero value keeps the engine's byte-identical
// clique fast path.
type (
	// Topology is the immutable neighborhood graph interface.
	Topology = topology.Topology
	// TopologySpec is the plain-data, JSON/flag-serializable topology
	// description ("grid:w=32,reach=2", "gilbert:r=0.2").
	TopologySpec = topology.Spec
	// TopologyKind describes one registered topology kind.
	TopologyKind = topology.KindInfo
)

// ParseTopology decodes the compact topology flag syntax, e.g.
// "gilbert:r=0.2" or "grid:w=32,reach=2".
func ParseTopology(s string) (TopologySpec, error) { return topology.ParseSpec(s) }

// TopologyKinds lists the registered topology kinds.
func TopologyKinds() []TopologyKind { return topology.Kinds() }

// ReachableWithin returns the number of nodes within `hops` edge-hops
// of Alice on the topology (hops < 0: her whole component) — the
// delivery ceiling of the unmodified single-hop protocol is
// ReachableWithin(t, k).
func ReachableWithin(t Topology, hops int) int { return topology.ReachableWithin(t, hops) }

// Scratch recycles engine working buffers across runs (Options.Scratch)
// — the allocation-rate lever for tight trial loops. Results are
// byte-identical with and without one.
type Scratch = engine.Scratch

// NewScratch returns an empty scratch buffer set.
func NewScratch() *Scratch { return engine.NewScratch() }

// Adversaries (internal/adversary).
type (
	// Strategy is Carol: she commits a jamming/spoofing plan per phase.
	Strategy = adversary.Strategy
	// Reactive strategies additionally see the current phase's RSSI
	// activity bitmap (grant with Options.AllowReactive).
	Reactive = adversary.Reactive
	// Plan is a phase commitment; used when implementing custom
	// strategies.
	Plan = adversary.Plan
	// History is the adaptive adversary's view of past phases.
	History = adversary.History

	// Null never jams.
	Null = adversary.Null
	// FullJam jams every slot until the pool drains.
	FullJam = adversary.FullJam
	// RandomJam jams each slot independently with probability P.
	RandomJam = adversary.RandomJam
	// Bursty alternates jammed bursts with silent gaps.
	Bursty = adversary.Bursty
	// PhaseBlocker jams whole targeted phases while affordable
	// (Lemma 10's delay strategy).
	PhaseBlocker = adversary.PhaseBlocker
	// PartitionBlocker is the §2.3 n-uniform stranding attack.
	PartitionBlocker = adversary.PartitionBlocker
	// NackSpoofer is the §2.2 spoofed-NACK attack on the request phase.
	NackSpoofer = adversary.NackSpoofer
	// ReactiveJammer jams exactly the slots carrying transmissions
	// (§4.1 threat model).
	ReactiveJammer = adversary.ReactiveJammer
)

// Energy model (internal/energy).
type (
	// Pool is the adversary's shared energy purse.
	Pool = energy.Pool
	// BudgetModel computes the paper's budgets as functions of n and k.
	BudgetModel = energy.BudgetModel
)

// Unlimited is the budget value meaning "no cap".
const Unlimited = energy.Unlimited

// NewPool returns an adversary pool with the given aggregate budget.
func NewPool(budget int64) *Pool { return energy.NewPool(budget) }

// DefaultBudgets returns the paper's budget model with leading constant c
// for protocol parameter k.
func DefaultBudgets(c float64, k int) BudgetModel { return energy.DefaultBudgets(c, k) }

// Baselines (internal/baseline).
type (
	// BaselineResult reports a baseline protocol execution.
	BaselineResult = baseline.Result
	// KSYParams tunes the King–Saia–Young-style baseline.
	KSYParams = baseline.KSYParams
)

// Tracing (internal/trace).
type (
	// Tracer receives structured execution events (set Options.Tracer).
	Tracer = trace.Tracer
	// TextTracer renders a human-readable trace.
	TextTracer = trace.Text
	// JSONTracer emits NDJSON events.
	JSONTracer = trace.JSON
	// NopTracer ignores everything; embed it in custom tracers.
	NopTracer = trace.Nop
)

// NewTextTracer returns a human-readable tracer writing to w.
func NewTextTracer(w io.Writer) *TextTracer { return trace.NewText(w) }

// NewJSONTracer returns an NDJSON tracer writing to w.
func NewJSONTracer(w io.Writer) *JSONTracer { return trace.NewJSON(w) }

// Multi-hop extension (internal/multihop, the §5 open question) —
// orchestration over the one topology-aware kernel.
type (
	// MultiHopOptions configures a cluster-pipeline execution.
	MultiHopOptions = multihop.Options
	// MultiHopResult is the end-to-end outcome.
	MultiHopResult = multihop.Result
	// HopResult summarizes one cluster's broadcast.
	HopResult = multihop.HopResult
	// GridWaveOptions configures a lattice wave: one kernel execution
	// on the grid topology.
	GridWaveOptions = multihop.GridOptions
	// GridWaveResult pairs the kernel result with the ring profile.
	GridWaveResult = multihop.GridResult
)

// RunMultiHop executes ε-BROADCAST across a path of single-hop clusters,
// relaying m (still carrying Alice's authenticator) hop by hop.
func RunMultiHop(opts MultiHopOptions) (*MultiHopResult, error) {
	return multihop.Run(opts)
}

// RunGridWave executes the lattice wave on the unified kernel and
// reports delivery ring by ring; the unmodified single-hop protocol
// carries the wave exactly k hops.
func RunGridWave(opts GridWaveOptions) (*GridWaveResult, error) {
	return multihop.RunGrid(opts)
}

// RunNaive executes the naive always-on baseline against a T-slot jam.
func RunNaive(jamSlots, maxSlots int64) BaselineResult {
	return baseline.RunNaive(jamSlots, maxSlots)
}

// RunKSY executes the KSY'11-style baseline against a T-slot jam.
func RunKSY(seed uint64, jamSlots, maxSlots int64, params KSYParams) BaselineResult {
	return baseline.RunKSY(seed, jamSlots, maxSlots, params)
}
