package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rcbcast/internal/scenario"
)

// Shard lifecycle phases, as reported by Metrics.
const (
	phasePending  = "pending"
	phaseAssigned = "assigned"
	phaseDone     = "done"
)

// shardState is one planned shard's mutable state. A shard is owned
// exclusively: by the worker loop that claimed it while an attempt
// runs (sent, sum — handed off through the scheduler's lock), and by
// the merge loop after lines closes (sum — handed off through the
// close). phase and attempts are additionally read by Metrics, so they
// live behind the small mutex.
type shardState struct {
	shard scenario.Shard
	// lines buffers the shard's result lines for the merge loop. Its
	// capacity is the shard's full trial count, so a producing worker
	// never blocks on it — the merge window (sched) is what bounds
	// total buffered memory, at WindowShards·ShardSize lines. Closed
	// exactly once, when the last line is buffered.
	lines chan []byte
	sent  int     // lines buffered so far (== trials folded into sum)
	sum   Summary // per-shard fold, merged in shard order

	mu       sync.Mutex
	phase    string
	attempts int // failed run attempts
}

func (st *shardState) setPhase(p string) {
	st.mu.Lock()
	st.phase = p
	st.mu.Unlock()
}

// Coordinator distributes one sweep over a worker pool and merges the
// results. Create with New, run with Run (one sweep per Coordinator),
// observe with Metrics from any goroutine.
type Coordinator struct {
	cfg     Config
	workers []string
	logf    func(string, ...any)

	mu       sync.Mutex
	shards   []*shardState
	sched    *sched
	inflight map[string]int
	failErr  error

	totalTrials atomic.Int64
	merged      atomic.Int64
	retries     atomic.Int64
}

// New validates the worker pool and returns a Coordinator. Remaining
// Config defaults resolve at Run time (the shard-size heuristic needs
// the trial count).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: at least one worker is required")
	}
	workers := make([]string, len(cfg.Workers))
	for i, raw := range cfg.Workers {
		w, err := normalizeWorker(raw)
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}
	c := &Coordinator{cfg: cfg, workers: workers, inflight: make(map[string]int)}
	c.logf = func(format string, args ...any) {
		if cfg.Logf != nil {
			cfg.Logf(format, args...)
		}
	}
	return c, nil
}

// fail records the run's first fatal error and stops everything.
func (c *Coordinator) fail(cancel context.CancelFunc, err error) {
	c.mu.Lock()
	if c.failErr == nil {
		c.failErr = err
	}
	c.mu.Unlock()
	cancel()
}

// Run executes the sweep: plan shards, dispatch them across the worker
// pool, and write the merged NDJSON — byte-identical to a
// single-machine scenario.Stream run — to out, returning the
// deterministically merged summary. Run blocks until the sweep
// completes or fails; ctx cancellation aborts it.
func (c *Coordinator) Run(ctx context.Context, sc scenario.Scenario, trials int, baseSeed uint64, out io.Writer) (*Summary, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("dist: trials must be positive (got %d)", trials)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	enc, err := scenario.Encode(sc)
	if err != nil {
		return nil, fmt.Errorf("dist: encode scenario: %w", err)
	}
	cfg := c.cfg.withDefaults(trials)

	plan := Plan(trials, cfg.ShardSize)
	shards := make([]*shardState, len(plan))
	for i, sh := range plan {
		shards[i] = &shardState{
			shard: sh,
			lines: make(chan []byte, sh.Len()),
			phase: phasePending,
		}
	}
	sch := newSched(len(plan), cfg.WindowShards)
	c.mu.Lock()
	c.shards = shards
	c.sched = sch
	c.mu.Unlock()
	c.totalTrials.Store(int64(trials))
	c.logf("dist: %d trials in %d shards of ≤%d across %d workers (window %d shards)",
		trials, len(plan), cfg.ShardSize, len(c.workers), cfg.WindowShards)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, base := range c.workers {
		for i := 0; i < cfg.PerWorker; i++ {
			w := &workerClient{
				base:     base,
				http:     cfg.Client,
				scenario: enc,
				trials:   trials,
				baseSeed: baseSeed,
				stall:    cfg.StallTimeout,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.workerLoop(runCtx, cancel, cfg, w)
			}()
		}
	}

	bw := bufio.NewWriterSize(out, 64<<10)
	sum := &Summary{}
	mergeErr := c.merge(runCtx, cancel, bw, sum)
	cancel()
	wg.Wait()

	c.mu.Lock()
	failErr := c.failErr
	c.mu.Unlock()
	switch {
	case failErr != nil:
		return nil, failErr
	case mergeErr != nil:
		return nil, mergeErr
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("dist: write merged output: %w", err)
	}
	c.logf("dist: sweep complete: %s", sum)
	return sum, nil
}

// merge is the single in-order consumer: drain shard 0's lines, then
// shard 1's, … — each shard's channel closes when its last line is
// buffered, and advancing the frontier widens the scheduler's claim
// window. Because trial indices are sweep-global and shards tile the
// sweep, the concatenation is exactly the single-machine byte stream.
func (c *Coordinator) merge(ctx context.Context, cancel context.CancelFunc, out *bufio.Writer, sum *Summary) error {
	for _, st := range c.shards {
	drain:
		for {
			select {
			case line, ok := <-st.lines:
				if !ok {
					break drain
				}
				if _, err := out.Write(line); err != nil {
					err = fmt.Errorf("dist: write merged output: %w", err)
					c.fail(cancel, err)
					return err
				}
				c.merged.Add(1)
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		sum.merge(&st.sum)
		c.sched.advance()
	}
	return nil
}

// workerLoop is one worker slot: claim the lowest runnable shard, run
// it, repeat. Failed attempts requeue the shard immediately — any
// worker may reclaim it — while this slot backs off exponentially, so
// a dead worker throttles itself without delaying reassignment.
func (c *Coordinator) workerLoop(ctx context.Context, cancel context.CancelFunc, cfg Config, w *workerClient) {
	consecutive := 0
	for {
		idx, ok, err := c.sched.claim(ctx)
		if err != nil || !ok {
			return
		}
		st := c.shards[idx]
		st.setPhase(phaseAssigned)
		c.addInflight(w.base, 1)
		runErr := w.runShard(ctx, st)
		c.addInflight(w.base, -1)

		if runErr == nil {
			st.setPhase(phaseDone)
			c.sched.markDone()
			consecutive = 0
			continue
		}
		if ctx.Err() != nil {
			return
		}
		st.mu.Lock()
		st.attempts++
		attempts := st.attempts
		st.phase = phasePending
		st.mu.Unlock()
		var perm *permanentError
		if errors.As(runErr, &perm) {
			c.fail(cancel, runErr)
			return
		}
		if attempts >= cfg.MaxAttempts {
			c.fail(cancel, fmt.Errorf("dist: shard %s failed %d attempts: %w", st.shard, attempts, runErr))
			return
		}
		c.retries.Add(1)
		c.logf("dist: shard %s attempt %d failed on %s: %v — requeued", st.shard, attempts, w.base, runErr)
		c.sched.requeue(idx)

		consecutive++
		backoff := cfg.Backoff << (consecutive - 1)
		if backoff > cfg.BackoffCap || backoff <= 0 {
			backoff = cfg.BackoffCap
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return
		}
	}
}

func (c *Coordinator) addInflight(base string, d int) {
	c.mu.Lock()
	c.inflight[base] += d
	c.mu.Unlock()
}
