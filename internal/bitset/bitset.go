// Package bitset provides the fixed-length packed bitset the simulator
// resolves per-slot channel state against.
//
// It generalizes what grew up as adversary.Bitmap (the jam mask and the
// reactive RSSI view) into a small word-level substrate shared with the
// batched engine kernel, whose reception state is two bits per slot
// (busy / collided) instead of a count byte. Everything is expressed
// over 64-bit words so range fills, unions, and population counts run
// at memset/popcount speed rather than a bounds-checked loop per slot.
package bitset

import "math/bits"

// Set is a fixed-length bitset. The zero value is an empty set; size it
// with New, Reset, or Resize.
type Set struct {
	words []uint64
	n     int
}

// New returns an all-zero set over n bits.
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// wordsFor returns the word count backing n bits.
func wordsFor(n int) int { return (n + 63) / 64 }

// Reset re-sizes the set to n all-zero bits in place, reusing the word
// buffer when it is large enough — the engine recycles one set value
// across phases (and, via its scratches, across runs) this way.
func (s *Set) Reset(n int) {
	if n < 0 {
		n = 0
	}
	words := wordsFor(n)
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		clear(s.words)
	}
	s.n = n
}

// Resize re-sizes the set to n bits without clearing: the caller
// guarantees every bit it ever set has since been cleared (the batch
// kernel's dirty-slot discipline), so the exposed words are already
// zero. Growing past capacity allocates a fresh zero buffer exactly as
// Reset would.
func (s *Set) Resize(n int) {
	if n < 0 {
		n = 0
	}
	words := wordsFor(n)
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
	}
	s.n = n
}

// Len returns the number of bits.
func (s *Set) Len() int { return s.n }

// Set marks bit i; out-of-range indices are ignored.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks bit i.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is marked.
func (s *Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of marked bits — a word-parallel population
// count (one OnesCount64 per 64 bits), not a per-bit walk.
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// SetRange marks bits [from, to), clamped to [0, Len). Interior words
// are filled whole, so a phase-wide jam mask costs Len/64 stores
// instead of Len read-modify-writes.
func (s *Set) SetRange(from, to int) {
	if from < 0 {
		from = 0
	}
	if to > s.n {
		to = s.n
	}
	if from >= to {
		return
	}
	fw, lw := from>>6, (to-1)>>6
	head := ^uint64(0) << (uint(from) & 63)
	tail := ^uint64(0) >> (63 - (uint(to-1) & 63))
	if fw == lw {
		s.words[fw] |= head & tail
		return
	}
	s.words[fw] |= head
	for w := fw + 1; w < lw; w++ {
		s.words[w] = ^uint64(0)
	}
	s.words[lw] |= tail
}

// Or folds o into s (s |= o). The sets must have equal length.
func (s *Set) Or(o *Set) {
	if s.n != o.n {
		panic("bitset: Or over sets of different lengths")
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// AndNot clears every bit of s that is set in o (s &^= o), one word
// operation per 64 bits. The sets must have equal length. The batched
// engine kernel clears its collision set against the busy set this way
// at phase end instead of walking the dirty slots bit by bit.
func (s *Set) AndNot(o *Set) {
	if s.n != o.n {
		panic("bitset: AndNot over sets of different lengths")
	}
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// NextSet returns the index of the first marked bit at or after i, or
// -1 when no such bit exists. Iterating a sparse set with
//
//	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1)
//
// skips runs of zero words whole instead of testing every bit, which is
// what lets the reactive adversary walk only the active slots of a
// phase.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i >> 6
	// Mask off the bits below i in the first word, then scan whole words.
	word := s.words[w] &^ (1<<(uint(i)&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(s.words) {
			return -1
		}
		word = s.words[w]
	}
}

// And intersects s with o (s &= o). The sets must have equal length.
func (s *Set) And(o *Set) {
	if s.n != o.n {
		panic("bitset: And over sets of different lengths")
	}
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Any reports whether any bit is marked.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Words exposes the packed backing words (bit i lives at word i/64, bit
// i%64). Bits at positions >= Len within the last word are zero as long
// as callers mutate only through the Set API. Callers may read and
// write words directly for word-at-a-time algorithms (plan truncation,
// the reactive activity union); they must preserve that invariant.
func (s *Set) Words() []uint64 { return s.words }
