// Package service is the sweep-job layer: a long-running HTTP server
// that lets many clients drive the scenario/streaming/checkpoint stack
// as jobs.
//
// A client POSTs a scenario (the same JSON internal/scenario decodes
// and validates everywhere else — nothing is scheduled before the spec
// passes the Scenario/AdversarySpec/TopologySpec validation discipline)
// plus a trial count, and gets back a job id. Jobs run on one shared
// engine pool through a bounded FIFO queue with per-client in-flight
// caps, so heavy users queue behind their own work instead of starving
// everyone else's.
//
// Durability is the checkpoint journal's (DESIGN.md §8): every job
// writes through sink.Checkpoint keyed by the sweep fingerprint, so a
// killed server — SIGKILL included — resumes each interrupted job from
// its journaled prefix on restart, and the job's final NDJSON output is
// byte-identical to an uninterrupted run. Live result streaming reads
// the same bytes: a subscriber attaching mid-job (or after a resume)
// replays the output from trial 0 and then follows appends, so every
// subscriber sees the one canonical byte stream.
//
// The layering is strict: service sits above scenario, sim and
// sim/sink, and below cmd/rcserved. It adds no execution semantics of
// its own — determinism, the live-result bound (≤ sim.Window(procs) per
// running job), and resume byte-identity are all inherited from the
// layers beneath and pinned end to end by this package's tests.
package service

import "time"

// Config sizes the service. The zero value of any field selects its
// default, so Config{Dir: dir} is a working single-runner service.
type Config struct {
	// Dir is the job store root: one subdirectory per job holding the
	// job record, the checkpoint journal, and the NDJSON output.
	// Required.
	Dir string
	// Procs is the engine worker-pool size each running job uses
	// (<= 0 selects GOMAXPROCS, as everywhere in internal/sim).
	Procs int
	// Runners is the number of jobs executing concurrently (default 1).
	// Each runner drives one job's sweep at a time; the engine pool
	// parallelism lives inside the job (Procs), not here.
	Runners int
	// QueueDepth bounds the FIFO of jobs waiting for a runner
	// (default 64). Submissions beyond it are rejected with 429.
	QueueDepth int
	// PerClient caps one client's in-flight (queued + running) jobs
	// (default 4). Submissions beyond it are rejected with 429.
	PerClient int
	// MaxBody bounds a submit request's body in bytes (default 1 MiB).
	MaxBody int64
	// Logf receives operational log lines (nil discards them). Wired
	// here rather than set afterwards so restart-time resume decisions
	// are logged too.
	Logf func(format string, args ...any)
}

// Defaults, exported so cmd/rcserved's flag help states them once.
// DefaultDrainTimeout bounds graceful shutdown: running jobs are
// canceled at the next engine phase boundary and drained to their
// checkpoints within the deadline the caller passes to Manager.Close
// (cmd/rcserved's -drain flag).
const (
	DefaultRunners      = 1
	DefaultQueueDepth   = 64
	DefaultPerClient    = 4
	DefaultDrainTimeout = 10 * time.Second
	defaultMaxBody      = 1 << 20
)

// withDefaults resolves zero fields to their defaults.
func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = DefaultRunners
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.PerClient <= 0 {
		c.PerClient = DefaultPerClient
	}
	if c.MaxBody <= 0 {
		c.MaxBody = defaultMaxBody
	}
	return c
}
