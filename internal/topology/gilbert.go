package topology

import (
	"math/bits"

	"rcbcast/internal/rng"
)

// Gilbert is the random geometric graph: n points drawn uniformly in
// the unit square, two nodes adjacent iff their Euclidean distance is
// at most Radius. Alice transmits from the center (1/2, 1/2), the
// deterministic position that keeps her expected audience at the
// full πr²n for every radius.
//
// Construction draws from the stream keyed (seed, StreamActor), so the
// graph is a pure function of the engine seed: trials of a sweep each
// get an independent graph, reproducible across worker counts.
type Gilbert struct {
	n      int
	radius float64
	xs, ys []float64
	adj    bitmatrix
	degs   []int
	alice  []bool
}

// NewGilbert draws the radius-r geometric graph over n points from the
// given seed.
func NewGilbert(n int, radius float64, seed uint64) *Gilbert {
	return NewGilbertInto(n, radius, seed, nil)
}

// NewGilbertInto is NewGilbert building into the scratch's reused
// buffers (nil allocates fresh ones). The returned graph is
// byte-identical either way and, with a scratch, valid until the next
// build on it.
func NewGilbertInto(n int, radius float64, seed uint64, sc *Scratch) *Gilbert {
	if sc == nil {
		sc = NewScratch()
	}
	row := (n + 63) / 64
	sc.xs = grow(sc.xs, n)
	sc.ys = grow(sc.ys, n)
	sc.degs = grow(sc.degs, n)
	sc.alice = grow(sc.alice, n)
	sc.adjWords = grow(sc.adjWords, row*n)
	clear(sc.degs)
	clear(sc.adjWords)
	g := &Gilbert{
		n:      n,
		radius: radius,
		xs:     sc.xs,
		ys:     sc.ys,
		adj:    bitmatrix{words: sc.adjWords, row: row},
		degs:   sc.degs,
		alice:  sc.alice,
	}
	var st rng.Stream
	st.Reseed(seed, StreamActor)
	for i := 0; i < n; i++ {
		g.xs[i] = st.Float64()
		g.ys[i] = st.Float64()
	}
	r2 := radius * radius
	// Bucket points into cells of side >= radius: all neighbors of a
	// point lie in its 3x3 cell block. Cell count is capped near sqrt(n)
	// so tiny radii cannot allocate an absurd cell grid.
	cells := 1
	if radius < 1 {
		cells = int(1 / radius)
		if cells < 1 {
			cells = 1
		}
		if max := isqrtCeil(n) + 1; cells > max {
			cells = max
		}
	}
	// Cell membership as head/next chains over scratch arrays — the
	// adjacency produced is order-independent, so replacing the
	// historical per-bucket slices changes no graph.
	sc.bucketHead = grow(sc.bucketHead, cells*cells)
	sc.bucketNext = grow(sc.bucketNext, n)
	for i := range sc.bucketHead {
		sc.bucketHead[i] = -1
	}
	cellOf := func(v float64) int {
		c := int(v * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	for i := 0; i < n; i++ {
		c := cellOf(g.ys[i])*cells + cellOf(g.xs[i])
		sc.bucketNext[i] = sc.bucketHead[c]
		sc.bucketHead[c] = int32(i)
	}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(g.xs[i]), cellOf(g.ys[i])
		for dy := -1; dy <= 1; dy++ {
			by := cy + dy
			if by < 0 || by >= cells {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				bx := cx + dx
				if bx < 0 || bx >= cells {
					continue
				}
				for j32 := sc.bucketHead[by*cells+bx]; j32 >= 0; j32 = sc.bucketNext[j32] {
					j := int(j32)
					if j <= i {
						continue
					}
					ddx, ddy := g.xs[i]-g.xs[j], g.ys[i]-g.ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.adj.set(i, j)
						g.adj.set(j, i)
						g.degs[i]++
						g.degs[j]++
					}
				}
			}
		}
		ddx, ddy := g.xs[i]-0.5, g.ys[i]-0.5
		g.alice[i] = ddx*ddx+ddy*ddy <= r2
	}
	return g
}

func (g *Gilbert) Name() string   { return "gilbert" }
func (g *Gilbert) N() int         { return g.n }
func (g *Gilbert) Complete() bool { return false }

// Radius reports the connection radius the graph was built with.
func (g *Gilbert) Radius() float64 { return g.radius }

// Position returns node i's point in the unit square.
func (g *Gilbert) Position(i int) (x, y float64) { return g.xs[i], g.ys[i] }

func (g *Gilbert) AliceHears(node int) bool { return g.alice[node] }

func (g *Gilbert) Adjacent(src, listener int) bool {
	if src == listener {
		return false
	}
	return g.adj.get(src, listener)
}

func (g *Gilbert) Degree(node int) int { return g.degs[node] }

// appendHeard implements the CSR fast fill by scanning the listener's
// bitmatrix row word by word; ids come out ascending.
func (g *Gilbert) appendHeard(dst []int32, listener int) []int32 {
	row := g.adj.words[listener*g.adj.row : (listener+1)*g.adj.row]
	for w, word := range row {
		base := int32(w * 64)
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// bitmatrix is a dense n x n adjacency bitset (rows of packed uint64
// words): O(1) Adjacent at n²/8 bytes, a fine trade at simulation n.
type bitmatrix struct {
	words []uint64
	row   int // words per row
}

func (b bitmatrix) set(i, j int)      { b.words[i*b.row+j/64] |= 1 << (uint(j) % 64) }
func (b bitmatrix) get(i, j int) bool { return b.words[i*b.row+j/64]&(1<<(uint(j)%64)) != 0 }
