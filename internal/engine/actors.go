package engine

import (
	"runtime"
	"sync"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
)

// RunActors executes the protocol with one long-lived goroutine per node —
// the natural Go mapping for a sensor network. Each actor owns its node's
// state exclusively: it generates the node's transmission commitments and
// resolves its listening against the coordinator's frozen per-phase
// channel snapshot. The coordinator (this goroutine) owns the shared
// channel state, Alice, and the adversary.
//
// Because every random decision is drawn from the same keyed streams as
// the sequential engine and all shared state is frozen during the parallel
// passes, RunActors produces results bit-for-bit identical to Run — the
// equivalence test asserts this. It is also a real parallel speedup for
// large n (see BenchmarkE11Engines).
func RunActors(opts Options) (*Result, error) {
	r, err := newRun(&opts)
	if err != nil {
		return nil, err
	}
	defer r.releaseScratch()
	exec := newActorPool(r)
	defer exec.shutdown()
	if err := r.loop(nil, exec); err != nil {
		return nil, err
	}
	return r.result(), nil
}

// actorWork is one phase-pass assignment to a node actor.
type actorWork struct {
	pass int // passSends or passListens
	ph   core.Phase
	plan *adversary.Plan
}

const (
	passSends = iota + 1
	passListens
)

// actorPool runs one goroutine per node, each processing phase passes for
// its node. Nodes never touch each other's state; the coordinator waits
// for the whole pool between passes, so the channel snapshot the listeners
// read is frozen.
type actorPool struct {
	r    *run
	work []chan actorWork
	wg   sync.WaitGroup
	once sync.Once
}

func newActorPool(r *run) *actorPool {
	p := &actorPool{r: r, work: make([]chan actorWork, len(r.nodes))}
	// Cap simultaneous OS-level parallelism implicitly via GOMAXPROCS;
	// goroutines are cheap enough for one per node.
	_ = runtime.GOMAXPROCS(0)
	for i := range p.work {
		ch := make(chan actorWork, 1)
		p.work[i] = ch
		node := &r.nodes[i]
		go func() {
			for w := range ch {
				switch w.pass {
				case passSends:
					r.planNodeSends(node, w.ph)
				case passListens:
					r.walkNodeListens(node, w.ph, w.plan)
				}
				p.wg.Done()
			}
		}()
	}
	return p
}

func (p *actorPool) broadcast(w actorWork) {
	p.wg.Add(len(p.work))
	for _, ch := range p.work {
		ch <- w
	}
	p.wg.Wait()
}

func (p *actorPool) eachNodeSends(ph core.Phase) {
	p.broadcast(actorWork{pass: passSends, ph: ph})
}

func (p *actorPool) eachNodeListens(ph core.Phase, plan *adversary.Plan) {
	p.broadcast(actorWork{pass: passListens, ph: ph, plan: plan})
}

func (p *actorPool) shutdown() {
	p.once.Do(func() {
		for _, ch := range p.work {
			close(ch)
		}
	})
}

var _ phaseExecutor = (*actorPool)(nil)
