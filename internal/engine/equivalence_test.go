package engine

import (
	"reflect"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
)

// equivalenceConfigs covers the behavioural surface: benign runs, every
// adversary family, budgets, decoys, perturbation, and general k.
func equivalenceConfigs() map[string]func() Options {
	n := 192
	return map[string]func() Options{
		"benign": func() Options {
			return Options{Params: core.PracticalParams(n, 2), Seed: 101, RecordPhases: true}
		},
		"full-jam": func() Options {
			return Options{
				Params:   core.PracticalParams(n, 2),
				Seed:     102,
				Strategy: adversary.FullJam{},
				Pool:     energy.NewPool(15000),
			}
		},
		"phase-blocker": func() Options {
			params := core.PracticalParams(n, 2)
			return Options{
				Params: params,
				Seed:   103,
				Strategy: adversary.PhaseBlocker{
					BlockInform: true, BlockPropagate: true, Params: &params,
				},
				Pool:         energy.NewPool(30000),
				RecordPhases: true,
			}
		},
		"partition": func() Options {
			return Options{
				Params: core.PracticalParams(n, 2),
				Seed:   104,
				Strategy: &adversary.PartitionBlocker{
					Stranded: func(node int) bool { return node%16 == 0 },
				},
			}
		},
		"spoofer": func() Options {
			return Options{
				Params:   core.PracticalParams(n, 2),
				Seed:     105,
				Strategy: &adversary.NackSpoofer{Rate: 0.4, MaxRounds: 2},
			}
		},
		"reactive-decoy": func() Options {
			params := core.PracticalParams(n, 2)
			params.Decoy = true
			params.DecoyProb = 0.75 / float64(n)
			params.ListenBoost = 4
			return Options{
				Params:        params,
				Seed:          106,
				Strategy:      adversary.ReactiveJammer{},
				Pool:          energy.NewPool(15000),
				AllowReactive: true,
			}
		},
		"budgets": func() Options {
			return Options{
				Params:      core.PracticalParams(n, 2),
				Seed:        107,
				NodeBudget:  40,
				AliceBudget: 500,
			}
		},
		"perturb": func() Options {
			return Options{
				Params: core.PracticalParams(n, 2),
				Seed:   108,
				Perturb: func(node int) (float64, float64) {
					return 1 + float64(node%3)/2, 1 / (1 + float64(node%2)) // deterministic
				},
			}
		},
		"k3": func() Options {
			return Options{Params: core.PracticalParams(n, 3), Seed: 109}
		},
		"random-jam": func() Options {
			return Options{
				Params:   core.PracticalParams(n, 2),
				Seed:     110,
				Strategy: adversary.RandomJam{P: 0.3},
				Pool:     energy.NewPool(20000),
			}
		},
		"bursty": func() Options {
			return Options{
				Params:   core.PracticalParams(n, 2),
				Seed:     111,
				Strategy: adversary.Bursty{Burst: 16, Gap: 16},
				Pool:     energy.NewPool(20000),
			}
		},
	}
}

// TestEngineEquivalence asserts that the sequential engine and the actor
// engine produce bit-for-bit identical results: same informed sets, same
// per-node costs, same adversary spend, same phase records. This is the
// core guarantee that lets experiments use the fast engine while the actor
// engine vouches for the concurrency story (run with -race).
func TestEngineEquivalence(t *testing.T) {
	for name, mk := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			seq, err := Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			act, err := RunActors(mk())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, act) {
				t.Fatalf("engines diverged:\nsequential: %+v\nactors:     %+v", seq, act)
			}
		})
	}
}

func TestActorEngineBasics(t *testing.T) {
	res, err := RunActors(Options{Params: core.PracticalParams(256, 2), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 256 || !res.Completed {
		t.Fatalf("actor engine benign run: %+v", res)
	}
}

func TestActorEngineRejectsInvalidOptions(t *testing.T) {
	opts := Options{Params: core.PracticalParams(128, 2)}
	opts.Params.N = 0
	if _, err := RunActors(opts); err == nil {
		t.Fatal("invalid options must be rejected")
	}
}
