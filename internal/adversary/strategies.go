package adversary

import (
	"fmt"

	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/msg"
	"rcbcast/internal/rng"
)

// affordableJams caps a desired jam count by the pool's remaining budget.
func affordableJams(pool *energy.Pool, want int64) int64 {
	if pool == nil {
		return want
	}
	rem := pool.Remaining()
	if rem < want {
		return rem
	}
	return want
}

// jamSpread marks `count` jams spread evenly over [0, length) with a
// random phase offset, so the jammed set is uncorrelated with any
// prefix/suffix structure while remaining O(count) to build. Against
// listeners who sample slots uniformly at random, an evenly spread set of
// a given size is exactly as harmful as any other set of that size.
func jamSpread(p *Plan, length int, count int64, st *rng.Stream) {
	if count <= 0 || length <= 0 {
		return
	}
	if count >= int64(length) {
		p.JamRange(0, length)
		return
	}
	stride := float64(length) / float64(count)
	offset := st.Float64() * stride
	for j := int64(0); j < count; j++ {
		slot := int(offset + float64(j)*stride)
		if slot >= length {
			slot = length - 1
		}
		p.Jam(slot)
	}
}

// FullJam jams every slot of every phase until the pool runs dry — the
// maximal-damage baseline attacker. Its total spend T is essentially its
// budget, making it the canonical adversary for the Theorem 1 cost-scaling
// experiments (E1, E2).
type FullJam struct{}

// Name implements Strategy.
func (FullJam) Name() string { return "full-jam" }

// PlanPhase implements Strategy.
func (FullJam) PlanPhase(ph core.Phase, _ *History, pool *energy.Pool, _ *rng.Stream) *Plan {
	want := affordableJams(pool, int64(ph.Length))
	if want <= 0 {
		return nil
	}
	p := NewPlan(ph.Length)
	p.JamRange(0, int(want))
	return p
}

// RandomJam jams each slot independently with probability P.
type RandomJam struct {
	P float64
}

// Name implements Strategy.
func (s RandomJam) Name() string { return fmt.Sprintf("random-jam(p=%.3g)", s.P) }

// PlanPhase implements Strategy.
func (s RandomJam) PlanPhase(ph core.Phase, _ *History, pool *energy.Pool, st *rng.Stream) *Plan {
	if s.P <= 0 {
		return nil
	}
	p := NewPlan(ph.Length)
	var planned int64
	budget := affordableJams(pool, int64(ph.Length))
	slot := 0
	for planned < budget {
		g := st.Geometric(s.P)
		if g >= ph.Length-slot {
			break
		}
		slot += g
		p.Jam(slot)
		planned++
		slot++
		if slot >= ph.Length {
			break
		}
	}
	if planned == 0 {
		p.Release()
		return nil
	}
	return p
}

// Bursty alternates Burst jammed slots with Gap silent ones — the
// rate-limited bursty jammer of Awerbuch et al. discussed in §1.2.
type Bursty struct {
	Burst int
	Gap   int
}

// Name implements Strategy.
func (s Bursty) Name() string { return fmt.Sprintf("bursty(%d/%d)", s.Burst, s.Gap) }

// PlanPhase implements Strategy.
func (s Bursty) PlanPhase(ph core.Phase, _ *History, pool *energy.Pool, st *rng.Stream) *Plan {
	if s.Burst <= 0 {
		return nil
	}
	gap := s.Gap
	if gap < 0 {
		gap = 0
	}
	p := NewPlan(ph.Length)
	budget := affordableJams(pool, int64(ph.Length))
	var planned int64
	// Random initial offset so bursts are not phase-aligned.
	slot := st.Intn(s.Burst + gap + 1)
	for slot < ph.Length && planned < budget {
		for b := 0; b < s.Burst && slot < ph.Length && planned < budget; b++ {
			p.Jam(slot)
			planned++
			slot++
		}
		slot += gap
	}
	if planned == 0 {
		p.Release()
		return nil
	}
	return p
}

// PhaseBlocker is Carol's optimal delay strategy from Lemma 10: in every
// round, jam the targeted phases for as long as the pool affords the
// *whole* block (a partial block is wasted energy, so she stops cleanly
// when she can no longer block — which is exactly when the protocol
// completes).
//
// The paper's asymptotic "blocked" threshold is half the phase; at
// laptop-scale n the protocol's w.h.p. margins are wide enough that
// half-jamming barely dents delivery (an informative reproduction finding
// — see EXPERIMENTS.md), so the default Fraction is 1.0: jam the entire
// phase. The cost asymptotics Lemma 10 relies on — Θ(phase length) per
// blocked phase — are identical at any constant fraction.
type PhaseBlocker struct {
	// BlockInform / BlockPropagate / BlockRequest select the targets.
	// Blocking inform or propagation stalls message dissemination;
	// blocking request phases keeps Alice and the nodes running extra
	// rounds (the spoof-adjacent attack of §2.2).
	BlockInform    bool
	BlockPropagate bool
	BlockRequest   bool
	// Fraction of each targeted phase to jam (default 1.0; set ~0.55 to
	// reproduce the paper's literal threshold).
	Fraction float64
	// Params supplies BlockedFraction; required.
	Params *core.Params
}

// Name implements Strategy.
func (s PhaseBlocker) Name() string {
	return fmt.Sprintf("phase-blocker(inform=%t,prop=%t,req=%t)",
		s.BlockInform, s.BlockPropagate, s.BlockRequest)
}

func (s PhaseBlocker) targets(kind core.PhaseKind) bool {
	switch kind {
	case core.PhaseInform:
		return s.BlockInform
	case core.PhasePropagate:
		return s.BlockPropagate
	case core.PhaseRequest:
		return s.BlockRequest
	default:
		return false
	}
}

// PlanPhase implements Strategy.
func (s PhaseBlocker) PlanPhase(ph core.Phase, _ *History, pool *energy.Pool, st *rng.Stream) *Plan {
	if !s.targets(ph.Kind) || s.Params == nil {
		return nil
	}
	frac := s.Fraction
	if frac <= 0 {
		frac = 1.0
	}
	if frac > 1 {
		frac = 1
	}
	want := int64(frac * float64(ph.Length))
	if want > int64(ph.Length) {
		want = int64(ph.Length)
	}
	if want <= 0 {
		return nil
	}
	if affordableJams(pool, want) < want {
		return nil // cannot block: spend nothing (Lemma 10's stopping rule)
	}
	p := NewPlan(ph.Length)
	jamSpread(p, ph.Length, want, st)
	return p
}

// PartitionBlocker is the n-uniform stranding attack of §2.3: Carol jams
// the inform and propagation phases but *spares every listener outside a
// chosen stranded set*, so the rest of the network receives m and the
// request phases go quiet — at which point everyone terminates and the
// stranded set is left uninformed forever. This is the attack that makes
// the (1-ε) in Theorem 1 tight.
type PartitionBlocker struct {
	// Stranded reports whether a node is in the stranded set.
	Stranded func(node int) bool
	// StopAfterRounds bounds her spend: she only needs to maintain the
	// partition until the quiet test fires (0 = keep going while the
	// pool lasts).
	StopAfterRounds int
	startRound      int
}

// Name implements Strategy.
func (s *PartitionBlocker) Name() string { return "partition-blocker" }

// PlanPhase implements Strategy.
func (s *PartitionBlocker) PlanPhase(ph core.Phase, hist *History, pool *energy.Pool, _ *rng.Stream) *Plan {
	if ph.Kind == core.PhaseRequest || s.Stranded == nil {
		return nil
	}
	if s.startRound == 0 {
		s.startRound = ph.Round
	}
	if s.StopAfterRounds > 0 && ph.Round >= s.startRound+s.StopAfterRounds {
		return nil
	}
	want := affordableJams(pool, int64(ph.Length))
	if want < int64(ph.Length) {
		return nil // partial partition leaks m into the stranded set
	}
	p := NewPlan(ph.Length)
	p.JamRange(0, ph.Length)
	p.SetDisrupt(func(_, listener int) bool { return s.Stranded(listener) })
	return p
}

// NackSpoofer is the §2.2 spoofing attack: Carol's Byzantine devices
// transmit forged NACKs during request phases so the channel never goes
// quiet, tricking Alice (and the nodes) into running extra rounds. Rate
// is the per-slot spoof probability (default 0.5 — enough that most of
// Alice's listen samples are noisy).
type NackSpoofer struct {
	Rate float64
	// MaxRounds bounds the attack (0 = while the pool lasts).
	MaxRounds  int
	startRound int
}

// Name implements Strategy.
func (s *NackSpoofer) Name() string { return "nack-spoofer" }

// PlanPhase implements Strategy.
func (s *NackSpoofer) PlanPhase(ph core.Phase, _ *History, pool *energy.Pool, st *rng.Stream) *Plan {
	if ph.Kind != core.PhaseRequest {
		return nil
	}
	if s.startRound == 0 {
		s.startRound = ph.Round
	}
	if s.MaxRounds > 0 && ph.Round >= s.startRound+s.MaxRounds {
		return nil
	}
	rate := s.Rate
	if rate <= 0 {
		rate = 0.5
	}
	budget := affordableJams(pool, int64(ph.Length))
	if budget <= 0 {
		return nil
	}
	p := NewPlan(ph.Length)
	var planned int64
	slot := 0
	for planned < budget {
		g := st.Geometric(rate)
		if g >= ph.Length-slot {
			break
		}
		slot += g
		// A different Byzantine device id per spoof keeps the frames
		// plausible; ids beyond the correct range mark Byzantine
		// senders in the simulator's accounting.
		p.Inject(slot, msg.SpoofNack(-1000-int(planned)))
		planned++
		slot++
		if slot >= ph.Length {
			break
		}
	}
	if planned == 0 {
		p.Release()
		return nil
	}
	return p
}

// ReactiveJammer implements the §4.1 threat: within each slot Carol
// senses RSSI activity and jams exactly the slots where the correct side
// is transmitting. Without decoy traffic this silences the protocol at
// minimal cost (she spends only on genuinely used slots); with decoys she
// cannot tell m from chaff and is forced to pay for a constant fraction
// of *all* slots.
type ReactiveJammer struct{}

// Name implements Strategy.
func (ReactiveJammer) Name() string { return "reactive-jammer" }

// PlanPhase implements Strategy — the non-reactive fallback (used if the
// engine refuses reactive information): jam nothing.
func (ReactiveJammer) PlanPhase(core.Phase, *History, *energy.Pool, *rng.Stream) *Plan {
	return nil
}

// PlanReactive implements Reactive: jam every affordable active slot of
// the inform and propagation phases, in slot order. Request phases are
// deliberately skipped — their activity is NACKs, which only *help* Carol
// by keeping everyone awake; jamming them would waste her pool (and the
// data she wants to suppress never flows there).
func (ReactiveJammer) PlanReactive(ph core.Phase, activity *Bitmap, _ *History, pool *energy.Pool, _ *rng.Stream) *Plan {
	if ph.Kind == core.PhaseRequest {
		return nil
	}
	budget := affordableJams(pool, int64(activity.Count()))
	if budget <= 0 {
		return nil
	}
	p := NewPlan(ph.Length)
	var planned int64
	// Walk only the active slots (word-parallel skip over silence): the
	// jam set — the first `budget` active slots in order — is identical
	// to the per-slot Get loop's.
	for slot := activity.NextSet(0); slot >= 0 && planned < budget; slot = activity.NextSet(slot + 1) {
		p.Jam(slot)
		planned++
	}
	return p
}

// Compile-time interface checks.
var (
	_ Strategy = Null{}
	_ Strategy = FullJam{}
	_ Strategy = RandomJam{}
	_ Strategy = Bursty{}
	_ Strategy = PhaseBlocker{}
	_ Strategy = (*PartitionBlocker)(nil)
	_ Strategy = (*NackSpoofer)(nil)
	_ Reactive = ReactiveJammer{}
)
