// Gilbert: ε-BROADCAST on a random geometric graph (the topology layer,
// DESIGN.md §9). n sensors land uniformly in the unit square and hear
// each other within radius r; Alice transmits from the center. The
// unmodified single-hop protocol delivers exactly her k-hop
// neighborhood, so delivery tracks the geometric ceiling through the
// percolation-style rise of r — experiment E13 measures this sweep with
// jamming; this example walks it benignly.
//
//	go run ./examples/gilbert
package main

import (
	"fmt"
	"log"

	"rcbcast"
)

func main() {
	const n = 256
	fmt.Printf("%d sensors in the unit square, k=2, Alice at the center\n\n", n)
	fmt.Printf("%8s  %18s  %10s  %20s\n", "radius", "k-hop reachable", "informed", "informed/reachable")
	for _, r := range []float64{0.1, 0.15, 0.2, 0.3, 0.4} {
		spec := rcbcast.TopologySpec{Kind: "gilbert", Radius: r}
		sc := rcbcast.Scenario{
			N: n, K: 2, Seed: 7,
			Topology:  spec,
			Overrides: rcbcast.ScenarioOverrides{ExtraRounds: 3},
		}
		res, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		// The same (spec, seed) pair the engine used rebuilds the
		// trial's graph, so the ceiling describes this exact run.
		topo, err := spec.Build(n, sc.Seed)
		if err != nil {
			log.Fatal(err)
		}
		reachable := rcbcast.ReachableWithin(topo, 2)
		ratio := 0.0
		if reachable > 0 {
			ratio = float64(res.Informed) / float64(reachable)
		}
		fmt.Printf("%8.2f  %11d/%d  %10d  %20.2f\n", r, reachable, n, res.Informed, ratio)
	}
	fmt.Println("\ndelivery hugs the k-hop ceiling at every radius; full coverage")
	fmt.Println("needs 2r to span the square (r ≳ 0.35 at k=2). See rcexp -id E13.")
}
