// Reactive: the §4.1 scenario. A reactive Carol senses channel activity
// within the current slot (RSSI) and jams exactly the used slots — she
// never wastes energy on silence. Undefended, she matches the network's
// spend ~1:1 and can stall it for its whole lifetime. The defence is to
// "make your own noise": every node transmits decoy chaff, and because
// RSSI reveals nothing about content, Carol must now pay for a constant
// fraction of *all* slots.
//
//	go run ./examples/reactive
package main

import (
	"fmt"
	"log"

	"rcbcast"
)

func main() {
	const n = 1024
	pool := rcbcast.DefaultBudgets(8, 2).AdversaryPool(n, 1.0/25) // f < 1/24, Lemma 19

	fmt.Printf("reactive jammer with a %d-unit pool (f = 1/25), n = %d\n\n", pool.Budget(), n)

	run := func(label string, decoy bool) *rcbcast.Result {
		// One declarative scenario per defence mode; the "reactive"
		// adversary kind implies the within-slot RSSI grant, and Decoy
		// selects the §4.1 chaff defence (Params.EnableDecoy: ~half of
		// all slots carry chaff, listeners boosted 4x).
		res, err := rcbcast.Scenario{
			N: n, K: 2, Seed: 7,
			Decoy:     decoy,
			Adversary: rcbcast.AdversarySpec{Kind: "reactive"},
			Budget:    rcbcast.BudgetSpec{ModelC: 8, ModelF: 1.0 / 25},
			Overrides: rcbcast.ScenarioOverrides{ExtraRounds: 8},
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("— %s —\n", label)
		fmt.Printf("informed:        %d/%d (%.1f%%)\n", res.Informed, res.N, 100*res.InformedFrac())
		fmt.Printf("delay achieved:  %d slots over %d rounds\n", res.SlotsSimulated, res.Rounds)
		fmt.Printf("carol spent:     %d of her pool\n", res.AdversarySpent)
		fmt.Printf("node median:     %d\n\n", res.NodeCost.Median)
		return res
	}

	bare := run("no defence: she jams only real transmissions", false)
	decoy := run("decoy defence on: chaff makes every slot suspect", true)

	fmt.Printf("with decoys Carol burned her pool %.1fx faster, cutting the delay from %d to %d slots\n",
		float64(bare.SlotsSimulated)/float64(decoy.SlotsSimulated),
		bare.SlotsSimulated, decoy.SlotsSimulated)
	fmt.Println("(the per-round economics — exponent ~1 vs ~1/3 — are measured in experiment E7)")
}
