package topology

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Spec is the plain-data, serializable description of a topology — the
// form scenarios carry (JSON) and the CLIs parse (compact flag syntax).
// The zero value is the clique, so every pre-topology scenario keeps
// its meaning and its encoding.
type Spec struct {
	// Kind selects the graph family: "", "clique", "grid", "gilbert".
	// The empty string is the clique (the engine default).
	Kind string `json:"kind,omitempty"`
	// Width is the grid's column count (0 = ceil(sqrt(n))).
	Width int `json:"width,omitempty"`
	// Reach is the grid's Chebyshev audibility radius in cells (0 = 1).
	Reach int `json:"reach,omitempty"`
	// Radius is the Gilbert graph's connection radius in the unit
	// square. Required for kind "gilbert".
	Radius float64 `json:"radius,omitempty"`
}

// IsClique reports whether the spec selects the clique — the engine's
// global-channel fast path.
func (s Spec) IsClique() bool { return s.Kind == "" || s.Kind == "clique" }

// Validate reports the first violated constraint, or nil.
func (s Spec) Validate() error {
	switch s.Kind {
	case "", "clique":
		if s.Width != 0 || s.Reach != 0 || s.Radius != 0 {
			return fmt.Errorf("topology: clique takes no knobs")
		}
	case "grid":
		if s.Radius != 0 {
			return fmt.Errorf("topology: radius is a gilbert knob (grid takes w, reach)")
		}
		if s.Width < 0 || s.Reach < 0 {
			return fmt.Errorf("topology: grid width and reach must be >= 0")
		}
	case "gilbert":
		if s.Width != 0 || s.Reach != 0 {
			return fmt.Errorf("topology: width/reach are grid knobs (gilbert takes r)")
		}
		if s.Radius <= 0 || s.Radius > 2 {
			return fmt.Errorf("topology: gilbert needs a radius in (0, 2] (got %v)", s.Radius)
		}
	default:
		return fmt.Errorf("topology: unknown kind %q (have clique, grid, gilbert)", s.Kind)
	}
	return nil
}

// Build constructs the topology over n nodes. Randomized kinds draw
// from the stream keyed (seed, StreamActor), so the result is a pure
// function of (spec, n, seed).
func (s Spec) Build(n int, seed uint64) (Topology, error) {
	return s.BuildInto(n, seed, nil)
}

// BuildInto is Build constructing into the scratch's reused buffers (a
// nil scratch allocates fresh ones, exactly as Build). The graph is
// byte-identical either way; with a scratch it is valid until the next
// build on the same scratch.
func (s Spec) BuildInto(n int, seed uint64, sc *Scratch) (Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: need n >= 1 (got %d)", n)
	}
	switch s.Kind {
	case "", "clique":
		return NewClique(n), nil
	case "grid":
		return NewGrid(n, s.Width, s.Reach), nil
	default: // "gilbert", by Validate
		return NewGilbertInto(n, s.Radius, seed, sc), nil
	}
}

// ParseSpec decodes the compact flag syntax:
//
//	KIND[:KEY=VALUE[,KEY=VALUE...]]
//
// Examples: "clique", "grid", "grid:w=32,reach=2", "gilbert:r=0.2".
// The inverse is Spec.String.
func ParseSpec(arg string) (Spec, error) {
	kind, knobs, hasKnobs := strings.Cut(strings.TrimSpace(arg), ":")
	if kind == "" {
		return Spec{}, fmt.Errorf("topology: empty spec (use %q for the single-hop channel)", "clique")
	}
	switch kind {
	case "clique", "grid", "gilbert":
	default:
		return Spec{}, fmt.Errorf("topology: unknown kind %q (have clique, grid, gilbert)", kind)
	}
	spec := Spec{Kind: kind}
	if hasKnobs {
		for _, kv := range strings.Split(knobs, ",") {
			key, val, _ := strings.Cut(kv, "=")
			if err := spec.setKnob(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
				return Spec{}, err
			}
		}
	}
	return spec, spec.Validate()
}

func (s *Spec) setKnob(key, val string) error {
	switch key {
	case "w":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("topology: bad value %q for knob %q", val, key)
		}
		s.Width = v
	case "reach":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("topology: bad value %q for knob %q", val, key)
		}
		s.Reach = v
	case "r":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("topology: bad value %q for knob %q", val, key)
		}
		s.Radius = v
	default:
		return fmt.Errorf("topology: unknown knob %q (have w, reach for grid; r for gilbert)", key)
	}
	return nil
}

// String renders the spec in the flag syntax; the output reparses to an
// identical spec. The zero value renders as "clique".
func (s Spec) String() string {
	kind := s.Kind
	if kind == "" {
		kind = "clique"
	}
	var knobs []string
	if s.Width != 0 {
		knobs = append(knobs, "w="+strconv.Itoa(s.Width))
	}
	if s.Reach != 0 {
		knobs = append(knobs, "reach="+strconv.Itoa(s.Reach))
	}
	if s.Radius != 0 {
		knobs = append(knobs, "r="+strconv.FormatFloat(s.Radius, 'g', -1, 64))
	}
	if len(knobs) == 0 {
		return kind
	}
	return kind + ":" + strings.Join(knobs, ",")
}

// KindInfo describes one topology kind for CLI listings.
type KindInfo struct {
	Name, Summary, Knobs string
}

// Kinds returns the topology registry for -list-topologies.
func Kinds() []KindInfo {
	return []KindInfo{
		{"clique", "single shared channel, every device in range (the paper's model; default)", ""},
		{"grid", "rectangular lattice, Alice at the origin corner", "w=COLS, reach=CELLS"},
		{"gilbert", "random geometric graph: n points in the unit square, connect within r", "r=RADIUS"},
	}
}

// WriteList renders the topology-kind registry as the listing both CLIs
// print for -list-topologies.
func WriteList(w io.Writer) {
	fmt.Fprintln(w, "topology kinds (-topology KIND[:KNOB=V,...]):")
	for _, k := range Kinds() {
		knobs := ""
		if k.Knobs != "" {
			knobs = " [" + k.Knobs + "]"
		}
		fmt.Fprintf(w, "  %-10s %s%s\n", k.Name, k.Summary, knobs)
	}
}
