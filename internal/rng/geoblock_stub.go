//go:build !amd64

package rng

// Architectures without the assembly draw kernel take the four-lane Go
// path in GeometricBlockLnQ unconditionally.
const useGeoBlock8 = false

func geoBlock8Asm(s *[4]uint64, dst *[8]int, lnQ, invLnQ float64) {
	panic("rng: geoBlock8Asm without assembly kernel")
}
