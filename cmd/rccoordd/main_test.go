package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rcbcast/internal/service"
	"rcbcast/internal/sim/sink"
)

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "rcbcast ") {
		t.Fatalf("version output %q lacks the module stamp", buf.String())
	}
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{nil, "-workers or -addr is required"},
		{[]string{"-workers", "http://x"}, "-scenario is required"},
		{[]string{"-workers", "http://x", "-scenario", "full-jam"}, "-trials must be positive"},
		{[]string{"-workers", "http://x", "-scenario", "full-jam", "-trials", "4", "-journal", "j"}, "-journal requires -out"},
		{[]string{"-workers", "ftp://x", "-scenario", "full-jam", "-trials", "4"}, "scheme"},
		{[]string{"-workers", "http://x", "-scenario", "no-such", "-trials", "4"}, "unknown scenario"},
	} {
		err := run(context.Background(), tc.args, io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("run(%v) = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// TestCoordinatedSweepMatchesSingleMachine runs the CLI end to end
// against two in-process workers and compares the merged stdout bytes
// to the single-machine streaming path.
func TestCoordinatedSweepMatchesSingleMachine(t *testing.T) {
	startWorker := func() string {
		m, err := service.NewManager(service.Config{Dir: t.TempDir(), Procs: 2, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(service.NewServer(m))
		t.Cleanup(func() {
			srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			m.Close(ctx)
		})
		return srv.URL
	}
	const trials = 23
	var stdout, stderr bytes.Buffer
	args := []string{
		"-workers", startWorker() + "," + startWorker(),
		"-scenario", "full-jam", "-n", "64",
		"-trials", "23", "-shard-size", "4",
	}
	if err := run(context.Background(), args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	sc, err := loadScenario("full-jam")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 64
	var want bytes.Buffer
	if err := sc.Stream(context.Background(), 2, 1, 0, trials, sink.NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want.Bytes()) {
		t.Fatalf("merged stdout differs from single-machine run (%d vs %d bytes)", stdout.Len(), want.Len())
	}
	if !strings.Contains(stderr.String(), "trials=23") {
		t.Fatalf("summary line missing from stderr:\n%s", stderr.String())
	}
}

// syncBuffer lets the test poll stderr while run() is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWorkerRegistrationEndpoint starts the coordinator with an empty
// pool (-addr only) and registers a worker over POST /v1/workers; the
// sweep must then run to completion with single-machine bytes.
func TestWorkerRegistrationEndpoint(t *testing.T) {
	m, err := service.NewManager(service.Config{Dir: t.TempDir(), Procs: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})

	const trials = 23
	var stdout bytes.Buffer
	stderr := &syncBuffer{}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-scenario", "full-jam", "-n", "64",
		"-trials", "23", "-shard-size", "4",
		"-probe-interval", "20ms",
	}
	done := make(chan error, 1)
	go func() { done <- run(context.Background(), args, &stdout, stderr) }()

	// Parse the metrics-address handshake off stderr.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no metrics handshake on stderr:\n%s", stderr.String())
		}
		for _, line := range strings.Split(stderr.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "rccoordd: metrics on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/workers", "application/json",
		strings.NewReader(`{"url":"`+srv.URL+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"joined"`) {
		t.Fatalf("registration: status %d body %s", resp.StatusCode, body)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("sweep never completed after registration\nstderr:\n%s", stderr.String())
	}

	sc, err := loadScenario("full-jam")
	if err != nil {
		t.Fatal(err)
	}
	sc.N = 64
	var want bytes.Buffer
	if err := sc.Stream(context.Background(), 2, 1, 0, trials, sink.NewNDJSON(&want)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want.Bytes()) {
		t.Fatalf("merged stdout differs from single-machine run (%d vs %d bytes)", stdout.Len(), want.Len())
	}
}
