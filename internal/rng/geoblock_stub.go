//go:build !amd64

package rng

// Architectures without the assembly draw kernel take the four-lane Go
// path in GeometricBlockLnQ unconditionally.
var useGeoBlock8 = false

// GeoBlock8Enabled reports whether block draws route through the
// assembly kernel — never, on this architecture.
func GeoBlock8Enabled() bool { return false }

// SetGeoBlock8 is the in-process kernel switch; without an assembly
// kernel it is inert and reports the kernel permanently disabled.
func SetGeoBlock8(bool) (prev bool) { return false }

func geoBlock8Asm(s *[4]uint64, dst *[8]int, lnQ, invLnQ float64) {
	panic("rng: geoBlock8Asm without assembly kernel")
}
