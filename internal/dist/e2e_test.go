package dist

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"rcbcast/internal/service"
)

// TestMain doubles as the e2e worker child: with DIST_E2E_WORKER set,
// the test binary *is* a worker service process — a real Manager behind
// a real listener, killable with a real SIGKILL.
func TestMain(m *testing.M) {
	if os.Getenv("DIST_E2E_WORKER") == "1" {
		runWorkerChild()
		return
	}
	os.Exit(m.Run())
}

func runWorkerChild() {
	mgr, err := service.NewManager(service.Config{Dir: os.Getenv("DIST_E2E_DIR"), Procs: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker: listening on %s\n", ln.Addr())
	if err := http.Serve(ln, service.NewServer(mgr)); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}

// workerProc is one child worker process.
type workerProc struct {
	cmd  *exec.Cmd
	base string
}

func startWorkerProc(t *testing.T, dir string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DIST_E2E_WORKER=1", "DIST_E2E_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("no startup line from worker (err=%v)", sc.Err())
	}
	addr, ok := strings.CutPrefix(sc.Text(), "worker: listening on ")
	if !ok {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected startup line %q", sc.Text())
	}
	go io.Copy(io.Discard, stdout)
	return &workerProc{cmd: cmd, base: "http://" + addr}
}

// TestWorkerSIGKILLReassignment is the distributed half of the
// durability contract: SIGKILL a real worker process mid-sweep and the
// coordinator reassigns its shards to the survivor, skips every
// replayed line, and still produces merged NDJSON byte-identical to a
// single-machine run.
func TestWorkerSIGKILLReassignment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes and runs a multi-second sweep")
	}
	sc := testScenario("dist-e2e")
	const trials, baseSeed = 2000, uint64(1)
	want := referenceNDJSON(t, sc, trials, baseSeed)

	victim := startWorkerProc(t, t.TempDir())
	survivor := startWorkerProc(t, t.TempDir())
	defer func() {
		survivor.cmd.Process.Kill()
		survivor.cmd.Wait()
	}()

	c, err := New(Config{
		Workers:      []string{victim.base, survivor.base},
		ShardSize:    150,
		MaxAttempts:  20,
		StallTimeout: 10 * time.Second,
		Backoff:      100 * time.Millisecond,
		BackoffCap:   500 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	type result struct {
		sum *Summary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := c.Run(context.Background(), sc, trials, baseSeed, &got)
		done <- result{sum, err}
	}()

	// Kill the first worker once real progress has merged but the sweep
	// is nowhere near finished.
	deadline := time.Now().Add(60 * time.Second)
	for {
		m := c.Metrics()
		if m.MergedTrials >= 200 {
			break
		}
		select {
		case r := <-done:
			t.Fatalf("sweep finished before the kill window (err=%v); raise trials", r.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached the kill window (metrics %+v)", m)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed worker %s at %d merged trials", victim.base, c.Metrics().MergedTrials)

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("Run after worker kill: %v", r.err)
		}
		if r.sum.Trials != trials {
			t.Fatalf("summary folded %d trials, want %d", r.sum.Trials, trials)
		}
	case <-time.After(180 * time.Second):
		t.Fatal("sweep did not complete after the worker kill")
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged output differs from single-machine run after SIGKILL (%d vs %d bytes)",
			got.Len(), len(want))
	}
	if c.Metrics().Retries < 1 {
		t.Fatal("expected at least one retry after killing a worker")
	}
}
