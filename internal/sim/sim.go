// Package sim is the shared execution layer for experiment sweeps: a
// deterministic parallel trial runner and, on top of it, a streaming
// run session (Stream) that delivers results to composable Sinks in
// trial order with bounded buffering — the bounded-memory, cancellable
// path every sweep in this repository runs through. The sink library
// lives in the sub-package sim/sink.
//
// Every experiment in internal/experiment is a Monte-Carlo sweep — many
// independent engine executions whose results are averaged per sweep
// point. The engine derives every random decision from keyed streams
// (seed, actor, round, phase, purpose), so a trial's outcome is a pure
// function of its TrialSpec; trials are embarrassingly parallel without
// giving up bit-for-bit reproducibility. The session exploits that: one
// worker pool (StreamMap) executes trials in whatever order scheduling
// happens to produce but *delivers* results in trial-index order, so
// sink folds — and the collected slices RunTrials and Map build on top
// — are byte-identical for Procs=1 and Procs=32, including
// floating-point aggregation.
//
// Per-trial seeds come from TrialSeed, a SplitMix64 mix of
// (base seed, trial index). Unlike affine schemes such as
// base*1_000_003+i, mixed seeds from adjacent bases do not collide for
// any realistic trial count, so repetitions with BaseSeed and BaseSeed+1
// are statistically independent (see the disjointness test).
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/rng"
	"rcbcast/internal/topology"
)

// TrialSeed derives the engine seed for one trial of a sweep by mixing
// the sweep's base seed with the trial index through SplitMix64
// (rng.Mix). The map (base, trial) -> seed behaves like a random
// function: trial-seed sets from different bases are disjoint in
// practice, so sweeps repeated with adjacent base seeds draw independent
// randomness.
func TrialSeed(base uint64, trial int) uint64 {
	return rng.Mix(base, uint64(trial))
}

// SweepSeed derives the engine seed for trial `trial` of sweep point
// `point` — a three-part SplitMix64 mix. Multi-point sweeps use this
// instead of hand-packing point and trial into one TrialSeed index
// (strides like point*100+trial collide across points as soon as a
// point uses more trials than the stride).
func SweepSeed(base uint64, point, trial int) uint64 {
	return rng.Mix(base, uint64(point), uint64(trial))
}

// TrialSpec describes one engine execution: the protocol instance, the
// fully derived seed, and factories for the per-trial adversary state.
//
// Strategy and Pool are factories rather than instances because several
// strategies (NackSpoofer, SweepJammer, GreedyAdaptive, ...) and every
// Pool carry per-run mutable state; sharing one instance across
// concurrently running trials would race. Each worker calls the
// factories once per trial.
type TrialSpec struct {
	// Params is the protocol instance. Required; must Validate.
	Params core.Params
	// Topology selects the neighborhood graph reception is resolved
	// against (zero value = the clique, the paper's single-hop
	// channel). Randomized topologies are rebuilt per trial from Seed,
	// so they parallelize like everything else.
	Topology topology.Spec
	// Seed drives every random decision of the trial; derive it with
	// TrialSeed.
	Seed uint64
	// Strategy constructs Carol for this trial; nil means no adversary.
	Strategy func() adversary.Strategy
	// Pool constructs Carol's energy purse; nil means unlimited.
	Pool func() *energy.Pool
	// Configure, if non-nil, adjusts the assembled Options before the
	// run (RecordPhases, AllowReactive, Perturb, device budgets...). It
	// runs on a worker goroutine and must not touch shared mutable
	// state.
	Configure func(*engine.Options)
}

// options assembles the engine.Options for the spec.
func (s *TrialSpec) options() engine.Options {
	opts := engine.Options{Params: s.Params, Topology: s.Topology, Seed: s.Seed}
	if s.Strategy != nil {
		opts.Strategy = s.Strategy()
	}
	if s.Pool != nil {
		opts.Pool = s.Pool()
	}
	if s.Configure != nil {
		s.Configure(&opts)
	}
	return opts
}

// Procs resolves a proc-count override: values <= 0 select
// runtime.GOMAXPROCS.
func Procs(procs int) int {
	if procs > 0 {
		return procs
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on a pool of procs workers and returns the results
// indexed by input, exposed for sweeps that execute something other than
// the single-hop engine (multi-hop pipelines, baseline protocols) and
// want the whole result slice.
//
// fn must be a pure function of its index (it may of course read shared
// immutable data). Map is a thin wrapper over StreamMap — one worker
// pool implementation serves both APIs — so the returned slice is
// identical for every procs value and a failure reports the lowest
// failing index, keeping even errors deterministic.
func Map[T any](procs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	err := StreamMap(context.Background(), procs, n,
		func(_ context.Context, i int) (T, error) { return fn(i) },
		func(i int, v T) error { results[i] = v; return nil })
	if err != nil {
		var pe *PartialError
		if errors.As(err, &pe) {
			return nil, fmt.Errorf("sim: %w", pe.Err)
		}
		return nil, err
	}
	return results, nil
}

// RunTrials executes every spec on the sequential engine across a pool
// of procs workers (procs <= 0 selects GOMAXPROCS) and returns the
// results indexed like specs. Output is byte-identical for every procs
// value.
//
// RunTrials is retained as a thin compatibility wrapper over the
// streaming session: it is exactly Stream with a collecting sink, so it
// materializes all O(trials) results. Sweeps that can fold results as
// they arrive should use Stream with sinks instead and keep only
// O(procs) results live.
func RunTrials(procs int, specs []TrialSpec) ([]*engine.Result, error) {
	results := make([]*engine.Result, len(specs))
	if err := Stream(context.Background(), procs, specs, collect(results)); err != nil {
		var pe *PartialError
		if errors.As(err, &pe) {
			// Preserve the historical error shape ("sim: trial i: ...",
			// lowest failing index first) for existing callers.
			return nil, fmt.Errorf("sim: %w", pe.Err)
		}
		return nil, err
	}
	return results, nil
}
