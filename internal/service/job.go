package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rcbcast/internal/engine"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim/sink"
)

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done
//	                 → failed            (a trial or sink error)
//	                 → canceled          (client cancel)
//	                 → queued            (graceful shutdown: requeued,
//	                                      resumed from the journal on
//	                                      the next start)
//	queued → canceled                    (cancel before a runner claims it)
//
// done, failed and canceled are terminal for scheduling, but failed and
// canceled jobs can be resubmitted: the journal holds their delivered
// prefix, so a resubmit resumes rather than restarts.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether no runner currently owns or will claim the
// job.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted sweep: an immutable spec (scenario, trial count,
// base seed) plus scheduling state. The spec fields are never mutated
// after submit; the state fields are guarded by mu, and the progress
// counters are atomics so status queries never contend with delivery.
type Job struct {
	// ID is the sweep key: a hash of the canonical scenario encoding,
	// the trial count, and the base seed. Resubmitting the same sweep
	// yields the same id — and therefore the same journal — which is
	// what makes submit idempotent and resume automatic.
	ID string
	// Client is the submitting client's identity (limiter key).
	Client string
	// Scenario is the validated sweep scenario.
	Scenario scenario.Scenario
	// Trials and BaseSeed complete the sweep spec: trial t runs with
	// seed sim.SweepSeed(BaseSeed, 0, t), exactly like rcexp sweeps.
	Trials   int
	BaseSeed uint64
	// Shard, when non-zero, restricts the job to the contiguous sweep
	// trials [Shard.Lo, Shard.Hi) — the worker half of the distributed
	// coordinator/worker split (internal/dist). Trials stays the *whole
	// sweep's* trial count; the shard's seeds and NDJSON trial numbers
	// are sweep-global, so a shard job's output is byte-for-byte the
	// [Lo, Hi) slice of the full sweep's.
	Shard scenario.Shard
	// Version stamps the build that accepted the job (internal/version).
	Version string

	dir  string
	feed *feed

	mu        sync.Mutex
	state     State
	errMsg    string
	partials  int // run attempts that ended in a *sim.PartialError
	canceled  bool
	cancelRun func() // non-nil while running

	done      atomic.Int64 // trials delivered to sinks (sweep coordinates)
	execBase  atomic.Int64 // journal prefix replayed, not executed, this run
	execStart atomic.Int64 // unixnano of the first executed delivery this run
}

// jobID derives the sweep key. The canonical scenario encoding is
// byte-stable (scenario.Encode round-trips deterministically), so equal
// sweeps collide on purpose and distinct ones practically never do.
// Shard jobs extend the hash with their trial range, so distinct shards
// of one sweep are distinct jobs with distinct journals, while a
// whole-sweep submit keeps its pre-shard id.
func jobID(sc scenario.Scenario, trials int, baseSeed uint64, sh scenario.Shard) (string, error) {
	enc, err := scenario.Encode(sc)
	if err != nil {
		return "", fmt.Errorf("service: encode scenario: %w", err)
	}
	h := fnv.New64a()
	h.Write(enc)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(trials))
	binary.LittleEndian.PutUint64(b[8:], baseSeed)
	h.Write(b[:])
	if !sh.IsZero() {
		binary.LittleEndian.PutUint64(b[:8], uint64(sh.Lo))
		binary.LittleEndian.PutUint64(b[8:], uint64(sh.Hi))
		h.Write(b[:])
	}
	return fmt.Sprintf("j%016x", h.Sum64()), nil
}

// shardRange resolves the job's effective trial range: the shard's when
// set, the whole sweep otherwise.
func (j *Job) shardRange() (lo, hi int) {
	if j.Shard.IsZero() {
		return 0, j.Trials
	}
	return j.Shard.Lo, j.Shard.Hi
}

// shardLen is the number of trials this job executes.
func (j *Job) shardLen() int {
	lo, hi := j.shardRange()
	return hi - lo
}

// Paths inside the job's store directory.
func (j *Job) recordPath() string  { return filepath.Join(j.dir, "job.json") }
func (j *Job) journalPath() string { return filepath.Join(j.dir, "journal.ckpt") }
func (j *Job) resultsPath() string { return filepath.Join(j.dir, "out.ndjson") }

// Status is the wire form of a job's state — the status endpoint's
// response body and one element of the list endpoint's.
type Status struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Client   string `json:"client,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Trials   int    `json:"trials"`
	// Shard is the job's trial range when it runs one shard of the
	// sweep; absent for whole-sweep jobs. Done counts the job's own
	// (shard) trials, so done == hi-lo means a shard job is complete.
	Shard         scenario.Shard `json:"shard,omitzero"`
	Done          int            `json:"done"`
	TrialsPerSec  float64        `json:"trials_per_sec,omitempty"`
	ETASeconds    float64        `json:"eta_seconds,omitempty"`
	PartialErrors int            `json:"partial_errors,omitempty"`
	Canceled      bool           `json:"canceled,omitempty"`
	Error         string         `json:"error,omitempty"`
	Version       string         `json:"version"`
}

// Status snapshots the job. Rate covers only trials executed in the
// current run (a resume's replayed prefix arrives in microseconds and
// would otherwise dwarf the real rate), measured from the first
// executed delivery.
func (j *Job) Status() Status {
	j.mu.Lock()
	st := Status{
		ID:            j.ID,
		State:         j.state,
		Client:        j.Client,
		Scenario:      j.Scenario.Name,
		Trials:        j.Trials,
		PartialErrors: j.partials,
		Canceled:      j.canceled,
		Error:         j.errMsg,
		Version:       j.Version,
	}
	j.mu.Unlock()
	st.Shard = j.Shard
	st.Done = int(j.done.Load())
	if st.State == StateRunning {
		if startNs := j.execStart.Load(); startNs != 0 {
			executed := st.Done - int(j.execBase.Load())
			rate := sink.Rate(executed, time.Unix(0, startNs), time.Now())
			if rate > 0 {
				st.TrialsPerSec = rate
				st.ETASeconds = sink.ETA(st.Done, j.shardLen(), rate).Seconds()
			}
		}
	}
	return st
}

// meterSink plumbs delivery progress into the job's atomics: done is
// the count of the job's own trials delivered (indices arrive in sweep
// coordinates, so shard jobs rebase by lo), and the first delivery past
// the replayed prefix starts the rate clock.
type meterSink struct {
	j  *Job
	lo int
}

func (m meterSink) Trial(i int, _ *engine.Result) error {
	j := m.j
	count := int64(i - m.lo + 1)
	j.done.Store(count)
	if count > j.execBase.Load() && j.execStart.Load() == 0 {
		j.execStart.Store(time.Now().UnixNano())
	}
	return nil
}

func (m meterSink) Flush() error { return nil }

// record converts the job to its persisted form (store.go).
func (j *Job) record() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, _ := json.Marshal(j.Scenario)
	return jobRecord{
		ID:            j.ID,
		Client:        j.Client,
		Scenario:      raw,
		Trials:        j.Trials,
		BaseSeed:      j.BaseSeed,
		Shard:         j.Shard,
		State:         j.state,
		Done:          int(j.done.Load()),
		PartialErrors: j.partials,
		Canceled:      j.canceled,
		Error:         j.errMsg,
		Version:       j.Version,
	}
}
