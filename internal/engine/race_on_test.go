//go:build race

package engine

// raceEnabled reports that this build carries the race detector, whose
// instrumentation perturbs allocation counts.
const raceEnabled = true
