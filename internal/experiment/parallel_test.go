package experiment

import (
	"reflect"
	"testing"
)

// TestExperimentsProcsEquivalence mirrors the engine's Run/RunActors
// equivalence test at the sweep layer: a whole experiment produces
// identical Values (and rendered tables) whether its trials run on one
// worker or eight. E1 exercises the cumulative + marginal cost sweeps
// (RecordPhases aggregation); E4 exercises a multi-n latency sweep with
// per-spec pools and pointer strategies; E7 exercises reactive trials
// and the map-keyed per-round fit, which once leaked map range order
// into the rendered exponent.
func TestExperimentsProcsEquivalence(t *testing.T) {
	for _, id := range []string{"E1", "E4", "E7"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		cfg1 := quickCfg()
		cfg1.Procs = 1
		cfg8 := quickCfg()
		cfg8.Procs = 8
		rep1, err := e.Run(cfg1)
		if err != nil {
			t.Fatalf("%s procs=1: %v", id, err)
		}
		rep8, err := e.Run(cfg8)
		if err != nil {
			t.Fatalf("%s procs=8: %v", id, err)
		}
		if !reflect.DeepEqual(rep1.Values, rep8.Values) {
			t.Errorf("%s: Values diverge across Procs:\nprocs=1: %v\nprocs=8: %v",
				id, rep1.Values, rep8.Values)
		}
		if r1, r8 := rep1.Render(), rep8.Render(); r1 != r8 {
			t.Errorf("%s: rendered reports diverge across Procs:\n%s\n---\n%s", id, r1, r8)
		}
	}
}
