// Package sink is the result-sink library for the streaming run
// session (sim.Stream): composable consumers of per-trial
// engine.Results, delivered in trial order from a single goroutine.
//
// Because the session's delivery order is deterministic (see sim.Sink),
// every sink here produces byte-identical output for every worker
// count. The sinks are deliberately small and orthogonal — aggregation
// (Fold), serialization (NDJSON, CSV), reporting (Progress), retention
// (TopK), and resumability (Checkpoint) — and a stream composes any
// number of them in one pass over the results, holding O(procs) live
// results however long the sweep.
package sink

import (
	"rcbcast/internal/engine"
	"rcbcast/internal/stats"
)

// Func adapts a function to sim.Sink with a no-op Flush — the idiom for
// ad-hoc per-trial processing (custom aggregation, phase-record
// analysis) inside experiments.
type Func func(i int, r *engine.Result) error

// Trial implements sim.Sink.
func (f Func) Trial(i int, r *engine.Result) error { return f(i, r) }

// Flush implements sim.Sink.
func (Func) Flush() error { return nil }

// Fold aggregates a sweep into per-point stats.Acc columns in
// O(points·columns) space: trial i belongs to sweep point
// i/trialsPerPoint (the layout every experiment uses — points are
// contiguous blocks of trials), and each column extractor folds one
// scalar per result. In-order delivery makes the floating-point fold
// order — and therefore every Mean/Var — identical for every worker
// count.
type Fold struct {
	trialsPerPoint int
	cols           []func(*engine.Result) float64
	points         [][]stats.Acc
}

// NewFold returns a Fold routing trialsPerPoint consecutive trials to
// each sweep point and folding one column per extractor.
func NewFold(trialsPerPoint int, cols ...func(*engine.Result) float64) *Fold {
	if trialsPerPoint <= 0 {
		trialsPerPoint = 1
	}
	return &Fold{trialsPerPoint: trialsPerPoint, cols: cols}
}

// Trial implements sim.Sink.
func (f *Fold) Trial(i int, r *engine.Result) error {
	p := i / f.trialsPerPoint
	for p >= len(f.points) {
		f.points = append(f.points, make([]stats.Acc, len(f.cols)))
	}
	accs := f.points[p]
	for c, col := range f.cols {
		accs[c].Add(col(r))
	}
	return nil
}

// Flush implements sim.Sink.
func (*Fold) Flush() error { return nil }

// Points returns the number of sweep points seen so far.
func (f *Fold) Points() int { return len(f.points) }

// Acc returns a copy of one point's column accumulator (the zero Acc
// for points or columns never touched).
func (f *Fold) Acc(point, col int) stats.Acc {
	if point < 0 || point >= len(f.points) || col < 0 || col >= len(f.cols) {
		return stats.Acc{}
	}
	return f.points[point][col]
}

// Mean returns one point-column sample mean — the read every sweep
// table is built from.
func (f *Fold) Mean(point, col int) float64 {
	a := f.Acc(point, col)
	return a.Mean()
}
