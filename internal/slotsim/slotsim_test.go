package slotsim

import (
	"testing"

	"rcbcast/internal/msg"
)

func auth() *msg.Authenticator { return msg.NewAuthenticator(1) }

func TestSilenceWhenEmpty(t *testing.T) {
	var s Slot
	out, _ := s.Observe(0)
	if out != Silence {
		t.Fatalf("empty slot = %v, want silence", out)
	}
	if s.Noisy(0) {
		t.Fatal("empty slot must not be noisy")
	}
	if s.HasActivity() {
		t.Fatal("empty slot has no activity")
	}
}

func TestSingleTransmissionDelivered(t *testing.T) {
	var s Slot
	f := auth().Sign([]byte("m"))
	s.AddFrame(f)
	out, got := s.Observe(5)
	if out != Received {
		t.Fatalf("single transmission = %v, want received", out)
	}
	if got.Kind != msg.KindData || string(got.Payload) != "m" {
		t.Fatalf("delivered frame = %+v", got)
	}
	if !s.HasActivity() {
		t.Fatal("slot with a frame must show activity")
	}
}

func TestCollisionIsNoise(t *testing.T) {
	var s Slot
	s.AddFrame(msg.Nack(1))
	s.AddFrame(msg.Nack(2))
	out, _ := s.Observe(5)
	if out != Noise {
		t.Fatalf("two transmissions = %v, want noise", out)
	}
}

func TestJamAllDisruptsEveryone(t *testing.T) {
	var s Slot
	s.AddFrame(auth().Sign([]byte("m")))
	s.SetJam(JamAll())
	for _, listener := range []int{0, 1, 99} {
		if out, _ := s.Observe(listener); out != Noise {
			t.Fatalf("listener %d under full jam = %v, want noise", listener, out)
		}
	}
	if !s.Jammed() {
		t.Fatal("Jammed() must report true")
	}
}

func TestJamOnSilentSlotIsNoiseNotSilence(t *testing.T) {
	// Silence cannot be forged, but jamming *creates* noise: a jammed
	// empty slot reads as noise, never as silence.
	var s Slot
	s.SetJam(JamAll())
	if out, _ := s.Observe(3); out != Noise {
		t.Fatalf("jammed empty slot = %v, want noise", out)
	}
	if s.HasActivity() {
		t.Fatal("jam is not RSSI transmission activity")
	}
}

func TestNUniformTargeting(t *testing.T) {
	// Carol disrupts only even-numbered listeners; odd ones receive m.
	var s Slot
	s.AddFrame(auth().Sign([]byte("m")))
	s.SetJam(Jam{Active: true, Disrupt: func(l int) bool { return l%2 == 0 }})
	if out, _ := s.Observe(2); out != Noise {
		t.Fatal("targeted listener must perceive noise")
	}
	out, f := s.Observe(3)
	if out != Received || string(f.Payload) != "m" {
		t.Fatalf("spared listener = %v, want received m", out)
	}
}

func TestJamExcept(t *testing.T) {
	var s Slot
	s.AddFrame(auth().Sign([]byte("m")))
	spared := map[int]bool{4: true, 7: true}
	s.SetJam(JamExcept(func(l int) bool { return spared[l] }))
	for l := 0; l < 10; l++ {
		out, _ := s.Observe(l)
		if spared[l] && out != Received {
			t.Errorf("spared listener %d = %v, want received", l, out)
		}
		if !spared[l] && out != Noise {
			t.Errorf("targeted listener %d = %v, want noise", l, out)
		}
	}
}

func TestCannotHearOwnTransmission(t *testing.T) {
	var s Slot
	s.AddFrame(msg.Nack(7))
	// Sender 7 observing its own slot sees what the rest of the channel
	// contributes: nothing.
	if out, _ := s.Observe(7); out != Silence {
		t.Fatalf("sender observing own solo slot = %v, want silence", out)
	}
	// A second transmission from someone else is heard as that frame.
	s.AddFrame(msg.Nack(9))
	out, f := s.Observe(7)
	if out != Received || f.From != 9 {
		t.Fatalf("sender should hear the other frame alone, got %v from %d", out, f.From)
	}
	// A third party hears the collision.
	if out, _ := s.Observe(0); out != Noise {
		t.Fatal("third party must hear a collision")
	}
}

func TestNoisyCountsReceivedNack(t *testing.T) {
	// Alice's request-phase counter counts both noise and received NACKs;
	// Noisy() must be true for a received NACK.
	var s Slot
	s.AddFrame(msg.Nack(3))
	if !s.Noisy(0) {
		t.Fatal("received NACK must count as noisy for the termination test")
	}
}

func TestReset(t *testing.T) {
	var s Slot
	s.AddFrame(msg.Nack(1))
	s.SetJam(JamAll())
	s.Reset()
	if s.Transmissions() != 0 || s.Jammed() || s.HasActivity() {
		t.Fatal("Reset must clear frames and jam")
	}
	if out, _ := s.Observe(0); out != Silence {
		t.Fatal("reset slot must be silent")
	}
}

func TestSpoofIsActivity(t *testing.T) {
	// Byzantine spoof frames occupy the channel like any transmission:
	// they can collide with Alice's send.
	var s Slot
	s.AddFrame(auth().Sign([]byte("m")))
	s.AddFrame(msg.SpoofData(8, []byte("fake")))
	if out, _ := s.Observe(0); out != Noise {
		t.Fatal("spoof + data must collide into noise")
	}
}

func TestReceivedSpoofFailsVerification(t *testing.T) {
	// A solo spoof is "received" at the channel level but must fail
	// authentication at the protocol level.
	a := auth()
	var s Slot
	s.AddFrame(msg.SpoofData(8, []byte("fake m")))
	out, f := s.Observe(0)
	if out != Received {
		t.Fatalf("solo spoof = %v, want received", out)
	}
	if a.Verify(f) {
		t.Fatal("spoof must fail authentication")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Silence: "silence", Received: "received", Noise: "noise"} {
		if o.String() != want {
			t.Errorf("Outcome %d = %q, want %q", o, o.String(), want)
		}
	}
	if Outcome(9).String() != "Outcome(9)" {
		t.Errorf("unknown outcome = %q", Outcome(9).String())
	}
}

func TestFramesAccessor(t *testing.T) {
	var s Slot
	s.AddFrame(msg.Nack(1))
	s.AddFrame(msg.Decoy(2))
	if got := s.Transmissions(); got != 2 {
		t.Fatalf("Transmissions = %d, want 2", got)
	}
	if len(s.Frames()) != 2 {
		t.Fatalf("Frames() length = %d", len(s.Frames()))
	}
}
