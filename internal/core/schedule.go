package core

import (
	"fmt"
	"math"
)

// PhaseKind identifies the three phases of a round.
type PhaseKind uint8

const (
	// PhaseInform: Alice seeds the round's first informed set.
	PhaseInform PhaseKind = iota + 1
	// PhasePropagate: informed nodes relay m (k-1 steps).
	PhasePropagate
	// PhaseRequest: NACK-based quiet test for termination.
	PhaseRequest
)

var phaseNames = [...]string{PhaseInform: "inform", PhasePropagate: "propagate", PhaseRequest: "request"}

// String names the phase kind.
func (k PhaseKind) String() string {
	if int(k) < len(phaseNames) && phaseNames[k] != "" {
		return phaseNames[k]
	}
	return fmt.Sprintf("PhaseKind(%d)", uint8(k))
}

// Phase is one fully-resolved phase descriptor: everything an engine needs
// to execute the phase slot by slot. All probabilities are pre-clamped to
// [0, 1].
type Phase struct {
	// Round is the round index i.
	Round int
	// Kind is inform / propagate / request.
	Kind PhaseKind
	// Step is the propagation step h in [1, k-1]; 0 for other kinds.
	Step int
	// Sub is the §4.2 g-sweep index (1..⌈lg ν⌉); 0 when the sweep is
	// disabled.
	Sub int
	// LastSub marks the final sub-phase of a swept step (always true
	// when the sweep is disabled). Termination rules fire on it.
	LastSub bool
	// Ordinal is the phase's position within its round; engines use it
	// to key independent random streams per phase.
	Ordinal int
	// Length is the number of slots.
	Length int

	// AliceSendP is Alice's per-slot probability of transmitting m
	// (inform phase only).
	AliceSendP float64
	// AliceListenP is Alice's per-slot listening probability (request
	// phase only).
	AliceListenP float64

	// NodeListenP is an uninformed node's per-slot listening probability.
	NodeListenP float64
	// NodeSendP is the per-slot transmission probability for the phase's
	// sender role: informed relays in propagation, NACKs in request.
	NodeSendP float64
	// DecoyP is the per-slot decoy probability for every active correct
	// node (only nonzero in decoy mode, inform and propagation phases).
	DecoyP float64

	// NoisyThreshold is the request-phase termination threshold
	// (0 for other phases).
	NoisyThreshold int
}

// String is a compact descriptor for traces.
func (ph Phase) String() string {
	if ph.Kind == PhasePropagate {
		return fmt.Sprintf("r%d/%v[%d] len=%d", ph.Round, ph.Kind, ph.Step, ph.Length)
	}
	return fmt.Sprintf("r%d/%v len=%d", ph.Round, ph.Kind, ph.Length)
}

// PhaseLength returns the slot count of every phase in round i:
// ceil(2^{(1+1/k)·i}). Both figures use this length for all phases once
// a = 1/k, b = 1 are substituted (Lemma 11 derives exactly those values).
func (p *Params) PhaseLength(i int) int {
	exp := (1 + 1/float64(p.K)) * float64(i)
	return int(math.Ceil(math.Pow(2, exp)))
}

// RoundLength returns the total slots in round i across all its phases
// (inform + (k-1) propagation steps + request, each step expanded by the
// g-sweep when PolyEstimate is enabled).
func (p *Params) RoundLength(i int) int {
	phases := p.K + 1
	if l := p.sweepLen(); l > 0 {
		// inform + (k-1) swept propagation steps + swept request.
		phases = 1 + (p.K-1)*l + l
	}
	return phases * p.PhaseLength(i)
}

// TotalSlots returns the slots from StartRound through round i inclusive.
func (p *Params) TotalSlots(i int) int64 {
	var total int64
	for r := p.StartRound; r <= i; r++ {
		total += int64(p.RoundLength(r))
	}
	return total
}

// Round materializes the phase descriptors of round i, in execution order.
// With PolyEstimate enabled, propagation steps and the request phase are
// expanded into their g-sweep sub-phases.
func (p *Params) Round(i int) []Phase {
	return p.AppendRound(make([]Phase, 0, p.K+1), i)
}

// AppendRound appends round i's phase descriptors to dst and returns the
// extended slice — the allocation-free path behind Round that lets
// Schedule reuse one buffer across rounds and runs. Ordinals are
// assigned relative to the appended region, so the result is identical
// to Round(i) whatever dst already holds.
func (p *Params) AppendRound(dst []Phase, i int) []Phase {
	base := len(dst)
	dst = p.appendExpand(dst, p.informPhase(i))
	for h := 1; h <= p.K-1; h++ {
		dst = p.appendExpand(dst, p.propagatePhase(i, h))
	}
	dst = p.appendExpand(dst, p.requestPhase(i))
	for o := base; o < len(dst); o++ {
		dst[o].Ordinal = o - base
	}
	return dst
}

// sweepLen returns ⌈lg ν⌉, the number of g-sweep sub-phases, or 0 when
// the sweep is disabled.
func (p *Params) sweepLen() int {
	if p.PolyEstimate <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(p.PolyEstimate)))
}

// appendExpand replicates a phase across the g-sweep, substituting the
// paper's sending probability 1/(2^i · 2^g) (§4.2). The 2^i factor keeps
// the total sends per sender across the sweep at Σ_g L/(2^i 2^g) ≈
// 2^{i/k}, within the node budget scale; the sub-phase with 2^{i+g} ≈ n
// uses the correct 1/n rate to within a factor of 2 (which exists
// whenever i ≤ lg n - 1, the protocol's operating range). Phases that
// carry no node sending probability are appended unchanged.
func (p *Params) appendExpand(dst []Phase, ph Phase) []Phase {
	ph.LastSub = true
	l := p.sweepLen()
	if l == 0 || ph.NodeSendP == 0 {
		return append(dst, ph)
	}
	for g := 1; g <= l; g++ {
		sub := ph
		sub.Sub = g
		sub.LastSub = g == l
		sub.NodeSendP = clampP(1 / math.Pow(2, float64(ph.Round+g)))
		dst = append(dst, sub)
	}
	return dst
}

func clampP(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (p *Params) informPhase(i int) Phase {
	pow2i := math.Pow(2, float64(i))
	var aliceSend float64
	switch p.Variant {
	case VariantK2Exact:
		// Figure 1: Alice sends with 2 ln n / 2^{bi}, b = 1.
		aliceSend = 2 * p.LnN() / pow2i
	default:
		// Figure 2: 2c ln^k n / 2^i.
		aliceSend = 2 * p.C * math.Pow(p.LnN(), float64(p.K)) / pow2i
	}
	// Both figures: uninformed listen with 2/(ε′ 2^i).
	listen := 2 / (p.Epsilon * pow2i) * p.listenBoost()
	return Phase{
		Round:       i,
		Kind:        PhaseInform,
		Length:      p.PhaseLength(i),
		AliceSendP:  clampP(aliceSend),
		NodeListenP: clampP(listen),
		DecoyP:      clampP(p.decoyProb()),
	}
}

func (p *Params) propagatePhase(i, step int) Phase {
	pow2i := math.Pow(2, float64(i))
	var listen float64
	switch p.Variant {
	case VariantK2Exact:
		// Figure 1: 4e(c+1) / 2^{ai+(b/2)i} = 4e(c+1)/2^i at a=1/2, b=1.
		listen = 4 * math.E * (p.C + 1) / pow2i
	default:
		// Figure 2: 2ec / (ε′ 2^i).
		listen = 2 * math.E * p.C / (p.Epsilon * pow2i)
	}
	listen *= p.listenBoost()
	return Phase{
		Round:       i,
		Kind:        PhasePropagate,
		Step:        step,
		Length:      p.PhaseLength(i),
		NodeSendP:   clampP(1 / p.EffectiveN()),
		NodeListenP: clampP(listen),
		DecoyP:      clampP(p.decoyProb()),
	}
}

func (p *Params) requestPhase(i int) Phase {
	pow2i := math.Pow(2, float64(i))
	length := p.PhaseLength(i)
	// Node listens with (c+1)/((1-e^{-64ε′}) 2^i).
	nodeListen := (p.C + 1) / ((1 - math.Exp(-64*p.Epsilon)) * pow2i)
	// Alice listens with c ln n / ((1-e^{-4ε′}) · phase length), giving
	// her O(log n) expected listens per request phase.
	aliceListen := p.C * p.LnN() / ((1 - math.Exp(-4*p.Epsilon)) * float64(length))
	return Phase{
		Round:          i,
		Kind:           PhaseRequest,
		Length:         length,
		NodeSendP:      clampP(1 / p.EffectiveN()),
		NodeListenP:    clampP(nodeListen),
		AliceListenP:   clampP(aliceListen),
		NoisyThreshold: p.NoisyThreshold(),
	}
}
