package engine

import (
	"context"
	"errors"
	"slices"

	"rcbcast/internal/adversary"
	"rcbcast/internal/bitset"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/msg"
	"rcbcast/internal/sampling"
	"rcbcast/internal/topology"
)

// The batched lockstep kernel.
//
// RunBatch executes B trials of the same sweep point — equal Params and
// Topology spec, per-lane seeds, strategies, pools, and budgets — in
// lockstep over one shared phase schedule: each phase of the round
// structure is executed across every still-running lane before the next
// phase is fetched. Three things make the batch faster than B scalar
// runs while keeping every lane's Result byte-identical to its scalar
// counterpart (pinned by the differential and fuzz tests):
//
//   - Block geometric draws. Every schedule walked in a batch lane uses
//     sampling.BlockSchedule, which prefetches skips through
//     rng.Stream.GeometricBlockLnQ's four-lane log kernel — the draw is
//     the engine's dominant cost and its log/divide tail serializes in
//     the scalar engine. Over-drawing a stream is safe here because the
//     engine re-keys (Reseed) every schedule stream before each use.
//   - Bitset reception. The per-slot channel state is two bits per slot
//     (busy, multi — word-packed bitsets) plus the solo frame kind,
//     replacing the scalar engine's byte-per-slot counts array; observe
//     checks the jam plan before touching channel state at all. Under
//     heavy jamming the scalar engine misses cache on a counts load per
//     listen just to discard it; the batch kernel's hot listen path
//     reads only word-packed bits.
//   - Cross-trial topology caching. Lanes resolve their graphs through
//     one topology.Cache: clique and grid specs are trial-invariant, so
//     a whole batch (and every batch after it on the same BatchScratch)
//     shares a single build and CSR; Gilbert graphs are keyed by seed,
//     so each lane holds its own entry, kept live by capacity ≥ width.
//
// The scalar engine (Run / RunContext) is untouched and serves as the
// byte-identity oracle.

// BatchScratch recycles the batch kernel's working state across
// RunBatch calls: the per-lane engine Scratches (their node arrays
// carved from one flat slab, so a batch's lane states sit contiguously),
// the per-lane reception bitsets and block schedules, the shared phase
// schedule, and the cross-trial topology cache. It must never be shared
// by concurrently executing batches; sim's batch workers pool them.
type BatchScratch struct {
	lanes    []batchLane
	nodeSlab []nodeState
	slabN    int
	cache    *topology.Cache
	sched    core.Schedule
}

// NewBatchScratch returns an empty batch scratch; buffers grow to the
// batch widths and node counts the runs it serves need.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// batchLane is one trial's execution state inside a batch: its run plus
// the lane-owned reception bitsets and the block-draw schedules its
// walkers reuse (one node is walked to completion before the next, so
// two schedules per lane suffice — data/listen and decoy).
type batchLane struct {
	sc          *Scratch
	r           *run
	busy, multi bitset.Set
	blkA, blkB  sampling.BlockSchedule
}

// ensure grows the scratch for a batch of the given width over n-node
// trials. Per-lane node arrays are carved from one contiguous slab
// (re-carved only when the width or n outgrows it), and the topology
// cache is sized so every lane's graph stays live for the whole batch.
func (bs *BatchScratch) ensure(width, n int) {
	if bs.cache == nil {
		bs.cache = topology.NewCache(width + 2)
	}
	bs.cache.EnsureCapacity(width + 2)
	for len(bs.lanes) < width {
		bs.lanes = append(bs.lanes, batchLane{})
	}
	for i := 0; i < width; i++ {
		if bs.lanes[i].sc == nil {
			bs.lanes[i].sc = NewScratch()
		}
	}
	if need := width * n; cap(bs.nodeSlab) < need || bs.slabN != n {
		bs.nodeSlab = make([]nodeState, need)
		bs.slabN = n
		for i := 0; i < width; i++ {
			// Full three-index slices: a lane's segment can never grow
			// into its neighbor's.
			bs.lanes[i].sc.nodes = bs.nodeSlab[i*n : (i+1)*n : (i+1)*n]
		}
	}
}

// RunBatch executes the lanes' trials in lockstep on the batched kernel
// and returns their Results indexed like opts. Every lane's Result is
// byte-identical to Run(opts[i]). All lanes must share Params, Topology,
// and MaxPhaseSlots (the execution-shaping fields — a batch is B trials
// of one sweep point); seeds, strategies, pools, budgets, perturbations,
// and tracers are per-lane. Strategy and Pool instances carry per-run
// state and must not be shared across lanes. A nil scratch allocates
// fresh working state.
func RunBatch(opts []Options, bs *BatchScratch) ([]*Result, error) {
	return RunBatchContext(nil, opts, bs)
}

var errBatchMismatch = errors.New(
	"engine: batch lanes must share Params, Topology, and MaxPhaseSlots")

// RunBatchContext is RunBatch checking ctx once per lockstep phase.
// Cancellation returns a *PartialRunError carrying the furthest lane's
// progress; no Results accompany it (as with RunContext, partial-state
// invariants do not hold).
func RunBatchContext(ctx context.Context, opts []Options, bs *BatchScratch) ([]*Result, error) {
	if len(opts) == 0 {
		return nil, nil
	}
	for i := 1; i < len(opts); i++ {
		if opts[i].Params != opts[0].Params ||
			opts[i].Topology != opts[0].Topology ||
			opts[i].MaxPhaseSlots != opts[0].MaxPhaseSlots {
			return nil, errBatchMismatch
		}
	}
	if bs == nil {
		bs = NewBatchScratch()
	}
	// Invalid params fail lane construction below with the scalar
	// engine's error; the slab sizing just must not trip on them first.
	n := opts[0].Params.N
	if n < 0 {
		n = 0
	}
	bs.ensure(len(opts), n)
	lanes := bs.lanes[:len(opts)]
	defer func() {
		for i := range lanes {
			if lanes[i].r != nil {
				lanes[i].r.releaseScratch()
				lanes[i].r = nil
			}
		}
	}()
	for i := range lanes {
		l := &lanes[i]
		o := opts[i]
		if o.Scratch == nil {
			o.Scratch = l.sc
		}
		r, err := newRunTopo(&o, bs.cache.Get)
		if err != nil {
			return nil, err
		}
		l.r = r
	}

	maxSlots := opts[0].maxPhaseSlots()
	bs.sched.Reset(&lanes[0].r.params)
	for {
		alive := false
		for i := range lanes {
			if !lanes[i].r.done() {
				alive = true
				break
			}
		}
		if !alive {
			break
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				var rounds int
				var slots int64
				for i := range lanes {
					if r := lanes[i].r; r.lastRound > rounds {
						rounds = r.lastRound
					}
					if r := lanes[i].r; r.slots > slots {
						slots = r.slots
					}
				}
				return nil, &PartialRunError{Rounds: rounds, Slots: slots, Err: ctx.Err()}
			default:
			}
		}
		ph, ok := bs.sched.Next()
		if !ok {
			break
		}
		if ph.Length > maxSlots {
			return nil, ErrPhaseTooLong
		}
		for i := range lanes {
			if l := &lanes[i]; !l.r.done() {
				l.runPhase(ph)
			}
		}
	}
	results := make([]*Result, len(lanes))
	for i := range lanes {
		if t := lanes[i].r.opts.Tracer; t != nil {
			t.Done()
		}
		results[i] = lanes[i].r.result()
	}
	return results, nil
}

// runPhase executes one phase on this lane, mirroring run.runPhase with
// the batch kernel's reception state and block-draw walkers.
func (l *batchLane) runPhase(ph core.Phase) {
	r := l.r
	l.ensureBuffers(ph.Length)
	out := adversary.PhaseOutcome{Phase: ph}
	if r.opts.Tracer != nil {
		r.opts.Tracer.PhaseStart(ph)
	}

	// Pass A: transmissions (committed and charged at phase start).
	l.aliceSends(ph, &out)
	for i := range r.nodes {
		l.planNodeSends(&r.nodes[i], ph)
	}
	l.mergeNodeSends(&out)

	plan := l.adversaryPlan(ph, &out)

	if r.topo != nil && len(r.txs) > 1 {
		slices.SortStableFunc(r.txs, func(a, b txRec) int { return int(a.slot - b.slot) })
	}

	// Pass B: listens.
	for i := range r.nodes {
		l.walkNodeListens(&r.nodes[i], ph, plan)
	}
	for i := range r.nodes {
		out.NodeListens += r.nodes[i].phaseListens
	}
	l.aliceListens(ph, plan, &out)

	aliceWasActive := r.alice.active()
	terminatedBefore := r.terminatedSet()
	r.endPhase(ph)
	r.emitTrace(ph, aliceWasActive, terminatedBefore)
	r.recordOutcome(out)
	if r.opts.Tracer != nil {
		r.opts.Tracer.PhaseEnd(r.hist.Outcomes[len(r.hist.Outcomes)-1])
	}
	r.slots += int64(ph.Length)
	r.lastRound = ph.Round
	l.clearDirty()
	if plan != nil {
		plan.Release()
	}
}

// ensureBuffers sizes the lane's per-slot reception state: the busy and
// multi bitsets (two bits per slot; Resize keeps contents, which are
// all-zero between phases by the dirty-clearing discipline) and the
// solo-kind bytes, read only on an actual solo reception. The scalar
// counts array is never touched by the batch kernel.
func (l *batchLane) ensureBuffers(length int) {
	r := l.r
	if cap(r.soloKind) < length {
		r.soloKind = make([]uint8, length)
	}
	r.soloKind = r.soloKind[:length]
	l.busy.Resize(length)
	l.multi.Resize(length)
}

// clearDirty zeroes exactly the slots the phase touched, mirroring
// run.clearDirty on the bitset state.
func (l *batchLane) clearDirty() {
	r := l.r
	for _, s := range r.dirty {
		l.busy.Clear(int(s))
		l.multi.Clear(int(s))
		r.soloKind[s] = 0
	}
	r.dirty = r.dirty[:0]
	r.txs = r.txs[:0]
}

// addTx mirrors run.addTx on the busy/multi bitsets. The scalar kernel
// keeps a saturating count per slot; reception only ever distinguishes
// zero, one, and many, which is what the two bits encode.
func (l *batchLane) addTx(slot int, kind msg.Kind, src int32) {
	r := l.r
	if !l.busy.Get(slot) {
		l.busy.Set(slot)
		r.soloKind[slot] = uint8(kind)
		r.dirty = append(r.dirty, int32(slot))
	} else {
		l.multi.Set(slot)
	}
	if r.topo != nil {
		r.txs = append(r.txs, txRec{slot: int32(slot), src: src, kind: uint8(kind)})
	}
}

// observe mirrors run.observe with the load order inverted: the jam
// plan is consulted before any channel state, so a jammed listen — the
// common case under the strategies that matter — resolves without
// touching the per-slot arrays at all. The outputs are identical for
// every input: jammed slots are noise in both kernels regardless of
// traffic.
func (l *batchLane) observe(slot, listener int, plan *adversary.Plan) (msg.Kind, outcome) {
	if plan != nil && plan.Jammed(slot) && plan.Disrupts(slot, listener) {
		return 0, outcomeNoise
	}
	if !l.busy.Get(slot) {
		return 0, outcomeSilence
	}
	if l.r.topo != nil {
		return l.observeSparse(slot, listener)
	}
	if l.multi.Get(slot) {
		return 0, outcomeNoise
	}
	return msg.Kind(l.r.soloKind[slot]), outcomeReceived
}

// observeSparse mirrors run.observeSparse past its jam and empty-slot
// checks (both already resolved by observe): the listener's perception
// is a binary search over the phase's slot-sorted transmission records,
// counting audible transmitters.
func (l *batchLane) observeSparse(slot, listener int) (msg.Kind, outcome) {
	r := l.r
	s := int32(slot)
	lo, hi := 0, len(r.txs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.txs[mid].slot < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	heard := 0
	var kind msg.Kind
	for i := lo; i < len(r.txs) && r.txs[i].slot == s; i++ {
		if !r.audible(r.txs[i].src, listener) {
			continue
		}
		if heard++; heard > 1 {
			return 0, outcomeNoise
		}
		kind = msg.Kind(r.txs[i].kind)
	}
	if heard == 0 {
		return 0, outcomeSilence
	}
	return kind, outcomeReceived
}

// planNodeSends mirrors run.planNodeSends walking the lane's block
// schedules: same streams, same keyed draws, same merge and charging
// order, slot sequences pinned identical by the sampling differential
// tests.
func (l *batchLane) planNodeSends(n *nodeState, ph core.Phase) {
	r := l.r
	n.sendSlots = n.sendSlots[:0]
	n.sendKinds = n.sendKinds[:0]
	n.phaseListens = 0
	if !n.active() {
		return
	}
	var dataP float64
	var dataKind msg.Kind
	switch ph.Kind {
	case core.PhasePropagate:
		if n.informed && r.params.SendStep(n.mark) == ph.Step {
			dataP = clamp01(ph.NodeSendP * n.sendScale)
			dataKind = msg.KindData
		}
	case core.PhaseRequest:
		if !n.informed {
			dataP = clamp01(ph.NodeSendP * n.sendScale)
			dataKind = msg.KindNack
		}
	}
	decoyP := ph.DecoyP

	ord := phaseOrdinal(ph, r.params.K)
	round := uint64(ph.Round)
	var dSlot, cSlot int
	var dOK, cOK bool
	if dataP > 0 {
		n.streamA.Reseed(r.opts.Seed, nodeActor(n.id), round, ord, purpSend)
		l.blkA.Reset(&n.streamA, dataP, ph.Length)
		dSlot, dOK = l.blkA.Next()
	}
	if decoyP > 0 {
		n.streamB.Reseed(r.opts.Seed, nodeActor(n.id), round, ord, purpDecoy)
		l.blkB.Reset(&n.streamB, decoyP, ph.Length)
		cSlot, cOK = l.blkB.Next()
	}

	// When the meter covers the phase's worst case (a data and a decoy
	// stream can emit at most 2·Length sends), no send can exhaust it
	// mid-walk, so the per-send charges fold into one ChargeN at the
	// end — Meter charges are pure accumulation, so the final state is
	// identical. Otherwise take the scalar per-send path, whose
	// mid-walk death is observable.
	prepaid := n.meter.CanAfford(2 * int64(ph.Length))
	sends := int64(0)
	for dOK || cOK {
		var slot int
		var kind msg.Kind
		switch {
		case dOK && (!cOK || dSlot <= cSlot):
			slot, kind = dSlot, dataKind
			if cOK && cSlot == dSlot {
				cSlot, cOK = l.blkB.Next()
			}
			dSlot, dOK = l.blkA.Next()
		default:
			slot, kind = cSlot, msg.KindDecoy
			cSlot, cOK = l.blkB.Next()
		}
		if prepaid {
			sends++
		} else if err := n.meter.Charge(energy.Send); err != nil {
			n.dead = true
			return
		}
		n.sendSlots = append(n.sendSlots, int32(slot))
		n.sendKinds = append(n.sendKinds, kind)
	}
	if prepaid {
		_ = n.meter.ChargeN(energy.Send, sends)
	}
}

// mergeNodeSends mirrors run.mergeNodeSends through the lane's addTx.
func (l *batchLane) mergeNodeSends(out *adversary.PhaseOutcome) {
	r := l.r
	for i := range r.nodes {
		n := &r.nodes[i]
		for j, slot := range n.sendSlots {
			kind := n.sendKinds[j]
			l.addTx(int(slot), kind, int32(n.id))
			switch kind {
			case msg.KindData:
				out.NodeDataSends++
			case msg.KindNack:
				out.NodeNacks++
			case msg.KindDecoy:
				out.NodeDecoys++
			}
		}
	}
}

// aliceSends mirrors run.aliceSends on a block schedule.
func (l *batchLane) aliceSends(ph core.Phase, out *adversary.PhaseOutcome) {
	r := l.r
	if ph.AliceSendP <= 0 || !r.alice.active() {
		return
	}
	r.aliceStream.Reseed(r.opts.Seed, actorAlice, uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpSend)
	l.blkA.Reset(&r.aliceStream, ph.AliceSendP, ph.Length)
	prepaid := r.alice.meter.CanAfford(int64(ph.Length))
	sends := int64(0)
	for {
		slot, ok := l.blkA.Next()
		if !ok {
			break
		}
		if prepaid {
			sends++
		} else if err := r.alice.meter.Charge(energy.Send); err != nil {
			r.alice.dead = true
			return
		}
		l.addTx(slot, msg.KindData, txSrcAlice)
		out.AliceSends++
	}
	if prepaid {
		_ = r.alice.meter.ChargeN(energy.Send, sends)
	}
}

// adversaryPlan mirrors run.adversaryPlan; the reactive RSSI view is
// one word-level union of the busy set instead of a per-dirty-slot
// loop (every dirty slot carries traffic, so the sets are equal).
func (l *batchLane) adversaryPlan(ph core.Phase, out *adversary.PhaseOutcome) *adversary.Plan {
	r := l.r
	r.advStream.Reseed(r.opts.Seed, actorAdversary, uint64(ph.Round), phaseOrdinal(ph, r.params.K))
	st := &r.advStream
	var plan *adversary.Plan
	if reactive, ok := r.strategy.(adversary.Reactive); ok && r.opts.AllowReactive {
		r.activity.Reset(ph.Length)
		r.activity.OrBits(&l.busy)
		plan = reactive.PlanReactive(ph, &r.activity, &r.hist, r.pool, st)
	} else {
		plan = r.strategy.PlanPhase(ph, &r.hist, r.pool, st)
	}
	if plan == nil {
		return nil
	}

	jams := int64(plan.JamCount())
	if r.pool != nil && r.pool.Remaining() < jams {
		jams = plan.TruncateJamsAfter(r.pool.Remaining())
	}
	if r.pool != nil {
		_ = r.pool.Charge(energy.Jam, jams)
	}
	out.JammedSlots = jams
	r.totalJams += jams

	injections := plan.Injections()
	keep := int64(len(injections))
	if r.pool != nil && r.pool.Remaining() < keep {
		keep = plan.TruncateInjectionsAfter(r.pool.Remaining())
	}
	if r.pool != nil {
		_ = r.pool.Charge(energy.Send, keep)
	}
	out.InjectedFrames = keep
	r.totalInjects += keep
	for _, inj := range plan.Injections() {
		l.addTx(inj.Slot, inj.Frame.Kind, txSrcAdversary)
	}
	if jams == 0 && keep == 0 {
		plan.Release()
		return nil
	}
	return plan
}

// walkNodeListens mirrors run.walkNodeListens on a block schedule and
// the lane's observe.
func (l *batchLane) walkNodeListens(n *nodeState, ph core.Phase, plan *adversary.Plan) {
	r := l.r
	if !n.active() || n.informed {
		return
	}
	listenP := clamp01(ph.NodeListenP * n.listenScale)
	if listenP <= 0 {
		return
	}
	n.streamA.Reseed(r.opts.Seed, nodeActor(n.id), uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpListen)
	l.blkA.Reset(&n.streamA, listenP, ph.Length)
	// A meter that covers every slot of the phase cannot exhaust
	// mid-walk, so the per-listen charges fold into one ChargeN —
	// charges are pure accumulation, so the final meter state is
	// identical. Otherwise keep the scalar per-listen path, whose
	// mid-walk death is observable.
	prepaid := n.meter.CanAfford(int64(ph.Length))
	listens := int64(0)
	si := 0
	// Consume whole draw blocks (Take) instead of a call per event; the
	// scalar loop's informed/dead checks before each event become
	// labeled breaks right after the state changes, which is the same
	// exit point — nothing else mutates them mid-walk.
outer:
	for {
		blk := l.blkA.Take()
		if len(blk) == 0 {
			break
		}
		for _, s32 := range blk {
			slot := int(s32)
			for si < len(n.sendSlots) && int(n.sendSlots[si]) < slot {
				si++
			}
			if si < len(n.sendSlots) && int(n.sendSlots[si]) == slot {
				continue
			}
			if prepaid {
				listens++
			} else if err := n.meter.Charge(energy.Listen); err != nil {
				n.dead = true
				break outer
			}
			n.phaseListens++
			kind, out := l.observe(slot, n.id, plan)
			if ph.Kind == core.PhaseRequest {
				n.listens++
				if out != outcomeSilence {
					n.noisy++
				}
			}
			if out == outcomeReceived && kind == msg.KindData {
				n.informed = true
				n.justInformed = true
				if ph.Kind == core.PhasePropagate {
					n.mark = core.InformMark(ph.Step)
				} else {
					n.mark = core.MarkInformPhase
				}
				break outer
			}
		}
	}
	if prepaid {
		_ = n.meter.ChargeN(energy.Listen, listens)
	}
}

// aliceListens mirrors run.aliceListens on a block schedule.
func (l *batchLane) aliceListens(ph core.Phase, plan *adversary.Plan, out *adversary.PhaseOutcome) {
	r := l.r
	if ph.AliceListenP <= 0 || !r.alice.active() {
		return
	}
	r.aliceStream.Reseed(r.opts.Seed, actorAlice, uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpListen)
	l.blkA.Reset(&r.aliceStream, ph.AliceListenP, ph.Length)
	prepaid := r.alice.meter.CanAfford(int64(ph.Length))
	listens := int64(0)
outer:
	for {
		blk := l.blkA.Take()
		if len(blk) == 0 {
			break
		}
		for _, s32 := range blk {
			if prepaid {
				listens++
			} else if err := r.alice.meter.Charge(energy.Listen); err != nil {
				r.alice.dead = true
				break outer
			}
			_, o := l.observe(int(s32), msg.SenderAlice, plan)
			out.AliceListens++
			r.alice.listens++
			if o != outcomeSilence {
				r.alice.noisy++
			}
		}
	}
	if prepaid {
		_ = r.alice.meter.ChargeN(energy.Listen, listens)
	}
}
