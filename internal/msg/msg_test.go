package msg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	a := NewAuthenticator(42)
	f := a.Sign([]byte("the message m"))
	if !a.Verify(f) {
		t.Fatal("authentic frame must verify")
	}
	if f.From != SenderAlice {
		t.Fatalf("signed frame From = %d, want SenderAlice", f.From)
	}
	if f.Kind != KindData {
		t.Fatalf("signed frame kind = %v", f.Kind)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	a := NewAuthenticator(42)
	f := a.Sign([]byte("payload"))
	f.Payload[0] ^= 1
	if a.Verify(f) {
		t.Fatal("tampered payload must not verify")
	}
}

func TestVerifyRejectsTagTampering(t *testing.T) {
	a := NewAuthenticator(42)
	f := a.Sign([]byte("payload"))
	f.Tag[3] ^= 0x80
	if a.Verify(f) {
		t.Fatal("tampered tag must not verify")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	a := NewAuthenticator(1)
	b := NewAuthenticator(2)
	f := a.Sign([]byte("payload"))
	if b.Verify(f) {
		t.Fatal("frame signed under another key must not verify")
	}
}

func TestVerifyRejectsNonData(t *testing.T) {
	a := NewAuthenticator(42)
	if a.Verify(Nack(3)) {
		t.Fatal("NACK must not verify as Alice's data")
	}
	if a.Verify(Decoy(3)) {
		t.Fatal("decoy must not verify")
	}
}

func TestSpoofNeverVerifies(t *testing.T) {
	a := NewAuthenticator(42)
	genuine := a.Sign([]byte("m"))
	spoof := SpoofData(7, genuine.Payload)
	if a.Verify(spoof) {
		t.Fatal("spoofed data must not verify")
	}
	// Even an adversary copying the payload byte-for-byte cannot verify
	// without the key, because Kind differs and the tag is wrong.
	spoof.Kind = KindData
	if a.Verify(spoof) {
		t.Fatal("re-kinded spoof with garbage tag must not verify")
	}
}

func TestRelayPreservesAuthenticity(t *testing.T) {
	a := NewAuthenticator(42)
	f := a.Sign([]byte("m"))
	r := Relay(f, 17)
	if !a.Verify(r) {
		t.Fatal("relayed authentic frame must still verify")
	}
	if r.From != 17 {
		t.Fatalf("relay From = %d, want 17", r.From)
	}
	if f.From != SenderAlice {
		t.Fatal("Relay must not mutate the original frame")
	}
}

func TestSignCopiesPayload(t *testing.T) {
	a := NewAuthenticator(42)
	payload := []byte("mutable")
	f := a.Sign(payload)
	payload[0] = 'X'
	if bytes.Equal(f.Payload, payload) {
		t.Fatal("Sign must copy the payload, not alias it")
	}
	if !a.Verify(f) {
		t.Fatal("frame must stay valid after caller mutates its buffer")
	}
}

func TestSpoofNackLooksGenuine(t *testing.T) {
	real := Nack(5)
	fake := SpoofNack(9)
	if real.Kind != fake.Kind {
		t.Fatal("spoofed NACK must be indistinguishable by kind")
	}
	if len(real.Payload) != len(fake.Payload) {
		t.Fatal("spoofed NACK must be indistinguishable by payload")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "data", KindNack: "nack", KindDecoy: "decoy", KindSpoof: "spoof",
	} {
		if k.String() != want {
			t.Errorf("Kind %d String = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind = %q", Kind(200).String())
	}
}

func TestZeroValueAuthenticator(t *testing.T) {
	var a Authenticator
	f := a.Sign([]byte("x"))
	if !a.Verify(f) {
		t.Fatal("zero-value authenticator must be self-consistent")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	// Property: for any payload and seed, sign/verify round-trips and a
	// one-bit flip anywhere in the payload breaks verification.
	f := func(seed uint64, payload []byte, flip uint16) bool {
		a := NewAuthenticator(seed)
		fr := a.Sign(payload)
		if !a.Verify(fr) {
			return false
		}
		if len(fr.Payload) == 0 {
			return true
		}
		i := int(flip) % len(fr.Payload)
		fr.Payload[i] ^= 1 << (flip % 8)
		return !a.Verify(fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
