package main

import (
	"strings"
	"testing"
)

func TestRcexpList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E12"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRcexpSingleQuick(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-id", "E9", "-quick", "-n", "128", "-seeds", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E9") || !strings.Contains(buf.String(), "wall time") {
		t.Fatalf("report incomplete:\n%s", buf.String())
	}
}

func TestRcexpMarkdown(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-id", "E9", "-quick", "-n", "128", "-seeds", "1", "-markdown"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "### E9") || !strings.Contains(buf.String(), "|---|") {
		t.Fatalf("markdown output wrong:\n%s", buf.String())
	}
}

func TestRcexpUnknownID(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-id", "E99"}, &buf); err == nil {
		t.Fatal("unknown id must error")
	}
}
