package experiment

import (
	"math"
	"strings"
	"testing"
)

// quickCfg keeps the test suite fast; benchmarks exercise full sweeps.
func quickCfg() Config { return Config{Quick: true, BaseSeed: 1} }

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d experiments, want 13 (E1-E13)", len(all))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("position %d: %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Claim == "" || all[i].Run == nil {
			t.Fatalf("%s incomplete: %+v", id, all[i])
		}
	}
	if _, ok := ByID("E1"); !ok {
		t.Fatal("ByID(E1) must succeed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) must fail")
	}
}

func mustRun(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := e.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(rep.Tables) == 0 || rep.Tables[0].NumRows() == 0 {
		t.Fatalf("%s produced no table rows", id)
	}
	if !strings.Contains(rep.Render(), id) {
		t.Fatalf("%s render missing its id", id)
	}
	return rep
}

func TestE1CostExponentNearOneThird(t *testing.T) {
	rep := mustRun(t, "E1")
	// The marginal per-round fit measures Theorem 1's exponent cleanly.
	exp := rep.Values["node_exponent"]
	if math.Abs(exp-1.0/3) > 0.06 {
		t.Fatalf("marginal node cost exponent = %v, want 1/3 (Theorem 1)", exp)
	}
	aliceExp := rep.Values["alice_exponent"]
	if math.Abs(aliceExp-1.0/3) > 0.1 {
		t.Fatalf("marginal alice cost exponent = %v, want ~1/3 up to log factors", aliceExp)
	}
	// The cumulative fit is documented to sit above 1/3 at laptop n
	// (warm-up bias) but must stay far below linear.
	cum := rep.Values["node_cumulative_exponent"]
	if cum < 0.2 || cum > 0.7 {
		t.Fatalf("cumulative node exponent = %v, want in the sublinear band", cum)
	}
}

func TestE2ExponentDecreasesWithK(t *testing.T) {
	rep := mustRun(t, "E2")
	e2 := rep.Values["node_exponent_k2"]
	e4 := rep.Values["node_exponent_k4"]
	if !(e4 < e2) {
		t.Fatalf("exponent must shrink with k: k2=%v k4=%v", e2, e4)
	}
	for _, k := range []int{2, 3, 4} {
		got := rep.Values["node_exponent_k"+string(rune('0'+k))]
		want := rep.Values["predicted_k"+string(rune('0'+k))]
		if math.Abs(got-want) > 0.05 {
			t.Errorf("k=%d: exponent %v too far from predicted %v", k, got, want)
		}
	}
}

func TestE3DeliveryAcrossAdversaries(t *testing.T) {
	rep := mustRun(t, "E3")
	// Every in-model adversary leaves at least (1-ε) informed; with the
	// practical quiet fraction 2ε' = 1/8 the worst allowed loss is ~13%.
	const minInformed = 0.85
	for _, name := range e3Scenarios {
		frac := rep.Values["informed_"+name]
		if frac < minInformed {
			t.Errorf("%s: informed %v < %v", name, frac, minInformed)
		}
	}
}

func TestE4LatencyExponent(t *testing.T) {
	rep := mustRun(t, "E4")
	exp := rep.Values["latency_exponent"]
	if exp < 1.1 || exp > 2.0 {
		t.Fatalf("latency exponent = %v, want ~1.5 (Corollary 1)", exp)
	}
}

func TestE5LoadBalance(t *testing.T) {
	rep := mustRun(t, "E5")
	if rep.Values["max_ratio"] > 4*rep.Values["polylog_bound"] {
		t.Fatalf("Alice/node ratio %v exceeds polylog scale %v",
			rep.Values["max_ratio"], rep.Values["polylog_bound"])
	}
}

func TestE6BaselineShape(t *testing.T) {
	rep := mustRun(t, "E6")
	naive := rep.Values["naive_node_exponent"]
	ksyAlice := rep.Values["ksy_alice_exponent"]
	ksyNode := rep.Values["ksy_node_exponent"]
	ours := rep.Values["ours_node_exponent"]
	if naive < 0.9 {
		t.Fatalf("naive node exponent = %v, want ~1", naive)
	}
	if ksyNode < 0.9 {
		t.Fatalf("KSY node exponent = %v, want ~1 (not load balanced)", ksyNode)
	}
	if !(ksyAlice < naive-0.2) {
		t.Fatalf("KSY Alice exponent %v must clearly beat naive %v", ksyAlice, naive)
	}
	if !(ours < ksyAlice-0.1) {
		t.Fatalf("our node exponent %v must beat even KSY's Alice %v", ours, ksyAlice)
	}
	// The headline: who wins and by what shape. Ours wins for everyone.
	if ours > 0.55 {
		t.Fatalf("our exponent %v should be near 1/3", ours)
	}
}

func TestE7DecoyDefence(t *testing.T) {
	rep := mustRun(t, "E7")
	// Undefended: Carol matches node spend ~1:1 (exponent near 1) —
	// resource competitiveness destroyed.
	if rep.Values["exponent_undefended"] < 0.7 {
		t.Fatalf("undefended reactive exponent = %v, want ~1", rep.Values["exponent_undefended"])
	}
	// Decoys restore the sublinear trade.
	if rep.Values["exponent_decoy"] > 0.5 {
		t.Fatalf("decoy exponent = %v, want ~1/3", rep.Values["exponent_decoy"])
	}
	// Against the same budgeted pool, decoys drain Carol much earlier.
	if !(rep.Values["delay_slots_decoy"]*4 < rep.Values["delay_slots_undefended"]) {
		t.Fatalf("decoys must slash the achievable delay: %v vs %v",
			rep.Values["delay_slots_decoy"], rep.Values["delay_slots_undefended"])
	}
	// Both budgeted pools eventually drain, so delivery completes.
	if rep.Values["informed_decoy"] < 0.85 {
		t.Fatalf("decoy budgeted run informed %v", rep.Values["informed_decoy"])
	}
}

func TestE8SpoofingExponent(t *testing.T) {
	rep := mustRun(t, "E8")
	exp := rep.Values["alice_exponent"]
	if exp < 0.1 || exp > 0.6 {
		t.Fatalf("alice spoofing exponent = %v, want ~1/3", exp)
	}
}

func TestE9StrandingLimit(t *testing.T) {
	rep := mustRun(t, "E9")
	// Small partitions succeed: stranded ≈ requested, run completes.
	if got := rep.Values["stranded_at_0.05"]; math.Abs(got-0.05) > 0.02 {
		t.Fatalf("5%% partition stranded %v, want ~0.05", got)
	}
	if rep.Values["completed_at_0.05"] < 1 {
		t.Fatal("5% partition must complete (that is the ε loss)")
	}
	// Oversized partitions fail closed: nodes stay active.
	if rep.Values["completed_at_0.30"] > 0 {
		t.Fatal("30% partition must not let the network terminate")
	}
}

func TestE10ApproximationRobustness(t *testing.T) {
	rep := mustRun(t, "E10")
	for vi := 0; vi < 5; vi++ {
		frac := rep.Values["informed_v"+string(rune('0'+vi))]
		if frac < 0.85 {
			t.Errorf("variant %d informed %v, want ≥ 1-ε", vi, frac)
		}
	}
	for vi := 1; vi < 4; vi++ {
		ratio := rep.Values["cost_ratio_v"+string(rune('0'+vi))]
		if ratio > 8 || ratio < 1.0/8 {
			t.Errorf("variant %d cost ratio %v, want constant-factor", vi, ratio)
		}
	}
	// The g-sweep variant is allowed (and expected) to pay up to the
	// Θ(lg ν) factor the paper concedes, but no more.
	if ratio := rep.Values["cost_ratio_v4"]; ratio > 64 {
		t.Errorf("poly-overestimate cost ratio %v exceeds the lg ν budget", ratio)
	}
}

func TestE11EnginesIdentical(t *testing.T) {
	rep := mustRun(t, "E11")
	if rep.Values["identical"] != 1 {
		t.Fatal("engines must be bit-for-bit identical")
	}
}

func TestE12MultiHop(t *testing.T) {
	rep := mustRun(t, "E12")
	// Latency per hop stays ~constant.
	if r := rep.Values["latency_per_hop_ratio"]; r < 0.5 || r > 2 {
		t.Fatalf("latency per hop ratio = %v, want ~1", r)
	}
	// Typical node cost does not grow with hops.
	if rep.Values["median_cost_h4"] > 2*rep.Values["median_cost_h1"]+4 {
		t.Fatalf("median cost grew with hops: %v vs %v",
			rep.Values["median_cost_h4"], rep.Values["median_cost_h1"])
	}
	// Concentrated jamming buys no multi-hop amplification.
	if r := rep.Values["concentrated_delay_ratio"]; r < 0.3 || r > 3 {
		t.Fatalf("concentrated delay ratio = %v, want ~1", r)
	}
	// End-to-end delivery survives the benign pipeline.
	if rep.Values["e2e_frac_h4"] < 0.9 {
		t.Fatalf("end-to-end fraction = %v", rep.Values["e2e_frac_h4"])
	}
}

func TestE13TopologyDeliveryTracksReachable(t *testing.T) {
	rep := mustRun(t, "E13")
	// Quick radii: 0.15, 0.25, 0.4. Delivery never exceeds the k-hop
	// geometric ceiling, and in benign runs it nearly achieves it.
	for _, r := range []string{"0.15", "0.25", "0.4"} {
		benign := rep.Values["ratio_benign_r"+r]
		if benign < 0.8 || benign > 1.0001 {
			t.Fatalf("r=%s: benign informed/reachable = %v, want ~1", r, benign)
		}
		if jam := rep.Values["ratio_jam_r"+r]; jam > 1.0001 {
			t.Fatalf("r=%s: jamming extended delivery past the ceiling (%v)", r, jam)
		}
	}
	// The radius sweep spans the transition: a small ball at the low
	// end, (near-)full coverage at the top.
	if lo := rep.Values["reachable_frac_r0.15"]; lo > 0.6 {
		t.Fatalf("low radius already covers %v of n — sweep too easy", lo)
	}
	if hi := rep.Values["informed_benign_r0.4"]; hi < 0.95 {
		t.Fatalf("top radius delivers only %v", hi)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.n(512, 256) != 512 || c.seeds(3, 2) != 3 {
		t.Fatal("full defaults wrong")
	}
	c.Quick = true
	if c.n(512, 256) != 256 || c.seeds(3, 2) != 2 {
		t.Fatal("quick defaults wrong")
	}
	c.N, c.Seeds = 64, 1
	if c.n(512, 256) != 64 || c.seeds(3, 2) != 1 {
		t.Fatal("overrides ignored")
	}
	if (Config{BaseSeed: 1}).seed(0) == (Config{BaseSeed: 2}).seed(0) {
		t.Fatal("seeds must differ across BaseSeed")
	}
}
