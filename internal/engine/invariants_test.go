package engine

import (
	"testing"
	"testing/quick"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
)

// randomOptions derives a small but varied protocol configuration from
// fuzz bytes: network size, k, adversary family, pool size, budgets,
// decoys — the whole option surface at sizes that run in milliseconds.
func randomOptions(seed uint64, a, b, c, d uint8) Options {
	n := 32 + int(a%4)*32 // 32..128
	k := 2 + int(b%3)     // 2..4
	params := core.PracticalParams(n, k)
	params.MaxRound = params.StartRound + 2 // bound every run
	if d%4 == 0 {
		params.Decoy = true
		params.DecoyProb = 0.75 / float64(n)
		params.ListenBoost = 4
	}
	opts := Options{Params: params, Seed: seed}
	switch c % 6 {
	case 0:
		opts.Strategy = adversary.Null{}
	case 1:
		opts.Strategy = adversary.FullJam{}
	case 2:
		opts.Strategy = adversary.RandomJam{P: 0.3}
	case 3:
		opts.Strategy = &adversary.NackSpoofer{Rate: 0.4}
	case 4:
		limit := n / 8
		opts.Strategy = &adversary.PartitionBlocker{
			Stranded: func(node int) bool { return node < limit },
		}
	case 5:
		opts.Strategy = adversary.ReactiveJammer{}
		opts.AllowReactive = true
	}
	pool := int64(d%8) * 512 // 0..3584; 0 keeps Pool nil (unlimited)
	if pool > 0 {
		opts.Pool = energy.NewPool(pool)
	}
	if d%3 == 0 {
		opts.NodeBudget = int64(50 + int(a)*4)
		opts.AliceBudget = int64(500 + int(b)*16)
	}
	return opts
}

// TestProtocolInvariants property-checks the conservation laws every
// execution must satisfy, regardless of adversary or budgets:
//
//  1. node dispositions partition the network,
//  2. nobody overspends a budget,
//  3. Carol never exceeds her pool, and her reported spend matches it,
//  4. informed nodes only exist if somebody transmitted data,
//  5. Completed implies nobody is left active,
//  6. latency covers at least the executed rounds.
func TestProtocolInvariants(t *testing.T) {
	f := func(seed uint64, a, b, c, d uint8) bool {
		opts := randomOptions(seed, a, b, c, d)
		res, err := Run(opts)
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}

		// (1) Disposition partition: informed nodes are terminated or
		// dead (they never outlive their round); the rest are stranded,
		// dead, or active.
		if res.Informed+res.Stranded+res.Dead+res.ActiveAtEnd < res.N {
			t.Logf("dispositions undercount: %+v", res)
			return false
		}

		// (2) Budgets.
		if opts.NodeBudget > 0 {
			for id, cost := range res.NodeCosts {
				if cost > opts.NodeBudget {
					t.Logf("node %d overspent: %d > %d", id, cost, opts.NodeBudget)
					return false
				}
			}
		}
		if opts.AliceBudget > 0 && res.Alice.Cost > opts.AliceBudget {
			t.Logf("alice overspent: %d", res.Alice.Cost)
			return false
		}

		// (3) Adversary pool.
		if opts.Pool != nil {
			if res.AdversarySpent > opts.Pool.Budget() {
				t.Logf("adversary overspent: %d > %d", res.AdversarySpent, opts.Pool.Budget())
				return false
			}
			if res.AdversarySpent != opts.Pool.Spent() {
				t.Logf("spend mismatch: result %d pool %d", res.AdversarySpent, opts.Pool.Spent())
				return false
			}
		}
		if res.AdversarySpent != res.AdversaryJams+res.AdversaryInjections {
			t.Logf("spend split mismatch: %+v", res)
			return false
		}

		// (4) Information comes from somewhere: informed > 0 requires
		// Alice to have sent at least once.
		if res.Informed > 0 && res.Alice.Sends == 0 {
			t.Logf("nodes informed without any Alice transmission")
			return false
		}

		// (5) Completion semantics.
		if res.Completed && (res.ActiveAtEnd != 0 || (!res.Alice.Terminated && !res.Alice.Dead)) {
			t.Logf("completed but devices still active: %+v", res)
			return false
		}

		// (6) Latency sanity.
		if res.SlotsSimulated <= 0 || res.Rounds < opts.Params.StartRound {
			t.Logf("latency nonsense: slots=%d rounds=%d", res.SlotsSimulated, res.Rounds)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineEquivalenceProperty extends the fixed-configuration
// equivalence suite with randomized configurations.
func TestEngineEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed uint64, a, b, c, d uint8) bool {
		// Pools are stateful; build fresh options per engine.
		seq, err := Run(randomOptions(seed, a, b, c, d))
		if err != nil {
			return false
		}
		act, err := RunActors(randomOptions(seed, a, b, c, d))
		if err != nil {
			return false
		}
		if seq.Informed != act.Informed || seq.Alice != act.Alice ||
			seq.NodeCost != act.NodeCost || seq.AdversarySpent != act.AdversarySpent ||
			seq.SlotsSimulated != act.SlotsSimulated {
			t.Logf("engines diverged:\nseq: %+v\nact: %+v", seq, act)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDispositionExact pins the partition law exactly: informed nodes are
// never double-counted with stranded ones.
func TestDispositionExact(t *testing.T) {
	res, err := Run(Options{
		Params: core.PracticalParams(256, 2),
		Seed:   83,
		Strategy: &adversary.PartitionBlocker{
			Stranded: func(node int) bool { return node < 16 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed+res.Stranded+res.Dead+res.ActiveAtEnd != res.N {
		t.Fatalf("dispositions must partition exactly here: %+v", res)
	}
}
