// Package sim is the shared execution layer for experiment sweeps: a
// deterministic parallel trial runner.
//
// Every experiment in internal/experiment is a Monte-Carlo sweep — many
// independent engine executions whose results are averaged per sweep
// point. The engine derives every random decision from keyed streams
// (seed, actor, round, phase, purpose), so a trial's outcome is a pure
// function of its TrialSpec; trials are embarrassingly parallel without
// giving up bit-for-bit reproducibility. RunTrials and Map exploit that:
// a worker pool executes trials in whatever order scheduling happens to
// produce, but workers write into a pre-indexed results slice, so the
// output is byte-identical for Procs=1 and Procs=32. Callers then fold
// results into accumulators in index order, which keeps even
// floating-point aggregation independent of the execution schedule.
//
// Per-trial seeds come from TrialSeed, a SplitMix64 mix of
// (base seed, trial index). Unlike affine schemes such as
// base*1_000_003+i, mixed seeds from adjacent bases do not collide for
// any realistic trial count, so repetitions with BaseSeed and BaseSeed+1
// are statistically independent (see the disjointness test).
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/rng"
)

// TrialSeed derives the engine seed for one trial of a sweep by mixing
// the sweep's base seed with the trial index through SplitMix64
// (rng.Mix). The map (base, trial) -> seed behaves like a random
// function: trial-seed sets from different bases are disjoint in
// practice, so sweeps repeated with adjacent base seeds draw independent
// randomness.
func TrialSeed(base uint64, trial int) uint64 {
	return rng.Mix(base, uint64(trial))
}

// SweepSeed derives the engine seed for trial `trial` of sweep point
// `point` — a three-part SplitMix64 mix. Multi-point sweeps use this
// instead of hand-packing point and trial into one TrialSeed index
// (strides like point*100+trial collide across points as soon as a
// point uses more trials than the stride).
func SweepSeed(base uint64, point, trial int) uint64 {
	return rng.Mix(base, uint64(point), uint64(trial))
}

// TrialSpec describes one engine execution: the protocol instance, the
// fully derived seed, and factories for the per-trial adversary state.
//
// Strategy and Pool are factories rather than instances because several
// strategies (NackSpoofer, SweepJammer, GreedyAdaptive, ...) and every
// Pool carry per-run mutable state; sharing one instance across
// concurrently running trials would race. Each worker calls the
// factories once per trial.
type TrialSpec struct {
	// Params is the protocol instance. Required; must Validate.
	Params core.Params
	// Seed drives every random decision of the trial; derive it with
	// TrialSeed.
	Seed uint64
	// Strategy constructs Carol for this trial; nil means no adversary.
	Strategy func() adversary.Strategy
	// Pool constructs Carol's energy purse; nil means unlimited.
	Pool func() *energy.Pool
	// Configure, if non-nil, adjusts the assembled Options before the
	// run (RecordPhases, AllowReactive, Perturb, device budgets...). It
	// runs on a worker goroutine and must not touch shared mutable
	// state.
	Configure func(*engine.Options)
}

// options assembles the engine.Options for the spec.
func (s *TrialSpec) options() engine.Options {
	opts := engine.Options{Params: s.Params, Seed: s.Seed}
	if s.Strategy != nil {
		opts.Strategy = s.Strategy()
	}
	if s.Pool != nil {
		opts.Pool = s.Pool()
	}
	if s.Configure != nil {
		s.Configure(&opts)
	}
	return opts
}

// Procs resolves a proc-count override: values <= 0 select
// runtime.GOMAXPROCS.
func Procs(procs int) int {
	if procs > 0 {
		return procs
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on a pool of procs workers and returns the results
// indexed by input — the deterministic parallel substrate under
// RunTrials, exposed for sweeps that execute something other than the
// single-hop engine (multi-hop pipelines, baseline protocols).
//
// fn must be a pure function of its index (it may of course read shared
// immutable data). Workers claim indices from an atomic counter and
// write only results[i], so the returned slice is identical for every
// procs value; when multiple calls fail, the error for the lowest index
// is returned, keeping even the failure deterministic.
func Map[T any](procs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	procs = Procs(procs)
	if procs > n {
		procs = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if procs == 1 {
		// Inline fast path: no goroutines, same results by construction.
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(procs)
		for w := 0; w < procs; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: trial %d: %w", i, err)
		}
	}
	return results, nil
}

// RunTrials executes every spec on the sequential engine across a pool
// of procs workers (procs <= 0 selects GOMAXPROCS) and returns the
// results indexed like specs. Output is byte-identical for every procs
// value.
func RunTrials(procs int, specs []TrialSpec) ([]*engine.Result, error) {
	return Map(procs, len(specs), func(i int) (*engine.Result, error) {
		return engine.Run(specs[i].options())
	})
}
