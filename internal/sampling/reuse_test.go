package sampling

import (
	"testing"

	"rcbcast/internal/rng"
)

// TestResetMatchesNewSlotSchedule pins the reuse guarantee: a schedule
// value Reset in place enumerates exactly the slots a freshly allocated
// schedule would, for the same stream key.
func TestResetMatchesNewSlotSchedule(t *testing.T) {
	var reused SlotSchedule
	var reusedStream rng.Stream
	for _, tc := range []struct {
		p      float64
		length int
	}{
		{0, 1000}, {1, 50}, {1.5, 50}, {-0.2, 100},
		{0.01, 10000}, {0.3, 500}, {0.999, 200},
	} {
		fresh := NewSlotSchedule(rng.New(11, 5), tc.p, tc.length)
		reusedStream.Reseed(11, 5)
		reused.Reset(&reusedStream, tc.p, tc.length)
		for i := 0; ; i++ {
			wantSlot, wantOK := fresh.Next()
			gotSlot, gotOK := reused.Next()
			if wantSlot != gotSlot || wantOK != gotOK {
				t.Fatalf("p=%v len=%d step %d: Reset schedule diverged (got %d,%t want %d,%t)",
					tc.p, tc.length, i, gotSlot, gotOK, wantSlot, wantOK)
			}
			if !wantOK {
				break
			}
		}
	}
}

// TestScheduleReuseDoesNotAllocate pins the zero-alloc steady state the
// engine's walkers rely on: a stream + schedule pair resident in a
// long-lived struct (the engine keeps them in per-node state) sweeps a
// whole phase per reuse without touching the heap.
func TestScheduleReuseDoesNotAllocate(t *testing.T) {
	var st rng.Stream
	var sched SlotSchedule
	sink := 0
	if n := testing.AllocsPerRun(100, func() {
		st.Reseed(42, 16, 2, 1)
		sched.Reset(&st, 0.05, 4096)
		for {
			slot, ok := sched.Next()
			if !ok {
				break
			}
			sink += slot
		}
	}); n != 0 {
		t.Fatalf("schedule reuse allocated %.1f objects/op, want 0", n)
	}
	_ = sink
}

func TestAppendSampleMatchesSample(t *testing.T) {
	buf := make([]int, 0, 32)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 10}, {100, 7}, {5, 3}} {
		a, b := rng.New(9, uint64(tc.n)), rng.New(9, uint64(tc.n))
		want := SampleWithoutReplacement(a, tc.n, tc.k)
		buf = AppendSampleWithoutReplacement(buf[:0], b, tc.n, tc.k)
		if len(want) != len(buf) {
			t.Fatalf("n=%d k=%d: lengths differ", tc.n, tc.k)
		}
		for i := range want {
			if want[i] != buf[i] {
				t.Fatalf("n=%d k=%d index %d: %d != %d", tc.n, tc.k, i, buf[i], want[i])
			}
		}
	}
	if n := testing.AllocsPerRun(50, func() {
		st := rng.New(1)
		buf = AppendSampleWithoutReplacement(buf[:0], st, 100, 20)
	}); n > 1 { // the one alloc is rng.New itself
		t.Fatalf("AppendSampleWithoutReplacement allocated %.1f objects/op", n)
	}
}
