// Command rcserved is the sweep-job service: a long-running HTTP server
// over the scenario + streaming + checkpoint stack (internal/service,
// DESIGN.md §12).
//
// Usage:
//
//	rcserved -dir ./jobs                 serve on 127.0.0.1:8344
//	rcserved -dir ./jobs -addr :8344     serve on every interface
//	rcserved -dir ./jobs -runners 2      run two jobs concurrently
//	rcserved -version                    print the build stamp and exit
//
// Submit a sweep, watch it, stream its results:
//
//	curl -s -X POST localhost:8344/v1/jobs \
//	     -d '{"scenario": {"n": 64, "adversary": {"kind": "full"}}, "trials": 1000}'
//	curl -s localhost:8344/v1/jobs/<id>
//	curl -sN localhost:8344/v1/jobs/<id>/results > runs.jsonl
//
// Every job journals through sink.Checkpoint in its -dir subdirectory,
// so killing the server — SIGKILL included — loses nothing: on restart,
// interrupted jobs resume from their journaled prefix and their final
// NDJSON output is byte-identical to an uninterrupted run (and to
// `rcexp -scenario ... -trials N` with the same spec). SIGINT/SIGTERM
// shut down gracefully: readiness is withdrawn first (GET /readyz turns
// 503 while GET /healthz stays 200), then running jobs drain to their
// checkpoints within -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"rcbcast/internal/service"
	"rcbcast/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcserved", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8344", "listen address (host:port; :0 picks a free port)")
		dir       = fs.String("dir", "", "job store directory (required)")
		procs     = fs.Int("procs", 0, "engine workers per running job (0 = GOMAXPROCS)")
		runners   = fs.Int("runners", service.DefaultRunners, "jobs executing concurrently")
		queue     = fs.Int("queue", service.DefaultQueueDepth, "queued-job bound (beyond it submits get 429)")
		perClient = fs.Int("per-client", service.DefaultPerClient, "per-client in-flight job cap")
		drain     = fs.Duration("drain", service.DefaultDrainTimeout, "graceful-shutdown drain deadline")
		showVer   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(out, version.String())
		return nil
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	m, err := service.NewManager(service.Config{
		Dir:        *dir,
		Procs:      *procs,
		Runners:    *runners,
		QueueDepth: *queue,
		PerClient:  *perClient,
		Logf:       logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the startup handshake scripts and the
	// e2e test parse; keep its shape stable.
	fmt.Fprintf(out, "rcserved: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: service.NewServer(m)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("rcserved: shutting down (draining up to %s)", *drain)
	deadline, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Withdraw readiness first — /readyz answers 503 while the server
	// still serves, so probing coordinators stop routing new shards and
	// park this worker instead of declaring it dead. Only then drain the
	// jobs and close the listener: in-flight result streams flush their
	// final bytes before Shutdown severs connections.
	m.BeginDrain()
	if err := m.Close(deadline); err != nil {
		srv.Shutdown(deadline)
		return err
	}
	srv.Shutdown(deadline)
	logger.Printf("rcserved: drained")
	return nil
}
