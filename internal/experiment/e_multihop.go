package experiment

import (
	"context"
	"fmt"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/multihop"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Multi-hop extension (cluster pipeline)",
		Claim: "§5 open question: the resource-competitive trade survives hop-by-hop relaying — latency additive in hops, per-node cost flat, stranding compounds as (1-ε)^H, and a concentrated jammer buys no more delay than she would single-hop",
		Run:   runE12,
	})
}

func runE12(cfg Config) (*Report, error) {
	rep := newReport("E12", "Multi-hop extension (cluster pipeline)",
		"per-node cost flat in H, latency additive, concentrated jamming buys single-hop delay only")
	n := cfg.n(512, 128)
	seeds := cfg.seeds(3, 2)
	hopsList := []int{1, 2, 4, 8}
	if cfg.Quick {
		hopsList = []int{1, 2, 4}
	}

	// Part 1: benign scaling in H. Multi-hop pipelines are not single
	// engine runs, so the sweep rides the generic streaming map — trial
	// index -> (hop-count index, seed) — folding each pipeline result
	// into its point's accumulators on delivery and then dropping it.
	tbl := stats.NewTable(
		fmt.Sprintf("E12a: benign pipeline scaling (n=%d per cluster, k=2)", n),
		"hops", "total slots", "slots/hop", "worst median node cost", "end-to-end frac")
	totals := make([]stats.Acc, len(hopsList))
	medians := make([]stats.Acc, len(hopsList))
	fracs := make([]stats.Acc, len(hopsList))
	err := sim.StreamMap(cfg.ctx(), cfg.Procs, len(hopsList)*seeds,
		func(_ context.Context, t int) (*multihop.Result, error) {
			hops, s := hopsList[t/seeds], t%seeds
			return multihop.Run(multihop.Options{
				Params: core.PracticalParams(n, 2),
				Hops:   hops,
				Seed:   cfg.seedAt(12_000+hops, s),
			})
		},
		func(t int, res *multihop.Result) error {
			hi := t / seeds
			totals[hi].Add(float64(res.TotalSlots))
			worst := 0.0
			for _, h := range res.Hops {
				if float64(h.MedianNodeCost) > worst {
					worst = float64(h.MedianNodeCost)
				}
			}
			medians[hi].Add(worst)
			fracs[hi].Add(res.EndToEndFrac)
			return nil
		})
	if err != nil {
		return nil, err
	}
	var slotsPerHop1 float64
	for hi, hops := range hopsList {
		total := totals[hi].Mean()
		perHop := total / float64(hops)
		if hops == 1 {
			slotsPerHop1 = perHop
		}
		tbl.AddRowf(hops, total, perHop, medians[hi].Mean(), fracs[hi].Mean())
		rep.Values[fmt.Sprintf("median_cost_h%d", hops)] = medians[hi].Mean()
		rep.Values[fmt.Sprintf("e2e_frac_h%d", hops)] = fracs[hi].Mean()
		rep.Values[fmt.Sprintf("slots_per_hop_h%d", hops)] = perHop
	}
	rep.Tables = append(rep.Tables, tbl)
	lastH := hopsList[len(hopsList)-1]
	rep.Values["latency_per_hop_ratio"] =
		rep.Values[fmt.Sprintf("slots_per_hop_h%d", lastH)] / slotsPerHop1

	// Part 2: Carol concentrates one pool on a middle cluster of an
	// H-hop path versus spending it on a single-hop network. Both arms
	// share one streaming map: trials [0, seeds) are single-hop,
	// [seeds, 2*seeds) are the attacked pipeline.
	pool := int64(1 << 13)
	// Multi-hop pipelines are not single engine runs, so the scenario
	// layer contributes the adversary construction (one fresh strategy
	// per attacked cluster) while multihop.Options wires the topology.
	fullJam := scenario.AdversarySpec{Kind: "full"}
	tbl2 := stats.NewTable(
		fmt.Sprintf("E12b: concentrated jammer, pool=%d (n=%d per cluster)", pool, n),
		"topology", "total slots", "attacked-cluster slots", "informed frac", "T spent")
	var singleSlots, pipeSlots, attacked stats.Acc
	err = sim.StreamMap(cfg.ctx(), cfg.Procs, 2*seeds,
		func(_ context.Context, t int) (*multihop.Result, error) {
			params := core.PracticalParams(n, 2)
			if t < seeds {
				return multihop.Run(multihop.Options{
					Params:      params,
					Hops:        1,
					Seed:        cfg.seedAt(12_500, t),
					StrategyFor: func(int) adversary.Strategy { return fullJam.MustNew(params) },
					Pool:        energy.NewPool(pool),
				})
			}
			return multihop.Run(multihop.Options{
				Params: params,
				Hops:   4,
				Seed:   cfg.seedAt(12_600, t-seeds),
				StrategyFor: func(hop int) adversary.Strategy {
					if hop == 2 {
						return fullJam.MustNew(params)
					}
					return nil
				},
				Pool: energy.NewPool(pool),
			})
		},
		func(t int, res *multihop.Result) error {
			if t < seeds {
				singleSlots.Add(float64(res.TotalSlots))
				return nil
			}
			pipeSlots.Add(float64(res.TotalSlots))
			attacked.Add(float64(res.Hops[2].Slots))
			return nil
		})
	if err != nil {
		return nil, err
	}
	tbl2.AddRowf("single-hop", singleSlots.Mean(), singleSlots.Mean(), 1.0, float64(pool))
	tbl2.AddRowf("4-hop, cluster 2 attacked", pipeSlots.Mean(), attacked.Mean(), 1.0, float64(pool))
	rep.Tables = append(rep.Tables, tbl2)

	// The attacked cluster's delay should match the single-hop delay for
	// the same pool: no multi-hop amplification.
	ratio := attacked.Mean() / singleSlots.Mean()
	rep.Values["concentrated_delay_ratio"] = ratio
	rep.addFinding("per-hop latency stays ~constant (ratio %.2f at H=%d)",
		rep.Values["latency_per_hop_ratio"], lastH)
	rep.addFinding("a concentrated pool buys the attacked cluster %.2fx the single-hop delay — no amplification across hops", ratio)
	return rep, nil
}
