package baseline

import (
	"math"
	"testing"

	"rcbcast/internal/stats"
)

func TestNaiveLinearCost(t *testing.T) {
	for _, jam := range []int64{0, 10, 1000, 1 << 20} {
		res := RunNaive(jam, 1<<30)
		if !res.Delivered {
			t.Fatalf("jam=%d: must deliver", jam)
		}
		if res.DeliverySlot != jam {
			t.Fatalf("jam=%d: delivery at %d, want first unjammed slot", jam, res.DeliverySlot)
		}
		if res.NodeCost != jam+1 || res.AliceCost != jam+1 {
			t.Fatalf("jam=%d: costs alice=%d node=%d, want %d (Θ(T))",
				jam, res.AliceCost, res.NodeCost, jam+1)
		}
		if res.AdversarySpent != jam {
			t.Fatalf("adversary spent %d, want %d", res.AdversarySpent, jam)
		}
	}
}

func TestNaiveHorizonExhausted(t *testing.T) {
	res := RunNaive(100, 50)
	if res.Delivered {
		t.Fatal("cannot deliver while fully jammed")
	}
	if res.NodeCost != 50 || res.AliceCost != 50 {
		t.Fatalf("costs must be capped at the horizon: %+v", res)
	}
}

func TestNaiveNegativeJamClamps(t *testing.T) {
	res := RunNaive(-5, 100)
	if !res.Delivered || res.DeliverySlot != 0 {
		t.Fatalf("negative jam must clamp to zero: %+v", res)
	}
}

func TestKSYDelivers(t *testing.T) {
	res := RunKSY(1, 1000, 1<<24, KSYParams{})
	if !res.Delivered {
		t.Fatal("KSY must deliver once the jam ends")
	}
	if res.DeliverySlot < 1000 {
		t.Fatalf("delivery at %d inside the jam", res.DeliverySlot)
	}
	if res.NodeCost != res.DeliverySlot+1 {
		t.Fatalf("listeners are always-on: node cost %d, slot %d", res.NodeCost, res.DeliverySlot)
	}
}

func TestKSYAliceSublinear(t *testing.T) {
	// Alice's cost must scale ~T^{φ-1} ≈ T^0.62: fit the exponent over a
	// sweep and check it lands well below 1 and near 0.62.
	var xs, ys []float64
	for _, jam := range []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		var costs []float64
		for seed := uint64(0); seed < 8; seed++ {
			res := RunKSY(seed, jam, 1<<26, KSYParams{})
			if !res.Delivered {
				t.Fatalf("jam=%d seed=%d: not delivered", jam, seed)
			}
			costs = append(costs, float64(res.AliceCost))
		}
		xs = append(xs, float64(jam))
		ys = append(ys, stats.Mean(costs))
	}
	fit := stats.FitPowerLaw(xs, ys)
	want := GoldenRatio - 1
	if math.Abs(fit.Exponent-want) > 0.08 {
		t.Fatalf("KSY Alice exponent = %v, want ~%v (fit %v)", fit.Exponent, want, fit)
	}
}

func TestKSYNodeLinear(t *testing.T) {
	var xs, ys []float64
	for _, jam := range []int64{1 << 10, 1 << 13, 1 << 16, 1 << 19} {
		res := RunKSY(7, jam, 1<<26, KSYParams{})
		xs = append(xs, float64(jam))
		ys = append(ys, float64(res.NodeCost))
	}
	fit := stats.FitPowerLaw(xs, ys)
	if fit.Exponent < 0.9 || fit.Exponent > 1.1 {
		t.Fatalf("KSY node exponent = %v, want ~1 (not load balanced)", fit.Exponent)
	}
}

func TestKSYDeterministic(t *testing.T) {
	a := RunKSY(42, 5000, 1<<22, KSYParams{})
	b := RunKSY(42, 5000, 1<<22, KSYParams{})
	if a != b {
		t.Fatalf("same seed must replay: %+v vs %+v", a, b)
	}
	c := RunKSY(43, 5000, 1<<22, KSYParams{})
	if a.DeliverySlot == c.DeliverySlot && a.AliceCost == c.AliceCost {
		t.Log("note: different seeds coincided (possible but unlikely)")
	}
}

func TestKSYHorizon(t *testing.T) {
	res := RunKSY(1, 1<<20, 1<<10, KSYParams{})
	if res.Delivered {
		t.Fatal("fully-jammed horizon cannot deliver")
	}
	if res.NodeCost != 1<<10 {
		t.Fatalf("node cost %d, want horizon", res.NodeCost)
	}
	if res.AdversarySpent != 1<<10 {
		t.Fatalf("adversary spend must be capped at the horizon: %d", res.AdversarySpent)
	}
}

func TestKSYParamDefaults(t *testing.T) {
	p := KSYParams{}
	if p.c() != 1 || p.firstEpoch() != 4 {
		t.Fatalf("defaults: c=%v firstEpoch=%d", p.c(), p.firstEpoch())
	}
	p = KSYParams{C: 2, FirstEpoch: 6}
	if p.c() != 2 || p.firstEpoch() != 6 {
		t.Fatal("overrides ignored")
	}
}

func TestNaiveVersusKSYShape(t *testing.T) {
	// The paper's comparison: for large T the KSY sender beats naive by a
	// polynomial factor, while listeners tie.
	jam := int64(1 << 18)
	naive := RunNaive(jam, 1<<26)
	ksy := RunKSY(3, jam, 1<<26, KSYParams{})
	if ksy.AliceCost*4 >= naive.AliceCost {
		t.Fatalf("KSY Alice (%d) must be far below naive (%d)", ksy.AliceCost, naive.AliceCost)
	}
	if ksy.NodeCost < naive.NodeCost {
		t.Fatalf("KSY listeners (%d) cannot beat naive listeners (%d)", ksy.NodeCost, naive.NodeCost)
	}
}
