package experiment

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
	"rcbcast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Worst-case latency scaling",
		Claim: "Theorem 1 / Corollary 1: termination within O(n^{1+1/k}) slots, which is asymptotically optimal",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Engine ablation: sequential vs actor",
		Claim: "the goroutine actor engine is bit-for-bit equivalent to the sequential event-driven engine (DESIGN.md §5)",
		Run:   runE11,
	})
}

func runE4(cfg Config) (*Report, error) {
	rep := newReport("E4", "Worst-case latency scaling",
		"slots-to-completion under a maximally-blocking budget-respecting Carol scales as n^{1+1/k}")
	seeds := cfg.seeds(3, 2)
	ns := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		ns = []int{128, 256, 512}
	}
	k := 2
	tbl := stats.NewTable(
		fmt.Sprintf("E4: latency vs n (k=%d, phase-blocking Carol with paper budget f=1)", k),
		"n", "slots", "rounds", "informed frac", "n^{1+1/k}")
	specs := make([]sim.TrialSpec, 0, len(ns)*seeds)
	for ni, n := range ns {
		for s := 0; s < seeds; s++ {
			params := core.PracticalParams(n, k)
			specs = append(specs, sim.TrialSpec{
				Params: params,
				Seed:   cfg.seedAt(4000+ni, s),
				Strategy: func() adversary.Strategy {
					p := params
					return adversary.PhaseBlocker{
						BlockInform: true, BlockPropagate: true, Params: &p,
					}
				},
				Pool: func() *energy.Pool {
					return energy.DefaultBudgets(1, k).AdversaryPool(n, 1.0)
				},
			})
		}
	}
	results, err := sim.RunTrials(cfg.Procs, specs)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for ni, n := range ns {
		var slots, rounds, fracs stats.Acc
		for s := 0; s < seeds; s++ {
			res := results[ni*seeds+s]
			slots.Add(float64(res.SlotsSimulated))
			rounds.Add(float64(res.Rounds))
			fracs.Add(res.InformedFrac())
		}
		tbl.AddRowf(n, slots.Mean(), rounds.Mean(), fracs.Mean(),
			math.Pow(float64(n), 1+1/float64(k)))
		xs = append(xs, float64(n))
		ys = append(ys, slots.Mean())
	}
	rep.Tables = append(rep.Tables, tbl)
	fit := stats.FitPowerLaw(xs, ys)
	rep.Values["latency_exponent"] = fit.Exponent
	rep.Values["predicted_exponent"] = 1 + 1/float64(k)
	rep.addFinding("latency %v (prediction n^{%.2f}; Corollary 1 shows this is optimal)", fit, 1+1/float64(k))
	return rep, nil
}

func runE11(cfg Config) (*Report, error) {
	rep := newReport("E11", "Engine ablation: sequential vs actor",
		"identical seeds yield identical results; the actor engine parallelizes node work")
	n := cfg.n(1024, 256)
	mk := func() engine.Options {
		params := core.PracticalParams(n, 2)
		return engine.Options{
			Params:   params,
			Seed:     cfg.seed(11_000),
			Strategy: adversary.FullJam{},
			Pool:     energy.NewPool(1 << 14),
		}
	}
	t0 := time.Now()
	seq, err := engine.Run(mk())
	if err != nil {
		return nil, err
	}
	seqD := time.Since(t0)
	t1 := time.Now()
	act, err := engine.RunActors(mk())
	if err != nil {
		return nil, err
	}
	actD := time.Since(t1)
	equal := reflect.DeepEqual(seq, act)
	// Wall times go into Values only (seq_ns/act_ns): the rendered table
	// and findings must be byte-identical across runs and Procs settings;
	// BenchmarkE11Engines measures the timing properly.
	tbl := stats.NewTable(
		fmt.Sprintf("E11: engine comparison (n=%d, jammer pool 2^14)", n),
		"engine", "slots", "informed", "alice cost", "identical results")
	tbl.AddRowf("sequential", seq.SlotsSimulated, seq.Informed, seq.Alice.Cost, equal)
	tbl.AddRowf("actors", act.SlotsSimulated, act.Informed, act.Alice.Cost, equal)
	rep.Tables = append(rep.Tables, tbl)
	rep.Values["identical"] = b2f(equal)
	rep.Values["seq_ns"] = float64(seqD.Nanoseconds())
	rep.Values["act_ns"] = float64(actD.Nanoseconds())
	if !equal {
		rep.addFinding("ENGINES DIVERGED — this is a bug")
	} else {
		rep.addFinding("engines bit-for-bit equivalent on %d simulated slots (timings: Values seq_ns/act_ns, BenchmarkE11Engines)", seq.SlotsSimulated)
	}
	return rep, nil
}
