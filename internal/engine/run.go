package engine

import (
	"context"
	"fmt"
	"math"
	"slices"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/msg"
	"rcbcast/internal/rng"
	"rcbcast/internal/sampling"
	"rcbcast/internal/topology"
)

// Stream-key constants. Every random decision is drawn from the stream
// keyed (seed, actor, round, phaseOrdinal, purpose); both engines use the
// same keys, which is what makes them bit-for-bit equivalent.
const (
	actorAlice     uint64 = 1
	actorAdversary uint64 = 2
	actorNodeBase  uint64 = 16

	purpSend   uint64 = 1
	purpListen uint64 = 2
	purpDecoy  uint64 = 3
)

func nodeActor(id int) uint64 { return actorNodeBase + uint64(id) }

// phaseOrdinal gives each phase of a round a stable stream sub-key: its
// position in the round schedule (unique across g-sweep sub-phases too).
func phaseOrdinal(ph core.Phase, _ int) uint64 {
	return uint64(ph.Ordinal)
}

// nodeState is one correct node. Only the owning walker (sequential loop
// or the node's actor goroutine) mutates it.
type nodeState struct {
	id         int
	meter      *energy.Meter
	informed   bool
	mark       core.InformMark
	terminated bool // clean protocol exit
	dead       bool // budget exhausted

	// request-phase quiet-test counters, reset each round
	listens, noisy int
	// reqQuietAll accumulates the quiet test across g-sweep sub-phases
	reqQuietAll bool
	// justInformed marks nodes informed during the current phase (for
	// deterministic trace emission at phase end)
	justInformed bool
	// phaseListens counts this phase's listen slots (for reporting)
	phaseListens int64

	// §4.2 heterogeneous-estimate multipliers
	listenScale, sendScale float64

	// this phase's committed transmissions, sorted by slot
	sendSlots []int32
	sendKinds []msg.Kind

	// Per-actor stream/schedule pairs, re-keyed in place each phase so
	// the walkers allocate nothing in steady state. Pair A carries the
	// data schedule during the send pass and the listen schedule during
	// the listen pass; pair B carries the decoy schedule. Owned by the
	// node's walker, so the actor engine shares nothing.
	streamA, streamB rng.Stream
	schedA, schedB   sampling.SlotSchedule
}

func (n *nodeState) active() bool { return !n.terminated && !n.dead }

type aliceState struct {
	meter          *energy.Meter
	terminated     bool
	dead           bool
	listens, noisy int
	reqQuietAll    bool
	round          int
}

func (a *aliceState) active() bool { return !a.terminated && !a.dead }

// txRec is one committed transmission of the current phase, recorded
// only on sparse topologies, where reception depends on *who* sent.
type txRec struct {
	slot int32
	src  int32 // node id, or txSrcAlice / txSrcAdversary
	kind uint8
}

// Non-node transmission sources. txSrcAlice matches msg.SenderAlice so
// the listener encoding used by observe stays one namespace.
const (
	txSrcAlice     int32 = -1
	txSrcAdversary int32 = -2
)

// run holds all execution state shared by both engines.
type run struct {
	opts     *Options
	params   core.Params // copy; run owns it
	strategy adversary.Strategy
	pool     *energy.Pool

	// topo is non-nil only for non-complete topologies: the clique (and
	// any spec whose graph is complete) keeps the global-channel fast
	// path, byte-identical to the pre-topology engine. csr is the
	// flattened adjacency view listens resolve against.
	topo topology.Topology
	csr  *topology.CSR

	nodes []nodeState
	alice aliceState
	hist  adversary.History

	// per-slot channel state for the current phase, cleared via dirty
	counts   []uint8 // transmission count, saturating
	soloKind []uint8 // frame kind when counts == 1
	dirty    []int32
	// txs records the phase's transmissions with their sources (sparse
	// topologies only), sorted by slot before the listen pass.
	txs []txRec

	// Reusable per-phase state for the single-threaded walkers (Alice,
	// the adversary, the round schedule, the reactive RSSI bitmap) —
	// re-keyed or reset in place so phases allocate nothing.
	aliceStream rng.Stream
	aliceSched  sampling.SlotSchedule
	advStream   rng.Stream
	activity    adversary.Bitmap
	sched       core.Schedule

	slots        int64
	lastRound    int
	totalJams    int64
	totalInjects int64
	phases       []adversary.PhaseOutcome
}

func newRun(opts *Options) (*run, error) {
	return newRunTopo(opts, nil)
}

// newRunTopo is newRun with an optional topology source: the batch
// kernel passes a topology.Cache's Get so the lanes of a batch share
// trial-invariant graphs and reuse per-seed Gilbert builds, instead of
// rebuilding per lane. A nil lookup builds fresh into the run's scratch,
// exactly as before; the graphs are byte-identical either way.
func newRunTopo(opts *Options, lookup func(topology.Spec, int, uint64) (topology.Topology, *topology.CSR, error)) (*run, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r := &run{
		opts:     opts,
		params:   opts.Params,
		strategy: opts.strategy(),
		pool:     opts.Pool,
	}
	r.adoptScratch(r.params.N)
	if !opts.Topology.IsClique() {
		var topo topology.Topology
		var csr *topology.CSR
		var err error
		if lookup != nil {
			topo, csr, err = lookup(opts.Topology, r.params.N, opts.Seed)
		} else {
			topo, err = opts.Topology.BuildInto(r.params.N, opts.Seed, r.topoScratch())
			if err == nil && !topo.Complete() {
				csr = topology.BuildCSR(topo, r.topoScratch())
			}
		}
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		if !topo.Complete() {
			// Complete graphs (a reach-covering grid, say) resolve
			// identically through the global fast path.
			r.topo = topo
			r.csr = csr
		}
	}
	nodeBudget := int64(energy.Unlimited)
	if opts.NodeBudget > 0 {
		nodeBudget = opts.NodeBudget
	}
	aliceBudget := int64(energy.Unlimited)
	if opts.AliceBudget > 0 {
		aliceBudget = opts.AliceBudget
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		n.id = i
		if n.meter == nil {
			n.meter = energy.NewMeter(nodeBudget)
		} else {
			n.meter.Reset(nodeBudget)
		}
		n.listenScale, n.sendScale = 1, 1
		if opts.Perturb != nil {
			n.listenScale, n.sendScale = opts.Perturb(i)
		}
	}
	if r.alice.meter == nil {
		r.alice.meter = energy.NewMeter(aliceBudget)
	} else {
		r.alice.meter.Reset(aliceBudget)
	}
	r.hist.N = r.params.N
	return r, nil
}

// topoScratch returns the topology construction scratch carried by the
// run's engine Scratch (created lazily), or nil — fresh buffers — when
// the run has no scratch.
func (r *run) topoScratch() *topology.Scratch {
	sc := r.opts.Scratch
	if sc == nil {
		return nil
	}
	if sc.topo == nil {
		sc.topo = topology.NewScratch()
	}
	return sc.topo
}

func (r *run) done() bool {
	if r.alice.active() {
		return false
	}
	for i := range r.nodes {
		if r.nodes[i].active() {
			return false
		}
	}
	return true
}

func (r *run) ensureBuffers(length int) {
	if cap(r.counts) < length {
		r.counts = make([]uint8, length)
		r.soloKind = make([]uint8, length)
	}
	r.counts = r.counts[:length]
	r.soloKind = r.soloKind[:length]
}

func (r *run) clearDirty() {
	for _, s := range r.dirty {
		r.counts[s] = 0
		r.soloKind[s] = 0
	}
	r.dirty = r.dirty[:0]
	r.txs = r.txs[:0]
}

// addTx registers one transmission in the current phase's channel
// state. src identifies the transmitter; it matters only on sparse
// topologies, where reception is resolved per listener.
func (r *run) addTx(slot int, kind msg.Kind, src int32) {
	c := r.counts[slot]
	if c == 0 {
		r.soloKind[slot] = uint8(kind)
		r.dirty = append(r.dirty, int32(slot))
	}
	if c < math.MaxUint8 {
		r.counts[slot] = c + 1
	}
	if r.topo != nil {
		r.txs = append(r.txs, txRec{slot: int32(slot), src: src, kind: uint8(kind)})
	}
}

// planNodeSends computes and charges one node's transmissions for the
// phase: relays of m in its assigned propagation step, NACKs when
// uninformed in the request phase, and decoy cover traffic in decoy mode.
// It touches only the node's own state, so engines may run it for all
// nodes concurrently.
func (r *run) planNodeSends(n *nodeState, ph core.Phase) {
	n.sendSlots = n.sendSlots[:0]
	n.sendKinds = n.sendKinds[:0]
	n.phaseListens = 0
	if !n.active() {
		return
	}
	var dataP float64
	var dataKind msg.Kind
	switch ph.Kind {
	case core.PhasePropagate:
		if n.informed && r.params.SendStep(n.mark) == ph.Step {
			dataP = clamp01(ph.NodeSendP * n.sendScale)
			dataKind = msg.KindData
		}
	case core.PhaseRequest:
		if !n.informed {
			dataP = clamp01(ph.NodeSendP * n.sendScale)
			dataKind = msg.KindNack
		}
	}
	decoyP := ph.DecoyP

	ord := phaseOrdinal(ph, r.params.K)
	round := uint64(ph.Round)
	// The stream/schedule pairs are re-keyed in place on the node's own
	// state: same keyed sequences as freshly derived streams (pinned by
	// the rng value tests), zero steady-state allocation. A p = 0 side
	// never touches its stream, exactly as before.
	var dSlot, cSlot int
	var dOK, cOK bool
	if dataP > 0 {
		n.streamA.Reseed(r.opts.Seed, nodeActor(n.id), round, ord, purpSend)
		n.schedA.Reset(&n.streamA, dataP, ph.Length)
		dSlot, dOK = n.schedA.Next()
	}
	if decoyP > 0 {
		n.streamB.Reseed(r.opts.Seed, nodeActor(n.id), round, ord, purpDecoy)
		n.schedB.Reset(&n.streamB, decoyP, ph.Length)
		cSlot, cOK = n.schedB.Next()
	}

	// Merge the two schedules in slot order; on a tie the data frame wins
	// (one radio, one transmission per slot). Charge in slot order and
	// stop at budget exhaustion.
	for dOK || cOK {
		var slot int
		var kind msg.Kind
		switch {
		case dOK && (!cOK || dSlot <= cSlot):
			slot, kind = dSlot, dataKind
			if cOK && cSlot == dSlot {
				cSlot, cOK = n.schedB.Next()
			}
			dSlot, dOK = n.schedA.Next()
		default:
			slot, kind = cSlot, msg.KindDecoy
			cSlot, cOK = n.schedB.Next()
		}
		if err := n.meter.Charge(energy.Send); err != nil {
			n.dead = true
			return
		}
		n.sendSlots = append(n.sendSlots, int32(slot))
		n.sendKinds = append(n.sendKinds, kind)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// mergeNodeSends folds every node's committed transmissions into the
// shared per-slot channel state and tallies the phase outcome counters.
// Single-threaded in both engines.
func (r *run) mergeNodeSends(out *adversary.PhaseOutcome) {
	for i := range r.nodes {
		n := &r.nodes[i]
		for j, slot := range n.sendSlots {
			kind := n.sendKinds[j]
			r.addTx(int(slot), kind, int32(n.id))
			switch kind {
			case msg.KindData:
				out.NodeDataSends++
			case msg.KindNack:
				out.NodeNacks++
			case msg.KindDecoy:
				out.NodeDecoys++
			}
		}
	}
}

// aliceSends commits and charges Alice's inform-phase transmissions.
func (r *run) aliceSends(ph core.Phase, out *adversary.PhaseOutcome) {
	if ph.AliceSendP <= 0 || !r.alice.active() {
		return
	}
	r.aliceStream.Reseed(r.opts.Seed, actorAlice, uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpSend)
	r.aliceSched.Reset(&r.aliceStream, ph.AliceSendP, ph.Length)
	for {
		slot, ok := r.aliceSched.Next()
		if !ok {
			return
		}
		if err := r.alice.meter.Charge(energy.Send); err != nil {
			r.alice.dead = true
			return
		}
		r.addTx(slot, msg.KindData, txSrcAlice)
		out.AliceSends++
	}
}

// activityBitmap snapshots which slots carry correct-side transmissions —
// the RSSI view granted to reactive strategies. The bitmap is the run's
// reused scratch: valid only for the duration of the PlanReactive call.
func (r *run) activityBitmap(length int) *adversary.Bitmap {
	r.activity.Reset(length)
	for _, s := range r.dirty {
		if r.counts[s] > 0 {
			r.activity.Set(int(s))
		}
	}
	return &r.activity
}

// adversaryPlan obtains, charges, and installs Carol's plan for the phase.
// Jams are charged first, then injections, each truncated in slot order at
// pool exhaustion.
func (r *run) adversaryPlan(ph core.Phase, out *adversary.PhaseOutcome) *adversary.Plan {
	r.advStream.Reseed(r.opts.Seed, actorAdversary, uint64(ph.Round), phaseOrdinal(ph, r.params.K))
	st := &r.advStream
	var plan *adversary.Plan
	if reactive, ok := r.strategy.(adversary.Reactive); ok && r.opts.AllowReactive {
		plan = reactive.PlanReactive(ph, r.activityBitmap(ph.Length), &r.hist, r.pool, st)
	} else {
		plan = r.strategy.PlanPhase(ph, &r.hist, r.pool, st)
	}
	if plan == nil {
		return nil
	}

	jams := int64(plan.JamCount())
	if r.pool != nil && r.pool.Remaining() < jams {
		jams = plan.TruncateJamsAfter(r.pool.Remaining())
	}
	if r.pool != nil {
		// Cannot fail: jams was clamped to Remaining just above.
		_ = r.pool.Charge(energy.Jam, jams)
	}
	out.JammedSlots = jams
	r.totalJams += jams

	injections := plan.Injections()
	keep := int64(len(injections))
	if r.pool != nil && r.pool.Remaining() < keep {
		keep = plan.TruncateInjectionsAfter(r.pool.Remaining())
	}
	if r.pool != nil {
		_ = r.pool.Charge(energy.Send, keep)
	}
	out.InjectedFrames = keep
	r.totalInjects += keep
	for _, inj := range plan.Injections() {
		r.addTx(inj.Slot, inj.Frame.Kind, txSrcAdversary)
	}
	if jams == 0 && keep == 0 {
		plan.Release()
		return nil
	}
	return plan
}

// observe resolves one listener's perception of a slot, mirroring
// slotsim.Slot.Observe on the engine's compact channel state. The listener
// is assumed not to have transmitted in the slot (walkers enforce that).
// listener is a node id, or msg.SenderAlice for Alice's request-phase
// sampling.
func (r *run) observe(slot, listener int, plan *adversary.Plan) (msg.Kind, outcome) {
	jammed := plan != nil && plan.Jammed(slot) && plan.Disrupts(slot, listener)
	if r.topo != nil {
		return r.observeSparse(slot, listener, jammed)
	}
	c := r.counts[slot]
	switch {
	case c == 0 && !jammed:
		return 0, outcomeSilence
	case c == 1 && !jammed:
		return msg.Kind(r.soloKind[slot]), outcomeReceived
	default:
		return 0, outcomeNoise
	}
}

// observeSparse resolves the listener's perception against its
// neighborhood: exactly one *audible* transmitter delivers, two or more
// collide into noise, and transmitters out of range neither deliver nor
// collide (spatial reuse). Jamming stays global — Carol positions her
// devices at will, so every listener is assumed within range of a
// jammer, preserving the n-uniform threat model (DESIGN.md §9).
func (r *run) observeSparse(slot, listener int, jammed bool) (msg.Kind, outcome) {
	if jammed {
		return 0, outcomeNoise
	}
	if r.counts[slot] == 0 {
		return 0, outcomeSilence
	}
	// Hand-rolled lower-bound search: sort.Search's closure would
	// allocate on every listened slot.
	s := int32(slot)
	lo, hi := 0, len(r.txs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.txs[mid].slot < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	heard := 0
	var kind msg.Kind
	for i := lo; i < len(r.txs) && r.txs[i].slot == s; i++ {
		if !r.audible(r.txs[i].src, listener) {
			continue
		}
		if heard++; heard > 1 {
			return 0, outcomeNoise
		}
		kind = msg.Kind(r.txs[i].kind)
	}
	if heard == 0 {
		return 0, outcomeSilence
	}
	return kind, outcomeReceived
}

// audible reports whether the listener is in range of the transmitter.
// Adversarial transmissions are audible everywhere (worst-case device
// placement); Alice↔node audibility is symmetric. Walkers guarantee a
// node never listens to a slot it transmits in, so src == listener
// cannot occur for node sources. Queries resolve against the flattened
// CSR adjacency rather than the Topology interface: one bounded binary
// search over a compact row instead of a dynamic dispatch per
// transmission record.
func (r *run) audible(src int32, listener int) bool {
	switch {
	case src == txSrcAdversary:
		return true
	case src == txSrcAlice:
		return listener == msg.SenderAlice || r.csr.AliceHears(listener)
	case listener == msg.SenderAlice:
		return r.csr.AliceHears(int(src))
	default:
		return r.csr.Adjacent(int(src), listener)
	}
}

type outcome uint8

const (
	outcomeSilence outcome = iota
	outcomeReceived
	outcomeNoise
)

// walkNodeListens resolves one uninformed node's listening for the phase.
// It reads the shared channel state and plan (both frozen) and mutates
// only the node, so engines may run it for all nodes concurrently.
func (r *run) walkNodeListens(n *nodeState, ph core.Phase, plan *adversary.Plan) {
	if !n.active() || n.informed {
		return
	}
	listenP := clamp01(ph.NodeListenP * n.listenScale)
	if listenP <= 0 {
		return
	}
	// Pair A is free again: the send pass finished before any listens.
	n.streamA.Reseed(r.opts.Seed, nodeActor(n.id), uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpListen)
	n.schedA.Reset(&n.streamA, listenP, ph.Length)
	si := 0
	for {
		slot, ok := n.schedA.Next()
		if !ok || n.informed || n.dead {
			return
		}
		// One radio: a node transmitting in this slot cannot listen.
		for si < len(n.sendSlots) && int(n.sendSlots[si]) < slot {
			si++
		}
		if si < len(n.sendSlots) && int(n.sendSlots[si]) == slot {
			continue
		}
		if err := n.meter.Charge(energy.Listen); err != nil {
			n.dead = true
			return
		}
		n.phaseListens++
		kind, out := r.observe(slot, n.id, plan)
		if ph.Kind == core.PhaseRequest {
			n.listens++
			if out != outcomeSilence {
				n.noisy++
			}
		}
		if out == outcomeReceived && kind == msg.KindData {
			// Only genuinely authentic frames carry KindData (spoofs
			// carry KindSpoof and fail verification; see msg).
			n.informed = true
			n.justInformed = true
			if ph.Kind == core.PhasePropagate {
				n.mark = core.InformMark(ph.Step)
			} else {
				n.mark = core.MarkInformPhase
			}
		}
	}
}

// aliceListens resolves Alice's request-phase sampling.
func (r *run) aliceListens(ph core.Phase, plan *adversary.Plan, out *adversary.PhaseOutcome) {
	if ph.AliceListenP <= 0 || !r.alice.active() {
		return
	}
	r.aliceStream.Reseed(r.opts.Seed, actorAlice, uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpListen)
	r.aliceSched.Reset(&r.aliceStream, ph.AliceListenP, ph.Length)
	for {
		slot, ok := r.aliceSched.Next()
		if !ok {
			return
		}
		if err := r.alice.meter.Charge(energy.Listen); err != nil {
			r.alice.dead = true
			return
		}
		_, o := r.observe(slot, msg.SenderAlice, plan)
		out.AliceListens++
		r.alice.listens++
		if o != outcomeSilence {
			r.alice.noisy++
		}
	}
}

// endPhase applies the protocol's termination rules at a phase boundary.
// For g-swept phases (§4.2) the quiet test must pass in *every* sub-phase
// — some sub-phase uses a sending scale near the true n, and that one
// shows the real channel load — and propagation senders terminate only at
// their step's final sub-phase.
func (r *run) endPhase(ph core.Phase) {
	switch ph.Kind {
	case core.PhasePropagate:
		if !ph.LastSub {
			return
		}
		for i := range r.nodes {
			n := &r.nodes[i]
			if n.active() && n.informed && r.params.TerminationStep(n.mark) == ph.Step {
				n.terminated = true
			}
		}
	case core.PhaseRequest:
		mayTerminate := r.params.CanTerminate(ph.Round)
		first := ph.Sub <= 1
		for i := range r.nodes {
			n := &r.nodes[i]
			ok := r.params.ShouldTerminateQuiet(n.listens, n.noisy)
			if first {
				n.reqQuietAll = ok
			} else {
				n.reqQuietAll = n.reqQuietAll && ok
			}
			if ph.LastSub && mayTerminate && n.active() && !n.informed && n.reqQuietAll {
				n.terminated = true
			}
			n.listens, n.noisy = 0, 0
		}
		ok := r.params.ShouldTerminateQuiet(r.alice.listens, r.alice.noisy)
		if first {
			r.alice.reqQuietAll = ok
		} else {
			r.alice.reqQuietAll = r.alice.reqQuietAll && ok
		}
		if ph.LastSub && mayTerminate && r.alice.active() && r.alice.reqQuietAll {
			r.alice.terminated = true
			r.alice.round = ph.Round
		}
		r.alice.listens, r.alice.noisy = 0, 0
	}
}

// recordOutcome finalizes the phase's public record for the adaptive
// adversary and, optionally, the Result.
func (r *run) recordOutcome(out adversary.PhaseOutcome) {
	informed, active := 0, 0
	for i := range r.nodes {
		if r.nodes[i].informed {
			informed++
		}
		if r.nodes[i].active() {
			active++
		}
	}
	out.InformedAfter = informed
	out.ActiveAfter = active
	out.AliceActiveAfter = r.alice.active()
	r.hist.Outcomes = append(r.hist.Outcomes, out)
	if r.opts.RecordPhases {
		r.phases = append(r.phases, out)
	}
}

// phaseExecutor abstracts how per-node work is scheduled: sequentially or
// across actor goroutines. Implementations must preserve the rule that a
// node's state is mutated only by its own walker.
type phaseExecutor interface {
	eachNodeSends(ph core.Phase)
	eachNodeListens(ph core.Phase, plan *adversary.Plan)
}

// runPhase executes one phase end to end using the given executor.
func (r *run) runPhase(ph core.Phase, exec phaseExecutor) {
	r.ensureBuffers(ph.Length)
	out := adversary.PhaseOutcome{Phase: ph}
	if r.opts.Tracer != nil {
		r.opts.Tracer.PhaseStart(ph)
	}

	// Pass A: transmissions (committed and charged at phase start).
	r.aliceSends(ph, &out)
	exec.eachNodeSends(ph)
	r.mergeNodeSends(&out)

	// Carol plans (reactive strategies see the activity bitmap).
	plan := r.adversaryPlan(ph, &out)

	// Freeze the sparse transmission records in slot order so listeners
	// can resolve their neighborhoods by binary search.
	// slices.SortStableFunc rather than sort.SliceStable: no reflection
	// swapper, no per-phase closure allocation.
	if r.topo != nil && len(r.txs) > 1 {
		slices.SortStableFunc(r.txs, func(a, b txRec) int { return int(a.slot - b.slot) })
	}

	// Pass B: listens.
	exec.eachNodeListens(ph, plan)
	for i := range r.nodes {
		out.NodeListens += r.nodes[i].phaseListens
	}
	r.aliceListens(ph, plan, &out)

	aliceWasActive := r.alice.active()
	terminatedBefore := r.terminatedSet()
	r.endPhase(ph)
	r.emitTrace(ph, aliceWasActive, terminatedBefore)
	r.recordOutcome(out)
	if r.opts.Tracer != nil {
		// recordOutcome computed the informed/active tallies.
		r.opts.Tracer.PhaseEnd(r.hist.Outcomes[len(r.hist.Outcomes)-1])
	}
	r.slots += int64(ph.Length)
	r.lastRound = ph.Round
	r.clearDirty()
	if plan != nil {
		// The phase is fully resolved; recycle the plan's buffers.
		plan.Release()
	}
}

// terminatedSet snapshots which nodes have stopped, so emitTrace can
// report the delta after endPhase. Only allocated when tracing.
func (r *run) terminatedSet() []bool {
	if r.opts.Tracer == nil {
		return nil
	}
	set := make([]bool, len(r.nodes))
	for i := range r.nodes {
		set[i] = r.nodes[i].terminated || r.nodes[i].dead
	}
	return set
}

// emitTrace reports this phase's per-node events in node-id order.
func (r *run) emitTrace(ph core.Phase, aliceWasActive bool, terminatedBefore []bool) {
	t := r.opts.Tracer
	if t == nil {
		// Still clear the per-phase markers.
		for i := range r.nodes {
			r.nodes[i].justInformed = false
		}
		return
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		if n.justInformed {
			t.NodeInformed(n.id, ph)
			n.justInformed = false
		}
		stopped := n.terminated || n.dead
		if stopped && !terminatedBefore[i] {
			t.NodeTerminated(n.id, n.informed, ph)
		}
	}
	if aliceWasActive && r.alice.terminated {
		t.AliceTerminated(ph.Round)
	}
}

// loop drives phases until everyone stops or the round limit is reached.
// A nil ctx (the plain Run/RunActors path) skips cancellation checks
// entirely; otherwise ctx is polled at every phase boundary and
// cancellation surfaces as a *PartialRunError.
func (r *run) loop(ctx context.Context, exec phaseExecutor) error {
	r.sched.Reset(&r.params)
	for {
		if r.done() {
			break
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				return &PartialRunError{Rounds: r.lastRound, Slots: r.slots, Err: ctx.Err()}
			default:
			}
		}
		ph, ok := r.sched.Next()
		if !ok {
			break
		}
		if ph.Length > r.opts.maxPhaseSlots() {
			return ErrPhaseTooLong
		}
		r.runPhase(ph, exec)
	}
	if r.opts.Tracer != nil {
		r.opts.Tracer.Done()
	}
	return nil
}

// result assembles the Result from final state.
func (r *run) result() *Result {
	res := &Result{
		N:                   r.params.N,
		Rounds:              r.lastRound,
		SlotsSimulated:      r.slots,
		NodeCosts:           make([]int64, len(r.nodes)),
		AdversaryJams:       r.totalJams,
		AdversaryInjections: r.totalInjects,
		AdversarySpent:      r.totalJams + r.totalInjects,
		StrategyName:        r.strategy.Name(),
		Phases:              r.phases,
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		res.NodeCosts[i] = n.meter.Spent()
		switch {
		case n.informed:
			res.Informed++
		case n.dead:
			res.Dead++
		case n.terminated:
			res.Stranded++
		}
		if n.active() {
			res.ActiveAtEnd++
		}
	}
	res.Completed = !r.alice.active() && res.ActiveAtEnd == 0
	snap := r.alice.meter.Snapshot()
	res.Alice = AliceStats{
		Sends:      snap.Sends,
		Listens:    snap.Listens,
		Cost:       snap.Spent,
		Terminated: r.alice.terminated,
		Dead:       r.alice.dead,
		Round:      r.alice.round,
	}
	res.NodeCost = summarizeCosts(res.NodeCosts)
	return res
}

func summarizeCosts(costs []int64) CostSummary {
	if len(costs) == 0 {
		return CostSummary{}
	}
	sorted := append([]int64(nil), costs...)
	slices.Sort(sorted)
	var sum int64
	for _, c := range sorted {
		sum += c
	}
	return CostSummary{
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: sorted[len(sorted)/2],
		Mean:   float64(sum) / float64(len(sorted)),
	}
}

// seqExecutor runs node work inline — the fast sequential engine.
type seqExecutor struct{ r *run }

func (e seqExecutor) eachNodeSends(ph core.Phase) {
	for i := range e.r.nodes {
		e.r.planNodeSends(&e.r.nodes[i], ph)
	}
}

func (e seqExecutor) eachNodeListens(ph core.Phase, plan *adversary.Plan) {
	for i := range e.r.nodes {
		e.r.walkNodeListens(&e.r.nodes[i], ph, plan)
	}
}

// Run executes the protocol with the sequential event-driven engine.
func Run(opts Options) (*Result, error) {
	r, err := newRun(&opts)
	if err != nil {
		return nil, err
	}
	defer r.releaseScratch()
	if err := r.loop(nil, seqExecutor{r}); err != nil {
		return nil, err
	}
	return r.result(), nil
}
