package topology

// Scratch recycles the working buffers of topology construction and of
// the CSR adjacency view across trials. Tight trial loops build a fresh
// graph per seed; with a Scratch the point coordinates, cell buckets,
// adjacency bitmatrix, and CSR arrays are reused at their high-water
// capacity instead of reallocated, which removes the topology layer from
// the steady-state allocation profile entirely (engine.Scratch embeds
// one per worker).
//
// A Scratch must never be shared by concurrently executing builds, and a
// topology built into a Scratch is valid only until the next build on
// the same Scratch. Graphs are byte-identical with and without one.
type Scratch struct {
	// Gilbert construction buffers.
	xs, ys     []float64
	degs       []int
	alice      []bool
	adjWords   []uint64
	bucketHead []int32
	bucketNext []int32

	csr CSR
}

// NewScratch returns an empty scratch; buffers grow to the sizes the
// builds it serves need.
func NewScratch() *Scratch { return &Scratch{} }

// grow returns a length-n buffer, reusing buf's capacity when it
// suffices. Contents are unspecified; callers overwrite every element.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// CSR is the engine-facing flat adjacency view of a topology:
// compressed sparse rows over listener neighborhoods. Row v —
// Nbr[Off[v]:Off[v+1]], ascending — lists the correct nodes v hears;
// Alice[v] reports mutual audibility between Alice and v. Resolving
// reception against these arrays replaces an interface dispatch per
// transmission record with a bounded binary search over one cache-line
// sized row, and is what fixed the sparse-path scratch regression (see
// BENCH_ENGINE.json).
type CSR struct {
	Off   []int32
	Nbr   []int32
	Alice []bool
}

// Adjacent reports whether listener hears transmissions from src,
// mirroring Topology.Adjacent on the flattened rows.
func (c *CSR) Adjacent(src, listener int) bool {
	lo, hi := c.Off[listener], c.Off[listener+1]
	s := int32(src)
	for lo < hi {
		mid := (lo + hi) / 2
		switch v := c.Nbr[mid]; {
		case v == s:
			return true
		case v < s:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// AliceHears mirrors Topology.AliceHears.
func (c *CSR) AliceHears(node int) bool { return c.Alice[node] }

// Row returns listener's neighborhood row — the ascending node ids it
// hears — as a direct view of the CSR arrays. Every current topology
// kind is symmetric (clique, Chebyshev grid, Euclidean Gilbert), so the
// row doubles as the set of listeners that hear transmissions *from*
// the node; the batched engine's reception index scatters transmissions
// through rows under exactly that reading (pinned per kind by
// TestCSRSymmetric). An asymmetric future kind must grow a reverse-row
// view before it can ride the index path.
func (c *CSR) Row(listener int) []int32 {
	return c.Nbr[c.Off[listener]:c.Off[listener+1]]
}

// AppendAliceAudible appends, ascending, every node mutually audible
// with Alice — the scatter targets of Alice's own transmissions — and
// returns the extended slice.
func (c *CSR) AppendAliceAudible(dst []int32) []int32 {
	for v, ok := range c.Alice {
		if ok {
			dst = append(dst, int32(v))
		}
	}
	return dst
}

// neighborAppender is the fast-fill hook: topology kinds that can
// enumerate a listener's neighborhood directly (in ascending id order)
// skip the generic O(n) Adjacent probe per row.
type neighborAppender interface {
	appendHeard(dst []int32, listener int) []int32
}

// BuildCSR flattens t into the scratch's CSR arrays and returns the
// view. The result aliases sc's buffers: it is valid until the next
// build on sc. A nil sc allocates fresh arrays.
func BuildCSR(t Topology, sc *Scratch) *CSR {
	if sc == nil {
		sc = NewScratch()
	}
	n := t.N()
	c := &sc.csr
	c.Off = grow(c.Off, n+1)
	c.Alice = grow(c.Alice, n)
	c.Nbr = c.Nbr[:0]
	na, fast := t.(neighborAppender)
	for v := 0; v < n; v++ {
		c.Off[v] = int32(len(c.Nbr))
		if fast {
			c.Nbr = na.appendHeard(c.Nbr, v)
		} else {
			for u := 0; u < n; u++ {
				if t.Adjacent(u, v) {
					c.Nbr = append(c.Nbr, int32(u))
				}
			}
		}
		c.Alice[v] = t.AliceHears(v)
	}
	c.Off[n] = int32(len(c.Nbr))
	return c
}
