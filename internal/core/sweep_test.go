package core

import (
	"math"
	"testing"
)

func TestSweepDisabledByDefault(t *testing.T) {
	p := PracticalParams(256, 2)
	for _, ph := range p.Round(7) {
		if ph.Sub != 0 || !ph.LastSub {
			t.Fatalf("non-swept phase carries sweep fields: %+v", ph)
		}
	}
	if p.sweepLen() != 0 {
		t.Fatalf("sweepLen = %d", p.sweepLen())
	}
}

func TestSweepExpansion(t *testing.T) {
	p := PracticalParams(256, 3)
	p.PolyEstimate = float64(256 * 256) // ν = n² → ℓ = 16
	l := p.sweepLen()
	if l != 16 {
		t.Fatalf("sweepLen = %d, want 16", l)
	}
	phases := p.Round(8)
	// inform + (k-1)·ℓ propagation sub-phases + ℓ request sub-phases.
	want := 1 + (p.K-1)*l + l
	if len(phases) != want {
		t.Fatalf("round has %d phases, want %d", len(phases), want)
	}
	if phases[0].Kind != PhaseInform || phases[0].Sub != 0 {
		t.Fatalf("inform phase must not be swept: %+v", phases[0])
	}
	// Propagation step 1 sub-phases carry g = 1..ℓ with the paper's send
	// probability 1/(2^i 2^g).
	for g := 1; g <= l; g++ {
		ph := phases[g]
		if ph.Kind != PhasePropagate || ph.Step != 1 || ph.Sub != g {
			t.Fatalf("sub-phase %d: %+v", g, ph)
		}
		wantP := math.Min(1/math.Pow(2, float64(8+g)), 1)
		if math.Abs(ph.NodeSendP-wantP) > 1e-12 {
			t.Fatalf("g=%d: send p = %v, want %v", g, ph.NodeSendP, wantP)
		}
		if ph.LastSub != (g == l) {
			t.Fatalf("g=%d: LastSub = %t", g, ph.LastSub)
		}
	}
	// Ordinals are unique and sequential.
	for o, ph := range phases {
		if ph.Ordinal != o {
			t.Fatalf("phase %d has ordinal %d", o, ph.Ordinal)
		}
	}
	// The request sweep is the tail.
	last := phases[len(phases)-1]
	if last.Kind != PhaseRequest || last.Sub != l || !last.LastSub {
		t.Fatalf("final phase: %+v", last)
	}
}

func TestSweepCoversTrueScale(t *testing.T) {
	// Some sub-phase must use a sending probability within 2x of 1/n —
	// that is the whole point of the sweep.
	n := 300
	p := PracticalParams(n, 2)
	p.PolyEstimate = float64(n) * float64(n)
	best := math.Inf(1)
	for _, ph := range p.Round(7) { // i=7 <= lg n - 1
		if ph.Kind != PhasePropagate {
			continue
		}
		ratio := ph.NodeSendP * float64(n)
		if r := math.Max(ratio, 1/ratio); r < best {
			best = r
		}
	}
	if best > 2 {
		t.Fatalf("closest sub-phase is %vx off the true 1/n", best)
	}
}

func TestSweepRoundLength(t *testing.T) {
	p := PracticalParams(128, 2)
	p.PolyEstimate = 1 << 14
	var total int
	for _, ph := range p.Round(6) {
		total += ph.Length
	}
	if got := p.RoundLength(6); got != total {
		t.Fatalf("RoundLength = %d, want %d (sum of phases)", got, total)
	}
	// The log-factor blowup the paper concedes.
	plain := PracticalParams(128, 2)
	if got := p.RoundLength(6); got <= 3*plain.RoundLength(6) {
		t.Fatalf("sweep must lengthen rounds by ~lg ν: %d vs %d", got, plain.RoundLength(6))
	}
}
