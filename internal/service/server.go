package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"rcbcast/internal/scenario"
)

// Server is the HTTP face of a Manager. Routes (Go 1.22 method
// patterns):
//
//	POST /v1/jobs              submit a sweep (202 accepted, 200 dedupe,
//	                           400 invalid, 429 over a limit)
//	GET  /v1/jobs              list all jobs
//	GET  /v1/jobs/{id}         one job's status and progress
//	GET  /v1/jobs/{id}/results stream results as NDJSON: replay the
//	                           journal-backed file from byte 0, then
//	                           follow live appends until the job is
//	                           terminal
//	POST /v1/jobs/{id}/cancel  request cancellation
//	GET  /healthz              liveness + version (200 as long as the
//	                           process serves HTTP, draining or not)
//	GET  /readyz               readiness: 200 while accepting new work,
//	                           503 once draining — the signal membership
//	                           probes use to stop routing shards here
//	GET  /metrics              counter snapshot (JSON)
//
// Error responses are always {"error": "..."} JSON.
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer routes a Manager.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.results)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /readyz", s.ready)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SubmitRequest is the POST /v1/jobs body. The scenario object uses the
// exact schema of rcbcast -scenario files (scenario.Decode: strict,
// unknown fields rejected, errors name the offending field).
type SubmitRequest struct {
	Scenario json.RawMessage `json:"scenario"`
	Trials   int             `json:"trials"`
	// BaseSeed seeds the sweep (trial t runs with sim.SweepSeed(base,
	// 0, t)). Omitted, it defaults to 1 — the rcexp default — so a
	// default submit's results are byte-identical to
	// `rcexp -scenario spec.json -trials N`.
	BaseSeed *uint64 `json:"base_seed,omitempty"`
	// Shard, when present, restricts the job to the sweep trials
	// [lo, hi) — trials above stays the whole sweep's count, and the
	// job's NDJSON is the byte-exact [lo, hi) slice of the full run's.
	Shard *scenario.Shard `json:"shard,omitempty"`
}

// DefaultBaseSeed matches rcexp's -seed default.
const DefaultBaseSeed uint64 = 1

// clientID identifies the caller for the per-client limiter: the
// X-Client-ID header when present, otherwise the remote host.
func clientID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Client-ID")); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.m.cfg.MaxBody)
	var req SubmitRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("request body: %v", err))
		return
	}
	if len(bytes.TrimSpace(req.Scenario)) == 0 {
		writeError(w, http.StatusBadRequest, `request body: "scenario" is required`)
		return
	}
	// scenario.Decode both validates and names the offending field on
	// type or schema errors — its message is the 400 body verbatim.
	sc, err := scenario.Decode(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	base := DefaultBaseSeed
	if req.BaseSeed != nil {
		base = *req.BaseSeed
	}
	var sh scenario.Shard
	if req.Shard != nil {
		sh = *req.Shard
	}
	j, accepted, err := s.m.SubmitShard(clientID(r), sc, req.Trials, base, sh)
	switch {
	case errors.Is(err, ErrClientBusy), errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusOK // dedupe hit: the job already exists
	if accepted {
		code = http.StatusAccepted
	}
	writeJSON(w, code, j.Status())
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.m.List()})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.m.Get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if err := s.m.Cancel(id); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancel requested"})
}

// results streams the job's NDJSON output over chunked HTTP. The
// backing file is replayed from byte 0 — determinism makes it the same
// stream every subscriber sees, whenever they attach — then followed
// until the job reaches a terminal state and the subscriber has read
// every byte. A mid-stream resume truncates the file and rewrites an
// identical prefix, so a subscriber that is momentarily "ahead" of the
// visible size just waits for it to catch back up.
func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.m.StreamStart()
	defer s.m.StreamEnd()

	f, err := os.Open(j.resultsPath())
	if err != nil && !os.IsNotExist(err) {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	var offset int64
	buf := make([]byte, 32*1024)
	for {
		size, watch, terminal := j.feed.snapshot()
		for offset < size {
			if f == nil {
				// The job had produced nothing when we attached; its
				// first append created the file.
				if f, err = os.Open(j.resultsPath()); err != nil {
					return
				}
			}
			n := size - offset
			if n > int64(len(buf)) {
				n = int64(len(buf))
			}
			read, err := f.ReadAt(buf[:n], offset)
			if read > 0 {
				if _, werr := w.Write(buf[:read]); werr != nil {
					closeQuietly(f)
					return
				}
				offset += int64(read)
			}
			if err != nil {
				break
			}
		}
		rc.Flush()
		if terminal && offset >= size {
			closeQuietly(f)
			return
		}
		select {
		case <-watch:
		case <-r.Context().Done():
			closeQuietly(f)
			return
		}
	}
}

func closeQuietly(f *os.File) {
	if f != nil {
		f.Close()
	}
}

// health is pure liveness: 200 whenever the process answers at all,
// draining included. Readiness is the separate /readyz signal.
func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": s.m.Version(),
	})
}

// ready distinguishes accepting-work from merely-alive: a draining
// server answers 503 so coordinators park it without declaring it dead.
func (s *Server) ready(w http.ResponseWriter, r *http.Request) {
	if !s.m.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status":  "draining",
			"version": s.m.Version(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ready",
		"version": s.m.Version(),
	})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Metrics())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
