package sink

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
)

// TestAppendJSONMatchesEncodingJSON pins the hand-rolled NDJSON encoder
// byte for byte against the json.Encoder it replaced, including the
// HTML-safe string escaping of hostile strategy names.
func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	recs := []Record{
		{},
		{Trial: 3, N: 256, Informed: 200, Stranded: 1, Dead: 2, Completed: true,
			Rounds: 9, Slots: 123456789, AliceCost: -1, NodeMedianCost: 42,
			NodeMaxCost: 99, AdversarySpent: 4096, Strategy: "full-jam"},
		{Strategy: `phase-blocker(inform=true,prop=false,req=true)`},
		{Strategy: "quotes\" back\\slash <html> & ctrl\x01\n\t\r"},
		{Strategy: "unicode é    ok"},
		{Strategy: "bad utf8 \xff end"},
	}
	var buf []byte
	for _, rec := range recs {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(rec); err != nil {
			t.Fatal(err)
		}
		buf = rec.appendJSON(buf[:0])
		if !bytes.Equal(buf, want.Bytes()) {
			t.Fatalf("appendJSON diverged from encoding/json:\n got %q\nwant %q", buf, want.Bytes())
		}
	}
}

// TestAppendCSVMatchesEncodingCSV pins the hand-rolled field quoting
// against encoding/csv for the strategy column.
func TestAppendCSVMatchesEncodingCSV(t *testing.T) {
	for _, field := range []string{
		"", "full-jam", "phase-blocker(inform=true,prop=false,req=true)",
		`has"quote`, "has,comma", " leading space", "trailing space ",
		"line\nbreak", "cr\rreturn", `\.`, "composite(a+b)",
	} {
		var want bytes.Buffer
		w := csv.NewWriter(&want)
		if err := w.Write([]string{field}); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		got := append(appendCSVField(nil, field), '\n')
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("field %q: got %q want %q", field, got, want.Bytes())
		}
	}
}

// TestSinkEncodersDoNotAllocatePerTrial pins the reuse: once the
// per-sink buffers are warm, encoding a trial allocates nothing.
func TestSinkEncodersDoNotAllocatePerTrial(t *testing.T) {
	rec := Record{Trial: 1, N: 256, Strategy: "full-jam", Slots: 1 << 40}
	var buf []byte
	if n := testing.AllocsPerRun(100, func() {
		buf = rec.appendJSON(buf[:0])
	}); n != 0 {
		t.Fatalf("appendJSON allocated %.1f objects/op after warmup", n)
	}
}
