// Package rng provides deterministic, splittable pseudo-random streams.
//
// Every random decision in the simulator is drawn from a Stream that is
// keyed by a path of integers, e.g. (seed, actorID, round, phase, purpose).
// Two engines that derive the same keyed stream draw exactly the same
// sequence, which is what makes the sequential event-driven engine and the
// goroutine-per-device actor engine bit-for-bit equivalent (DESIGN.md §5.1).
//
// The generator is xoshiro256** seeded through SplitMix64, following the
// reference construction by Blackman and Vigna. It is not cryptographically
// secure; it is a simulation RNG chosen for speed, equidistribution, and
// cheap splitting.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both as a seeding function and as a key mixer.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix collapses a key path into a single 64-bit value. Mixing is
// order-sensitive: Mix(1, 2) != Mix(2, 1). An empty path yields a fixed
// nonzero constant so that a zero-value key still produces a usable stream.
func Mix(parts ...uint64) uint64 {
	state := uint64(0x853c49e6748fea9b)
	for _, p := range parts {
		mixPart(&state, p)
	}
	return splitMix64(&state)
}

// mixPart folds one key part into the mixer state.
func mixPart(state *uint64, p uint64) {
	*state ^= splitMix64(state) ^ p
	// Re-mix after the xor so that consecutive zero parts still perturb
	// the state differently at each position.
	_ = splitMix64(state)
}

// mixSeeded collapses seed followed by path, exactly as
// Mix(append([]uint64{seed}, path...)...) would, without building the
// combined slice. It is the allocation-free key mixer behind Reseed and
// DeriveInto.
func mixSeeded(seed uint64, path []uint64) uint64 {
	state := uint64(0x853c49e6748fea9b)
	mixPart(&state, seed)
	for _, p := range path {
		mixPart(&state, p)
	}
	return splitMix64(&state)
}

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded from the zero key; prefer New or Derive for clarity.
type Stream struct {
	s    [4]uint64
	seed uint64 // the mixed key this stream was created from
	init bool
}

// New returns a stream keyed by seed and an optional path. Streams created
// with the same arguments produce identical sequences.
func New(seed uint64, path ...uint64) *Stream {
	st := &Stream{}
	st.Reseed(seed, path...)
	return st
}

// Reseed re-keys the stream in place to the sequence New(seed, path...)
// produces, discarding any prior state. It is the value-semantics
// constructor: a Stream living in a long-lived struct (or on a walker's
// stack) is re-pointed at a fresh keyed sequence without heap
// allocation, which is what lets tight simulation loops derive per-phase
// streams at zero steady-state allocation cost.
func (st *Stream) Reseed(seed uint64, path ...uint64) {
	key := seed
	if len(path) > 0 {
		key = mixSeeded(seed, path)
	}
	st.reseed(key)
}

// reseed initializes the xoshiro state from a single 64-bit key via
// SplitMix64, as recommended by the xoshiro authors.
func (st *Stream) reseed(key uint64) {
	sm := key
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	st.seed = key
	st.init = true
}

// Derive returns a new independent stream keyed by this stream's own key
// plus the given sub-path. Deriving does not consume randomness from the
// parent, so derivation order never perturbs parent draws.
func (st *Stream) Derive(path ...uint64) *Stream {
	st.ensure()
	return New(st.seed, path...)
}

// DeriveInto reseeds dst to the stream Derive(path...) would return,
// without allocating. dst may be st itself, in which case the stream
// re-keys to its own sub-path.
func (st *Stream) DeriveInto(dst *Stream, path ...uint64) {
	st.ensure()
	dst.Reseed(st.seed, path...)
}

// Seed reports the mixed key the stream was created from.
func (st *Stream) Seed() uint64 {
	st.ensure()
	return st.seed
}

func (st *Stream) ensure() {
	if !st.init {
		st.reseed(0)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// next advances the xoshiro state and returns the raw output. It is
// deliberately small enough to inline into every draw path (Uint64,
// GeometricLnQ); keeping the state step call-free is worth several
// nanoseconds per draw in the engine's skip-sampling loops.
func (st *Stream) next() uint64 {
	s := &st.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint64 returns the next 64 uniformly distributed bits.
func (st *Stream) Uint64() uint64 {
	st.ensure()
	return st.next()
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
// Scaling by 0x1p-53 multiplies instead of dividing; both are exact
// powers of two, so the value is bit-identical and the multiply is
// several cycles cheaper on every draw.
func (st *Stream) Float64() float64 {
	return float64(st.Uint64()>>11) * 0x1p-53
}

// Bernoulli reports true with probability p. Probabilities outside [0, 1]
// are clamped: p <= 0 is always false, p >= 1 always true (no draw is
// consumed in either degenerate case, keeping streams aligned across
// engines that can skip certain trials analytically).
func (st *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return st.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless rejection method keeps the result unbiased.
func (st *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := st.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (st *Stream) Perm(n int) []int {
	p := make([]int, n)
	st.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)),
// drawing exactly the same sequence as Perm(len(p)) — the caller-buffer
// variant for loops that permute repeatedly without allocating.
func (st *Stream) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := st.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials, i.e. a sample from Geometric(p) with
// support {0, 1, 2, ...}. It is the workhorse of event-driven slot
// simulation: a device that acts each slot with probability p next acts
// after Geometric(p) silent slots.
//
// p >= 1 returns 0. p <= 0 returns math.MaxInt (never). The inversion
// formula floor(ln U / ln(1-p)) is exact for the geometric distribution.
func (st *Stream) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt
	}
	return st.GeometricLnQ(math.Log1p(-p))
}

// GeometricLnQ is Geometric(p) with lnQ = Log1p(-p) precomputed by the
// caller; it requires 0 < p < 1 (equivalently lnQ < 0). It consumes
// exactly one Float64 and evaluates floor(ln U / lnQ) with the same
// float64 operations as Geometric, so the two are bit-for-bit
// interchangeable for matching arguments. Callers that draw many skips
// at one fixed p (sampling.SlotSchedule) hoist the Log1p out of the
// draw loop this way — in engine profiles that log alone was ~11% of a
// whole protocol run.
func (st *Stream) GeometricLnQ(lnQ float64) int {
	st.ensure()
	// The xoshiro step (next) and the Float64 conversion are open-coded:
	// the whole draw then costs one call from the schedule's skip loop
	// instead of three, which is measurable at millions of draws per
	// engine run. Must mirror next() exactly.
	s := &st.s
	raw := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	u := float64(raw>>11) * 0x1p-53
	// Guard against u == 0, for which log is -inf and the sample would
	// round to +inf anyway; resample cheaply by nudging to the smallest
	// representable uniform instead (probability 2^-53 event).
	if u == 0 {
		u = 0x1p-53
	}
	g := math.Floor(math.Log(u) / lnQ)
	if g >= float64(math.MaxInt64/2) || math.IsNaN(g) {
		return math.MaxInt
	}
	return int(g)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inversion. Used by statistical tests and workload generators.
func (st *Stream) ExpFloat64() float64 {
	u := st.Float64()
	if u == 0 {
		u = 0x1p-53
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal sample using the Box-Muller
// transform (the polar variant is avoided to keep draw counts fixed at two
// per call, preserving cross-engine stream alignment).
func (st *Stream) NormFloat64() float64 {
	u1 := st.Float64()
	if u1 == 0 {
		u1 = 0x1p-53
	}
	u2 := st.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
