package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf strings.Builder
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestCLIBasicRun(t *testing.T) {
	out := runCLI(t, "-n", "128", "-pool", "2048", "-seed", "5")
	for _, want := range []string{"ε-BROADCAST k=2 n=128", "full-jam", "informed", "competitive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIAdversaries(t *testing.T) {
	for _, adv := range []string{"null", "random", "bursty", "blocker", "partition", "spoofer", "reactive"} {
		out := runCLI(t, "-n", "64", "-adversary", adv, "-pool", "1024")
		if !strings.Contains(out, "delivery:") {
			t.Fatalf("adversary %s produced no report:\n%s", adv, out)
		}
	}
}

func TestCLIUnknownAdversary(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-adversary", "nope"}, &buf); err == nil {
		t.Fatal("unknown adversary must error")
	}
}

func TestCLIUnknownEngine(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-engine", "warp"}, &buf); err == nil {
		t.Fatal("unknown engine must error")
	}
}

func TestCLIActorsEngine(t *testing.T) {
	out := runCLI(t, "-n", "64", "-engine", "actors", "-adversary", "null", "-pool", "0")
	if !strings.Contains(out, "informed (100.0%)") {
		t.Fatalf("actors engine output:\n%s", out)
	}
}

func TestCLIPhasesAndTraceText(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-phases", "-trace", "text")
	if !strings.Contains(out, "per-phase trace:") || !strings.Contains(out, "run complete") {
		t.Fatalf("trace output incomplete:\n%s", out)
	}
}

func TestCLITraceJSON(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-trace", "json")
	if !strings.Contains(out, `"event":"phase_start"`) {
		t.Fatalf("json trace missing:\n%s", out)
	}
}

func TestCLIBudgetsAndDecoy(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-budgets", "-decoy")
	if !strings.Contains(out, "delivery:") {
		t.Fatalf("budgeted decoy run:\n%s", out)
	}
}

func TestCLIPaperParams(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "null", "-pool", "0", "-paper")
	if !strings.Contains(out, "k2-exact") {
		t.Fatalf("paper mode must use Figure 1:\n%s", out)
	}
}

func TestCLIListScenarios(t *testing.T) {
	out := runCLI(t, "-list-scenarios")
	for _, want := range []string{"full-jam", "reactive-decoy", "budgeted-partition", "adversary kinds", "partition"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestCLINamedScenario(t *testing.T) {
	out := runCLI(t, "-n", "64", "-scenario", "full-jam")
	if !strings.Contains(out, "scenario:   full-jam") || !strings.Contains(out, "full-jam (spent") {
		t.Fatalf("named scenario output:\n%s", out)
	}
	// Explicit flags override scenario fields.
	out = runCLI(t, "-n", "64", "-scenario", "full-jam", "-adversary", "null", "-pool", "0")
	if !strings.Contains(out, "null (spent T=0") {
		t.Fatalf("flag override lost:\n%s", out)
	}
}

func TestCLIUnknownScenario(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-scenario", "no-such"}, &buf); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestCLIScenarioJSONFile(t *testing.T) {
	out := runCLI(t, "-scenario", filepath.Join("..", "..", "internal", "scenario", "testdata", "smoke.json"))
	for _, want := range []string{"scenario:   smoke", "n=64", "bursty(16/16)", "delivery:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON scenario output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIScenarioJSONRejectsTypos(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"n": 64, "adversarry": {"kind": "full"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-scenario", path}, &buf); err == nil {
		t.Fatal("scenario file with a typo'd field must error")
	}
}

func TestCLIAdversaryFlagSyntax(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "random:p=0.25", "-pool", "1024")
	if !strings.Contains(out, "random-jam(p=0.25)") {
		t.Fatalf("inline knob lost:\n%s", out)
	}
	out = runCLI(t, "-n", "64", "-adversary", "blocker:inform,prop+spoofer:p=0.3", "-pool", "2048")
	if !strings.Contains(out, "composite(phase-blocker") || !strings.Contains(out, "nack-spoofer") {
		t.Fatalf("composite adversary lost:\n%s", out)
	}
}

func TestCLIKnobFlagsReachNestedKinds(t *testing.T) {
	// -jam-p must reach a random part inside a composite...
	out := runCLI(t, "-n", "64", "-adversary", "random+spoofer", "-jam-p", "0.9", "-pool", "1024")
	if !strings.Contains(out, "random-jam(p=0.9)") {
		t.Fatalf("-jam-p lost inside composite:\n%s", out)
	}
	// ...and a scenario's partition adversary.
	out = runCLI(t, "-n", "64", "-scenario", "partition-5%", "-strand", "0.25")
	if !strings.Contains(out, "16 stranded") { // int(0.25*64) = 16
		t.Fatalf("-strand lost for -scenario:\n%s", out)
	}
	// A knob flag with no matching kind must error, not silently run
	// with defaults.
	var buf strings.Builder
	if err := run([]string{"-n", "64", "-adversary", "full", "-jam-p", "0.9"}, &buf); err == nil {
		t.Fatal("-jam-p with no random part must error")
	}
}

func TestCLIJamPZeroMeansNoJamming(t *testing.T) {
	// An explicit -jam-p 0 is a no-op jammer (the pre-scenario CLI
	// semantics), not a silent substitution of the 0.5 default.
	out := runCLI(t, "-n", "64", "-adversary", "random", "-jam-p", "0", "-pool", "1024")
	if !strings.Contains(out, "random-jam(p=0)") || !strings.Contains(out, "spent T=0") {
		t.Fatalf("-jam-p 0 must jam nothing:\n%s", out)
	}
}

func TestCLIBudgetsFalseOverridesScenario(t *testing.T) {
	// budgeted-full enforces DeviceC=8; explicit -budgets=false must
	// disable it (at n=64 the budget caps kill every node otherwise).
	out := runCLI(t, "-n", "64", "-scenario", "budgeted-full", "-budgets=false")
	if !strings.Contains(out, " 0 dead") {
		t.Fatalf("-budgets=false did not disable device budgets:\n%s", out)
	}
}

func TestCLIDumpScenario(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "random:p=0.25", "-dump-scenario")
	for _, want := range []string{`"n": 64`, `"kind": "random"`, `"p": 0.25`, `"pool": 16384`} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestCLIReactiveBoundsRounds is the CLI half of the param-ordering
// regression: -adversary reactive must run with MaxRound bounded to
// StartRound+6 (applied to Params *before* options assembly; the old
// switch mutated params after opts.Params had been copied).
func TestCLIReactiveBoundsRounds(t *testing.T) {
	out := runCLI(t, "-n", "64", "-adversary", "reactive", "-pool", "0", "-phases")
	if !strings.Contains(out, "per-phase trace:") {
		t.Fatalf("no phase trace:\n%s", out)
	}
	// An unlimited reactive jammer stalls every round, so the run must
	// stop exactly at the bound. Phase lines are "rN/kind ...": count
	// distinct rounds — exactly 7 (StartRound..StartRound+6).
	rounds := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && strings.HasPrefix(f[0], "r") && strings.Contains(f[0], "/") {
			round, _, _ := strings.Cut(f[0], "/")
			rounds[round] = true
		}
	}
	if len(rounds) != 7 {
		t.Fatalf("reactive run spanned %d rounds, want 7 (MaxRound bound lost):\n%s", len(rounds), out)
	}
}

func TestCLIListTopologies(t *testing.T) {
	out := runCLI(t, "-list-topologies")
	for _, want := range []string{"clique", "grid", "gilbert", "r=RADIUS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("topology listing missing %q:\n%s", want, out)
		}
	}
}

func TestCLITopologyRuns(t *testing.T) {
	for _, spec := range []string{"clique", "grid", "grid:reach=2", "gilbert:r=0.3"} {
		out := runCLI(t, "-n", "64", "-topology", spec, "-adversary", "null", "-pool", "0")
		if !strings.Contains(out, "informed") {
			t.Fatalf("-topology %s produced no report:\n%s", spec, out)
		}
		if spec != "clique" && !strings.Contains(out, "topology:") {
			t.Fatalf("-topology %s report missing the topology line:\n%s", spec, out)
		}
	}
}

func TestCLITopologyBoundsRounds(t *testing.T) {
	// A sparse topology without an explicit bound must get the default
	// ExtraRounds=3 guard (nodes beyond the k-hop ball never pass the
	// quiet test).
	out := runCLI(t, "-n", "64", "-topology", "grid", "-adversary", "null", "-pool", "0", "-dump-scenario")
	if !strings.Contains(out, `"extra_rounds": 3`) {
		t.Fatalf("sparse topology must bound rounds:\n%s", out)
	}
	// The clique (explicit or default) must not be bounded.
	out = runCLI(t, "-n", "64", "-topology", "clique", "-adversary", "null", "-pool", "0", "-dump-scenario")
	if strings.Contains(out, "extra_rounds") {
		t.Fatalf("clique must not be round-bounded:\n%s", out)
	}
}

func TestCLITopologyUnknown(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-n", "64", "-topology", "torus"}, &buf); err == nil {
		t.Fatal("unknown topology must error")
	}
	if err := run([]string{"-n", "64", "-topology", "gilbert:r=9"}, &buf); err == nil {
		t.Fatal("out-of-range radius must error")
	}
}

// TestCLITopologyDumpRoundTrips: -dump-scenario output per topology
// kind reloads as a scenario file and reproduces the same dump — the
// JSON/flag round-trip golden at the CLI layer.
func TestCLITopologyDumpRoundTrips(t *testing.T) {
	for _, spec := range []string{"grid:w=8,reach=2", "gilbert:r=0.25"} {
		dump := runCLI(t, "-n", "64", "-topology", spec, "-adversary", "random:p=0.5", "-dump-scenario")
		path := filepath.Join(t.TempDir(), "sc.json")
		if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
			t.Fatal(err)
		}
		again := runCLI(t, "-scenario", path, "-dump-scenario")
		if dump != again {
			t.Fatalf("dump → load → dump not stable for %s:\n--- first\n%s--- second\n%s", spec, dump, again)
		}
		run1 := runCLI(t, "-n", "64", "-topology", spec, "-adversary", "random:p=0.5", "-seed", "4")
		run2 := runCLI(t, "-scenario", path, "-seed", "4")
		if run1 != run2 {
			t.Fatalf("flag run and JSON run diverged for %s:\n--- flags\n%s--- json\n%s", spec, run1, run2)
		}
	}
}
