package multihop

import (
	"errors"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/rng"
)

func TestBenignPipeline(t *testing.T) {
	res, err := Run(Options{
		Params: core.PracticalParams(128, 2),
		Hops:   4,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached || res.StalledAt != -1 {
		t.Fatalf("benign pipeline must reach the end: %+v", res)
	}
	if len(res.Hops) != 4 {
		t.Fatalf("hop count = %d", len(res.Hops))
	}
	for _, h := range res.Hops {
		if h.InformedFrac < 0.99 {
			t.Fatalf("hop %d informed %v", h.Hop, h.InformedFrac)
		}
	}
	if res.EndToEndFrac < 0.95 {
		t.Fatalf("end-to-end fraction %v", res.EndToEndFrac)
	}
}

func TestLatencyAdditiveInHops(t *testing.T) {
	slots := map[int]int64{}
	for _, hops := range []int{1, 2, 4} {
		res, err := Run(Options{
			Params: core.PracticalParams(128, 2),
			Hops:   hops,
			Seed:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		slots[hops] = res.TotalSlots
	}
	// Benign latency is per-hop constant, so 4 hops ≈ 4x one hop.
	ratio := float64(slots[4]) / float64(slots[1])
	if ratio < 3 || ratio > 5 {
		t.Fatalf("latency ratio 4-hop/1-hop = %v, want ~4", ratio)
	}
}

func TestPerNodeCostIndependentOfHops(t *testing.T) {
	var medians []int64
	for _, hops := range []int{1, 4} {
		res, err := Run(Options{
			Params: core.PracticalParams(128, 2),
			Hops:   hops,
			Seed:   3,
		})
		if err != nil {
			t.Fatal(err)
		}
		worstMedian := int64(0)
		for _, h := range res.Hops {
			if h.MedianNodeCost > worstMedian {
				worstMedian = h.MedianNodeCost
			}
		}
		medians = append(medians, worstMedian)
	}
	// Each node participates in exactly one cluster: adding hops must
	// not inflate a typical device's spend. (The max across all clusters
	// does creep up — that is extreme-value statistics over 4x more
	// devices, not per-node inflation.)
	if float64(medians[1]) > 2*float64(medians[0])+4 {
		t.Fatalf("median node cost grew with hops: %d vs %d", medians[1], medians[0])
	}
}

func TestConcentratedJammerDelaysOneClusterOnly(t *testing.T) {
	// Carol drops her entire pool on cluster 2. The pipeline still
	// completes; the delay matches what the same pool buys single-hop.
	pool := energy.NewPool(8192)
	res, err := Run(Options{
		Params: core.PracticalParams(128, 2),
		Hops:   4,
		Seed:   4,
		StrategyFor: func(hop int) adversary.Strategy {
			if hop == 2 {
				return adversary.FullJam{}
			}
			return nil
		},
		Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("pipeline must survive a single jammed cluster: %+v", res)
	}
	if res.Hops[2].AdversarySpent == 0 {
		t.Fatal("cluster 2 must have been attacked")
	}
	if res.Hops[2].Slots <= res.Hops[1].Slots {
		t.Fatal("the attacked cluster must be the slow one")
	}
	for _, h := range []int{0, 1, 3} {
		if res.Hops[h].AdversarySpent != 0 {
			t.Fatalf("cluster %d should be unattacked", h)
		}
	}
}

func TestSharedPoolAcrossClusters(t *testing.T) {
	// A pool shared across every cluster: jamming them all drains it
	// fast, and later clusters run clean.
	pool := energy.NewPool(4096)
	res, err := Run(Options{
		Params:      core.PracticalParams(128, 2),
		Hops:        4,
		Seed:        5,
		StrategyFor: func(int) adversary.Strategy { return adversary.FullJam{} },
		Pool:        pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("pipeline must outlast the shared pool: %+v", res)
	}
	if !pool.Exhausted() {
		t.Fatalf("shared pool should drain, spent %d", pool.Spent())
	}
	if res.AdversarySpent != 4096 {
		t.Fatalf("total adversary spend = %d", res.AdversarySpent)
	}
}

func TestPipelineStallsWhenClusterFails(t *testing.T) {
	// An unlimited jammer on cluster 1 within a bounded round budget:
	// cluster 1 never delivers and the pipeline reports the stall.
	params := core.PracticalParams(128, 2)
	params.MaxRound = params.StartRound + 2
	res, err := Run(Options{
		Params: params,
		Hops:   4,
		Seed:   6,
		StrategyFor: func(hop int) adversary.Strategy {
			if hop == 1 {
				return adversary.FullJam{}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("pipeline cannot reach past an unlimited jammer")
	}
	if res.StalledAt != 1 {
		t.Fatalf("stalled at %d, want 1", res.StalledAt)
	}
	if len(res.Hops) != 2 {
		t.Fatalf("execution must stop at the stalled cluster, got %d hops", len(res.Hops))
	}
}

func TestStrandingCompoundsAcrossHops(t *testing.T) {
	// Each hop strands 10%; end-to-end fraction ≈ 0.9^H.
	res, err := Run(Options{
		Params: core.PracticalParams(256, 2),
		Hops:   3,
		Seed:   7,
		StrategyFor: func(int) adversary.Strategy {
			return &adversary.PartitionBlocker{
				Stranded: func(node int) bool { return node < 25 },
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("10%% stranding per hop must not stall the pipeline: %+v", res)
	}
	want := 0.9 * 0.9 * 0.9
	if res.EndToEndFrac < want-0.05 || res.EndToEndFrac > 1 {
		t.Fatalf("end-to-end fraction %v, want ~%v", res.EndToEndFrac, want)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Options{Params: core.PracticalParams(64, 2), Hops: 0}); !errors.Is(err, ErrBadHops) {
		t.Fatalf("want ErrBadHops, got %v", err)
	}
	bad := core.PracticalParams(64, 2)
	bad.K = 0
	if _, err := Run(Options{Params: bad, Hops: 1}); err == nil {
		t.Fatal("invalid params must be rejected")
	}
}

func TestHopSeedsIndependent(t *testing.T) {
	res, err := Run(Options{Params: core.PracticalParams(128, 2), Hops: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Different clusters draw from different streams; their Alice send
	// counts should differ (equality is astronomically unlikely).
	if res.Hops[0].SenderCost == res.Hops[1].SenderCost &&
		res.Hops[0].MedianNodeCost == res.Hops[1].MedianNodeCost {
		t.Fatal("hops appear to share randomness")
	}
}

// TestPipelineMatchesDirectEngineRuns is the fold-in equivalence
// guarantee: the pipeline rebuilt on the unified topology kernel must
// reproduce, hop for hop, what direct per-cluster engine runs produce —
// i.e. the refactor retired the standalone path without changing a
// byte.
func TestPipelineMatchesDirectEngineRuns(t *testing.T) {
	params := core.PracticalParams(128, 2)
	pool := energy.NewPool(6000)
	res, err := Run(Options{
		Params: params,
		Hops:   3,
		Seed:   42,
		StrategyFor: func(hop int) adversary.Strategy {
			if hop == 1 {
				return adversary.FullJam{}
			}
			return nil
		},
		Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	directPool := energy.NewPool(6000)
	for hop := 0; hop < 3; hop++ {
		var strat adversary.Strategy
		if hop == 1 {
			strat = adversary.FullJam{}
		}
		direct, err := engine.Run(engine.Options{
			Params:   params,
			Seed:     rng.Mix(42, uint64(hop)+1),
			Strategy: strat,
			Pool:     directPool,
		})
		if err != nil {
			t.Fatal(err)
		}
		hr := res.Hops[hop]
		if hr.Informed != direct.Informed || hr.Slots != direct.SlotsSimulated ||
			hr.Rounds != direct.Rounds || hr.SenderCost != direct.Alice.Cost ||
			hr.MaxNodeCost != direct.NodeCost.Max ||
			hr.MedianNodeCost != direct.NodeCost.Median ||
			hr.AdversarySpent != direct.AdversarySpent {
			t.Fatalf("hop %d diverged from a direct engine run:\npipeline: %+v\ndirect:   informed=%d slots=%d rounds=%d",
				hop, hr, direct.Informed, direct.SlotsSimulated, direct.Rounds)
		}
	}
}

// TestGridWaveProfile: the single-kernel lattice run delivers Alice's
// k-hop ball ring by ring and nothing beyond it.
func TestGridWaveProfile(t *testing.T) {
	res, err := RunGrid(GridOptions{
		Params: core.PracticalParams(144, 2), // 12x12
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable != 9 { // the 3x3 corner block at reach 1, k=2
		t.Fatalf("reachable = %d, want 9", res.Reachable)
	}
	if res.Informed > res.Reachable {
		t.Fatalf("informed %d beyond the reachable ceiling %d", res.Informed, res.Reachable)
	}
	if res.Informed < res.Reachable-2 {
		t.Fatalf("informed %d, want nearly all of the %d-node ball", res.Informed, res.Reachable)
	}
	total, informed := 0, 0
	for d, size := range res.RingSize {
		total += size
		informed += res.RingInformed[d]
		if d > 2 && res.RingInformed[d] > 0 {
			t.Fatalf("ring %d informed %d nodes — the k=2 wave must stop at ring 2",
				d, res.RingInformed[d])
		}
	}
	if total != 144 {
		t.Fatalf("ring sizes sum to %d, want 144", total)
	}
	if informed != res.Informed {
		t.Fatalf("ring profile counts %d informed, result says %d", informed, res.Informed)
	}
}

// TestGridWaveReachGrowsWithK: a deeper propagation schedule carries
// the wave further on the same lattice.
func TestGridWaveReachGrowsWithK(t *testing.T) {
	k2, err := RunGrid(GridOptions{Params: core.PracticalParams(144, 2), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	k4, err := RunGrid(GridOptions{Params: core.PracticalParams(144, 4), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if k4.Reachable <= k2.Reachable || k4.Informed <= k2.Informed {
		t.Fatalf("k=4 wave (reach %d, informed %d) must outreach k=2 (reach %d, informed %d)",
			k4.Reachable, k4.Informed, k2.Reachable, k2.Informed)
	}
}

// TestGridWaveUnderJamming: jamming delays and thins the wave but
// cannot push delivery beyond the reachable set.
func TestGridWaveUnderJamming(t *testing.T) {
	jammed, err := RunGrid(GridOptions{
		Params:   core.PracticalParams(100, 2),
		Seed:     8,
		Strategy: adversary.RandomJam{P: 0.5},
		Pool:     energy.NewPool(4000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if jammed.Informed > jammed.Reachable {
		t.Fatalf("informed %d beyond reachable %d", jammed.Informed, jammed.Reachable)
	}
	if jammed.AdversarySpent == 0 {
		t.Fatal("the jammer must have spent energy")
	}
}
