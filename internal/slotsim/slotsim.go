// Package slotsim models the paper's single-hop, time-slotted wireless
// channel (§1.1):
//
//   - A slot with exactly one transmission delivers that frame to a
//     listener, unless the adversary disrupts that particular listener.
//   - Two or more transmissions collide: every listener perceives noise.
//   - Jamming is indistinguishable from collision and is perceived only on
//     the receiving end; disrupted listeners discard any data.
//   - Silence cannot be forged: a slot with no transmission and no jamming
//     is perceived as silent by everyone.
//   - A transmitter cannot hear its own slot.
//
// The adversary is n-uniform: her jam in a slot names, per listener,
// whether that listener is disrupted, which is how she can hand m to some
// nodes and deny it to others during a blocked phase (§2.3).
package slotsim

import (
	"fmt"

	"rcbcast/internal/msg"
)

// Outcome is what one listener perceives in one slot.
type Outcome uint8

const (
	// Silence: no channel activity. Unforgeable.
	Silence Outcome = iota
	// Received: exactly one transmission, delivered intact.
	Received
	// Noise: collision or jamming; any data is discarded.
	Noise
)

var outcomeNames = [...]string{Silence: "silence", Received: "received", Noise: "noise"}

// String returns the lower-case outcome name.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Jam describes adversarial interference in a single slot.
type Jam struct {
	// Active reports whether the adversary spent a jamming unit on this
	// slot at all.
	Active bool
	// Disrupt selects which listeners perceive the jam (n-uniform
	// targeting). nil means every listener is disrupted. Ignored when
	// Active is false.
	Disrupt func(listener int) bool
}

// NoJam is the empty jam.
var NoJam = Jam{}

// JamAll returns a jam disrupting every listener.
func JamAll() Jam { return Jam{Active: true} }

// JamExcept returns a jam that disrupts every listener except those for
// which spare returns true — the n-uniform adversary's tool for letting a
// chosen subset receive m during a blocked phase.
func JamExcept(spare func(listener int) bool) Jam {
	return Jam{Active: true, Disrupt: func(l int) bool { return !spare(l) }}
}

// Slot is the complete channel state for one time slot: the set of
// transmissions plus the adversary's jam decision.
type Slot struct {
	frames []msg.Frame
	jam    Jam
}

// AddFrame records a transmission in the slot.
func (s *Slot) AddFrame(f msg.Frame) { s.frames = append(s.frames, f) }

// SetJam installs the adversary's decision for the slot.
func (s *Slot) SetJam(j Jam) { s.jam = j }

// Jammed reports whether the adversary spent a jam unit on this slot.
func (s *Slot) Jammed() bool { return s.jam.Active }

// Transmissions returns the number of frames sent in the slot.
func (s *Slot) Transmissions() int { return len(s.frames) }

// Frames returns the slot's transmissions. The returned slice is owned by
// the slot; callers must not mutate it.
func (s *Slot) Frames() []msg.Frame { return s.frames }

// Reset clears the slot for reuse, retaining frame capacity.
func (s *Slot) Reset() {
	s.frames = s.frames[:0]
	s.jam = NoJam
}

// HasActivity reports whether at least one transmission occupies the slot.
// This is the RSSI bit a *reactive* adversary may observe before deciding
// to jam (§4.1): it reveals that the channel is in use, never the content,
// and does not include the adversary's own jamming.
func (s *Slot) HasActivity() bool { return len(s.frames) > 0 }

// Observe resolves the slot for one listener. A listener that transmitted
// in this slot must not call Observe (a device cannot hear its own slot);
// engines enforce that rule and Observe double-checks it by excluding the
// listener's own frames, so a self-addressed call degrades to what the
// rest of the channel looks like.
//
// CCA semantics fall out of the return value: the channel is "busy" iff
// the outcome is not Silence.
func (s *Slot) Observe(listener int) (Outcome, msg.Frame) {
	jammed := s.jam.Active && (s.jam.Disrupt == nil || s.jam.Disrupt(listener))

	// Count transmissions excluding the listener's own.
	var only msg.Frame
	count := 0
	for i := range s.frames {
		if s.frames[i].From == listener {
			continue
		}
		count++
		if count == 1 {
			only = s.frames[i]
		}
	}

	switch {
	case count == 0 && !jammed:
		return Silence, msg.Frame{}
	case count == 1 && !jammed:
		return Received, only
	default:
		// Collision, jam, or both: data is discarded.
		return Noise, msg.Frame{}
	}
}

// Noisy reports whether the listener would classify the slot as noisy —
// the predicate the request phase counts (§2.2): any outcome other than
// silence. Note that a received NACK also counts as a noisy slot for
// Alice's termination test ("5c ln n nack messages or noisy slots").
func (s *Slot) Noisy(listener int) bool {
	out, _ := s.Observe(listener)
	return out != Silence
}
