// Package rcbcast is a faithful, executable reproduction of
//
//	Gilbert & Young, "Making Evildoers Pay: Resource-Competitive
//	Broadcast in Sensor Networks", PODC 2012 (arXiv:1202.4576).
//
// It implements the ε-BROADCAST protocol (the paper's Figures 1 and 2),
// the time-slotted single-hop channel model with an n-uniform Byzantine
// jamming adversary, the §4.1 decoy defence against reactive jammers, the
// §4.2 approximate-parameter mode, the baselines the paper compares
// against, and a harness that regenerates every quantitative claim of
// Theorem 1 as a measured experiment (see DESIGN.md and EXPERIMENTS.md).
//
// # Quickstart
//
// A run is described by a declarative, JSON-serializable Scenario:
//
//	res, err := rcbcast.Scenario{
//		N: 1024, K: 2, Seed: 1,
//		Adversary: rcbcast.AdversarySpec{Kind: "full"}, // Carol jams everything...
//		Budget:    rcbcast.BudgetSpec{Pool: 1 << 14},   // ...until her pool drains
//	}.Run()
//	if err != nil { ... }
//	fmt.Printf("informed %d/%d, alice paid %d, median node paid %d, Carol paid %d\n",
//		res.Informed, res.N, res.Alice.Cost, res.NodeCost.Median, res.AdversarySpent)
//
// Named scenarios ship every attack the paper analyzes:
//
//	sc, _ := rcbcast.LookupScenario("reactive-decoy")
//	sc.N = 1024
//	res, err := sc.Run()
//
// The lower-level Options API remains for callers wiring custom
// strategies or tracers.
//
// The package is a façade over the implementation packages under
// internal/; everything a downstream user needs is re-exported here.
package rcbcast

import (
	"io"

	"rcbcast/internal/adversary"
	"rcbcast/internal/baseline"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/multihop"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/trace"
)

// Protocol configuration (internal/core).
type (
	// Params fully determines an ε-BROADCAST instance; construct with
	// PaperParams or PracticalParams and adjust fields as needed.
	Params = core.Params
	// Variant selects Figure 1 (k=2 exact) or Figure 2 (general k)
	// probability constants.
	Variant = core.Variant
	// QuietMode selects the request-phase termination test.
	QuietMode = core.QuietMode
	// Phase is one resolved phase descriptor of the round schedule.
	Phase = core.Phase
)

// Re-exported protocol constants.
const (
	VariantGeneralK = core.VariantGeneralK
	VariantK2Exact  = core.VariantK2Exact
	QuietAbsolute   = core.QuietAbsolute
	QuietFraction   = core.QuietFraction
)

// PaperParams returns the protocol exactly as analyzed in the paper.
func PaperParams(n, k int) Params { return core.PaperParams(n, k) }

// PracticalParams returns the same functional forms tuned for
// laptop-scale simulations (the experiment defaults).
func PracticalParams(n, k int) Params { return core.PracticalParams(n, k) }

// Execution (internal/engine).
type (
	// Options configures one protocol execution.
	Options = engine.Options
	// Result reports a finished execution.
	Result = engine.Result
	// AliceStats aggregates Alice's costs and exit status.
	AliceStats = engine.AliceStats
	// CostSummary summarizes the per-node cost distribution.
	CostSummary = engine.CostSummary
)

// Run executes the protocol on the fast sequential engine.
func Run(opts Options) (*Result, error) { return engine.Run(opts) }

// RunActors executes the protocol with one goroutine per node. Results
// are bit-for-bit identical to Run for identical Options.
func RunActors(opts Options) (*Result, error) { return engine.RunActors(opts) }

// Parallel sweeps (internal/sim).

// TrialSpec describes one engine execution for the parallel trial
// runner: protocol params, a derived seed, and factories for per-trial
// adversary state.
type TrialSpec = sim.TrialSpec

// RunTrials executes every spec across a pool of procs workers
// (procs <= 0 selects GOMAXPROCS) and returns results indexed like
// specs. Output is byte-identical for every procs value.
func RunTrials(procs int, specs []TrialSpec) ([]*Result, error) {
	return sim.RunTrials(procs, specs)
}

// TrialSeed derives the engine seed for one trial of a sweep by mixing
// (base, trial) through SplitMix64; trial-seed sets from different bases
// are disjoint in practice.
func TrialSeed(base uint64, trial int) uint64 { return sim.TrialSeed(base, trial) }

// SweepSeed derives the engine seed for trial `trial` of sweep point
// `point` — use it instead of packing both into one TrialSeed index.
func SweepSeed(base uint64, point, trial int) uint64 { return sim.SweepSeed(base, point, trial) }

// Declarative scenarios (internal/scenario).
type (
	// Scenario is a complete, serializable run description: protocol
	// choice, adversary, budgets, engine. It round-trips through JSON,
	// builds Options or TrialSpecs, and runs on either engine.
	Scenario = scenario.Scenario
	// AdversarySpec is the plain-data description of Carol: a Kind from
	// the registry plus numeric knobs. New mints fresh strategy
	// instances, replacing hand-rolled factory closures.
	AdversarySpec = scenario.AdversarySpec
	// BudgetSpec declares Carol's pool (fixed or the paper's model) and
	// the optional per-device budgets.
	BudgetSpec = scenario.BudgetSpec
	// ScenarioOverrides are optional protocol-parameter adjustments.
	ScenarioOverrides = scenario.Overrides
	// NamedScenario couples a registry name with its scenario.
	NamedScenario = scenario.Named
	// AdversaryKind describes one registered adversary kind.
	AdversaryKind = scenario.KindInfo
)

// ParseAdversary decodes the compact adversary flag syntax, e.g.
// "random:p=0.3" or "blocker:inform,prop+spoofer:p=0.3".
func ParseAdversary(s string) (AdversarySpec, error) { return scenario.ParseAdversary(s) }

// LookupScenario returns a copy of a named scenario from the registry;
// set N (and usually K and Seed) before running it.
func LookupScenario(name string) (Scenario, bool) { return scenario.Lookup(name) }

// Scenarios returns the named-scenario registry in order.
func Scenarios() []NamedScenario { return scenario.All() }

// ScenarioNames returns the registry names in order.
func ScenarioNames() []string { return scenario.Names() }

// AdversaryKinds lists the registered adversary kinds.
func AdversaryKinds() []AdversaryKind { return scenario.Kinds() }

// DecodeScenario parses a JSON scenario (unknown fields rejected).
func DecodeScenario(data []byte) (Scenario, error) { return scenario.Decode(data) }

// EncodeScenario renders a scenario as indented JSON; encode→decode→
// encode is byte-stable.
func EncodeScenario(s Scenario) ([]byte, error) { return scenario.Encode(s) }

// Adversaries (internal/adversary).
type (
	// Strategy is Carol: she commits a jamming/spoofing plan per phase.
	Strategy = adversary.Strategy
	// Reactive strategies additionally see the current phase's RSSI
	// activity bitmap (grant with Options.AllowReactive).
	Reactive = adversary.Reactive
	// Plan is a phase commitment; used when implementing custom
	// strategies.
	Plan = adversary.Plan
	// History is the adaptive adversary's view of past phases.
	History = adversary.History

	// Null never jams.
	Null = adversary.Null
	// FullJam jams every slot until the pool drains.
	FullJam = adversary.FullJam
	// RandomJam jams each slot independently with probability P.
	RandomJam = adversary.RandomJam
	// Bursty alternates jammed bursts with silent gaps.
	Bursty = adversary.Bursty
	// PhaseBlocker jams whole targeted phases while affordable
	// (Lemma 10's delay strategy).
	PhaseBlocker = adversary.PhaseBlocker
	// PartitionBlocker is the §2.3 n-uniform stranding attack.
	PartitionBlocker = adversary.PartitionBlocker
	// NackSpoofer is the §2.2 spoofed-NACK attack on the request phase.
	NackSpoofer = adversary.NackSpoofer
	// ReactiveJammer jams exactly the slots carrying transmissions
	// (§4.1 threat model).
	ReactiveJammer = adversary.ReactiveJammer
)

// Energy model (internal/energy).
type (
	// Pool is the adversary's shared energy purse.
	Pool = energy.Pool
	// BudgetModel computes the paper's budgets as functions of n and k.
	BudgetModel = energy.BudgetModel
)

// Unlimited is the budget value meaning "no cap".
const Unlimited = energy.Unlimited

// NewPool returns an adversary pool with the given aggregate budget.
func NewPool(budget int64) *Pool { return energy.NewPool(budget) }

// DefaultBudgets returns the paper's budget model with leading constant c
// for protocol parameter k.
func DefaultBudgets(c float64, k int) BudgetModel { return energy.DefaultBudgets(c, k) }

// Baselines (internal/baseline).
type (
	// BaselineResult reports a baseline protocol execution.
	BaselineResult = baseline.Result
	// KSYParams tunes the King–Saia–Young-style baseline.
	KSYParams = baseline.KSYParams
)

// Tracing (internal/trace).
type (
	// Tracer receives structured execution events (set Options.Tracer).
	Tracer = trace.Tracer
	// TextTracer renders a human-readable trace.
	TextTracer = trace.Text
	// JSONTracer emits NDJSON events.
	JSONTracer = trace.JSON
	// NopTracer ignores everything; embed it in custom tracers.
	NopTracer = trace.Nop
)

// NewTextTracer returns a human-readable tracer writing to w.
func NewTextTracer(w io.Writer) *TextTracer { return trace.NewText(w) }

// NewJSONTracer returns an NDJSON tracer writing to w.
func NewJSONTracer(w io.Writer) *JSONTracer { return trace.NewJSON(w) }

// Multi-hop extension (internal/multihop, the §5 open question).
type (
	// MultiHopOptions configures a cluster-pipeline execution.
	MultiHopOptions = multihop.Options
	// MultiHopResult is the end-to-end outcome.
	MultiHopResult = multihop.Result
	// HopResult summarizes one cluster's broadcast.
	HopResult = multihop.HopResult
)

// RunMultiHop executes ε-BROADCAST across a path of single-hop clusters,
// relaying m (still carrying Alice's authenticator) hop by hop.
func RunMultiHop(opts MultiHopOptions) (*MultiHopResult, error) {
	return multihop.Run(opts)
}

// RunNaive executes the naive always-on baseline against a T-slot jam.
func RunNaive(jamSlots, maxSlots int64) BaselineResult {
	return baseline.RunNaive(jamSlots, maxSlots)
}

// RunKSY executes the KSY'11-style baseline against a T-slot jam.
func RunKSY(seed uint64, jamSlots, maxSlots int64, params KSYParams) BaselineResult {
	return baseline.RunKSY(seed, jamSlots, maxSlots, params)
}
