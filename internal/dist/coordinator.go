package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"rcbcast/internal/scenario"
)

// Shard lifecycle phases, as reported by Metrics.
const (
	phasePending  = "pending"
	phaseAssigned = "assigned"
	phaseDone     = "done"
)

// shardState is one planned shard's mutable state. A shard is owned
// exclusively: by the worker loop that claimed it while an attempt
// runs (sent, sum — handed off through the scheduler's lock), and by
// the merge loop after lines closes (sum — handed off through the
// close). phase and attempts are additionally read by Metrics, so they
// live behind the small mutex.
type shardState struct {
	shard scenario.Shard
	// lines buffers the shard's result lines for the merge loop. Its
	// capacity is the shard's full trial count, so a producing worker
	// never blocks on it — the merge window (sched) is what bounds
	// total buffered memory, at WindowShards·ShardSize lines. Closed
	// exactly once, when the last line is buffered.
	lines chan []byte
	sent  int     // lines buffered so far (== trials folded into sum)
	sum   Summary // per-shard fold, merged in shard order

	mu       sync.Mutex
	phase    string
	attempts int // failed run attempts
}

func (st *shardState) setPhase(p string) {
	st.mu.Lock()
	st.phase = p
	st.mu.Unlock()
}

// runState is one sweep's execution context, created by Run and shared
// with every member loop spawned before or during it. Members joining
// mid-sweep attach to the same scheduler and wait group.
type runState struct {
	ctx      context.Context
	cancel   context.CancelFunc
	cfg      Config
	enc      json.RawMessage
	trials   int
	baseSeed uint64
	sched    *sched
	shards   []*shardState
	wg       sync.WaitGroup
}

// Coordinator distributes one sweep over an elastic worker pool and
// merges the results. Create with New, grow or shrink the pool with
// Join (workers also leave on their own by failing liveness probes),
// run with Run (one sweep per Coordinator), observe with Metrics and
// Members from any goroutine.
type Coordinator struct {
	cfg  Config
	logf func(string, ...any)

	mu       sync.Mutex
	members  map[string]*member
	run      *runState
	inflight map[string]int
	failErr  error

	totalTrials atomic.Int64
	merged      atomic.Int64
	retries     atomic.Int64
	joins       atomic.Int64
	leaves      atomic.Int64
	resumed     atomic.Int64 // shards restored from the frontier journal
}

// New validates the initial worker pool and returns a Coordinator. An
// empty pool is legal when workers will register later (Join); the
// sweep simply makes no progress until one does. Remaining Config
// defaults resolve at Run time (the shard-size heuristic needs the
// trial count).
func New(cfg Config) (*Coordinator, error) {
	c := &Coordinator{
		cfg:      cfg,
		members:  make(map[string]*member),
		inflight: make(map[string]int),
	}
	c.logf = func(format string, args ...any) {
		if cfg.Logf != nil {
			cfg.Logf(format, args...)
		}
	}
	for _, raw := range cfg.Workers {
		base, err := normalizeWorker(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := c.members[base]; !dup {
			c.members[base] = newMember(base)
		}
	}
	return c, nil
}

// fail records the run's first fatal error and stops everything.
func (c *Coordinator) fail(cancel context.CancelFunc, err error) {
	c.mu.Lock()
	if c.failErr == nil {
		c.failErr = err
	}
	c.mu.Unlock()
	cancel()
}

// Run executes the sweep: plan shards, dispatch them across the worker
// pool, and write the merged NDJSON — byte-identical to a
// single-machine scenario.Stream run — to out, returning the
// deterministically merged summary. Run blocks until the sweep
// completes or fails; ctx cancellation aborts it.
//
// With Config.Journal set, out must implement DurableOutput (an
// *os.File does): the merge frontier journals as it advances, and a
// Run over the same journal and output file after a crash — SIGKILL
// included — replays nothing that already merged, truncates any torn
// tail, and finishes the sweep with final bytes identical to an
// uninterrupted run.
func (c *Coordinator) Run(ctx context.Context, sc scenario.Scenario, trials int, baseSeed uint64, out io.Writer) (*Summary, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("dist: trials must be positive (got %d)", trials)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	enc, err := scenario.Encode(sc)
	if err != nil {
		return nil, fmt.Errorf("dist: encode scenario: %w", err)
	}
	c.mu.Lock()
	if c.run != nil {
		c.mu.Unlock()
		return nil, errors.New("dist: Run may only be called once per Coordinator")
	}
	pool := c.liveMembersLocked()
	c.mu.Unlock()
	cfg := c.cfg.withDefaults(trials, pool)

	// Open the frontier journal first: its header pins the shard size a
	// previous (possibly differently-sized) pool planned with.
	var fj *frontierJournal
	var dout DurableOutput
	if cfg.Journal != "" {
		var ok bool
		dout, ok = out.(DurableOutput)
		if !ok {
			return nil, errors.New("dist: Config.Journal requires the output to support ReadAt/Seek/Truncate (write to a file, not a pipe)")
		}
		fj, err = openFrontier(cfg.Journal, frontierFingerprint(enc, baseSeed), trials, baseSeed, cfg.ShardSize)
		if err != nil {
			return nil, err
		}
		defer fj.Close()
		cfg.ShardSize = fj.shardSize
	}

	plan := Plan(trials, cfg.ShardSize)
	shards := make([]*shardState, len(plan))
	for i, sh := range plan {
		shards[i] = &shardState{
			shard: sh,
			lines: make(chan []byte, sh.Len()),
			phase: phasePending,
		}
	}

	// Restore the merged prefix recorded by a previous coordinator
	// process: truncate the output back to the last durable shard
	// boundary and re-fold the retained lines into per-shard summaries.
	frontier := 0
	if fj != nil {
		frontier = fj.merged
		if frontier > len(plan) {
			return nil, fmt.Errorf("dist: frontier journal records %d merged shards but the plan has %d — delete the journal to restart", frontier, len(plan))
		}
		if err := refoldPrefix(dout, fj.bytes, plan, frontier, shards); err != nil {
			return nil, err
		}
		for i := 0; i < frontier; i++ {
			shards[i].phase = phaseDone
		}
		if err := dout.Truncate(fj.bytes); err != nil {
			return nil, fmt.Errorf("dist: truncate merged output to the journaled frontier: %w", err)
		}
		if _, err := dout.Seek(fj.bytes, io.SeekStart); err != nil {
			return nil, fmt.Errorf("dist: seek merged output: %w", err)
		}
		if frontier > 0 {
			c.resumed.Store(int64(frontier))
			c.merged.Store(int64(plan[frontier-1].Hi))
			c.logf("dist: resuming from frontier journal %s: %d/%d shards (%d trials, %d bytes) already merged",
				cfg.Journal, frontier, len(plan), plan[frontier-1].Hi, fj.bytes)
		}
	}

	run := &runState{
		cfg:      cfg,
		enc:      enc,
		trials:   trials,
		baseSeed: baseSeed,
		sched:    newSched(len(plan), cfg.WindowShards, frontier),
		shards:   shards,
	}
	run.ctx, run.cancel = context.WithCancel(ctx)
	defer run.cancel()

	c.mu.Lock()
	c.run = run
	for _, m := range c.members {
		if m.getState() != StateDead {
			c.startMemberLocked(run, m)
		}
	}
	c.mu.Unlock()
	c.totalTrials.Store(int64(trials))
	c.logf("dist: %d trials in %d shards of ≤%d across %d workers (window %d shards)",
		trials, len(plan), cfg.ShardSize, pool, cfg.WindowShards)

	cw := &countingWriter{w: out}
	if fj != nil {
		cw.n = fj.bytes
	}
	bw := bufio.NewWriterSize(cw, 64<<10)
	sum := &Summary{}
	mergeErr := c.merge(run, bw, cw, fj, sum, frontier)
	run.cancel()
	run.wg.Wait()

	c.mu.Lock()
	failErr := c.failErr
	c.mu.Unlock()
	switch {
	case failErr != nil:
		return nil, failErr
	case mergeErr != nil:
		return nil, mergeErr
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("dist: write merged output: %w", err)
	}
	c.logf("dist: sweep complete: %s", sum)
	return sum, nil
}

// merge is the single in-order consumer: drain shard 0's lines, then
// shard 1's, … — each shard's channel closes when its last line is
// buffered, and advancing the frontier widens the scheduler's claim
// window. Because trial indices are sweep-global and shards tile the
// sweep, the concatenation is exactly the single-machine byte stream.
// Shards below the restored frontier were already merged by a previous
// process: only their (re-folded) summaries are consumed. With a
// journal, each freshly merged shard is flushed to the output and then
// recorded, so the journal never claims bytes the output lacks.
func (c *Coordinator) merge(run *runState, out *bufio.Writer, cw *countingWriter, fj *frontierJournal, sum *Summary, frontier int) error {
	for i, st := range run.shards {
		if i < frontier {
			sum.merge(&st.sum)
			continue
		}
	drain:
		for {
			select {
			case line, ok := <-st.lines:
				if !ok {
					break drain
				}
				if _, err := out.Write(line); err != nil {
					err = fmt.Errorf("dist: write merged output: %w", err)
					c.fail(run.cancel, err)
					return err
				}
				c.merged.Add(1)
			case <-run.ctx.Done():
				return run.ctx.Err()
			}
		}
		sum.merge(&st.sum)
		if fj != nil {
			if err := out.Flush(); err != nil {
				err = fmt.Errorf("dist: write merged output: %w", err)
				c.fail(run.cancel, err)
				return err
			}
			if err := fj.record(i, cw.n); err != nil {
				c.fail(run.cancel, err)
				return err
			}
		}
		run.sched.advance()
	}
	return nil
}

// workerLoop is one worker slot: claim the lowest runnable shard, run
// it, repeat. The loop parks while its member drains and exits when
// the member dies or the sweep ends. Failed attempts requeue the shard
// immediately — any worker may reclaim it — while this slot backs off
// exponentially with deterministic jitter, so a mass failure neither
// delays reassignment nor resubmits in lockstep.
func (c *Coordinator) workerLoop(ctx context.Context, run *runState, m *member, w *workerClient) {
	consecutive := 0
	for {
		if !m.waitReady(ctx) {
			return
		}
		idx, ok, err := run.sched.claim(ctx)
		if err != nil || !ok {
			return
		}
		st := run.shards[idx]
		st.setPhase(phaseAssigned)
		c.addInflight(m.base, 1)
		runErr := w.runShard(ctx, st)
		c.addInflight(m.base, -1)

		if runErr == nil {
			st.setPhase(phaseDone)
			run.sched.markDone()
			consecutive = 0
			continue
		}
		if run.ctx.Err() != nil {
			return // the whole sweep is stopping
		}
		if ctx.Err() != nil {
			// Only this member was canceled (probe death): rebalance the
			// claimed shard onto the live pool without charging an
			// attempt — the shard did nothing wrong.
			st.setPhase(phasePending)
			run.sched.requeue(idx)
			return
		}
		st.mu.Lock()
		st.attempts++
		attempts := st.attempts
		st.phase = phasePending
		st.mu.Unlock()
		var perm *permanentError
		if errors.As(runErr, &perm) {
			c.fail(run.cancel, runErr)
			return
		}
		if attempts >= run.cfg.MaxAttempts {
			c.fail(run.cancel, fmt.Errorf("dist: shard %s failed %d attempts: %w", st.shard, attempts, runErr))
			return
		}
		c.retries.Add(1)
		c.logf("dist: shard %s attempt %d failed on %s: %v — requeued", st.shard, attempts, w.base, runErr)
		run.sched.requeue(idx)

		consecutive++
		backoff := run.cfg.Backoff << (consecutive - 1)
		if backoff > run.cfg.BackoffCap || backoff <= 0 {
			backoff = run.cfg.BackoffCap
		}
		select {
		case <-time.After(w.jit.scale(backoff)):
		case <-ctx.Done():
			return
		}
	}
}

func (c *Coordinator) addInflight(base string, d int) {
	c.mu.Lock()
	c.inflight[base] += d
	c.mu.Unlock()
}
