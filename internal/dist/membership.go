package dist

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Worker membership states, as reported by Metrics and /v1/workers.
const (
	// StateReady: the worker answers readiness probes and may claim
	// shards.
	StateReady = "ready"
	// StateDraining: the worker is alive but reports not-ready (its
	// /readyz answers 503 — a graceful shutdown in progress). Its
	// in-flight shards run to completion, but its slots claim nothing
	// new until it reports ready again.
	StateDraining = "draining"
	// StateDead: the worker missed its liveness deadline (or was
	// removed). Its slots are gone and its in-flight shards were
	// requeued onto the live pool. A dead worker rejoins only by
	// registering again.
	StateDead = "dead"
)

// member is one worker's membership record. Its state is written by
// the probe loop and by leave, and read by the worker loops (gating
// claims) and Metrics; watch is closed and replaced on every state
// change so waiters never poll.
type member struct {
	base string

	mu     sync.Mutex
	state  string
	watch  chan struct{}
	cancel context.CancelFunc // cancels the member's loops; set at start
}

func newMember(base string) *member {
	return &member{base: base, state: StateReady, watch: make(chan struct{})}
}

// setState transitions the member, returning whether anything changed.
// Dead is terminal: a revived worker gets a fresh member via Join.
func (m *member) setState(s string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateDead || m.state == s {
		return false
	}
	m.state = s
	close(m.watch)
	m.watch = make(chan struct{})
	return true
}

func (m *member) getState() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

func (m *member) setCancel(cancel context.CancelFunc) {
	m.mu.Lock()
	m.cancel = cancel
	m.mu.Unlock()
}

func (m *member) abort() {
	m.mu.Lock()
	cancel := m.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// waitReady blocks while the member is draining and returns true once
// it is ready; false means the member died or ctx was canceled.
func (m *member) waitReady(ctx context.Context) bool {
	for {
		m.mu.Lock()
		s, w := m.state, m.watch
		m.mu.Unlock()
		switch s {
		case StateReady:
			return true
		case StateDead:
			return false
		}
		select {
		case <-w:
		case <-ctx.Done():
			return false
		}
	}
}

// Join adds a worker to the pool — before Run (pre-seeding the pool,
// what Config.Workers does) or mid-sweep (the registration endpoint).
// Joining during a run spawns the worker's probe and claim loops
// immediately, so pending shards rebalance onto it with no further
// coordination: every slot pulls from the one shared scheduler.
// Re-joining a live worker is a no-op; re-joining a dead one revives
// it with a fresh membership record. Returns whether the pool changed.
func (c *Coordinator) Join(raw string) (bool, error) {
	base, err := normalizeWorker(raw)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[base]; ok && m.getState() != StateDead {
		return false, nil
	}
	m := newMember(base)
	c.members[base] = m
	c.joins.Add(1)
	c.logf("dist: worker %s joined the pool", base)
	if c.run != nil && c.run.ctx.Err() == nil {
		c.startMemberLocked(c.run, m)
	}
	return true, nil
}

// leave declares a worker dead: its loops are canceled, which aborts
// its in-flight attempts — each aborted shard requeues immediately
// (without burning an attempt) so the live pool rebalances at once
// instead of waiting out a stall timeout.
func (c *Coordinator) leave(m *member, reason string) {
	if !m.setState(StateDead) {
		return
	}
	c.leaves.Add(1)
	c.logf("dist: worker %s left the pool (%s) — rebalancing its shards", m.base, reason)
	m.abort()
}

// startMemberLocked spawns a member's probe loop and PerWorker claim
// loops under a per-member context — the cancellation scope that lets
// one worker's death abort exactly its own work. Callers hold c.mu.
func (c *Coordinator) startMemberLocked(run *runState, m *member) {
	mctx, cancel := context.WithCancel(run.ctx)
	m.setCancel(cancel)
	run.wg.Add(1 + run.cfg.PerWorker)
	go func() {
		defer run.wg.Done()
		c.probeLoop(mctx, run.cfg, m)
	}()
	for i := 0; i < run.cfg.PerWorker; i++ {
		w := &workerClient{
			base:     m.base,
			http:     run.cfg.Client,
			scenario: run.enc,
			trials:   run.trials,
			baseSeed: run.baseSeed,
			stall:    run.cfg.StallTimeout,
			jit:      newJitter(run.cfg.JitterSeed, m.base, i),
		}
		go func() {
			defer run.wg.Done()
			c.workerLoop(mctx, run, m, w)
		}()
	}
}

// Probe outcomes.
type probeResult int

const (
	probeReady probeResult = iota
	probeDraining
	probeFailed
)

// probeWorker issues one readiness probe. 200 means ready; 404 means a
// legacy worker without /readyz, treated as ready (liveness is all its
// answer proves); 503 means alive-but-draining; anything else — network
// errors and 5xx alike — is a failure that counts against the liveness
// deadline.
func probeWorker(ctx context.Context, client *http.Client, base string, timeout time.Duration) probeResult {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return probeFailed
	}
	resp, err := client.Do(req)
	if err != nil {
		return probeFailed
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNotFound:
		return probeReady
	case http.StatusServiceUnavailable:
		return probeDraining
	default:
		return probeFailed
	}
}

// probeLoop is a member's health monitor: probe every ProbeInterval,
// track the last success, and declare the worker dead once no probe
// has succeeded for LivenessDeadline — the replacement for discovering
// death only when a result stream stalls. A draining answer keeps the
// worker alive but parks its claim loops; recovery flips it back to
// ready automatically.
func (c *Coordinator) probeLoop(ctx context.Context, cfg Config, m *member) {
	lastOK := time.Now()
	t := time.NewTicker(cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		switch probeWorker(ctx, cfg.Client, m.base, cfg.ProbeTimeout) {
		case probeReady:
			lastOK = time.Now()
			if m.setState(StateReady) {
				c.logf("dist: worker %s is ready", m.base)
			}
		case probeDraining:
			lastOK = time.Now()
			if m.setState(StateDraining) {
				c.logf("dist: worker %s is draining — routing no new shards to it", m.base)
			}
		case probeFailed:
			if silent := time.Since(lastOK); silent > cfg.LivenessDeadline {
				c.leave(m, fmt.Sprintf("no successful probe for %v", silent.Round(time.Millisecond)))
				return
			}
		}
	}
}

// Members snapshots the pool: worker base URL → membership state.
func (c *Coordinator) Members() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.members))
	for base, m := range c.members {
		out[base] = m.getState()
	}
	return out
}

// liveMembersLocked counts non-dead members; callers hold c.mu.
func (c *Coordinator) liveMembersLocked() int {
	n := 0
	for _, m := range c.members {
		if m.getState() != StateDead {
			n++
		}
	}
	return n
}
