package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rcbcast/internal/scenario"
)

// submitShardBody builds a POST /v1/jobs body carrying a shard range.
func submitShardBody(t *testing.T, sc scenario.Scenario, trials int, sh scenario.Shard) []byte {
	t.Helper()
	raw, err := scenario.Encode(sc)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SubmitRequest{Scenario: raw, Trials: trials, Shard: &sh})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestShardJobIsByteSliceOfWholeSweep pins the identity the distributed
// coordinator depends on: a shard job's results are exactly lines
// [lo,hi) of the whole-sweep NDJSON, global trial indices included.
func TestShardJobIsByteSliceOfWholeSweep(t *testing.T) {
	m := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	sc := testScenario("shard-slice")
	const trials = 30
	want := bytes.SplitAfter(referenceNDJSON(t, sc, trials, 1), []byte("\n"))

	for _, sh := range []scenario.Shard{{Lo: 0, Hi: 9}, {Lo: 9, Hi: 21}, {Lo: 21, Hi: 30}} {
		code, st := postJob(t, ts, "alice", submitShardBody(t, sc, trials, sh))
		if code != http.StatusAccepted {
			t.Fatalf("submit shard %s: got %d, want 202", sh, code)
		}
		if st.Shard != sh {
			t.Fatalf("submit reply shard = %s, want %s", st.Shard, sh)
		}
		j, ok := m.Get(st.ID)
		if !ok {
			t.Fatalf("job %s not in manager", st.ID)
		}
		final := waitStatus(t, j, "shard done", stateIs(StateDone))
		if final.Done != sh.Len() {
			t.Fatalf("shard %s done = %d, want its own length %d", sh, final.Done, sh.Len())
		}

		code, got := getBody(t, ts, "/v1/jobs/"+st.ID+"/results")
		if code != http.StatusOK {
			t.Fatalf("results: got %d", code)
		}
		if expect := bytes.Join(want[sh.Lo:sh.Hi], nil); !bytes.Equal(got, expect) {
			t.Fatalf("shard %s results differ from reference slice (%d vs %d bytes)",
				sh, len(got), len(expect))
		}
	}
}

// TestShardJobIDsDistinct: the shard range is part of the job identity,
// so different ranges of the same sweep coexist on one worker, and a
// shard never collides with the whole-sweep job.
func TestShardJobIDsDistinct(t *testing.T) {
	m := newTestManager(t, Config{})

	sc := testScenario("shard-ids")
	whole, _, err := m.Submit("alice", sc, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := m.SubmitShard("alice", sc, 20, 1, scenario.Shard{Lo: 0, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.SubmitShard("alice", sc, 20, 1, scenario.Shard{Lo: 10, Hi: 20})
	if err != nil {
		t.Fatal(err)
	}
	if whole.ID == a.ID || whole.ID == b.ID || a.ID == b.ID {
		t.Fatalf("job ids collide: whole=%s a=%s b=%s", whole.ID, a.ID, b.ID)
	}

	// Resubmitting the same shard is idempotent, like whole-sweep jobs.
	a2, _, err := m.SubmitShard("alice", sc, 20, 1, scenario.Shard{Lo: 0, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a2.ID != a.ID {
		t.Fatalf("same shard resubmit minted a new job: %s vs %s", a2.ID, a.ID)
	}
}

// TestShardSubmitValidation: malformed ranges are rejected at the HTTP
// boundary with a 400, before a job exists.
func TestShardSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	sc := testScenario("shard-validate")
	for _, tc := range []struct {
		sh   scenario.Shard
		want string
	}{
		{scenario.Shard{Lo: -1, Hi: 5}, "shard"},
		{scenario.Shard{Lo: 5, Hi: 5}, "shard"},
		{scenario.Shard{Lo: 0, Hi: 11}, "shard"},
	} {
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs",
			bytes.NewReader(submitShardBody(t, sc, 10, tc.sh)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 512)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("shard %s: got %d, want 400", tc.sh, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), tc.want) {
			t.Fatalf("shard %s error %q lacks %q", tc.sh, body[:n], tc.want)
		}
	}
	if n := m.Metrics().Submitted; n != 0 {
		t.Fatalf("rejected shards counted as submissions: %d", n)
	}
}
