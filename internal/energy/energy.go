// Package energy implements the paper's unit-cost energy model.
//
// Sending, listening, jamming, and altering messages each cost one unit
// (§1.1 "Our Goal"). Every device owns a Meter charged against a budget;
// the adversary's devices share a Pool so that Carol can concentrate her
// Byzantine devices' combined energy on any schedule she likes, which is
// how the paper accounts her total spend T.
package energy

import (
	"errors"
	"fmt"
	"math"
)

// Op is a chargeable radio operation.
type Op uint8

const (
	// Send is a unit-cost transmission (message, NACK, or decoy).
	Send Op = iota + 1
	// Listen is a unit-cost receive slot (including CCA sampling).
	Listen
	// Jam is a unit-cost adversarial interference slot.
	Jam
	// Alter is a unit-cost adversarial tampering/spoofing operation.
	Alter
)

var opNames = [...]string{Send: "send", Listen: "listen", Jam: "jam", Alter: "alter"}

// String returns the lower-case operation name.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// ErrExhausted is returned when a charge would exceed the budget.
var ErrExhausted = errors.New("energy: budget exhausted")

// Unlimited is a budget value meaning "no cap". Meters and Pools created
// with it never return ErrExhausted.
const Unlimited = math.MaxInt64

// Meter tracks one device's spend against a budget. The zero value is an
// exhausted meter with zero budget; use NewMeter.
type Meter struct {
	budget int64
	spent  int64
	byOp   [5]int64
}

// NewMeter returns a meter with the given budget. Negative budgets are
// treated as zero.
func NewMeter(budget int64) *Meter {
	if budget < 0 {
		budget = 0
	}
	return &Meter{budget: budget}
}

// Reset re-arms the meter in place with a fresh budget, clearing all
// spend — the buffer-reuse hook for engines that recycle per-node state
// across trials. Negative budgets are treated as zero, as in NewMeter.
func (m *Meter) Reset(budget int64) {
	if budget < 0 {
		budget = 0
	}
	*m = Meter{budget: budget}
}

// Charge records one unit of op. It returns ErrExhausted, leaving the meter
// unchanged, if the budget does not cover it. Open-coded rather than
// ChargeN(op, 1) so the whole unit charge inlines into the engine's
// per-action loops.
func (m *Meter) Charge(op Op) error {
	if m.budget != Unlimited && m.spent >= m.budget {
		return m.exhausted(op, 1)
	}
	m.spent++
	if int(op) < len(m.byOp) {
		m.byOp[op]++
	}
	return nil
}

// ChargeN records n units of op atomically: either all n are charged or
// none are. n <= 0 is a no-op. The exhaustion path is split out so the
// hot all-is-well path stays inlinable — Charge sits inside the
// engine's per-action loops.
func (m *Meter) ChargeN(op Op, n int64) error {
	if n <= 0 {
		return nil
	}
	if m.budget != Unlimited && m.spent+n > m.budget {
		return m.exhausted(op, n)
	}
	m.spent += n
	if int(op) < len(m.byOp) {
		m.byOp[op] += n
	}
	return nil
}

// exhausted builds the (allocating) over-budget error; never on the
// charged path. Kept out of line so Charge itself stays within the
// inlining budget.
//
//go:noinline
func (m *Meter) exhausted(op Op, n int64) error {
	return fmt.Errorf("%w: %s x%d would exceed budget %d (spent %d)",
		ErrExhausted, op, n, m.budget, m.spent)
}

// CanAfford reports whether n more units fit in the budget.
func (m *Meter) CanAfford(n int64) bool {
	return m.budget == Unlimited || m.spent+n <= m.budget
}

// Spent returns total units charged.
func (m *Meter) Spent() int64 { return m.spent }

// SpentOn returns units charged to a specific operation.
func (m *Meter) SpentOn(op Op) int64 {
	if int(op) >= len(m.byOp) {
		return 0
	}
	return m.byOp[op]
}

// Budget returns the configured budget.
func (m *Meter) Budget() int64 { return m.budget }

// Remaining returns budget minus spend (Unlimited budgets return Unlimited).
func (m *Meter) Remaining() int64 {
	if m.budget == Unlimited {
		return Unlimited
	}
	return m.budget - m.spent
}

// Exhausted reports whether no further unit charge is possible.
func (m *Meter) Exhausted() bool { return !m.CanAfford(1) }

// Snapshot returns a copy of the meter's counters for reporting.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{
		Budget:  m.budget,
		Spent:   m.spent,
		Sends:   m.byOp[Send],
		Listens: m.byOp[Listen],
		Jams:    m.byOp[Jam],
		Alters:  m.byOp[Alter],
	}
}

// Snapshot is an immutable view of a meter.
type Snapshot struct {
	Budget  int64
	Spent   int64
	Sends   int64
	Listens int64
	Jams    int64
	Alters  int64
}

// Pool is the adversary's shared purse: Carol plus her f*n Byzantine
// devices. The paper lets Carol spend their combined budget on any jamming
// schedule (Lemma 11 sums the budgets), so the pool exposes only an
// aggregate. The zero value is an empty, exhausted pool.
type Pool struct {
	meter Meter
}

// NewPool returns a pool with the given aggregate budget.
func NewPool(budget int64) *Pool {
	return &Pool{meter: Meter{budget: maxInt64(budget, 0)}}
}

// NewAdversaryPool computes the paper's aggregate adversarial budget:
// Carol's individual budget plus byzantine devices each with deviceBudget.
// Any addend at Unlimited makes the pool unlimited.
func NewAdversaryPool(carolBudget int64, byzantineDevices int, deviceBudget int64) *Pool {
	if carolBudget == Unlimited || deviceBudget == Unlimited {
		return NewPool(Unlimited)
	}
	total := carolBudget + int64(byzantineDevices)*deviceBudget
	return NewPool(total)
}

// Reset re-arms the pool in place with a fresh aggregate budget,
// clearing all spend — the buffer-reuse hook for trial loops that give
// the adversary the same purse every trial. Negative budgets are
// treated as zero, as in NewPool.
func (p *Pool) Reset(budget int64) { p.meter.Reset(maxInt64(budget, 0)) }

// Charge draws n units of op from the pool.
func (p *Pool) Charge(op Op, n int64) error { return p.meter.ChargeN(op, n) }

// CanAfford reports whether n more units fit.
func (p *Pool) CanAfford(n int64) bool { return p.meter.CanAfford(n) }

// Spent returns total adversarial spend T (the quantity Theorem 1's bounds
// are stated against).
func (p *Pool) Spent() int64 { return p.meter.Spent() }

// SpentOn returns pool spend on one operation.
func (p *Pool) SpentOn(op Op) int64 { return p.meter.SpentOn(op) }

// Remaining returns the unspent aggregate budget.
func (p *Pool) Remaining() int64 { return p.meter.Remaining() }

// Budget returns the aggregate budget.
func (p *Pool) Budget() int64 { return p.meter.Budget() }

// Exhausted reports whether the pool cannot afford one more unit.
func (p *Pool) Exhausted() bool { return p.meter.Exhausted() }

// Snapshot returns the pool's counters.
func (p *Pool) Snapshot() Snapshot { return p.meter.Snapshot() }

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
