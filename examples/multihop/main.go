// Multihop: the paper's §5 open question, explored two ways on the one
// topology-aware kernel.
//
// First the cluster pipeline: a message crosses a path of single-hop
// clusters; each hop reruns ε-BROADCAST with an informed node of the
// previous cluster acting as the sender (m still carries Alice's
// authenticator, so relays verify). Carol may concentrate her entire
// budget on any one cluster — and buys exactly the delay she would have
// bought in a single-hop network.
//
// Then the lattice wave: one engine execution on the grid topology,
// where every node resolves reception against its Chebyshev
// neighborhood. The unmodified single-hop protocol carries the wave
// exactly k hops — which is precisely why the pipeline construction
// above is needed for longer paths.
//
//	go run ./examples/multihop
package main

import (
	"fmt"
	"log"

	"rcbcast"
)

func main() {
	const (
		n    = 512 // nodes per cluster
		hops = 5
	)

	fmt.Printf("relaying m across %d clusters of %d nodes each\n\n", hops, n)

	// Benign pipeline.
	benign, err := rcbcast.RunMultiHop(rcbcast.MultiHopOptions{
		Params: rcbcast.PracticalParams(n, 2),
		Hops:   hops,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— benign pipeline —")
	printHops(benign)

	// Carol drops a 16k pool entirely on the middle cluster. The
	// adversary is a declarative spec; MustNew mints the per-cluster
	// strategy instance.
	params := rcbcast.PracticalParams(n, 2)
	fullJam := rcbcast.AdversarySpec{Kind: "full"}
	attacked, err := rcbcast.RunMultiHop(rcbcast.MultiHopOptions{
		Params: params,
		Hops:   hops,
		Seed:   1,
		StrategyFor: func(hop int) rcbcast.Strategy {
			if hop == hops/2 {
				return fullJam.MustNew(params)
			}
			return nil
		},
		Pool: rcbcast.NewPool(1 << 14),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— full jammer concentrated on cluster %d (pool 16384) —\n", hops/2)
	printHops(attacked)

	fmt.Printf("\nend-to-end: %d → %d slots; only the attacked cluster slowed down,\n",
		benign.TotalSlots, attacked.TotalSlots)
	fmt.Println("and its delay matches what the same pool buys against a single-hop")
	fmt.Println("network — hop-by-hop relaying gives Carol no amplification (E12).")

	// The same kernel, sparse: a 16x16 lattice in ONE engine run. The
	// wave of informed rings stops at k hops from Alice's corner — the
	// measured reason the pipeline exists.
	wave, err := rcbcast.RunGridWave(rcbcast.GridWaveOptions{
		Params: rcbcast.PracticalParams(256, 2),
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— lattice wave: 16x16 grid, k=2, one kernel run —\n")
	fmt.Printf("reachable ceiling (k-hop ball): %d/256, informed %d\n",
		wave.Reachable, wave.Informed)
	for d, size := range wave.RingSize {
		if d > 4 {
			break
		}
		fmt.Printf("  ring %d: %2d/%2d informed\n", d, wave.RingInformed[d], size)
	}
	fmt.Println("the k=2 wave dies at ring 2 — longer paths need the relay pipeline.")
}

func printHops(res *rcbcast.MultiHopResult) {
	fmt.Printf("%5s  %10s  %8s  %10s  %12s  %8s\n",
		"hop", "informed", "rounds", "slots", "sender cost", "T spent")
	for _, h := range res.Hops {
		fmt.Printf("%5d  %9.1f%%  %8d  %10d  %12d  %8d\n",
			h.Hop, 100*h.InformedFrac, h.Rounds, h.Slots, h.SenderCost, h.AdversarySpent)
	}
	fmt.Printf("total: %d slots, reached=%t, end-to-end delivery %.1f%%\n",
		res.TotalSlots, res.Reached, 100*res.EndToEndFrac)
}
