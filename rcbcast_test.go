package rcbcast_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rcbcast"
)

// These tests exercise the public façade exactly the way a downstream
// user would, without touching internal packages.

func TestPublicQuickstart(t *testing.T) {
	res, err := rcbcast.Run(rcbcast.Options{
		Params: rcbcast.PracticalParams(256, 2),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 256 || !res.Completed {
		t.Fatalf("quickstart run: %+v", res)
	}
}

func TestPublicJammedRun(t *testing.T) {
	res, err := rcbcast.Run(rcbcast.Options{
		Params:   rcbcast.PracticalParams(256, 2),
		Seed:     2,
		Strategy: rcbcast.FullJam{},
		Pool:     rcbcast.NewPool(1 << 13),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdversarySpent == 0 {
		t.Fatal("jammer must spend")
	}
	if res.InformedFrac() < 0.9 {
		t.Fatalf("informed frac %v", res.InformedFrac())
	}
	// Resource competitiveness, the paper's headline, at the API level.
	if res.NodeCost.Median >= res.AdversarySpent {
		t.Fatalf("node median %d must be far below Carol's %d",
			res.NodeCost.Median, res.AdversarySpent)
	}
}

func TestPublicEnginesAgree(t *testing.T) {
	mk := func() rcbcast.Options {
		return rcbcast.Options{
			Params:   rcbcast.PracticalParams(128, 2),
			Seed:     3,
			Strategy: rcbcast.RandomJam{P: 0.4},
			Pool:     rcbcast.NewPool(5000),
		}
	}
	a, err := rcbcast.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := rcbcast.RunActors(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("public engines must agree")
	}
}

func TestPublicBudgets(t *testing.T) {
	bm := rcbcast.DefaultBudgets(2, 2)
	if bm.Node(10000) <= 0 || bm.Alice(10000) <= bm.Node(10000) {
		t.Fatal("budget model broken")
	}
	pool := bm.AdversaryPool(1024, 1.0)
	if pool.Budget() <= bm.Node(1024) {
		t.Fatal("adversary pool must dwarf a node budget")
	}
}

func TestPublicBaselines(t *testing.T) {
	nv := rcbcast.RunNaive(1000, 1<<20)
	if !nv.Delivered || nv.NodeCost != 1001 {
		t.Fatalf("naive baseline: %+v", nv)
	}
	ksy := rcbcast.RunKSY(1, 1000, 1<<20, rcbcast.KSYParams{})
	if !ksy.Delivered {
		t.Fatalf("KSY baseline: %+v", ksy)
	}
}

func TestPublicCustomStrategy(t *testing.T) {
	// A downstream user can implement Strategy against the façade types.
	var custom rcbcast.Strategy = customJammer{}
	res, err := rcbcast.Run(rcbcast.Options{
		Params:   rcbcast.PracticalParams(128, 2),
		Seed:     5,
		Strategy: custom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StrategyName != "custom-test-jammer" {
		t.Fatalf("strategy name %q", res.StrategyName)
	}
}

type customJammer struct{ rcbcast.Null }

func (customJammer) Name() string { return "custom-test-jammer" }

func TestPublicMultiHop(t *testing.T) {
	res, err := rcbcast.RunMultiHop(rcbcast.MultiHopOptions{
		Params: rcbcast.PracticalParams(128, 2),
		Hops:   3,
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached || len(res.Hops) != 3 {
		t.Fatalf("multihop: %+v", res)
	}
}

func TestPublicTracers(t *testing.T) {
	var text, ndjson strings.Builder
	_, err := rcbcast.Run(rcbcast.Options{
		Params: rcbcast.PracticalParams(64, 2),
		Seed:   11,
		Tracer: rcbcast.NewTextTracer(&text),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "run complete") {
		t.Fatal("text tracer produced nothing")
	}
	_, err = rcbcast.Run(rcbcast.Options{
		Params: rcbcast.PracticalParams(64, 2),
		Seed:   11,
		Tracer: rcbcast.NewJSONTracer(&ndjson),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ndjson.String(), `"event":"done"`) {
		t.Fatal("json tracer produced nothing")
	}
}

func TestPublicPaperParamsBenign(t *testing.T) {
	// The paper-exact configuration (Figure 1 probabilities, absolute
	// quiet test, round 1 start): in a benign network the clamped early
	// rounds make delivery immediate — every node is informed and
	// terminated within round 1 — while Alice honours the §2.3 rule of
	// running until round ⌈3·lg ln n⌉ before applying her quiet test.
	res, err := rcbcast.Run(rcbcast.Options{
		Params: rcbcast.PaperParams(512, 2),
		Seed:   13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Informed != 512 || !res.Completed {
		t.Fatalf("paper-exact benign run: %+v", res)
	}
	wantRound := 8 // ceil(3 * lg ln 512)
	if res.Alice.Round != wantRound {
		t.Fatalf("alice terminated in round %d, want the §2.3 minimum %d", res.Alice.Round, wantRound)
	}
}

func TestPublicPaperParamsJammed(t *testing.T) {
	// Paper-exact mode against a budgeted full jammer: the absolute
	// quiet test holds (jammed request phases are noisy, so nobody
	// falsely terminates) and delivery completes after the pool drains.
	res, err := rcbcast.Run(rcbcast.Options{
		Params:   rcbcast.PaperParams(512, 2),
		Seed:     17,
		Strategy: rcbcast.FullJam{},
		Pool:     rcbcast.NewPool(4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedFrac() < 0.9 || !res.Completed {
		t.Fatalf("paper-exact jammed run: informed=%v completed=%t", res.InformedFrac(), res.Completed)
	}
}

func TestPublicVariantAndQuietConstants(t *testing.T) {
	p := rcbcast.PaperParams(256, 2)
	if p.Variant != rcbcast.VariantK2Exact || p.Quiet != rcbcast.QuietAbsolute {
		t.Fatalf("paper params: %+v", p)
	}
	q := rcbcast.PracticalParams(256, 3)
	if q.Variant != rcbcast.VariantGeneralK || q.Quiet != rcbcast.QuietFraction {
		t.Fatalf("practical params: %+v", q)
	}
	if rcbcast.Unlimited <= 0 {
		t.Fatal("Unlimited must be positive")
	}
}

func TestPublicScenarioSurface(t *testing.T) {
	// The declarative path: a scenario value runs directly...
	sc := rcbcast.Scenario{
		N: 96, K: 2, Seed: 19,
		Adversary: rcbcast.AdversarySpec{Kind: "full"},
		Budget:    rcbcast.BudgetSpec{Pool: 2048},
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.StrategyName != "full-jam" || res.AdversarySpent == 0 {
		t.Fatalf("scenario run: %q spent %d", res.StrategyName, res.AdversarySpent)
	}
	// ...round-trips through JSON...
	data, err := rcbcast.EncodeScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := rcbcast.DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := decoded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.AdversarySpent != res.AdversarySpent || res2.Informed != res.Informed {
		t.Fatal("decoded scenario ran differently")
	}
	// ...and the registry, flag syntax, and kind listing are reachable.
	if len(rcbcast.Scenarios()) == 0 || len(rcbcast.ScenarioNames()) == 0 || len(rcbcast.AdversaryKinds()) == 0 {
		t.Fatal("scenario registries empty")
	}
	named, ok := rcbcast.LookupScenario("partition-5%")
	if !ok {
		t.Fatal("named scenario missing")
	}
	named.N = 96
	if _, err := named.Run(); err != nil {
		t.Fatal(err)
	}
	spec, err := rcbcast.ParseAdversary("random:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "random" || spec.P != 0.3 {
		t.Fatalf("ParseAdversary: %+v", spec)
	}
}

func TestPublicAdversarySurface(t *testing.T) {
	// Exercise each re-exported strategy end to end at small n.
	params := rcbcast.PracticalParams(96, 2)
	params.MaxRound = params.StartRound + 2
	strategies := []rcbcast.Strategy{
		rcbcast.Null{},
		rcbcast.FullJam{},
		rcbcast.RandomJam{P: 0.3},
		rcbcast.Bursty{Burst: 8, Gap: 8},
		rcbcast.PhaseBlocker{BlockInform: true, Params: &params},
		&rcbcast.PartitionBlocker{Stranded: func(n int) bool { return n < 4 }},
		&rcbcast.NackSpoofer{Rate: 0.3, MaxRounds: 1},
		rcbcast.ReactiveJammer{},
	}
	for _, s := range strategies {
		res, err := rcbcast.Run(rcbcast.Options{
			Params:        params,
			Seed:          19,
			Strategy:      s,
			Pool:          rcbcast.NewPool(2048),
			AllowReactive: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.StrategyName != s.Name() {
			t.Fatalf("strategy name mismatch: %q vs %q", res.StrategyName, s.Name())
		}
	}
}

func TestPublicStreamingSession(t *testing.T) {
	// The streaming path end to end through the façade: one scenario,
	// one pass, four composed sinks.
	sc := rcbcast.Scenario{
		N: 96, K: 2,
		Adversary: rcbcast.AdversarySpec{Kind: "full"},
		Budget:    rcbcast.BudgetSpec{Pool: 2048},
	}
	const trials = 8
	var ndjson, progress strings.Builder
	fold := rcbcast.NewFoldSink(trials, func(r *rcbcast.Result) float64 { return r.InformedFrac() })
	top := rcbcast.NewTopKSink(2, func(r *rcbcast.Result) float64 { return float64(r.AdversarySpent) })
	seen := 0
	err := sc.Stream(context.Background(), 4, 1, 0, trials,
		fold, top,
		rcbcast.NewNDJSONSink(&ndjson),
		rcbcast.NewProgressSink(&progress, trials, 4),
		rcbcast.FuncSink(func(i int, r *rcbcast.Result) error {
			if i != seen {
				t.Fatalf("delivery out of order: %d at position %d", i, seen)
			}
			seen++
			return nil
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if seen != trials {
		t.Fatalf("delivered %d of %d trials", seen, trials)
	}
	if fold.Mean(0, 0) <= 0.9 {
		t.Fatalf("fold mean informed frac %v", fold.Mean(0, 0))
	}
	if got := top.Results(); len(got) != 2 || got[0].Result == nil {
		t.Fatalf("topk: %+v", got)
	}
	if lines := strings.Count(ndjson.String(), "\n"); lines != trials {
		t.Fatalf("NDJSON emitted %d lines", lines)
	}
	if !strings.Contains(progress.String(), "8/8 trials (100.0%)") {
		t.Fatalf("progress output %q", progress.String())
	}
}

func TestPublicStreamCancellation(t *testing.T) {
	sc := rcbcast.Scenario{
		N: 96, K: 2,
		Adversary: rcbcast.AdversarySpec{Kind: "full"},
		Budget:    rcbcast.BudgetSpec{Pool: 2048},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := sc.Stream(ctx, 2, 1, 0, 16, rcbcast.FuncSink(func(int, *rcbcast.Result) error { return nil }))
	var pe *rcbcast.PartialError
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want façade *PartialError wrapping Canceled, got %v", err)
	}
	// The engine-level typed error is reachable too.
	_, err = rcbcast.RunContext(ctx, rcbcast.Options{Params: rcbcast.PracticalParams(64, 2), Seed: 1})
	var pre *rcbcast.PartialRunError
	if !errors.As(err, &pre) {
		t.Fatalf("want *PartialRunError, got %v", err)
	}
}

func TestPublicCheckpointResume(t *testing.T) {
	sc := rcbcast.Scenario{
		N: 64, K: 2,
		Adversary: rcbcast.AdversarySpec{Kind: "full"},
		Budget:    rcbcast.BudgetSpec{Pool: 1024},
	}
	specs := make([]rcbcast.TrialSpec, 5)
	for i := range specs {
		spec, err := sc.TrialSpec(rcbcast.TrialSeed(1, i))
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = spec
	}
	var want strings.Builder
	if err := rcbcast.Stream(context.Background(), 2, specs, rcbcast.NewNDJSONSink(&want)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := rcbcast.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := rcbcast.StreamCheckpointed(context.Background(), 2, specs, cp, rcbcast.NewNDJSONSink(&got)); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatal("checkpointed stream output diverges from plain stream")
	}
	// Reopen: fully journaled, so the sweep replays without re-running.
	cp2, err := rcbcast.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Done() != len(specs) {
		t.Fatalf("journal covers %d of %d trials", cp2.Done(), len(specs))
	}
}
