// Package msg defines the over-the-air frames of the simulated network and
// the partially-authenticated Byzantine model of §1.1: Alice's messages can
// be authenticated (so tampering with m or spoofing Alice is detectable),
// but ordinary nodes cannot be, so Carol may spoof node traffic such as
// NACK retransmission requests.
//
// Authentication is HMAC-SHA256 over the payload under Alice's key, which
// every receiver knows (the paper assumes scalable dissemination of a small
// number of public keys; any unforgeable tag gives the analysis what it
// needs, see DESIGN.md §1).
package msg

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Kind discriminates frame types on the channel.
type Kind uint8

const (
	// KindData carries the broadcast message m from Alice (or a relaying
	// informed node).
	KindData Kind = iota + 1
	// KindNack is an uninformed node's retransmission request.
	KindNack
	// KindDecoy is cover traffic from the §4.1 reactive-adversary defence.
	// Its content is indistinguishable from KindData at the RSSI level.
	KindDecoy
	// KindSpoof is adversarial garbage injected by Byzantine devices. It
	// fails authentication when it imitates Alice.
	KindSpoof
)

var kindNames = [...]string{
	KindData:  "data",
	KindNack:  "nack",
	KindDecoy: "decoy",
	KindSpoof: "spoof",
}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Frame is one slot's transmission as observed by a receiver.
type Frame struct {
	Kind    Kind
	Payload []byte
	// Tag is the authenticator; only frames genuinely produced with
	// Alice's key verify.
	Tag [sha256.Size]byte
	// From is the simulator-level sender ID (SenderAlice or a node index).
	// Real receivers cannot trust this field — that is the point of the
	// authenticator — but the simulator uses it for accounting.
	From int
}

// SenderAlice is the reserved From value for Alice.
const SenderAlice = -1

// Authenticator holds Alice's symmetric key and mints/validates tags.
// The zero value uses an all-zero key and is usable in tests.
type Authenticator struct {
	key [32]byte
}

// NewAuthenticator derives a key from a seed. Simulation-grade: the seed is
// expanded with SHA-256, which is plenty for an unforgeable-tag model.
func NewAuthenticator(seed uint64) *Authenticator {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	a := &Authenticator{}
	a.key = sha256.Sum256(buf[:])
	return a
}

// Sign returns a data frame for payload, tagged under Alice's key.
func (a *Authenticator) Sign(payload []byte) Frame {
	f := Frame{Kind: KindData, Payload: append([]byte(nil), payload...), From: SenderAlice}
	f.Tag = a.tag(f.Payload)
	return f
}

// Verify reports whether the frame is an authentic data frame from Alice:
// correct kind and a valid tag over the payload. Relay frames produced by
// informed nodes carry Alice's original tag and therefore verify too.
func (a *Authenticator) Verify(f Frame) bool {
	if f.Kind != KindData {
		return false
	}
	want := a.tag(f.Payload)
	return hmac.Equal(want[:], f.Tag[:])
}

func (a *Authenticator) tag(payload []byte) [sha256.Size]byte {
	mac := hmac.New(sha256.New, a.key[:])
	mac.Write(payload)
	var out [sha256.Size]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Relay returns a copy of an authentic frame re-sent by node from. The tag
// is preserved, so the relay still verifies.
func Relay(f Frame, from int) Frame {
	f.From = from
	return f
}

// Nack returns a retransmission-request frame from a node. NACKs carry no
// authenticator — nodes cannot be authenticated in this model.
func Nack(from int) Frame {
	return Frame{Kind: KindNack, From: from}
}

// Decoy returns a cover-traffic frame from a node (§4.1).
func Decoy(from int) Frame {
	return Frame{Kind: KindDecoy, From: from}
}

// SpoofData returns a Byzantine frame that imitates a data frame but cannot
// carry a valid tag (the adversary does not know Alice's key). Receivers
// that Verify will reject it; the slot still reads as noisy channel
// activity.
func SpoofData(from int, payload []byte) Frame {
	f := Frame{Kind: KindSpoof, Payload: append([]byte(nil), payload...), From: from}
	// Deliberately garbage tag: flip of a real-looking digest.
	d := sha256.Sum256(payload)
	for i := range d {
		d[i] ^= 0xff
	}
	f.Tag = d
	return f
}

// SpoofNack returns a Byzantine NACK used to trick Alice into continuing
// (§2.2's spoofing attack). Indistinguishable from a genuine NACK.
func SpoofNack(from int) Frame {
	return Frame{Kind: KindNack, From: from}
}
