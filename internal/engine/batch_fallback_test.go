package engine

import (
	"fmt"
	"reflect"
	"testing"

	"rcbcast/internal/rng"
)

// TestBatchNoIndexMatchesScalar forces every sparse lane onto the
// record-walk fallback (BatchScratch.noRecvIndex) and pins it against
// the scalar engine over the full behavioural surface — the foil that
// keeps the reception-index path honest: both sparse reception
// implementations must agree byte for byte with the same oracle, so a
// divergence isolates which of the two drifted.
func TestBatchNoIndexMatchesScalar(t *testing.T) {
	const width = 4
	for name, mk := range equivalenceConfigs() {
		for _, tp := range batchTopos {
			if tp.spec.IsClique() {
				continue // dense lanes never consult the reception index
			}
			t.Run(fmt.Sprintf("%s/%s", name, tp.name), func(t *testing.T) {
				scalar := make([]*Result, width)
				for lane := 0; lane < width; lane++ {
					res, err := Run(batchLaneOptions(mk, tp.spec, lane))
					if err != nil {
						t.Fatal(err)
					}
					scalar[lane] = res
				}
				opts := make([]Options, width)
				for lane := range opts {
					opts[lane] = batchLaneOptions(mk, tp.spec, lane)
				}
				bs := NewBatchScratch()
				bs.noRecvIndex = true
				batch, err := RunBatch(opts, bs)
				if err != nil {
					t.Fatal(err)
				}
				for lane := range batch {
					if !reflect.DeepEqual(scalar[lane], batch[lane]) {
						t.Fatalf("lane %d diverged on the no-index fallback:\nscalar: %+v\nbatch:  %+v",
							lane, scalar[lane], batch[lane])
					}
				}
			})
		}
	}
}

// TestBatchNoGeoBlock8MatchesScalar re-runs a slice of the batch
// differential with the assembly draw kernel force-disabled in process,
// pinning the pure-Go block-draw path against the scalar engine even on
// hosts that have the kernel. CI additionally runs the full batch
// byte-identity suite under RCBCAST_NO_GEOBLOCK8=1; this in-process
// variant keeps the coupling visible to a plain `go test`.
func TestBatchNoGeoBlock8MatchesScalar(t *testing.T) {
	was := rng.SetGeoBlock8(false)
	defer rng.SetGeoBlock8(was)
	const width = 4
	for _, name := range []string{"benign", "full-jam", "reactive-decoy", "budgets"} {
		mk, ok := equivalenceConfigs()[name]
		if !ok {
			t.Fatalf("missing equivalence config %q", name)
		}
		for _, tp := range batchTopos {
			t.Run(fmt.Sprintf("%s/%s", name, tp.name), func(t *testing.T) {
				scalar := make([]*Result, width)
				for lane := 0; lane < width; lane++ {
					res, err := Run(batchLaneOptions(mk, tp.spec, lane))
					if err != nil {
						t.Fatal(err)
					}
					scalar[lane] = res
				}
				opts := make([]Options, width)
				for lane := range opts {
					opts[lane] = batchLaneOptions(mk, tp.spec, lane)
				}
				batch, err := RunBatch(opts, nil)
				if err != nil {
					t.Fatal(err)
				}
				for lane := range batch {
					if !reflect.DeepEqual(scalar[lane], batch[lane]) {
						t.Fatalf("lane %d diverged with the draw kernel disabled:\nscalar: %+v\nbatch:  %+v",
							lane, scalar[lane], batch[lane])
					}
				}
			})
		}
	}
}
