// Package adversary implements Carol and her f·n Byzantine devices.
//
// Carol plans one phase at a time. Before each phase the engine hands the
// installed Strategy the phase descriptor plus the public history of the
// execution so far (she is *adaptive*: full information about past
// behaviour, §1.1). A strategy that also implements Reactive is shown the
// current phase's RSSI activity bitmap — which slots carry correct-side
// transmissions, but never their content — matching the §4.1 reactive
// model. The plan it returns commits, for every slot of the phase, whether
// to jam, which listeners the jam disrupts (n-uniform targeting), and any
// spoofed frames to inject.
//
// Energy is enforced by the engine, not trusted to strategies: plans are
// charged against the adversary Pool in slot order and truncated when the
// pool runs dry.
package adversary

import (
	"math/bits"
	"slices"
	"sync"

	"rcbcast/internal/bitset"
	"rcbcast/internal/msg"
)

// Bitmap is a fixed-length bitset over the slots of one phase — a thin
// slot-vocabulary veneer over bitset.Set, the word-level substrate it
// shares with the batched engine kernel's reception state. The zero
// value is an empty bitmap; size it with NewBitmap or Reset.
type Bitmap struct {
	bs bitset.Set
}

// NewBitmap returns an all-zero bitmap over n slots.
func NewBitmap(n int) *Bitmap {
	b := &Bitmap{}
	b.Reset(n)
	return b
}

// Reset re-sizes the bitmap to n all-zero slots in place, reusing the
// word buffer when it is large enough — the engine recycles one bitmap
// value across phases (and, via its Scratch, across runs) this way.
func (b *Bitmap) Reset(n int) { b.bs.Reset(n) }

// Len returns the number of slots.
func (b *Bitmap) Len() int { return b.bs.Len() }

// Set marks slot; out-of-range slots are ignored.
func (b *Bitmap) Set(slot int) { b.bs.Set(slot) }

// Clear unmarks slot.
func (b *Bitmap) Clear(slot int) { b.bs.Clear(slot) }

// Get reports whether slot is marked.
func (b *Bitmap) Get(slot int) bool { return b.bs.Get(slot) }

// Count returns the number of marked slots (a word-parallel popcount).
func (b *Bitmap) Count() int { return b.bs.Count() }

// NextSet returns the first marked slot at or after slot, or -1 when
// none remains. Reactive strategies walk only the active slots of a
// phase this way — zero words are skipped whole — instead of testing
// every slot.
func (b *Bitmap) NextSet(slot int) int { return b.bs.NextSet(slot) }

// OrBits folds the marked bits of s into the bitmap. The lengths must
// match; the batch kernel derives the reactive RSSI view this way (one
// word-level union of the busy set instead of a per-dirty-slot loop).
func (b *Bitmap) OrBits(s *bitset.Set) { b.bs.Or(s) }

// Injection is a spoofed frame the adversary transmits in a slot. It
// occupies the channel like any transmission: a solo injection is received
// (and fails authentication if it imitates Alice); otherwise it collides.
type Injection struct {
	Slot  int
	Frame msg.Frame
}

// Plan is the adversary's committed behaviour for one phase.
type Plan struct {
	length     int
	jam        Bitmap
	disrupt    func(slot, listener int) bool
	injections []Injection
}

// planPool recycles plans across phases and runs. Strategies allocate a
// plan per phase through NewPlan; the engine hands each plan back via
// Release once the phase's listens are resolved, so the steady-state
// allocation rate of a tight trial loop is zero however many phases it
// executes. A plan carries no state between uses — NewPlan re-zeroes the
// jam bitmap, injections, and targeting predicate.
var planPool = sync.Pool{New: func() any { return new(Plan) }}

// NewPlan returns an empty plan for a phase of the given length.
func NewPlan(length int) *Plan {
	p := planPool.Get().(*Plan)
	if length < 0 {
		length = 0
	}
	p.length = length
	p.jam.Reset(length)
	p.disrupt = nil
	p.injections = p.injections[:0]
	return p
}

// Release returns the plan to the allocation pool. Only the engine calls
// it, after the phase the plan commits is fully resolved; a released
// plan (and any slice obtained from its Injections) must not be used
// again.
func (p *Plan) Release() { planPool.Put(p) }

// Length returns the phase length the plan was built for.
func (p *Plan) Length() int { return p.length }

// Jam marks a slot for jamming.
func (p *Plan) Jam(slot int) { p.jam.Set(slot) }

// JamRange marks slots [from, to) for jamming. Interior words of the
// mask are filled whole, so a phase-wide jam (FullJam's every phase)
// costs length/64 stores rather than a read-modify-write per slot.
func (p *Plan) JamRange(from, to int) {
	if to > p.length {
		to = p.length
	}
	p.jam.bs.SetRange(from, to)
}

// Unjam clears a slot, e.g. during budget truncation.
func (p *Plan) Unjam(slot int) { p.jam.Clear(slot) }

// Jammed reports whether the plan jams the slot.
func (p *Plan) Jammed(slot int) bool { return p.jam.Get(slot) }

// JamCount returns the number of jammed slots (the plan's jam cost).
func (p *Plan) JamCount() int { return p.jam.Count() }

// SetDisrupt installs the n-uniform targeting predicate: which listeners
// perceive a jammed slot as noise. nil (the default) disrupts everyone.
func (p *Plan) SetDisrupt(f func(slot, listener int) bool) { p.disrupt = f }

// Disrupts reports whether a jam in the slot disrupts the listener. Only
// meaningful when Jammed(slot).
func (p *Plan) Disrupts(slot, listener int) bool {
	if p.disrupt == nil {
		return true
	}
	return p.disrupt(slot, listener)
}

// Inject schedules a spoofed frame. Injections outside [0, length) are
// dropped.
func (p *Plan) Inject(slot int, f msg.Frame) {
	if slot < 0 || slot >= p.length {
		return
	}
	p.injections = append(p.injections, Injection{Slot: slot, Frame: f})
}

// Injections returns the plan's spoofed frames sorted by slot. The
// returned slice is owned by the plan.
func (p *Plan) Injections() []Injection {
	// slices.SortStableFunc rather than sort.SliceStable: no reflection
	// swapper, no per-call closure allocation.
	slices.SortStableFunc(p.injections, func(a, b Injection) int { return a.Slot - b.Slot })
	return p.injections
}

// TruncateJamsAfter keeps only the first keep jammed slots (in slot
// order), clearing the rest. Used by the engine when the pool cannot
// afford the full plan. It returns the number of jams kept.
func (p *Plan) TruncateJamsAfter(keep int64) int64 {
	if keep < 0 {
		keep = 0
	}
	var kept int64
	words := p.jam.bs.Words()
	for w := range words {
		word := words[w]
		if word == 0 {
			continue
		}
		if kept >= keep {
			words[w] = 0
			continue
		}
		c := int64(bits.OnesCount64(word))
		if kept+c <= keep {
			kept += c
			continue
		}
		// Keep only the lowest (keep - kept) set bits of this word.
		var newWord uint64
		for kept < keep {
			low := word & (-word)
			newWord |= low
			word &^= low
			kept++
		}
		words[w] = newWord
	}
	return kept
}

// TruncateInjectionsAfter keeps only the first keep injections in slot
// order and drops the rest, returning how many remain.
func (p *Plan) TruncateInjectionsAfter(keep int64) int64 {
	inj := p.Injections() // sorts
	if keep < 0 {
		keep = 0
	}
	if int64(len(inj)) > keep {
		p.injections = inj[:keep]
	}
	return int64(len(p.injections))
}
