package sink

import (
	"bytes"
	"testing"
	"time"
)

// TestProgressEveryThrottlesAndReportsRate drives the time-throttled
// mode on an injected clock: one line per interval at most, each with
// the observed trials/s and, mid-sweep, an ETA.
func TestProgressEveryThrottlesAndReportsRate(t *testing.T) {
	var buf bytes.Buffer
	cur := time.Unix(1000, 0)
	p := NewProgressEvery(&buf, 10, time.Second)
	p.now = func() time.Time { return cur }

	for i := 0; i < 10; i++ {
		if err := p.Trial(0, nil); err != nil {
			t.Fatal(err)
		}
		cur = cur.Add(250 * time.Millisecond)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	want := "progress: 5/10 trials (50.0%) 5.0 trials/s eta 1s\n" +
		"progress: 9/10 trials (90.0%) 4.5 trials/s eta 0s\n" +
		"progress: 10/10 trials (100.0%) 4.0 trials/s\n"
	if buf.String() != want {
		t.Fatalf("time-mode progress lines:\n%swant:\n%s", buf.String(), want)
	}
}

// TestProgressEveryUnknownTotal omits percentages and ETA when the
// sweep length is unknown.
func TestProgressEveryUnknownTotal(t *testing.T) {
	var buf bytes.Buffer
	cur := time.Unix(0, 0)
	p := NewProgressEvery(&buf, 0, time.Second)
	p.now = func() time.Time { return cur }
	for i := 0; i < 3; i++ {
		if err := p.Trial(0, nil); err != nil {
			t.Fatal(err)
		}
		cur = cur.Add(time.Second)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "progress: 2 trials 2.0 trials/s\nprogress: 3 trials 1.5 trials/s\n"
	if buf.String() != want {
		t.Fatalf("unknown-total progress lines:\n%swant:\n%s", buf.String(), want)
	}
}

func TestRateAndETA(t *testing.T) {
	start := time.Unix(100, 0)
	if r := Rate(50, start, start.Add(10*time.Second)); r != 5 {
		t.Fatalf("Rate = %v, want 5", r)
	}
	if r := Rate(50, time.Time{}, start); r != 0 {
		t.Fatalf("Rate with zero start = %v, want 0", r)
	}
	if r := Rate(0, start, start.Add(time.Second)); r != 0 {
		t.Fatalf("Rate with no trials = %v, want 0", r)
	}
	if r := Rate(5, start, start); r != 0 {
		t.Fatalf("Rate over an empty span = %v, want 0", r)
	}
	if eta := ETA(50, 100, 5); eta != 10*time.Second {
		t.Fatalf("ETA = %v, want 10s", eta)
	}
	if eta := ETA(100, 100, 5); eta != 0 {
		t.Fatalf("ETA of a finished sweep = %v, want 0", eta)
	}
	if eta := ETA(10, 100, 0); eta != 0 {
		t.Fatalf("ETA with no rate = %v, want 0", eta)
	}
}
