// Package multihop extends ε-BROADCAST to multi-hop networks — the open
// question the paper poses in §5 ("whether these resource-competitive
// results have an analogue in multi-hop WSNs") — built entirely on the
// engine's one topology-aware kernel (internal/topology, DESIGN.md §9).
// The package carries no execution code of its own: it is orchestration
// and measurement over engine runs.
//
// Two constructions are provided:
//
// # The cluster pipeline (Run)
//
// A path of H single-hop clusters, each with n correct nodes on its own
// channel — an explicit clique topology cell; spatial reuse keeps
// adjacent clusters from interfering, as in cell-based MAC schemes.
// Cluster 0 is seeded by Alice. When cluster h reaches its (1-ε)
// delivery, one of its informed boundary nodes becomes the sender for
// cluster h+1 — this preserves the authentication story, because m
// carries Alice's tag and therefore any relay of it verifies
// (msg.Relay). The relay sender runs Alice's side of the protocol and
// so inherits her Õ(T^{1/(k+1)}) cost bound against a jammer spending T
// in that cluster.
//
// The resource-competitive consequences measured by experiment E12:
//
//   - latency is additive in hops (benign clusters cost O(first-round)
//     each) and Carol concentrating her whole budget on one cluster buys
//     the same delay she would in a single-hop network — no multi-hop
//     amplification;
//   - per-node cost is independent of H (each node participates in one
//     cluster only);
//   - stranding compounds multiplicatively: each hop can lose an
//     ε-fraction, so the end-to-end guarantee is (1-ε)^H, matching the
//     intuition that almost-everywhere guarantees weaken along paths.
//
// # The lattice wave (RunGrid)
//
// One engine execution on topology.Grid: every node resolves reception
// against its Chebyshev neighborhood and the broadcast crosses the
// lattice as a wave of informed rings. The unmodified single-hop
// protocol carries the wave exactly k hops — nodes informed in the
// final propagation step never relay (core.Params.SendStep) — so the
// ring profile RunGrid reports makes the protocol's single-hop design
// assumption measurable, and the pipeline above remains the
// construction that crosses arbitrarily long paths.
package multihop

import (
	"errors"
	"fmt"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/engine"
	"rcbcast/internal/rng"
	"rcbcast/internal/topology"
	"rcbcast/internal/trace"
)

// Options configures a multi-hop execution.
type Options struct {
	// Params configures each cluster's protocol instance (Params.N nodes
	// per cluster). Required; must Validate.
	Params core.Params
	// Hops is the number of clusters in the path (>= 1).
	Hops int
	// Seed drives all randomness; each cluster derives an independent
	// stream.
	Seed uint64
	// StrategyFor selects Carol's strategy per cluster (nil hop values
	// or a nil function mean no adversary in that cluster).
	StrategyFor func(hop int) adversary.Strategy
	// Pool is Carol's energy purse shared across every cluster: she may
	// concentrate it anywhere. nil means unlimited.
	Pool *energy.Pool
	// AllowReactive grants reactive strategies their RSSI view.
	AllowReactive bool
	// MinRelayFrac is the informed fraction a cluster must reach before
	// the pipeline advances (default 1/2: a majority of the cluster can
	// forward m). The pipeline stalls if a cluster falls short.
	MinRelayFrac float64
}

func (o *Options) minRelayFrac() float64 {
	if o.MinRelayFrac > 0 {
		return o.MinRelayFrac
	}
	return 0.5
}

// HopResult summarizes one cluster's broadcast.
type HopResult struct {
	Hop            int
	Informed       int
	InformedFrac   float64
	Slots          int64
	Rounds         int
	SenderCost     int64 // Alice in hop 0; the relay node afterwards
	MaxNodeCost    int64
	MedianNodeCost int64
	AdversarySpent int64
	Completed      bool
}

// Result is the end-to-end outcome.
type Result struct {
	Hops []HopResult
	// Reached reports whether the final cluster met the relay threshold.
	Reached bool
	// StalledAt is the first cluster that failed (-1 if none).
	StalledAt int
	// TotalSlots is the end-to-end latency (clusters run sequentially).
	TotalSlots int64
	// MaxNodeCost is the maximum single-device spend across all clusters
	// including relay senders.
	MaxNodeCost int64
	// AdversarySpent is Carol's total spend across all clusters.
	AdversarySpent int64
	// EndToEndFrac multiplies the per-hop informed fractions — the
	// (1-ε)^H guarantee.
	EndToEndFrac float64
}

// ErrBadHops is returned for a non-positive hop count.
var ErrBadHops = errors.New("multihop: Hops must be >= 1")

// Run executes the cluster pipeline.
func Run(opts Options) (*Result, error) {
	if opts.Hops < 1 {
		return nil, ErrBadHops
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, fmt.Errorf("multihop: %w", err)
	}
	res := &Result{StalledAt: -1, EndToEndFrac: 1}
	for hop := 0; hop < opts.Hops; hop++ {
		var strat adversary.Strategy
		if opts.StrategyFor != nil {
			strat = opts.StrategyFor(hop)
		}
		// Derive an independent seed per cluster so channels do not
		// share randomness.
		seed := rng.Mix(opts.Seed, uint64(hop)+1)
		// Each cluster is one kernel execution on an explicit clique
		// cell — the same code path a plain single-hop run takes, so
		// pipeline results are byte-identical to direct engine runs
		// (pinned by TestPipelineMatchesDirectEngineRuns).
		hopRes, err := engine.Run(engine.Options{
			Params:        opts.Params,
			Topology:      topology.Spec{Kind: "clique"},
			Seed:          seed,
			Strategy:      strat,
			Pool:          opts.Pool,
			AllowReactive: opts.AllowReactive,
		})
		if err != nil {
			return nil, fmt.Errorf("multihop: hop %d: %w", hop, err)
		}
		hr := HopResult{
			Hop:            hop,
			Informed:       hopRes.Informed,
			InformedFrac:   hopRes.InformedFrac(),
			Slots:          hopRes.SlotsSimulated,
			Rounds:         hopRes.Rounds,
			SenderCost:     hopRes.Alice.Cost,
			MaxNodeCost:    hopRes.NodeCost.Max,
			MedianNodeCost: hopRes.NodeCost.Median,
			AdversarySpent: hopRes.AdversarySpent,
			Completed:      hopRes.Completed,
		}
		res.Hops = append(res.Hops, hr)
		res.TotalSlots += hr.Slots
		res.AdversarySpent += hr.AdversarySpent
		res.EndToEndFrac *= hr.InformedFrac
		if hr.MaxNodeCost > res.MaxNodeCost {
			res.MaxNodeCost = hr.MaxNodeCost
		}
		// The relay sender of the next hop is a node of this cluster;
		// its sender-side cost counts against the node cost bound.
		if hr.SenderCost > res.MaxNodeCost && hop > 0 {
			res.MaxNodeCost = hr.SenderCost
		}
		if hr.InformedFrac < opts.minRelayFrac() {
			res.StalledAt = hop
			return res, nil
		}
	}
	res.Reached = true
	return res, nil
}

// GridOptions configures a lattice wave: one kernel execution on
// topology.Grid.
type GridOptions struct {
	// Params is the protocol instance over all Params.N lattice nodes.
	// Required; must Validate.
	Params core.Params
	// Width and Reach shape the lattice (topology.NewGrid defaults:
	// ceil(sqrt(n)) columns, reach 1).
	Width, Reach int
	// Seed drives every random decision.
	Seed uint64
	// Strategy is Carol; nil means no adversary.
	Strategy adversary.Strategy
	// Pool is Carol's energy purse. nil means unlimited.
	Pool *energy.Pool
	// ExtraRounds bounds the run past StartRound (default 3): nodes
	// beyond the k-hop wave never pass the quiet test, so an unbounded
	// lattice run only grinds to the natural round limit.
	ExtraRounds int
}

// GridResult pairs the kernel result with the lattice's wave profile.
type GridResult struct {
	*engine.Result
	// Reachable is Alice's k-hop ball on the lattice — the delivery
	// ceiling of the unmodified single-hop protocol.
	Reachable int
	// RingInformed[d] counts informed nodes at Chebyshev ring d of
	// Alice's corner (ring 0 is her own cell); RingSize[d] is the
	// ring's population. The wave dies past ring k·reach.
	RingInformed, RingSize []int
}

// RunGrid executes the lattice wave on the unified kernel.
func RunGrid(opts GridOptions) (*GridResult, error) {
	params := opts.Params
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("multihop: %w", err)
	}
	extra := opts.ExtraRounds
	if extra <= 0 {
		extra = 3
	}
	if params.MaxRound == 0 {
		params.MaxRound = params.StartRound + extra
	}
	spec := topology.Spec{Kind: "grid", Width: opts.Width, Reach: opts.Reach}
	// The engine's Result carries aggregates only; the per-node informed
	// flags the ring profile needs arrive through the tracer, which the
	// engine serializes deterministically.
	collector := &informedCollector{informed: make([]bool, params.N)}
	res, err := engine.Run(engine.Options{
		Params:   params,
		Topology: spec,
		Seed:     opts.Seed,
		Strategy: opts.Strategy,
		Pool:     opts.Pool,
		Tracer:   collector,
	})
	if err != nil {
		return nil, fmt.Errorf("multihop: %w", err)
	}
	gr := &GridResult{Result: res}
	topo, err := spec.Build(params.N, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("multihop: %w", err)
	}
	grid := topo.(topology.Grid)
	gr.Reachable = topology.ReachableWithin(grid, params.K)
	for id := 0; id < params.N; id++ {
		d := chebFromOrigin(grid, id)
		for len(gr.RingSize) <= d {
			gr.RingSize = append(gr.RingSize, 0)
			gr.RingInformed = append(gr.RingInformed, 0)
		}
		gr.RingSize[d]++
		if collector.informed[id] {
			gr.RingInformed[d]++
		}
	}
	return gr, nil
}

// chebFromOrigin returns node id's Chebyshev distance from Alice's
// corner cell.
func chebFromOrigin(g topology.Grid, id int) int {
	x, y := id%g.Width(), id/g.Width()
	if x > y {
		return x
	}
	return y
}

// informedCollector is the tracer RunGrid uses to recover per-node
// informedness from the kernel's deterministic event stream.
type informedCollector struct {
	trace.Nop
	informed []bool
}

func (c *informedCollector) NodeInformed(node int, _ core.Phase) { c.informed[node] = true }
