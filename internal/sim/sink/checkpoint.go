package sink

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"rcbcast/internal/engine"
	"rcbcast/internal/sim"
)

// Checkpoint journals every delivered trial — the full engine.Result,
// one NDJSON line — so an interrupted sweep resumes without re-running
// the delivered prefix. Because session delivery is in trial order, the
// journal is always the contiguous prefix [0, Done()) of the sweep;
// OpenCheckpoint tolerates a torn trailing line (an interrupted write)
// by truncating it. Results round-trip exactly through the journal
// (encoding/json preserves every int64 and float64), which is what
// makes a resumed sweep's downstream sink output byte-identical to an
// uninterrupted run's — the determinism test pins that.
//
// The full-fidelity journal is a deliberate size/correctness trade:
// replay must reproduce whatever any downstream sink reads, including
// the O(n) NodeCosts vector and recorded phases, so one journal line
// costs roughly one serialized Result (~kilobytes at n=1024) rather
// than the ~200-byte summary Record. Budget journal disk as
// trials × result size; sweeps that only need summary outputs and can
// afford to re-run on interruption can skip the checkpoint entirely.
//
// Each Trial call flushes its line, so a context-canceled process loses
// at most the trial in flight.
type Checkpoint struct {
	path   string
	f      *os.File
	bw     *bufio.Writer
	enc    *json.Encoder
	done   int
	sweep  string // fingerprint from the journal header ("" when absent)
	lo, hi int    // shard range from the header (0,0 = whole-sweep journal)
	err    error
}

// journalHeader is the journal's first line: a fingerprint of the spec
// list the sweep was started with, so a resume with different specs
// fails fast instead of silently splicing two different experiments.
// Shard journals (StreamCheckpointedShard) additionally record their
// trial range [lo, hi): the fingerprint alone covers only the leading
// spec, so two shards with the same lo but different hi — [0, 100) and
// [0, 200) of one sweep — would otherwise collide and silently resume
// each other's journals.
type journalHeader struct {
	Sweep string `json:"sweep"`
	Lo    int    `json:"lo,omitempty"`
	Hi    int    `json:"hi,omitempty"`
}

// journalLine is one journaled trial.
type journalLine struct {
	Trial  int            `json:"trial"`
	Result *engine.Result `json:"result"`
}

// OpenCheckpoint opens (or creates) a journal at path and validates its
// leading lines: consecutive trials from 0, each a decodable
// journalLine. Anything after the valid prefix — a torn line from an
// interrupted write — is truncated away.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sink: checkpoint: %w", err)
	}
	br := bufio.NewReader(f)
	var off int64
	done := 0
	sweep := ""
	lo, hi := 0, 0
	first := true
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break // EOF: a newline-less tail is a torn write, drop it
		}
		if first {
			first = false
			var jh journalHeader
			if json.Unmarshal(line, &jh) == nil && jh.Sweep != "" {
				sweep, lo, hi = jh.Sweep, jh.Lo, jh.Hi
				off += int64(len(line))
				continue
			}
		}
		var jl journalLine
		if json.Unmarshal(line, &jl) != nil || jl.Trial != done {
			break
		}
		done++
		off += int64(len(line))
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("sink: checkpoint: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("sink: checkpoint: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &Checkpoint{path: path, f: f, bw: bw, enc: json.NewEncoder(bw), done: done, sweep: sweep, lo: lo, hi: hi}, nil
}

// Done returns the number of journaled leading trials; a resumed sweep
// starts at this index.
func (c *Checkpoint) Done() int { return c.done }

// Replay re-delivers the journaled prefix to the sinks in trial order,
// streaming one result at a time from the file — replay memory is O(1)
// in the journal length.
func (c *Checkpoint) Replay(sinks ...sim.Sink) error {
	if c.done == 0 {
		return nil
	}
	rf, err := os.Open(c.path)
	if err != nil {
		return fmt.Errorf("sink: checkpoint replay: %w", err)
	}
	defer rf.Close()
	dec := json.NewDecoder(bufio.NewReader(rf))
	if c.sweep != "" {
		var jh journalHeader
		if err := dec.Decode(&jh); err != nil {
			return fmt.Errorf("sink: checkpoint replay header: %w", err)
		}
	}
	for i := 0; i < c.done; i++ {
		var jl journalLine
		if err := dec.Decode(&jl); err != nil {
			return fmt.Errorf("sink: checkpoint replay trial %d: %w", i, err)
		}
		for _, s := range sinks {
			if err := s.Trial(jl.Trial, jl.Result); err != nil {
				return err
			}
		}
	}
	return nil
}

// Trial implements sim.Sink. The journaled trial number is the running
// count Done(), not the incoming index: a resumed session streams only
// the tail specs (indices restart at 0), and in-order contiguous
// delivery guarantees the count is the sweep-global index.
func (c *Checkpoint) Trial(_ int, r *engine.Result) error {
	if c.err != nil {
		return c.err
	}
	if err := c.enc.Encode(journalLine{Trial: c.done, Result: r}); err != nil {
		c.err = err
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.err = err
		return err
	}
	c.done++
	return nil
}

// writeHeader stamps a fresh journal with the sweep fingerprint and,
// for shard journals, the trial range [lo, hi). Whole-sweep journals
// pass (0, 0) and keep the pre-shard header shape.
func (c *Checkpoint) writeHeader(fp string, lo, hi int) error {
	if err := c.enc.Encode(journalHeader{Sweep: fp, Lo: lo, Hi: hi}); err != nil {
		c.err = err
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.err = err
		return err
	}
	c.sweep, c.lo, c.hi = fp, lo, hi
	return nil
}

// Flush implements sim.Sink.
func (c *Checkpoint) Flush() error {
	if c.err != nil {
		return c.err
	}
	return c.bw.Flush()
}

// Close flushes and closes the journal file.
func (c *Checkpoint) Close() error {
	ferr := c.bw.Flush()
	cerr := c.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// fingerprint hashes the sweep's first spec — its seed, protocol
// instance, and topology — into the journal-header token. Derived
// sweeps share one scenario and base seed across all specs, so the
// first spec catches the realistic mismatches (a different -n, -seed,
// -topology, or scenario override) while still allowing a longer
// -trials resume of the same sweep. Strategy, pool, and Configure are
// factories and cannot be hashed; two sweeps differing only in those
// are not distinguished.
func fingerprint(specs []sim.TrialSpec) string {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], specs[0].Seed)
	h.Write(b[:])
	if params, err := json.Marshal(specs[0].Params); err == nil {
		h.Write(params)
	}
	if topo, err := json.Marshal(specs[0].Topology); err == nil {
		h.Write(topo)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// StreamCheckpointed runs a sweep through sim.Stream with cp journaling
// every delivered trial. Trials already journaled are replayed to the
// sinks from the journal instead of re-run; the rest execute normally
// with their delivery re-indexed to sweep coordinates. Interrupt a
// sweep (ctx cancellation returns the session's *sim.PartialError),
// reopen the checkpoint, call StreamCheckpointed again with the same
// specs, and the concatenated sink output is byte-identical to an
// uninterrupted run.
//
// The journal's header records a fingerprint of the spec list; resuming
// with different specs (another n, base seed, trial count, or protocol
// override) is rejected instead of silently splicing two different
// sweeps into one output.
func StreamCheckpointed(ctx context.Context, procs int, specs []sim.TrialSpec, cp *Checkpoint, sinks ...sim.Sink) error {
	return StreamCheckpointedBatch(ctx, procs, 1, specs, cp, sinks...)
}

// StreamCheckpointedBatch is StreamCheckpointed executing the
// un-journaled tail through the batched lockstep kernel
// (sim.StreamBatch) at the given width. Journal and sink output are
// byte-identical at every width — including across an interrupt/resume
// whose tail regroups at different batch boundaries — because the
// kernel's per-trial results match the scalar engine's bit for bit.
func StreamCheckpointedBatch(ctx context.Context, procs, width int, specs []sim.TrialSpec, cp *Checkpoint, sinks ...sim.Sink) error {
	return streamCheckpointed(ctx, procs, width, 0, false, specs, cp, sinks)
}

// StreamCheckpointedShard is StreamCheckpointedBatch for one contiguous
// shard [lo, lo+len(specs)) of a larger sweep (scenario.ShardSpecs):
// sink delivery is re-indexed to sweep-global trial coordinates, and
// the journal header records the shard range alongside the sweep
// fingerprint. A shard journal therefore can never be resumed by a
// different shard of the same sweep — the fingerprint alone already
// separates shards with different lo (their leading seeds differ), and
// the recorded range separates same-lo shards with different hi —
// and a whole-sweep run rejects a shard journal (and vice versa)
// instead of silently splicing ranges.
func StreamCheckpointedShard(ctx context.Context, procs, width, lo int, specs []sim.TrialSpec, cp *Checkpoint, sinks ...sim.Sink) error {
	if lo < 0 {
		return fmt.Errorf("sink: shard lo must be >= 0 (got %d)", lo)
	}
	return streamCheckpointed(ctx, procs, width, lo, true, specs, cp, sinks)
}

// streamCheckpointed is the one implementation under both entry points.
// sharded selects the shard contract: delivery offset by lo and a
// range-stamped, range-checked journal header covering [lo,
// lo+len(specs)).
func streamCheckpointed(ctx context.Context, procs, width, lo int, sharded bool, specs []sim.TrialSpec, cp *Checkpoint, sinks []sim.Sink) error {
	if cp.Done() > len(specs) {
		return fmt.Errorf("sink: checkpoint has %d trials but the sweep has %d", cp.Done(), len(specs))
	}
	if len(specs) == 0 {
		return cp.Flush()
	}
	wantLo, wantHi := 0, 0
	if sharded {
		wantLo, wantHi = lo, lo+len(specs)
	}
	fp := fingerprint(specs)
	switch {
	case cp.sweep == "" && cp.done == 0:
		// Fresh journal: stamp the header before any trial.
		if err := cp.writeHeader(fp, wantLo, wantHi); err != nil {
			return err
		}
	case cp.sweep != "" && (cp.lo != wantLo || cp.hi != wantHi):
		return fmt.Errorf(
			"sink: checkpoint %s was written by shard %s of the sweep, not %s — delete it or rerun with the original shard",
			cp.path, rangeLabel(cp.lo, cp.hi), rangeLabel(wantLo, wantHi))
	case cp.sweep != "" && cp.sweep != fp:
		return fmt.Errorf(
			"sink: checkpoint %s was written by a different sweep (fingerprint %s, this sweep %s) — delete it or rerun with the original specs",
			cp.path, cp.sweep, fp)
	default:
		// A non-empty headerless journal (cp used directly as a Stream
		// sink) cannot be validated; accept it as-is.
	}
	// The journal stores shard-local indices; downstream sinks see
	// sweep-global ones.
	outSinks := sinks
	if lo > 0 {
		outSinks = make([]sim.Sink, len(sinks))
		for i, s := range sinks {
			outSinks[i] = offset{d: lo, s: s}
		}
	}
	if err := cp.Replay(outSinks...); err != nil {
		return err
	}
	base := cp.Done()
	if base == len(specs) {
		for _, s := range sinks {
			if err := s.Flush(); err != nil {
				return fmt.Errorf("sink: flush: %w", err)
			}
		}
		return cp.Flush()
	}
	session := make([]sim.Sink, 0, len(sinks)+1)
	session = append(session, cp) // journal first: never emit a trial the journal lacks
	for _, s := range sinks {
		session = append(session, offset{d: base + lo, s: s})
	}
	return sim.StreamBatch(ctx, procs, width, specs[base:], session...)
}

// rangeLabel names a header range for error messages; (0,0) is the
// whole sweep.
func rangeLabel(lo, hi int) string {
	if lo == 0 && hi == 0 {
		return "[whole sweep]"
	}
	return fmt.Sprintf("[%d,%d)", lo, hi)
}

// offset re-indexes a shard- or tail-local delivery back to sweep
// coordinates for downstream sinks.
type offset struct {
	d int
	s sim.Sink
}

func (o offset) Trial(i int, r *engine.Result) error { return o.s.Trial(i+o.d, r) }
func (o offset) Flush() error                        { return o.s.Flush() }

// Offset re-indexes a sink's trial indices by a fixed delta — the
// adapter shard runs use to deliver sweep-global trial numbers from a
// shard-local streaming session (rcexp -shard without a checkpoint).
func Offset(delta int, s sim.Sink) sim.Sink { return offset{d: delta, s: s} }
