package engine

import (
	"math"
	"reflect"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/topology"
)

// TestCompleteGilbertMatchesCliqueFastPath is the kernel-unification
// guarantee: a Gilbert graph with radius √2 spans the unit square, so
// every device hears every other — but Complete() stays false, forcing
// the sparse per-listener resolution path. Results must be bit-for-bit
// identical to the clique fast path across the behavioural surface
// (adversaries, budgets, decoys, perturbation, general k).
func TestCompleteGilbertMatchesCliqueFastPath(t *testing.T) {
	for name, mk := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			clique, err := Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			opts := mk()
			opts.Topology = topology.Spec{Kind: "gilbert", Radius: math.Sqrt2}
			sparse, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(clique, sparse) {
				t.Fatalf("sparse resolution diverged from the clique fast path:\nclique: %+v\nsparse: %+v", clique, sparse)
			}
		})
	}
}

// TestExplicitCliqueSpecByteIdentical pins the satellite guarantee: a
// scenario that says `"topology": {"kind": "clique"}` runs the exact
// pre-topology engine.
func TestExplicitCliqueSpecByteIdentical(t *testing.T) {
	for name, mk := range equivalenceConfigs() {
		t.Run(name, func(t *testing.T) {
			implicit, err := Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			opts := mk()
			opts.Topology = topology.Spec{Kind: "clique"}
			explicit, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(implicit, explicit) {
				t.Fatal("explicit clique spec diverged from the default")
			}
		})
	}
}

// TestCoveringGridUsesFastPath: a grid whose reach spans the lattice is
// a complete graph, and the engine must notice and keep the global
// fast path — byte-identical to the clique.
func TestCoveringGridUsesFastPath(t *testing.T) {
	mk := func() Options {
		return Options{
			Params:   core.PracticalParams(64, 2),
			Seed:     21,
			Strategy: adversary.FullJam{},
			Pool:     energy.NewPool(4000),
		}
	}
	clique, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	opts := mk()
	opts.Topology = topology.Spec{Kind: "grid", Reach: 8}
	covering, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clique, covering) {
		t.Fatal("covering grid diverged from the clique")
	}
}

// TestEnginesAgreeOnSparseTopologies extends the sequential-vs-actors
// bit-for-bit guarantee to the sparse resolution path.
func TestEnginesAgreeOnSparseTopologies(t *testing.T) {
	for name, spec := range map[string]topology.Spec{
		"grid":    {Kind: "grid", Reach: 2},
		"gilbert": {Kind: "gilbert", Radius: 0.3},
	} {
		t.Run(name, func(t *testing.T) {
			mk := func() Options {
				params := core.PracticalParams(128, 2)
				params.MaxRound = params.StartRound + 2
				return Options{
					Params:       params,
					Seed:         31,
					Topology:     spec,
					Strategy:     adversary.RandomJam{P: 0.25},
					Pool:         energy.NewPool(10000),
					RecordPhases: true,
				}
			}
			seq, err := Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			act, err := RunActors(mk())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, act) {
				t.Fatalf("engines diverged on %s", name)
			}
		})
	}
}

// TestGridWaveStopsAtKHops pins the honest limitation DESIGN.md §9
// documents: the unmodified single-hop protocol informs exactly the
// ≤k-hop neighborhood of Alice — nodes informed in the final
// propagation step never relay — so a broadcast on a big lattice
// reaches the k-ring and stops. (The multihop pipeline exists to go
// further.)
func TestGridWaveStopsAtKHops(t *testing.T) {
	params := core.PracticalParams(144, 2) // 12x12
	params.MaxRound = params.StartRound + 2
	spec := topology.Spec{Kind: "grid"}
	res, err := Run(Options{Params: params, Seed: 5, Topology: spec})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := spec.Build(144, 5)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := topology.ReachableWithin(topo, params.K) // 3x3 corner block = 9
	if res.Informed > ceiling {
		t.Fatalf("informed %d beyond the %d-hop ceiling %d", res.Informed, params.K, ceiling)
	}
	// The ball is informed up to relay luck: ring 1 hears Alice across
	// every round, but each ring-1 node relays in exactly one
	// propagation phase (then terminates), so an outer-ring node can
	// miss its only chance. Nearly all of the ball is informed.
	if res.Informed < ceiling-2 {
		t.Fatalf("informed %d, want ≥ %d of the %d-hop ball %d", res.Informed, ceiling-2, params.K, ceiling)
	}
	// A larger k pushes the wave further on the same lattice.
	params3 := core.PracticalParams(144, 3)
	params3.MaxRound = params3.StartRound + 2
	res3, err := Run(Options{Params: params3, Seed: 5, Topology: spec})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Informed <= res.Informed {
		t.Fatalf("k=3 wave (%d) must outreach k=2 (%d)", res3.Informed, res.Informed)
	}
}

// TestGilbertDeliveryTracksReachableSet: on a random geometric graph,
// delivery is bounded by — and in benign runs achieves — the k-hop
// reachable set of Alice.
func TestGilbertDeliveryTracksReachableSet(t *testing.T) {
	params := core.PracticalParams(128, 2)
	params.MaxRound = params.StartRound + 2
	spec := topology.Spec{Kind: "gilbert", Radius: 0.25}
	res, err := Run(Options{Params: params, Seed: 77, Topology: spec})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := spec.Build(128, 77)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := topology.ReachableWithin(topo, params.K)
	if ceiling == 0 || ceiling == 128 {
		t.Fatalf("test wants a nontrivial reachable set, got %d", ceiling)
	}
	if res.Informed > ceiling {
		t.Fatalf("informed %d beyond reachable ceiling %d", res.Informed, ceiling)
	}
	if float64(res.Informed) < 0.9*float64(ceiling) {
		t.Fatalf("informed %d, want ~all of the reachable %d", res.Informed, ceiling)
	}
}

// TestScratchReuseByteIdentical: a Scratch carried across runs of
// different sizes, topologies and adversaries must never change any
// result.
func TestScratchReuseByteIdentical(t *testing.T) {
	bounded := func(n, k int) core.Params {
		p := core.PracticalParams(n, k)
		p.MaxRound = p.StartRound + 2
		return p
	}
	configs := []func() Options{
		func() Options {
			return Options{Params: core.PracticalParams(128, 2), Seed: 1,
				Strategy: adversary.FullJam{}, Pool: energy.NewPool(8000), RecordPhases: true}
		},
		func() Options { // smaller n: scratch shrinks
			return Options{Params: core.PracticalParams(64, 2), Seed: 2}
		},
		func() Options { // sparse topology reusing the same scratch
			return Options{Params: bounded(96, 2), Seed: 3,
				Topology: topology.Spec{Kind: "gilbert", Radius: 0.4}}
		},
		func() Options { // larger n: scratch regrows
			return Options{Params: core.PracticalParams(192, 2), Seed: 4,
				NodeBudget: 60, AliceBudget: 800}
		},
		func() Options {
			return Options{Params: bounded(96, 2), Seed: 5,
				Topology: topology.Spec{Kind: "grid", Reach: 2},
				Strategy: adversary.RandomJam{P: 0.3}, Pool: energy.NewPool(5000)}
		},
	}
	var fresh []*Result
	for _, mk := range configs {
		res, err := Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, res)
	}
	scratch := NewScratch()
	for round := 0; round < 2; round++ { // reuse the scratch twice over
		for i, mk := range configs {
			opts := mk()
			opts.Scratch = scratch
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, fresh[i]) {
				t.Fatalf("round %d config %d: scratch reuse changed the result", round, i)
			}
		}
	}
}

// BenchmarkEngineRun measures one full protocol execution per topology
// kind, with and without scratch reuse — allocs/op is the headline
// (BENCH_ENGINE.json records one run).
func BenchmarkEngineRun(b *testing.B) {
	mk := func(spec topology.Spec, seed uint64) Options {
		params := core.PracticalParams(256, 2)
		if !spec.IsClique() {
			params.MaxRound = params.StartRound + 2
		}
		return Options{
			Params:   params,
			Seed:     seed,
			Topology: spec,
			Strategy: adversary.FullJam{},
			Pool:     energy.NewPool(1 << 12),
		}
	}
	for _, tc := range []struct {
		name string
		spec topology.Spec
	}{
		{"clique", topology.Spec{}},
		{"grid", topology.Spec{Kind: "grid", Reach: 2}},
		{"gilbert", topology.Spec{Kind: "gilbert", Radius: 0.25}},
	} {
		b.Run(tc.name+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(mk(tc.spec, uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/scratch", func(b *testing.B) {
			b.ReportAllocs()
			scratch := NewScratch()
			for i := 0; i < b.N; i++ {
				opts := mk(tc.spec, uint64(i))
				opts.Scratch = scratch
				if _, err := Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
