package engine

import (
	"testing"
	"testing/quick"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
	"rcbcast/internal/msg"
	"rcbcast/internal/rng"
	"rcbcast/internal/slotsim"
)

// TestObserveMatchesSlotsimReference cross-validates the engine's compact
// per-slot resolution (counts + soloKind + plan) against the reference
// channel model in internal/slotsim: for any random mix of transmissions
// and n-uniform jamming, both must yield the same outcome for every
// listener who did not transmit.
func TestObserveMatchesSlotsimReference(t *testing.T) {
	auth := msg.NewAuthenticator(1)
	f := func(seed uint64, nTx, jamRaw uint8) bool {
		st := rng.New(seed)
		r := &run{opts: &Options{}, params: core.Params{}}
		r.ensureBuffers(1)

		var slot slotsim.Slot
		txCount := int(nTx % 4) // 0..3 transmissions
		for i := 0; i < txTotal(txCount); i++ {
			var frame msg.Frame
			switch st.Intn(4) {
			case 0:
				frame = auth.Sign([]byte("m"))
			case 1:
				frame = msg.Nack(100 + i) // sender ids >= 100; listener is 0
			case 2:
				frame = msg.Decoy(100 + i)
			default:
				frame = msg.SpoofData(-1000-i, []byte("fake"))
			}
			slot.AddFrame(frame)
			r.addTx(0, frame.Kind, int32(100+i))
		}

		var plan *adversary.Plan
		jamMode := jamRaw % 3
		switch jamMode {
		case 1: // jam everyone
			slot.SetJam(slotsim.JamAll())
			plan = adversary.NewPlan(1)
			plan.Jam(0)
		case 2: // n-uniform: disrupt only even listeners
			pred := func(l int) bool { return l%2 == 0 }
			slot.SetJam(slotsim.Jam{Active: true, Disrupt: pred})
			plan = adversary.NewPlan(1)
			plan.Jam(0)
			plan.SetDisrupt(func(_, l int) bool { return pred(l) })
		}

		for _, listener := range []int{0, 1, 2, 7} {
			refOut, refFrame := slot.Observe(listener)
			kind, out := r.observe(0, listener, plan)
			switch refOut {
			case slotsim.Silence:
				if out != outcomeSilence {
					t.Logf("listener %d: ref silence, engine %v", listener, out)
					return false
				}
			case slotsim.Received:
				if out != outcomeReceived || kind != refFrame.Kind {
					t.Logf("listener %d: ref received %v, engine %v/%v",
						listener, refFrame.Kind, out, kind)
					return false
				}
			case slotsim.Noise:
				if out != outcomeNoise {
					t.Logf("listener %d: ref noise, engine %v", listener, out)
					return false
				}
			}
		}
		r.clearDirty()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func txTotal(c int) int { return c }

// TestObserveInformRule pins the rule that only authentic data frames
// inform: a solo spoof is received at the channel level but must never
// count as m.
func TestObserveInformRule(t *testing.T) {
	r := &run{opts: &Options{}, params: core.Params{}}
	r.ensureBuffers(1)
	r.addTx(0, msg.KindSpoof, txSrcAdversary)
	kind, out := r.observe(0, 5, nil)
	if out != outcomeReceived {
		t.Fatalf("solo spoof outcome = %v, want received", out)
	}
	if kind == msg.KindData {
		t.Fatal("spoof must not masquerade as data at the engine level")
	}
}
