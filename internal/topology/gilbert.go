package topology

import (
	"rcbcast/internal/rng"
)

// Gilbert is the random geometric graph: n points drawn uniformly in
// the unit square, two nodes adjacent iff their Euclidean distance is
// at most Radius. Alice transmits from the center (1/2, 1/2), the
// deterministic position that keeps her expected audience at the
// full πr²n for every radius.
//
// Construction draws from the stream keyed (seed, StreamActor), so the
// graph is a pure function of the engine seed: trials of a sweep each
// get an independent graph, reproducible across worker counts.
type Gilbert struct {
	n      int
	radius float64
	xs, ys []float64
	adj    bitmatrix
	degs   []int
	alice  []bool
}

// NewGilbert draws the radius-r geometric graph over n points from the
// given seed.
func NewGilbert(n int, radius float64, seed uint64) *Gilbert {
	g := &Gilbert{
		n:      n,
		radius: radius,
		xs:     make([]float64, n),
		ys:     make([]float64, n),
		adj:    newBitmatrix(n),
		degs:   make([]int, n),
		alice:  make([]bool, n),
	}
	st := rng.New(seed, StreamActor)
	for i := 0; i < n; i++ {
		g.xs[i] = st.Float64()
		g.ys[i] = st.Float64()
	}
	r2 := radius * radius
	// Bucket points into cells of side >= radius: all neighbors of a
	// point lie in its 3x3 cell block. Cell count is capped near sqrt(n)
	// so tiny radii cannot allocate an absurd cell grid.
	cells := 1
	if radius < 1 {
		cells = int(1 / radius)
		if cells < 1 {
			cells = 1
		}
		if max := isqrtCeil(n) + 1; cells > max {
			cells = max
		}
	}
	buckets := make([][]int32, cells*cells)
	cellOf := func(v float64) int {
		c := int(v * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	for i := 0; i < n; i++ {
		c := cellOf(g.ys[i])*cells + cellOf(g.xs[i])
		buckets[c] = append(buckets[c], int32(i))
	}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(g.xs[i]), cellOf(g.ys[i])
		for dy := -1; dy <= 1; dy++ {
			by := cy + dy
			if by < 0 || by >= cells {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				bx := cx + dx
				if bx < 0 || bx >= cells {
					continue
				}
				for _, j32 := range buckets[by*cells+bx] {
					j := int(j32)
					if j <= i {
						continue
					}
					ddx, ddy := g.xs[i]-g.xs[j], g.ys[i]-g.ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.adj.set(i, j)
						g.adj.set(j, i)
						g.degs[i]++
						g.degs[j]++
					}
				}
			}
		}
		ddx, ddy := g.xs[i]-0.5, g.ys[i]-0.5
		g.alice[i] = ddx*ddx+ddy*ddy <= r2
	}
	return g
}

func (g *Gilbert) Name() string   { return "gilbert" }
func (g *Gilbert) N() int         { return g.n }
func (g *Gilbert) Complete() bool { return false }

// Radius reports the connection radius the graph was built with.
func (g *Gilbert) Radius() float64 { return g.radius }

// Position returns node i's point in the unit square.
func (g *Gilbert) Position(i int) (x, y float64) { return g.xs[i], g.ys[i] }

func (g *Gilbert) AliceHears(node int) bool { return g.alice[node] }

func (g *Gilbert) Adjacent(src, listener int) bool {
	if src == listener {
		return false
	}
	return g.adj.get(src, listener)
}

func (g *Gilbert) Degree(node int) int { return g.degs[node] }

// bitmatrix is a dense n x n adjacency bitset (rows of packed uint64
// words): O(1) Adjacent at n²/8 bytes, a fine trade at simulation n.
type bitmatrix struct {
	words []uint64
	row   int // words per row
}

func newBitmatrix(n int) bitmatrix {
	row := (n + 63) / 64
	return bitmatrix{words: make([]uint64, row*n), row: row}
}

func (b bitmatrix) set(i, j int)      { b.words[i*b.row+j/64] |= 1 << (uint(j) % 64) }
func (b bitmatrix) get(i, j int) bool { return b.words[i*b.row+j/64]&(1<<(uint(j)%64)) != 0 }
