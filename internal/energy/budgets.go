package energy

import "math"

// BudgetModel computes the paper's budgets as functions of the network size
// n, the protocol parameter k >= 2, and the leading constant C (§1.1,
// Theorem 1):
//
//	node:  C * n^{1/k}
//	Alice: C * n^{1/k} * ln^k n   (for k = 2 the paper writes C n^{1/2} ln n;
//	                               the exponent on the log is configurable)
//	Carol: same as Alice (conceded "for the purposes of symmetry")
//
// The model exists so that experiments state budgets the way the paper
// does instead of scattering magic formulas.
type BudgetModel struct {
	// C is the leading constant; the paper requires it "sufficiently
	// large" (Lemma 11 derives C >= (2d)^{3/2} ((f+1)/beta)^{1/2}).
	C float64
	// K is the protocol parameter k >= 2.
	K int
	// AliceLogExp is the exponent on ln n in Alice's budget. The paper
	// uses 1 for k = 2 and k for general k; 0 disables the log factor.
	// A negative value selects the paper's default (1 if K==2 else K).
	AliceLogExp int
}

// DefaultBudgets returns the paper's budget model for parameter k with
// leading constant c.
func DefaultBudgets(c float64, k int) BudgetModel {
	return BudgetModel{C: c, K: k, AliceLogExp: -1}
}

func (bm BudgetModel) aliceLogExp() int {
	if bm.AliceLogExp >= 0 {
		return bm.AliceLogExp
	}
	if bm.K == 2 {
		return 1
	}
	return bm.K
}

// Node returns a node's budget C*n^{1/k}, rounded up, at least 1.
func (bm BudgetModel) Node(n int) int64 {
	v := bm.C * math.Pow(float64(n), 1/float64(bm.K))
	return ceilAtLeastOne(v)
}

// Alice returns Alice's budget C*n^{1/k}*ln^e n.
func (bm BudgetModel) Alice(n int) int64 {
	logf := math.Pow(math.Max(math.Log(float64(n)), 1), float64(bm.aliceLogExp()))
	v := bm.C * math.Pow(float64(n), 1/float64(bm.K)) * logf
	return ceilAtLeastOne(v)
}

// Carol returns Carol's individual budget (equal to Alice's, per §1.1).
func (bm BudgetModel) Carol(n int) int64 { return bm.Alice(n) }

// AdversaryPool returns the pooled adversarial budget for f*n Byzantine
// devices plus Carol herself: C*f*n^{1+1/k} + Carol's individual budget
// (the sum Lemma 11 bounds by C(f+1) n^{1+1/k}).
func (bm BudgetModel) AdversaryPool(n int, f float64) *Pool {
	byz := int(math.Round(f * float64(n)))
	return NewAdversaryPool(bm.Carol(n), byz, bm.Node(n))
}

func ceilAtLeastOne(v float64) int64 {
	c := int64(math.Ceil(v))
	if c < 1 {
		return 1
	}
	return c
}
