package topology

// Cache memoizes built topologies with their CSR adjacency views across
// the trials one worker executes. Clique and grid graphs are
// trial-invariant — a pure function of (spec, n) — so a sweep's worker
// builds each exactly once however many trials it runs; Gilbert graphs
// are keyed by their derived graph seed, so repeated executions of the
// same trial (differential oracles, batch lanes, re-runs) reuse the
// build, while distinct trials get distinct graphs exactly as before.
//
// Every entry owns its construction scratch, so a cached graph and its
// CSR stay valid for the entry's whole lifetime — unlike a build into a
// shared Scratch, which the next build invalidates. That lifetime
// guarantee is what lets the batched engine kernel keep B lanes'
// Gilbert graphs alive simultaneously; size the capacity accordingly.
//
// A Cache must not be used by concurrently executing builds or lookups;
// give each worker its own (the engine's batch scratch embeds one).
// Cached graphs are byte-identical to fresh builds — pinned by test.
type Cache struct {
	capacity     int
	clock        uint64
	hits, misses uint64
	entries      []cacheEntry
}

type cacheKey struct {
	spec Spec
	n    int
	seed uint64
}

type cacheEntry struct {
	key   cacheKey
	topo  Topology
	csr   *CSR
	sc    *Scratch
	stamp uint64
}

// NewCache returns a cache holding at most capacity graphs (minimum 1),
// evicting the least recently used.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{capacity: capacity}
}

// Capacity reports the maximum number of live entries.
func (c *Cache) Capacity() int { return c.capacity }

// EnsureCapacity raises the capacity to at least capacity, never
// lowering it — the batch kernel calls this so every lane of a batch
// can hold its graph live at once.
func (c *Cache) EnsureCapacity(capacity int) {
	if capacity > c.capacity {
		c.capacity = capacity
	}
}

// Stats reports the lookup counters.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// TrialInvariant reports whether the spec's graph is a pure function of
// (spec, n) alone — every kind but the seed-randomized gilbert. The
// cache folds the seed out of such keys, so one entry serves every
// trial of a sweep point.
func (s Spec) TrialInvariant() bool { return s.Kind != "gilbert" }

// Get returns the topology for (spec, n, seed) plus its CSR adjacency
// view, building and caching on miss. The CSR is nil for complete
// graphs (the engine's global-channel fast path needs none). The
// returned graph is valid until the entry is evicted: with a capacity
// of at least the number of graphs simultaneously in use, callers may
// hold results across subsequent Gets.
func (c *Cache) Get(spec Spec, n int, seed uint64) (Topology, *CSR, error) {
	key := cacheKey{spec: spec, n: n, seed: seed}
	if spec.TrialInvariant() {
		key.seed = 0
	}
	for i := range c.entries {
		e := &c.entries[i]
		if e.key == key {
			c.hits++
			c.clock++
			e.stamp = c.clock
			return e.topo, e.csr, nil
		}
	}
	c.misses++
	var e *cacheEntry
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, cacheEntry{sc: NewScratch()})
		e = &c.entries[len(c.entries)-1]
	} else {
		e = &c.entries[0]
		for i := range c.entries {
			if c.entries[i].stamp < e.stamp {
				e = &c.entries[i]
			}
		}
	}
	topo, err := spec.BuildInto(n, seed, e.sc)
	if err != nil {
		// Leave the victim entry unusable rather than half-built.
		e.key = cacheKey{}
		e.topo, e.csr = nil, nil
		return nil, nil, err
	}
	e.key = key
	e.topo = topo
	e.csr = nil
	if !topo.Complete() {
		e.csr = BuildCSR(topo, e.sc)
	}
	c.clock++
	e.stamp = c.clock
	return e.topo, e.csr, nil
}
