package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rcbcast/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 2.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if Summarize(nil) != (Summary{}) {
		t.Fatal("empty summary must be zero")
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize must not reorder the caller's slice")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 4}, {0.5, 2}, {0.25, 1}, {0.125, 0.5}, {-1, 0}, {2, 4},
	}
	for _, tc := range cases {
		if got := Quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Quantile must panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3 x^0.5 exactly.
	xs := []float64{1, 4, 9, 16, 100}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Sqrt(x)
	}
	fit := FitPowerLaw(xs, ys)
	if math.Abs(fit.Exponent-0.5) > 1e-9 {
		t.Fatalf("exponent = %v, want 0.5", fit.Exponent)
	}
	if math.Abs(fit.Scale-3) > 1e-9 {
		t.Fatalf("scale = %v, want 3", fit.Scale)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v for exact data", fit.R2)
	}
	if fit.N != 5 {
		t.Fatalf("N = %d", fit.N)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	st := rng.New(1)
	var xs, ys []float64
	for x := 10.0; x < 1e6; x *= 2 {
		xs = append(xs, x)
		noise := math.Exp(0.05 * st.NormFloat64())
		ys = append(ys, 7*math.Pow(x, 1.0/3)*noise)
	}
	fit := FitPowerLaw(xs, ys)
	if math.Abs(fit.Exponent-1.0/3) > 0.02 {
		t.Fatalf("noisy exponent = %v, want ~1/3", fit.Exponent)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	fit := FitPowerLaw([]float64{0, -1, 2, 4}, []float64{5, 5, 2, 4})
	if fit.N != 2 {
		t.Fatalf("usable points = %d, want 2", fit.N)
	}
	if math.Abs(fit.Exponent-1) > 1e-9 {
		t.Fatalf("exponent = %v, want 1", fit.Exponent)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if fit := FitPowerLaw([]float64{5}, []float64{2}); fit.N != 1 || fit.Exponent != 0 {
		t.Fatalf("single point fit = %+v", fit)
	}
	// All x identical: denominator zero.
	if fit := FitPowerLaw([]float64{3, 3, 3}, []float64{1, 2, 3}); fit.Exponent != 0 {
		t.Fatalf("degenerate fit = %+v", fit)
	}
}

func TestFitPowerLawPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	FitPowerLaw([]float64{1}, []float64{1, 2})
}

func TestFitPowerLawProperty(t *testing.T) {
	// Property: for clean power-law data with arbitrary positive scale
	// and exponent in [-2, 2], the fit recovers both.
	f := func(scaleRaw, expRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/32
		exp := -2 + 4*float64(expRaw)/255
		xs := []float64{2, 5, 17, 120, 999}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = scale * math.Pow(x, exp)
		}
		fit := FitPowerLaw(xs, ys)
		return math.Abs(fit.Exponent-exp) < 1e-6 && math.Abs(fit.Scale-scale)/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.34567)
	out := tb.Render()
	for _, want := range []string{"Demo", "name", "alpha", "beta", "2.346", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("x", "y")
	md := tb.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "|---|---|", "| x | y |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableRowClamping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "dropped")
	rows := tb.Rows()
	if rows[0][1] != "" {
		t.Fatal("missing cells must render empty")
	}
	if len(rows[1]) != 2 {
		t.Fatal("extra cells must be dropped")
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean broken")
	}
}

func TestFitString(t *testing.T) {
	fit := PowerLawFit{Exponent: 0.333, Scale: 2, R2: 0.99, N: 5}
	if !strings.Contains(fit.String(), "0.333") {
		t.Fatalf("fit string = %q", fit.String())
	}
}
