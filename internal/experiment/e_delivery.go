package experiment

import (
	"fmt"
	"sort"

	"rcbcast/internal/core"
	"rcbcast/internal/engine"
	"rcbcast/internal/rng"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Delivery completeness across adversaries",
		Claim: "Theorem 1: at least (1-ε)n correct nodes receive m w.h.p. under every in-model adversary",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Reactive jamming and the decoy defence",
		Claim: "§4.1: a reactive Carol silences the bare protocol cheaply, but decoy traffic forces her to pay for a constant fraction of all slots (f < 1/24)",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E9",
		Title: "n-uniform stranding limit",
		Claim: "§2.3: an n-uniform Carol can strand a small ε-fraction, but stranding beyond the quiet-test threshold keeps the network (and her) running",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Approximate system-size parameters",
		Claim: "§4.2: constant-factor approximations of ln n and n preserve delivery at a constant-factor cost increase",
		Run:   runE10,
	})
}

// e3Scenarios names the registry scenarios E3 sweeps — every in-model
// attack the paper analyzes, in the report's row order. The reactive
// jammer is deliberately absent (its damage is economic, not
// delivery-absolute; E7 measures it).
var e3Scenarios = []string{
	"benign", "full-jam", "random-jam", "bursty",
	"inform-blocker", "inform+prop-blocker", "request-blocker",
	"partition-5%", "nack-spoofer", "data-spoofer",
	"sweep", "greedy-adaptive", "blocker+spoofer",
}

// deliveryScenario scales the named scenario to the E3 sweep: n nodes,
// k = 2, runs bounded at six rounds past the start (hopeless runs
// otherwise grind to the natural lg n + 4 limit).
func deliveryScenario(name string, n int) (scenario.Scenario, error) {
	sc, ok := scenario.Lookup(name)
	if !ok {
		return scenario.Scenario{}, fmt.Errorf("experiment: unknown scenario %q", name)
	}
	sc.N = n
	sc.K = 2
	sc.Overrides.ExtraRounds = 6
	return sc, nil
}

func runE3(cfg Config) (*Report, error) {
	rep := newReport("E3", "Delivery completeness across adversaries",
		"informed fraction ≥ 1-ε for every in-model adversary")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	specs := make([]sim.TrialSpec, 0, len(e3Scenarios)*seeds)
	for i, name := range e3Scenarios {
		sc, err := deliveryScenario(name, n)
		if err != nil {
			return nil, err
		}
		for s := 0; s < seeds; s++ {
			ts, err := sc.TrialSpec(cfg.seedAt(i, s))
			if err != nil {
				return nil, err
			}
			specs = append(specs, ts)
		}
	}
	fold := sink.NewFold(seeds,
		func(r *engine.Result) float64 { return r.InformedFrac() },
		func(r *engine.Result) float64 { return float64(r.Stranded) / float64(n) },
		func(r *engine.Result) float64 { return b2f(r.Completed) },
		func(r *engine.Result) float64 { return float64(r.AdversarySpent) },
	)
	if err := sim.Stream(cfg.ctx(), cfg.Procs, specs, fold); err != nil {
		return nil, err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E3: informed fraction by adversary (n=%d, k=2, paper-scale pools)", n),
		"adversary", "informed frac", "stranded frac", "completed", "T spent")
	for i, name := range e3Scenarios {
		tbl.AddRowf(name, fold.Mean(i, 0), fold.Mean(i, 1),
			fold.Mean(i, 2), fold.Mean(i, 3))
		rep.Values["informed_"+name] = fold.Mean(i, 0)
		rep.Values["completed_"+name] = fold.Mean(i, 2)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("every in-model adversary leaves ≥ (1-ε)n nodes informed")
	rep.addFinding("reactive jamming is treated separately in E7 — its damage is economic, not delivery-absolute")
	return rep, nil
}

func runE7(cfg Config) (*Report, error) {
	rep := newReport("E7", "Reactive jamming and the decoy defence",
		"undefended, a reactive Carol matches the nodes' spend ~1:1 (resource competitiveness destroyed); decoys restore the ~T^{1/3} trade by forcing her to jam a constant fraction of all slots")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	tbl := stats.NewTable(
		fmt.Sprintf("E7: reactive jammer economics (n=%d, f=1/25 budgeted pools)", n),
		"defence", "marginal node-vs-Carol exp", "budgeted: informed", "budgeted: rounds", "budgeted: delay slots", "budgeted: T")
	// One flat spec list per defence mode: seeds unlimited-pool probe
	// trials (for the marginal fit) followed by seeds budgeted trials.
	// Both variants run through a single worker-pool dispatch. The
	// reactive kind grants the RSSI view; Decoy selects the §4.1
	// defence via Params.EnableDecoy.
	mk := func(decoy bool, extraRounds int) scenario.Scenario {
		return scenario.Scenario{
			N: n, K: 2, Decoy: decoy,
			Adversary: scenario.AdversarySpec{Kind: "reactive"},
			Overrides: scenario.Overrides{ExtraRounds: extraRounds},
		}
	}
	var specs []sim.TrialSpec
	appendSpecs := func(sc scenario.Scenario, point int) error {
		for s := 0; s < seeds; s++ {
			ts, err := sc.TrialSpec(cfg.seedAt(point, s))
			if err != nil {
				return err
			}
			specs = append(specs, ts)
		}
		return nil
	}
	for ri, decoy := range []bool{false, true} {
		probe := mk(decoy, 4)
		probe.RecordPhases = true
		if err := appendSpecs(probe, 7000+ri); err != nil {
			return nil, err
		}
		budgeted := mk(decoy, 8)
		budgeted.Budget = scenario.BudgetSpec{ModelC: 8, ModelF: 1.0 / 25}
		if err := appendSpecs(budgeted, 7500+ri); err != nil {
			return nil, err
		}
	}
	// Stream the flat spec list once; trial i belongs to group i/seeds
	// (0: undefended probe, 1: undefended budgeted, 2: decoy probe,
	// 3: decoy budgeted). Probe results contribute their per-round fit
	// series as they pass — the RecordPhases payloads are dropped right
	// after — and budgeted results fold into accumulators.
	type e7group struct {
		xs, ys                       []float64
		fracs, rounds, slots, spents stats.Acc
	}
	groups := make([]e7group, 4)
	err := sim.Stream(cfg.ctx(), cfg.Procs, specs, sink.Func(func(i int, res *engine.Result) error {
		g := &groups[i/seeds]
		if (i/seeds)%2 == 0 {
			// (a) Marginal exponent with an unlimited pool: fit per-round
			// node cost against per-round Carol spend over jammed rounds.
			perRoundCarol := map[int]float64{}
			perRoundNode := map[int]float64{}
			for _, ph := range res.Phases {
				perRoundCarol[ph.Phase.Round] += float64(ph.JammedSlots + ph.InjectedFrames)
				perRoundNode[ph.Phase.Round] += float64(ph.NodeListens+
					int64(ph.NodeDataSends+ph.NodeNacks+ph.NodeDecoys)) / float64(n)
			}
			// Walk rounds in order: FitPowerLaw's sums are float-order
			// sensitive, and map range order would leak into the rendered
			// exponent, breaking byte-reproducibility.
			rounds := make([]int, 0, len(perRoundCarol))
			for round := range perRoundCarol {
				rounds = append(rounds, round)
			}
			sort.Ints(rounds)
			for _, round := range rounds {
				if carol := perRoundCarol[round]; carol > 0 {
					g.xs = append(g.xs, carol)
					g.ys = append(g.ys, perRoundNode[round])
				}
			}
			return nil
		}
		// (b) Budgeted outcome: with the Lemma-19 pool (f < 1/24) decoys
		// drain Carol rounds earlier, cutting the delay exponentially.
		g.fracs.Add(res.InformedFrac())
		g.rounds.Add(float64(res.Rounds))
		g.slots.Add(float64(res.SlotsSimulated))
		g.spents.Add(float64(res.AdversarySpent))
		return nil
	}))
	if err != nil {
		return nil, err
	}
	for ri, decoy := range []bool{false, true} {
		suffix := "undefended"
		if decoy {
			suffix = "decoy"
		}
		probe, budgeted := &groups[2*ri], &groups[2*ri+1]
		fit := stats.FitPowerLaw(probe.xs, probe.ys)
		tbl.AddRowf(suffix, fit.Exponent, budgeted.fracs.Mean(), budgeted.rounds.Mean(),
			budgeted.slots.Mean(), budgeted.spents.Mean())
		rep.Values["exponent_"+suffix] = fit.Exponent
		rep.Values["informed_"+suffix] = budgeted.fracs.Mean()
		rep.Values["rounds_"+suffix] = budgeted.rounds.Mean()
		rep.Values["delay_slots_"+suffix] = budgeted.slots.Mean()
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("undefended: node cost ~ Carol spend^%.2f — she stalls the network at spend parity",
		rep.Values["exponent_undefended"])
	rep.addFinding("with decoys: node cost ~ Carol spend^%.2f — the Theorem-1 trade is restored",
		rep.Values["exponent_decoy"])
	rep.addFinding("same budgeted pool: decoys cut the achievable delay from %.3g to %.3g slots",
		rep.Values["delay_slots_undefended"], rep.Values["delay_slots_decoy"])
	return rep, nil
}

func runE9(cfg Config) (*Report, error) {
	rep := newReport("E9", "n-uniform stranding limit",
		"stranding succeeds only up to the quiet-test fraction; larger sets keep nacking and the network never falsely terminates")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	fracs := []float64{0.02, 0.05, 0.10, 0.30}
	params0 := core.PracticalParams(n, 2)
	tbl := stats.NewTable(
		fmt.Sprintf("E9: partition attack outcomes (n=%d, quiet fraction θ=%.3g)", n, 2*params0.Epsilon),
		"stranded requested", "informed frac", "stranded frac", "still active frac", "completed")
	specs := make([]sim.TrialSpec, 0, len(fracs)*seeds)
	for fi, want := range fracs {
		sc := scenario.Scenario{
			N: n, K: 2,
			Adversary: scenario.AdversarySpec{Kind: "partition", Strand: want},
			Overrides: scenario.Overrides{ExtraRounds: 4},
		}
		for s := 0; s < seeds; s++ {
			ts, err := sc.TrialSpec(cfg.seedAt(9000+fi, s))
			if err != nil {
				return nil, err
			}
			specs = append(specs, ts)
		}
	}
	fold := sink.NewFold(seeds,
		func(r *engine.Result) float64 { return r.InformedFrac() },
		func(r *engine.Result) float64 { return float64(r.Stranded) / float64(n) },
		func(r *engine.Result) float64 { return float64(r.ActiveAtEnd) / float64(n) },
		func(r *engine.Result) float64 { return b2f(r.Completed) },
	)
	if err := sim.Stream(cfg.ctx(), cfg.Procs, specs, fold); err != nil {
		return nil, err
	}
	for fi, want := range fracs {
		tbl.AddRowf(want, fold.Mean(fi, 0), fold.Mean(fi, 1),
			fold.Mean(fi, 2), fold.Mean(fi, 3))
		rep.Values[fmt.Sprintf("stranded_at_%.2f", want)] = fold.Mean(fi, 1)
		rep.Values[fmt.Sprintf("completed_at_%.2f", want)] = fold.Mean(fi, 3)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("small partitions terminate uninformed (the ε loss); oversized ones leave the network active, so the attack fails closed")
	return rep, nil
}

func runE10(cfg Config) (*Report, error) {
	rep := newReport("E10", "Approximate system-size parameters",
		"running with 2x-off estimates of ln n and n changes costs by a constant factor only")
	n := cfg.n(512, 256)
	seeds := cfg.seeds(3, 2)
	// The scale approximations are declarative overrides; the per-node
	// mode needs a function-valued perturbation, which stays a
	// TrialSpec.Configure on top of the scenario-built spec (Perturb is
	// the one knob a serializable value cannot carry).
	perturb := func(o *engine.Options) {
		o.Perturb = func(node int) (float64, float64) {
			// Deterministic per-node scale in [0.5, 2].
			u := rng.New(12345, uint64(node)).Float64()
			scale := 0.5 * (1 + 3*u)
			return scale, 1 / scale
		}
	}
	type variant struct {
		name      string
		overrides scenario.Overrides
		configure func(*engine.Options)
	}
	variants := []variant{
		{name: "exact"},
		{name: "global ln 2x, n 2x", overrides: scenario.Overrides{LnScale: 2, NScale: 2}},
		{name: "global ln 0.5x, n 0.5x", overrides: scenario.Overrides{LnScale: 0.5, NScale: 0.5}},
		{name: "per-node ±2x", configure: perturb},
		{name: "poly overestimate ν=n² (g-sweep)", overrides: scenario.Overrides{PolyEstimate: float64(n) * float64(n)}},
	}
	specs := make([]sim.TrialSpec, 0, len(variants)*seeds)
	for vi, v := range variants {
		sc := scenario.Scenario{N: n, K: 2, Overrides: v.overrides}
		for s := 0; s < seeds; s++ {
			ts, err := sc.TrialSpec(cfg.seedAt(10_000+vi, s))
			if err != nil {
				return nil, err
			}
			// Chain rather than overwrite: the scenario may install its
			// own Configure (reactive grant, phase recording, budgets).
			if v.configure != nil {
				prev := ts.Configure
				extra := v.configure
				ts.Configure = func(o *engine.Options) {
					if prev != nil {
						prev(o)
					}
					extra(o)
				}
			}
			specs = append(specs, ts)
		}
	}
	fold := sink.NewFold(seeds,
		func(r *engine.Result) float64 { return r.InformedFrac() },
		func(r *engine.Result) float64 { return b2f(r.Completed) },
		func(r *engine.Result) float64 { return float64(r.NodeCost.Median) },
	)
	if err := sim.Stream(cfg.ctx(), cfg.Procs, specs, fold); err != nil {
		return nil, err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E10: §4.2 approximation modes (n=%d, k=2)", n),
		"mode", "informed frac", "completed", "node median cost", "cost vs exact")
	baselineCost := 0.0
	for vi, v := range variants {
		med := fold.Mean(vi, 2)
		if vi == 0 {
			baselineCost = med
		}
		ratio := med / baselineCost
		tbl.AddRowf(v.name, fold.Mean(vi, 0), fold.Mean(vi, 1), med, ratio)
		rep.Values[fmt.Sprintf("informed_v%d", vi)] = fold.Mean(vi, 0)
		rep.Values[fmt.Sprintf("cost_ratio_v%d", vi)] = ratio
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("all approximation modes deliver; cost moves by small constant factors")
	return rep, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
