package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rcbcast/internal/adversary"
	"rcbcast/internal/core"
)

func samplePhase() core.Phase {
	p := core.PracticalParams(64, 2)
	return p.Round(6)[0]
}

func driveTracer(t Tracer) {
	ph := samplePhase()
	t.PhaseStart(ph)
	t.NodeInformed(3, ph)
	t.NodeInformed(4, ph)
	t.NodeTerminated(3, true, ph)
	t.NodeTerminated(9, false, ph)
	t.PhaseEnd(adversary.PhaseOutcome{Phase: ph, AliceSends: 7, JammedSlots: 11, InformedAfter: 2, ActiveAfter: 62})
	t.AliceTerminated(6)
	t.Done()
}

func TestTextTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewText(&buf)
	driveTracer(tr)
	out := buf.String()
	for _, want := range []string{
		"r6/inform", "alice=7", "jam=11", "+informed=2", "+done=1", "+stranded=1",
		"alice terminated in round 6", "run complete",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text trace missing %q:\n%s", want, out)
		}
	}
}

func TestJSONTracerWellFormed(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	driveTracer(tr)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("expected 8 NDJSON events, got %d", len(lines))
	}
	events := []string{}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", l, err)
		}
		events = append(events, m["event"].(string))
	}
	want := []string{"phase_start", "node_informed", "node_informed",
		"node_terminated", "node_terminated", "phase_end", "alice_terminated"}
	_ = want
	if events[0] != "phase_start" || events[len(events)-1] != "done" {
		t.Fatalf("event order wrong: %v", events)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &Counter{}, &Counter{}
	driveTracer(Multi{a, b})
	for _, c := range []*Counter{a, b} {
		if c.Phases != 1 || c.Informed != 2 || c.Terminated != 1 || c.Stranded != 1 {
			t.Fatalf("counter: %+v", c)
		}
		if c.AliceRound != 6 || !c.DoneCalled {
			t.Fatalf("counter: %+v", c)
		}
	}
}

func TestNopIsSilent(t *testing.T) {
	driveTracer(Nop{}) // must not panic
}
