package main

import (
	"context"
	"os"
	"strings"
	"testing"
)

// TestQuickReportsMatchPreTopologyGolden pins `rcexp -quick` output for
// E1–E12 against testdata/quick_main.golden, captured on main
// immediately before the topology-layer refactor. Every experiment
// constructs its runs through scenario → sim → engine, so this is the
// end-to-end byte-identity guarantee that the clique fast path — and
// the sim layer's scratch reuse — changed nothing. E13 is excluded
// because it did not exist at capture time.
//
// Regenerate (only after an intentional behaviour change):
//
//	go run ./cmd/rcexp -quick | grep -v '^wall time' | head -n -<E13 lines>
func TestQuickReportsMatchPreTopologyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale experiment sweep; skipped in -short")
	}
	golden, err := os.ReadFile("testdata/quick_main.golden")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6",
		"E7", "E8", "E9", "E10", "E11", "E12"} {
		var buf strings.Builder
		if err := run(context.Background(), []string{"-id", id, "-quick"}, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, line := range strings.SplitAfter(buf.String(), "\n") {
			if strings.HasPrefix(line, "wall time") {
				continue
			}
			sb.WriteString(line)
		}
	}
	if sb.String() != string(golden) {
		t.Fatalf("rcexp -quick diverged from the pre-topology golden.\n"+
			"If the change is intentional, regenerate testdata/quick_main.golden.\n--- got\n%s", sb.String())
	}
}
