package experiment

import (
	"context"
	"fmt"
	"math"

	"rcbcast/internal/baseline"
	"rcbcast/internal/core"
	"rcbcast/internal/engine"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/stats"
)

// costPoint is one averaged sweep point of a cost-vs-T experiment.
type costPoint struct {
	T          float64
	Alice      float64
	NodeMedian float64
	NodeMax    float64
	Rounds     float64
}

// costSweep runs the full jammer with pool budgets `pools` and returns
// per-budget averages over cfg seeds. Trials run through the streaming
// session into a Fold sink — per-budget accumulators, never the full
// result slice — and each budget reuses the same trial seeds (common
// random numbers), as the sequential sweep always did.
func costSweep(cfg Config, n, k, seeds int, pools []int64) ([]costPoint, error) {
	specs := make([]sim.TrialSpec, 0, len(pools)*seeds)
	for _, budget := range pools {
		sc := scenario.Scenario{
			N: n, K: k,
			Adversary: scenario.AdversarySpec{Kind: "full"},
			Budget:    scenario.BudgetSpec{Pool: budget},
		}
		for s := 0; s < seeds; s++ {
			ts, err := sc.TrialSpec(cfg.seed(s))
			if err != nil {
				return nil, err
			}
			specs = append(specs, ts)
		}
	}
	fold := sink.NewFold(seeds,
		func(r *engine.Result) float64 { return float64(r.AdversarySpent) },
		func(r *engine.Result) float64 { return float64(r.Alice.Cost) },
		func(r *engine.Result) float64 { return float64(r.NodeCost.Median) },
		func(r *engine.Result) float64 { return float64(r.NodeCost.Max) },
		func(r *engine.Result) float64 { return float64(r.Rounds) },
	)
	if err := sim.Stream(cfg.ctx(), cfg.Procs, specs, fold); err != nil {
		return nil, err
	}
	points := make([]costPoint, 0, len(pools))
	for bi := range pools {
		points = append(points, costPoint{
			T:          fold.Mean(bi, 0),
			Alice:      fold.Mean(bi, 1),
			NodeMedian: fold.Mean(bi, 2),
			NodeMax:    fold.Mean(bi, 3),
			Rounds:     fold.Mean(bi, 4),
		})
	}
	return points, nil
}

// sweepBudgets returns adversary pool sizes from 2^9 up to n^{1+1/k} —
// the theorem's regime: Carol's own budget is Θ(n^{1+1/k}), so cost
// scaling is only claimed for T below that. (Beyond it the Θ(T/n)
// NACK-send term takes over and the exponent drifts up; an early version
// of this harness measured exactly that drift.)
func sweepBudgets(n, k int, quick bool) []int64 {
	cap64 := int64(math.Pow(float64(n), 1+1/float64(k)))
	lo := int64(1 << 11)
	if quick {
		lo = 1 << 9
	}
	var out []int64
	for b := lo; b <= cap64; b *= 2 {
		out = append(out, b)
	}
	if len(out) < 3 { // tiny n: make sure the fit has points
		out = []int64{lo, lo * 2, lo * 4}
	}
	return out
}

// marginalPoint is one round of a deep fully-jammed run: what blocking
// that round cost Carol versus what running it cost the correct devices.
type marginalPoint struct {
	Round     int
	BlockCost float64 // Carol's jam spend on the round
	NodeCost  float64 // mean per-node spend in the round
	AliceCost float64 // Alice's spend in the round
}

// marginalSweep measures the *marginal* cost trade Theorem 1 is really
// about: delaying the protocol by one more round costs Carol the round's
// full length, while each correct device pays only ~(round length)^{1/(k+1)}
// more. Unlike cumulative cost-vs-T curves, the per-round quantities are
// pure geometric series, so the fitted exponent is clean even at laptop n
// (cumulative fits carry a truncated-sum warm-up bias; see EXPERIMENTS.md).
func marginalSweep(cfg Config, n, k, seeds int) ([]marginalPoint, error) {
	// Budget Carol for exactly four fully-blocked rounds: the marginal
	// per-round trade is well-defined round by round, so unlike the
	// cumulative sweep it does not need T capped at her Theorem-1 budget.
	params := core.PracticalParams(n, k)
	pool := params.TotalSlots(params.StartRound + 3)
	sc := scenario.Scenario{
		N: n, K: k,
		Adversary:    scenario.AdversarySpec{Kind: "full"},
		Budget:       scenario.BudgetSpec{Pool: pool},
		RecordPhases: true,
	}
	specs := make([]sim.TrialSpec, seeds)
	for s := range specs {
		ts, err := sc.TrialSpec(cfg.seedAt(777, s))
		if err != nil {
			return nil, err
		}
		specs[s] = ts
	}
	// Each trial's phase records are folded into the per-round points as
	// the result streams past, then dropped — the RecordPhases payloads
	// never accumulate.
	byRound := map[int]*marginalPoint{}
	err := sim.Stream(cfg.ctx(), cfg.Procs, specs, sink.Func(func(_ int, res *engine.Result) error {
		type agg struct {
			slots, jammed     int64
			nodeOps, aliceOps int64
		}
		rounds := map[int]*agg{}
		for _, ph := range res.Phases {
			a := rounds[ph.Phase.Round]
			if a == nil {
				a = &agg{}
				rounds[ph.Phase.Round] = a
			}
			a.slots += int64(ph.Phase.Length)
			a.jammed += ph.JammedSlots
			a.nodeOps += ph.NodeListens + int64(ph.NodeDataSends+ph.NodeNacks+ph.NodeDecoys)
			a.aliceOps += int64(ph.AliceSends) + ph.AliceListens
		}
		for round, a := range rounds {
			// Only fully-blocked rounds measure the marginal trade; the
			// final (partially clean) round is the delivery round.
			if float64(a.jammed) < 0.9*float64(a.slots) {
				continue
			}
			p := byRound[round]
			if p == nil {
				p = &marginalPoint{Round: round}
				byRound[round] = p
			}
			p.BlockCost += float64(a.jammed) / float64(seeds)
			p.NodeCost += float64(a.nodeOps) / float64(n) / float64(seeds)
			p.AliceCost += float64(a.aliceOps) / float64(seeds)
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}
	points := make([]marginalPoint, 0, len(byRound))
	for _, p := range byRound {
		points = append(points, *p)
	}
	sortMarginal(points)
	return points, nil
}

func sortMarginal(points []marginalPoint) {
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j].Round < points[j-1].Round; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
}

func fitMarginal(points []marginalPoint) (node, alice stats.PowerLawFit) {
	var xs, ns, as []float64
	for _, p := range points {
		xs = append(xs, p.BlockCost)
		ns = append(ns, p.NodeCost)
		as = append(as, p.AliceCost)
	}
	return stats.FitPowerLaw(xs, ns), stats.FitPowerLaw(xs, as)
}

func fitCosts(points []costPoint) (alice, nodeMed, nodeMax stats.PowerLawFit) {
	var ts, as, med, mx []float64
	for _, p := range points {
		ts = append(ts, p.T)
		as = append(as, p.Alice)
		med = append(med, p.NodeMedian)
		mx = append(mx, p.NodeMax)
	}
	return stats.FitPowerLaw(ts, as), stats.FitPowerLaw(ts, med), stats.FitPowerLaw(ts, mx)
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Cost scaling versus adversary spend (k = 2)",
		Claim: "Theorem 1: against T slots of jamming, Alice and each node pay only Õ(T^{1/3}+1)",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Cost exponent for general k",
		Claim: "Theorem 1: the per-device cost exponent is 1/(k+1)",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Load balancing between Alice and the nodes",
		Claim: "§1 goal: Alice and each node incur asymptotically equal costs up to log factors",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Baselines: naive and KSY'11 versus ε-BROADCAST",
		Claim: "§1.2: naive pays Θ(T) per node; KSY pays T^{0.62} for Alice but Θ(T) per listener; ours pays ~T^{1/3} for both",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Spoofed-NACK attack on the request phase",
		Claim: "§2.2/Lemma 10: tricking Alice into extra rounds costs Carol Ω(2^{(3/2)i}) per round while Alice pays only ~T^{1/3}",
		Run:   runE8,
	})
}

func runE1(cfg Config) (*Report, error) {
	rep := newReport("E1", "Cost scaling versus adversary spend (k = 2)",
		"Alice and node costs grow as ~T^{1/3} (Theorem 1, k = 2)")
	n := cfg.n(2048, 1024)
	seeds := cfg.seeds(3, 2)

	// Table A: cumulative cost vs total adversary spend (readability:
	// who wins and by what factor).
	points, err := costSweep(cfg, n, 2, seeds, sweepBudgets(n, 2, cfg.Quick))
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E1a: cumulative per-device cost vs adversary spend T (n=%d, k=2, full jammer, %d seeds)", n, seeds),
		"T", "alice cost", "node median", "node max", "rounds", "T^(1/3)")
	for _, p := range points {
		tbl.AddRowf(p.T, p.Alice, p.NodeMedian, p.NodeMax, p.Rounds, math.Pow(p.T, 1.0/3))
	}
	rep.Tables = append(rep.Tables, tbl)
	aliceCum, medCum, _ := fitCosts(points)

	// Table B: the marginal per-round trade, which measures the theorem's
	// exponent without the finite-size warm-up bias of cumulative sums.
	marg, err := marginalSweep(cfg, n, 2, seeds)
	if err != nil {
		return nil, err
	}
	mtbl := stats.NewTable(
		fmt.Sprintf("E1b: marginal per-round trade (n=%d, k=2): Carol's cost to block round i vs per-device cost of round i", n),
		"round", "carol block cost", "node cost", "alice cost", "block^(1/3)")
	for _, p := range marg {
		mtbl.AddRowf(p.Round, p.BlockCost, p.NodeCost, p.AliceCost, math.Pow(p.BlockCost, 1.0/3))
	}
	rep.Tables = append(rep.Tables, mtbl)
	nodeFit, aliceFit := fitMarginal(marg)

	rep.Values["node_exponent"] = nodeFit.Exponent
	rep.Values["alice_exponent"] = aliceFit.Exponent
	rep.Values["node_cumulative_exponent"] = medCum.Exponent
	rep.Values["alice_cumulative_exponent"] = aliceCum.Exponent
	rep.Values["predicted_exponent"] = 1.0 / 3
	rep.addFinding("marginal node cost %v (prediction x^{1/3})", nodeFit)
	rep.addFinding("marginal alice cost %v (prediction x^{1/3} up to log factors)", aliceFit)
	rep.addFinding("cumulative fits (node %v, alice %v) sit above 1/3 at laptop n: the cumulative sum is still in its warm-up regime — see EXPERIMENTS.md", medCum, aliceCum)
	return rep, nil
}

func runE2(cfg Config) (*Report, error) {
	rep := newReport("E2", "Cost exponent for general k",
		"the node-cost exponent tracks 1/(k+1) as k grows (Theorem 1, §3)")
	n := cfg.n(2048, 1024)
	seeds := cfg.seeds(3, 2)
	ks := []int{2, 3, 4}
	tbl := stats.NewTable(
		fmt.Sprintf("E2: marginal cost exponents by k (n=%d, full jammer, %d seeds)", n, seeds),
		"k", "predicted 1/(k+1)", "node exp", "alice exp", "R² (node)")
	for _, k := range ks {
		marg, err := marginalSweep(cfg, n, k, seeds)
		if err != nil {
			return nil, err
		}
		nodeFit, aliceFit := fitMarginal(marg)
		pred := 1.0 / float64(k+1)
		tbl.AddRowf(k, pred, nodeFit.Exponent, aliceFit.Exponent, nodeFit.R2)
		rep.Values[fmt.Sprintf("node_exponent_k%d", k)] = nodeFit.Exponent
		rep.Values[fmt.Sprintf("predicted_k%d", k)] = pred
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.addFinding("larger k buys a smaller node-cost exponent, as §3 predicts")
	rep.addFinding("alice's k≥3 exponent is inflated at laptop n: her Figure-2 send probability 2c·ln^k n/2^i stays clamped at 1 through every affordable round (a finite-size effect, not a protocol property)")
	return rep, nil
}

func runE5(cfg Config) (*Report, error) {
	rep := newReport("E5", "Load balancing between Alice and the nodes",
		"Alice/median-node cost ratio stays polylogarithmic in n across all T")
	n := cfg.n(2048, 1024)
	seeds := cfg.seeds(3, 2)
	points, err := costSweep(cfg, n, 2, seeds, sweepBudgets(n, 2, cfg.Quick))
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E5: load balance (n=%d, k=2, full jammer)", n),
		"T", "alice cost", "node median", "alice/node ratio")
	maxRatio := 0.0
	for _, p := range points {
		ratio := p.Alice / math.Max(p.NodeMedian, 1)
		maxRatio = math.Max(maxRatio, ratio)
		tbl.AddRowf(p.T, p.Alice, p.NodeMedian, ratio)
	}
	rep.Tables = append(rep.Tables, tbl)
	logn := math.Log(float64(n))
	rep.Values["max_ratio"] = maxRatio
	rep.Values["polylog_bound"] = logn * logn
	rep.addFinding("max Alice/node ratio %.3g vs ln²n = %.3g", maxRatio, logn*logn)
	return rep, nil
}

func runE6(cfg Config) (*Report, error) {
	rep := newReport("E6", "Baselines: naive and KSY'11 versus ε-BROADCAST",
		"ours is the only load-balanced protocol with a sub-√ exponent for everyone")
	n := cfg.n(2048, 1024)
	seeds := cfg.seeds(3, 2)
	budgets := sweepBudgets(n, 2, cfg.Quick)
	tbl := stats.NewTable(
		fmt.Sprintf("E6: per-device cost under a T-slot jam (n=%d)", n),
		"T", "naive node", "KSY alice", "KSY node", "ours alice", "ours node(med)")
	points, err := costSweep(cfg, n, 2, seeds, budgets)
	if err != nil {
		return nil, err
	}
	// The KSY baseline is not an engine run, so it rides the generic
	// streaming map — trial index -> (sweep point, seed) — folding each
	// result into its point's accumulators on delivery.
	horizon := int64(1) << 26
	ka := make([]stats.Acc, len(points))
	kn := make([]stats.Acc, len(points))
	err = sim.StreamMap(cfg.ctx(), cfg.Procs, len(points)*seeds,
		func(_ context.Context, t int) (baseline.Result, error) {
			i, s := t/seeds, t%seeds
			jam := int64(points[i].T)
			return baseline.RunKSY(cfg.seedAt(6000+i, s), jam, horizon, baseline.KSYParams{}), nil
		},
		func(t int, kr baseline.Result) error {
			ka[t/seeds].Add(float64(kr.AliceCost))
			kn[t/seeds].Add(float64(kr.NodeCost))
			return nil
		})
	if err != nil {
		return nil, err
	}
	var ts, naives, ksyA, ksyN, oursA, oursN []float64
	for i, p := range points {
		jam := int64(p.T)
		nv := baseline.RunNaive(jam, horizon)
		tbl.AddRowf(p.T, float64(nv.NodeCost), ka[i].Mean(), kn[i].Mean(), p.Alice, p.NodeMedian)
		ts = append(ts, p.T)
		naives = append(naives, float64(nv.NodeCost))
		ksyA = append(ksyA, ka[i].Mean())
		ksyN = append(ksyN, kn[i].Mean())
		oursA = append(oursA, p.Alice)
		oursN = append(oursN, p.NodeMedian)
	}
	rep.Tables = append(rep.Tables, tbl)
	fits := map[string]stats.PowerLawFit{
		"naive_node_exponent": stats.FitPowerLaw(ts, naives),
		"ksy_alice_exponent":  stats.FitPowerLaw(ts, ksyA),
		"ksy_node_exponent":   stats.FitPowerLaw(ts, ksyN),
		"ours_alice_exponent": stats.FitPowerLaw(ts, oursA),
		"ours_node_exponent":  stats.FitPowerLaw(ts, oursN),
	}
	for name, fit := range fits {
		rep.Values[name] = fit.Exponent
	}
	rep.addFinding("naive node %v", fits["naive_node_exponent"])
	rep.addFinding("KSY alice %v — sublinear but listeners pay %v", fits["ksy_alice_exponent"], fits["ksy_node_exponent"])
	rep.addFinding("ours: alice %v, node %v — load balanced at ~T^{1/3}", fits["ours_alice_exponent"], fits["ours_node_exponent"])
	return rep, nil
}

func runE8(cfg Config) (*Report, error) {
	rep := newReport("E8", "Spoofed-NACK attack on the request phase",
		"keeping Alice alive one more round costs Carol a constant fraction of the request phase; Alice's cost stays ~T^{1/3}")
	n := cfg.n(1024, 512)
	seeds := cfg.seeds(3, 2)
	budgets := sweepBudgets(n, 2, cfg.Quick)
	tbl := stats.NewTable(
		fmt.Sprintf("E8: Alice cost vs spoofing spend (n=%d, k=2)", n),
		"spoof spend T", "alice cost", "alice term round", "informed frac")
	specs := make([]sim.TrialSpec, 0, len(budgets)*seeds)
	for i, budget := range budgets {
		sc := scenario.Scenario{
			N: n, K: 2,
			Adversary: scenario.AdversarySpec{Kind: "spoofer", P: 0.5},
			Budget:    scenario.BudgetSpec{Pool: budget},
		}
		for s := 0; s < seeds; s++ {
			ts, err := sc.TrialSpec(cfg.seedAt(5000+i, s))
			if err != nil {
				return nil, err
			}
			specs = append(specs, ts)
		}
	}
	fold := sink.NewFold(seeds,
		func(r *engine.Result) float64 { return float64(r.AdversarySpent) },
		func(r *engine.Result) float64 { return float64(r.Alice.Cost) },
		func(r *engine.Result) float64 { return float64(r.Alice.Round) },
		func(r *engine.Result) float64 { return r.InformedFrac() },
	)
	if err := sim.Stream(cfg.ctx(), cfg.Procs, specs, fold); err != nil {
		return nil, err
	}
	var ts, alices []float64
	for i := range budgets {
		tbl.AddRowf(fold.Mean(i, 0), fold.Mean(i, 1),
			fold.Mean(i, 2), fold.Mean(i, 3))
		ts = append(ts, fold.Mean(i, 0))
		alices = append(alices, fold.Mean(i, 1))
	}
	rep.Tables = append(rep.Tables, tbl)
	fit := stats.FitPowerLaw(ts, alices)
	rep.Values["alice_exponent"] = fit.Exponent
	rep.Values["predicted_exponent"] = 1.0 / 3
	rep.addFinding("alice cost under pure spoofing %v (prediction a/(b/2+1) = 1/3)", fit)
	return rep, nil
}
