// Quickstart: broadcast a message to a dense sensor network with no
// adversary, then against a jammer, and compare what everyone paid.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rcbcast"
)

func main() {
	const n = 1024

	// A benign run: Alice delivers m, everyone terminates, costs are
	// polylogarithmic-ish. Runs are declarative Scenario values.
	benign, err := rcbcast.Scenario{N: n, K: 2, Seed: 1}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— benign network —")
	report(benign)

	// Now Carol shows up with a 16k-slot energy pool and jams everything
	// she can afford. Delivery still happens; she just goes broke first,
	// and every correct device pays only ~T^{1/3}.
	jammed, err := rcbcast.Scenario{
		N: n, K: 2, Seed: 1,
		Adversary: rcbcast.AdversarySpec{Kind: "full"},
		Budget:    rcbcast.BudgetSpec{Pool: 1 << 14},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— same network, full jammer with a 16384-slot pool —")
	report(jammed)

	fmt.Printf("\nthe evildoer paid %.1fx the median node to delay delivery by %d slots\n",
		float64(jammed.AdversarySpent)/float64(jammed.NodeCost.Median),
		jammed.SlotsSimulated-benign.SlotsSimulated)
}

func report(res *rcbcast.Result) {
	fmt.Printf("informed:   %d/%d nodes (%.1f%%)\n", res.Informed, res.N, 100*res.InformedFrac())
	fmt.Printf("latency:    %d slots, %d rounds\n", res.SlotsSimulated, res.Rounds)
	fmt.Printf("alice:      %d energy units (%d sends + %d listens)\n",
		res.Alice.Cost, res.Alice.Sends, res.Alice.Listens)
	fmt.Printf("node cost:  median %d, max %d\n", res.NodeCost.Median, res.NodeCost.Max)
	fmt.Printf("adversary:  %d energy units\n", res.AdversarySpent)
}
