package sampling

import (
	"testing"

	"rcbcast/internal/rng"
)

// TestBlockScheduleMatchesSlotSchedule pins the block schedule to the
// scalar one slot for slot across the probability / length grid the
// engine exercises: degenerate p, p ≥ 1, sparse and dense regimes, and
// lengths around the block size.
func TestBlockScheduleMatchesSlotSchedule(t *testing.T) {
	ps := []float64{0, -0.5, 1e-9, 1e-4, 0.01, 0.1, 0.5, 0.97, 1, 1.5}
	lengths := []int{0, 1, 2, 7, 8, 9, 63, 64, 100, 1024, 1 << 15}
	for _, p := range ps {
		for _, length := range lengths {
			var scalarStream, blockStream rng.Stream
			scalarStream.Reseed(12345, uint64(length))
			blockStream.Reseed(12345, uint64(length))
			var scalar SlotSchedule
			var block BlockSchedule
			scalar.Reset(&scalarStream, p, length)
			block.Reset(&blockStream, p, length)
			for i := 0; ; i++ {
				ws, wok := scalar.Next()
				gs, gok := block.Next()
				if ws != gs || wok != gok {
					t.Fatalf("p=%v length=%d event %d: scalar (%d,%v) block (%d,%v)",
						p, length, i, ws, wok, gs, gok)
				}
				if !wok {
					break
				}
			}
			// Once exhausted, both stay exhausted.
			if _, ok := block.Next(); ok {
				t.Fatalf("p=%v length=%d: block schedule revived after exhaustion", p, length)
			}
		}
	}
}

// TestBlockScheduleManySeeds sweeps seeds at one engine-typical
// configuration so refill boundaries land everywhere in the buffer.
func TestBlockScheduleManySeeds(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		var ss, bs rng.Stream
		ss.Reseed(seed)
		bs.Reseed(seed)
		var scalar SlotSchedule
		var block BlockSchedule
		scalar.Reset(&ss, 0.07, 4096)
		block.Reset(&bs, 0.07, 4096)
		for {
			ws, wok := scalar.Next()
			gs, gok := block.Next()
			if ws != gs || wok != gok {
				t.Fatalf("seed %d: scalar (%d,%v) block (%d,%v)", seed, ws, wok, gs, gok)
			}
			if !wok {
				break
			}
		}
	}
}
