package stats

import "math"

// Acc is a mergeable streaming accumulator: mean, variance, and extrema
// in O(1) space. Sweep points aggregate trial results through Acc instead
// of retaining full per-trial slices, and shards of a sweep (worker
// batches, future multi-machine splits) combine with Merge.
//
// The running mean/variance use Welford's algorithm; Merge uses the
// parallel combination due to Chan et al. Both are numerically stable.
// Note that floating-point accumulation is order-sensitive: callers that
// need bit-for-bit reproducible output must Add (and Merge) in a
// deterministic order — the sim runner's index-ordered results make that
// natural.
type Acc struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Merge folds another accumulator's observations into a, as if every
// sample added to b had been added to a.
func (a *Acc) Merge(b Acc) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.mean += delta * float64(b.n) / float64(n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

// N returns the number of observations.
func (a *Acc) N() int64 { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Acc) Mean() float64 { return a.mean }

// Sum returns the sample total.
func (a *Acc) Sum() float64 { return a.mean * float64(a.n) }

// Var returns the population variance (0 when empty).
func (a *Acc) Var() float64 {
	if a.n == 0 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// Std returns the population standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 when empty).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Acc) Max() float64 { return a.max }
