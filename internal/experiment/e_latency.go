package experiment

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"rcbcast/internal/engine"
	"rcbcast/internal/scenario"
	"rcbcast/internal/sim"
	"rcbcast/internal/sim/sink"
	"rcbcast/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Worst-case latency scaling",
		Claim: "Theorem 1 / Corollary 1: termination within O(n^{1+1/k}) slots, which is asymptotically optimal",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Engine ablation: sequential vs actor",
		Claim: "the goroutine actor engine is bit-for-bit equivalent to the sequential event-driven engine (DESIGN.md §5)",
		Run:   runE11,
	})
}

func runE4(cfg Config) (*Report, error) {
	rep := newReport("E4", "Worst-case latency scaling",
		"slots-to-completion under a maximally-blocking budget-respecting Carol scales as n^{1+1/k}")
	seeds := cfg.seeds(3, 2)
	ns := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		ns = []int{128, 256, 512}
	}
	k := 2
	tbl := stats.NewTable(
		fmt.Sprintf("E4: latency vs n (k=%d, phase-blocking Carol with paper budget f=1)", k),
		"n", "slots", "rounds", "informed frac", "n^{1+1/k}")
	specs := make([]sim.TrialSpec, 0, len(ns)*seeds)
	for ni, n := range ns {
		sc := scenario.Scenario{
			N: n, K: k,
			Adversary: scenario.AdversarySpec{Kind: "blocker", Inform: true, Propagate: true},
			Budget:    scenario.BudgetSpec{ModelC: 1, ModelF: 1},
		}
		for s := 0; s < seeds; s++ {
			ts, err := sc.TrialSpec(cfg.seedAt(4000+ni, s))
			if err != nil {
				return nil, err
			}
			specs = append(specs, ts)
		}
	}
	fold := sink.NewFold(seeds,
		func(r *engine.Result) float64 { return float64(r.SlotsSimulated) },
		func(r *engine.Result) float64 { return float64(r.Rounds) },
		func(r *engine.Result) float64 { return r.InformedFrac() },
	)
	if err := sim.Stream(cfg.ctx(), cfg.Procs, specs, fold); err != nil {
		return nil, err
	}
	var xs, ys []float64
	for ni, n := range ns {
		tbl.AddRowf(n, fold.Mean(ni, 0), fold.Mean(ni, 1), fold.Mean(ni, 2),
			math.Pow(float64(n), 1+1/float64(k)))
		xs = append(xs, float64(n))
		ys = append(ys, fold.Mean(ni, 0))
	}
	rep.Tables = append(rep.Tables, tbl)
	fit := stats.FitPowerLaw(xs, ys)
	rep.Values["latency_exponent"] = fit.Exponent
	rep.Values["predicted_exponent"] = 1 + 1/float64(k)
	rep.addFinding("latency %v (prediction n^{%.2f}; Corollary 1 shows this is optimal)", fit, 1+1/float64(k))
	return rep, nil
}

func runE11(cfg Config) (*Report, error) {
	rep := newReport("E11", "Engine ablation: sequential vs actor",
		"identical seeds yield identical results; the actor engine parallelizes node work")
	n := cfg.n(1024, 256)
	// Build fresh options per engine: pools are stateful, and the point
	// of the ablation is that one scenario value drives both executors.
	sc := scenario.Scenario{
		N: n, K: 2,
		Seed:      cfg.seed(11_000),
		Adversary: scenario.AdversarySpec{Kind: "full"},
		Budget:    scenario.BudgetSpec{Pool: 1 << 14},
	}
	seqOpts, err := sc.Build()
	if err != nil {
		return nil, err
	}
	actOpts, err := sc.Build()
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	seq, err := engine.RunContext(cfg.ctx(), seqOpts)
	if err != nil {
		return nil, err
	}
	seqD := time.Since(t0)
	t1 := time.Now()
	act, err := engine.RunActorsContext(cfg.ctx(), actOpts)
	if err != nil {
		return nil, err
	}
	actD := time.Since(t1)
	equal := reflect.DeepEqual(seq, act)
	// Wall times go into Values only (seq_ns/act_ns): the rendered table
	// and findings must be byte-identical across runs and Procs settings;
	// BenchmarkE11Engines measures the timing properly.
	tbl := stats.NewTable(
		fmt.Sprintf("E11: engine comparison (n=%d, jammer pool 2^14)", n),
		"engine", "slots", "informed", "alice cost", "identical results")
	tbl.AddRowf("sequential", seq.SlotsSimulated, seq.Informed, seq.Alice.Cost, equal)
	tbl.AddRowf("actors", act.SlotsSimulated, act.Informed, act.Alice.Cost, equal)
	rep.Tables = append(rep.Tables, tbl)
	rep.Values["identical"] = b2f(equal)
	rep.Values["seq_ns"] = float64(seqD.Nanoseconds())
	rep.Values["act_ns"] = float64(actD.Nanoseconds())
	if !equal {
		rep.addFinding("ENGINES DIVERGED — this is a bug")
	} else {
		rep.addFinding("engines bit-for-bit equivalent on %d simulated slots (timings: Values seq_ns/act_ns, BenchmarkE11Engines)", seq.SlotsSimulated)
	}
	return rep, nil
}
