package engine

import (
	"context"
	"errors"
	"math"
	"slices"

	"rcbcast/internal/adversary"
	"rcbcast/internal/bitset"
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/msg"
	"rcbcast/internal/sampling"
	"rcbcast/internal/topology"
)

// The batched lockstep kernel.
//
// RunBatch executes B trials of the same sweep point — equal Params and
// Topology spec, per-lane seeds, strategies, pools, and budgets — in
// lockstep over one shared phase schedule: each phase of the round
// structure is executed across every still-running lane before the next
// phase is fetched. Four things make the batch faster than B scalar
// runs while keeping every lane's Result byte-identical to its scalar
// counterpart (pinned by the differential and fuzz tests):
//
//   - Block geometric draws. Every schedule walked in a batch lane uses
//     sampling.BlockSchedule, which prefetches skips through
//     rng.Stream.GeometricBlockLnQ's four-lane log kernel — the draw is
//     the engine's dominant cost and its log/divide tail serializes in
//     the scalar engine. Over-drawing a stream is safe here because the
//     engine re-keys (Reseed) every schedule stream before each use.
//   - Bitset reception. The per-slot channel state is word-packed
//     bitsets plus the solo frame kind, replacing the scalar engine's
//     byte-per-slot counts array; observe checks the jam plan before
//     touching channel state at all. Under heavy jamming the scalar
//     engine misses cache on a counts load per listen just to discard
//     it; the batch kernel's hot listen path reads only packed bits.
//   - Indexed sparse reception. Each lockstep phase runs as three batch
//     passes: sends for every lane, then reception-index construction,
//     then listens for every lane. The index pass walks each lane's
//     transmissions through the CSR neighborhood rows exactly once per
//     phase — scattering them into per-listener slot-sorted rows, built
//     only for listeners that actually listen this phase — and the
//     listen walks then merge their ascending sampled slots against the
//     row with monotone cursors: a listen below the next event slot
//     (own send, jam, or audible record) is silence by construction and
//     resolves with one compare, never touching channel state. See
//     buildRecvIndex and walkNodeListensIdx.
//   - Cross-trial topology caching. Lanes resolve their graphs through
//     one topology.Cache: clique and grid specs are trial-invariant, so
//     a whole batch (and every batch after it on the same BatchScratch)
//     shares a single build and CSR; Gilbert graphs are keyed by seed,
//     so each lane holds its own entry, kept live by capacity ≥ width.
//
// The scalar engine (Run / RunContext) is untouched and serves as the
// byte-identity oracle.

// BatchScratch recycles the batch kernel's working state across
// RunBatch calls: the per-lane engine Scratches (their node arrays
// carved from one flat slab, so a batch's lane states sit contiguously),
// the per-lane reception bitsets, block schedules, and reception-index
// offset arrays (likewise slab-carved), the shared phase schedule, and
// the cross-trial topology cache. It must never be shared by
// concurrently executing batches; sim's batch workers pool them.
type BatchScratch struct {
	lanes    []batchLane
	nodeSlab []nodeState
	slabN    int
	cache    *topology.Cache
	sched    core.Schedule

	// Reception-index offset slabs: lane i's rowOff/rowEnd windows are
	// carved from these alongside its node-state window, keeping the
	// batch's struct-of-arrays state contiguous per array kind.
	rowOffSlab []int32
	rowEndSlab []int32

	// noRecvIndex forces every sparse lane onto the record-walk fallback
	// (observeSparse over slot-sorted txRecs) instead of the reception
	// index — the differential tests pin the two paths against each
	// other and against the scalar engine with this.
	noRecvIndex bool
}

// NewBatchScratch returns an empty batch scratch; buffers grow to the
// batch widths and node counts the runs it serves need.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// Reception-index packing. A sparse transmission is one uint64 —
// slot<<24 | (src+txpSrcBias)<<8 | kind — so the per-phase record set
// sorts slot-major with plain slices.Sort (no comparator, no stability
// machinery: records that could swap under an unstable sort are either
// bit-identical or same-slot, and same-slot reception is order-blind —
// a solo record has nothing to swap with and two-plus records are noise
// for every listener however they are ordered).
const (
	txpSlotShift = 24
	txpSrcShift  = 8
	txpSrcMask   = 0xffff
	txpKindMask  = 0xff
	// txpSrcBias shifts txSrcAdversary (-2) to zero so sources pack
	// unsigned; node ids then need n+1 ≤ txpSrcMask.
	txpSrcBias = 2

	// txpMaxSlots bounds the phase lengths the packed encoding can hold.
	txpMaxSlots = 1 << (64 - txpSlotShift - 1)
)

// batchLane is one trial's execution state inside a batch: its run plus
// the lane-owned reception bitsets, the block-draw schedules its
// walkers reuse (one node is walked to completion before the next, so
// two schedules per lane suffice — data/listen and decoy), and the
// lane's slice of the reception index.
type batchLane struct {
	sc          *Scratch
	r           *run
	busy, multi bitset.Set
	blkA, blkB  sampling.BlockSchedule

	// Lockstep-pass state, valid between sendPhase and listenPhase.
	active bool
	out    adversary.PhaseOutcome
	plan   *adversary.Plan

	// packed selects the reception-index path for this batch's sparse
	// lanes (decided once per RunBatch: a topology is present and ids
	// and slots fit the packed encoding).
	packed bool
	// txp holds the phase's packed transmission records, slot-sorted
	// before the index build.
	txp []uint64
	// The reception index: listener v's audible transmissions for the
	// current phase occupy rowSlot/rowInfo[rowOff[v]:rowEnd[v]], slots
	// ascending; a collision is two-plus entries with the same slot
	// (adjacent by construction), resolved at lookup. Row n (one past
	// the node ids) is Alice's. Rows are built only for listeners whose
	// lmask bit is set — everyone else's row is empty, and nothing reads
	// it. Adversary injections are audible to every listener and stay
	// out of the rows; they merge at lookup from the slot-sorted
	// advSlot/advKind pair.
	rowOff  []int32
	rowEnd  []int32
	rowSlot []int32
	rowInfo []uint8
	advSlot []int32
	advKind []uint8
	// srcCnt is the index build's per-source transmission tally (index n
	// is Alice's), which lets the count pass walk each active source's
	// CSR row once instead of once per record.
	srcCnt []int32
	// aliceRow lists the scatter targets of Alice's transmissions (the
	// nodes mutually audible with her), rebuilt lazily in each index
	// build that sees an Alice record — cache entries rebuild in place
	// on eviction, so the CSR pointer alone cannot witness staleness.
	aliceRow []int32
	// lmask marks which listeners (index n is Alice) listen in the
	// current phase; the index build skips everyone else's row. The
	// listener set is fixed once sends settle: a walk only mutates its
	// own listener's state, so the mask computed between the send and
	// listen passes is exact.
	lmask []bool
	idx   bool // reception index valid for the current phase
}

// ensure grows the scratch for a batch of the given width over n-node
// trials. Per-lane node arrays and reception-index offset arrays are
// carved from contiguous slabs (re-carved only when the width or n
// outgrows them), and the topology cache is sized so every lane's graph
// stays live for the whole batch.
func (bs *BatchScratch) ensure(width, n int) {
	if bs.cache == nil {
		bs.cache = topology.NewCache(width + 2)
	}
	bs.cache.EnsureCapacity(width + 2)
	for len(bs.lanes) < width {
		bs.lanes = append(bs.lanes, batchLane{})
	}
	for i := 0; i < width; i++ {
		if bs.lanes[i].sc == nil {
			bs.lanes[i].sc = NewScratch()
		}
	}
	if need := width * n; cap(bs.nodeSlab) < need || bs.slabN != n {
		bs.nodeSlab = make([]nodeState, need)
		bs.rowOffSlab = make([]int32, width*(n+2))
		bs.rowEndSlab = make([]int32, width*(n+1))
		bs.slabN = n
		for i := 0; i < width; i++ {
			// Full three-index slices: a lane's segment can never grow
			// into its neighbor's.
			bs.lanes[i].sc.nodes = bs.nodeSlab[i*n : (i+1)*n : (i+1)*n]
			bs.lanes[i].rowOff = bs.rowOffSlab[i*(n+2) : (i+1)*(n+2) : (i+1)*(n+2)]
			bs.lanes[i].rowEnd = bs.rowEndSlab[i*(n+1) : (i+1)*(n+1) : (i+1)*(n+1)]
		}
	}
}

// RunBatch executes the lanes' trials in lockstep on the batched kernel
// and returns their Results indexed like opts. Every lane's Result is
// byte-identical to Run(opts[i]). All lanes must share Params, Topology,
// and MaxPhaseSlots (the execution-shaping fields — a batch is B trials
// of one sweep point); seeds, strategies, pools, budgets, perturbations,
// and tracers are per-lane. Strategy and Pool instances carry per-run
// state and must not be shared across lanes. A nil scratch allocates
// fresh working state.
func RunBatch(opts []Options, bs *BatchScratch) ([]*Result, error) {
	return RunBatchContext(nil, opts, bs)
}

var errBatchMismatch = errors.New(
	"engine: batch lanes must share Params, Topology, and MaxPhaseSlots")

// RunBatchContext is RunBatch checking ctx once per lockstep phase.
// Cancellation returns a *PartialRunError carrying the furthest lane's
// progress; no Results accompany it (as with RunContext, partial-state
// invariants do not hold).
func RunBatchContext(ctx context.Context, opts []Options, bs *BatchScratch) ([]*Result, error) {
	if len(opts) == 0 {
		return nil, nil
	}
	for i := 1; i < len(opts); i++ {
		if opts[i].Params != opts[0].Params ||
			opts[i].Topology != opts[0].Topology ||
			opts[i].MaxPhaseSlots != opts[0].MaxPhaseSlots {
			return nil, errBatchMismatch
		}
	}
	if bs == nil {
		bs = NewBatchScratch()
	}
	// Invalid params fail lane construction below with the scalar
	// engine's error; the slab sizing just must not trip on them first.
	n := opts[0].Params.N
	if n < 0 {
		n = 0
	}
	bs.ensure(len(opts), n)
	lanes := bs.lanes[:len(opts)]
	defer func() {
		for i := range lanes {
			if lanes[i].r != nil {
				lanes[i].r.releaseScratch()
				lanes[i].r = nil
			}
		}
	}()
	// The reception index needs node ids and slots to fit the packed
	// record encoding; anything outside (or the test hook) rides the
	// record-walk fallback, byte-identical by the differential tests.
	indexable := !bs.noRecvIndex && n+1 <= txpSrcMask && opts[0].maxPhaseSlots() <= txpMaxSlots
	for i := range lanes {
		l := &lanes[i]
		o := opts[i]
		if o.Scratch == nil {
			o.Scratch = l.sc
		}
		r, err := newRunTopo(&o, bs.cache.Get)
		if err != nil {
			return nil, err
		}
		l.r = r
		l.packed = indexable && r.topo != nil
	}

	maxSlots := opts[0].maxPhaseSlots()
	bs.sched.Reset(&lanes[0].r.params)
	for {
		alive := false
		for i := range lanes {
			if !lanes[i].r.done() {
				alive = true
				break
			}
		}
		if !alive {
			break
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				var rounds int
				var slots int64
				for i := range lanes {
					if r := lanes[i].r; r.lastRound > rounds {
						rounds = r.lastRound
					}
					if r := lanes[i].r; r.slots > slots {
						slots = r.slots
					}
				}
				return nil, &PartialRunError{Rounds: rounds, Slots: slots, Err: ctx.Err()}
			default:
			}
		}
		ph, ok := bs.sched.Next()
		if !ok {
			break
		}
		if ph.Length > maxSlots {
			return nil, ErrPhaseTooLong
		}
		// Three lockstep passes per phase: every lane's sends commit,
		// then every packed lane's reception index is built (one CSR
		// scatter per lane — grouped so lanes sharing a graph walk its
		// rows back to back, cache-warm), then every lane listens.
		for i := range lanes {
			l := &lanes[i]
			l.active = !l.r.done()
			if l.active {
				l.sendPhase(ph)
			}
		}
		for i := range lanes {
			if l := &lanes[i]; l.active && l.packed {
				l.buildRecvIndex(ph)
			}
		}
		for i := range lanes {
			if l := &lanes[i]; l.active {
				l.listenPhase(ph)
			}
		}
	}
	results := make([]*Result, len(lanes))
	for i := range lanes {
		if t := lanes[i].r.opts.Tracer; t != nil {
			t.Done()
		}
		results[i] = lanes[i].r.result()
	}
	return results, nil
}

// sendPhase is the first lockstep pass of a phase on this lane,
// mirroring the front half of run.runPhase: transmissions committed and
// charged, the adversary's plan fixed, the record set slot-sorted.
func (l *batchLane) sendPhase(ph core.Phase) {
	r := l.r
	l.ensureBuffers(ph.Length)
	l.out = adversary.PhaseOutcome{Phase: ph}
	if r.opts.Tracer != nil {
		r.opts.Tracer.PhaseStart(ph)
	}

	l.aliceSends(ph, &l.out)
	for i := range r.nodes {
		l.planNodeSends(&r.nodes[i], ph)
	}
	l.mergeNodeSends(&l.out)

	l.plan = l.adversaryPlan(ph, &l.out)

	if l.packed {
		if len(l.txp) > 1 {
			slices.Sort(l.txp)
		}
	} else if r.topo != nil && len(r.txs) > 1 {
		slices.SortStableFunc(r.txs, func(a, b txRec) int { return int(a.slot - b.slot) })
	}
}

// listenPhase is the final lockstep pass: listens resolve against the
// reception state the earlier passes built, then the phase is settled
// exactly as run.runPhase settles it.
func (l *batchLane) listenPhase(ph core.Phase) {
	r := l.r
	plan := l.plan
	for i := range r.nodes {
		l.walkNodeListens(&r.nodes[i], ph, plan)
	}
	for i := range r.nodes {
		l.out.NodeListens += r.nodes[i].phaseListens
	}
	l.aliceListens(ph, plan, &l.out)

	aliceWasActive := r.alice.active()
	terminatedBefore := r.terminatedSet()
	r.endPhase(ph)
	r.emitTrace(ph, aliceWasActive, terminatedBefore)
	r.recordOutcome(l.out)
	if r.opts.Tracer != nil {
		r.opts.Tracer.PhaseEnd(r.hist.Outcomes[len(r.hist.Outcomes)-1])
	}
	r.slots += int64(ph.Length)
	r.lastRound = ph.Round
	l.clearDirty()
	if plan != nil {
		plan.Release()
		l.plan = nil
	}
}

// ensureBuffers sizes the lane's per-slot reception state. Sparse lanes
// need only the busy prescreen bitset (their listener-resolved state
// lives in the reception index or record set); dense lanes add the
// multi bitset and the solo-kind bytes, read only on an actual solo
// reception. Resize keeps contents, which are all-zero between phases
// by the dirty-clearing discipline. The scalar counts array is never
// touched by the batch kernel.
func (l *batchLane) ensureBuffers(length int) {
	r := l.r
	l.busy.Resize(length)
	if r.topo != nil {
		return
	}
	if cap(r.soloKind) < length {
		r.soloKind = make([]uint8, length)
	}
	r.soloKind = r.soloKind[:length]
	l.multi.Resize(length)
}

// clearDirty restores the all-zero between-phases channel state. Sparse
// lanes write only the busy bits (their listener-resolved state lives in
// the reception index or the record set), so one word-parallel reset
// suffices; the dense path clears multi against busy in one AndNot pass
// — collisions are a subset of traffic — and picks whole-array or
// per-dirty-slot soloKind clearing by how much of the phase was touched.
func (l *batchLane) clearDirty() {
	r := l.r
	if r.topo != nil {
		l.busy.Reset(l.busy.Len())
		r.txs = r.txs[:0]
		l.txp = l.txp[:0]
		l.idx = false
		return
	}
	l.multi.AndNot(&l.busy)
	l.busy.Reset(l.busy.Len())
	if len(r.dirty)*8 >= len(r.soloKind) {
		clear(r.soloKind)
	} else {
		for _, s := range r.dirty {
			r.soloKind[s] = 0
		}
	}
	r.dirty = r.dirty[:0]
}

// addTx mirrors run.addTx on the batch kernel's reception state. Dense
// lanes keep the busy/multi/soloKind encoding (reception distinguishes
// only zero, one, and many). Sparse lanes set just the busy prescreen
// bit — their reception is listener-relative — and record the
// transmission packed (index path) or as a txRec (fallback path).
func (l *batchLane) addTx(slot int, kind msg.Kind, src int32) {
	r := l.r
	if r.topo == nil {
		if !l.busy.Get(slot) {
			l.busy.Set(slot)
			r.soloKind[slot] = uint8(kind)
			r.dirty = append(r.dirty, int32(slot))
		} else {
			l.multi.Set(slot)
		}
		return
	}
	l.busy.Set(slot)
	if l.packed {
		l.txp = append(l.txp,
			uint64(slot)<<txpSlotShift|
				uint64(uint32(src+txpSrcBias))<<txpSrcShift|
				uint64(kind))
	} else {
		r.txs = append(r.txs, txRec{slot: int32(slot), src: src, kind: uint8(kind)})
	}
}

// buildRecvIndex scatters the phase's slot-sorted transmission records
// through the CSR neighborhood rows into per-listener reception rows —
// the phase's one CSR traversal. Counting-sort construction: a
// per-source tally sizes each listener's row with one walk of each
// active source's row (not one per record), a prefix sum lays the rows
// out back-to-back in one entry array, and a fill pass in record order
// — so rows come out slot-ascending — writes the entries. Collisions
// stay as adjacent same-slot entries; the lookup resolves them with one
// extra compare, which keeps the fill pass cheap. Rows are built only
// for listeners the phase's lmask marks as listening — informed nodes
// never listen, so late-trial phases scatter to a shrinking set — and
// adversary records, audible to every listener, stay out of the rows
// (they would turn the index dense) and merge at lookup from the
// slot-sorted advSlot/advKind side arrays.
func (l *batchLane) buildRecvIndex(ph core.Phase) {
	r := l.r
	n := len(r.nodes)
	if cap(l.srcCnt) < n+1 {
		l.srcCnt = make([]int32, n+1)
	}
	srcCnt := l.srcCnt[:n+1]
	clear(srcCnt)
	if cap(l.lmask) < n+1 {
		l.lmask = make([]bool, n+1)
	}
	lm := l.lmask[:n+1]
	for i := range r.nodes {
		nd := &r.nodes[i]
		lm[nd.id] = nd.active() && !nd.informed &&
			clamp01(ph.NodeListenP*nd.listenScale) > 0
	}
	lm[n] = ph.AliceListenP > 0 && r.alice.active()
	l.advSlot = l.advSlot[:0]
	l.advKind = l.advKind[:0]
	for _, p := range l.txp {
		src := int32(p>>txpSrcShift&txpSrcMask) - txpSrcBias
		switch {
		case src >= 0:
			srcCnt[src]++
		case src == txSrcAlice:
			srcCnt[n]++
		}
	}
	cnt := l.rowEnd // reused: counts now, fill cursors after the prefix sum
	for i := range cnt {
		cnt[i] = 0
	}
	for u := 0; u < n; u++ {
		c := srcCnt[u]
		if c == 0 {
			continue
		}
		for _, v := range r.csr.Row(u) {
			if lm[v] {
				cnt[v] += c
			}
		}
		if lm[n] && r.csr.AliceHears(u) {
			cnt[n] += c
		}
	}
	if ac := srcCnt[n]; ac > 0 {
		l.aliceRow = r.csr.AppendAliceAudible(l.aliceRow[:0])
		for _, v := range l.aliceRow {
			if lm[v] {
				cnt[v] += ac
			}
		}
		if lm[n] {
			cnt[n] += ac // Alice hears her own transmissions
		}
	}
	off := l.rowOff
	off[0] = 0
	for v := 0; v <= n; v++ {
		off[v+1] = off[v] + cnt[v]
	}
	total := int(off[n+1])
	if cap(l.rowSlot) < total {
		l.rowSlot = make([]int32, total)
		l.rowInfo = make([]uint8, total)
	}
	l.rowSlot = l.rowSlot[:total]
	l.rowInfo = l.rowInfo[:total]
	copy(l.rowEnd, off[:n+1])
	for _, p := range l.txp {
		slot := int32(p >> txpSlotShift)
		src := int32(p>>txpSrcShift&txpSrcMask) - txpSrcBias
		kind := uint8(p & txpKindMask)
		switch {
		case src >= 0:
			for _, v := range r.csr.Row(int(src)) {
				if lm[v] {
					l.scatter(v, slot, kind)
				}
			}
			if lm[n] && r.csr.AliceHears(int(src)) {
				l.scatter(int32(n), slot, kind)
			}
		case src == txSrcAlice:
			if lm[n] {
				l.scatter(int32(n), slot, kind)
			}
			for _, v := range l.aliceRow {
				if lm[v] {
					l.scatter(v, slot, kind)
				}
			}
		default:
			l.advSlot = append(l.advSlot, slot)
			l.advKind = append(l.advKind, kind)
		}
	}
	l.idx = true
}

// scatter appends one audible transmission to listener row v — three
// stores, no branches; rows inherit slot order from the sorted record
// walk driving the fill pass.
func (l *batchLane) scatter(v, slot int32, kind uint8) {
	e := l.rowEnd[v]
	l.rowSlot[e] = slot
	l.rowInfo[e] = kind
	l.rowEnd[v] = e + 1
}

// observe mirrors run.observe with the load order inverted: the jam
// plan is consulted before any channel state, so a jammed listen — the
// common case under the strategies that matter — resolves without
// touching the per-slot arrays at all. The outputs are identical for
// every input: jammed slots are noise in both kernels regardless of
// traffic.
func (l *batchLane) observe(slot, listener int, plan *adversary.Plan) (msg.Kind, outcome) {
	if plan != nil && plan.Jammed(slot) && plan.Disrupts(slot, listener) {
		return 0, outcomeNoise
	}
	if !l.busy.Get(slot) {
		return 0, outcomeSilence
	}
	if l.r.topo != nil {
		// Packed lanes never reach here: their listens resolve through
		// the event-skip walks (walkNodeListensIdx / aliceListensIdx),
		// whose rows are filtered to actual listeners and would be wrong
		// for anyone else. Only fallback lanes observe sparsely.
		return l.observeSparse(slot, listener)
	}
	if l.multi.Get(slot) {
		return 0, outcomeNoise
	}
	return msg.Kind(l.r.soloKind[slot]), outcomeReceived
}

// observeSparse mirrors run.observeSparse past its jam and empty-slot
// checks (both already resolved by observe): the listener's perception
// is a binary search over the phase's slot-sorted transmission records,
// counting audible transmitters. This is the fallback for lanes the
// packed index encoding cannot hold (and the differential foil for the
// index path, forced via BatchScratch.noRecvIndex).
func (l *batchLane) observeSparse(slot, listener int) (msg.Kind, outcome) {
	r := l.r
	s := int32(slot)
	lo, hi := 0, len(r.txs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.txs[mid].slot < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	heard := 0
	var kind msg.Kind
	for i := lo; i < len(r.txs) && r.txs[i].slot == s; i++ {
		if !r.audible(r.txs[i].src, listener) {
			continue
		}
		if heard++; heard > 1 {
			return 0, outcomeNoise
		}
		kind = msg.Kind(r.txs[i].kind)
	}
	if heard == 0 {
		return 0, outcomeSilence
	}
	return kind, outcomeReceived
}

// planNodeSends mirrors run.planNodeSends walking the lane's block
// schedules: same streams, same keyed draws, same merge and charging
// order, slot sequences pinned identical by the sampling differential
// tests.
func (l *batchLane) planNodeSends(n *nodeState, ph core.Phase) {
	r := l.r
	n.sendSlots = n.sendSlots[:0]
	n.sendKinds = n.sendKinds[:0]
	n.phaseListens = 0
	if !n.active() {
		return
	}
	var dataP float64
	var dataKind msg.Kind
	switch ph.Kind {
	case core.PhasePropagate:
		if n.informed && r.params.SendStep(n.mark) == ph.Step {
			dataP = clamp01(ph.NodeSendP * n.sendScale)
			dataKind = msg.KindData
		}
	case core.PhaseRequest:
		if !n.informed {
			dataP = clamp01(ph.NodeSendP * n.sendScale)
			dataKind = msg.KindNack
		}
	}
	decoyP := ph.DecoyP

	ord := phaseOrdinal(ph, r.params.K)
	round := uint64(ph.Round)
	var dSlot, cSlot int
	var dOK, cOK bool
	if dataP > 0 {
		n.streamA.Reseed(r.opts.Seed, nodeActor(n.id), round, ord, purpSend)
		l.blkA.Reset(&n.streamA, dataP, ph.Length)
		dSlot, dOK = l.blkA.Next()
	}
	if decoyP > 0 {
		n.streamB.Reseed(r.opts.Seed, nodeActor(n.id), round, ord, purpDecoy)
		l.blkB.Reset(&n.streamB, decoyP, ph.Length)
		cSlot, cOK = l.blkB.Next()
	}

	// When the meter covers the phase's worst case (a data and a decoy
	// stream can emit at most 2·Length sends), no send can exhaust it
	// mid-walk, so the per-send charges fold into one ChargeN at the
	// end — Meter charges are pure accumulation, so the final state is
	// identical. Otherwise take the scalar per-send path, whose
	// mid-walk death is observable.
	prepaid := n.meter.CanAfford(2 * int64(ph.Length))
	sends := int64(0)
	for dOK || cOK {
		var slot int
		var kind msg.Kind
		switch {
		case dOK && (!cOK || dSlot <= cSlot):
			slot, kind = dSlot, dataKind
			if cOK && cSlot == dSlot {
				cSlot, cOK = l.blkB.Next()
			}
			dSlot, dOK = l.blkA.Next()
		default:
			slot, kind = cSlot, msg.KindDecoy
			cSlot, cOK = l.blkB.Next()
		}
		if prepaid {
			sends++
		} else if err := n.meter.Charge(energy.Send); err != nil {
			n.dead = true
			return
		}
		n.sendSlots = append(n.sendSlots, int32(slot))
		n.sendKinds = append(n.sendKinds, kind)
	}
	if prepaid {
		_ = n.meter.ChargeN(energy.Send, sends)
	}
}

// mergeNodeSends mirrors run.mergeNodeSends through the lane's addTx.
func (l *batchLane) mergeNodeSends(out *adversary.PhaseOutcome) {
	r := l.r
	for i := range r.nodes {
		n := &r.nodes[i]
		for j, slot := range n.sendSlots {
			kind := n.sendKinds[j]
			l.addTx(int(slot), kind, int32(n.id))
			switch kind {
			case msg.KindData:
				out.NodeDataSends++
			case msg.KindNack:
				out.NodeNacks++
			case msg.KindDecoy:
				out.NodeDecoys++
			}
		}
	}
}

// aliceSends mirrors run.aliceSends on a block schedule.
func (l *batchLane) aliceSends(ph core.Phase, out *adversary.PhaseOutcome) {
	r := l.r
	if ph.AliceSendP <= 0 || !r.alice.active() {
		return
	}
	r.aliceStream.Reseed(r.opts.Seed, actorAlice, uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpSend)
	l.blkA.Reset(&r.aliceStream, ph.AliceSendP, ph.Length)
	prepaid := r.alice.meter.CanAfford(int64(ph.Length))
	sends := int64(0)
	for {
		slot, ok := l.blkA.Next()
		if !ok {
			break
		}
		if prepaid {
			sends++
		} else if err := r.alice.meter.Charge(energy.Send); err != nil {
			r.alice.dead = true
			return
		}
		l.addTx(slot, msg.KindData, txSrcAlice)
		out.AliceSends++
	}
	if prepaid {
		_ = r.alice.meter.ChargeN(energy.Send, sends)
	}
}

// adversaryPlan mirrors run.adversaryPlan; the reactive RSSI view is
// one word-level union of the busy set instead of a per-dirty-slot
// loop (every busy slot carries correct-side traffic at plan time, so
// the sets are equal).
func (l *batchLane) adversaryPlan(ph core.Phase, out *adversary.PhaseOutcome) *adversary.Plan {
	r := l.r
	r.advStream.Reseed(r.opts.Seed, actorAdversary, uint64(ph.Round), phaseOrdinal(ph, r.params.K))
	st := &r.advStream
	var plan *adversary.Plan
	if reactive, ok := r.strategy.(adversary.Reactive); ok && r.opts.AllowReactive {
		r.activity.Reset(ph.Length)
		r.activity.OrBits(&l.busy)
		plan = reactive.PlanReactive(ph, &r.activity, &r.hist, r.pool, st)
	} else {
		plan = r.strategy.PlanPhase(ph, &r.hist, r.pool, st)
	}
	if plan == nil {
		return nil
	}

	jams := int64(plan.JamCount())
	if r.pool != nil && r.pool.Remaining() < jams {
		jams = plan.TruncateJamsAfter(r.pool.Remaining())
	}
	if r.pool != nil {
		_ = r.pool.Charge(energy.Jam, jams)
	}
	out.JammedSlots = jams
	r.totalJams += jams

	injections := plan.Injections()
	keep := int64(len(injections))
	if r.pool != nil && r.pool.Remaining() < keep {
		keep = plan.TruncateInjectionsAfter(r.pool.Remaining())
	}
	if r.pool != nil {
		_ = r.pool.Charge(energy.Send, keep)
	}
	out.InjectedFrames = keep
	r.totalInjects += keep
	for _, inj := range plan.Injections() {
		l.addTx(inj.Slot, inj.Frame.Kind, txSrcAdversary)
	}
	if jams == 0 && keep == 0 {
		plan.Release()
		return nil
	}
	return plan
}

// walkNodeListens mirrors run.walkNodeListens on a block schedule and
// the lane's observe. With a built reception index the walk dispatches
// to the event-skip loop instead.
func (l *batchLane) walkNodeListens(n *nodeState, ph core.Phase, plan *adversary.Plan) {
	r := l.r
	if !n.active() || n.informed {
		return
	}
	listenP := clamp01(ph.NodeListenP * n.listenScale)
	if listenP <= 0 {
		return
	}
	n.streamA.Reseed(r.opts.Seed, nodeActor(n.id), uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpListen)
	l.blkA.Reset(&n.streamA, listenP, ph.Length)
	if l.idx {
		l.walkNodeListensIdx(n, ph, plan)
		return
	}
	// A meter that covers every slot of the phase cannot exhaust
	// mid-walk, so the per-listen charges fold into one ChargeN —
	// charges are pure accumulation, so the final meter state is
	// identical. Otherwise keep the scalar per-listen path, whose
	// mid-walk death is observable.
	prepaid := n.meter.CanAfford(int64(ph.Length))
	listens := int64(0)
	si := 0
	// Consume whole draw blocks (Take) instead of a call per event; the
	// scalar loop's informed/dead checks before each event become
	// labeled breaks right after the state changes, which is the same
	// exit point — nothing else mutates them mid-walk.
outer:
	for {
		blk := l.blkA.Take()
		if len(blk) == 0 {
			break
		}
		for _, s32 := range blk {
			slot := int(s32)
			for si < len(n.sendSlots) && int(n.sendSlots[si]) < slot {
				si++
			}
			if si < len(n.sendSlots) && int(n.sendSlots[si]) == slot {
				continue
			}
			if prepaid {
				listens++
			} else if err := n.meter.Charge(energy.Listen); err != nil {
				n.dead = true
				break outer
			}
			n.phaseListens++
			kind, out := l.observe(slot, n.id, plan)
			if ph.Kind == core.PhaseRequest {
				n.listens++
				if out != outcomeSilence {
					n.noisy++
				}
			}
			if out == outcomeReceived && kind == msg.KindData {
				n.informed = true
				n.justInformed = true
				if ph.Kind == core.PhasePropagate {
					n.mark = core.InformMark(ph.Step)
				} else {
					n.mark = core.MarkInformPhase
				}
				break outer
			}
		}
	}
	if prepaid {
		_ = n.meter.ChargeN(energy.Listen, listens)
	}
}

// walkNodeListensIdx is the listen walk over a built reception index.
// The sampled slots ascend, so the walk keeps monotone cursors into the
// node's own reception row, the adversary records, and its send slots,
// and maintains nextEvent — the earliest upcoming slot in any of them.
// A jammed-and-disrupted listen short-circuits to noise on the plan's
// bit test alone, exactly as observe orders it (under a phase-wide jam
// every slot would be an "event"; the bitmap test keeps those listens
// as cheap as before). Below that, a listen before nextEvent is not the
// node's own send and has no audible record: it is silence by
// construction and settles with one compare, no channel state touched.
// Only event slots pay for full resolution. Every per-listen effect —
// charge order, tallies, the informed break — is the scalar walk's, so
// outcomes stay byte-identical.
func (l *batchLane) walkNodeListensIdx(n *nodeState, ph core.Phase, plan *adversary.Plan) {
	lo, hi := l.rowOff[n.id], l.rowEnd[n.id]
	rs := l.rowSlot[lo:hi]
	ri := l.rowInfo[lo:hi]
	as := l.advSlot
	ak := l.advKind
	ss := n.sendSlots
	isReq := ph.Kind == core.PhaseRequest

	prepaid := n.meter.CanAfford(int64(ph.Length))
	// The walk's per-listen tallies accumulate in locals and flush once
	// at exit (every break lands past the loop) — the scalar walk's
	// per-listen field updates are pure accumulation, so the final state
	// is identical and the hot loop keeps its counters in registers.
	listens := int64(0)
	var phaseL int64
	var reqL, reqNoisy int
	var si, rc, ac int
	nextEvent := math.MaxInt
	if len(ss) > 0 {
		nextEvent = int(ss[0])
	}
	if len(rs) > 0 && int(rs[0]) < nextEvent {
		nextEvent = int(rs[0])
	}
	if len(as) > 0 && int(as[0]) < nextEvent {
		nextEvent = int(as[0])
	}
outer:
	for {
		blk := l.blkA.Take()
		if len(blk) == 0 {
			break
		}
		for _, s32 := range blk {
			slot := int(s32)
			if plan != nil && plan.Jammed(slot) {
				// Own sends are skipped before any observation, jammed
				// or not.
				for si < len(ss) && int(ss[si]) < slot {
					si++
				}
				if si < len(ss) && int(ss[si]) == slot {
					continue
				}
				if plan.Disrupts(slot, n.id) {
					if prepaid {
						listens++
					} else if err := n.meter.Charge(energy.Listen); err != nil {
						n.dead = true
						break outer
					}
					phaseL++
					if isReq {
						reqL++
						reqNoisy++
					}
					continue
				}
				// Jammed but not disrupted for this listener: the slot
				// resolves audibly below, like any other.
			}
			if slot < nextEvent {
				// Quiet listen: silence, charged and counted only.
				if prepaid {
					listens++
				} else if err := n.meter.Charge(energy.Listen); err != nil {
					n.dead = true
					break outer
				}
				phaseL++
				if isReq {
					reqL++
				}
				continue
			}
			// Event slot: advance the cursors to it and resolve fully.
			for si < len(ss) && int(ss[si]) < slot {
				si++
			}
			for rc < len(rs) && rs[rc] < s32 {
				rc++
			}
			for ac < len(as) && as[ac] < s32 {
				ac++
			}
			isSend := si < len(ss) && int(ss[si]) == slot
			var kind msg.Kind
			heard := 0
			if rc < len(rs) && rs[rc] == s32 {
				if rc+1 < len(rs) && rs[rc+1] == s32 {
					heard = 2
				} else {
					heard = 1
					kind = msg.Kind(ri[rc])
				}
			}
			for j := ac; heard < 2 && j < len(as) && as[j] == s32; j++ {
				if heard++; heard == 1 {
					kind = msg.Kind(ak[j])
				}
			}
			// Step every cursor past the slot and refresh nextEvent for
			// the listens that follow.
			for si < len(ss) && int(ss[si]) <= slot {
				si++
			}
			for rc < len(rs) && rs[rc] == s32 {
				rc++
			}
			for ac < len(as) && as[ac] == s32 {
				ac++
			}
			nextEvent = math.MaxInt
			if si < len(ss) {
				nextEvent = int(ss[si])
			}
			if rc < len(rs) && int(rs[rc]) < nextEvent {
				nextEvent = int(rs[rc])
			}
			if ac < len(as) && int(as[ac]) < nextEvent {
				nextEvent = int(as[ac])
			}
			if isSend {
				continue
			}
			if prepaid {
				listens++
			} else if err := n.meter.Charge(energy.Listen); err != nil {
				n.dead = true
				break outer
			}
			phaseL++
			if isReq {
				reqL++
				if heard != 0 {
					reqNoisy++
				}
			}
			if heard == 1 && kind == msg.KindData {
				n.informed = true
				n.justInformed = true
				if ph.Kind == core.PhasePropagate {
					n.mark = core.InformMark(ph.Step)
				} else {
					n.mark = core.MarkInformPhase
				}
				break outer
			}
		}
	}
	n.phaseListens += phaseL
	n.listens += reqL
	n.noisy += reqNoisy
	if prepaid {
		_ = n.meter.ChargeN(energy.Listen, listens)
	}
}

// aliceListens mirrors run.aliceListens on a block schedule, with the
// same event-skip dispatch as the node walks.
func (l *batchLane) aliceListens(ph core.Phase, plan *adversary.Plan, out *adversary.PhaseOutcome) {
	r := l.r
	if ph.AliceListenP <= 0 || !r.alice.active() {
		return
	}
	r.aliceStream.Reseed(r.opts.Seed, actorAlice, uint64(ph.Round), phaseOrdinal(ph, r.params.K), purpListen)
	l.blkA.Reset(&r.aliceStream, ph.AliceListenP, ph.Length)
	if l.idx {
		l.aliceListensIdx(ph, plan, out)
		return
	}
	prepaid := r.alice.meter.CanAfford(int64(ph.Length))
	listens := int64(0)
outer:
	for {
		blk := l.blkA.Take()
		if len(blk) == 0 {
			break
		}
		for _, s32 := range blk {
			slot := int(s32)
			if prepaid {
				listens++
			} else if err := r.alice.meter.Charge(energy.Listen); err != nil {
				r.alice.dead = true
				break outer
			}
			_, o := l.observe(slot, msg.SenderAlice, plan)
			out.AliceListens++
			r.alice.listens++
			if o != outcomeSilence {
				r.alice.noisy++
			}
		}
	}
	if prepaid {
		_ = r.alice.meter.ChargeN(energy.Listen, listens)
	}
}

// aliceListensIdx is Alice's event-skip listen walk over row n of the
// reception index. She has no send slots to skip and never acts on the
// received kind — her tally only distinguishes silence from noise — so
// event resolution reduces to: disrupted jam, or any audible record at
// the slot.
func (l *batchLane) aliceListensIdx(ph core.Phase, plan *adversary.Plan, out *adversary.PhaseOutcome) {
	r := l.r
	n := len(r.nodes)
	lo, hi := l.rowOff[n], l.rowEnd[n]
	rs := l.rowSlot[lo:hi]
	as := l.advSlot

	prepaid := r.alice.meter.CanAfford(int64(ph.Length))
	// Tallies accumulate in locals and flush at exit, as in the node
	// walk.
	listens := int64(0)
	var heardL, noisyL int
	var rc, ac int
	nextEvent := math.MaxInt
	if len(rs) > 0 {
		nextEvent = int(rs[0])
	}
	if len(as) > 0 && int(as[0]) < nextEvent {
		nextEvent = int(as[0])
	}
outer:
	for {
		blk := l.blkA.Take()
		if len(blk) == 0 {
			break
		}
		for _, s32 := range blk {
			slot := int(s32)
			noisy := false
			if plan != nil && plan.Jammed(slot) && plan.Disrupts(slot, msg.SenderAlice) {
				noisy = true
			} else if slot >= nextEvent {
				for rc < len(rs) && rs[rc] < s32 {
					rc++
				}
				for ac < len(as) && as[ac] < s32 {
					ac++
				}
				noisy = (rc < len(rs) && rs[rc] == s32) ||
					(ac < len(as) && as[ac] == s32)
				for rc < len(rs) && rs[rc] == s32 {
					rc++
				}
				for ac < len(as) && as[ac] == s32 {
					ac++
				}
				nextEvent = math.MaxInt
				if rc < len(rs) {
					nextEvent = int(rs[rc])
				}
				if ac < len(as) && int(as[ac]) < nextEvent {
					nextEvent = int(as[ac])
				}
			}
			if prepaid {
				listens++
			} else if err := r.alice.meter.Charge(energy.Listen); err != nil {
				r.alice.dead = true
				break outer
			}
			heardL++
			if noisy {
				noisyL++
			}
		}
	}
	out.AliceListens += int64(heardL)
	r.alice.listens += heardL
	r.alice.noisy += noisyL
	if prepaid {
		_ = r.alice.meter.ChargeN(energy.Listen, listens)
	}
}
