package engine

import (
	"context"
	"fmt"
)

// PartialRunError reports an execution stopped at a phase boundary by
// context cancellation. No Result accompanies it: the run's invariants
// (delivery counts, cost summaries, termination flags) only hold for
// completed executions, so a partial run carries its progress on the
// error instead.
type PartialRunError struct {
	// Rounds is the last fully executed round.
	Rounds int
	// Slots is the number of slots simulated before the stop.
	Slots int64
	// Err is the context's error (context.Canceled or
	// context.DeadlineExceeded); errors.Is sees it through Unwrap.
	Err error
}

func (e *PartialRunError) Error() string {
	return fmt.Sprintf("engine: run canceled after round %d (%d slots): %v", e.Rounds, e.Slots, e.Err)
}

func (e *PartialRunError) Unwrap() error { return e.Err }

// RunContext executes the protocol on the sequential engine, checking
// ctx at every phase boundary. Cancellation returns a *PartialRunError;
// a run that completes before the context fires returns its Result
// exactly as Run would.
func RunContext(ctx context.Context, opts Options) (*Result, error) {
	r, err := newRun(&opts)
	if err != nil {
		return nil, err
	}
	defer r.releaseScratch()
	if err := r.loop(ctx, seqExecutor{r}); err != nil {
		return nil, err
	}
	return r.result(), nil
}

// RunActorsContext is RunContext on the goroutine-per-node actor
// engine. Results are bit-for-bit identical to RunContext for identical
// Options; the actor pool is torn down whether the run completes or is
// canceled.
func RunActorsContext(ctx context.Context, opts Options) (*Result, error) {
	r, err := newRun(&opts)
	if err != nil {
		return nil, err
	}
	defer r.releaseScratch()
	exec := newActorPool(r)
	defer exec.shutdown()
	if err := r.loop(ctx, exec); err != nil {
		return nil, err
	}
	return r.result(), nil
}
