package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	for _, tc := range []struct {
		line string
		name string
		ns   float64
		bs   float64
		as   float64
		ok   bool
	}{
		{
			line: "BenchmarkSteadyState/gilbert-4   \t      50\t  19548071 ns/op\t    5782 B/op\t       9 allocs/op",
			name: "SteadyState/gilbert", ns: 19548071, bs: 5782, as: 9, ok: true,
		},
		{
			line: "BenchmarkSteadyStateBatch/grid \t 33 \t 36135110 ns/op",
			name: "SteadyStateBatch/grid", ns: 36135110, ok: true,
		},
		{
			// No procs suffix (GOMAXPROCS=1 runs print none).
			line: "BenchmarkStreamTrials/batch8 \t 20 \t 238354390 ns/op \t 526526 B/op \t 922 allocs/op",
			name: "StreamTrials/batch8", ns: 238354390, bs: 526526, as: 922, ok: true,
		},
		{
			// A -suffix that is not a procs count stays in the name.
			line: "BenchmarkFoo/sub-case \t 10 \t 5 ns/op",
			name: "Foo/sub-case", ns: 5, ok: true,
		},
		{line: "ok  \trcbcast/internal/engine\t1.793s", ok: false},
		{line: "goos: linux", ok: false},
		{line: "PASS", ok: false},
		{line: "", ok: false},
	} {
		name, m, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Fatalf("parseBenchLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
		}
		if !ok {
			continue
		}
		if name != tc.name || m.NsPerOp != tc.ns || m.BytesPerOp != tc.bs || m.AllocsPerOp != tc.as {
			t.Fatalf("parseBenchLine(%q) = %q %+v", tc.line, name, m)
		}
	}
}

const passTranscript = `goos: linux
goarch: amd64
pkg: rcbcast/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSteadyState/clique-2          	      20	   7000000 ns/op	    5376 B/op	       5 allocs/op
BenchmarkSteadyState/grid-2            	      20	   8000000 ns/op	    6268 B/op	      18 allocs/op
BenchmarkSteadyStateBatch/clique-2     	      20	  28000000 ns/op	   48072 B/op	     106 allocs/op
BenchmarkSteadyStateBatch/grid-2       	      20	  36000000 ns/op	   57525 B/op	     281 allocs/op
PASS
ok  	rcbcast/internal/engine	12.3s
`

func TestParsePass(t *testing.T) {
	results, env, err := parsePass(strings.NewReader(passTranscript))
	if err != nil {
		t.Fatal(err)
	}
	if env.GOOS != "linux" || env.GOARCH != "amd64" || env.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("env = %+v", env)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d variants, want 4: %v", len(results), results)
	}
	if got := results["SteadyState/grid"].NsPerOp; got != 8000000 {
		t.Fatalf("grid ns/op = %v", got)
	}
	if _, _, err := parsePass(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("parsePass accepted a transcript with no results")
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Fatalf("single median = %v", got)
	}
}

// TestBuildRecordPairedRatios: the per-trial ratio must be the median
// of per-pass ratios (each pass pairing its own batch and scalar
// numbers), not a ratio of medians — the distinction the whole
// protocol exists for on steal-prone hosts.
func TestBuildRecordPairedRatios(t *testing.T) {
	mk := func(scalar, batch float64) map[string]metrics {
		return map[string]metrics{
			"SteadyState/grid":      {NsPerOp: scalar, hasMem: true, BytesPerOp: 100, AllocsPerOp: 10},
			"SteadyStateBatch/grid": {NsPerOp: batch, hasMem: true, BytesPerOp: 800, AllocsPerOp: 80},
		}
	}
	// Passes where the host slows both sides together: the paired
	// ratio is 2.0 in every pass even though the raw numbers double.
	passes := []map[string]metrics{
		mk(8e6, 32e6),
		mk(16e6, 64e6),
		mk(12e6, 48e6),
	}
	rec, err := buildRecord("b", "cmd", "", "2026-08-08", envInfo{GOOS: "linux"}, passes, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.PerTrialRatios["grid"]; got != 2.0 {
		t.Fatalf("paired ratio = %v, want 2.0", got)
	}
	// Ratio-of-medians would also say 2.0 here; skew one pass so the
	// two computations differ, and require the paired answer.
	passes = []map[string]metrics{
		mk(8e6, 32e6),  // ratio 2.0
		mk(20e6, 40e6), // ratio 4.0 (scalar hit by steal)
		mk(12e6, 24e6), // ratio 4.0
	}
	rec, err = buildRecord("b", "cmd", "", "2026-08-08", envInfo{}, passes, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.PerTrialRatios["grid"]; got != 4.0 {
		t.Fatalf("paired ratio = %v, want 4.0 (median of 2,4,4)", got)
	}
	if rec.Variants["SteadyState/grid"].NsPerOp != 12e6 {
		t.Fatalf("scalar median = %v", rec.Variants["SteadyState/grid"].NsPerOp)
	}
	if rec.BatchWidth != 8 || rec.Passes != 3 {
		t.Fatalf("record meta = %+v", rec)
	}
}

func TestBuildRecordRejectsMissingVariant(t *testing.T) {
	passes := []map[string]metrics{
		{"SteadyState/grid": {NsPerOp: 1}},
		{"SteadyState/clique": {NsPerOp: 1}},
	}
	if _, err := buildRecord("b", "c", "", "d", envInfo{}, passes, 8); err == nil {
		t.Fatal("buildRecord accepted passes with mismatched variant sets")
	}
}

func TestAppendRecordPreservesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	existing := "[\n  {\n    \"bench\": \"old\",\n    \"note\": \"hand-written   formatting\"\n  }\n]\n"
	if err := os.WriteFile(path, []byte(existing), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := record{Bench: "new", Date: "2026-08-08", Passes: 5,
		Variants: map[string]varRecord{"SteadyState/grid": {NsPerOp: 12e6}}}
	if err := appendRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "\"note\": \"hand-written   formatting\"") {
		t.Fatalf("existing entry reformatted:\n%s", out)
	}
	var arr []map[string]any
	if err := json.Unmarshal(out, &arr); err != nil {
		t.Fatalf("appended file is not valid JSON: %v\n%s", err, out)
	}
	if len(arr) != 2 || arr[0]["bench"] != "old" || arr[1]["bench"] != "new" {
		t.Fatalf("array = %v", arr)
	}

	// Appending to a missing file creates a fresh one-entry array.
	fresh := filepath.Join(dir, "fresh.json")
	if err := appendRecord(fresh, rec); err != nil {
		t.Fatal(err)
	}
	out, err = os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	arr = nil
	if err := json.Unmarshal(out, &arr); err != nil || len(arr) != 1 {
		t.Fatalf("fresh file: %v\n%s", err, out)
	}

	// A non-array file is rejected, not clobbered.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendRecord(bad, rec); err == nil {
		t.Fatal("appendRecord accepted a non-array file")
	}
}
