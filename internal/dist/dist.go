// Package dist distributes one Monte-Carlo sweep across a pool of job
// workers and reassembles the results deterministically.
//
// The split is the one the seeding discipline was built for: trial t of
// a sweep runs with sim.SweepSeed(base, point, t), so any contiguous
// range of trials is independently computable with results identical to
// a single-machine run. The coordinator cuts the sweep into contiguous
// shards (scenario.Shard), dispatches each shard as a job to a worker —
// a stock rcserved extended to accept a shard range in its submission —
// and streams every shard's NDJSON back over the service's
// replay-then-follow feed.
//
// Reassembly mirrors sim.Stream's reorder-window design one level up:
// shards may complete in any order, but a bounded window of them
// (Config.WindowShards, the shard-granularity analogue of sim.Window's
// ticket semaphore) is buffered while a single merge goroutine emits
// them strictly in shard order. Trial indices in the output are
// sweep-global, so the merged NDJSON is byte-for-byte the concatenation
// of the shards' slices — which is byte-for-byte the single-machine
// run. Per-shard stats.Acc folds merge in the same fixed shard order,
// so the summary is deterministic for any worker count and any
// completion interleaving.
//
// Failure handling composes three existing mechanisms rather than
// inventing new ones: worker jobs are idempotent (same shard → same job
// id → same journal), the result feed replays from byte zero on
// reattach, and the journal survives SIGKILL. A shard whose stream
// stalls or errors is requeued — any worker may claim it — and the next
// attempt's replayed prefix is skipped line-for-line, so a retried
// shard contributes each trial exactly once. A reassigned shard resumes
// from the dead worker's journal when the workers share a store, and
// recomputes identically (same seeds) when they do not.
//
// The worker pool is elastic (membership.go): workers Join before or
// during a sweep, periodic readiness probes with a liveness deadline
// detect death without waiting for a stream to stall, a draining worker
// keeps its in-flight shards but claims no new ones, and a dead
// member's shards rebalance onto the live pool at once. The coordinator
// itself is durable when Config.Journal is set (frontier.go): the merge
// frontier is journaled shard by shard, so a SIGKILLed coordinator
// restarts, replays only unmerged shards, and still emits byte-identical
// merged output.
package dist

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Defaults, exported so cmd/rccoordd's flag help states them once.
const (
	// DefaultPerWorker is the in-flight shard cap per worker. One
	// matches the worker service's single-runner default: a second
	// in-flight shard would only sit in the worker's queue aging the
	// coordinator's stall clock.
	DefaultPerWorker = 1
	// DefaultMaxAttempts bounds one shard's run attempts before the
	// sweep fails — generous enough to ride out a worker death plus a
	// few reassignment races.
	DefaultMaxAttempts = 8
	// DefaultStallTimeout bounds the silence on one shard's result
	// stream (covering worker-side queue wait plus the slowest
	// inter-trial gap) before the attempt is abandoned and the shard
	// requeued.
	DefaultStallTimeout = 30 * time.Second
	// DefaultBackoff is the first retry delay; it doubles per
	// consecutive failure up to DefaultBackoffCap. Each delay is then
	// scaled by deterministic per-slot jitter in [0.5, 1.0).
	DefaultBackoff    = 250 * time.Millisecond
	DefaultBackoffCap = 5 * time.Second
	// DefaultProbeInterval / DefaultProbeTimeout pace the membership
	// readiness probes; DefaultLivenessDeadline is how long a worker may
	// go without a successful probe before it is declared dead and its
	// shards rebalance onto the live pool.
	DefaultProbeInterval    = 2 * time.Second
	DefaultProbeTimeout     = 1 * time.Second
	DefaultLivenessDeadline = 10 * time.Second
)

// Config parameterizes a Coordinator. Every field's zero value is
// usable; withDefaults resolves them. Even Workers may be empty: the
// pool is elastic, and workers registered later via Coordinator.Join
// pick up the sweep mid-flight.
type Config struct {
	// Workers seeds the worker pool with service base URLs (e.g.
	// "http://10.0.0.7:8080"), order-insignificant. More may Join (and
	// members may die) at any time; an empty initial pool simply makes
	// no progress until someone registers.
	Workers []string
	// ShardSize is the trial count per shard (the last shard may be
	// smaller). Zero picks ceil(trials / (4·workers·PerWorker)) — four
	// waves per worker slot, enough granularity that losing a worker
	// forfeits at most ~a quarter of one slot's work — clamped to at
	// least 1.
	ShardSize int
	// WindowShards bounds how far past the merge frontier a shard may
	// be claimed — the shard-granularity reorder window, mirroring
	// sim.Window. Zero picks 4·workers·PerWorker. Peak buffered memory
	// is WindowShards · ShardSize result lines.
	WindowShards int
	// PerWorker caps concurrently in-flight shards per worker
	// (default DefaultPerWorker).
	PerWorker int
	// MaxAttempts bounds one shard's run attempts (default
	// DefaultMaxAttempts).
	MaxAttempts int
	// StallTimeout abandons a shard attempt whose result stream goes
	// silent this long (default DefaultStallTimeout).
	StallTimeout time.Duration
	// Backoff is a worker's first retry delay after a failed attempt,
	// doubling per consecutive failure up to BackoffCap (defaults
	// DefaultBackoff, DefaultBackoffCap). The shard itself requeues
	// immediately — backoff throttles the failing worker, not the
	// shard, so a healthy worker reassigns it without waiting.
	Backoff    time.Duration
	BackoffCap time.Duration
	// ProbeInterval paces each member's readiness probes (GET /readyz;
	// default DefaultProbeInterval), each bounded by ProbeTimeout
	// (default DefaultProbeTimeout). A worker with no successful probe
	// for LivenessDeadline (default DefaultLivenessDeadline) is declared
	// dead: its in-flight shards requeue immediately instead of waiting
	// out StallTimeout.
	ProbeInterval    time.Duration
	ProbeTimeout     time.Duration
	LivenessDeadline time.Duration
	// JitterSeed seeds the deterministic backoff jitter (zero is a valid
	// seed; set it explicitly in tests to pin delays).
	JitterSeed uint64
	// Journal, when non-empty, is the coordinator's frontier-journal
	// path: the merged-shard boundary is journaled as the merge
	// advances, and a restarted Run over the same journal and output
	// file resumes the sweep instead of starting over. Requires the
	// output passed to Run to implement DurableOutput (an *os.File
	// does).
	Journal string
	// Client issues the HTTP requests (default http.DefaultClient).
	Client *http.Client
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

// withDefaults resolves zero fields. trials feeds the shard-size
// heuristic; workers is the live pool size at Run time (clamped to ≥1
// so an initially-empty elastic pool still yields a sane plan).
func (c Config) withDefaults(trials, workers int) Config {
	if c.PerWorker <= 0 {
		c.PerWorker = DefaultPerWorker
	}
	if workers < 1 {
		workers = 1
	}
	slots := workers * c.PerWorker
	if c.ShardSize <= 0 {
		c.ShardSize = (trials + 4*slots - 1) / (4 * slots)
		if c.ShardSize < 1 {
			c.ShardSize = 1
		}
	}
	if c.WindowShards <= 0 {
		c.WindowShards = 4 * slots
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = DefaultStallTimeout
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.BackoffCap < c.Backoff {
		c.BackoffCap = DefaultBackoffCap
		if c.BackoffCap < c.Backoff {
			c.BackoffCap = c.Backoff
		}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.LivenessDeadline <= 0 {
		c.LivenessDeadline = DefaultLivenessDeadline
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// normalizeWorker validates one worker base URL and strips its trailing
// slash so path joins are uniform.
func normalizeWorker(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("dist: worker url %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("dist: worker url %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("dist: worker url %q: missing host", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}
