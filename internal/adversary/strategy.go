package adversary

import (
	"rcbcast/internal/core"
	"rcbcast/internal/energy"
	"rcbcast/internal/rng"
)

// PhaseOutcome is the public record of one executed phase — what an
// adaptive Carol can observe about past behaviour (§1.1: she has "full
// information on how nodes have behaved (in terms of sending/listening) in
// the past", and as an n-uniform adversary she knows who she has let
// become informed).
type PhaseOutcome struct {
	Phase core.Phase
	// AliceSends counts Alice's transmissions in the phase.
	AliceSends int
	// NodeDataSends counts relays of m by informed nodes.
	NodeDataSends int
	// NodeNacks counts NACKs by uninformed nodes.
	NodeNacks int
	// NodeDecoys counts decoy transmissions.
	NodeDecoys int
	// NodeListens counts listen slots across all correct nodes.
	NodeListens int64
	// AliceListens counts Alice's listen slots.
	AliceListens int64
	// JammedSlots is the adversary's own jamming spend in the phase.
	JammedSlots int64
	// InjectedFrames is the adversary's own spoofing spend in the phase.
	InjectedFrames int64
	// InformedAfter is the number of informed correct nodes at phase end.
	InformedAfter int
	// ActiveAfter is the number of non-terminated correct nodes at phase
	// end.
	ActiveAfter int
	// AliceActiveAfter reports whether Alice is still running.
	AliceActiveAfter bool
}

// History is the adaptive adversary's view of the execution so far.
type History struct {
	// N is the number of correct nodes.
	N int
	// Outcomes holds one record per executed phase, in order.
	Outcomes []PhaseOutcome
}

// Last returns the most recent outcome and true, or false when empty.
func (h *History) Last() (PhaseOutcome, bool) {
	if len(h.Outcomes) == 0 {
		return PhaseOutcome{}, false
	}
	return h.Outcomes[len(h.Outcomes)-1], true
}

// Strategy is an adaptive adversary: it commits a plan for each phase
// knowing everything about the past but nothing about the current phase's
// coin flips.
type Strategy interface {
	// Name identifies the strategy in results and traces.
	Name() string
	// PlanPhase returns the jamming/spoofing commitment for the phase.
	// pool is read-only advice (Remaining tells the strategy what it can
	// still afford); the engine performs the actual charging and
	// truncates plans that overdraw. st is a per-phase deterministic
	// stream dedicated to the strategy. Returning nil means "do
	// nothing".
	PlanPhase(ph core.Phase, hist *History, pool *energy.Pool, st *rng.Stream) *Plan
}

// Reactive is a strategy upgrade: within the current slot the adversary
// can detect channel activity (RSSI) before deciding to jam (§4.1). The
// engine calls PlanReactive instead of PlanPhase, passing the bitmap of
// slots that carry at least one correct-side transmission. The bitmap
// never reveals content — a decoy and m look identical, which is exactly
// the lever the §4.1 defence pulls.
type Reactive interface {
	Strategy
	PlanReactive(ph core.Phase, activity *Bitmap, hist *History, pool *energy.Pool, st *rng.Stream) *Plan
}

// Null is the absent adversary.
type Null struct{}

// Name implements Strategy.
func (Null) Name() string { return "null" }

// PlanPhase implements Strategy: no jamming, ever.
func (Null) PlanPhase(core.Phase, *History, *energy.Pool, *rng.Stream) *Plan { return nil }
