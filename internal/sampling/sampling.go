// Package sampling provides distribution samplers and the event-driven
// slot scheduler used by the simulation engines.
//
// The central abstraction is the SlotSchedule: a device that, in each of s
// slots, performs an action independently with probability p is simulated
// not by s coin flips but by geometric skips between action slots. The
// expected work is s*p draws instead of s, which is what makes whole-network
// sweeps (n up to tens of thousands, phases of millions of slots) feasible
// on a laptop. Both engines consume the same schedule stream, which keeps
// them bit-for-bit equivalent.
package sampling

import (
	"math"

	"rcbcast/internal/rng"
)

// SlotSchedule enumerates, in increasing order, the slots within a phase of
// a given length in which a Bernoulli(p)-per-slot actor acts. It is an
// iterator; call Next until it returns false.
type SlotSchedule struct {
	st     *rng.Stream
	p      float64
	length int
	next   int
	done   bool
}

// NewSlotSchedule returns a schedule over [0, length) with per-slot action
// probability p drawn from st. The schedule consumes st lazily; interleaving
// draws from st elsewhere corrupts the schedule, so callers should dedicate
// a derived stream to each schedule.
func NewSlotSchedule(st *rng.Stream, p float64, length int) *SlotSchedule {
	s := &SlotSchedule{st: st, p: p, length: length}
	s.advance(0)
	return s
}

func (s *SlotSchedule) advance(from int) {
	if s.p <= 0 || from >= s.length {
		s.done = true
		return
	}
	if s.p >= 1 {
		s.next = from
		return
	}
	g := s.st.Geometric(s.p)
	if g >= s.length-from { // also covers the MaxInt "never" sentinel
		s.done = true
		return
	}
	s.next = from + g
}

// Next returns the next action slot, or (0, false) when the phase is
// exhausted.
func (s *SlotSchedule) Next() (slot int, ok bool) {
	if s.done {
		return 0, false
	}
	slot = s.next
	s.advance(slot + 1)
	return slot, true
}

// Peek reports the next action slot without consuming it.
func (s *SlotSchedule) Peek() (slot int, ok bool) {
	if s.done {
		return 0, false
	}
	return s.next, true
}

// Collect drains the schedule into a slice. Intended for tests and small
// phases; large phases should iterate.
func (s *SlotSchedule) Collect() []int {
	var out []int
	for {
		slot, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, slot)
	}
}

// Binomial samples the number of successes in n Bernoulli(p) trials.
//
// For small expected counts it counts geometric skips (O(np) expected time);
// for large np it uses a normal approximation with continuity correction,
// clamped to [0, n]. The simulator uses Binomial only for aggregate
// accounting where per-slot identity does not matter (e.g. how many
// Byzantine decoys landed in a phase), so the approximation in the large-np
// regime is acceptable and documented.
func Binomial(st *rng.Stream, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 64 || float64(n)*(1-p) < 64 {
		// Exact: count successes via geometric gaps between them.
		count := 0
		idx := 0
		for {
			g := st.Geometric(p)
			if g >= n-idx {
				return count
			}
			idx += g + 1
			count++
			if idx >= n {
				return count
			}
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := math.Round(mean + sd*st.NormFloat64())
	if v < 0 {
		v = 0
	}
	if v > float64(n) {
		v = float64(n)
	}
	return int(v)
}

// Poisson samples from Poisson(lambda) using Knuth's method for small
// lambda and a normal approximation for large lambda. Used by synthetic
// workload generators.
func Poisson(st *rng.Stream, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 64 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= st.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Round(lambda + math.Sqrt(lambda)*st.NormFloat64())
	if v < 0 {
		v = 0
	}
	return int(v)
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n), in random order. It panics if k > n or either is negative.
// Floyd's algorithm gives O(k) time and space.
func SampleWithoutReplacement(st *rng.Stream, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("sampling: invalid SampleWithoutReplacement arguments")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := st.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Shuffle so the output order carries no information about insertion.
	for i := len(out) - 1; i > 0; i-- {
		j := st.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
